package ecvslrc

import (
	"bytes"
	"testing"
)

// TestTraceAPI exercises the root tracing surface: a traced run reports the
// same statistics as an untraced one, the analysis classifies every page,
// and the summary/timeline emitters produce output.
func TestTraceAPI(t *testing.T) {
	plain, err := Run("SOR", "LRC-diff", 4, Test)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Trace("SOR", "LRC-diff", 4, Test)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stats != plain {
		t.Errorf("traced stats %+v differ from untraced %+v", tr.Stats, plain)
	}
	if tr.Tracer.Len() == 0 {
		t.Error("trace recorded no events")
	}
	if len(tr.Analysis.Pages) == 0 {
		t.Error("analysis reported no pages")
	}
	var md, tl bytes.Buffer
	if err := tr.WriteSummary(&md); err != nil || md.Len() == 0 {
		t.Errorf("summary: %v (%d bytes)", err, md.Len())
	}
	if err := tr.WriteTimeline(&tl); err != nil || tl.Len() == 0 {
		t.Errorf("timeline: %v (%d bytes)", err, tl.Len())
	}
}

// TestTraceAPIErrors covers the argument validation paths.
func TestTraceAPIErrors(t *testing.T) {
	if _, err := Trace("SOR", "no-such-impl", 4, Test); err == nil {
		t.Error("bad implementation accepted")
	}
	if _, err := Trace("no-such-app", "LRC-diff", 4, Test); err == nil {
		t.Error("bad application accepted")
	}
}
