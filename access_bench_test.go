package ecvslrc

import (
	"testing"

	"ecvslrc/internal/core"
	"ecvslrc/internal/ec"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/lrc"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/sim"
)

// BenchmarkDSMAccess is the per-word hot-path guard: a tight read/write loop
// over every implementation's access frontend, measured through both the
// statically-dispatched generic kernel (the path the suite applications use)
// and the core.DSM interface adapter. CI runs it with -benchmem and requires
// 0 allocs/op on every line — the in-window access path must never allocate —
// matching the fabric and trace alloc guards.
func BenchmarkDSMAccess(b *testing.B) {
	for _, impl := range core.Implementations() {
		b.Run(impl.String()+"/static", func(b *testing.B) {
			benchAccess(b, impl, false)
		})
		b.Run(impl.String()+"/iface", func(b *testing.B) {
			benchAccess(b, impl, true)
		})
	}
}

// accessLoop is the measured kernel: integer and float traffic over one page
// (a word-strided sweep, the suite's common access pattern). Generic like
// the application kernels, so the static variants measure exactly the
// devirtualized path.
func accessLoop[D core.Accessor](d D, base mem.Addr, n int) {
	for i := 0; i < n; i++ {
		a := base + mem.Addr((i&511)*4)
		d.WriteI32(a, int32(i))
		_ = d.ReadI32(a)
		f := base + mem.Addr(2048+(i&255)*8)
		d.WriteF64(f, float64(i))
		_ = d.ReadF64(f)
	}
}

func benchAccess(b *testing.B, impl core.Impl, iface bool) {
	s := sim.New()
	net := fabric.New(s, fabric.DefaultCostModel(), 1)
	al := mem.NewAllocator()
	base := al.Alloc("bench", mem.PageSize, 4)
	var start func()
	p := s.Spawn("bench", func(p *sim.Proc) { start() })
	switch impl.Model {
	case core.EC:
		n := ec.New(p, net, al, 1, impl)
		if iface {
			var d core.DSM = n
			start = func() { accessLoop(d, base, b.N) }
		} else {
			start = func() { accessLoop(n, base, b.N) }
		}
	case core.LRC:
		n := lrc.New(p, net, al, 1, impl)
		if iface {
			var d core.DSM = n
			start = func() { accessLoop(d, base, b.N) }
		} else {
			start = func() { accessLoop(n, base, b.N) }
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
