package run_test

import (
	"bytes"
	"reflect"
	"testing"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/harness"
	"ecvslrc/internal/run"
	"ecvslrc/internal/trace"
)

// TestTracingObservationOnly pins the trace subsystem's core contract: a
// traced run's statistics — aggregate and per-processor — are bit-identical
// to an untraced run of the same cell, for every implementation of both
// models. Tracing observes; it must never perturb the simulation.
func TestTracingObservationOnly(t *testing.T) {
	const nprocs = 4
	for _, impl := range core.Implementations() {
		for _, appName := range []string{"SOR", "Water", "IS"} {
			plain := mustRun(t, appName, impl, nprocs, nil)
			tr := trace.New(nprocs)
			traced := mustRun(t, appName, impl, nprocs, tr)
			if !reflect.DeepEqual(plain, traced) {
				t.Errorf("%s on %v: traced run diverged:\n  plain:  %+v\n  traced: %+v",
					appName, impl, plain, traced)
			}
			if tr.Len() == 0 {
				t.Errorf("%s on %v: traced run recorded no events", appName, impl)
			}
		}
	}
}

func mustRun(t *testing.T, appName string, impl core.Impl, nprocs int, tr *trace.Tracer) run.Result {
	t.Helper()
	a, err := apps.New(appName, apps.Test)
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.RunWith(a, impl, nprocs, fabric.DefaultCostModel(), run.Options{Trace: tr})
	if err != nil {
		t.Fatalf("%s on %v: %v", appName, impl, err)
	}
	return res
}

// traceBytes runs one traced cell and returns its binary trace.
func traceBytes(t *testing.T, appName string, impl core.Impl, nprocs int) []byte {
	t.Helper()
	tr := trace.New(nprocs)
	mustRun(t, appName, impl, nprocs, tr)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceDeterministic requires the binary trace of a cell to be
// byte-identical across repeated runs, and across runs interleaved on the
// harness worker pool at any parallelism — the per-cell tracer plus the
// canonical merged order make the trace a pure function of the cell.
func TestTraceDeterministic(t *testing.T) {
	const nprocs = 4
	cells := []struct {
		app  string
		impl core.Impl
	}{
		{"SOR", core.Impl{Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}},
		{"Water", core.Impl{Model: core.EC, Trap: core.Twinning, Collect: core.Diffs}},
		{"IS", core.Impl{Model: core.LRC, Trap: core.CompilerInstr, Collect: core.Timestamps}},
		{"QS", core.Impl{Model: core.EC, Trap: core.Twinning, Collect: core.Timestamps}},
	}
	solo := make([][]byte, len(cells))
	for i, c := range cells {
		solo[i] = traceBytes(t, c.app, c.impl, nprocs)
	}
	// Re-run every cell concurrently on the worker pool: host-level
	// interleaving must not move a byte of any trace.
	concurrent := make([][]byte, len(cells))
	harness.ForEach(len(cells), len(cells), func(i int) {
		c := cells[i]
		tr := trace.New(nprocs)
		a, err := apps.New(c.app, apps.Test)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := run.RunWith(a, c.impl, nprocs, fabric.DefaultCostModel(), run.Options{Trace: tr}); err != nil {
			t.Error(err)
			return
		}
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			t.Error(err)
			return
		}
		concurrent[i] = buf.Bytes()
	})
	for i, c := range cells {
		if len(solo[i]) == 0 {
			t.Errorf("%s on %v: empty trace", c.app, c.impl)
			continue
		}
		if !bytes.Equal(solo[i], concurrent[i]) {
			t.Errorf("%s on %v: trace differs between solo and concurrent runs (%d vs %d bytes)",
				c.app, c.impl, len(solo[i]), len(concurrent[i]))
		}
	}
}

// TestTraceAnalysisCoversPaperApps runs three paper applications traced and
// checks the acceptance contract: per-page, per-lock (where the model uses
// remote locks) and timeline artifacts are derivable, and the classifier
// assigns a sharing pattern to every shared page.
func TestTraceAnalysisCoversPaperApps(t *testing.T) {
	const nprocs = 4
	cases := []struct {
		app  string
		impl core.Impl
	}{
		{"Water", core.Impl{Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}},
		{"IS", core.Impl{Model: core.EC, Trap: core.Twinning, Collect: core.Diffs}},
		{"3D-FFT", core.Impl{Model: core.LRC, Trap: core.Twinning, Collect: core.Timestamps}},
	}
	for _, c := range cases {
		tr := trace.New(nprocs)
		mustRun(t, c.app, c.impl, nprocs, tr)
		a2, err := apps.New(c.app, apps.Test)
		if err != nil {
			t.Fatal(err)
		}
		meta := run.TraceMeta(a2, c.impl, nprocs, "test")
		an := trace.Analyze(tr, meta)
		if len(an.Pages) != meta.Pages {
			t.Errorf("%s on %v: %d page reports for %d pages", c.app, c.impl, len(an.Pages), meta.Pages)
		}
		shared := 0
		for _, p := range an.Pages {
			if p.Pattern != trace.PatternPrivate {
				shared++
			}
		}
		if shared == 0 {
			t.Errorf("%s on %v: classifier found no shared pages at all", c.app, c.impl)
		}
		if an.TotalMsgs == 0 || len(an.Intervals) == 0 {
			t.Errorf("%s on %v: empty timeline (msgs %d, intervals %d)",
				c.app, c.impl, an.TotalMsgs, len(an.Intervals))
		}
		if c.impl.Model == core.EC && len(an.Locks) == 0 {
			t.Errorf("%s on %v: EC run produced no lock reports", c.app, c.impl)
		}
		var md bytes.Buffer
		if err := trace.WriteMarkdown(&md, an); err != nil {
			t.Errorf("%s: summary: %v", c.app, err)
		}
		var tl bytes.Buffer
		if err := trace.WriteChromeTrace(&tl, tr, an.Meta); err != nil {
			t.Errorf("%s: timeline: %v", c.app, err)
		}
		if md.Len() == 0 || tl.Len() == 0 {
			t.Errorf("%s: empty report artifacts", c.app)
		}
	}
}
