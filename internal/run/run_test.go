package run

import (
	"fmt"
	"testing"

	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/sim"
)

// counterApp: every processor adds its id+1 into a lock-protected shared
// counter several times — migratory data, the IS pattern in miniature.
type counterApp struct {
	rounds int
	procs  int
	base   mem.Addr
}

func (a *counterApp) Name() string { return "counter" }

func (a *counterApp) Layout(al *mem.Allocator) {
	a.base = al.Alloc("counter", 64, 4)
}

func (a *counterApp) Init(im *mem.Image) { im.WriteI32(a.base, 0) }

func (a *counterApp) Program(d core.DSM) {
	const lock = core.LockID(1)
	d.Bind(lock, mem.Range{Base: a.base, Len: 64})
	for r := 0; r < a.rounds; r++ {
		d.Acquire(lock)
		v := d.ReadI32(a.base)
		d.Compute(10 * sim.Microsecond)
		d.WriteI32(a.base, v+int32(d.Proc())+1)
		d.Release(lock)
	}
	d.Barrier(0)
	d.StatsEnd()
	if d.Proc() == 0 {
		// Gather for verification: under LRC the acquire only invalidates;
		// the read takes the access miss that actually fetches the value.
		d.AcquireRead(lock)
		_ = d.ReadI32(a.base)
		d.Release(lock)
	}
}

func (a *counterApp) Verify(im *mem.Image) error {
	want := int32(0)
	for p := 0; p < a.procs; p++ {
		want += int32(a.rounds) * int32(p+1)
	}
	if got := im.ReadI32(a.base); got != want {
		return fmt.Errorf("counter = %d, want %d", got, want)
	}
	return nil
}

// phaseApp: processor 0 fills an array, a barrier separates the phases, then
// every processor sums a slice of it — the producer/consumer-with-barriers
// pattern that needs read-only locks under EC.
type phaseApp struct {
	n     int
	procs int
	data  mem.Addr
	sums  mem.Addr
}

func (a *phaseApp) Name() string { return "phases" }

func (a *phaseApp) Layout(al *mem.Allocator) {
	a.data = al.Alloc("data", a.n*4, 4)
	a.sums = al.Alloc("sums", a.procs*4, 4)
}

func (a *phaseApp) Init(im *mem.Image) {}

func (a *phaseApp) addr(i int) mem.Addr  { return a.data + mem.Addr(4*i) }
func (a *phaseApp) sumAt(p int) mem.Addr { return a.sums + mem.Addr(4*p) }

func (a *phaseApp) Program(d core.DSM) {
	ec := d.Model() == core.EC
	dataLock := core.LockID(10)
	sumLock := func(p int) core.LockID { return core.LockID(20 + p) }
	d.Bind(dataLock, mem.Range{Base: a.data, Len: a.n * 4})
	for p := 0; p < a.procs; p++ {
		d.Bind(sumLock(p), mem.Range{Base: a.sumAt(p), Len: 4})
	}

	if d.Proc() == 0 {
		if ec {
			d.Acquire(dataLock)
		}
		for i := 0; i < a.n; i++ {
			d.WriteI32(a.addr(i), int32(3*i+1))
		}
		d.Compute(sim.Time(a.n) * sim.Microsecond)
		if ec {
			d.Release(dataLock)
		}
	}
	d.Barrier(0)

	// Each processor sums its contiguous slice.
	if ec {
		d.AcquireRead(dataLock)
	}
	lo := a.n * d.Proc() / a.procs
	hi := a.n * (d.Proc() + 1) / a.procs
	var sum int32
	for i := lo; i < hi; i++ {
		sum += d.ReadI32(a.addr(i))
	}
	d.Compute(sim.Time(hi-lo) * sim.Microsecond)
	if ec {
		d.Release(dataLock)
		d.Acquire(sumLock(d.Proc()))
	}
	d.WriteI32(a.sumAt(d.Proc()), sum)
	if ec {
		d.Release(sumLock(d.Proc()))
	}
	d.Barrier(1)
	d.StatsEnd()

	if d.Proc() == 0 { // gather for verification
		for p := 0; p < a.procs; p++ {
			if ec {
				d.AcquireRead(sumLock(p))
			}
			_ = d.ReadI32(a.sumAt(p))
			if ec {
				d.Release(sumLock(p))
			}
		}
	}
}

func (a *phaseApp) Verify(im *mem.Image) error {
	for p := 0; p < a.procs; p++ {
		lo := a.n * p / a.procs
		hi := a.n * (p + 1) / a.procs
		var want int32
		for i := lo; i < hi; i++ {
			want += int32(3*i + 1)
		}
		if got := im.ReadI32(a.sumAt(p)); got != want {
			return fmt.Errorf("sum[%d] = %d, want %d", p, got, want)
		}
	}
	return nil
}

// falseShareApp: two processors repeatedly update disjoint halves of the
// same page between barriers, then read their neighbour's half. Exercises
// multi-writer pages under LRC and per-half locks under EC.
type falseShareApp struct {
	iters int
	base  mem.Addr
}

func (a *falseShareApp) Name() string { return "falseshare" }

func (a *falseShareApp) Layout(al *mem.Allocator) {
	a.base = al.Alloc("page", mem.PageSize, 4)
}

func (a *falseShareApp) Init(im *mem.Image) {}

func (a *falseShareApp) half(p int) mem.Range {
	return mem.Range{Base: a.base + mem.Addr(p*mem.PageSize/2), Len: mem.PageSize / 2}
}

func (a *falseShareApp) Program(d core.DSM) {
	ec := d.Model() == core.EC
	me, other := d.Proc(), 1-d.Proc()
	myLock, otherLock := core.LockID(me+1), core.LockID(other+1)
	d.Bind(core.LockID(1), a.half(0))
	d.Bind(core.LockID(2), a.half(1))

	mine, theirs := a.half(me), a.half(other)
	for it := 0; it < a.iters; it++ {
		if ec {
			d.Acquire(myLock)
		}
		for w := 0; w < mine.Len/4; w++ {
			d.WriteI32(mine.Base+mem.Addr(4*w), int32(it*1000+me))
		}
		d.Compute(100 * sim.Microsecond)
		if ec {
			d.Release(myLock)
		}
		d.Barrier(0)
		if ec {
			d.AcquireRead(otherLock)
		}
		for w := 0; w < theirs.Len/4; w += 64 {
			if got := d.ReadI32(theirs.Base + mem.Addr(4*w)); got != int32(it*1000+other) {
				panic(fmt.Sprintf("proc %d iter %d: read %d", me, it, got))
			}
		}
		if ec {
			d.Release(otherLock)
		}
		d.Barrier(1)
	}
	d.StatsEnd()
}

func (a *falseShareApp) Verify(im *mem.Image) error {
	for p := 0; p < 2; p++ {
		h := a.half(p)
		for w := 0; w < h.Len/4; w++ {
			if got := im.ReadI32(h.Base + mem.Addr(4*w)); got != int32((a.iters-1)*1000+p) {
				return fmt.Errorf("half %d word %d = %d", p, w, got)
			}
		}
	}
	return nil
}

func forAllImpls(t *testing.T, fn func(t *testing.T, impl core.Impl)) {
	t.Helper()
	for _, impl := range core.Implementations() {
		impl := impl
		t.Run(impl.String(), func(t *testing.T) { fn(t, impl) })
	}
}

func TestCounterAllImpls(t *testing.T) {
	forAllImpls(t, func(t *testing.T, impl core.Impl) {
		app := &counterApp{rounds: 6, procs: 4}
		res, err := Run(app, impl, 4, fabric.DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Time <= 0 || res.Stats.Msgs == 0 {
			t.Errorf("implausible stats: %v", res.Stats)
		}
		if res.Stats.LockAcquires < 24 {
			t.Errorf("lock acquires = %d, want >= 24", res.Stats.LockAcquires)
		}
	})
}

func TestPhasesAllImpls(t *testing.T) {
	forAllImpls(t, func(t *testing.T, impl core.Impl) {
		app := &phaseApp{n: 4096, procs: 4}
		res, err := Run(app, impl, 4, fabric.DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		if impl.Model == core.EC && res.Stats.ReadLockAcquires == 0 {
			t.Error("EC run should use read-only locks")
		}
		if impl.Model == core.LRC && res.Stats.AccessMisses == 0 {
			t.Error("LRC run should take access misses")
		}
	})
}

func TestFalseSharingAllImpls(t *testing.T) {
	forAllImpls(t, func(t *testing.T, impl core.Impl) {
		app := &falseShareApp{iters: 3}
		res, err := Run(app, impl, 2, fabric.DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		if impl.Model == core.LRC && impl.Trap == core.Twinning && res.Stats.TwinsMade == 0 {
			t.Error("twinning LRC should create twins")
		}
	})
}

// The EC false-sharing advantage (Section 7.1): with per-half locks EC moves
// less data than LRC, which must move the interleaved page contents.
func TestFalseSharingECMovesLessDataThanLRC(t *testing.T) {
	app := &falseShareApp{iters: 4}
	ecRes, err := Run(app, core.Impl{Model: core.EC, Trap: core.Twinning, Collect: core.Diffs}, 2, fabric.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	app2 := &falseShareApp{iters: 4}
	lrcRes, err := Run(app2, core.Impl{Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}, 2, fabric.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	// Both procs re-read their own half (which the other never writes), so
	// EC transfers only each half once per phase to the reader; LRC
	// additionally invalidates and refetches despite locality. At minimum EC
	// must not move more data.
	if ecRes.Stats.Bytes > lrcRes.Stats.Bytes {
		t.Errorf("EC moved %d bytes > LRC %d bytes", ecRes.Stats.Bytes, lrcRes.Stats.Bytes)
	}
}

func TestDeterministicRuns(t *testing.T) {
	impl := core.Impl{Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}
	r1, err := Run(&counterApp{rounds: 5, procs: 3}, impl, 3, fabric.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(&counterApp{rounds: 5, procs: 3}, impl, 3, fabric.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats != r2.Stats {
		t.Errorf("non-deterministic stats:\n%+v\n%+v", r1.Stats, r2.Stats)
	}
}

func TestRunSeq(t *testing.T) {
	app := &counterApp{rounds: 4, procs: 1}
	tm, err := RunSeq(app)
	if err != nil {
		t.Fatal(err)
	}
	if tm != 40*sim.Microsecond {
		t.Errorf("sequential time = %v, want 40µs", tm)
	}
}

func TestSingleProcParallelRun(t *testing.T) {
	forAllImpls(t, func(t *testing.T, impl core.Impl) {
		app := &counterApp{rounds: 3, procs: 1}
		res, err := Run(app, impl, 1, fabric.DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Msgs != 0 {
			t.Errorf("1-proc run sent %d messages", res.Stats.Msgs)
		}
	})
}
