package run_test

import (
	"reflect"
	"testing"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/run"
)

// TestDeterministicStats runs the same cell twice for every implementation
// of both models and requires bit-identical statistics. This is the safety
// net for the event-queue and protocol-metadata rewrites: any change that
// perturbs event ordering or collection results shows up here as a stats
// mismatch between two runs of one binary (and against the seed's published
// tables as a drift across binaries).
func TestDeterministicStats(t *testing.T) {
	for _, impl := range core.Implementations() {
		impl := impl
		t.Run(impl.String(), func(t *testing.T) {
			cell := func() core.Stats {
				a, err := apps.New("QS", apps.Test)
				if err != nil {
					t.Fatal(err)
				}
				res, err := run.Run(a, impl, 4, fabric.DefaultCostModel())
				if err != nil {
					t.Fatal(err)
				}
				return res.Stats
			}
			first, second := cell(), cell()
			if !reflect.DeepEqual(first, second) {
				t.Errorf("stats differ between identical runs:\n  first:  %+v\n  second: %+v", first, second)
			}
		})
	}
}
