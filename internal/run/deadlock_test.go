package run

import (
	"strings"
	"testing"

	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/sim"
)

// nestedLockApp reproduces the deadlock scenario of Section 3.3: in one
// Barnes-Hut phase "different fields of two different bodies are accessed
// together, resulting in a nested access of locks corresponding to the two
// bodies. If only one lock is associated with all fields of a body, then the
// nested locks can result in deadlock." Two processors nest the two body
// locks in opposite orders; the deterministic simulator detects the
// resulting deadlock. The fix the paper adopted — splitting each body's
// fields into two lock sets — is what internal/apps/barnes.go implements.
type nestedLockApp struct {
	base    mem.Addr
	ordered bool // acquire in a global order instead (no deadlock)
}

func (a *nestedLockApp) Name() string               { return "nested-locks" }
func (a *nestedLockApp) Layout(al *mem.Allocator)   { a.base = al.Alloc("bodies", 256, 4) }
func (a *nestedLockApp) Init(im *mem.Image)         {}
func (a *nestedLockApp) Verify(im *mem.Image) error { return nil }

func (a *nestedLockApp) Program(d core.DSM) {
	d.Bind(1, mem.Range{Base: a.base, Len: 64})
	d.Bind(2, mem.Range{Base: a.base + 64, Len: 64})
	first, second := core.LockID(1), core.LockID(2)
	if d.Proc() == 1 && !a.ordered {
		first, second = second, first
	}
	for r := 0; r < 4; r++ {
		d.Acquire(first)
		d.Compute(200 * sim.Microsecond) // widen the window so they collide
		d.Acquire(second)
		d.WriteI32(a.base+mem.Addr(64*int(first-1)), int32(r))
		d.Release(second)
		d.Release(first)
	}
	d.Barrier(0)
	d.StatsEnd()
}

func TestNestedBodyLocksDeadlock(t *testing.T) {
	app := &nestedLockApp{}
	_, err := Run(app, core.Impl{Model: core.EC, Trap: core.Twinning, Collect: core.Diffs}, 2, fabric.DefaultCostModel())
	if err == nil {
		t.Fatal("opposite-order nested acquisition must deadlock")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want a detected deadlock", err)
	}
}

func TestNestedBodyLocksOrderedIsFine(t *testing.T) {
	app := &nestedLockApp{ordered: true}
	if _, err := Run(app, core.Impl{Model: core.EC, Trap: core.Twinning, Collect: core.Diffs}, 2, fabric.DefaultCostModel()); err != nil {
		t.Fatal(err)
	}
}

// rebindClobberApp regression-tests the acquire-for-rebind path: processor 0
// writes fresh values into a region, then reuses a lock (previously bound to
// that same region and last owned by processor 1 with STALE contents) for a
// new purpose. A plain Acquire would install processor 1's stale data over
// the fresh values; AcquireForRebind must not.
type rebindClobberApp struct {
	base mem.Addr
}

func (a *rebindClobberApp) Name() string               { return "rebind-clobber" }
func (a *rebindClobberApp) Layout(al *mem.Allocator)   { a.base = al.Alloc("data", mem.PageSize, 4) }
func (a *rebindClobberApp) Init(im *mem.Image)         {}
func (a *rebindClobberApp) Verify(im *mem.Image) error { return nil }

func (a *rebindClobberApp) Program(d core.DSM) {
	ec := d.Model() == core.EC
	region := mem.Range{Base: a.base, Len: 256}
	guard := core.LockID(7) // covers the region for the ordinary data path
	slot := core.LockID(9)  // the reused task-slot lock
	d.Bind(guard, region)
	d.Bind(slot, region)

	switch d.Proc() {
	case 1:
		// Write old values through the slot lock, leaving p1 as its owner
		// with (soon to be) stale memory.
		d.Acquire(slot)
		d.WriteI32(a.base, 111)
		d.Release(slot)
		d.Barrier(0)
		d.Barrier(1)
	case 0:
		d.Barrier(0)
		// Fresh values under the guard lock.
		d.Acquire(guard)
		d.WriteI32(a.base, 222)
		// Reuse the slot lock for a different range. Its grant comes from
		// p1 whose copy of the region is stale; the data must not travel.
		if ec {
			d.AcquireForRebind(slot)
			d.Rebind(slot, mem.Range{Base: a.base + 512, Len: 64})
			d.Release(slot)
		}
		if got := d.ReadI32(a.base); got != 222 {
			panic("stale data clobbered the fresh write")
		}
		d.Release(guard)
		d.Barrier(1)
	default:
		d.Barrier(0)
		d.Barrier(1)
	}
	d.StatsEnd()
}

func TestAcquireForRebindDoesNotClobber(t *testing.T) {
	forAllImpls(t, func(t *testing.T, impl core.Impl) {
		app := &rebindClobberApp{}
		if _, err := Run(app, impl, 3, fabric.DefaultCostModel()); err != nil {
			t.Fatal(err)
		}
	})
}
