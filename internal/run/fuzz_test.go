package run

import (
	"fmt"
	"testing"

	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/sim"
)

// fuzzApp is a randomized (but seeded, hence deterministic) program over a
// set of lock-protected counters: every processor performs a shuffled
// sequence of read-modify-write operations under the proper locks, with
// occasional barriers. The final counter values are exactly predictable, so
// any stale read under any implementation shows up as a verification error.
// This is a protocol stress test: many locks, false sharing between
// counters on the same page, migratory and contended access mixed.
type fuzzApp struct {
	seed     uint64
	counters int
	ops      int
	base     mem.Addr
	procs    int
	// expected number of increments per counter, filled during Program.
	added []int64
}

type fuzzLCG struct{ s uint64 }

func (l *fuzzLCG) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s
}

func (a *fuzzApp) Name() string { return "fuzz" }

func (a *fuzzApp) Layout(al *mem.Allocator) {
	a.base = al.Alloc("counters", a.counters*8, 4)
}

func (a *fuzzApp) Init(im *mem.Image) { a.added = make([]int64, a.counters) }

func (a *fuzzApp) addr(c int) mem.Addr    { return a.base + mem.Addr(8*c) }
func (a *fuzzApp) lock(c int) core.LockID { return core.LockID(1 + c) }

func (a *fuzzApp) Program(d core.DSM) {
	a.procs = d.NProcs()
	for c := 0; c < a.counters; c++ {
		d.Bind(a.lock(c), mem.Range{Base: a.addr(c), Len: 8})
	}
	rng := fuzzLCG{s: a.seed + uint64(d.Proc())*977}
	for op := 0; op < a.ops; op++ {
		c := int(rng.next()) % a.counters
		if c < 0 {
			c = -c
		}
		amount := int32(rng.next()%7) + 1
		d.Acquire(a.lock(c))
		v := d.ReadI32(a.addr(c))
		d.Compute(sim.Time(rng.next()%50) * sim.Microsecond)
		d.WriteI32(a.addr(c), v+amount)
		d.Release(a.lock(c))
		a.added[c] += int64(amount)
		// Barriers at fixed op indices so every processor participates.
		if op%16 == 7 {
			d.Barrier(core.BarrierID(op % 3))
		}
	}
	d.Barrier(10)
	d.StatsEnd()
	if d.Proc() == 0 {
		for c := 0; c < a.counters; c++ {
			d.AcquireRead(a.lock(c))
			_ = d.ReadI32(a.addr(c))
			d.Release(a.lock(c))
		}
	}
}

func (a *fuzzApp) Verify(im *mem.Image) error {
	for c := 0; c < a.counters; c++ {
		if got := int64(im.ReadI32(a.addr(c))); got != a.added[c] {
			return fmt.Errorf("fuzz: counter %d = %d, want %d", c, got, a.added[c])
		}
	}
	return nil
}

func TestProtocolFuzz(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			for _, impl := range core.Implementations() {
				app := &fuzzApp{seed: seed, counters: 12, ops: 40}
				if _, err := Run(app, impl, 4, fabric.DefaultCostModel()); err != nil {
					t.Errorf("%v: %v", impl, err)
				}
			}
		})
	}
}
