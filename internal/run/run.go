// Package run executes applications on a simulated DSM cluster: it lays out
// shared memory, spawns one protocol node per processor, runs the program,
// aggregates the paper's statistics, and verifies the computed result.
package run

import (
	"fmt"

	"ecvslrc/internal/core"
	"ecvslrc/internal/ec"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/lrc"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/nodebase"
	"ecvslrc/internal/perf"
	"ecvslrc/internal/sim"
	"ecvslrc/internal/trace"
)

// App is a DSM application. One App value describes one problem instance;
// the same instance can be run sequentially and on any implementation, and
// Verify checks the final shared memory against the app's own sequential
// reference.
type App interface {
	// Name identifies the application (e.g. "SOR", "QS").
	Name() string
	// Layout allocates the shared regions.
	Layout(al *mem.Allocator)
	// Init populates the initial shared memory contents. It runs before the
	// processors start; every processor begins with this image (process
	// creation is not part of the timed region in the paper).
	Init(im *mem.Image)
	// Program is the per-processor program. It must call d.StatsEnd() after
	// its final barrier; processor 0 must then gather the results through
	// the DSM (read locks under EC, page faults under LRC) so Verify can
	// inspect its image.
	Program(d core.DSM)
	// Verify checks processor 0's final image.
	Verify(im *mem.Image) error
}

// StaticApp is implemented by applications whose Program body is a generic
// kernel `func kernel[D core.Accessor](d D, ...)` instantiated once per
// protocol stack. The runner then enters the kernel through the concrete
// frontend (*lrc.Node, *ec.Node, *Local), so every shared-memory accessor
// call dispatches statically instead of through the core.DSM interface —
// the per-word cost the ROADMAP names as the largest remaining one. The
// plain Program(core.DSM) method remains the adapter path: same kernel,
// instantiated with the interface, used by custom DSM values and by the
// equivalence tests (Options.InterfaceDispatch).
//
// All four entry points must run the same kernel; the runner chooses freely
// between them and the simulated statistics must not depend on the choice.
type StaticApp interface {
	App
	// ProgramLRC is Program entered through the concrete LRC frontend.
	ProgramLRC(n *lrc.Node)
	// ProgramEC is Program entered through the concrete EC frontend.
	ProgramEC(n *ec.Node)
	// ProgramSeq is Program entered through the sequential frontend.
	ProgramSeq(l *Local)
}

// RefInit is implemented by applications whose Init separates into image
// seeding (a pure, deterministic function of the problem instance) and
// adoption of the verification reference (memoized per problem size).
// RunWith calls InitRef instead of Init when handed a cached initial image,
// skipping the seeding writes. Apps whose Init keeps no instance state
// implement it as a no-op.
type RefInit interface {
	InitRef()
}

// Options tunes one run beyond the cost model.
type Options struct {
	// Contention enables shared-link contention in the fabric: concurrent
	// bulk transfers queue on the ATM path instead of overlapping for free.
	// Off reproduces the calibrated model bit-exactly.
	Contention bool
	// InitImage, when non-nil, is a pre-seeded initial image for this exact
	// application instance (same name, same scale), typically from the
	// harness's per-(app, scale) cache. It is only honored for apps
	// implementing RefInit; ownership stays with the caller (the image is
	// read, never recycled).
	InitImage *mem.Image
	// Layout, when non-nil, is the pre-computed allocator for this exact
	// application instance, typically cached alongside InitImage. The run
	// replays it (mem.Allocator.Replayer) instead of laying shared memory
	// out again: the app still binds its instance addresses, but the region
	// tables are shared read-only across cells.
	Layout *mem.Allocator
	// InterfaceDispatch forces the run through the Program(core.DSM) adapter
	// path even when the application provides statically-dispatched kernels
	// (StaticApp). The statistics are identical either way — the equivalence
	// tests pin that — so this exists for those tests and for debugging
	// dispatch-layer suspicions, not for production runs.
	InterfaceDispatch bool
	// Trace, when non-nil, records the run's event trace: scheduler resumes,
	// message traffic, faults, misses, twins, collections and synchronization
	// events flow into it for post-run attribution (internal/trace). Tracing
	// is observation-only — the simulated statistics are bit-identical with
	// and without it. The tracer must be fresh and sized for nprocs.
	Trace *trace.Tracer
	// Faults, when non-nil, runs the fabric under the seeded fault plan with
	// the reliable-delivery sublayer enabled (fabric.EnableFaults): messages
	// are dropped, duplicated and delayed per the plan, and recovered via
	// sequence numbers, acks and retransmission — all in virtual time, so
	// the recovery cost lands in the run's statistics. Nil reproduces the
	// fault-free fabric bit-exactly.
	Faults *fabric.FaultPlan
	// Timeout, when > 0, arms the simulator's virtual-time watchdog: a run
	// whose clock would pass this limit fails with a sim.Stalled error
	// naming every blocked process, instead of running unbounded.
	Timeout sim.Time
	// KeepImage asks for a copy of processor 0's final memory image in
	// Result.Image (after verification). Equivalence tests use it to compare
	// final images across fault plans.
	KeepImage bool
	// Perf, when non-nil, accumulates host-side phase timings for this run
	// into the registry's "phase_init_ns" (layout replay, image seeding,
	// node construction), "phase_simulate_ns" (the event loop) and
	// "phase_verify_ns" (stats aggregation + verification) counters. Phases
	// read host clocks only — simulated statistics are identical with and
	// without a registry; nil costs nothing (internal/perf).
	Perf *perf.Registry
	// NoticeGC enables LRC notice-history garbage collection at barrier
	// quiescent points (internal/lrc's GC). Collection is provably invisible
	// to the protocol: core.Stats and final memory images are identical with
	// it on or off (TestNoticeGCEquivalence pins this); only host memory
	// changes. Ignored for EC implementations. Off by default at the
	// golden-pinned scales; the harness turns it on at apps.Large.
	NoticeGC bool
	// BarrierFanIn selects the barrier communication shape: 0 picks the
	// protocol default (flat fan-in, every processor messaging the manager),
	// 1 forces flat, and r >= 2 arranges the processors into an implicit
	// radix-r tree rooted at the manager, making barrier traffic at any one
	// node O(r + log n) instead of O(n). Tree fan-in changes the message
	// pattern (and therefore Stats), so it is opt-in and off at the
	// golden-pinned scales; equivalence of the final memory images is pinned
	// by TestTreeBarrierEquivalence.
	BarrierFanIn int
	// Topology, when non-nil, replaces the fabric's flat shared link with a
	// folded-Clos switch model: per-stage latency and per-level contention
	// capacity (fabric.Topology). Nil reproduces the flat fabric bit-exactly.
	Topology *fabric.Topology
}

// node is the common view of ec.Node and lrc.Node the runner needs.
type node interface {
	core.DSM
	Window() (nodebase.WindowStats, bool)
}

// Result is the outcome of one parallel run.
type Result struct {
	App     string
	Impl    core.Impl
	NProcs  int
	Stats   core.Stats
	PerProc []nodebase.WindowStats
	// LinkWait is the total queueing delay messages spent waiting for the
	// shared link over the whole run (always zero with contention off) —
	// the direct measure of what contention mode models.
	LinkWait sim.Time
	// Faults holds the fault-injection and recovery counters (zero-valued
	// unless Options.Faults was set).
	Faults fabric.FaultStats
	// Image is a copy of processor 0's final memory image, present only when
	// Options.KeepImage was set.
	Image []byte
	// GC is the notice-history collection report, present only when
	// Options.NoticeGC ran (LRC implementations).
	GC *lrc.GCReport
	// NoticeBytes is the final machine-wide LRC notice-history footprint in
	// wire bytes (interval records on every node plus stored diffs at their
	// writers). Zero for EC runs. With GC off this is what grows without
	// bound; the memory-bound regression tests compare it against GC-on.
	NoticeBytes int64
}

// Run executes app on nprocs processors under the given implementation and
// cost model, returning the aggregated statistics.
func Run(app App, impl core.Impl, nprocs int, cm fabric.CostModel) (Result, error) {
	return RunWith(app, impl, nprocs, cm, Options{})
}

// RunWith is Run with per-run Options (fabric contention, cached images).
func RunWith(app App, impl core.Impl, nprocs int, cm fabric.CostModel, opts Options) (Result, error) {
	if !impl.Valid() {
		return Result{}, fmt.Errorf("run: invalid implementation %v", impl)
	}
	ph := opts.Perf.StartPhase("init")
	al := layout(app, opts)
	initIm, cached, err := initialImage(app, al, opts)
	if err != nil {
		return Result{}, err
	}

	s := sim.New()
	net := fabric.New(s, cm, nprocs)
	if opts.Contention {
		net.EnableContention()
	}
	if opts.Topology != nil {
		if err := net.EnableTopology(*opts.Topology); err != nil {
			return Result{}, fmt.Errorf("run: %s: %w", app.Name(), err)
		}
	}
	if opts.Faults != nil {
		if err := net.EnableFaults(*opts.Faults); err != nil {
			return Result{}, fmt.Errorf("run: %s: %w", app.Name(), err)
		}
	}
	if opts.Timeout > 0 {
		s.SetWatchdog(opts.Timeout)
	}
	if opts.Trace != nil {
		if opts.Trace.NProcs() != nprocs {
			return Result{}, fmt.Errorf("run: %s: tracer is sized for %d procs, run has %d",
				app.Name(), opts.Trace.NProcs(), nprocs)
		}
		s.SetProbe(opts.Trace)
		net.SetTracer(opts.Trace)
	}
	// Statically-dispatched entry when the app provides generic kernels: the
	// per-processor body then calls the concrete frontend's kernel
	// instantiation instead of crossing the core.DSM interface per access.
	sa, _ := app.(StaticApp)
	if opts.InterfaceDispatch {
		sa = nil
	}
	nodes := make([]node, nprocs)
	images := make([]*mem.Image, nprocs)
	starts := make([]func(), nprocs)
	var lrcNodes []*lrc.Node
	if impl.Model == core.LRC {
		lrcNodes = make([]*lrc.Node, 0, nprocs)
	}
	for i := 0; i < nprocs; i++ {
		i := i
		p := s.Spawn(fmt.Sprintf("%s/p%d", app.Name(), i), func(p *sim.Proc) {
			starts[i]()
		})
		// Node images come from the recycle pool (contents unspecified) and
		// are fully overwritten by CopyFrom before the simulation starts.
		im := mem.RecycledImage(al.Size())
		switch impl.Model {
		case core.EC:
			n := ec.NewWithImage(p, net, al, nprocs, impl, im)
			if opts.Trace != nil {
				n.SetTracer(opts.Trace)
			}
			n.Im.CopyFrom(initIm)
			nodes[i], images[i] = n, n.Im
			if sa != nil {
				starts[i] = func() { n.StatsBegin(); sa.ProgramEC(n) }
			} else {
				starts[i] = func() { n.StatsBegin(); app.Program(n) }
			}
		case core.LRC:
			n := lrc.NewWithImage(p, net, al, nprocs, impl, im)
			if opts.Trace != nil {
				n.SetTracer(opts.Trace)
			}
			n.Im.CopyFrom(initIm)
			nodes[i], images[i] = n, n.Im
			lrcNodes = append(lrcNodes, n)
			if sa != nil {
				starts[i] = func() { n.StatsBegin(); sa.ProgramLRC(n) }
			} else {
				starts[i] = func() { n.StatsBegin(); app.Program(n) }
			}
		}
		if opts.BarrierFanIn >= 2 {
			nodes[i].(interface{ SetBarrierFanIn(int) }).SetBarrierFanIn(opts.BarrierFanIn)
		}
	}
	var gc *lrc.GC
	if opts.NoticeGC && impl.Model == core.LRC {
		gc = lrc.NewGC(lrcNodes)
	}
	// Every node holds its own copy now; recycle the template's buffer
	// (cached templates stay with their owner).
	if !cached {
		mem.RecycleImage(initIm)
	}
	ph.End()
	ph = opts.Perf.StartPhase("simulate")
	if err := s.Run(); err != nil {
		return Result{}, fmt.Errorf("run: %s on %v: %w", app.Name(), impl, err)
	}
	ph.End()
	ph = opts.Perf.StartPhase("verify")

	res := Result{App: app.Name(), Impl: impl, NProcs: nprocs, LinkWait: net.LinkWait(), Faults: net.FaultStats()}
	for i, n := range nodes {
		w, ok := n.Window()
		if !ok {
			return Result{}, fmt.Errorf("run: %s proc %d never called StatsEnd", app.Name(), i)
		}
		res.PerProc = append(res.PerProc, w)
		st := &res.Stats
		st.Msgs += w.Net.Msgs
		st.Bytes += w.Net.Bytes
		st.Faults += w.Faults
		st.AccessMisses += w.Extra.AccessMisses
		st.LockAcquires += w.Cnt.LockAcquires
		st.ReadLockAcquires += w.Cnt.ReadLockAcquires
		st.RemoteAcquires += w.Cnt.RemoteAcquires
		st.DiffsCreated += w.Extra.DiffsCreated
		st.TwinsMade += w.Extra.TwinsMade
		st.StampRunsSent += w.Extra.StampRunsSent
		st.Barriers += w.Cnt.Barriers
	}
	res.Stats.Barriers /= int64(nprocs)
	var start, end sim.Time
	for i, w := range res.PerProc {
		if i == 0 || w.Start < start {
			start = w.Start
		}
		if w.End > end {
			end = w.End
		}
	}
	res.Stats.Time = end - start
	for _, n := range lrcNodes {
		res.NoticeBytes += n.NoticeHistoryBytes()
	}
	if gc != nil {
		rep := gc.Report()
		res.GC = &rep
	}

	if err := app.Verify(images[0]); err != nil {
		return Result{}, fmt.Errorf("run: %s on %v: verification: %w", app.Name(), impl, err)
	}
	if opts.KeepImage {
		res.Image = append([]byte(nil), images[0].Bytes()...)
	}
	// The nodes are dead past this point: recycle the private images (several
	// MB each at paper scale) for the next cell.
	for _, im := range images {
		mem.RecycleImage(im)
	}
	ph.End()
	return res, nil
}

// TraceMeta assembles the analysis metadata for a traced run of app: the
// run identity plus the shared-memory layout (computed here on a fresh
// allocator, so pass a fresh app instance — Layout may bind instance state).
func TraceMeta(app App, impl core.Impl, nprocs int, scale string) trace.Meta {
	al := mem.NewAllocator()
	app.Layout(al)
	return trace.Meta{
		App: app.Name(), Impl: impl.String(), Scale: scale, NProcs: nprocs,
		Regions: al.Regions(), Pages: al.Pages(),
	}
}

// layout binds app's shared regions: against a fresh allocator, or by
// replaying the cached layout from opts so the region tables are shared.
func layout(app App, opts Options) *mem.Allocator {
	al := mem.NewAllocator()
	if opts.Layout != nil {
		al = opts.Layout.Replayer()
	}
	app.Layout(al)
	return al
}

// initialImage produces the seeded initial image for app (already laid out
// on al), honoring a cached image from opts when the app supports reference
// adoption. cached reports whether the returned image is caller-owned.
func initialImage(app App, al *mem.Allocator, opts Options) (im *mem.Image, cached bool, err error) {
	if opts.InitImage != nil {
		if r, ok := app.(RefInit); ok {
			want := mem.ImageBytes(al.Size())
			if opts.InitImage.Size() != want {
				return nil, false, fmt.Errorf("run: %s: cached image is %d bytes, layout needs %d",
					app.Name(), opts.InitImage.Size(), want)
			}
			r.InitRef()
			return opts.InitImage, true, nil
		}
	}
	im = mem.NewImage(al.Size())
	app.Init(im)
	return im, false, nil
}

// RunSeq executes app sequentially (one processor, no DSM machinery) and
// returns the pure computation time — the paper's "1 proc." column.
func RunSeq(app App) (sim.Time, error) {
	return RunSeqWith(app, Options{})
}

// RunSeqWith is RunSeq with Options. A cached initial image is copied, not
// mutated: the sequential program runs on its own scratch image.
func RunSeqWith(app App, opts Options) (sim.Time, error) {
	al := layout(app, opts)
	var im *mem.Image
	initIm, cached, err := initialImage(app, al, opts)
	if err != nil {
		return 0, err
	}
	if cached {
		im = mem.RecycledImage(al.Size())
		im.CopyFrom(initIm)
		defer mem.RecycleImage(im)
	} else {
		im = initIm
	}
	d := &Local{im: im}
	if sa, ok := app.(StaticApp); ok && !opts.InterfaceDispatch {
		sa.ProgramSeq(d)
	} else {
		app.Program(d)
	}
	if !d.ended {
		return 0, fmt.Errorf("run: %s sequential program never called StatsEnd", app.Name())
	}
	if err := app.Verify(im); err != nil {
		return 0, fmt.Errorf("run: %s sequential: verification: %w", app.Name(), err)
	}
	return d.endTime, nil
}
