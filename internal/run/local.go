package run

import (
	"ecvslrc/internal/core"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/sim"
)

// Local is the sequential reference DSM: a single processor with direct
// memory access, no-op synchronization and an accumulated virtual clock. It
// corresponds to "the sequential version of the application" whose execution
// time the paper's Table 3 reports in the "1 proc." column.
type Local struct {
	im      *mem.Image
	clock   sim.Time
	ended   bool
	endTime sim.Time
}

// NewLocal returns a sequential DSM over im.
func NewLocal(im *mem.Image) *Local { return &Local{im: im} }

// Proc implements core.DSM.
func (l *Local) Proc() int { return 0 }

// NProcs implements core.DSM.
func (l *Local) NProcs() int { return 1 }

// Model implements core.DSM. The sequential program takes the LRC code path,
// which is the program "as written for a sequentially consistent system"
// (Section 3.3: no changes were required for LRC).
func (l *Local) Model() core.Model { return core.LRC }

// ReadI32 implements core.DSM.
func (l *Local) ReadI32(a mem.Addr) int32 { return l.im.ReadI32(a) }

// WriteI32 implements core.DSM.
func (l *Local) WriteI32(a mem.Addr, v int32) { l.im.WriteI32(a, v) }

// ReadF32 implements core.DSM.
func (l *Local) ReadF32(a mem.Addr) float32 { return l.im.ReadF32(a) }

// WriteF32 implements core.DSM.
func (l *Local) WriteF32(a mem.Addr, v float32) { l.im.WriteF32(a, v) }

// ReadF64 implements core.DSM.
func (l *Local) ReadF64(a mem.Addr) float64 { return l.im.ReadF64(a) }

// WriteF64 implements core.DSM.
func (l *Local) WriteF64(a mem.Addr, v float64) { l.im.WriteF64(a, v) }

// Acquire implements core.DSM (no-op).
func (l *Local) Acquire(core.LockID) {}

// AcquireForRebind implements core.DSM (no-op).
func (l *Local) AcquireForRebind(core.LockID) {}

// AcquireRead implements core.DSM (no-op).
func (l *Local) AcquireRead(core.LockID) {}

// Release implements core.DSM (no-op).
func (l *Local) Release(core.LockID) {}

// Barrier implements core.DSM (no-op with one processor).
func (l *Local) Barrier(core.BarrierID) {}

// Bind implements core.DSM (no-op).
func (l *Local) Bind(core.LockID, ...mem.Range) {}

// Rebind implements core.DSM (no-op).
func (l *Local) Rebind(core.LockID, ...mem.Range) {}

// Compute implements core.DSM.
func (l *Local) Compute(d sim.Time) { l.clock += d }

// Now implements core.DSM.
func (l *Local) Now() sim.Time { return l.clock }

// StatsBegin implements core.DSM.
func (l *Local) StatsBegin() {}

// StatsEnd implements core.DSM.
func (l *Local) StatsEnd() {
	l.ended = true
	l.endTime = l.clock
}

var _ core.DSM = (*Local)(nil)
