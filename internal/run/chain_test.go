package run

import (
	"fmt"
	"testing"

	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/sim"
)

// chainApp mimics Water's force pattern: K records on one page, each
// updated (read-modify-write) by every processor in lock order within a
// phase; after a barrier the owner reads and rewrites (no lock), repeated
// for several steps. Any stale read corrupts the additive chain.
type chainApp struct {
	k, steps int
	base     mem.Addr
	procs    int
}

func (a *chainApp) Name() string             { return "chain" }
func (a *chainApp) Layout(al *mem.Allocator) { a.base = al.Alloc("recs", a.k*64, 8) }
func (a *chainApp) Init(im *mem.Image)       {}

func (a *chainApp) rec(i int) mem.Addr     { return a.base + mem.Addr(64*i) }
func (a *chainApp) lock(i int) core.LockID { return core.LockID(1 + i) }
func (a *chainApp) owner(i int) int        { return i % a.procs }

func (a *chainApp) Program(d core.DSM) {
	ec := d.Model() == core.EC
	me := d.Proc()
	a.procs = d.NProcs()
	for i := 0; i < a.k; i++ {
		d.Bind(a.lock(i), mem.Range{Base: a.rec(i), Len: 48})
	}
	for s := 0; s < a.steps; s++ {
		// Phase 1: every proc adds 1 to every record, under the lock.
		for i := 0; i < a.k; i++ {
			d.Acquire(a.lock(i))
			v := d.ReadF64(a.rec(i))
			d.Compute(5 * sim.Microsecond)
			d.WriteF64(a.rec(i), v+1)
			if chainTrace {
				fmt.Printf("t=%v p%d s%d rec%d: %v -> %v\n", d.Now(), me, s, i, v, v+1)
			}
			d.Release(a.lock(i))
		}
		d.Barrier(0)
		// Phase 2: owners double their records (no lock under LRC).
		for i := 0; i < a.k; i++ {
			if a.owner(i) != me {
				continue
			}
			if ec {
				d.Acquire(a.lock(i))
			}
			v := d.ReadF64(a.rec(i))
			d.WriteF64(a.rec(i), v*2)
			if chainTrace {
				fmt.Printf("t=%v p%d s%d rec%d: double %v -> %v\n", d.Now(), me, s, i, v, v*2)
			}
			if ec {
				d.Release(a.lock(i))
			}
		}
		d.Barrier(1)
	}
	d.StatsEnd()
	if me == 0 {
		for i := 0; i < a.k; i++ {
			if ec {
				d.AcquireRead(a.lock(i))
			}
			_ = d.ReadF64(a.rec(i))
			if ec {
				d.Release(a.lock(i))
			}
		}
	}
}

func (a *chainApp) Verify(im *mem.Image) error {
	// v_{s+1} = (v_s + procs) * 2
	want := 0.0
	for s := 0; s < a.steps; s++ {
		want = (want + float64(a.procs)) * 2
	}
	for i := 0; i < a.k; i++ {
		if got := im.ReadF64(a.rec(i)); got != want {
			return fmt.Errorf("rec[%d] = %v, want %v", i, got, want)
		}
	}
	return nil
}

var chainTrace = false

func TestChainAllImpls(t *testing.T) {
	forAllImpls(t, func(t *testing.T, impl core.Impl) {
		app := &chainApp{k: 4, steps: 2}
		if _, err := Run(app, impl, 3, fabric.DefaultCostModel()); err != nil {
			t.Fatal(err)
		}
	})
}
