package trace

import (
	"sort"

	"ecvslrc/internal/sim"
)

// Critical-path extraction. The path is walked backward from the last event
// of the longest-running processor, following the dependency edges the trace
// records:
//
//   - lock wait     -> the EvLockGrant that granted this requester (jump to
//     the granter at the grant instant);
//   - barrier wait  -> the last EvBarArrive of the episode (jump to the
//     straggler at its arrival);
//   - page fetch    -> the latest EvFetchServe answering this requester
//     (jump to the serving processor at the serve instant).
//
// Each backward step covers a half-open span of virtual time exactly once:
// either a jump span [te, t) on the waiting processor (attributed to the wait
// class, naming the object waited on), or a same-processor segment walk
// (attributed by the segment's own decomposition). The spans therefore tile
// [0, End) and the path total equals the end time — the same conservation
// discipline as the profile, applied to the path.
//
// What-if projections re-cost the path with one class zeroed: "if diffs were
// free, the end time's lower bound is End - path(trap-diff)". They are lower
// bounds only — removing a class does not re-schedule the run, and a second
// path may be revealed right behind the first.

// PathSpan is one span of the critical path (walked backward; Spans are
// reported in forward time order).
type PathSpan struct {
	Proc    int
	T0, T1  sim.Time
	Class   StallClass
	ObjKind int32
	ObjID   int32
}

// CritPath is the extracted critical path and its decomposition.
type CritPath struct {
	Meta Meta
	// EndProc is the processor whose end event anchors the path; Total its
	// end time (the sum of all span durations).
	EndProc int
	Total   sim.Time
	// Spans is the path in forward time order.
	Spans []PathSpan
	// Class decomposes the path total per stall class.
	Class [NumStallClasses]sim.Time
	// Objects aggregates path time per (class, object), sorted by descending
	// time (ties by class then object) — "what is the path made of".
	Objects []StackEntry
	// Truncated reports that the walk hit its step bound and the decomposition
	// covers only the spans extracted before the bound (never in practice;
	// the bound guards report generation against malformed traces).
	Truncated bool
}

// WhatIf returns the projected lower bound on the anchor processor's end
// time when class c is free (its path share removed).
func (cp *CritPath) WhatIf(c StallClass) sim.Time {
	return cp.Total - cp.Class[c]
}

// maxPathSteps bounds the backward walk. Each jump strictly decreases the
// cursor time and each segment walk consumes one segment, so a genuine trace
// terminates far below any realistic bound; this guards hostile input.
const maxPathSteps = 1 << 26

// grantEdge indexes one EvLockGrant by requester for the backward walk.
type grantEdge struct {
	at      sim.Time
	granter int
}

// serveEdge indexes one EvFetchServe by requester.
type serveEdge struct {
	at     sim.Time
	server int
}

// arriveEdge indexes one EvBarArrive.
type arriveEdge struct {
	at   sim.Time
	proc int
}

// ExtractCriticalPath walks the dependency graph backward from the profile's
// longest processor. The result is a pure function of the trace and profile.
func ExtractCriticalPath(t *Tracer, prof *Profile) *CritPath {
	cp := &CritPath{Meta: prof.Meta, EndProc: -1}
	if t == nil || len(prof.Procs) == 0 {
		return cp
	}

	// Dependency indexes, each sorted by time (append order per key is
	// already time-ordered within one emitting processor, but grants for one
	// requester can come from different granters, so sort explicitly).
	grants := make(map[[2]int32][]grantEdge) // (lock, requester) -> grants
	serves := make(map[[2]int32][]serveEdge) // (page, requester) -> serves
	arrivals := make(map[int32][]arriveEdge) // barrier -> arrivals
	for _, r := range t.Merged() {
		switch r.Kind {
		case EvLockGrant:
			k := [2]int32{r.A, r.B}
			grants[k] = append(grants[k], grantEdge{at: r.At, granter: int(r.Proc)})
		case EvFetchServe:
			k := [2]int32{r.A, r.B}
			serves[k] = append(serves[k], serveEdge{at: r.At, server: int(r.Proc)})
		case EvBarArrive:
			arrivals[r.A] = append(arrivals[r.A], arriveEdge{at: r.At, proc: int(r.Proc)})
		}
	}

	// Anchor: the processor with the largest end time (lowest id on ties).
	for i := range prof.Procs {
		if cp.EndProc < 0 || prof.Procs[i].End > prof.Procs[cp.EndProc].End {
			cp.EndProc = i
		}
	}
	cp.Total = prof.Procs[cp.EndProc].End

	proc, tcur := cp.EndProc, cp.Total
	steps := 0
	for tcur > 0 {
		steps++
		if steps > maxPathSteps {
			cp.Truncated = true
			break
		}
		seg := segmentAt(prof.Procs[proc].Segments, tcur)
		if seg == nil {
			// Time before the processor's first block: compute.
			cp.addSpan(PathSpan{Proc: proc, T0: 0, T1: tcur, Class: ClassCompute, ObjKind: ObjNone, ObjID: -1})
			break
		}
		if q, te, ok := dependency(seg, proc, tcur, grants, serves, arrivals); ok && te < tcur && te > seg.T0 {
			// The wake was enabled by an event on another processor: the
			// span [te, tcur) is genuine waiting for that chain.
			cp.addSpan(PathSpan{Proc: proc, T0: te, T1: tcur, Class: seg.Class, ObjKind: seg.ObjKind, ObjID: seg.ObjID})
			proc, tcur = q, te
			continue
		}
		// Walk the segment (or its remaining prefix) on this processor.
		cp.addSegment(proc, seg, tcur)
		tcur = seg.T0
	}

	// Spans were appended walking backward; reverse into forward order.
	for i, j := 0, len(cp.Spans)-1; i < j; i, j = i+1, j-1 {
		cp.Spans[i], cp.Spans[j] = cp.Spans[j], cp.Spans[i]
	}

	// Aggregate per (class, object).
	agg := make(map[[3]int32]*StackEntry)
	for _, s := range cp.Spans {
		key := [3]int32{int32(s.Class), s.ObjKind, s.ObjID}
		e := agg[key]
		if e == nil {
			e = &StackEntry{Proc: -1, Class: s.Class, ObjKind: s.ObjKind, ObjID: s.ObjID}
			agg[key] = e
		}
		e.Time += s.T1 - s.T0
	}
	for _, e := range agg {
		cp.Objects = append(cp.Objects, *e)
	}
	sort.Slice(cp.Objects, func(i, j int) bool {
		a, b := cp.Objects[i], cp.Objects[j]
		if a.Time != b.Time {
			return a.Time > b.Time
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.ObjKind != b.ObjKind {
			return a.ObjKind < b.ObjKind
		}
		return a.ObjID < b.ObjID
	})
	return cp
}

// addSpan accumulates one backward-walk span.
func (cp *CritPath) addSpan(s PathSpan) {
	if s.T1 <= s.T0 {
		return
	}
	cp.Spans = append(cp.Spans, s)
	cp.Class[s.Class] += s.T1 - s.T0
}

// addSegment walks the prefix [seg.T0, upTo) of a segment onto the path,
// splitting by the segment's part decomposition. Parts carry durations, not
// positions; the prefix takes parts in order until the length is covered, so
// a mid-segment landing attributes the same classes a full walk would, only
// clipped.
func (cp *CritPath) addSegment(proc int, seg *Segment, upTo sim.Time) {
	want := upTo - seg.T0
	at := seg.T0
	var spans []PathSpan
	for _, part := range seg.parts() {
		if want <= 0 {
			break
		}
		d := part.D
		if d > want {
			d = want
		}
		spans = append(spans, PathSpan{Proc: proc, T0: at, T1: at + d, Class: part.Class, ObjKind: part.ObjKind, ObjID: part.ObjID})
		at += d
		want -= d
	}
	if want > 0 {
		// Part durations fell short of the interval (cannot happen: parts
		// sum to the interval length); cover the rest as the base class.
		spans = append(spans, PathSpan{Proc: proc, T0: at, T1: upTo, Class: seg.Class, ObjKind: seg.ObjKind, ObjID: seg.ObjID})
	}
	// The walk appends backward (the caller's spans run from latest to
	// earliest, reversed once at the end), so the segment's parts must be
	// appended latest-first too.
	for i := len(spans) - 1; i >= 0; i-- {
		cp.addSpan(spans[i])
	}
}

// segmentAt finds the segment containing (t-1, t], i.e. with T0 < t <= T1.
func segmentAt(segs []Segment, t sim.Time) *Segment {
	i := sort.Search(len(segs), func(i int) bool { return segs[i].T1 >= t })
	if i == len(segs) {
		return nil
	}
	if s := &segs[i]; s.T0 < t {
		return s
	}
	return nil
}

// dependency resolves the event that enabled the wake ending seg at tcur: the
// latest matching edge at or before tcur. Returns ok=false for compute and
// other non-dependency segments.
func dependency(seg *Segment, proc int, tcur sim.Time,
	grants map[[2]int32][]grantEdge, serves map[[2]int32][]serveEdge,
	arrivals map[int32][]arriveEdge) (int, sim.Time, bool) {
	switch seg.Class {
	case ClassLockWait:
		es := grants[[2]int32{seg.ObjID, int32(proc)}]
		i := sort.Search(len(es), func(i int) bool { return es[i].at > tcur })
		for i--; i >= 0; i-- {
			if es[i].granter != proc {
				return es[i].granter, es[i].at, true
			}
		}
	case ClassBarrierWait:
		es := arrivals[seg.ObjID]
		i := sort.Search(len(es), func(i int) bool { return es[i].at > tcur })
		for i--; i >= 0; i-- {
			if es[i].proc != proc {
				return es[i].proc, es[i].at, true
			}
		}
	case ClassPageFetch:
		if seg.ObjID < 0 {
			return 0, 0, false
		}
		es := serves[[2]int32{seg.ObjID, int32(proc)}]
		i := sort.Search(len(es), func(i int) bool { return es[i].at > tcur })
		for i--; i >= 0; i-- {
			if es[i].server != proc {
				return es[i].server, es[i].at, true
			}
		}
	}
	return 0, 0, false
}
