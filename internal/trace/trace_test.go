package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"unsafe"

	"ecvslrc/internal/mem"
	"ecvslrc/internal/sim"
)

// TestRecWireSize pins the fixed-width record geometry the binary format and
// the alloc guards rely on.
func TestRecWireSize(t *testing.T) {
	if recWire != 28 {
		t.Errorf("wire record is %d bytes, want 28", recWire)
	}
	if got := unsafe.Sizeof(Rec{}); got != 32 {
		t.Errorf("in-memory record is %d bytes, want 32", got)
	}
}

// TestNilTracerEmitsAreNoOps drives every emit helper through a nil tracer:
// the disabled fast path must be callable and record nothing.
func TestNilTracerEmitsAreNoOps(t *testing.T) {
	var tr *Tracer
	tr.Wake(1, 0)
	tr.Dispatch(1, 2, 0)
	tr.Send(1, 0, 1, 2, 64)
	tr.Deliver(1, 0, 1, 2, 64)
	tr.LinkClaim(1, 0, 1, 64)
	tr.LinkWait(1, 0, 5)
	tr.Fault(1, 0, 3, true)
	tr.Miss(1, 0, 3, 2, false)
	tr.FetchServe(1, 0, 3, 1, 128)
	tr.Twin(1, 0, DomainPage, 3)
	tr.Collect(1, 0, DomainPage, 3, 1, 16)
	tr.Apply(1, 0, DomainPage, 3, 1, 16)
	tr.LockReq(1, 0, 7, false)
	tr.LockAcq(1, 0, 7, false, false)
	tr.LockGrant(1, 0, 7, 1, false, 32)
	tr.LockRel(1, 0, 7, 0)
	tr.BarArrive(1, 0, 2)
	tr.BarDepart(1, 0, 2)
	tr.Bind(1, 0, 7, 4096, 128)
	tr.Block(1, 0, "lrc-fetch")
	tr.Work(1, 0, WorkTrapDiff, ObjPage, 3, 25)
	tr.Recovery(1, 0, 40)
	if tr.Len() != 0 {
		t.Errorf("nil tracer recorded %d events", tr.Len())
	}
	if got := tr.Merged(); got != nil {
		t.Errorf("nil tracer merged %d records", len(got))
	}
}

// TestMergedOrder checks the canonical order: by time, ties by processor,
// then per-processor emission order — even when a processor's buffer is
// locally out of time order (handler-context timestamps running ahead).
func TestMergedOrder(t *testing.T) {
	tr := New(3)
	tr.Fault(50, 2, 1, false)
	tr.Fault(10, 1, 2, false)
	tr.Fault(30, 2, 3, false) // proc 2 emits 50 then 30: out of order locally
	tr.Fault(10, 0, 4, false)
	tr.Fault(10, 1, 5, false)
	got := tr.Merged()
	var order []int32
	for _, r := range got {
		order = append(order, r.A)
	}
	want := []int32{4, 2, 5, 3, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("merged order %v, want %v", order, want)
		}
	}
}

// TestBinaryRoundTrip writes a trace and reads it back record-for-record.
func TestBinaryRoundTrip(t *testing.T) {
	tr := New(2)
	tr.Send(5, 0, 1, 10, 100)
	tr.Miss(7, 1, 3, 2, true)
	tr.LockGrant(9, 0, 4, 1, true, 256)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tr.Merged(), back.Merged()
	if len(a) != len(b) {
		t.Fatalf("round trip: %d records, want %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("record %d: %+v != %+v", i, b[i], a[i])
		}
	}
	// Re-serializing must be byte-identical (the determinism contract).
	var buf2 bytes.Buffer
	if err := back.WriteBinary(&buf2); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-serialized trace differs")
	}
}

// TestReadBinaryRejectsGarbage covers the error paths.
func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a trace at all")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

// TestParseReportsErrors pins the ErrConfig wrapping convention.
func TestParseReportsErrors(t *testing.T) {
	if _, err := ParseReports("pages,nonsense"); !errors.Is(err, ErrConfig) {
		t.Errorf("unknown report: err = %v, want ErrConfig wrap", err)
	}
	if _, err := ParseReports(",,"); !errors.Is(err, ErrConfig) {
		t.Errorf("empty selection: err = %v, want ErrConfig wrap", err)
	}
	all, err := ParseReports("")
	if err != nil || len(all) != len(ReportNames()) {
		t.Errorf("default selection = %v, %v", all, err)
	}
	sel, err := ParseReports(" pages , locks ,pages")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0] != ReportPages || sel[1] != ReportLocks {
		t.Errorf("selection = %v, want [pages locks] deduplicated", sel)
	}
}

// TestOptionsValidate pins the out-dir requirement for file reports.
func TestOptionsValidate(t *testing.T) {
	ok := Options{Reports: []Report{ReportSummary}, OutDir: ""}
	if err := ok.Validate(); err != nil {
		t.Errorf("summary-to-stdout rejected: %v", err)
	}
	bad := Options{Reports: []Report{ReportPages}, OutDir: ""}
	if err := bad.Validate(); !errors.Is(err, ErrConfig) {
		t.Errorf("pages without out dir: err = %v, want ErrConfig wrap", err)
	}
}

// TestMsgClassNames pins the message-class taxonomy used by the timeline.
func TestMsgClassNames(t *testing.T) {
	if got := MsgClassName(1); got != "lock-req" {
		t.Errorf("kind 1 = %q", got)
	}
	if got := MsgClassName(11); got != "page-reply" {
		t.Errorf("kind 11 = %q", got)
	}
	if got := MsgClassName(99); got != "kind-99" {
		t.Errorf("kind 99 = %q", got)
	}
	names := MsgClassNames()
	if names[len(names)-1] != "other" {
		t.Errorf("last class = %q, want other", names[len(names)-1])
	}
}

// synthetic meta for classifier tests: 6 pages in one region, 4 procs.
func classifierMeta() Meta {
	return Meta{
		App: "synthetic", Impl: "LRC-diff", Scale: "test", NProcs: 4,
		Regions: []mem.Region{{Name: "data", Base: 0, Size: 6 * mem.PageSize, Block: 4}},
		Pages:   6,
	}
}

// TestClassifierPatterns builds one synthetic history per pattern and checks
// the classifier's label for each.
func TestClassifierPatterns(t *testing.T) {
	tr := New(4)
	at := sim.Time(0)
	tick := func() sim.Time { at += 10; return at }

	// Page 0: untouched -> private.

	// Page 1: p0 writes once, p1..p3 read-miss it repeatedly -> read-mostly.
	tr.Collect(tick(), 0, DomainPage, 1, 1, 8)
	for i := 0; i < 3; i++ {
		for p := 1; p < 4; p++ {
			tr.Miss(tick(), p, 1, 1, false)
			tr.FetchServe(tick(), 0, 1, p, 64)
		}
	}

	// Page 2: p0 and p1 alternate write-missing and re-writing -> migratory.
	for i := 0; i < 4; i++ {
		p := i % 2
		tr.Miss(tick(), p, 2, 1, true)
		tr.FetchServe(tick(), 1-p, 2, p, 64)
		tr.Collect(tick(), p, DomainPage, 2, i+1, 8)
	}

	// Page 3: one miss fetches from two writers at once -> false-sharing.
	tr.Collect(tick(), 0, DomainPage, 3, 1, 8)
	tr.Collect(tick(), 1, DomainPage, 3, 1, 8)
	tr.Miss(tick(), 2, 3, 2, false)

	// Page 4: p0 and p1 write it, p2 and p3 only read it, reads dominate ->
	// producer-consumer.
	tr.Collect(tick(), 0, DomainPage, 4, 1, 8)
	tr.Collect(tick(), 1, DomainPage, 4, 1, 8)
	for i := 0; i < 4; i++ {
		tr.Miss(tick(), 2, 4, 1, false)
		tr.Miss(tick(), 3, 4, 1, false)
	}
	tr.Miss(tick(), 1, 4, 1, true)

	// Page 5: single writer, fetched only to write -> producer-consumer
	// (write fetches dominate with one writer).
	tr.Collect(tick(), 0, DomainPage, 5, 1, 8)
	tr.Miss(tick(), 1, 5, 1, true)
	tr.Miss(tick(), 2, 5, 1, true)

	a := Analyze(tr, classifierMeta())
	want := map[int]Pattern{
		0: PatternPrivate,
		1: PatternReadMostly,
		2: PatternMigratory,
		3: PatternFalseSharing,
		4: PatternProducerConsumer,
		5: PatternProducerConsumer,
	}
	if len(a.Pages) != 6 {
		t.Fatalf("%d page reports, want 6 (every laid-out page classified)", len(a.Pages))
	}
	for _, p := range a.Pages {
		if p.Pattern != want[p.Page] {
			t.Errorf("page %d classified %v, want %v", p.Page, p.Pattern, want[p.Page])
		}
	}
}

// TestAnalyzeLockHistory drives a small lock scenario through the analyzer:
// request/grant/acquire latencies, queue depth and holders.
func TestAnalyzeLockHistory(t *testing.T) {
	tr := New(3)
	// p1 requests at t=100, p0 grants at t=150, p1 acquires at t=200.
	tr.LockReq(100, 1, 7, false)
	tr.LockGrant(150, 0, 7, 1, false, 64)
	tr.LockAcq(200, 1, 7, false, false)
	// p1 releases with 2 queued; p2's acquire comes later.
	tr.LockRel(300, 1, 7, 2)
	tr.LockReq(250, 2, 7, false)
	tr.LockGrant(310, 1, 7, 2, false, 64)
	tr.LockAcq(400, 2, 7, false, false)
	// p0 reacquires locally.
	tr.LockAcq(500, 0, 7, false, true)

	a := Analyze(tr, Meta{App: "x", Impl: "EC-diff", Scale: "test", NProcs: 3})
	if len(a.Locks) != 1 {
		t.Fatalf("%d lock reports, want 1", len(a.Locks))
	}
	l := a.Locks[0]
	if l.Lock != 7 || l.Acquires != 3 || l.Local != 1 || l.Remote != 2 {
		t.Errorf("lock counts: %+v", l)
	}
	if l.Grants != 2 || l.BytesMoved != 128 {
		t.Errorf("grants %d bytes %d, want 2/128", l.Grants, l.BytesMoved)
	}
	if l.WaitTotal != (200-100)+(400-250) || l.WaitMax != 150 {
		t.Errorf("wait total %v max %v", l.WaitTotal, l.WaitMax)
	}
	if l.HandoffTotal != (200-150)+(400-310) || l.HandoffMax != 90 {
		t.Errorf("handoff total %v max %v", l.HandoffTotal, l.HandoffMax)
	}
	if l.MaxQueue != 2 {
		t.Errorf("max queue %d, want 2", l.MaxQueue)
	}
	if l.Holders != 3 {
		t.Errorf("holders %d, want 3", l.Holders)
	}
}

// TestAnalyzeBarrierImbalance covers episode grouping and imbalance.
func TestAnalyzeBarrierImbalance(t *testing.T) {
	tr := New(2)
	// Episode 1: arrivals at 100 and 130 (imbalance 30, last = p1).
	tr.BarArrive(100, 0, 0)
	tr.BarArrive(130, 1, 0)
	// Episode 2: arrivals at 200 and 210 (imbalance 10, last = p1).
	tr.BarArrive(200, 0, 0)
	tr.BarArrive(210, 1, 0)
	a := Analyze(tr, Meta{App: "x", Impl: "LRC-diff", Scale: "test", NProcs: 2})
	if len(a.Barriers) != 1 {
		t.Fatalf("%d barrier reports, want 1", len(a.Barriers))
	}
	b := a.Barriers[0]
	if b.Episodes != 2 || b.ImbalanceTotal != 40 || b.ImbalanceMax != 30 || b.LastProc != 1 {
		t.Errorf("barrier report %+v", b)
	}
}

// TestEmitReportsBarrierSelectsSummary: selecting only barriers still writes
// the summary (the barrier table lives inside it).
func TestEmitReportsBarrierSelectsSummary(t *testing.T) {
	tr := New(2)
	tr.BarArrive(10, 0, 0)
	tr.BarArrive(20, 1, 0)
	a := Analyze(tr, Meta{App: "x", Impl: "LRC-diff", Scale: "test", NProcs: 2})
	dir := t.TempDir()
	written, err := EmitReports(dir, []Report{ReportBarriers}, Artifacts{Analysis: a}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(written) != 1 || !strings.HasSuffix(written[0], "summary.md") {
		t.Errorf("written = %v, want just summary.md", written)
	}
}
