package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"ecvslrc/internal/sim"
)

// WriteProfileMarkdown renders the virtual-time profile: the per-processor
// stall-class breakdown with its conservation line, the hottest folded
// stacks, and the critical path's class and object decomposition.
func WriteProfileMarkdown(w io.Writer, prof *Profile, cp *CritPath) error {
	bw := &errWriter{w: w}
	m := prof.Meta
	bw.printf("# Virtual-time profile — %s on %s, %d procs (%s scale)\n\n",
		m.App, m.Impl, m.NProcs, m.Scale)
	bw.printf("- span: %v (longest processor)\n", prof.Span)
	bw.printf("- conservation: per-processor class totals sum exactly to each end time\n\n")

	bw.printf("## Per-processor stall breakdown\n\n")
	bw.printf("| proc | end |")
	for _, c := range StallClasses() {
		bw.printf(" %s |", c)
	}
	bw.printf("\n|-----:|----:|")
	for range StallClasses() {
		bw.printf("----:|")
	}
	bw.printf("\n")
	for i := range prof.Procs {
		pp := &prof.Procs[i]
		bw.printf("| p%d | %v |", pp.Proc, pp.End)
		for _, c := range StallClasses() {
			bw.printf(" %s |", pct(pp.Class[c], pp.End))
		}
		bw.printf("\n")
	}
	var endSum sim.Time
	for i := range prof.Procs {
		endSum += prof.Procs[i].End
	}
	bw.printf("| **all** | %v |", endSum)
	for _, c := range StallClasses() {
		bw.printf(" %s |", pct(prof.Total[c], endSum))
	}
	bw.printf("\n")

	bw.printf("\n## Hottest stacks (proc;class;object)\n\n")
	bw.printf("| stack | time | share |\n|-------|-----:|------:|\n")
	top := topStacks(prof, 20)
	for _, e := range top {
		bw.printf("| p%d;%s;%s | %v | %s |\n",
			e.Proc, e.Class, ObjName(e.ObjKind, e.ObjID, m), e.Time, pct(e.Time, endSum))
	}
	if len(prof.Stacks) > len(top) {
		bw.printf("\n(%d further stacks in profile.folded)\n", len(prof.Stacks)-len(top))
	}

	if cp != nil && cp.EndProc >= 0 {
		bw.printf("\n## Critical path\n\n")
		bw.printf("- anchor: p%d, total %v over %d spans\n", cp.EndProc, cp.Total, len(cp.Spans))
		if cp.Truncated {
			bw.printf("- WARNING: walk truncated at the step bound; decomposition is partial\n")
		}
		bw.printf("\n| class | path time | share |\n|-------|----------:|------:|\n")
		for _, c := range StallClasses() {
			if cp.Class[c] == 0 {
				continue
			}
			bw.printf("| %s | %v | %s |\n", c, cp.Class[c], pct(cp.Class[c], cp.Total))
		}
		bw.printf("\n### Path objects\n\n")
		bw.printf("| class | object | path time | share |\n|-------|--------|----------:|------:|\n")
		objs := cp.Objects
		if len(objs) > 20 {
			objs = objs[:20]
		}
		for _, e := range objs {
			bw.printf("| %s | %s | %v | %s |\n",
				e.Class, ObjName(e.ObjKind, e.ObjID, m), e.Time, pct(e.Time, cp.Total))
		}
	}
	return bw.err
}

// topStacks returns the n largest folded-stack entries (ties by the stable
// stack order).
func topStacks(prof *Profile, n int) []StackEntry {
	out := make([]StackEntry, len(prof.Stacks))
	copy(out, prof.Stacks)
	// Stable on the (proc, class, object) pre-sort, so ties are deterministic.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time > out[j].Time })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// pct renders a share of a total ("42.3%"), "-" when the total is zero.
func pct(part, total sim.Time) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}

// WriteFoldedStacks emits the profile in the folded-stack format flamegraph
// tools consume: one "proc;class;object value" line per aggregated frame,
// value in simulated nanoseconds.
func WriteFoldedStacks(w io.Writer, prof *Profile) error {
	bw := &errWriter{w: w}
	for _, e := range prof.Stacks {
		bw.printf("p%d;%s;%s %d\n", e.Proc, e.Class, ObjName(e.ObjKind, e.ObjID, prof.Meta), int64(e.Time))
	}
	return bw.err
}

// WriteCritPathCSV emits the critical path's spans in forward time order.
func WriteCritPathCSV(w io.Writer, cp *CritPath) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"proc", "start_ns", "end_ns", "duration_ns", "class", "object"}); err != nil {
		return err
	}
	for _, s := range cp.Spans {
		rec := []string{
			strconv.Itoa(s.Proc),
			i64(int64(s.T0)), i64(int64(s.T1)), i64(int64(s.T1 - s.T0)),
			s.Class.String(), ObjName(s.ObjKind, s.ObjID, cp.Meta),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteWhatIfMarkdown renders the what-if projections: the anchor's end time
// re-costed with each class's path share removed. The projections are lower
// bounds — zeroing a class does not re-schedule the run, and a second
// near-critical path may sit right behind the first.
func WriteWhatIfMarkdown(w io.Writer, cp *CritPath) error {
	bw := &errWriter{w: w}
	m := cp.Meta
	bw.printf("# What-if projections — %s on %s, %d procs (%s scale)\n\n",
		m.App, m.Impl, m.NProcs, m.Scale)
	if cp.EndProc < 0 {
		bw.printf("(empty trace: no path)\n")
		return bw.err
	}
	bw.printf("Critical path: p%d, %v. Each row zeroes one class on the path;\n", cp.EndProc, cp.Total)
	bw.printf("the projection is a lower bound (the run is not re-scheduled).\n\n")
	bw.printf("| class zeroed | path share | projected end | max speedup |\n")
	bw.printf("|--------------|-----------:|--------------:|------------:|\n")
	for _, c := range StallClasses() {
		if cp.Class[c] == 0 {
			continue
		}
		lower := cp.WhatIf(c)
		speed := "-"
		if lower > 0 {
			speed = fmt.Sprintf("%.2fx", float64(cp.Total)/float64(lower))
		}
		bw.printf("| %s | %s | %v | %s |\n", c, pct(cp.Class[c], cp.Total), lower, speed)
	}
	return bw.err
}

// WriteCritPathChrome renders the critical path as a Chrome trace-event
// overlay: one "critical path" process with the path spans on each involved
// processor's track, loadable next to timeline.json in Perfetto.
func WriteCritPathChrome(w io.Writer, cp *CritPath) error {
	evs := make([]chromeEvent, 0, len(cp.Spans))
	for _, s := range cp.Spans {
		evs = append(evs, chromeEvent{
			Name: fmt.Sprintf("%s %s", s.Class, ObjName(s.ObjKind, s.ObjID, cp.Meta)),
			Ph:   "X", Ts: s.T0.Micros(), Dur: s.T1.Micros() - s.T0.Micros(),
			Pid: 1, Tid: s.Proc,
			Args: map[string]any{"class": s.Class.String()},
		})
	}
	doc := map[string]any{
		"traceEvents":     evs,
		"displayTimeUnit": "ms",
		"otherData": map[string]any{
			"app": cp.Meta.App, "impl": cp.Meta.Impl, "nprocs": cp.Meta.NProcs,
			"scale": cp.Meta.Scale, "overlay": "critical-path",
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
