package trace

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ecvslrc/internal/sim"
)

// ErrConfig is wrapped by every trace-options validation failure, mirroring
// the harness.Config.Validate convention so callers classify with errors.Is.
var ErrConfig = errors.New("invalid trace options")

// Report names one emittable attribution artifact.
type Report int

const (
	// ReportSummary is the markdown attribution summary (summary.md).
	ReportSummary Report = iota
	// ReportPages is the per-page heat table (pages.csv).
	ReportPages
	// ReportLocks is the per-lock contention table (locks.csv).
	ReportLocks
	// ReportBarriers is the barrier-imbalance table (rendered inside
	// summary.md; selecting it without summary still emits the summary).
	ReportBarriers
	// ReportTimeline is the Chrome trace-event JSON timeline (timeline.json,
	// loadable in chrome://tracing or Perfetto).
	ReportTimeline
	// ReportBinary is the raw binary event trace (trace.bin).
	ReportBinary
	// ReportProfile is the virtual-time profile: the markdown stall-class
	// breakdown (profile.md) plus folded stacks for flamegraph tools
	// (profile.folded).
	ReportProfile
	// ReportCritPath is the critical path: the span table (critpath.csv)
	// plus a Chrome-trace overlay of the path (critpath.json).
	ReportCritPath
	// ReportWhatIf is the what-if projection table (whatif.md): the path
	// re-costed with each stall class zeroed.
	ReportWhatIf
)

// String names the report as the -report flag spells it.
func (r Report) String() string {
	switch r {
	case ReportSummary:
		return "summary"
	case ReportPages:
		return "pages"
	case ReportLocks:
		return "locks"
	case ReportBarriers:
		return "barriers"
	case ReportTimeline:
		return "timeline"
	case ReportBinary:
		return "bin"
	case ReportProfile:
		return "profile"
	case ReportCritPath:
		return "critpath"
	case ReportWhatIf:
		return "whatif"
	}
	return "?"
}

// ReportNames lists the valid -report selector names.
func ReportNames() []string {
	return []string{"summary", "pages", "locks", "barriers", "timeline", "bin", "profile", "critpath", "whatif"}
}

// ParseReports parses a comma-separated report selection ("pages,locks,
// timeline"). Unknown names fail with an error wrapping ErrConfig; an empty
// spec selects every report.
func ParseReports(spec string) ([]Report, error) {
	if strings.TrimSpace(spec) == "" {
		return []Report{ReportSummary, ReportPages, ReportLocks, ReportBarriers, ReportTimeline, ReportBinary,
			ReportProfile, ReportCritPath, ReportWhatIf}, nil
	}
	var out []Report
	seen := make(map[Report]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var r Report
		switch part {
		case "summary":
			r = ReportSummary
		case "pages":
			r = ReportPages
		case "locks":
			r = ReportLocks
		case "barriers":
			r = ReportBarriers
		case "timeline":
			r = ReportTimeline
		case "bin":
			r = ReportBinary
		case "profile":
			r = ReportProfile
		case "critpath":
			r = ReportCritPath
		case "whatif":
			r = ReportWhatIf
		default:
			return nil, fmt.Errorf("trace: %w: unknown report %q (known: %s)",
				ErrConfig, part, strings.Join(ReportNames(), ", "))
		}
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("trace: %w: report list selects nothing", ErrConfig)
	}
	return out, nil
}

// Options configures trace capture and report emission for the CLIs.
type Options struct {
	// Reports selects the artifacts to emit (nil = all).
	Reports []Report
	// OutDir is the artifact directory; empty means "summary to stdout".
	OutDir string
	// Sched enables the scheduler dispatch channel (very voluminous).
	Sched bool
}

// Validate reports whether the options are usable. Errors wrap ErrConfig.
func (o Options) Validate() error {
	if o.OutDir == "" {
		for _, r := range o.Reports {
			if r != ReportSummary && r != ReportBarriers {
				return fmt.Errorf("trace: %w: report %v needs an output directory", ErrConfig, r)
			}
		}
	}
	return nil
}

const defaultTopPages = 20

// WriteMarkdown renders the attribution summary: run identity, traffic
// totals, the pattern census, the hottest pages, the most contended locks,
// barrier imbalance and the message-class timeline.
func WriteMarkdown(w io.Writer, a *Analysis) error {
	bw := &errWriter{w: w}
	bw.printf("# Trace attribution — %s on %s, %d procs (%s scale)\n\n",
		a.Meta.App, a.Meta.Impl, a.Meta.NProcs, a.Meta.Scale)
	bw.printf("- span: %v\n- messages: %d\n- data: %.2f MB\n",
		a.Span, a.TotalMsgs, float64(a.TotalBytes)/1e6)
	if a.LinkWait > 0 {
		bw.printf("- link wait (contention): %v\n", a.LinkWait)
	}
	counts := a.PatternCounts()
	bw.printf("- pages: %d (", len(a.Pages))
	first := true
	for _, p := range []Pattern{PatternPrivate, PatternReadMostly, PatternMigratory, PatternProducerConsumer, PatternFalseSharing} {
		if counts[p] == 0 {
			continue
		}
		if !first {
			bw.printf(", ")
		}
		first = false
		bw.printf("%d %s", counts[p], p)
	}
	bw.printf(")\n\n")

	bw.printf("## Hottest pages\n\n")
	bw.printf("| page | region | pattern | faults | misses | twins | collects | applies | bytes | writers | readers | moves |\n")
	bw.printf("|-----:|--------|---------|-------:|-------:|------:|---------:|--------:|------:|--------:|--------:|------:|\n")
	hot := hottestPages(a, defaultTopPages)
	for _, p := range hot {
		bw.printf("| %d | %s | %s | %d | %d | %d | %d | %d | %d | %d | %d | %d |\n",
			p.Page, p.Region, p.Pattern, p.Faults, p.Misses, p.Twins, p.Collects,
			p.Applies, p.BytesMoved, p.Writers, p.Readers, p.OwnerMoves)
	}
	if len(a.Pages) > len(hot) {
		bw.printf("\n(%d further pages in pages.csv)\n", len(a.Pages)-len(hot))
	}

	bw.printf("\n## Locks\n\n")
	bw.printf("| lock | acquires | ro | local | remote | grants | bytes | wait avg | wait max | handoff avg | max queue | holders |\n")
	bw.printf("|-----:|---------:|---:|------:|-------:|-------:|------:|---------:|---------:|------------:|----------:|--------:|\n")
	for _, l := range contendedLocks(a) {
		bw.printf("| %d | %d | %d | %d | %d | %d | %d | %v | %v | %v | %d | %d |\n",
			l.Lock, l.Acquires, l.ReadOnly, l.Local, l.Remote, l.Grants, l.BytesMoved,
			avgTime(l.WaitTotal, l.Remote), l.WaitMax, avgTime(l.HandoffTotal, l.Remote),
			l.MaxQueue, l.Holders)
	}

	bw.printf("\n## Barriers\n\n")
	bw.printf("| barrier | episodes | imbalance avg | imbalance max | usual last |\n")
	bw.printf("|--------:|---------:|--------------:|--------------:|-----------:|\n")
	for _, b := range a.Barriers {
		last := "-"
		if b.LastProc >= 0 {
			last = fmt.Sprintf("p%d", b.LastProc)
		}
		bw.printf("| %d | %d | %v | %v | %s |\n",
			b.Barrier, b.Episodes, avgTime(b.ImbalanceTotal, b.Episodes), b.ImbalanceMax, last)
	}

	if len(a.Links) > 0 {
		bw.printf("\n## Fault injection per link\n\n")
		bw.printf("| link | drops | retransmits | acks | dup drops |\n")
		bw.printf("|------|------:|------------:|-----:|----------:|\n")
		for _, l := range a.Links {
			bw.printf("| p%d→p%d | %d | %d | %d | %d |\n",
				l.From, l.To, l.Drops, l.Retransmits, l.Acks, l.DupDrops)
		}
	}

	bw.printf("\n## Message classes over time\n\n")
	bw.printf("| interval |")
	for _, c := range a.Classes {
		bw.printf(" %s |", c)
	}
	bw.printf("\n|----------|")
	for range a.Classes {
		bw.printf("------:|")
	}
	bw.printf("\n")
	for _, row := range a.Intervals {
		total := int64(0)
		for _, m := range row.Msgs {
			total += m
		}
		if total == 0 {
			continue
		}
		bw.printf("| %v–%v |", row.Start, row.End)
		for i := range a.Classes {
			bw.printf(" %d |", row.Msgs[i])
		}
		bw.printf("\n")
	}
	return bw.err
}

// hottestPages returns the top pages by bytes moved (ties by page number),
// skipping fully idle pages.
func hottestPages(a *Analysis, n int) []PageReport {
	hot := make([]PageReport, 0, len(a.Pages))
	for _, p := range a.Pages {
		if p.Faults+p.Misses+p.BytesMoved+p.Collects > 0 {
			hot = append(hot, p)
		}
	}
	sort.SliceStable(hot, func(i, j int) bool {
		if hot[i].BytesMoved != hot[j].BytesMoved {
			return hot[i].BytesMoved > hot[j].BytesMoved
		}
		return hot[i].Page < hot[j].Page
	})
	if len(hot) > n {
		hot = hot[:n]
	}
	return hot
}

// contendedLocks returns the locks by descending total wait (ties by id).
func contendedLocks(a *Analysis) []LockReport {
	out := make([]LockReport, len(a.Locks))
	copy(out, a.Locks)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].WaitTotal != out[j].WaitTotal {
			return out[i].WaitTotal > out[j].WaitTotal
		}
		return out[i].Lock < out[j].Lock
	})
	return out
}

func avgTime(total sim.Time, n int64) sim.Time {
	if n == 0 {
		return 0
	}
	return total / sim.Time(n)
}

// WritePagesCSV emits the full per-page heat table.
func WritePagesCSV(w io.Writer, a *Analysis) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"page", "region", "pattern", "faults", "misses", "write_misses",
		"multi_writer_misses", "twins", "collects", "applies",
		"words_collected", "words_applied", "bytes_moved",
		"writers", "readers", "owner_moves",
	}); err != nil {
		return err
	}
	for _, p := range a.Pages {
		rec := []string{
			strconv.Itoa(p.Page), p.Region, p.Pattern.String(),
			i64(p.Faults), i64(p.Misses), i64(p.WriteMisses),
			i64(p.MultiWriterMisses), i64(p.Twins), i64(p.Collects), i64(p.Applies),
			i64(p.WordsCollected), i64(p.WordsApplied), i64(p.BytesMoved),
			strconv.Itoa(p.Writers), strconv.Itoa(p.Readers), i64(p.OwnerMoves),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteLocksCSV emits the full per-lock contention table.
func WriteLocksCSV(w io.Writer, a *Analysis) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"lock", "acquires", "read_only", "local", "remote", "grants",
		"bytes_moved", "wait_total_ns", "wait_max_ns",
		"handoff_total_ns", "handoff_max_ns", "max_queue", "holders", "pages",
	}); err != nil {
		return err
	}
	for _, l := range a.Locks {
		pgs := make([]string, len(l.Pages))
		for i, pg := range l.Pages {
			pgs[i] = strconv.Itoa(pg)
		}
		rec := []string{
			strconv.Itoa(l.Lock), i64(l.Acquires), i64(l.ReadOnly), i64(l.Local),
			i64(l.Remote), i64(l.Grants), i64(l.BytesMoved),
			i64(int64(l.WaitTotal)), i64(int64(l.WaitMax)),
			i64(int64(l.HandoffTotal)), i64(int64(l.HandoffMax)),
			strconv.Itoa(l.MaxQueue), strconv.Itoa(l.Holders), strings.Join(pgs, " "),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func i64(v int64) string { return strconv.FormatInt(v, 10) }

// chromeEvent is one Chrome trace-event JSON record (the subset the timeline
// uses: complete spans "X" and instants "i").
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the run as a Chrome trace-event timeline
// (chrome://tracing, Perfetto): one track per processor with lock-held and
// barrier-wait spans plus instants for faults, misses, twins and diffs.
func WriteChromeTrace(w io.Writer, t *Tracer, meta Meta) error {
	recs := t.Merged()
	var evs []chromeEvent
	us := func(at sim.Time) float64 { return at.Micros() }
	type openKey struct{ proc, id int }
	lockOpen := make(map[openKey]sim.Time)
	barOpen := make(map[openKey]sim.Time)
	for _, r := range recs {
		proc := int(r.Proc)
		switch r.Kind {
		case EvLockAcq:
			lockOpen[openKey{proc, int(r.A)}] = r.At
		case EvLockRel:
			k := openKey{proc, int(r.A)}
			if at, ok := lockOpen[k]; ok {
				delete(lockOpen, k)
				evs = append(evs, chromeEvent{
					Name: fmt.Sprintf("lock %d", r.A), Ph: "X",
					Ts: us(at), Dur: us(r.At) - us(at), Pid: 0, Tid: proc,
				})
			}
		case EvBarArrive:
			barOpen[openKey{proc, int(r.A)}] = r.At
		case EvBarDepart:
			k := openKey{proc, int(r.A)}
			if at, ok := barOpen[k]; ok {
				delete(barOpen, k)
				evs = append(evs, chromeEvent{
					Name: fmt.Sprintf("barrier %d", r.A), Ph: "X",
					Ts: us(at), Dur: us(r.At) - us(at), Pid: 0, Tid: proc,
				})
			}
		case EvMiss:
			evs = append(evs, chromeEvent{
				Name: fmt.Sprintf("miss pg%d", r.A), Ph: "i", Ts: us(r.At),
				Pid: 0, Tid: proc, S: "t",
				Args: map[string]any{"writers": r.B, "write": r.Write()},
			})
		case EvFault:
			evs = append(evs, chromeEvent{
				Name: fmt.Sprintf("fault pg%d", r.A), Ph: "i", Ts: us(r.At),
				Pid: 0, Tid: proc, S: "t",
			})
		case EvTwin:
			evs = append(evs, chromeEvent{
				Name: twinName(r), Ph: "i", Ts: us(r.At), Pid: 0, Tid: proc, S: "t",
			})
		case EvCollect:
			evs = append(evs, chromeEvent{
				Name: collectName(r), Ph: "i", Ts: us(r.At), Pid: 0, Tid: proc, S: "t",
				Args: map[string]any{"words": r.C},
			})
		case EvDrop:
			evs = append(evs, chromeEvent{
				Name: fmt.Sprintf("drop →p%d", r.A), Ph: "i", Ts: us(r.At),
				Pid: 0, Tid: proc, S: "t",
				Args: map[string]any{"kind": MsgClassName(int(r.B)), "attempt": r.Aux},
			})
		case EvRetransmit:
			evs = append(evs, chromeEvent{
				Name: fmt.Sprintf("retransmit →p%d", r.A), Ph: "i", Ts: us(r.At),
				Pid: 0, Tid: proc, S: "t",
				Args: map[string]any{"kind": MsgClassName(int(r.B)), "attempt": r.Aux},
			})
		case EvDupDrop:
			evs = append(evs, chromeEvent{
				Name: fmt.Sprintf("dup-drop ←p%d", r.A), Ph: "i", Ts: us(r.At),
				Pid: 0, Tid: proc, S: "t",
				Args: map[string]any{"kind": MsgClassName(int(r.B))},
			})
		}
	}
	doc := map[string]any{
		"traceEvents":     evs,
		"displayTimeUnit": "ms",
		"otherData": map[string]any{
			"app": meta.App, "impl": meta.Impl, "nprocs": meta.NProcs, "scale": meta.Scale,
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

func twinName(r Rec) string {
	if r.Domain() == DomainLock {
		return fmt.Sprintf("objtwin lock%d", r.A)
	}
	return fmt.Sprintf("twin pg%d", r.A)
}

func collectName(r Rec) string {
	if r.Domain() == DomainLock {
		return fmt.Sprintf("harvest lock%d", r.A)
	}
	return fmt.Sprintf("harvest pg%d", r.A)
}

// Artifacts bundles the analysis products report emission draws from. Only
// Analysis is required: the profile and critical path are computed on demand
// when a profile report is selected and the caller did not precompute them.
// The CLIs precompute the full bundle (Analyzed) under a perf "analyze" phase
// so analysis wall time is attributed separately from file emission.
type Artifacts struct {
	Analysis *Analysis
	Profile  *Profile
	CritPath *CritPath
}

// Analyzed computes the full artifact bundle for a traced run: the event
// analysis plus the virtual-time profile and its critical path. Every product
// is a pure function of the trace and meta.
func Analyzed(t *Tracer, meta Meta) Artifacts {
	prof := BuildProfile(t, meta)
	return Artifacts{
		Analysis: Analyze(t, meta),
		Profile:  prof,
		CritPath: ExtractCriticalPath(t, prof),
	}
}

// EmitReports writes the selected artifacts into dir: summary.md, pages.csv,
// locks.csv, timeline.json, trace.bin, profile.md + profile.folded,
// critpath.csv + critpath.json and whatif.md (the barrier table lives inside
// the summary). The profile and critical path are computed once — from the
// bundle when precomputed, otherwise on demand — and shared across the
// reports that need them. It returns the files written, in emission order.
func EmitReports(dir string, reports []Report, art Artifacts, t *Tracer) ([]string, error) {
	a := art.Analysis
	if len(reports) == 0 {
		reports, _ = ParseReports("")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	want := make(map[Report]bool)
	for _, r := range reports {
		want[r] = true
	}
	var written []string
	emit := func(name string, write func(f *os.File) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}
	// Barrier tables render inside the summary, so selecting them emits it.
	if want[ReportSummary] || want[ReportBarriers] {
		if err := emit("summary.md", func(f *os.File) error { return WriteMarkdown(f, a) }); err != nil {
			return written, err
		}
	}
	if want[ReportPages] {
		if err := emit("pages.csv", func(f *os.File) error { return WritePagesCSV(f, a) }); err != nil {
			return written, err
		}
	}
	if want[ReportLocks] {
		if err := emit("locks.csv", func(f *os.File) error { return WriteLocksCSV(f, a) }); err != nil {
			return written, err
		}
	}
	if want[ReportTimeline] {
		if err := emit("timeline.json", func(f *os.File) error { return WriteChromeTrace(f, t, a.Meta) }); err != nil {
			return written, err
		}
	}
	if want[ReportBinary] {
		if err := emit("trace.bin", func(f *os.File) error { return t.WriteBinary(f) }); err != nil {
			return written, err
		}
	}
	if want[ReportProfile] || want[ReportCritPath] || want[ReportWhatIf] {
		prof, cp := art.Profile, art.CritPath
		if prof == nil {
			prof = BuildProfile(t, a.Meta)
		}
		if cp == nil {
			cp = ExtractCriticalPath(t, prof)
		}
		if want[ReportProfile] {
			if err := emit("profile.md", func(f *os.File) error { return WriteProfileMarkdown(f, prof, cp) }); err != nil {
				return written, err
			}
			if err := emit("profile.folded", func(f *os.File) error { return WriteFoldedStacks(f, prof) }); err != nil {
				return written, err
			}
		}
		if want[ReportCritPath] {
			if err := emit("critpath.csv", func(f *os.File) error { return WriteCritPathCSV(f, cp) }); err != nil {
				return written, err
			}
			if err := emit("critpath.json", func(f *os.File) error { return WriteCritPathChrome(f, cp) }); err != nil {
				return written, err
			}
		}
		if want[ReportWhatIf] {
			if err := emit("whatif.md", func(f *os.File) error { return WriteWhatIfMarkdown(f, cp) }); err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

// errWriter folds fmt errors so the markdown renderer reads linearly.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
