package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ecvslrc/internal/mem"
	"ecvslrc/internal/sim"
)

var update = flag.Bool("update", false, "rewrite the profiler golden files")

// profileMeta is the synthetic three-processor run the profiler tests use:
// 6 pages in one region.
func profileMeta() Meta {
	return Meta{
		App: "synthetic", Impl: "LRC-diff", Scale: "test", NProcs: 3,
		Regions: []mem.Region{{Name: "data", Base: 0, Size: 6 * mem.PageSize, Block: 4}},
		Pages:   6,
	}
}

// profileHistory hand-emits a three-processor history that exercises every
// stall class and every dependency-edge kind, under the scheduler's handoff
// discipline (virtual time only advances inside block..wake pairs):
//
//	p0: computes to 25, flushes 30ns of diff work on page 1 inside a long
//	    sleep, grants lock 5 to p1 at 30, arrives at barrier 0 at 140.
//	p1: waits on lock 5 until the grant wakes it at 40, sleeps with 15ns of
//	    fault recovery charged inside, serves p2's fetch of page 3 at 150,
//	    arrives at barrier 0 at 160.
//	p2: computes to 100, read-misses page 3 (the claim queued 20ns behind
//	    the shared link, served by p1), computes to 280, straggles into
//	    barrier 0 last, releasing everyone at 300.
//
// Every processor ends at exactly 300ns, so the critical path is anchored at
// p0 (lowest id on ties) and chains through all three edge kinds:
// barrier 0 -> straggler p2, page 3 fetch -> server p1, lock 5 -> granter p0.
func profileHistory() *Tracer {
	tr := New(3)

	// p0
	tr.Block(0, 0, "sleep")
	tr.Wake(25, 0)
	tr.Work(25, 0, WorkTrapDiff, ObjPage, 1, 30)
	tr.Block(25, 0, "sleep")
	tr.LockGrant(30, 0, 5, 1, false, 64) // handler: grants lock 5 to p1
	tr.Wake(140, 0)
	tr.BarArrive(140, 0, 0)
	tr.Block(140, 0, "barrier")
	tr.Wake(300, 0)
	tr.BarDepart(300, 0, 0)

	// p1
	tr.LockReq(0, 1, 5, false)
	tr.Block(0, 1, "rpc-reply")
	tr.Wake(40, 1)
	tr.LockAcq(40, 1, 5, false, false)
	tr.Block(40, 1, "sleep")
	tr.Recovery(50, 1, 15)
	tr.FetchServe(150, 1, 3, 2, 4096) // handler: serves page 3 to p2
	tr.Wake(160, 1)
	tr.BarArrive(160, 1, 0)
	tr.Block(160, 1, "barrier")
	tr.Wake(300, 1)
	tr.BarDepart(300, 1, 0)

	// p2
	tr.Block(0, 2, "sleep")
	tr.Wake(100, 2)
	tr.Miss(100, 2, 3, 1, false)
	tr.Block(100, 2, "lrc-fetch")
	tr.LinkWait(110, 2, 20)
	tr.Wake(200, 2)
	tr.Block(200, 2, "sleep")
	tr.Wake(280, 2)
	tr.BarArrive(280, 2, 0)
	tr.Block(280, 2, "barrier")
	tr.Wake(300, 2)
	tr.BarDepart(300, 2, 0)

	return tr
}

// TestProfileSynthetic pins the exact class decomposition of the synthetic
// history, nanosecond for nanosecond, and the conservation invariant.
func TestProfileSynthetic(t *testing.T) {
	prof := BuildProfile(profileHistory(), profileMeta())
	if err := prof.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	want := [3][NumStallClasses]sim.Time{
		{ClassCompute: 110, ClassTrapDiff: 30, ClassBarrierWait: 160},
		{ClassCompute: 105, ClassLockWait: 40, ClassBarrierWait: 140, ClassRecovery: 15},
		{ClassCompute: 180, ClassPageFetch: 80, ClassBarrierWait: 20, ClassLinkWait: 20},
	}
	if len(prof.Procs) != 3 {
		t.Fatalf("%d proc profiles, want 3", len(prof.Procs))
	}
	for i, pp := range prof.Procs {
		if pp.End != 300 {
			t.Errorf("p%d end = %v, want 300", i, pp.End)
		}
		if pp.Class != want[i] {
			t.Errorf("p%d classes = %v, want %v", i, pp.Class, want[i])
		}
	}
	if prof.Span != 300 {
		t.Errorf("span = %v, want 300", prof.Span)
	}
	wantTotal := [NumStallClasses]sim.Time{
		ClassCompute: 395, ClassTrapDiff: 30, ClassPageFetch: 80, ClassLockWait: 40,
		ClassBarrierWait: 320, ClassLinkWait: 20, ClassRecovery: 15,
	}
	if prof.Total != wantTotal {
		t.Errorf("totals = %v, want %v", prof.Total, wantTotal)
	}
}

// TestCritPathSynthetic pins the exact span sequence of the synthetic
// history's critical path: it must chain through the barrier straggler, the
// fetch server and the lock granter, and tile [0, 300) exactly.
func TestCritPathSynthetic(t *testing.T) {
	tr := profileHistory()
	prof := BuildProfile(tr, profileMeta())
	cp := ExtractCriticalPath(tr, prof)
	if cp.EndProc != 0 || cp.Total != 300 {
		t.Fatalf("anchor p%d total %v, want p0 total 300", cp.EndProc, cp.Total)
	}
	if cp.Truncated {
		t.Fatal("path truncated")
	}
	want := []PathSpan{
		{Proc: 0, T0: 0, T1: 25, Class: ClassCompute, ObjKind: ObjNone, ObjID: -1},
		{Proc: 0, T0: 25, T1: 30, Class: ClassTrapDiff, ObjKind: ObjPage, ObjID: 1},
		{Proc: 1, T0: 30, T1: 40, Class: ClassLockWait, ObjKind: ObjLock, ObjID: 5},
		{Proc: 1, T0: 40, T1: 55, Class: ClassRecovery, ObjKind: ObjNone, ObjID: -1},
		{Proc: 1, T0: 55, T1: 150, Class: ClassCompute, ObjKind: ObjNone, ObjID: -1},
		{Proc: 2, T0: 150, T1: 200, Class: ClassPageFetch, ObjKind: ObjPage, ObjID: 3},
		{Proc: 2, T0: 200, T1: 280, Class: ClassCompute, ObjKind: ObjNone, ObjID: -1},
		{Proc: 0, T0: 280, T1: 300, Class: ClassBarrierWait, ObjKind: ObjBarrier, ObjID: 0},
	}
	if len(cp.Spans) != len(want) {
		t.Fatalf("%d spans, want %d: %+v", len(cp.Spans), len(want), cp.Spans)
	}
	for i := range want {
		if cp.Spans[i] != want[i] {
			t.Errorf("span %d = %+v, want %+v", i, cp.Spans[i], want[i])
		}
	}
	// The spans tile [0, Total) and the class decomposition sums to it.
	var sum sim.Time
	for _, c := range StallClasses() {
		sum += cp.Class[c]
	}
	if sum != cp.Total {
		t.Errorf("path classes sum to %v, want %v", sum, cp.Total)
	}
	if got := cp.WhatIf(ClassBarrierWait); got != 280 {
		t.Errorf("what-if barrier-wait = %v, want 280", got)
	}
	if got := cp.WhatIf(ClassPageFetch); got != 250 {
		t.Errorf("what-if page-fetch = %v, want 250", got)
	}
}

// checkGolden compares got against testdata/name, rewriting under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with `go test ./internal/trace -run TestProfileReportGoldens -update`)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (regenerate with -update if intended)\n--- got ---\n%s", name, got)
	}
}

// TestProfileReportGoldens pins every profiler report byte for byte on the
// synthetic history — the determinism contract the artifacts advertise.
func TestProfileReportGoldens(t *testing.T) {
	tr := profileHistory()
	prof := BuildProfile(tr, profileMeta())
	cp := ExtractCriticalPath(tr, prof)
	render := func(name string, write func(w *bytes.Buffer) error) {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkGolden(t, name, buf.Bytes())
	}
	render("profile.md", func(w *bytes.Buffer) error { return WriteProfileMarkdown(w, prof, cp) })
	render("profile.folded", func(w *bytes.Buffer) error { return WriteFoldedStacks(w, prof) })
	render("critpath.csv", func(w *bytes.Buffer) error { return WriteCritPathCSV(w, cp) })
	render("whatif.md", func(w *bytes.Buffer) error { return WriteWhatIfMarkdown(w, cp) })
	render("critpath.json", func(w *bytes.Buffer) error { return WriteCritPathChrome(w, cp) })
}

// TestProfileByteDeterminism renders the full report set twice from two
// independently built traces: the bytes must match exactly.
func TestProfileByteDeterminism(t *testing.T) {
	render := func() []byte {
		tr := profileHistory()
		prof := BuildProfile(tr, profileMeta())
		cp := ExtractCriticalPath(tr, prof)
		var buf bytes.Buffer
		for _, w := range []func() error{
			func() error { return WriteProfileMarkdown(&buf, prof, cp) },
			func() error { return WriteFoldedStacks(&buf, prof) },
			func() error { return WriteCritPathCSV(&buf, cp) },
			func() error { return WriteWhatIfMarkdown(&buf, cp) },
			func() error { return WriteCritPathChrome(&buf, cp) },
		} {
			if err := w(); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Error("profiler reports differ across identical builds")
	}
}

// TestEmitReportsProfileFiles checks the profile report selection writes its
// five artifacts, both from a precomputed bundle and from the lazy path.
func TestEmitReportsProfileFiles(t *testing.T) {
	tr := profileHistory()
	meta := profileMeta()
	sel := []Report{ReportProfile, ReportCritPath, ReportWhatIf}
	wantNames := []string{"profile.md", "profile.folded", "critpath.csv", "critpath.json", "whatif.md"}
	for _, tc := range []struct {
		name string
		art  Artifacts
	}{
		{"precomputed", Analyzed(tr, meta)},
		{"lazy", Artifacts{Analysis: Analyze(tr, meta)}},
	} {
		dir := t.TempDir()
		written, err := EmitReports(dir, sel, tc.art, tr)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(written) != len(wantNames) {
			t.Fatalf("%s: wrote %v, want %v", tc.name, written, wantNames)
		}
		for i, path := range written {
			if filepath.Base(path) != wantNames[i] {
				t.Errorf("%s: file %d = %s, want %s", tc.name, i, filepath.Base(path), wantNames[i])
			}
			if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
				t.Errorf("%s: %s missing or empty (%v)", tc.name, path, err)
			}
		}
	}
}

// TestProfileEmptyTrace covers the degenerate inputs: a nil tracer and a
// tracer with no events must profile to zero without panicking.
func TestProfileEmptyTrace(t *testing.T) {
	meta := profileMeta()
	for _, tc := range []struct {
		name string
		tr   *Tracer
	}{{"nil", nil}, {"empty", New(3)}} {
		prof := BuildProfile(tc.tr, meta)
		if err := prof.CheckConservation(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if prof.Span != 0 {
			t.Errorf("%s: span = %v, want 0", tc.name, prof.Span)
		}
		cp := ExtractCriticalPath(tc.tr, prof)
		if tc.tr == nil {
			if cp.EndProc != -1 {
				t.Errorf("%s: anchor = %d, want -1", tc.name, cp.EndProc)
			}
		}
		var buf bytes.Buffer
		if err := WriteWhatIfMarkdown(&buf, cp); err != nil {
			t.Errorf("%s: what-if render: %v", tc.name, err)
		}
		if tc.tr == nil && !strings.Contains(buf.String(), "empty trace") {
			t.Errorf("%s: what-if = %q, want empty-trace note", tc.name, buf.String())
		}
	}
}
