package trace

import (
	"fmt"
	"sort"

	"ecvslrc/internal/sim"
)

// The virtual-time profiler. Every simulated nanosecond of every processor is
// classified into one stall class, with an exact conservation invariant: the
// per-processor class totals sum to that processor's end time, to the
// nanosecond.
//
// The accounting rests on the scheduler's handoff discipline: virtual time
// never advances while a process runs, so each processor's lifetime is tiled
// exactly by its blocked intervals (EvBlock..EvWake pairs). Classifying a run
// therefore means classifying every blocked interval. An interval's base
// class comes from its block reason — a Sleep is compute, a parked page fetch
// is page-fetch stall, a barrier park is barrier wait, a synchronous call is
// resolved from context (an open lock request means lock wait, an open
// barrier episode means barrier wait, otherwise the call is fetching pages).
// Three record streams then refine the base class from within:
//
//   - EvWork: classified protocol CPU (trap/twin/diff/scan/install machinery)
//     charged at its exact cost. Work emitted in process context is always
//     slept before the next blocking operation (the protocol stacks Flush
//     before every Acquire/Release/Barrier/fetch), and work injected by a
//     handler extends the blocked interval it lands in, so draining pending
//     work records against each closing interval attributes them exactly.
//   - EvRecovery: fault-recovery time (late deliveries, retransmission CPU).
//   - EvLinkWait: shared-link queueing delay, attributed to the frame sender.
//
// Each deduction is capped by the remaining interval length and any residue
// carries into the processor's next interval, so the invariant cannot be
// broken by attribution error — only reshuffled between classes.

// StallClass is one bucket of the virtual-time decomposition.
type StallClass uint8

const (
	// ClassCompute is application and unclassified protocol CPU.
	ClassCompute StallClass = iota
	// ClassTrapDiff is write-trap, twin, diff, scan and install CPU (EvWork).
	ClassTrapDiff
	// ClassPageFetch is stall waiting for remote page data.
	ClassPageFetch
	// ClassLockWait is stall between a lock request and its acquisition.
	ClassLockWait
	// ClassBarrierWait is stall inside a barrier episode.
	ClassBarrierWait
	// ClassLinkWait is shared-link contention queueing (EvLinkWait).
	ClassLinkWait
	// ClassRecovery is fault-recovery time (EvRecovery).
	ClassRecovery
	// NumStallClasses bounds the class arrays.
	NumStallClasses
)

// String names the class as the reports and folded stacks print it.
func (c StallClass) String() string {
	switch c {
	case ClassCompute:
		return "compute"
	case ClassTrapDiff:
		return "trap-diff"
	case ClassPageFetch:
		return "page-fetch"
	case ClassLockWait:
		return "lock-wait"
	case ClassBarrierWait:
		return "barrier-wait"
	case ClassLinkWait:
		return "link-wait"
	case ClassRecovery:
		return "fault-recovery"
	}
	return "?"
}

// StallClasses lists every class in report column order.
func StallClasses() []StallClass {
	out := make([]StallClass, NumStallClasses)
	for i := range out {
		out[i] = StallClass(i)
	}
	return out
}

// SegPart is one classified slice of a blocked interval.
type SegPart struct {
	Class   StallClass
	ObjKind int32
	ObjID   int32
	D       sim.Time
}

// Segment is one classified blocked interval [T0, T1) of a processor.
type Segment struct {
	T0, T1 sim.Time
	// Class/ObjKind/ObjID classify the interval remainder after deductions
	// (the base class derived from the block reason and its context).
	Class   StallClass
	ObjKind int32
	ObjID   int32
	// Parts is the full decomposition when deductions split the interval
	// (link wait, recovery, drained work, then the base remainder); nil when
	// the whole interval is the base class.
	Parts []SegPart
}

// parts returns the interval's decomposition, synthesizing the single-part
// view for undivided segments.
func (s *Segment) parts() []SegPart {
	if s.Parts != nil {
		return s.Parts
	}
	return []SegPart{{Class: s.Class, ObjKind: s.ObjKind, ObjID: s.ObjID, D: s.T1 - s.T0}}
}

// ProcProfile is one processor's complete time decomposition.
type ProcProfile struct {
	Proc int
	// End is the processor's last event time; the Class entries sum to it.
	End   sim.Time
	Class [NumStallClasses]sim.Time
	// Segments is the classified interval list in time order (consumed by
	// the critical-path extractor).
	Segments []Segment
}

// StackEntry is one aggregated folded-stack frame: all time proc spent in
// class on the named object.
type StackEntry struct {
	Proc    int
	Class   StallClass
	ObjKind int32
	ObjID   int32
	Time    sim.Time
}

// Profile is the virtual-time decomposition of one traced run.
type Profile struct {
	Meta Meta
	// Procs holds one entry per processor, in processor order.
	Procs []ProcProfile
	// Total sums the per-processor class totals.
	Total [NumStallClasses]sim.Time
	// Span is the largest processor end time.
	Span sim.Time
	// Stacks is the folded-stack aggregation, sorted by (proc, class,
	// object) for deterministic output.
	Stacks []StackEntry
}

// CheckConservation verifies the invariant the whole profiler is built on:
// every processor's class totals sum exactly to its end time.
func (p *Profile) CheckConservation() error {
	for i := range p.Procs {
		pp := &p.Procs[i]
		var sum sim.Time
		for _, d := range pp.Class {
			sum += d
		}
		if sum != pp.End {
			return fmt.Errorf("trace: profile conservation violated: proc %d classes sum to %v, end is %v",
				pp.Proc, sum, pp.End)
		}
	}
	return nil
}

// ObjName names a (kind, id) attribution object for reports and stacks.
func ObjName(kind int32, id int32, meta Meta) string {
	switch kind {
	case ObjPage:
		if rg := meta.RegionOf(int(id)); rg != "" {
			return fmt.Sprintf("pg%d(%s)", id, rg)
		}
		return fmt.Sprintf("pg%d", id)
	case ObjLock:
		return fmt.Sprintf("lock%d", id)
	case ObjBarrier:
		return fmt.Sprintf("barrier%d", id)
	}
	return "-"
}

// pendingWork is one queued EvWork charge awaiting interval drain.
type pendingWork struct {
	objKind int32
	objID   int32
	d       sim.Time
}

// procScan is the per-processor accounting state machine.
type procScan struct {
	blockAt     sim.Time
	blockReason uint16
	blocked     bool
	cursor      sim.Time // time accounted so far
	end         sim.Time

	// Context for resolving "rpc-reply" blocks.
	openLock      int32 // lock with an outstanding request, -1 when none
	inBarrier     bool
	barID         int32
	lastFetchPage int32

	// Deduction pools.
	work     []pendingWork
	linkPool sim.Time
	recPool  sim.Time
}

// BuildProfile runs the per-processor time-accounting state machine over the
// trace. The result is a pure function of the trace and meta; no map
// iteration order leaks into it.
func BuildProfile(t *Tracer, meta Meta) *Profile {
	p := &Profile{Meta: meta}
	if t == nil {
		return p
	}
	p.Procs = make([]ProcProfile, len(t.bufs))
	stacks := make(map[[3]int32]*StackEntry)
	for proc := range t.bufs {
		pp := &p.Procs[proc]
		pp.Proc = proc
		scanProc(proc, t.bufs[proc], pp, stacks)
		for c, d := range pp.Class {
			p.Total[c] += d
		}
		if pp.End > p.Span {
			p.Span = pp.End
		}
	}
	for _, e := range stacks {
		p.Stacks = append(p.Stacks, *e)
	}
	sort.Slice(p.Stacks, func(i, j int) bool {
		a, b := p.Stacks[i], p.Stacks[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.ObjKind != b.ObjKind {
			return a.ObjKind < b.ObjKind
		}
		return a.ObjID < b.ObjID
	})
	return p
}

// scanProc classifies one processor's record stream. The per-processor buffer
// is in emission order: EvBlock/EvWake pairs tile the lifetime, and work,
// recovery and link-wait records appear between the pair they belong to (or
// before it, for process-context work flushed ahead of a blocking call).
func scanProc(proc int, recs []Rec, pp *ProcProfile, stacks map[[3]int32]*StackEntry) {
	st := procScan{openLock: -1, lastFetchPage: -1}
	for _, r := range recs {
		if r.At > st.end {
			st.end = r.At
		}
		switch r.Kind {
		case EvBlock:
			if st.blocked {
				// A second block without a wake cannot happen under the
				// handoff discipline; close the stale interval defensively.
				st.closeInterval(pp, stacks, proc, r.At)
			} else {
				st.closeRunGap(pp, stacks, proc, r.At)
			}
			st.blocked = true
			st.blockAt = r.At
			st.blockReason = r.Aux
		case EvWake:
			if st.blocked {
				st.closeInterval(pp, stacks, proc, r.At)
			} else {
				st.closeRunGap(pp, stacks, proc, r.At)
			}
			st.blocked = false
			st.cursor = r.At
		case EvWork:
			st.work = append(st.work, pendingWork{objKind: r.B, objID: r.A, d: sim.Time(r.C)})
		case EvRecovery:
			st.recPool += sim.Time(r.C)
		case EvLinkWait:
			st.linkPool += sim.Time(r.C)
		case EvLockReq:
			st.openLock = r.A
		case EvLockAcq:
			st.openLock = -1
		case EvBarArrive:
			st.inBarrier = true
			st.barID = r.A
		case EvBarDepart:
			st.inBarrier = false
		case EvMiss:
			st.lastFetchPage = r.A
		}
	}
	pp.End = st.end
	if st.blocked && st.end > st.blockAt {
		// Trailing open interval (records landed after the final block):
		// close it at the processor's end so the tiling stays exact.
		st.closeInterval(pp, stacks, proc, st.end)
	} else if st.end > st.cursor {
		// Defensive: a gap the blocked tiling did not cover is compute.
		addSeg(pp, stacks, proc, Segment{T0: st.cursor, T1: st.end, Class: ClassCompute, ObjKind: ObjNone, ObjID: -1})
	}
}

// closeRunGap covers any time between the last wake and this block. By the
// handoff discipline the gap is always zero (time cannot pass while the
// process runs); accounting it as compute keeps conservation exact even if a
// future scheduler change breaks the discipline.
func (st *procScan) closeRunGap(pp *ProcProfile, stacks map[[3]int32]*StackEntry, proc int, at sim.Time) {
	if !st.blocked && at > st.cursor {
		addSeg(pp, stacks, proc, Segment{T0: st.cursor, T1: at, Class: ClassCompute, ObjKind: ObjNone, ObjID: -1})
		st.cursor = at
	}
}

// closeInterval classifies the blocked interval [st.blockAt, at): deduct
// link-contention wait, then fault recovery, then drain pending work records,
// then attribute the remainder to the block reason's base class.
func (st *procScan) closeInterval(pp *ProcProfile, stacks map[[3]int32]*StackEntry, proc int, at sim.Time) {
	seg := Segment{T0: st.blockAt, T1: at}
	seg.Class, seg.ObjKind, seg.ObjID = st.baseClass()
	remain := at - st.blockAt
	var parts []SegPart
	take := func(class StallClass, objKind, objID int32, want sim.Time) sim.Time {
		if want <= 0 || remain <= 0 {
			return 0
		}
		d := want
		if d > remain {
			d = remain
		}
		remain -= d
		parts = append(parts, SegPart{Class: class, ObjKind: objKind, ObjID: objID, D: d})
		return d
	}
	st.linkPool -= take(ClassLinkWait, ObjNone, -1, st.linkPool)
	st.recPool -= take(ClassRecovery, ObjNone, -1, st.recPool)
	drained := 0
	for i := range st.work {
		w := &st.work[i]
		got := take(ClassTrapDiff, w.objKind, w.objID, w.d)
		w.d -= got
		if w.d > 0 {
			break
		}
		drained++
	}
	if drained > 0 {
		st.work = st.work[:copy(st.work, st.work[drained:])]
	}
	if remain > 0 {
		parts = append(parts, SegPart{Class: seg.Class, ObjKind: seg.ObjKind, ObjID: seg.ObjID, D: remain})
	}
	if len(parts) == 1 {
		seg.Class, seg.ObjKind, seg.ObjID = parts[0].Class, parts[0].ObjKind, parts[0].ObjID
	} else {
		seg.Parts = parts
	}
	addSeg(pp, stacks, proc, seg)
	st.cursor = at
}

// baseClass resolves the block reason to the interval's remainder class. A
// synchronous call ("rpc-reply") is classified from context: inside a barrier
// episode it is barrier wait, with an outstanding lock request it is lock
// wait, otherwise it is fetching page data (LRC's parallel fetches block on
// dedicated waiters, but the reply of a single fetch or an EC grant carrying
// data land here).
func (st *procScan) baseClass() (StallClass, int32, int32) {
	switch st.blockReason {
	case BlockSleep:
		return ClassCompute, ObjNone, -1
	case BlockFetch:
		return ClassPageFetch, ObjPage, st.lastFetchPage
	case BlockBarrier:
		return ClassBarrierWait, ObjBarrier, st.barID
	case BlockRPC:
		if st.inBarrier {
			return ClassBarrierWait, ObjBarrier, st.barID
		}
		if st.openLock >= 0 {
			return ClassLockWait, ObjLock, st.openLock
		}
		return ClassPageFetch, ObjPage, st.lastFetchPage
	}
	return ClassCompute, ObjNone, -1
}

// addSeg appends a classified segment to the processor profile and folds its
// parts into the class totals and the stack aggregation.
func addSeg(pp *ProcProfile, stacks map[[3]int32]*StackEntry, proc int, seg Segment) {
	if seg.T1 <= seg.T0 {
		return
	}
	pp.Segments = append(pp.Segments, seg)
	for _, part := range seg.parts() {
		pp.Class[part.Class] += part.D
		key := [3]int32{int32(proc)<<8 | int32(part.Class), part.ObjKind, part.ObjID}
		e := stacks[key]
		if e == nil {
			e = &StackEntry{Proc: proc, Class: part.Class, ObjKind: part.ObjKind, ObjID: part.ObjID}
			stacks[key] = e
		}
		e.Time += part.D
	}
}
