package trace

import (
	"bytes"
	"errors"
	"testing"

	"ecvslrc/internal/sim"
)

// fuzzSeedTrace builds a small valid trace for the corpus, so mutations
// explore the record-parsing paths and not just header rejection.
func fuzzSeedTrace() []byte {
	tr := New(2)
	tr.Send(sim.Millisecond, 0, 1, 7, 64)
	tr.Deliver(2*sim.Millisecond, 1, 0, 7, 64)
	tr.Drop(3*sim.Millisecond, 0, 1, 7, 1)
	tr.Retransmit(4*sim.Millisecond, 0, 1, 7, 2)
	tr.Ack(5*sim.Millisecond, 1, 0, 3)
	tr.DupDrop(6*sim.Millisecond, 0, 1, 7)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadBinary asserts ReadBinary's hostile-input contract: it never
// panics, classifies every malformed input as ErrCorrupt (a bytes.Reader
// produces no other I/O errors), and every accepted input reaches a
// serialization fixpoint — write, re-read, write again yields identical
// bytes. (The input itself may differ from the first write: ReadBinary
// ignores bytes past the declared record count, and WriteBinary canonicalizes
// record order.)
func FuzzReadBinary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("DSMTRC"))
	f.Add(fuzzSeedTrace())
	corrupted := fuzzSeedTrace()
	corrupted[24] = 0xff // first record's kind byte
	f.Add(corrupted)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-I/O failure does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		var out1, out2 bytes.Buffer
		if err := tr.WriteBinary(&out1); err != nil {
			t.Fatalf("serializing accepted trace: %v", err)
		}
		tr2, err := ReadBinary(bytes.NewReader(out1.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own output: %v", err)
		}
		if err := tr2.WriteBinary(&out2); err != nil {
			t.Fatalf("re-serializing: %v", err)
		}
		if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
			t.Fatalf("serialization is not a fixpoint: %d vs %d bytes", out1.Len(), out2.Len())
		}
	})
}
