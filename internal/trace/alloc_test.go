package trace

import (
	"runtime"
	"runtime/debug"
	"testing"
)

// BenchmarkTraceAppend drives the enabled-tracer emit path: appending one
// fixed-width value record to a warm per-processor buffer. The CI alloc
// guard asserts 0 allocs/op: buffer growth is amortized doubling, which
// rounds to zero over the measured iterations.
func BenchmarkTraceAppend(b *testing.B) {
	tr := New(4)
	tr.Reserve(b.N/4 + 16) // steady state: warm buffers, appends never grow
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Send(1, i&3, (i+1)&3, 1, 64)
	}
}

// BenchmarkProfilerDisabled drives the profiler emit hooks through a nil
// tracer: the path every untraced run takes. The CI alloc guard asserts
// 0 allocs/op — instrumentation must cost nothing when profiling is off.
func BenchmarkProfilerDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Block(1, i&3, "lrc-fetch")
		tr.Work(2, i&3, WorkTrapDiff, ObjPage, i&7, 25)
		tr.Recovery(3, i&3, 40)
		tr.Wake(4, i&3)
	}
}

// TestEmitSteadyStateAllocs is the strict in-process form of the
// BenchmarkTraceAppend guard: after Reserve pre-grows the buffers, a window
// of emits across every helper must perform zero heap allocations.
func TestEmitSteadyStateAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	tr := New(4)
	tr.Reserve(16 << 10)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < 1000; i++ {
		p := i & 3
		tr.Send(1, p, (p+1)&3, 1, 64)
		tr.Deliver(2, (p+1)&3, p, 1, 64)
		tr.Fault(3, p, i&7, i&1 == 0)
		tr.Miss(4, p, i&7, 1, i&1 == 0)
		tr.Collect(5, p, DomainPage, i&7, i, 8)
		tr.LockAcq(6, p, i&3, false, false)
		tr.BarArrive(7, p, 0)
	}
	runtime.ReadMemStats(&m1)
	if delta := m1.Mallocs - m0.Mallocs; delta != 0 {
		t.Errorf("7000 emits into reserved buffers allocated %d objects, want 0", delta)
	}
}
