// Package trace is the simulator's observation layer: a compact fixed-width
// binary event trace recording what the protocol stacks, the messaging fabric
// and the scheduler did during one run, plus an analysis pass that turns the
// raw events into the attribution artifacts the paper's discussion relies on
// — per-page heat, per-lock contention, barrier imbalance, message-class
// breakdowns and a sharing-pattern classification of every shared page.
//
// Tracing is strictly observation-only: no emit call mutates simulation
// state, so a traced run produces bit-identical statistics to an untraced
// one. Every emit helper is safe on a nil *Tracer (it returns immediately),
// which is how the instrumented packages keep their disabled-path cost to a
// nil check and zero allocations.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"ecvslrc/internal/sim"
)

// Kind tags one trace record variant. The record slots A, B, C and Aux are
// interpreted per kind; see the constants. The set is append-only: binary
// traces embed these values.
type Kind uint8

const (
	// EvNone is an unused record (never emitted).
	EvNone Kind = iota
	// EvWake marks the scheduler resuming a process. Proc is the process.
	EvWake
	// EvDispatch marks one scheduler event dispatch: Aux = the scheduler's
	// internal event kind, A = the target process (-1 for callbacks and
	// timers, which have none). Only recorded when the tracer's scheduler
	// channel is enabled: these are by far the most frequent events.
	EvDispatch
	// EvSend is a message leaving Proc: A = destination, B = message kind,
	// C = bytes on the wire (header included).
	EvSend
	// EvDeliver is a message arriving at Proc: A = sender, B = message kind,
	// C = bytes on the wire.
	EvDeliver
	// EvLinkClaim is a contention-mode claim of the shared link by a message
	// from Proc: A = destination, C = bytes occupying the link.
	EvLinkClaim
	// EvLinkWait is the queueing delay a claim suffered behind the shared
	// link: C = wait in simulated nanoseconds.
	EvLinkWait
	// EvFault is a protection fault taken by Proc: A = page,
	// Aux bit 0 = write access.
	EvFault
	// EvMiss is an LRC access miss resolved by Proc: A = page, B = number of
	// writers fetched from, Aux bit 0 = write access.
	EvMiss
	// EvFetchServe is Proc serving a page fetch: A = page, B = requester,
	// C = reply bytes.
	EvFetchServe
	// EvTwin is a twin made by Proc: A = page (DomainPage) or lock
	// (DomainLock, an EC eager object copy); Aux bits 1.. = domain.
	EvTwin
	// EvCollect is a write-collection harvest by Proc: A = page or lock id
	// (domain in Aux), B = interval index or incarnation, C = words collected.
	EvCollect
	// EvApply is modification data installed at Proc: A = page or lock id
	// (domain in Aux), B = the writer the data came from (-1 if unknown),
	// C = words applied.
	EvApply
	// EvLockReq is Proc starting a remote lock acquire: A = lock,
	// Aux bit 0 = read-only mode.
	EvLockReq
	// EvLockAcq is Proc completing a lock acquire: A = lock,
	// Aux bit 0 = read-only mode, bit 1 = local reacquire (no messages).
	EvLockAcq
	// EvLockGrant is Proc granting a lock to another processor: A = lock,
	// B = requester, Aux bit 0 = read-only mode, C = grant payload bytes.
	EvLockGrant
	// EvLockRel is Proc releasing a lock: A = lock, B = requests queued
	// behind the release (the instantaneous contention depth).
	EvLockRel
	// EvBarArrive is Proc arriving at barrier A.
	EvBarArrive
	// EvBarDepart is Proc leaving barrier A (departure installed).
	EvBarDepart
	// EvBind is an EC lock/data binding: A = lock, B = range base address,
	// C = range length in bytes. Every processor emits identical bindings;
	// the analyzer deduplicates.
	EvBind
	// EvDrop is the fault injector losing a transmission attempt from Proc:
	// A = destination, B = message kind, Aux = attempt number.
	EvDrop
	// EvRetransmit is the reliable sublayer resending a frame from Proc:
	// A = destination, B = message kind, Aux = attempt number.
	EvRetransmit
	// EvAck is a reliable-delivery acknowledgement arriving back at Proc
	// (the data sender): A = the data receiver that generated it, B = the
	// acknowledged sequence number.
	EvAck
	// EvDupDrop is Proc (a receiver) discarding a duplicate frame:
	// A = sender, B = message kind.
	EvDupDrop
	// EvBlock marks Proc giving up the CPU: Aux = the wait-reason code
	// (Block* constants). Virtual time only advances while every process is
	// blocked, so the EvBlock/EvWake pairs of one processor exactly tile its
	// lifetime — the profiler's per-proc time accounting rests on this.
	EvBlock
	// EvWork is classified protocol CPU charged to Proc: Aux = the work class
	// (Work* constants), A = the object the work is for (page, lock or
	// barrier id per B; -1 when unattributed), B = the object kind (Obj*
	// constants), C = duration in simulated nanoseconds. The time itself is
	// inside Proc's busy/blocked intervals; the record classifies it.
	EvWork
	// EvRecovery is reliable-sublayer fault-recovery time charged to Proc:
	// the late-delivery delay of a recovered frame at its receiver, or the
	// retransmission CPU injected at its sender. C = duration.
	EvRecovery
	// evLast bounds the valid kinds for ReadBinary validation; keep it last.
	evLast = EvRecovery
)

// String names the kind for report tables and test failures.
func (k Kind) String() string {
	switch k {
	case EvWake:
		return "wake"
	case EvDispatch:
		return "dispatch"
	case EvSend:
		return "send"
	case EvDeliver:
		return "deliver"
	case EvLinkClaim:
		return "link-claim"
	case EvLinkWait:
		return "link-wait"
	case EvFault:
		return "fault"
	case EvMiss:
		return "miss"
	case EvFetchServe:
		return "fetch-serve"
	case EvTwin:
		return "twin"
	case EvCollect:
		return "collect"
	case EvApply:
		return "apply"
	case EvLockReq:
		return "lock-req"
	case EvLockAcq:
		return "lock-acq"
	case EvLockGrant:
		return "lock-grant"
	case EvLockRel:
		return "lock-rel"
	case EvBarArrive:
		return "bar-arrive"
	case EvBarDepart:
		return "bar-depart"
	case EvBind:
		return "bind"
	case EvDrop:
		return "drop"
	case EvRetransmit:
		return "retransmit"
	case EvAck:
		return "ack"
	case EvDupDrop:
		return "dup-drop"
	case EvBlock:
		return "block"
	case EvWork:
		return "work"
	case EvRecovery:
		return "recovery"
	}
	return "?"
}

// Wait-reason codes carried in EvBlock's Aux slot, mapped from the
// scheduler's free-form wait-reason strings. The set is append-only: binary
// traces embed these values.
const (
	// BlockOther is any reason the tracer does not recognize.
	BlockOther uint16 = iota
	// BlockSleep is a Proc.Sleep: the processor is computing (protocol and
	// application CPU both land here; EvWork records split them).
	BlockSleep
	// BlockRPC is a synchronous request awaiting its reply (lock acquires,
	// barrier arrivals at the manager or tree parent).
	BlockRPC
	// BlockFetch is an LRC access miss awaiting page data.
	BlockFetch
	// BlockBarrier is a barrier wait parked on the local waiter.
	BlockBarrier
)

// BlockReasonCode maps a scheduler wait-reason string to its EvBlock code.
func BlockReasonCode(reason string) uint16 {
	switch reason {
	case "sleep":
		return BlockSleep
	case "rpc-reply":
		return BlockRPC
	case "lrc-fetch":
		return BlockFetch
	case "barrier":
		return BlockBarrier
	}
	return BlockOther
}

// Work classes carried in EvWork's Aux slot. Append-only.
const (
	// WorkTrapDiff is write-trap and diff machinery: protection-fault entry,
	// twin copies, mprotect calls, dirty-bit and twin-comparison scans, diff
	// construction, timestamp selection, and diff/grant installation.
	WorkTrapDiff uint16 = iota + 1
)

// Object kinds carried in EvWork's B slot, naming what A refers to.
const (
	// ObjNone marks unattributed work (A is -1).
	ObjNone int32 = iota
	// ObjPage keys the work to a shared page.
	ObjPage
	// ObjLock keys the work to a lock.
	ObjLock
	// ObjBarrier keys the work to a barrier.
	ObjBarrier
)

// Domain distinguishes page-keyed from lock-keyed attribution records: LRC
// collects and applies per page, EC per lock binding. Stored in the Aux bits
// above the access-mode bit.
type Domain uint16

const (
	// DomainPage keys the record by shared page number.
	DomainPage Domain = 0
	// DomainLock keys the record by lock id.
	DomainLock Domain = 1
)

// Aux bit layout, shared by the kinds that use it.
const (
	auxWrite = 1 << 0 // EvFault, EvMiss: write access; EvLock*: read-only mode
	auxLocal = 1 << 1 // EvLockAcq: local reacquire
	domShift = 1      // EvTwin, EvCollect, EvApply: domain in bits 1..
	auxRO    = 1 << 0
)

// Rec is one fixed-width trace record: 32 bytes in memory, 28 on the wire.
// Records are plain values; appending one to a warm per-processor buffer
// performs no allocation.
type Rec struct {
	// At is the simulated time the event was recorded.
	At sim.Time
	// Kind selects the record variant and the slot interpretation.
	Kind Kind
	// Proc is the processor the event is attributed to.
	Proc uint8
	// Aux carries small per-kind flags (access mode, domain).
	Aux uint16
	// A and B are the per-kind scalar slots (page, lock, peer processor).
	A, B int32
	// C is the per-kind wide slot (bytes, words, durations).
	C int64
}

// Write reports the access-mode bit of fault/miss records.
func (r Rec) Write() bool { return r.Aux&auxWrite != 0 }

// ReadOnlyMode reports the read-only-mode bit of lock records.
func (r Rec) ReadOnlyMode() bool { return r.Aux&auxRO != 0 }

// Local reports the local-reacquire bit of EvLockAcq records.
func (r Rec) Local() bool { return r.Aux&auxLocal != 0 }

// Domain returns the attribution domain of twin/collect/apply records.
func (r Rec) Domain() Domain { return Domain(r.Aux >> domShift) }

// MaxProcs bounds the processor count a Tracer can record (Proc is one byte).
const MaxProcs = 255

// Tracer accumulates one run's event records in per-processor append
// buffers. It is owned by a single run (one simulator, one goroutine at a
// time), so no locking is needed. All emit methods are nil-safe: calling them
// on a nil *Tracer is the disabled fast path and does nothing.
type Tracer struct {
	bufs [][]Rec
	// sched enables the high-frequency scheduler channel (EvDispatch).
	sched bool
}

// New returns an empty tracer for nprocs processors (at most MaxProcs).
func New(nprocs int) *Tracer {
	if nprocs < 1 || nprocs > MaxProcs {
		panic(fmt.Sprintf("trace: bad processor count %d", nprocs))
	}
	return &Tracer{bufs: make([][]Rec, nprocs)}
}

// EnableSched turns on the scheduler dispatch channel (EvDispatch records),
// which is off by default: one record per simulator event is the most
// voluminous thing the tracer can capture.
func (t *Tracer) EnableSched() { t.sched = true }

// NProcs returns the processor count the tracer was created for.
func (t *Tracer) NProcs() int { return len(t.bufs) }

// Len returns the total number of records across all processors.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, b := range t.bufs {
		n += len(b)
	}
	return n
}

// Reserve pre-grows every per-processor buffer to capacity n, so a
// steady-state emit window performs no allocation at all (appends into warm
// buffers). Optional: without it, growth is amortized doubling.
func (t *Tracer) Reserve(n int) {
	if t == nil {
		return
	}
	for i, b := range t.bufs {
		if cap(b) < n {
			grown := make([]Rec, len(b), n)
			copy(grown, b)
			t.bufs[i] = grown
		}
	}
}

// emit appends r to proc's buffer. The bounds check doubles as the guard
// against events attributed to out-of-range processors.
func (t *Tracer) emit(proc int, r Rec) {
	r.Proc = uint8(proc)
	t.bufs[proc] = append(t.bufs[proc], r)
}

// Wake records the scheduler resuming proc (sim.Probe).
func (t *Tracer) Wake(at sim.Time, proc int) {
	if t == nil {
		return
	}
	t.emit(proc, Rec{At: at, Kind: EvWake})
}

// Dispatch records one scheduler event dispatch (sim.Probe). Dropped unless
// EnableSched was called. The target process travels in A (-1 for callback
// and timer events, which have no target); those records land in buffer 0
// but the Proc-less attribution is carried by A, not by the buffer.
func (t *Tracer) Dispatch(at sim.Time, evKind uint8, proc int) {
	if t == nil || !t.sched {
		return
	}
	target := proc
	if proc < 0 || proc >= len(t.bufs) {
		proc = 0
		target = -1
	}
	t.emit(proc, Rec{At: at, Kind: EvDispatch, Aux: uint16(evKind), A: int32(target)})
}

// Block records proc giving up the CPU with the given wait reason.
func (t *Tracer) Block(at sim.Time, proc int, reason string) {
	if t == nil {
		return
	}
	t.emit(proc, Rec{At: at, Kind: EvBlock, Aux: BlockReasonCode(reason)})
}

// Work records d of classified protocol CPU charged to proc, attributed to
// the object (objKind, objID): (ObjPage, page), (ObjLock, lock),
// (ObjBarrier, barrier) or (ObjNone, -1). Zero and negative durations are
// dropped — charge sites pass hook results through unconditionally.
func (t *Tracer) Work(at sim.Time, proc int, class uint16, objKind int32, objID int, d sim.Time) {
	if t == nil || d <= 0 {
		return
	}
	t.emit(proc, Rec{At: at, Kind: EvWork, Aux: class, A: int32(objID), B: objKind, C: int64(d)})
}

// Recovery records d of fault-recovery time charged to proc: delivery delay
// of a recovered frame at its receiver, or retransmission CPU at its sender.
func (t *Tracer) Recovery(at sim.Time, proc int, d sim.Time) {
	if t == nil || d <= 0 {
		return
	}
	t.emit(proc, Rec{At: at, Kind: EvRecovery, C: int64(d)})
}

// ProcResumed implements sim.Probe: the scheduler resumed proc.
func (t *Tracer) ProcResumed(at sim.Time, proc int) { t.Wake(at, proc) }

// ProcBlocked implements sim.Probe: proc gave up the CPU.
func (t *Tracer) ProcBlocked(at sim.Time, proc int, reason string) { t.Block(at, proc, reason) }

// EventDispatched implements sim.Probe: the scheduler dispatched one event.
func (t *Tracer) EventDispatched(at sim.Time, kind uint8, proc int) { t.Dispatch(at, kind, proc) }

// Send records a message leaving from.
func (t *Tracer) Send(at sim.Time, from, to, msgKind, bytes int) {
	if t == nil {
		return
	}
	t.emit(from, Rec{At: at, Kind: EvSend, A: int32(to), B: int32(msgKind), C: int64(bytes)})
}

// Deliver records a message arriving at to.
func (t *Tracer) Deliver(at sim.Time, from, to, msgKind, bytes int) {
	if t == nil {
		return
	}
	t.emit(to, Rec{At: at, Kind: EvDeliver, A: int32(from), B: int32(msgKind), C: int64(bytes)})
}

// LinkClaim records a contention-mode claim of the shared link.
func (t *Tracer) LinkClaim(at sim.Time, from, to, bytes int) {
	if t == nil {
		return
	}
	t.emit(from, Rec{At: at, Kind: EvLinkClaim, A: int32(to), C: int64(bytes)})
}

// LinkWait records the queueing delay a claim spent behind the shared link.
func (t *Tracer) LinkWait(at sim.Time, from int, wait sim.Time) {
	if t == nil {
		return
	}
	t.emit(from, Rec{At: at, Kind: EvLinkWait, C: int64(wait)})
}

// Fault records a protection fault.
func (t *Tracer) Fault(at sim.Time, proc, page int, write bool) {
	if t == nil {
		return
	}
	t.emit(proc, Rec{At: at, Kind: EvFault, A: int32(page), Aux: writeBit(write)})
}

// Miss records an LRC access miss and how many writers it fetched from.
func (t *Tracer) Miss(at sim.Time, proc, page, writers int, write bool) {
	if t == nil {
		return
	}
	t.emit(proc, Rec{At: at, Kind: EvMiss, A: int32(page), B: int32(writers), Aux: writeBit(write)})
}

// FetchServe records proc answering a page fetch from requester.
func (t *Tracer) FetchServe(at sim.Time, proc, page, requester, bytes int) {
	if t == nil {
		return
	}
	t.emit(proc, Rec{At: at, Kind: EvFetchServe, A: int32(page), B: int32(requester), C: int64(bytes)})
}

// Twin records a twin creation (a page twin, or an EC eager object copy when
// dom is DomainLock and id the lock).
func (t *Tracer) Twin(at sim.Time, proc int, dom Domain, id int) {
	if t == nil {
		return
	}
	t.emit(proc, Rec{At: at, Kind: EvTwin, A: int32(id), Aux: uint16(dom) << domShift})
}

// Collect records a write-collection harvest: words changed words attributed
// to page or lock id, from interval/incarnation tag.
func (t *Tracer) Collect(at sim.Time, proc int, dom Domain, id, tag, words int) {
	if t == nil {
		return
	}
	t.emit(proc, Rec{At: at, Kind: EvCollect, A: int32(id), B: int32(tag), Aux: uint16(dom) << domShift, C: int64(words)})
}

// Apply records modification data installed at proc: words applied to page
// or lock id, received from writer (-1 when the producer is not identified).
func (t *Tracer) Apply(at sim.Time, proc int, dom Domain, id, writer, words int) {
	if t == nil {
		return
	}
	t.emit(proc, Rec{At: at, Kind: EvApply, A: int32(id), B: int32(writer), Aux: uint16(dom) << domShift, C: int64(words)})
}

// LockReq records the start of a remote lock acquire.
func (t *Tracer) LockReq(at sim.Time, proc, lock int, ro bool) {
	if t == nil {
		return
	}
	t.emit(proc, Rec{At: at, Kind: EvLockReq, A: int32(lock), Aux: writeBit(ro)})
}

// LockAcq records a completed lock acquire (local = no messages were needed).
func (t *Tracer) LockAcq(at sim.Time, proc, lock int, ro, local bool) {
	if t == nil {
		return
	}
	aux := writeBit(ro)
	if local {
		aux |= auxLocal
	}
	t.emit(proc, Rec{At: at, Kind: EvLockAcq, A: int32(lock), Aux: aux})
}

// LockGrant records proc granting lock to requester with bytes of payload.
func (t *Tracer) LockGrant(at sim.Time, proc, lock, requester int, ro bool, bytes int) {
	if t == nil {
		return
	}
	t.emit(proc, Rec{At: at, Kind: EvLockGrant, A: int32(lock), B: int32(requester), Aux: writeBit(ro), C: int64(bytes)})
}

// LockRel records a lock release and the number of requests queued behind it.
func (t *Tracer) LockRel(at sim.Time, proc, lock, queued int) {
	if t == nil {
		return
	}
	t.emit(proc, Rec{At: at, Kind: EvLockRel, A: int32(lock), B: int32(queued)})
}

// BarArrive records proc arriving at barrier b.
func (t *Tracer) BarArrive(at sim.Time, proc, b int) {
	if t == nil {
		return
	}
	t.emit(proc, Rec{At: at, Kind: EvBarArrive, A: int32(b)})
}

// BarDepart records proc leaving barrier b.
func (t *Tracer) BarDepart(at sim.Time, proc, b int) {
	if t == nil {
		return
	}
	t.emit(proc, Rec{At: at, Kind: EvBarDepart, A: int32(b)})
}

// Drop records the fault injector losing an attempt of a frame from->to.
func (t *Tracer) Drop(at sim.Time, from, to, msgKind, attempt int) {
	if t == nil {
		return
	}
	t.emit(from, Rec{At: at, Kind: EvDrop, A: int32(to), B: int32(msgKind), Aux: uint16(attempt)})
}

// Retransmit records the reliable sublayer resending a frame from->to.
func (t *Tracer) Retransmit(at sim.Time, from, to, msgKind, attempt int) {
	if t == nil {
		return
	}
	t.emit(from, Rec{At: at, Kind: EvRetransmit, A: int32(to), B: int32(msgKind), Aux: uint16(attempt)})
}

// Ack records a reliable-delivery acknowledgement from receiver landing at
// sender, covering sequence number seq.
func (t *Tracer) Ack(at sim.Time, receiver, sender, seq int) {
	if t == nil {
		return
	}
	t.emit(sender, Rec{At: at, Kind: EvAck, A: int32(receiver), B: int32(seq)})
}

// DupDrop records receiver to discarding a duplicate frame from from.
func (t *Tracer) DupDrop(at sim.Time, from, to, msgKind int) {
	if t == nil {
		return
	}
	t.emit(to, Rec{At: at, Kind: EvDupDrop, A: int32(from), B: int32(msgKind)})
}

// Bind records an EC lock/data binding range.
func (t *Tracer) Bind(at sim.Time, proc, lock int, base, length int) {
	if t == nil {
		return
	}
	t.emit(proc, Rec{At: at, Kind: EvBind, A: int32(lock), B: int32(base), C: int64(length)})
}

func writeBit(b bool) uint16 {
	if b {
		return auxWrite
	}
	return 0
}

// Merged returns every record in the canonical global order: by time, ties
// broken by processor then per-processor emission order. The order is a pure
// function of the simulated run, so two traces of the same cell merge to
// identical sequences regardless of host parallelism.
func (t *Tracer) Merged() []Rec {
	if t == nil {
		return nil
	}
	out := make([]Rec, 0, t.Len())
	for _, b := range t.bufs {
		out = append(out, b...)
	}
	// Each per-proc buffer is in emission order but handler-context
	// timestamps may run slightly ahead of process-context ones, so a full
	// stable sort (not a k-way merge of sorted runs) is required. The stable
	// sort preserves per-processor emission order on ties; cross-processor
	// ties fall back to processor id.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Proc < out[j].Proc
	})
	return out
}

// Binary trace format: a 16-byte header (magic, version, processor count,
// record count) followed by the merged records, 28 bytes each, little-endian.
const (
	binMagic   = "DSMTRC"
	binVersion = 1
	recWire    = 28
)

// WriteBinary writes the trace in the compact binary format, records in
// canonical merged order. The output is a pure function of the simulated
// run: determinism tests compare these bytes directly. Writes are buffered
// internally, so handing in a raw *os.File costs no per-record syscall.
func (t *Tracer) WriteBinary(w io.Writer) error {
	recs := t.Merged()
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	copy(hdr[:6], binMagic)
	hdr[6] = binVersion
	hdr[7] = uint8(len(t.bufs))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(recs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [recWire]byte
	for _, r := range recs {
		binary.LittleEndian.PutUint64(buf[0:], uint64(r.At))
		buf[8] = uint8(r.Kind)
		buf[9] = r.Proc
		binary.LittleEndian.PutUint16(buf[10:], r.Aux)
		binary.LittleEndian.PutUint32(buf[12:], uint32(r.A))
		binary.LittleEndian.PutUint32(buf[16:], uint32(r.B))
		binary.LittleEndian.PutUint64(buf[20:], uint64(r.C))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ErrCorrupt is wrapped by every ReadBinary failure caused by the input
// bytes — bad magic, impossible counts, truncation, out-of-range fields —
// as opposed to a genuine I/O error from the underlying reader. Callers
// (dsmtrace, fuzzers) classify with errors.Is.
var ErrCorrupt = errors.New("corrupt trace")

// ReadBinary parses a binary trace back into a Tracer whose records are all
// attributed to their original processors (buffer order is the canonical
// merged order filtered per processor). It never panics on hostile input:
// malformed bytes yield an error wrapping ErrCorrupt, and memory use is
// bounded by the input length (the declared record count is checked against
// the bytes actually present, never trusted for allocation).
func ReadBinary(r io.Reader) (*Tracer, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("trace: %w: truncated header", ErrCorrupt)
		}
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:6]) != binMagic || hdr[6] != binVersion {
		return nil, fmt.Errorf("trace: %w: bad magic or version", ErrCorrupt)
	}
	nprocs := int(hdr[7])
	if nprocs < 1 {
		return nil, fmt.Errorf("trace: %w: bad processor count %d", ErrCorrupt, nprocs)
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	t := New(nprocs)
	var buf [recWire]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("trace: %w: header declares %d records, input ends at %d", ErrCorrupt, n, i)
			}
			return nil, fmt.Errorf("trace: reading record %d: %w", i, err)
		}
		rec := Rec{
			At:   sim.Time(binary.LittleEndian.Uint64(buf[0:])),
			Kind: Kind(buf[8]),
			Proc: buf[9],
			Aux:  binary.LittleEndian.Uint16(buf[10:]),
			A:    int32(binary.LittleEndian.Uint32(buf[12:])),
			B:    int32(binary.LittleEndian.Uint32(buf[16:])),
			C:    int64(binary.LittleEndian.Uint64(buf[20:])),
		}
		if rec.Kind == EvNone || rec.Kind > evLast {
			return nil, fmt.Errorf("trace: %w: record %d has unknown kind %d", ErrCorrupt, i, rec.Kind)
		}
		if rec.At < 0 {
			return nil, fmt.Errorf("trace: %w: record %d has negative time", ErrCorrupt, i)
		}
		if int(rec.Proc) >= nprocs {
			return nil, fmt.Errorf("trace: %w: record %d names processor %d of %d", ErrCorrupt, i, rec.Proc, nprocs)
		}
		t.bufs[rec.Proc] = append(t.bufs[rec.Proc], rec)
	}
	return t, nil
}

// MsgClasses lists the message-class column order of the interval breakdown:
// the fabric message kinds the protocols use, by their wire kind numbers.
var msgClasses = []struct {
	kind int
	name string
}{
	{1, "lock-req"},
	{2, "lock-grant"},
	{3, "bar-arrive"},
	{4, "bar-depart"},
	{10, "page-req"},
	{11, "page-reply"},
}

// MsgClassName names a fabric message kind for reports; unknown kinds render
// as "kind-N".
func MsgClassName(kind int) string {
	for _, c := range msgClasses {
		if c.kind == kind {
			return c.name
		}
	}
	return fmt.Sprintf("kind-%d", kind)
}

// MsgClassNames returns the report column order of the known message classes,
// plus "other" for anything else.
func MsgClassNames() []string {
	out := make([]string, 0, len(msgClasses)+1)
	for _, c := range msgClasses {
		out = append(out, c.name)
	}
	return append(out, "other")
}

// msgClassIndex maps a fabric kind to its MsgClassNames column.
func msgClassIndex(kind int) int {
	for i, c := range msgClasses {
		if c.kind == kind {
			return i
		}
	}
	return len(msgClasses) // "other"
}
