package trace

import (
	"sort"

	"ecvslrc/internal/mem"
	"ecvslrc/internal/sim"
)

// Meta carries the run identity and layout context the analyzer needs to
// attribute events: region names label pages, and the page count bounds the
// per-page tables.
type Meta struct {
	// App, Impl and Scale identify the run in report headers.
	App   string
	Impl  string
	Scale string
	// NProcs is the processor count of the traced run.
	NProcs int
	// Regions is the shared-memory layout (mem.Allocator.Regions), used to
	// name pages in the reports.
	Regions []mem.Region
	// Pages is the number of shared pages laid out.
	Pages int
}

// RegionOf names the region covering page pg, or "" when unallocated.
func (m Meta) RegionOf(pg int) string {
	a := mem.PageBase(pg)
	for _, r := range m.Regions {
		if a >= r.Base && a < r.Base+mem.Addr(r.Size) {
			return r.Name
		}
	}
	return ""
}

// Pattern is the sharing-pattern classification of one shared page, derived
// from its access-and-transfer history (see Classify for the rules).
type Pattern uint8

const (
	// PatternPrivate marks a page that never moved between processors.
	PatternPrivate Pattern = iota
	// PatternReadMostly marks a page written by at most one processor and
	// fetched predominantly for reading.
	PatternReadMostly
	// PatternMigratory marks a page whose multiple writers fetch it mostly
	// to write: ownership of the data migrates around the ring.
	PatternMigratory
	// PatternProducerConsumer marks a page with a stable writer set feeding
	// processors that fetch it to read.
	PatternProducerConsumer
	// PatternFalseSharing marks a page where concurrent writers modify
	// disjoint words: some access miss fetched modifications from two or
	// more writers at once (only the multi-writer LRC protocol exhibits it;
	// EC binds disjoint objects to distinct locks instead — Section 7.1).
	PatternFalseSharing
)

// String names the pattern as the reports print it.
func (p Pattern) String() string {
	switch p {
	case PatternPrivate:
		return "private"
	case PatternReadMostly:
		return "read-mostly"
	case PatternMigratory:
		return "migratory"
	case PatternProducerConsumer:
		return "producer-consumer"
	case PatternFalseSharing:
		return "false-sharing"
	}
	return "?"
}

// PageReport is the heat-and-history record of one shared page.
type PageReport struct {
	// Page is the page number; Region the covering allocation's name.
	Page   int
	Region string
	// Faults counts protection faults on the page; Misses the LRC access
	// misses among them (WriteMisses the write-access subset).
	Faults      int64
	Misses      int64
	WriteMisses int64
	// MultiWriterMisses counts misses that fetched from two or more writers
	// at once — the false-sharing signal.
	MultiWriterMisses int64
	// Twins counts twin creations; Collects harvests (diffs built or blocks
	// stamped); Applies installations of remote modifications.
	Twins    int64
	Collects int64
	Applies  int64
	// WordsCollected and WordsApplied total the harvested and installed
	// words attributed to the page.
	WordsCollected int64
	WordsApplied   int64
	// BytesMoved totals the wire bytes of data transfers attributed to the
	// page (fetch replies; EC grant payloads split over the bound pages).
	BytesMoved int64
	// Writers and Readers are the distinct processors that modified /
	// consumed the page; OwnerMoves counts writer-to-writer transitions in
	// time order (the migration count).
	Writers    int
	Readers    int
	OwnerMoves int64
	// Pattern is the sharing classification.
	Pattern Pattern
}

// LockReport aggregates one lock's contention history.
type LockReport struct {
	Lock int
	// Acquires counts completed acquisitions (ReadOnly the read subset,
	// Local the no-message reacquires, Remote the message-bearing ones).
	Acquires int64
	ReadOnly int64
	Local    int64
	Remote   int64
	// Grants counts grants served by any holder; BytesMoved their payload.
	Grants     int64
	BytesMoved int64
	// WaitTotal/WaitMax is request-to-acquire latency over remote acquires;
	// HandoffTotal/HandoffMax the grant-to-acquire (transfer install) slice
	// of it.
	WaitTotal    sim.Time
	WaitMax      sim.Time
	HandoffTotal sim.Time
	HandoffMax   sim.Time
	// MaxQueue is the deepest request queue observed at any release — the
	// instantaneous serialization depth.
	MaxQueue int
	// Holders is the number of distinct processors that acquired the lock.
	Holders int
	// Pages are the pages of the lock's bound ranges (EC only).
	Pages []int
}

// BarrierReport aggregates one barrier's episode history.
type BarrierReport struct {
	Barrier  int
	Episodes int64
	// ImbalanceTotal/ImbalanceMax is the spread between the first and last
	// arrival of each episode, the paper's load-imbalance signal.
	ImbalanceTotal sim.Time
	ImbalanceMax   sim.Time
	// LastProc is the processor that most often arrived last.
	LastProc int
}

// IntervalRow is one bucket of the message-class timeline: the run is split
// into equal time slices and traffic is tallied per class (MsgClassNames
// column order).
type IntervalRow struct {
	Start, End sim.Time
	Msgs       []int64
	Bytes      []int64
}

// LinkReport aggregates one directed link's fault-and-recovery history: the
// injector's losses and the reliable sublayer's responses, attributed to the
// data direction (acks travel the reverse path but count against the link
// whose data they acknowledge). Only traced runs under a fault plan produce
// these events.
type LinkReport struct {
	From, To    int
	Drops       int64
	Retransmits int64
	Acks        int64
	DupDrops    int64
}

// Analysis is the attribution summary of one traced run.
type Analysis struct {
	Meta Meta
	// Span is the last record's timestamp (the analyzed horizon).
	Span sim.Time
	// TotalMsgs/TotalBytes tally every send in the trace.
	TotalMsgs  int64
	TotalBytes int64
	// LinkWait totals contention-mode queueing delay (zero without
	// contention).
	LinkWait sim.Time
	// Pages holds one report per shared page, in page order.
	Pages []PageReport
	// Locks holds one report per lock, in lock order.
	Locks []LockReport
	// Barriers holds one report per barrier id, in id order.
	Barriers []BarrierReport
	// Intervals is the message-class timeline; Classes its column names.
	Intervals []IntervalRow
	Classes   []string
	// Links holds one report per directed link with fault activity, ordered
	// by (From, To); empty for fault-free runs.
	Links []LinkReport
}

// PatternCounts tallies the page classifications.
func (a *Analysis) PatternCounts() map[Pattern]int {
	out := make(map[Pattern]int)
	for _, p := range a.Pages {
		out[p.Pattern]++
	}
	return out
}

// DefaultIntervals is the bucket count of the message-class timeline.
const DefaultIntervals = 16

// procSet is a small distinct-processor set (at most MaxProcs members).
type procSet [4]uint64

func (s *procSet) add(p int)      { s[p>>6] |= 1 << (uint(p) & 63) }
func (s *procSet) has(p int) bool { return s[p>>6]&(1<<(uint(p)&63)) != 0 }
func (s *procSet) count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// pageTally is the per-page accumulation state during the analysis pass.
type pageTally struct {
	rep        PageReport
	writers    procSet
	readers    procSet
	lastWriter int
	// readFetches/writeFetches count remote fetches of the page by access
	// mode (LRC misses; EC remote acquires of covering locks by mode).
	readFetches  int64
	writeFetches int64
}

// lockTally is the per-lock accumulation state.
type lockTally struct {
	rep     LockReport
	holders procSet
	// reqAt/grantAt hold the open request/grant timestamps per requester.
	reqAt   map[int]sim.Time
	grantAt map[int]sim.Time
	// readers/writers are the processors that acquired read-only vs
	// exclusively-with-harvest (used for the EC page projection); remoteRO
	// counts the remote read-only acquires among rep.Remote, exclGrants the
	// exclusive grants among rep.Grants (each one moves ownership).
	readers    procSet
	writers    procSet
	remoteRO   int64
	exclGrants int64
	// ranges are the deduplicated bound ranges (EC).
	ranges []mem.Range
}

// barTally is the per-barrier accumulation state.
type barTally struct {
	rep BarrierReport
	// open is the current episode: arrival times in arrival order.
	firstAt, lastAt sim.Time
	arrived         int
	lastProc        int
	lastCounts      map[int]int64
}

// Analyze runs the attribution pass over the trace: one linear scan of the
// canonical merged record order feeds the per-page, per-lock and per-barrier
// tallies, then the classifier labels every page. The result is a pure
// function of the trace and meta.
func Analyze(t *Tracer, meta Meta) *Analysis {
	recs := t.Merged()
	a := &Analysis{Meta: meta, Classes: MsgClassNames()}
	if len(recs) > 0 {
		a.Span = recs[len(recs)-1].At
	}

	pages := make(map[int]*pageTally)
	locks := make(map[int]*lockTally)
	bars := make(map[int]*barTally)
	links := make(map[int]*LinkReport)
	link := func(from, to int) *LinkReport {
		k := from<<16 | to
		lr := links[k]
		if lr == nil {
			lr = &LinkReport{From: from, To: to}
			links[k] = lr
		}
		return lr
	}
	page := func(pg int) *pageTally {
		pt := pages[pg]
		if pt == nil {
			pt = &pageTally{lastWriter: -1}
			pt.rep.Page = pg
			pages[pg] = pt
		}
		return pt
	}
	lock := func(l int) *lockTally {
		lt := locks[l]
		if lt == nil {
			lt = &lockTally{reqAt: make(map[int]sim.Time), grantAt: make(map[int]sim.Time)}
			lt.rep.Lock = l
			locks[l] = lt
		}
		return lt
	}
	bar := func(b int) *barTally {
		bt := bars[b]
		if bt == nil {
			bt = &barTally{lastCounts: make(map[int]int64), lastProc: -1}
			bt.rep.Barrier = b
			bars[b] = bt
		}
		return bt
	}

	for _, r := range recs {
		proc := int(r.Proc)
		switch r.Kind {
		case EvSend:
			a.TotalMsgs++
			a.TotalBytes += r.C
		case EvLinkWait:
			a.LinkWait += sim.Time(r.C)
		case EvDrop:
			link(proc, int(r.A)).Drops++
		case EvRetransmit:
			link(proc, int(r.A)).Retransmits++
		case EvAck:
			// Proc is the data sender hearing the ack; A the receiver that
			// generated it. Attribute to the data direction Proc -> A.
			link(proc, int(r.A)).Acks++
		case EvDupDrop:
			// Proc is the receiver discarding; A the sender. Data direction
			// is A -> Proc.
			link(int(r.A), proc).DupDrops++
		case EvFault:
			page(int(r.A)).rep.Faults++
		case EvMiss:
			pt := page(int(r.A))
			pt.rep.Misses++
			pt.readers.add(proc)
			if r.Write() {
				pt.rep.WriteMisses++
				pt.writeFetches++
			} else {
				pt.readFetches++
			}
			if r.B >= 2 {
				pt.rep.MultiWriterMisses++
			}
		case EvFetchServe:
			page(int(r.A)).rep.BytesMoved += r.C
		case EvTwin:
			if r.Domain() == DomainPage {
				page(int(r.A)).rep.Twins++
			}
		case EvCollect:
			if r.Domain() == DomainPage {
				pt := page(int(r.A))
				pt.rep.Collects++
				pt.rep.WordsCollected += r.C
				pt.noteWriter(proc)
			} else {
				lt := lock(int(r.A))
				lt.writers.add(proc)
			}
		case EvApply:
			if r.Domain() == DomainPage {
				pt := page(int(r.A))
				pt.rep.Applies++
				pt.rep.WordsApplied += r.C
			}
		case EvLockReq:
			lock(int(r.A)).reqAt[proc] = r.At
		case EvLockGrant:
			lt := lock(int(r.A))
			lt.rep.Grants++
			lt.rep.BytesMoved += r.C
			if !r.ReadOnlyMode() {
				lt.exclGrants++
			}
			lt.grantAt[int(r.B)] = r.At
		case EvLockAcq:
			lt := lock(int(r.A))
			lt.rep.Acquires++
			lt.holders.add(proc)
			ro := r.ReadOnlyMode()
			if ro {
				lt.rep.ReadOnly++
				lt.readers.add(proc)
			}
			if r.Local() {
				lt.rep.Local++
				break
			}
			lt.rep.Remote++
			if ro {
				lt.remoteRO++
			}
			if at, ok := lt.reqAt[proc]; ok {
				wait := r.At - at
				lt.rep.WaitTotal += wait
				if wait > lt.rep.WaitMax {
					lt.rep.WaitMax = wait
				}
				delete(lt.reqAt, proc)
			}
			if at, ok := lt.grantAt[proc]; ok {
				hand := r.At - at
				lt.rep.HandoffTotal += hand
				if hand > lt.rep.HandoffMax {
					lt.rep.HandoffMax = hand
				}
				delete(lt.grantAt, proc)
			}
		case EvLockRel:
			lt := lock(int(r.A))
			if q := int(r.B); q > lt.rep.MaxQueue {
				lt.rep.MaxQueue = q
			}
		case EvBarArrive:
			bt := bar(int(r.A))
			if bt.arrived == 0 {
				bt.firstAt = r.At
			}
			bt.arrived++
			bt.lastAt, bt.lastProc = r.At, proc
			if bt.arrived == meta.NProcs {
				bt.rep.Episodes++
				imb := bt.lastAt - bt.firstAt
				bt.rep.ImbalanceTotal += imb
				if imb > bt.rep.ImbalanceMax {
					bt.rep.ImbalanceMax = imb
				}
				bt.lastCounts[bt.lastProc]++
				bt.arrived = 0
			}
		case EvBind:
			lt := lock(int(r.A))
			r2 := mem.Range{Base: mem.Addr(r.B), Len: int(r.C)}
			dup := false
			for _, have := range lt.ranges {
				if have == r2 {
					dup = true
					break
				}
			}
			if !dup {
				lt.ranges = append(lt.ranges, r2)
			}
		}
	}

	a.buildIntervals(recs)

	// Project the EC lock-keyed history onto the pages of each lock's bound
	// ranges: grants that carried data are the page's transfers, exclusive
	// acquirers its writers, read-only acquirers its readers.
	lockIDs := sortedKeys(locks)
	for _, l := range lockIDs {
		lt := locks[l]
		var pgs []int
		seen := make(map[int]bool)
		for _, r := range lt.ranges {
			for _, pg := range r.Pages() {
				if !seen[pg] {
					seen[pg] = true
					pgs = append(pgs, pg)
				}
			}
		}
		sort.Ints(pgs)
		lt.rep.Pages = pgs
		if len(pgs) == 0 {
			continue
		}
		perPage := lt.rep.BytesMoved / int64(len(pgs))
		exclRemote := lt.rep.Remote - lt.remoteRO
		for _, pg := range pgs {
			pt := page(pg)
			pt.rep.BytesMoved += perPage
			for p := 0; p < meta.NProcs; p++ {
				if lt.writers.has(p) {
					pt.noteWriter(p)
				}
				if lt.readers.has(p) {
					pt.readers.add(p)
				}
			}
			pt.readFetches += lt.remoteRO
			pt.writeFetches += exclRemote
			pt.rep.OwnerMoves += lt.exclGrants
		}
	}

	// Every laid-out page gets a report (and so a classification), even the
	// untouched ones: "no transfer activity" is itself the private label.
	pageIDs := sortedKeys(pages)
	if meta.Pages > 0 {
		pageIDs = pageIDs[:0]
		for pg := 0; pg < meta.Pages; pg++ {
			pageIDs = append(pageIDs, pg)
		}
	}
	for _, pg := range pageIDs {
		pt := pages[pg]
		if pt == nil {
			pt = &pageTally{lastWriter: -1}
			pt.rep.Page = pg
		}
		pt.rep.Region = meta.RegionOf(pg)
		pt.rep.Writers = pt.writers.count()
		pt.rep.Readers = pt.readers.count()
		pt.rep.Pattern = classify(pt)
		a.Pages = append(a.Pages, pt.rep)
	}
	for _, l := range lockIDs {
		lt := locks[l]
		lt.rep.Holders = lt.holders.count()
		a.Locks = append(a.Locks, lt.rep)
	}
	for _, k := range sortedKeys(links) {
		a.Links = append(a.Links, *links[k])
	}
	for _, b := range sortedKeys(bars) {
		bt := bars[b]
		best, bestN := -1, int64(0)
		for p, n := range bt.lastCounts {
			if n > bestN || (n == bestN && (best < 0 || p < best)) {
				best, bestN = p, n
			}
		}
		bt.rep.LastProc = best
		a.Barriers = append(a.Barriers, bt.rep)
	}
	return a
}

// noteWriter records proc as a writer of the page and counts owner moves
// (writer-to-writer transitions in time order).
func (pt *pageTally) noteWriter(proc int) {
	pt.writers.add(proc)
	if pt.lastWriter >= 0 && pt.lastWriter != proc {
		pt.rep.OwnerMoves++
	}
	pt.lastWriter = proc
}

// classify labels one page from its tally. The rules, in order:
//
//  1. No remote transfer activity at all -> private.
//  2. Any multi-writer miss (one fetch installing two or more writers'
//     concurrent modifications) -> false-sharing.
//  3. At most one writer -> read-mostly when read fetches dominate write
//     fetches, producer-consumer otherwise (a single producer feeding
//     writers-to-be is still producer-consumer traffic).
//  4. Two or more writers -> migratory when at least half the fetches are
//     write fetches (the data moves to be written next), producer-consumer
//     otherwise.
func classify(pt *pageTally) Pattern {
	transfers := pt.rep.Misses + pt.readFetches + pt.writeFetches + pt.rep.BytesMoved
	if transfers == 0 {
		return PatternPrivate
	}
	if pt.rep.MultiWriterMisses > 0 {
		return PatternFalseSharing
	}
	if pt.writers.count() <= 1 {
		if pt.readFetches >= pt.writeFetches {
			return PatternReadMostly
		}
		return PatternProducerConsumer
	}
	if 2*pt.writeFetches >= pt.readFetches+pt.writeFetches {
		return PatternMigratory
	}
	return PatternProducerConsumer
}

// buildIntervals fills the message-class timeline from the send records.
func (a *Analysis) buildIntervals(recs []Rec) {
	n := DefaultIntervals
	if a.Span == 0 {
		return
	}
	width := (a.Span + sim.Time(n) - 1) / sim.Time(n)
	if width == 0 {
		width = 1
	}
	classes := len(a.Classes)
	rows := make([]IntervalRow, n)
	for i := range rows {
		rows[i] = IntervalRow{
			Start: sim.Time(i) * width,
			End:   sim.Time(i+1) * width,
			Msgs:  make([]int64, classes),
			Bytes: make([]int64, classes),
		}
	}
	for _, r := range recs {
		if r.Kind != EvSend {
			continue
		}
		i := int(r.At / width)
		if i >= n {
			i = n - 1
		}
		c := msgClassIndex(int(r.B))
		rows[i].Msgs[c]++
		rows[i].Bytes[c] += r.C
	}
	a.Intervals = rows
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
