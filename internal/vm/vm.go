// Package vm is the software analogue of the virtual-memory hardware the
// paper's systems program through mprotect/SIGSEGV: a per-processor page
// table with access protections and a fault hook. Go's runtime owns the real
// signal machinery (see DESIGN.md substitutions), so every DSM access
// consults this table instead; the protocol-visible behaviour — which
// accesses fault and what the handler does — is preserved.
package vm

import (
	"fmt"

	"ecvslrc/internal/mem"
)

// Prot is a page protection level.
type Prot uint8

const (
	// NoAccess marks an invalid page: any access faults (used by the LRC
	// invalidate protocol).
	NoAccess Prot = iota
	// ReadOnly write-protects a page (used for copy-on-write twinning).
	ReadOnly
	// ReadWrite allows all access.
	ReadWrite
)

func (p Prot) String() string {
	switch p {
	case NoAccess:
		return "none"
	case ReadOnly:
		return "ro"
	case ReadWrite:
		return "rw"
	}
	return "?"
}

// FaultHandler resolves an access fault on addr (write reports the access
// type). On return the access must be permitted, or the MMU panics — a
// protocol bug, not an application condition.
type FaultHandler func(addr mem.Addr, write bool)

// MMU is one processor's page table.
type MMU struct {
	prot     []Prot
	handler  FaultHandler
	observer FaultHandler
	faults   int64
}

// New returns an MMU covering pages pages, all initially ReadWrite.
func New(pages int) *MMU {
	m := &MMU{prot: make([]Prot, pages)}
	for i := range m.prot {
		m.prot[i] = ReadWrite
	}
	return m
}

// SetHandler installs the fault handler (the protocol's SIGSEGV handler).
func (m *MMU) SetHandler(h FaultHandler) { m.handler = h }

// SetObserver installs a fault observation hook (the tracing subsystem's tap
// point). It runs before the handler on every real fault and must not resolve
// the fault or mutate protocol state — observation only.
func (m *MMU) SetObserver(h FaultHandler) { m.observer = h }

// Pages returns the number of pages covered.
func (m *MMU) Pages() int { return len(m.prot) }

// Table exposes the page-protection array itself, indexed by page number.
// The DSM access frontends cache it so the in-window fast path is one array
// load with no MMU pointer chase; SetProt mutates the same backing array, so
// a cached table stays coherent for the MMU's lifetime. Callers must treat
// it as read-only — protection changes go through SetProt.
func (m *MMU) Table() []Prot { return m.prot }

// Prot returns the protection of page pg.
func (m *MMU) Prot(pg int) Prot { return m.prot[pg] }

// SetProt changes the protection of page pg (the mprotect call; the caller
// charges its cost).
func (m *MMU) SetProt(pg int, p Prot) { m.prot[pg] = p }

// Faults returns the number of protection faults taken so far.
func (m *MMU) Faults() int64 { return m.faults }

// CheckRead validates a read access to addr, faulting if the page is
// invalid. The accessible case must stay small enough to inline: it runs on
// every shared load the applications issue.
func (m *MMU) CheckRead(addr mem.Addr) {
	if m.prot[int(addr)>>mem.PageShift] == NoAccess {
		m.check(addr, false)
	}
}

// CheckWrite validates a write access to addr, faulting if the page is
// invalid or write-protected. Inlines in the accessible case like CheckRead.
func (m *MMU) CheckWrite(addr mem.Addr) {
	if m.prot[int(addr)>>mem.PageShift] != ReadWrite {
		m.check(addr, true)
	}
}

// FaultRead and FaultWrite are the out-of-line slow paths behind the
// accessors' inlined protection checks: they re-validate the access against
// the current protection, then run the fault machinery. Callers invoke them
// only when the inlined fast-path check failed; single-argument forms keep
// the callers inside the inlining budget.

// FaultRead resolves a read access that failed the inlined check.
func (m *MMU) FaultRead(addr mem.Addr) { m.check(addr, false) }

// FaultWrite resolves a write access that failed the inlined check.
func (m *MMU) FaultWrite(addr mem.Addr) { m.check(addr, true) }

func (m *MMU) check(addr mem.Addr, write bool) {
	pg := mem.PageOf(addr)
	if m.allowed(pg, write) {
		return
	}
	if m.handler == nil {
		panic(fmt.Sprintf("vm: fault on page %d (%s access, prot %s) with no handler",
			pg, accessName(write), m.prot[pg]))
	}
	m.faults++
	if m.observer != nil {
		m.observer(addr, write)
	}
	m.handler(addr, write)
	if !m.allowed(pg, write) {
		panic(fmt.Sprintf("vm: fault handler left page %d inaccessible (%s access, prot %s)",
			pg, accessName(write), m.prot[pg]))
	}
}

func (m *MMU) allowed(pg int, write bool) bool {
	switch m.prot[pg] {
	case ReadWrite:
		return true
	case ReadOnly:
		return !write
	default:
		return false
	}
}

func accessName(write bool) string {
	if write {
		return "write"
	}
	return "read"
}
