package vm

import (
	"testing"

	"ecvslrc/internal/mem"
)

func TestDefaultReadWrite(t *testing.T) {
	m := New(4)
	m.CheckRead(0)
	m.CheckWrite(mem.PageSize * 3)
	if m.Faults() != 0 {
		t.Errorf("faults = %d, want 0", m.Faults())
	}
}

func TestReadOnlyFaultsOnWriteOnly(t *testing.T) {
	m := New(2)
	m.SetProt(0, ReadOnly)
	fired := 0
	m.SetHandler(func(a mem.Addr, write bool) {
		fired++
		if !write {
			t.Error("handler called for a read")
		}
		m.SetProt(mem.PageOf(a), ReadWrite)
	})
	m.CheckRead(100) // no fault: reads allowed
	m.CheckWrite(200)
	m.CheckWrite(300) // unprotected now: no second fault
	if fired != 1 || m.Faults() != 1 {
		t.Errorf("fired=%d faults=%d, want 1,1", fired, m.Faults())
	}
}

func TestNoAccessFaultsOnRead(t *testing.T) {
	m := New(1)
	m.SetProt(0, NoAccess)
	var gotAddr mem.Addr
	var gotWrite bool
	m.SetHandler(func(a mem.Addr, write bool) {
		gotAddr, gotWrite = a, write
		m.SetProt(0, ReadWrite)
	})
	m.CheckRead(44)
	if gotAddr != 44 || gotWrite {
		t.Errorf("handler got (%d, %v)", gotAddr, gotWrite)
	}
}

func TestHandlerMustFixProtection(t *testing.T) {
	m := New(1)
	m.SetProt(0, NoAccess)
	m.SetHandler(func(a mem.Addr, write bool) {}) // does nothing
	defer func() {
		if recover() == nil {
			t.Error("expected panic when handler leaves page inaccessible")
		}
	}()
	m.CheckWrite(0)
}

func TestFaultWithoutHandlerPanics(t *testing.T) {
	m := New(1)
	m.SetProt(0, NoAccess)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on fault without handler")
		}
	}()
	m.CheckRead(0)
}

func TestWriteFaultUpgradeToReadOnlyStillInsufficient(t *testing.T) {
	// A handler that "fixes" a write fault by setting ReadOnly is a protocol
	// bug and must be caught.
	m := New(1)
	m.SetProt(0, NoAccess)
	m.SetHandler(func(a mem.Addr, write bool) { m.SetProt(0, ReadOnly) })
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.CheckWrite(8)
}

func TestProtString(t *testing.T) {
	if NoAccess.String() != "none" || ReadOnly.String() != "ro" || ReadWrite.String() != "rw" {
		t.Error("Prot.String mismatch")
	}
}
