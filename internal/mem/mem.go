// Package mem models the shared virtual address space of the DSM systems: a
// flat range of bytes with 4 KB pages and 4-byte words, of which every
// simulated processor holds a private image. The consistency protocols keep
// the images in sync; applications access them only through the DSM API.
package mem

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Page and word geometry, matching the DECstation-5000/240 and the paper's
// terminology (a "word" is 4 bytes; twinning always compares words).
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	WordSize  = 4
	PageWords = PageSize / WordSize
)

// Addr is a simulated shared-memory address (byte offset into the space).
type Addr int

// PageOf returns the page number containing a.
func PageOf(a Addr) int { return int(a) >> PageShift }

// PageBase returns the first address of page pg.
func PageBase(pg int) Addr { return Addr(pg << PageShift) }

// WordOf returns the global word index of a.
func WordOf(a Addr) int { return int(a) / WordSize }

// Range is a contiguous span of shared memory, used for binding data to
// entry-consistency locks (Len in bytes).
type Range struct {
	Base Addr
	Len  int
}

// End returns the first address past the range.
func (r Range) End() Addr { return r.Base + Addr(r.Len) }

// Contains reports whether a falls inside r.
func (r Range) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// Words returns the number of words spanned by r.
func (r Range) Words() int { return (r.Len + WordSize - 1) / WordSize }

// Pages returns the page numbers r touches.
func (r Range) Pages() []int {
	if r.Len <= 0 {
		return nil
	}
	first, last := PageOf(r.Base), PageOf(r.End()-1)
	out := make([]int, 0, last-first+1)
	for pg := first; pg <= last; pg++ {
		out = append(out, pg)
	}
	return out
}

// Region is a named allocation in the shared space. Block is the write
// trapping granularity in bytes for compiler instrumentation (4 or 8): the
// paper's Water and 3D-FFT programs use 8-byte (double-word) dirty bits.
type Region struct {
	Name  string
	Base  Addr
	Size  int
	Block int
}

// Range returns the region's full extent.
func (r Region) Range() Range { return Range{Base: r.Base, Len: r.Size} }

// Allocator hands out page-aligned shared regions. All processors share one
// allocator (allocation happens deterministically before the run starts).
type Allocator struct {
	next    Addr
	regions []Region
	// pageBlock caches each page's instrumentation block size: regions are
	// page-aligned, so a page has exactly one block granularity and BlockAt
	// becomes a single array load instead of a region binary search (it runs
	// on every instrumented store and in every collection scan).
	pageBlock []uint8
	// replay re-serves the recorded regions in order instead of appending
	// (see Replayer): replayNext indexes the next region to hand out.
	replay     bool
	replayNext int
}

// NewAllocator returns an empty allocator starting at address 0.
func NewAllocator() *Allocator { return &Allocator{} }

// Replayer returns a view of al that re-serves the recorded allocation
// sequence: calling Alloc with the same (name, size, block) sequence returns
// the same addresses without mutating al or rebuilding its region tables.
// Layout is a pure function of the problem instance, so a cached allocator
// plus a Replayer lets every cell of a sweep rebind its app's addresses
// against shared, read-only region state. A mismatched sequence panics —
// that is a (app, scale) cache mix-up, not a recoverable condition.
func (al *Allocator) Replayer() *Allocator {
	cp := *al
	cp.replay = true
	cp.replayNext = 0
	return &cp
}

// Alloc reserves size bytes on a fresh page boundary with the given
// instrumentation block granularity and returns the base address. On a
// Replayer it re-serves the next recorded region instead, verifying the
// request matches.
func (al *Allocator) Alloc(name string, size, block int) Addr {
	if size <= 0 {
		panic(fmt.Sprintf("mem: alloc %q: bad size %d", name, size))
	}
	if block != 4 && block != 8 {
		panic(fmt.Sprintf("mem: alloc %q: block must be 4 or 8, got %d", name, block))
	}
	if al.replay {
		if al.replayNext >= len(al.regions) {
			panic(fmt.Sprintf("mem: replay alloc %q beyond the recorded layout", name))
		}
		r := al.regions[al.replayNext]
		if r.Name != name || r.Size != size || r.Block != block {
			panic(fmt.Sprintf("mem: replay alloc %q (%d/%d) does not match recorded region %q (%d/%d)",
				name, size, block, r.Name, r.Size, r.Block))
		}
		al.replayNext++
		return r.Base
	}
	base := al.next
	al.regions = append(al.regions, Region{Name: name, Base: base, Size: size, Block: block})
	pages := (size + PageSize - 1) / PageSize
	for i := 0; i < pages; i++ {
		al.pageBlock = append(al.pageBlock, uint8(block))
	}
	al.next += Addr(pages * PageSize)
	return base
}

// Size returns the total allocated extent in bytes (page-rounded).
func (al *Allocator) Size() int { return int(al.next) }

// Pages returns the number of allocated pages.
func (al *Allocator) Pages() int { return int(al.next) / PageSize }

// Regions returns the allocations in address order.
func (al *Allocator) Regions() []Region { return al.regions }

// RegionAt returns the region containing a, or false if a is unallocated.
func (al *Allocator) RegionAt(a Addr) (Region, bool) {
	i := sort.Search(len(al.regions), func(i int) bool { return al.regions[i].Base > a })
	if i == 0 {
		return Region{}, false
	}
	r := al.regions[i-1]
	if a >= r.Base+Addr(r.Size) {
		return Region{}, false
	}
	return r, true
}

// BlockAt returns the instrumentation block size covering a (4 if the
// address is unallocated). Page padding inside an allocated region's final
// page reports the region's block size: the region's granularity governs the
// whole page.
func (al *Allocator) BlockAt(a Addr) int {
	pg := int(a) >> PageShift
	if pg < len(al.pageBlock) {
		return int(al.pageBlock[pg])
	}
	return WordSize
}

// Image is one processor's private copy of the shared space.
type Image struct {
	data []byte
}

// ImageBytes returns the page-rounded byte size an image of size bytes
// occupies.
func ImageBytes(size int) int {
	return (size + PageSize - 1) / PageSize * PageSize
}

// NewImage returns a zeroed image of size bytes (page-rounded up).
func NewImage(size int) *Image {
	return &Image{data: make([]byte, ImageBytes(size))}
}

// imagePools recycles image backing stores across simulator runs, one pool
// per buffer size: a processor image is multiple megabytes at paper scale
// and allocating nine of them per table cell dominated the allocator's
// zeroing cost. Per-size pools keep the hit rate high when a parallel sweep
// interleaves cells of differently-sized applications.
var imagePools sync.Map // buffer length -> *sync.Pool of *Image

// RecycledImage returns an image of size bytes (page-rounded up) with
// UNSPECIFIED contents, reusing a recycled buffer of the right size when one
// is available. Only for callers that fully overwrite the image before any
// read (a whole-image CopyFrom); everyone else wants NewImage.
func RecycledImage(size int) *Image {
	pages := (size + PageSize - 1) / PageSize
	want := pages * PageSize
	if p, ok := imagePools.Load(want); ok {
		if v := p.(*sync.Pool).Get(); v != nil {
			return v.(*Image)
		}
	}
	return &Image{data: make([]byte, want)}
}

// RecycleImage surrenders im's buffer for reuse by RecycledImage. The caller
// must drop every reference to im.
func RecycleImage(im *Image) {
	p, _ := imagePools.LoadOrStore(len(im.data), &sync.Pool{})
	p.(*sync.Pool).Put(im)
}

// Size returns the image size in bytes.
func (im *Image) Size() int { return len(im.data) }

// Bytes exposes the raw backing store (used by validation and twinning).
func (im *Image) Bytes() []byte { return im.data }

// Page returns the backing bytes of page pg.
func (im *Image) Page(pg int) []byte {
	return im.data[pg<<PageShift : (pg+1)<<PageShift]
}

// CopyFrom overwrites this image with the contents of src.
func (im *Image) CopyFrom(src *Image) {
	if len(src.data) != len(im.data) {
		panic("mem: image size mismatch")
	}
	copy(im.data, src.data)
}

// ReadU32 loads the 32-bit word at a.
func (im *Image) ReadU32(a Addr) uint32 {
	return binary.LittleEndian.Uint32(im.data[a:])
}

// WriteU32 stores v at a.
func (im *Image) WriteU32(a Addr, v uint32) {
	binary.LittleEndian.PutUint32(im.data[a:], v)
}

// ReadU64 loads the 64-bit double-word at a.
func (im *Image) ReadU64(a Addr) uint64 {
	return binary.LittleEndian.Uint64(im.data[a:])
}

// WriteU64 stores v at a.
func (im *Image) WriteU64(a Addr, v uint64) {
	binary.LittleEndian.PutUint64(im.data[a:], v)
}

// ReadI32 loads a signed 32-bit integer.
func (im *Image) ReadI32(a Addr) int32 { return int32(im.ReadU32(a)) }

// WriteI32 stores a signed 32-bit integer.
func (im *Image) WriteI32(a Addr, v int32) { im.WriteU32(a, uint32(v)) }

// ReadF32 loads a 32-bit float.
func (im *Image) ReadF32(a Addr) float32 { return math.Float32frombits(im.ReadU32(a)) }

// WriteF32 stores a 32-bit float.
func (im *Image) WriteF32(a Addr, v float32) { im.WriteU32(a, math.Float32bits(v)) }

// ReadF64 loads a 64-bit float.
func (im *Image) ReadF64(a Addr) float64 { return math.Float64frombits(im.ReadU64(a)) }

// WriteF64 stores a 64-bit float.
func (im *Image) WriteF64(a Addr, v float64) { im.WriteU64(a, math.Float64bits(v)) }

// EqualRange reports whether two images agree over r.
func EqualRange(a, b *Image, r Range) bool {
	return bytes.Equal(a.data[r.Base:r.End()], b.data[r.Base:r.End()])
}
