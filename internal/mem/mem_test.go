package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	if PageSize != 4096 || WordSize != 4 || PageWords != 1024 {
		t.Fatalf("geometry constants wrong: %d %d %d", PageSize, WordSize, PageWords)
	}
	if PageOf(4095) != 0 || PageOf(4096) != 1 {
		t.Error("PageOf boundary wrong")
	}
	if PageBase(3) != 3*4096 {
		t.Error("PageBase wrong")
	}
	if WordOf(7) != 1 || WordOf(8) != 2 {
		t.Error("WordOf wrong")
	}
}

func TestRange(t *testing.T) {
	r := Range{Base: 100, Len: 8}
	if !r.Contains(100) || !r.Contains(107) || r.Contains(108) || r.Contains(99) {
		t.Error("Contains wrong")
	}
	if r.Words() != 2 {
		t.Errorf("Words = %d, want 2", r.Words())
	}
	if got := (Range{Base: 4090, Len: 10}).Pages(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Pages = %v", got)
	}
	if (Range{Base: 0, Len: 0}).Pages() != nil {
		t.Error("empty range should span no pages")
	}
}

func TestAllocatorPageAlignment(t *testing.T) {
	al := NewAllocator()
	a := al.Alloc("a", 100, 4)
	b := al.Alloc("b", PageSize+1, 8)
	c := al.Alloc("c", 50, 4)
	if a != 0 {
		t.Errorf("a = %d", a)
	}
	if b != PageSize {
		t.Errorf("b = %d, want %d", b, PageSize)
	}
	if c != 3*PageSize {
		t.Errorf("c = %d, want %d", c, 3*PageSize)
	}
	if al.Pages() != 4 {
		t.Errorf("pages = %d, want 4", al.Pages())
	}
}

func TestRegionLookup(t *testing.T) {
	al := NewAllocator()
	al.Alloc("a", 100, 4)
	al.Alloc("b", 200, 8)
	if r, ok := al.RegionAt(50); !ok || r.Name != "a" {
		t.Errorf("RegionAt(50) = %v %v", r, ok)
	}
	if _, ok := al.RegionAt(150); ok {
		t.Error("RegionAt(150) should be padding")
	}
	if r, ok := al.RegionAt(PageSize + 10); !ok || r.Name != "b" {
		t.Errorf("RegionAt(page+10) = %v %v", r, ok)
	}
	if al.BlockAt(PageSize+10) != 8 {
		t.Error("BlockAt should report region granularity")
	}
	if al.BlockAt(150) != 4 {
		t.Error("BlockAt in padding should default to word size")
	}
}

func TestAllocatorPanics(t *testing.T) {
	al := NewAllocator()
	mustPanic(t, "zero size", func() { al.Alloc("x", 0, 4) })
	mustPanic(t, "bad block", func() { al.Alloc("x", 8, 16) })
}

// TestAllocatorReplayer: a Replayer re-serves the recorded allocation
// sequence with identical addresses and metadata, without mutating the
// original, and rejects any divergence from the recorded layout.
func TestAllocatorReplayer(t *testing.T) {
	al := NewAllocator()
	a := al.Alloc("a", 100, 4)
	b := al.Alloc("b", PageSize+1, 8)

	r := al.Replayer()
	if got := r.Alloc("a", 100, 4); got != a {
		t.Errorf("replayed a = %d, want %d", got, a)
	}
	if got := r.Alloc("b", PageSize+1, 8); got != b {
		t.Errorf("replayed b = %d, want %d", got, b)
	}
	if r.Size() != al.Size() || r.Pages() != al.Pages() {
		t.Errorf("replayer geometry %d/%d, want %d/%d", r.Size(), r.Pages(), al.Size(), al.Pages())
	}
	if r.BlockAt(PageSize+10) != 8 {
		t.Error("replayer lost block granularity")
	}
	if len(al.Regions()) != 2 {
		t.Errorf("replay mutated the original: %d regions", len(al.Regions()))
	}
	mustPanic(t, "replay beyond layout", func() { r.Alloc("c", 8, 4) })

	r2 := al.Replayer()
	mustPanic(t, "replay mismatch", func() { r2.Alloc("a", 200, 4) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestImageAccessors(t *testing.T) {
	im := NewImage(PageSize)
	im.WriteI32(0, -42)
	if im.ReadI32(0) != -42 {
		t.Error("I32 roundtrip")
	}
	im.WriteF32(4, 3.25)
	if im.ReadF32(4) != 3.25 {
		t.Error("F32 roundtrip")
	}
	im.WriteF64(8, math.Pi)
	if im.ReadF64(8) != math.Pi {
		t.Error("F64 roundtrip")
	}
	im.WriteU64(16, 0x0102030405060708)
	if im.ReadU32(16) != 0x05060708 {
		t.Error("little-endian layout expected")
	}
}

func TestImageCopyAndEqualRange(t *testing.T) {
	a := NewImage(2 * PageSize)
	b := NewImage(2 * PageSize)
	a.WriteI32(100, 7)
	if EqualRange(a, b, Range{Base: 96, Len: 16}) {
		t.Error("ranges should differ")
	}
	b.CopyFrom(a)
	if !EqualRange(a, b, Range{Base: 0, Len: 2 * PageSize}) {
		t.Error("ranges should match after copy")
	}
	b.WriteI32(4096, 9)
	if !EqualRange(a, b, Range{Base: 0, Len: PageSize}) {
		t.Error("first page still equal")
	}
}

func TestImagePageSlicing(t *testing.T) {
	im := NewImage(3 * PageSize)
	im.WriteU32(PageSize, 0xdeadbeef)
	pg := im.Page(1)
	if len(pg) != PageSize {
		t.Fatalf("page len = %d", len(pg))
	}
	if pg[0] != 0xef || pg[3] != 0xde {
		t.Error("page slice does not alias image")
	}
	pg[0] = 0xaa
	if im.ReadU32(PageSize) != 0xdeadbeaa {
		t.Error("writes through page slice must be visible")
	}
}

func TestPropertyWordRoundTrip(t *testing.T) {
	im := NewImage(16 * PageSize)
	f := func(word uint16, v uint32) bool {
		a := Addr(int(word) % (16 * PageWords) * WordSize)
		im.WriteU32(a, v)
		return im.ReadU32(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyF64RoundTrip(t *testing.T) {
	im := NewImage(16 * PageSize)
	f := func(slot uint16, v float64) bool {
		a := Addr(int(slot) % (16 * PageSize / 8) * 8)
		im.WriteF64(a, v)
		got := im.ReadF64(a)
		if math.IsNaN(v) {
			return math.IsNaN(got)
		}
		return got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyRangePagesCoverRange(t *testing.T) {
	f := func(base uint16, length uint16) bool {
		r := Range{Base: Addr(base), Len: int(length)%8192 + 1}
		pages := r.Pages()
		// Every address in the range must fall in a listed page, and every
		// listed page must contain at least one address of the range.
		for a := r.Base; a < r.End(); a += 512 {
			found := false
			for _, pg := range pages {
				if PageOf(a) == pg {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		for _, pg := range pages {
			lo, hi := PageBase(pg), PageBase(pg+1)
			if r.End() <= lo || r.Base >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
