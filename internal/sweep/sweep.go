// Package sweep is the sensitivity-sweep subsystem: it runs a grid of
// (application x implementation x processor count x cost variant) cells on
// the bounded-worker harness and emits structured, deterministic results.
// The paper's verdict — entry consistency vs lazy release consistency —
// depends on platform constants (messaging software, wire bandwidth,
// write-detection cost, diff hardware); a sweep quantifies that dependence by
// re-running the evaluation matrix under named cost-model variants (see
// fabric's presets and knobs, and ParseVariantSpec for the spec syntax) and
// comparing every variant against the calibrated paper platform.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/harness"
	"ecvslrc/internal/perf"
	"ecvslrc/internal/sim"
	"ecvslrc/internal/trace"
)

// Variant is one platform point of a sweep: a name for reports, the cost
// constants, whether shared-link contention is modeled, and the fault plan
// injected into the fabric (nil runs fault-free).
type Variant struct {
	Name       string
	Cost       fabric.CostModel
	Contention bool
	// Fault is the fault-plan preset name ("" or "off" means fault-free);
	// Faults is the plan itself. ParseVariantSpec fills both from the fault
	// axis; programmatic callers may set Faults alone.
	Fault  string
	Faults *fabric.FaultPlan
	// Topo is the canonical topology spec ("" or "flat" means the calibrated
	// flat link); Topology is the resolved switch geometry. ParseVariantSpec
	// fills both from the topo axis; programmatic callers may set Topology
	// alone. Mutually exclusive with Faults.
	Topo     string
	Topology *fabric.Topology
}

// BaselineName is the canonical name of the calibrated paper platform.
const BaselineName = "paper"

// Baseline returns the paper-default variant every report compares against.
func Baseline() Variant {
	return Variant{Name: BaselineName, Cost: fabric.DefaultCostModel()}
}

// Grid describes a sweep: the cross product of Apps x NProcs x Impls is run
// under every Variant. Zero-valued fields get defaults from normalized.
type Grid struct {
	Scale    apps.Scale
	Apps     []string    // default: the paper's application suite
	Impls    []core.Impl // default: all six implementations
	NProcs   []int       // default: {8}
	Variants []Variant   // default: {Baseline()}
	// Parallel bounds concurrent cells, exactly like harness.Config.Parallel;
	// records are assembled in grid order, so results are identical for any
	// worker count. <= 0 means GOMAXPROCS.
	Parallel int
	// BarrierFanIn arranges every cell's barrier episodes as a radix-r tree
	// (see harness.Config.BarrierFanIn). 0 picks the scale default (flat
	// below apps.Large, 16 there); 1 forces the flat protocol.
	BarrierFanIn int
	// Timeout arms the simulator watchdog in every cell (see
	// harness.Config.Timeout): a cell whose virtual clock would pass it fails
	// with a sim.Stalled diagnostic instead of hanging the sweep. 0 disables.
	Timeout sim.Time
	// Breakdown traces every cell and attaches the virtual-time profiler's
	// per-class stall decomposition to each record (Record.Stall), adding the
	// breakdown columns to the CSV. Opt-in: tracing every cell costs memory
	// proportional to the event count, and the extra columns would churn
	// downstream consumers of the flat CSV. Observation-only — all other
	// record fields are byte-identical with it on or off. Requires every
	// NProcs entry to fit the tracer (trace.MaxProcs).
	Breakdown bool
	// Perf, when non-nil, attributes host-side performance (wall time,
	// allocation deltas, peak heap) to every cell of the grid, labeled with
	// the variant name, plus the grid's aggregate throughput and latency
	// quantiles at Snapshot time (internal/perf). Observation-only: the
	// records are byte-identical with and without it.
	Perf *perf.Registry
	// Progress, when non-nil, is invoked once after every completed unit of
	// work — each sequential reference and each grid cell — with the running
	// completion count, the total, the cell's label and its host wall time.
	// Calls may come from concurrent workers; perf.ProgressEmitter returns a
	// serializing implementation that streams heartbeats with throughput and
	// ETA. Observation-only: records do not depend on it.
	Progress func(done, total int, cell string, wall time.Duration)
}

// ErrGrid is wrapped by every Grid validation failure.
var ErrGrid = errors.New("invalid sweep grid")

// normalized fills defaults and validates, wrapping ErrGrid on failure.
func (g Grid) normalized() (Grid, error) {
	if len(g.Apps) == 0 {
		g.Apps = apps.Names()
	}
	if len(g.Impls) == 0 {
		g.Impls = core.Implementations()
	}
	if len(g.NProcs) == 0 {
		g.NProcs = []int{8}
	}
	if len(g.Variants) == 0 {
		g.Variants = []Variant{Baseline()}
	}
	for _, np := range g.NProcs {
		if np < 1 {
			return g, fmt.Errorf("sweep: %w: nprocs %d < 1", ErrGrid, np)
		}
		if g.Breakdown && np > trace.MaxProcs {
			return g, fmt.Errorf("sweep: %w: stall breakdown traces every cell, which supports 1..%d processors, got %d",
				ErrGrid, trace.MaxProcs, np)
		}
	}
	for _, i := range g.Impls {
		if !i.Valid() {
			return g, fmt.Errorf("sweep: %w: implementation %v", ErrGrid, i)
		}
	}
	seen := make(map[string]bool, len(g.Variants))
	for _, v := range g.Variants {
		if v.Name == "" {
			return g, fmt.Errorf("sweep: %w: variant with empty name", ErrGrid)
		}
		if seen[v.Name] {
			return g, fmt.Errorf("sweep: %w: duplicate variant %q", ErrGrid, v.Name)
		}
		seen[v.Name] = true
		if v.Faults != nil {
			if err := v.Faults.Validate(); err != nil {
				return g, fmt.Errorf("sweep: %w: variant %q: %v", ErrGrid, v.Name, err)
			}
		}
		if v.Topology != nil {
			if err := v.Topology.Validate(); err != nil {
				return g, fmt.Errorf("sweep: %w: variant %q: %v", ErrGrid, v.Name, err)
			}
			if v.Faults != nil {
				return g, fmt.Errorf("sweep: %w: variant %q combines a topology with a fault plan", ErrGrid, v.Name)
			}
		}
	}
	if g.Timeout < 0 {
		return g, fmt.Errorf("sweep: %w: negative timeout %v", ErrGrid, g.Timeout)
	}
	if g.BarrierFanIn < 0 {
		return g, fmt.Errorf("sweep: %w: negative barrier fan-in %d", ErrGrid, g.BarrierFanIn)
	}
	cfg := harness.Config{Scale: g.Scale, NProcs: g.NProcs[0], Cost: fabric.DefaultCostModel()}
	if err := cfg.Validate(); err != nil {
		return g, fmt.Errorf("sweep: %w: %v", ErrGrid, err)
	}
	return g, nil
}

// Record is the outcome of one sweep cell: full run statistics plus the
// variant metadata and the speedup against the application's memoized
// sequential reference (which is platform-independent — the sequential
// program pays computation time only).
type Record struct {
	Variant    string     `json:"variant"`
	Contention bool       `json:"contention"`
	App        string     `json:"app"`
	Impl       string     `json:"impl"`
	NProcs     int        `json:"nprocs"`
	Seq        sim.Time   `json:"seq_ns"`
	Stats      core.Stats `json:"stats"`
	Speedup    float64    `json:"speedup"`
	// LinkWait is the total shared-link queueing delay of the run — the
	// quantity contention mode exists to measure (zero with contention off).
	LinkWait sim.Time `json:"link_wait_ns"`
	// Fault names the variant's fault-plan preset; the counters below come
	// from the reliable sublayer. All stay at their zero values (and out of
	// the JSON) for fault-free variants, keeping fault-free output identical
	// to sweeps that predate fault injection.
	Fault        string   `json:"fault,omitempty"`
	Retransmits  int64    `json:"retransmits,omitempty"`
	DupsDropped  int64    `json:"dups_dropped,omitempty"`
	RecoveryWait sim.Time `json:"recovery_wait_ns,omitempty"`
	// Topo names the variant's switch topology in canonical spec form; empty
	// (and out of the JSON) for the flat calibrated link, keeping flat-fabric
	// output identical to sweeps that predate the topology model.
	Topo string `json:"topo,omitempty"`
	// Stall is the virtual-time profiler's stall-class decomposition of the
	// cell, summed over all processors. Present only with Grid.Breakdown on
	// (and out of the JSON otherwise), keeping non-breakdown output identical
	// to sweeps that predate the profiler.
	Stall *StallBreakdown `json:"stall,omitempty"`
}

// StallBreakdown is one record's machine-wide stall decomposition: every
// simulated nanosecond of every processor, classified by the virtual-time
// profiler (trace.BuildProfile). The classes sum exactly to the summed
// per-processor end times (the profiler's conservation invariant).
type StallBreakdown struct {
	Compute     sim.Time `json:"compute_ns"`
	TrapDiff    sim.Time `json:"trap_diff_ns"`
	PageFetch   sim.Time `json:"page_fetch_ns"`
	LockWait    sim.Time `json:"lock_wait_ns"`
	BarrierWait sim.Time `json:"barrier_wait_ns"`
	LinkWait    sim.Time `json:"link_wait_ns"`
	Recovery    sim.Time `json:"recovery_ns"`
}

// stallOf folds a profile's per-class totals into the record form.
func stallOf(p *trace.Profile) *StallBreakdown {
	return &StallBreakdown{
		Compute:     p.Total[trace.ClassCompute],
		TrapDiff:    p.Total[trace.ClassTrapDiff],
		PageFetch:   p.Total[trace.ClassPageFetch],
		LockWait:    p.Total[trace.ClassLockWait],
		BarrierWait: p.Total[trace.ClassBarrierWait],
		LinkWait:    p.Total[trace.ClassLinkWait],
		Recovery:    p.Total[trace.ClassRecovery],
	}
}

// CellFailures aggregates every failed cell of a sweep, in grid order. Run
// returns it together with the records of the cells that did succeed, so
// callers can emit partial results and still exit nonzero with the full list
// of casualties.
type CellFailures struct {
	Errs []error
}

func (cf *CellFailures) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %d cell(s) failed:", len(cf.Errs))
	for _, e := range cf.Errs {
		b.WriteString("\n  ")
		b.WriteString(e.Error())
	}
	return b.String()
}

func (cf *CellFailures) Unwrap() []error { return cf.Errs }

// Run executes the grid and returns one Record per cell, in grid order:
// variants outermost, then applications, processor counts, implementations.
// Cells run concurrently up to g.Parallel on the harness worker pool; the
// records are identical for any worker count. A failing cell — error or
// panic — does not abort the sweep: the surviving records are returned in
// grid order together with a *CellFailures listing every casualty, so
// callers can emit partial results and still fail loudly.
func Run(g Grid) ([]Record, error) {
	g, err := g.normalized()
	if err != nil {
		return nil, err
	}
	par := g.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	baseCfg := harness.Config{Scale: g.Scale, NProcs: g.NProcs[0], Parallel: par, Cost: fabric.DefaultCostModel(), Perf: g.Perf}

	// Progress accounting: every sequential reference and every grid cell is
	// one unit. The callback gets a monotone completion count; wall times are
	// measured here (host clock) only when someone is listening.
	total := len(g.Apps) + len(g.Variants)*len(g.Apps)*len(g.NProcs)*len(g.Impls)
	var done atomic.Int64
	report := func(cell string, start time.Time) {
		g.Progress(int(done.Add(1)), total, cell, time.Since(start))
	}
	startClock := func() (t time.Time) {
		if g.Progress != nil {
			t = time.Now()
		}
		return t
	}

	// Sequential references, once per application: every cell of the same
	// app shares one memoized value regardless of variant, processor count
	// or implementation. A failure here is fatal — every record of that app
	// would be missing its denominator.
	seqTimes := make([]sim.Time, len(g.Apps))
	seqErrs := make([]error, len(g.Apps))
	if err := harness.ForEach(par, len(g.Apps), func(i int) {
		t0 := startClock()
		seqTimes[i], seqErrs[i] = harness.RunSeq(baseCfg, g.Apps[i])
		if g.Progress != nil {
			report(g.Apps[i]+"/seq", t0)
		}
	}); err != nil {
		return nil, fmt.Errorf("sweep: sequential references: %w", err)
	}
	for i, err := range seqErrs {
		if err != nil {
			return nil, fmt.Errorf("sweep: %s sequential: %w", g.Apps[i], err)
		}
	}
	seqByApp := make(map[string]sim.Time, len(g.Apps))
	for i, name := range g.Apps {
		seqByApp[name] = seqTimes[i]
	}

	nApps, nProcs, nImpls := len(g.Apps), len(g.NProcs), len(g.Impls)
	cells := len(g.Variants) * nApps * nProcs * nImpls
	recs := make([]Record, cells)
	cellErrs := make([]error, cells)
	poolErr := harness.ForEach(par, cells, func(k int) {
		ii := k % nImpls
		ni := k / nImpls % nProcs
		ai := k / (nImpls * nProcs) % nApps
		vi := k / (nImpls * nProcs * nApps)
		v, app, np, impl := g.Variants[vi], g.Apps[ai], g.NProcs[ni], g.Impls[ii]
		cfg := harness.Config{
			Scale: g.Scale, NProcs: np, Cost: v.Cost, Contention: v.Contention,
			Faults: v.Faults, Timeout: g.Timeout, Parallel: 1,
			Perf: g.Perf, Variant: v.Name, Topology: v.Topology,
			BarrierFanIn: g.BarrierFanIn, Trace: g.Breakdown,
		}
		t0 := startClock()
		row := harness.RunCell(cfg, app, impl)
		if g.Progress != nil {
			report(fmt.Sprintf("%s/%s/%v/%d", v.Name, app, impl, np), t0)
		}
		if row.Err != nil {
			cellErrs[k] = fmt.Errorf("sweep: %s/%s on %v, %d procs: %w", v.Name, app, impl, np, row.Err)
			return
		}
		var stall *StallBreakdown
		if g.Breakdown && row.Trace != nil {
			// The profile build is host-side analysis, attributed to its own
			// perf phase so breakdown cost is visible in the trajectory.
			ph := g.Perf.StartPhase("analyze")
			meta := trace.Meta{App: app, Impl: impl.String(), Scale: g.Scale.String(), NProcs: np}
			stall = stallOf(trace.BuildProfile(row.Trace, meta))
			ph.End()
		}
		seq := seqByApp[app]
		recs[k] = Record{
			Variant:      v.Name,
			Contention:   v.Contention,
			App:          app,
			Impl:         impl.String(),
			NProcs:       np,
			Seq:          seq,
			Stats:        row.Stats,
			Speedup:      float64(seq) / float64(row.Stats.Time),
			LinkWait:     row.LinkWait,
			Fault:        v.faultName(),
			Retransmits:  row.Faults.Retransmits,
			DupsDropped:  row.Faults.DupsDropped,
			RecoveryWait: row.Faults.RecoveryWait,
			Topo:         v.topoName(),
			Stall:        stall,
		}
	})
	var failed []error
	if poolErr != nil {
		failed = append(failed, poolErr)
	}
	ok := make([]Record, 0, cells)
	for k := range recs {
		if cellErrs[k] != nil {
			failed = append(failed, cellErrs[k])
			continue
		}
		ok = append(ok, recs[k])
	}
	if len(failed) > 0 {
		return ok, &CellFailures{Errs: failed}
	}
	return ok, nil
}

// faultName canonicalizes the variant's fault label: "" for fault-free (so
// the field stays out of fault-free JSON), the preset name or "custom"
// otherwise.
func (v Variant) faultName() string {
	if v.Faults == nil {
		return ""
	}
	if v.Fault == "" || v.Fault == "off" {
		return "custom"
	}
	return v.Fault
}

// topoName canonicalizes the variant's topology label: "" for the flat link
// (so the field stays out of flat-fabric JSON), the canonical spec otherwise.
func (v Variant) topoName() string {
	if v.Topology == nil {
		return ""
	}
	return v.Topology.String()
}
