package sweep

import (
	"errors"
	"testing"

	"ecvslrc/internal/fabric"
)

func variantNames(vs []Variant) []string {
	var out []string
	for _, v := range vs {
		out = append(out, v.Name)
	}
	return out
}

func TestParseVariantSpecCrossProduct(t *testing.T) {
	vs, err := ParseVariantSpec("net=x2,x4 detect=sw,hw")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"paper", "net=x2", "net=x2+detect=hw", "net=x4", "net=x4+detect=hw"}
	got := variantNames(vs)
	if len(got) != len(want) {
		t.Fatalf("variants = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("variants = %v, want %v", got, want)
		}
	}
	base := fabric.DefaultCostModel()
	if vs[0].Cost != base {
		t.Errorf("baseline cost drifted")
	}
	if vs[1].Cost != base.ScaleNetwork(2) {
		t.Errorf("net=x2 cost = %+v", vs[1].Cost)
	}
	if vs[2].Cost != base.ScaleNetwork(2).HardwareWriteDetection() {
		t.Errorf("net=x2+detect=hw cost = %+v", vs[2].Cost)
	}
}

func TestParseVariantSpecDefaultsAndContention(t *testing.T) {
	vs, err := ParseVariantSpec("")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].Name != BaselineName || vs[0].Contention {
		t.Errorf("empty spec = %+v", vs)
	}
	vs, err = ParseVariantSpec("contention=off,on")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 || vs[0].Name != "paper" || vs[1].Name != "contention=on" || !vs[1].Contention {
		t.Errorf("contention spec = %v", variantNames(vs))
	}
	// Bare numbers canonicalize to the x form; duplicates collapse.
	vs, err = ParseVariantSpec("cpu=2,x2,4")
	if err != nil {
		t.Fatal(err)
	}
	if got := variantNames(vs); len(got) != 3 || got[1] != "cpu=x2" || got[2] != "cpu=x4" {
		t.Errorf("cpu spec = %v", got)
	}
}

func TestParseVariantSpecBaselineAlwaysFirst(t *testing.T) {
	// The default value listed after a non-default one places the baseline
	// late in the cross product; it must still lead the variant list.
	vs, err := ParseVariantSpec("net=x4,x1")
	if err != nil {
		t.Fatal(err)
	}
	if got := variantNames(vs); len(got) != 2 || got[0] != BaselineName || got[1] != "net=x4" {
		t.Errorf("variants = %v, want [paper net=x4]", got)
	}
	if vs[0].Cost != fabric.DefaultCostModel() {
		t.Error("leading variant is not the calibrated baseline")
	}
}

// TestParseVariantSpecPlatformAxis drives the platform axis: registered
// model names select their derived cost models as the starting point, the
// knob axes compose on top, and the explicit default collapses into the
// baseline.
func TestParseVariantSpecPlatformAxis(t *testing.T) {
	vs, err := ParseVariantSpec("platform=rdma_100g,grace")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"paper", "platform=rdma_100g", "platform=grace"}
	if got := variantNames(vs); len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("variants = %v, want %v", got, want)
	}
	for _, v := range vs[1:] {
		name := v.Name[len("platform="):]
		cm, err := fabric.PresetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if v.Cost != cm {
			t.Errorf("%s: cost is not the %s preset", v.Name, name)
		}
	}

	// Knobs compose on top of the selected platform, in axis order.
	vs, err = ParseVariantSpec("platform=cluster_gbe net=x2")
	if err != nil {
		t.Fatal(err)
	}
	base, _ := fabric.PresetByName("cluster_gbe")
	if got := variantNames(vs); len(got) != 2 || got[1] != "platform=cluster_gbe+net=x2" {
		t.Fatalf("variants = %v", got)
	}
	if vs[1].Cost != base.ScaleNetwork(2) {
		t.Errorf("platform+knob cost = %+v, want cluster_gbe.ScaleNetwork(2)", vs[1].Cost)
	}

	// The explicit default is the baseline, not a duplicate variant.
	vs, err = ParseVariantSpec("platform=paper")
	if err != nil {
		t.Fatal(err)
	}
	if got := variantNames(vs); len(got) != 1 || got[0] != BaselineName {
		t.Errorf("platform=paper variants = %v, want just the baseline", got)
	}
}

func TestParseVariantSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus=1",       // unknown axis
		"net",           // not axis=values
		"net=x0",        // non-positive scale
		"net=-2",        // negative scale
		"net=abc",       // not a number
		"detect=maybe",  // unknown enum value
		"net=x2 net=x4", // duplicate axis
		"diff=, ,",      // only empty values
		"platform=nope", // unknown platform preset
	} {
		_, err := ParseVariantSpec(spec)
		if err == nil {
			t.Errorf("spec %q accepted", spec)
			continue
		}
		if !errors.Is(err, ErrSpec) {
			t.Errorf("spec %q: error does not wrap ErrSpec: %v", spec, err)
		}
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := Run(Grid{NProcs: []int{0}}); !errors.Is(err, ErrGrid) {
		t.Errorf("nprocs 0: %v", err)
	}
	if _, err := Run(Grid{Variants: []Variant{{Name: ""}}}); !errors.Is(err, ErrGrid) {
		t.Errorf("empty variant name: %v", err)
	}
	if _, err := Run(Grid{Variants: []Variant{Baseline(), Baseline()}}); !errors.Is(err, ErrGrid) {
		t.Errorf("duplicate variants: %v", err)
	}
}
