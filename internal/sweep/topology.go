package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"ecvslrc/internal/fabric"
)

// ParseTopologySpec parses one value of the topo= variant axis. "flat" keeps
// the calibrated flat shared link and returns a nil topology;
// "clos:radix=K[:taper=T][:stages=N]" selects a folded-Clos switch fabric
// (fabric.Topology) with switch radix K, per-level bandwidth taper T
// (default 1 = full bisection) and an optional forced stage count N
// (default derives ceil(log_K nprocs)). Key order is free; duplicate and
// unknown keys are rejected, and the resulting geometry must pass
// fabric.Topology.Validate (radix >= 2, taper in [1, radix], stages in
// [0, 16]). Errors wrap ErrSpec.
func ParseTopologySpec(spec string) (*fabric.Topology, error) {
	if spec == "flat" {
		return nil, nil
	}
	parts := strings.Split(spec, ":")
	if parts[0] != "clos" {
		return nil, fmt.Errorf("sweep: %w: topology %q is neither \"flat\" nor \"clos:radix=K[:taper=T][:stages=N]\"",
			ErrSpec, spec)
	}
	t := &fabric.Topology{Taper: 1}
	seen := make(map[string]bool)
	for _, kv := range parts[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || val == "" {
			return nil, fmt.Errorf("sweep: %w: topology %q: %q is not key=value", ErrSpec, spec, kv)
		}
		if seen[key] {
			return nil, fmt.Errorf("sweep: %w: topology %q: key %q given twice", ErrSpec, spec, key)
		}
		seen[key] = true
		switch key {
		case "radix":
			k, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("sweep: %w: topology %q: radix %q is not an integer", ErrSpec, spec, val)
			}
			t.Radix = k
		case "taper":
			k, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("sweep: %w: topology %q: taper %q is not a number", ErrSpec, spec, val)
			}
			t.Taper = k
		case "stages":
			k, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("sweep: %w: topology %q: stages %q is not an integer", ErrSpec, spec, val)
			}
			t.ForcedStages = k
		default:
			return nil, fmt.Errorf("sweep: %w: topology %q: unknown key %q (known: radix, taper, stages)",
				ErrSpec, spec, key)
		}
	}
	if !seen["radix"] {
		return nil, fmt.Errorf("sweep: %w: topology %q: radix is required", ErrSpec, spec)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("sweep: %w: %v", ErrSpec, err)
	}
	return t, nil
}
