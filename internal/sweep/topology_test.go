package sweep

import (
	"errors"
	"strings"
	"testing"

	"ecvslrc/internal/fabric"
)

func TestParseTopologySpec(t *testing.T) {
	cases := []struct {
		spec string
		want *fabric.Topology
		err  string // substring of the rejection, "" for accepted
	}{
		{spec: "flat", want: nil},
		{spec: "clos:radix=8", want: &fabric.Topology{Radix: 8, Taper: 1}},
		{spec: "clos:radix=16:taper=4", want: &fabric.Topology{Radix: 16, Taper: 4}},
		{spec: "clos:radix=4:taper=1.5:stages=3", want: &fabric.Topology{Radix: 4, Taper: 1.5, ForcedStages: 3}},
		// Key order is free; the canonical form fixes it.
		{spec: "clos:stages=2:radix=2", want: &fabric.Topology{Radix: 2, Taper: 1, ForcedStages: 2}},

		// Degenerate geometries: rejected by fabric.Topology.Validate, wrapped.
		{spec: "clos:radix=1", err: "radix 1 < 2"},
		{spec: "clos:radix=0", err: "radix 0 < 2"},
		{spec: "clos:radix=-8", err: "radix -8 < 2"},
		{spec: "clos:radix=8:taper=0", err: "taper 0 outside"},
		{spec: "clos:radix=8:taper=9", err: "taper 9 outside"},
		{spec: "clos:radix=2:stages=-1", err: "stages -1 outside"},
		{spec: "clos:radix=2:stages=17", err: "stages 17 outside"},

		// Malformed specs.
		{spec: "", err: "neither"},
		{spec: "mesh:radix=4", err: "neither"},
		{spec: "clos", err: "radix is required"},
		{spec: "clos:taper=2", err: "radix is required"},
		{spec: "clos:radix=two", err: "not an integer"},
		{spec: "clos:radix=8:taper=fast", err: "not a number"},
		{spec: "clos:radix=8:stages=1.5", err: "not an integer"},
		{spec: "clos:radix=8:radix=8", err: "given twice"},
		{spec: "clos:radix=8:width=2", err: "unknown key"},
		{spec: "clos:radix=", err: "not key=value"},
		{spec: "clos:", err: "not key=value"},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			topo, err := ParseTopologySpec(tc.spec)
			if tc.err != "" {
				if err == nil {
					t.Fatalf("ParseTopologySpec(%q) accepted, want error containing %q", tc.spec, tc.err)
				}
				if !errors.Is(err, ErrSpec) {
					t.Errorf("rejection does not wrap ErrSpec: %v", err)
				}
				if !strings.Contains(err.Error(), tc.err) {
					t.Errorf("error %v does not contain %q", err, tc.err)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseTopologySpec(%q) = %v, want accept", tc.spec, err)
			}
			if tc.want == nil {
				if topo != nil {
					t.Fatalf("ParseTopologySpec(%q) = %+v, want nil (flat)", tc.spec, topo)
				}
				return
			}
			if topo == nil || *topo != *tc.want {
				t.Fatalf("ParseTopologySpec(%q) = %+v, want %+v", tc.spec, topo, tc.want)
			}
		})
	}
}

// TestTopoVariantAxis pins the topo= axis end to end: canonical naming
// (spelling variations collapse to fabric.Topology.String form), baseline
// elision, resolution into Variant.Topology, and the fault exclusion.
func TestTopoVariantAxis(t *testing.T) {
	vs, err := ParseVariantSpec("topo=flat,clos:taper=1:radix=8,clos:radix=8")
	if err != nil {
		t.Fatal(err)
	}
	// flat is the default -> baseline; the two clos spellings dedup to one.
	if len(vs) != 2 {
		t.Fatalf("got %d variants, want 2 (baseline + one clos): %+v", len(vs), vs)
	}
	if vs[0].Name != BaselineName || vs[0].Topology != nil || vs[0].Topo != "" {
		t.Errorf("baseline variant carries a topology: %+v", vs[0])
	}
	v := vs[1]
	if v.Name != "topo=clos:radix=8" {
		t.Errorf("variant name = %q, want %q", v.Name, "topo=clos:radix=8")
	}
	if v.Topo != "clos:radix=8" || v.Topology == nil || v.Topology.Radix != 8 || v.Topology.Taper != 1 {
		t.Errorf("variant topology not resolved: Topo=%q Topology=%+v", v.Topo, v.Topology)
	}

	if _, err := ParseVariantSpec("topo=clos:radix=4 fault=drop1e-3"); err == nil {
		t.Fatal("fault+topo cross product accepted, want ErrSpec")
	} else if !errors.Is(err, ErrSpec) {
		t.Fatalf("fault+topo rejection does not wrap ErrSpec: %v", err)
	}
	// The cross product is only rejected where both are non-default: a spec
	// listing "off"/"flat" alongside real values keeps its legal combinations.
	if _, err := ParseVariantSpec("topo=flat fault=drop1e-3"); err != nil {
		t.Fatalf("flat+fault rejected: %v", err)
	}
}
