package sweep

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/sim"
)

// TestParseVariantSpecFaultAxis pins the fault axis: presets expand like any
// other axis, the default is elided from names, and the resulting variants
// carry the resolved plan.
func TestParseVariantSpecFaultAxis(t *testing.T) {
	vs, err := ParseVariantSpec("fault=off,drop1e-2")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("got %d variants, want 2: %+v", len(vs), vs)
	}
	if vs[0].Name != BaselineName || vs[0].Faults != nil {
		t.Errorf("baseline = %+v, want fault-free %q first", vs[0], BaselineName)
	}
	v := vs[1]
	if v.Name != "fault=drop1e-2" || v.Fault != "drop1e-2" || v.Faults == nil {
		t.Errorf("fault variant = %+v, want name fault=drop1e-2 with a plan", v)
	}
	want, err := fabric.FaultPreset("drop1e-2")
	if err != nil {
		t.Fatal(err)
	}
	if *v.Faults != *want {
		t.Errorf("plan = %+v, want the drop1e-2 preset %+v", *v.Faults, *want)
	}
	if _, err := ParseVariantSpec("fault=nosuch"); !errors.Is(err, ErrSpec) {
		t.Errorf("unknown preset error = %v, want ErrSpec", err)
	}
}

// TestSweepFaultVariant runs a small grid with a lossy variant: the faulted
// cells must complete, record recovery counters, and cost more virtual time
// than their fault-free counterparts; the fault-free records must stay
// zero-countered with an empty Fault field.
func TestSweepFaultVariant(t *testing.T) {
	vs, err := ParseVariantSpec("fault=drop1e-2")
	if err != nil {
		t.Fatal(err)
	}
	impl, err := core.ParseImpl("LRC-diff")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Run(Grid{
		Scale:    apps.Test,
		Apps:     []string{"SOR"},
		Impls:    []core.Impl{impl},
		NProcs:   []int{4},
		Variants: vs,
		Timeout:  3600 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	base, faulted := recs[0], recs[1]
	if base.Fault != "" || base.Retransmits != 0 || base.RecoveryWait != 0 {
		t.Errorf("fault-free record carries fault data: %+v", base)
	}
	if faulted.Fault != "drop1e-2" {
		t.Errorf("faulted record Fault = %q, want drop1e-2", faulted.Fault)
	}
	if faulted.Retransmits == 0 {
		t.Error("1% loss produced no retransmissions")
	}
	if faulted.Stats.Time <= base.Stats.Time {
		t.Errorf("recovery cost did not land in virtual time: %v <= %v",
			faulted.Stats.Time, base.Stats.Time)
	}

	// The degradation section must surface the faulted cells.
	var buf bytes.Buffer
	if err := WriteBaselineReport(&buf, recs, BaselineName); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fault degradation") {
		t.Error("baseline report has no fault-degradation section")
	}
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "drop1e-2") {
		t.Error("CSV rows do not name the fault plan")
	}
}

// TestSweepPartialFailure gives the grid one unrecoverable variant alongside
// the baseline: Run must return every baseline record plus a *CellFailures
// naming each dead cell, instead of aborting on the first.
func TestSweepPartialFailure(t *testing.T) {
	impl, err := core.ParseImpl("LRC-diff")
	if err != nil {
		t.Fatal(err)
	}
	doomed := &fabric.FaultPlan{Seed: 2, Drop: 0.9, MaxRetries: 1, RTO: 200 * sim.Microsecond}
	recs, err := Run(Grid{
		Scale:  apps.Test,
		Apps:   []string{"SOR", "IS"},
		Impls:  []core.Impl{impl},
		NProcs: []int{2},
		Variants: []Variant{
			Baseline(),
			{Name: "doomed", Cost: fabric.DefaultCostModel(), Faults: doomed},
		},
	})
	var cf *CellFailures
	if !errors.As(err, &cf) {
		t.Fatalf("error = %v, want *CellFailures", err)
	}
	if len(cf.Errs) != 2 {
		t.Errorf("got %d failed cells, want 2: %v", len(cf.Errs), cf)
	}
	if !strings.Contains(cf.Error(), "reliable delivery gave up") {
		t.Errorf("failure list does not carry the cell errors: %.300s", cf)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d surviving records, want the 2 baseline cells", len(recs))
	}
	for _, r := range recs {
		if r.Variant != BaselineName {
			t.Errorf("surviving record from variant %q, want only %q", r.Variant, BaselineName)
		}
	}
}
