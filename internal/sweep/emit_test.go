package sweep

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ecvslrc/internal/core"
	"ecvslrc/internal/sim"
)

var update = flag.Bool("update", false, "rewrite the emitter golden files")

// sampleRecords is a fixed two-variant, two-app, two-impl sweep crafted so
// the net=x4 variant flips the Water verdict from LRC to EC.
func sampleRecords() []Record {
	mk := func(variant string, cont bool, app, impl string, np int, seq, tm sim.Time, msgs, bytes int64) Record {
		var lw sim.Time
		if cont {
			lw = tm / 10 // contention cells report their shared-link queueing
		}
		return Record{
			Variant: variant, Contention: cont, App: app, Impl: impl, NProcs: np,
			Seq: seq, Speedup: float64(seq) / float64(tm), LinkWait: lw,
			Stats: core.Stats{
				Time: tm, Msgs: msgs, Bytes: bytes,
				Faults: 7, AccessMisses: 3, LockAcquires: 100, ReadLockAcquires: 10,
				RemoteAcquires: 40, Barriers: 6, DiffsCreated: 12, TwinsMade: 5, StampRunsSent: 9,
			},
		}
	}
	const s = sim.Second
	return []Record{
		mk("paper", false, "SOR", "EC-time", 8, 4*s, 2*s, 1200, 3_000_000),
		mk("paper", false, "SOR", "LRC-ci", 8, 4*s, 1*s, 800, 2_000_000),
		mk("paper", false, "Water", "EC-time", 8, 5*s, 2*s+s/2, 3000, 9_000_000),
		mk("paper", false, "Water", "LRC-ci", 8, 5*s, 2*s, 2500, 8_000_000),
		mk("net=x4", true, "SOR", "EC-time", 8, 4*s, 1*s, 1200, 3_000_000),
		mk("net=x4", true, "SOR", "LRC-ci", 8, 4*s, s/2, 800, 2_000_000),
		mk("net=x4", true, "Water", "EC-time", 8, 5*s, 1*s, 3000, 9_000_000),
		mk("net=x4", true, "Water", "LRC-ci", 8, 5*s, s+s/4, 2500, 8_000_000),
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with `go test ./internal/sweep -run TestEmit -update`)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestEmitCSVGolden(t *testing.T) {
	var b bytes.Buffer
	if err := WriteCSV(&b, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sample.csv", b.Bytes())
}

func TestEmitJSONLGolden(t *testing.T) {
	var b bytes.Buffer
	if err := WriteJSONL(&b, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sample.jsonl", b.Bytes())
}

func TestEmitMarkdownGolden(t *testing.T) {
	var b bytes.Buffer
	if err := WriteMarkdown(&b, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sample.md", b.Bytes())
}

func TestEmitBaselineReportGolden(t *testing.T) {
	var b bytes.Buffer
	if err := WriteBaselineReport(&b, sampleRecords(), BaselineName); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sample_report.md", b.Bytes())
}

func TestBaselineReportWithoutBaseline(t *testing.T) {
	recs := sampleRecords()[4:] // only the net=x4 cells
	var b bytes.Buffer
	if err := WriteBaselineReport(&b, recs, BaselineName); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b.Bytes(), []byte("nothing to compare")) {
		t.Errorf("report:\n%s", b.String())
	}
}
