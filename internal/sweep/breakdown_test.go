package sweep

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/sim"
	"ecvslrc/internal/trace"
)

func breakdownGrid(parallel int) Grid {
	return Grid{
		Scale:     apps.Test,
		Apps:      []string{"SOR", "IS"},
		NProcs:    []int{4},
		Parallel:  parallel,
		Breakdown: true,
	}
}

// TestBreakdownObservationOnly pins the -breakdown contract: every other
// record field is identical with the stall breakdown on or off, every
// breakdown record carries one, and its classes sum to the cells' total
// processor time (the profiler's conservation invariant, per cell).
func TestBreakdownObservationOnly(t *testing.T) {
	with, err := Run(breakdownGrid(1))
	if err != nil {
		t.Fatal(err)
	}
	g := breakdownGrid(1)
	g.Breakdown = false
	without, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(with) != len(without) {
		t.Fatalf("%d records with breakdown, %d without", len(with), len(without))
	}
	for i := range with {
		r := with[i]
		if r.Stall == nil {
			t.Fatalf("record %d (%s/%s) has no stall breakdown", i, r.App, r.Impl)
		}
		sum := r.Stall.Compute + r.Stall.TrapDiff + r.Stall.PageFetch +
			r.Stall.LockWait + r.Stall.BarrierWait + r.Stall.LinkWait + r.Stall.Recovery
		if sum <= 0 {
			t.Errorf("record %d (%s/%s): stall classes sum to %v", i, r.App, r.Impl, sum)
		}
		r.Stall = nil
		if !reflect.DeepEqual(r, without[i]) {
			t.Errorf("record %d differs beyond the breakdown:\nwith:    %+v\nwithout: %+v", i, r, without[i])
		}
	}
}

// TestBreakdownDeterministicUnderParallel requires bit-identical breakdowns
// (and CSV bytes) for any worker count — profiling rides on the same
// determinism contract as the records themselves.
func TestBreakdownDeterministicUnderParallel(t *testing.T) {
	serial, err := Run(breakdownGrid(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(breakdownGrid(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("breakdown records differ between -parallel 1 and 4")
	}
	var a, b bytes.Buffer
	if err := WriteCSV(&a, serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&b, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("breakdown CSV differs between -parallel 1 and 4")
	}
	if !strings.Contains(strings.SplitN(a.String(), "\n", 2)[0], "stall_compute_sec") {
		t.Errorf("breakdown CSV header lacks stall columns: %s", strings.SplitN(a.String(), "\n", 2)[0])
	}
}

// TestBreakdownRejectsUntraceableProcs: the tracer addresses processors in
// one byte, so a breakdown sweep past trace.MaxProcs must fail fast as a
// grid-validation error, before any cell runs.
func TestBreakdownRejectsUntraceableProcs(t *testing.T) {
	_, err := Run(Grid{
		Scale:     apps.Test,
		Apps:      []string{"SOR"},
		NProcs:    []int{trace.MaxProcs + 1},
		Breakdown: true,
	})
	if !errors.Is(err, ErrGrid) {
		t.Errorf("err = %v, want ErrGrid wrap", err)
	}
}

// TestStallCSVColumns pins the column layout: no stall columns without a
// breakdown (the golden sample.csv covers the exact bytes), seven appended
// zero-filled columns for records missing one in a mixed set.
func TestStallCSVColumns(t *testing.T) {
	recs := sampleRecords()
	recs[0].Stall = &StallBreakdown{Compute: sim.Second, BarrierWait: sim.Second / 2}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	wantCols := len(csvHeader) + len(stallHeader)
	for i, line := range lines {
		if got := len(strings.Split(line, ",")); got != wantCols {
			t.Errorf("line %d has %d columns, want %d", i, got, wantCols)
		}
	}
	if !strings.HasSuffix(lines[1], "1.000000,0.000000,0.000000,0.000000,0.500000,0.000000,0.000000") {
		t.Errorf("breakdown row = %s", lines[1])
	}
	if !strings.HasSuffix(lines[2], "0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000") {
		t.Errorf("zero-filled row = %s", lines[2])
	}
}
