package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// csvHeader names the flat CSV columns, one per Record field with the full
// core.Stats expanded.
var csvHeader = []string{
	"variant", "contention", "app", "impl", "nprocs",
	"seq_sec", "time_sec", "speedup",
	"msgs", "bytes", "faults", "access_misses",
	"lock_acquires", "read_lock_acquires", "remote_acquires", "barriers",
	"diffs_created", "twins_made", "stamp_runs_sent", "link_wait_sec",
	"fault", "retransmits", "dups_dropped", "recovery_wait_sec",
}

// stallHeader names the stall-breakdown columns, appended to csvHeader only
// when the sweep ran with Grid.Breakdown — non-breakdown CSV output stays
// byte-identical to sweeps that predate the profiler.
var stallHeader = []string{
	"stall_compute_sec", "stall_trap_diff_sec", "stall_page_fetch_sec",
	"stall_lock_wait_sec", "stall_barrier_wait_sec", "stall_link_wait_sec",
	"stall_recovery_sec",
}

// WriteCSV emits one flat row per record, in record order. When any record
// carries a stall breakdown, the stall columns are appended (zeros for
// records without one).
func WriteCSV(w io.Writer, recs []Record) error {
	withStall := false
	for _, r := range recs {
		if r.Stall != nil {
			withStall = true
			break
		}
	}
	cw := csv.NewWriter(w)
	header := csvHeader
	if withStall {
		header = append(append([]string(nil), csvHeader...), stallHeader...)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("sweep: csv: %w", err)
	}
	for _, r := range recs {
		row := []string{
			r.Variant,
			strconv.FormatBool(r.Contention),
			r.App,
			r.Impl,
			strconv.Itoa(r.NProcs),
			fmt.Sprintf("%.6f", r.Seq.Seconds()),
			fmt.Sprintf("%.6f", r.Stats.Time.Seconds()),
			fmt.Sprintf("%.3f", r.Speedup),
			strconv.FormatInt(r.Stats.Msgs, 10),
			strconv.FormatInt(r.Stats.Bytes, 10),
			strconv.FormatInt(r.Stats.Faults, 10),
			strconv.FormatInt(r.Stats.AccessMisses, 10),
			strconv.FormatInt(r.Stats.LockAcquires, 10),
			strconv.FormatInt(r.Stats.ReadLockAcquires, 10),
			strconv.FormatInt(r.Stats.RemoteAcquires, 10),
			strconv.FormatInt(r.Stats.Barriers, 10),
			strconv.FormatInt(r.Stats.DiffsCreated, 10),
			strconv.FormatInt(r.Stats.TwinsMade, 10),
			strconv.FormatInt(r.Stats.StampRunsSent, 10),
			fmt.Sprintf("%.6f", r.LinkWait.Seconds()),
			faultLabel(r),
			strconv.FormatInt(r.Retransmits, 10),
			strconv.FormatInt(r.DupsDropped, 10),
			fmt.Sprintf("%.6f", r.RecoveryWait.Seconds()),
		}
		if withStall {
			s := r.Stall
			if s == nil {
				s = &StallBreakdown{}
			}
			row = append(row,
				fmt.Sprintf("%.6f", s.Compute.Seconds()),
				fmt.Sprintf("%.6f", s.TrapDiff.Seconds()),
				fmt.Sprintf("%.6f", s.PageFetch.Seconds()),
				fmt.Sprintf("%.6f", s.LockWait.Seconds()),
				fmt.Sprintf("%.6f", s.BarrierWait.Seconds()),
				fmt.Sprintf("%.6f", s.LinkWait.Seconds()),
				fmt.Sprintf("%.6f", s.Recovery.Seconds()),
			)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("sweep: csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("sweep: csv: %w", err)
	}
	return nil
}

// WriteJSONL emits one JSON object per line per record, in record order.
// Times are nanoseconds of simulated time.
func WriteJSONL(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("sweep: jsonl: %w", err)
		}
	}
	return nil
}

// WriteMarkdown renders the sweep as one table per variant, in record order.
func WriteMarkdown(w io.Writer, recs []Record) error {
	bw := &errWriter{w: w}
	bw.printf("# Sensitivity sweep\n")
	current := ""
	for _, r := range recs {
		if r.Variant != current {
			current = r.Variant
			contention := "off"
			if r.Contention {
				contention = "on"
			}
			bw.printf("\n## Variant `%s` (contention %s)\n\n", r.Variant, contention)
			bw.printf("| App | Impl | Procs | Time (s) | Speedup | Msgs | MB |\n")
			bw.printf("|---|---|---:|---:|---:|---:|---:|\n")
		}
		bw.printf("| %s | %s | %d | %.3f | %.2f | %d | %.2f |\n",
			r.App, r.Impl, r.NProcs, r.Stats.Time.Seconds(), r.Speedup, r.Stats.Msgs, r.Stats.MB())
	}
	return bw.err
}

// WriteBaselineReport renders the sensitivity verdict: per variant, each
// cell's execution time against the same cell under the baseline variant,
// plus the EC-vs-LRC winner flips the variant causes — the question the
// paper's Section 8 asks about faster platforms. Cells with no baseline
// counterpart are skipped.
func WriteBaselineReport(w io.Writer, recs []Record, baseline string) error {
	type cellKey struct {
		app    string
		impl   string
		nprocs int
	}
	base := make(map[cellKey]Record)
	for _, r := range recs {
		if r.Variant == baseline {
			base[cellKey{r.App, r.Impl, r.NProcs}] = r
		}
	}
	bw := &errWriter{w: w}
	bw.printf("# Sensitivity vs `%s`\n", baseline)
	if len(base) == 0 {
		bw.printf("\nNo `%s` cells in this sweep; nothing to compare.\n", baseline)
		return bw.err
	}
	current := ""
	for _, r := range recs {
		if r.Variant == baseline {
			continue
		}
		b, ok := base[cellKey{r.App, r.Impl, r.NProcs}]
		if !ok {
			continue
		}
		if r.Variant != current {
			current = r.Variant
			bw.printf("\n## `%s` vs `%s`\n\n", r.Variant, baseline)
			bw.printf("| App | Impl | Procs | %s (s) | %s (s) | Δ time | Speedup %s → %s |\n",
				baseline, r.Variant, baseline, r.Variant)
			bw.printf("|---|---|---:|---:|---:|---:|---:|\n")
		}
		delta := 100 * (float64(r.Stats.Time) - float64(b.Stats.Time)) / float64(b.Stats.Time)
		bw.printf("| %s | %s | %d | %.3f | %.3f | %+.1f%% | %.2f → %.2f |\n",
			r.App, r.Impl, r.NProcs, b.Stats.Time.Seconds(), r.Stats.Time.Seconds(),
			delta, b.Speedup, r.Speedup)
	}
	writeFaultDegradation(bw, recs, baseline)
	writeVerdictFlips(bw, recs, baseline)
	return bw.err
}

// faultLabel canonicalizes a record's fault column for reports: "off" for
// fault-free records (whose Fault field is empty so it stays out of JSON).
func faultLabel(r Record) string {
	if r.Fault == "" {
		return "off"
	}
	return r.Fault
}

// writeFaultDegradation renders the lossy-network degradation table: every
// faulted cell against its baseline counterpart, with the recovery traffic
// and the virtual time the reliable sublayer spent waiting. Silent when the
// sweep has no faulted records.
func writeFaultDegradation(bw *errWriter, recs []Record, baseline string) {
	type cellKey struct {
		app    string
		impl   string
		nprocs int
	}
	base := make(map[cellKey]Record)
	for _, r := range recs {
		if r.Variant == baseline {
			base[cellKey{r.App, r.Impl, r.NProcs}] = r
		}
	}
	wrote := false
	for _, r := range recs {
		if r.Fault == "" {
			continue
		}
		b, ok := base[cellKey{r.App, r.Impl, r.NProcs}]
		if !ok {
			continue
		}
		if !wrote {
			wrote = true
			bw.printf("\n## Fault degradation vs `%s`\n\n", baseline)
			bw.printf("| Variant | App | Impl | Procs | Δ time | Retransmits | Dups dropped | Recovery wait (s) |\n")
			bw.printf("|---|---|---|---:|---:|---:|---:|---:|\n")
		}
		delta := 100 * (float64(r.Stats.Time) - float64(b.Stats.Time)) / float64(b.Stats.Time)
		bw.printf("| %s | %s | %s | %d | %+.1f%% | %d | %d | %.4f |\n",
			r.Variant, r.App, r.Impl, r.NProcs, delta, r.Retransmits, r.DupsDropped, r.RecoveryWait.Seconds())
	}
}

// writeVerdictFlips reports where a variant changes the paper's headline
// verdict: for each (app, nprocs), the better model (best EC vs best LRC
// time) under the baseline against the better model under each variant.
func writeVerdictFlips(bw *errWriter, recs []Record, baseline string) {
	type vKey struct {
		variant string
		app     string
		nprocs  int
	}
	bestEC := make(map[vKey]Record)
	bestLRC := make(map[vKey]Record)
	var variantOrder []string
	seenVariant := make(map[string]bool)
	type appKey struct {
		app    string
		nprocs int
	}
	var cellOrder []appKey
	seenCell := make(map[appKey]bool)
	for _, r := range recs {
		if !seenVariant[r.Variant] {
			seenVariant[r.Variant] = true
			variantOrder = append(variantOrder, r.Variant)
		}
		ck := appKey{r.App, r.NProcs}
		if !seenCell[ck] {
			seenCell[ck] = true
			cellOrder = append(cellOrder, ck)
		}
		k := vKey{r.Variant, r.App, r.NProcs}
		table := bestLRC
		if len(r.Impl) >= 2 && r.Impl[:2] == "EC" {
			table = bestEC
		}
		if cur, ok := table[k]; !ok || r.Stats.Time < cur.Stats.Time {
			table[k] = r
		}
	}
	winner := func(variant, app string, nprocs int) (string, bool) {
		k := vKey{variant, app, nprocs}
		ec, okEC := bestEC[k]
		lrc, okLRC := bestLRC[k]
		if !okEC || !okLRC {
			return "", false
		}
		if ec.Stats.Time < lrc.Stats.Time {
			return "EC", true
		}
		return "LRC", true
	}
	var flips []string
	for _, v := range variantOrder {
		if v == baseline {
			continue
		}
		for _, ck := range cellOrder {
			b, okB := winner(baseline, ck.app, ck.nprocs)
			n, okN := winner(v, ck.app, ck.nprocs)
			if okB && okN && b != n {
				flips = append(flips, fmt.Sprintf("| %s | %s | %d | %s | %s |", v, ck.app, ck.nprocs, b, n))
			}
		}
	}
	bw.printf("\n## Verdict flips\n\n")
	if len(flips) == 0 {
		bw.printf("No variant changes the best-EC vs best-LRC winner for any cell.\n")
		return
	}
	bw.printf("| Variant | App | Procs | %s winner | Variant winner |\n", baseline)
	bw.printf("|---|---|---:|---|---|\n")
	for _, f := range flips {
		bw.printf("%s\n", f)
	}
}

// errWriter latches the first write error so format chains stay readable.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
