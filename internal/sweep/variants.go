package sweep

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"ecvslrc/internal/fabric"

	// The platform axis resolves values through the fabric preset table; the
	// blank import guarantees the model library (decstation_atm, cluster_gbe,
	// rdma_100g, grace, ...) is registered whenever the sweep engine is
	// linked, so "platform=rdma_100g" parses the same in every binary.
	_ "ecvslrc/internal/platform/models"
)

// ErrSpec is wrapped by every variant-spec parse failure.
var ErrSpec = errors.New("invalid variant spec")

// axis is one sensitivity dimension of the cost model. Axes apply in a fixed
// order, so a variant's cost model (and canonical name) does not depend on
// the order the user wrote the spec in.
type axis struct {
	name    string
	def     string // default value, elided from variant names
	values  []string
	apply   func(cm fabric.CostModel, val float64) fabric.CostModel
	numeric bool                          // values are scale factors like "x2" (or bare "2")
	canon   func(string) (string, error) // custom validation/canonicalization (topo specs)
}

func axes() []axis {
	return []axis{
		// The platform axis is first: it selects the starting cost model (any
		// fabric preset — registered platform models included) that the knob
		// axes below then transform. buildVariant resolves it directly.
		{name: "platform", def: BaselineName, apply: nil, canon: canonPlatformSpec},
		{name: "net", def: "x1", numeric: true,
			apply: func(cm fabric.CostModel, k float64) fabric.CostModel { return cm.ScaleNetwork(k) }},
		{name: "cpu", def: "x1", numeric: true,
			apply: func(cm fabric.CostModel, k float64) fabric.CostModel { return cm.ScaleCPU(k) }},
		{name: "detect", def: "sw", values: []string{"sw", "hw"},
			apply: func(cm fabric.CostModel, _ float64) fabric.CostModel { return cm.HardwareWriteDetection() }},
		{name: "diff", def: "sw", values: []string{"sw", "free"},
			apply: func(cm fabric.CostModel, _ float64) fabric.CostModel { return cm.ZeroCostDiff() }},
		{name: "contention", def: "off", values: []string{"off", "on"}, apply: nil},
		// Fault plans are not cost-model transforms; buildVariant resolves
		// the preset into Variant.Faults directly.
		{name: "fault", def: "off", values: fabric.FaultPresetNames(), apply: nil},
		// Switch topologies are not cost-model transforms either;
		// buildVariant resolves the spec into Variant.Topology directly.
		{name: "topo", def: "flat", apply: nil, canon: canonTopologySpec},
	}
}

// canonPlatformSpec validates a platform= axis value against the fabric
// preset table (which names the valid set on failure). Preset names are
// already canonical.
func canonPlatformSpec(v string) (string, error) {
	if _, err := fabric.PresetByName(v); err != nil {
		return "", fmt.Errorf("sweep: %w: axis \"platform\": %v", ErrSpec, err)
	}
	return v, nil
}

// canonTopologySpec validates a topo= axis value and returns the canonical
// spelling rendered by fabric.Topology.String (defaults elided, fixed key
// order), so "clos:taper=1:radix=8" and "clos:radix=8" name the same variant.
func canonTopologySpec(v string) (string, error) {
	t, err := ParseTopologySpec(v)
	if err != nil {
		return "", err
	}
	if t == nil {
		return "flat", nil
	}
	return t.String(), nil
}

// ParseVariantSpec expands a sensitivity spec into the cross product of its
// axes, e.g. "net=x2,x4 detect=sw,hw" yields four variants. Syntax: space-
// separated axes, each "name=v1,v2,...". Axes:
//
//	platform=NAME cost-model starting point: any fabric preset, including
//	      the registered platform models (decstation_atm, cluster_gbe,
//	      rdma_100g, grace — see internal/platform). The knob axes below
//	      apply on top, so "platform=rdma_100g net=x2" is the RDMA platform
//	      with its messaging path doubled. Default: paper.
//	net=xK        messaging path K times faster (ScaleNetwork)
//	cpu=xK        memory-management software K times faster (ScaleCPU)
//	detect=sw|hw  software write trapping vs free hardware dirty bits
//	diff=sw|free  software write collection vs a free hardware diff engine
//	contention=off|on  shared-link occupancy modeling in the fabric
//	fault=off|drop1e-3|drop1e-2|chaos  seeded fault-plan preset injected
//	      into the fabric (fabric.FaultPreset); recovery runs on the
//	      reliable sublayer and its cost lands in the cell's virtual time
//	topo=flat|clos:radix=K[:taper=T][:stages=N]  interconnect model: the
//	      calibrated flat link or a folded-Clos switch fabric
//	      (ParseTopologySpec); mutually exclusive with fault presets
//
// Unspecified axes stay at their defaults (x1, sw, off). The all-default
// combination is named "paper"; other variants are named by their non-default
// settings, e.g. "net=x2+detect=hw". The baseline always comes first:
// prepended when the spec does not produce it, moved to the front when the
// cross product yields it elsewhere — so reports and Sweep callers can read
// the leading records as their comparison point. An empty spec yields just
// the baseline. Errors wrap ErrSpec.
func ParseVariantSpec(spec string) ([]Variant, error) {
	defs := axes()
	chosen := make([][]string, len(defs))
	for i, ax := range defs {
		chosen[i] = []string{ax.def}
	}
	byName := make(map[string]int, len(defs))
	for i, ax := range defs {
		byName[ax.name] = i
	}
	seen := make(map[string]bool)
	for _, field := range strings.Fields(spec) {
		name, vals, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("sweep: %w: %q is not axis=v1,v2,...", ErrSpec, field)
		}
		i, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("sweep: %w: unknown axis %q (known: %s)", ErrSpec, name, axisNames(defs))
		}
		if seen[name] {
			return nil, fmt.Errorf("sweep: %w: axis %q specified twice", ErrSpec, name)
		}
		seen[name] = true
		var list []string
		dup := make(map[string]bool)
		for _, v := range strings.Split(vals, ",") {
			v = strings.TrimSpace(v)
			if v == "" {
				continue
			}
			canon, err := defs[i].canonical(v)
			if err != nil {
				return nil, err
			}
			if dup[canon] {
				continue
			}
			dup[canon] = true
			list = append(list, canon)
		}
		if len(list) == 0 {
			return nil, fmt.Errorf("sweep: %w: axis %q lists no values", ErrSpec, name)
		}
		chosen[i] = list
	}

	var out []Variant
	counts := make([]int, len(defs))
	for {
		v := buildVariant(defs, chosen, counts)
		if v.Faults != nil && v.Topology != nil {
			// The reliable sublayer's retransmission timing is calibrated
			// against the flat link (fabric.EnableTopology rejects the
			// combination), so refuse the cross product up front instead of
			// failing cell by cell.
			return nil, fmt.Errorf("sweep: %w: fault=%s cannot combine with topo=%s; sweep them separately",
				ErrSpec, v.Fault, v.Topo)
		}
		out = append(out, v)
		// Odometer increment over the per-axis value lists.
		i := len(defs) - 1
		for ; i >= 0; i-- {
			counts[i]++
			if counts[i] < len(chosen[i]) {
				break
			}
			counts[i] = 0
		}
		if i < 0 {
			break
		}
	}
	for i, v := range out {
		if v.Name == BaselineName {
			// The baseline leads regardless of where the cross product put
			// it (e.g. "net=x4,x1"): reports and callers read the first
			// records as the comparison point.
			copy(out[1:i+1], out[:i])
			out[0] = v
			return out, nil
		}
	}
	return append([]Variant{Baseline()}, out...), nil
}

// canonical validates one axis value and returns its canonical spelling
// ("2" becomes "x2"; enumerated values must match exactly).
func (ax axis) canonical(v string) (string, error) {
	if ax.canon != nil {
		return ax.canon(v)
	}
	if ax.numeric {
		k, err := ax.factor(v)
		if err != nil {
			return "", err
		}
		return "x" + strconv.FormatFloat(k, 'g', -1, 64), nil
	}
	for _, known := range ax.values {
		if v == known {
			return v, nil
		}
	}
	return "", fmt.Errorf("sweep: %w: axis %q: value %q (want one of %s)",
		ErrSpec, ax.name, v, strings.Join(ax.values, "|"))
}

// factor parses a scale value like "x2", "x2.5" or bare "4".
func (ax axis) factor(v string) (float64, error) {
	s := strings.TrimPrefix(v, "x")
	k, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("sweep: %w: axis %q: value %q: %v", ErrSpec, ax.name, v, err)
	}
	if k <= 0 {
		return 0, fmt.Errorf("sweep: %w: axis %q: scale %q must be > 0", ErrSpec, ax.name, v)
	}
	return k, nil
}

// buildVariant assembles the variant selected by counts: the cost model with
// every non-default axis applied in axis order, named by those settings.
func buildVariant(defs []axis, chosen [][]string, counts []int) Variant {
	v := Variant{Cost: fabric.DefaultCostModel()}
	var parts []string
	for i, ax := range defs {
		val := chosen[i][counts[i]]
		if val == ax.def {
			continue
		}
		parts = append(parts, ax.name+"="+val)
		if ax.name == "platform" {
			v.Cost, _ = fabric.PresetByName(val) // val validated by canonical
			continue
		}
		if ax.name == "contention" {
			v.Contention = true
			continue
		}
		if ax.name == "fault" {
			v.Fault = val
			v.Faults, _ = fabric.FaultPreset(val) // val validated by canonical
			continue
		}
		if ax.name == "topo" {
			v.Topo = val
			v.Topology, _ = ParseTopologySpec(val) // val validated by canonical
			continue
		}
		var k float64
		if ax.numeric {
			k, _ = ax.factor(val) // already validated by canonical
		}
		v.Cost = ax.apply(v.Cost, k)
	}
	if len(parts) == 0 {
		v.Name = BaselineName
	} else {
		v.Name = strings.Join(parts, "+")
	}
	return v
}

func axisNames(defs []axis) string {
	var names []string
	for _, ax := range defs {
		names = append(names, ax.name)
	}
	return strings.Join(names, ", ")
}
