package sweep

import (
	"errors"
	"testing"
)

// FuzzParseVariantSpec asserts the spec parser's contract on arbitrary
// input: it never panics, every rejection wraps ErrSpec, and every accepted
// spec yields a well-formed variant list — baseline first, unique names,
// validated fault plans.
func FuzzParseVariantSpec(f *testing.F) {
	f.Add("")
	f.Add("net=x2,x4 detect=sw,hw")
	f.Add("cpu=3 diff=free contention=on")
	f.Add("fault=off,drop1e-3,drop1e-2,chaos")
	f.Add("net=x0")
	f.Add("fault=nosuch")
	f.Add("net=x2 net=x4")
	f.Fuzz(func(t *testing.T, spec string) {
		vs, err := ParseVariantSpec(spec)
		if err != nil {
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("rejection does not wrap ErrSpec: %v", err)
			}
			return
		}
		if len(vs) == 0 || vs[0].Name != BaselineName {
			t.Fatalf("accepted spec %q does not lead with the baseline: %+v", spec, vs)
		}
		seen := make(map[string]bool)
		for _, v := range vs {
			if v.Name == "" {
				t.Fatalf("accepted spec %q yields an unnamed variant", spec)
			}
			if seen[v.Name] {
				t.Fatalf("accepted spec %q yields duplicate variant %q", spec, v.Name)
			}
			seen[v.Name] = true
			if v.Faults != nil {
				if verr := v.Faults.Validate(); verr != nil {
					t.Fatalf("accepted spec %q yields invalid fault plan: %v", spec, verr)
				}
			}
		}
	})
}
