package sweep

import (
	"errors"
	"testing"
)

// FuzzParseVariantSpec asserts the spec parser's contract on arbitrary
// input: it never panics, every rejection wraps ErrSpec, and every accepted
// spec yields a well-formed variant list — baseline first, unique names,
// validated fault plans.
func FuzzParseVariantSpec(f *testing.F) {
	f.Add("")
	f.Add("net=x2,x4 detect=sw,hw")
	f.Add("cpu=3 diff=free contention=on")
	f.Add("fault=off,drop1e-3,drop1e-2,chaos")
	f.Add("net=x0")
	f.Add("fault=nosuch")
	f.Add("net=x2 net=x4")
	f.Add("topo=flat,clos:radix=4 net=x2")
	f.Add("topo=clos:radix=16:taper=4:stages=2")
	f.Add("topo=clos:radix=4 fault=drop1e-3")
	f.Fuzz(func(t *testing.T, spec string) {
		vs, err := ParseVariantSpec(spec)
		if err != nil {
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("rejection does not wrap ErrSpec: %v", err)
			}
			return
		}
		if len(vs) == 0 || vs[0].Name != BaselineName {
			t.Fatalf("accepted spec %q does not lead with the baseline: %+v", spec, vs)
		}
		seen := make(map[string]bool)
		for _, v := range vs {
			if v.Name == "" {
				t.Fatalf("accepted spec %q yields an unnamed variant", spec)
			}
			if seen[v.Name] {
				t.Fatalf("accepted spec %q yields duplicate variant %q", spec, v.Name)
			}
			seen[v.Name] = true
			if v.Faults != nil {
				if verr := v.Faults.Validate(); verr != nil {
					t.Fatalf("accepted spec %q yields invalid fault plan: %v", spec, verr)
				}
			}
			if v.Topology != nil {
				if verr := v.Topology.Validate(); verr != nil {
					t.Fatalf("accepted spec %q yields invalid topology: %v", spec, verr)
				}
				if v.Faults != nil {
					t.Fatalf("accepted spec %q combines a topology with a fault plan", spec)
				}
			}
		}
	})
}

// FuzzParseTopologySpec asserts the topology parser's contract on arbitrary
// input: it never panics, every rejection wraps ErrSpec, and every accepted
// spec yields either nil (the flat link) or a validated geometry whose
// canonical String form reparses to the identical topology (round-trip
// stability — the property variant naming depends on).
func FuzzParseTopologySpec(f *testing.F) {
	f.Add("flat")
	f.Add("clos:radix=8")
	f.Add("clos:radix=16:taper=4")
	f.Add("clos:radix=4:taper=1.5:stages=3")
	f.Add("clos:stages=2:radix=2")
	f.Add("clos:radix=1")
	f.Add("clos:radix=0:taper=0")
	f.Add("clos:radix=8:taper=9")
	f.Add("clos:radix=2:stages=17")
	f.Add("clos:radix=8:radix=8")
	f.Add("clos")
	f.Add("mesh:radix=4")
	f.Add("clos:radix=9223372036854775808")
	f.Fuzz(func(t *testing.T, spec string) {
		topo, err := ParseTopologySpec(spec)
		if err != nil {
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("rejection does not wrap ErrSpec: %v", err)
			}
			if topo != nil {
				t.Fatalf("rejected spec %q returned a non-nil topology", spec)
			}
			return
		}
		if topo == nil {
			if spec != "flat" {
				t.Fatalf("accepted spec %q yields nil topology but is not \"flat\"", spec)
			}
			return
		}
		if verr := topo.Validate(); verr != nil {
			t.Fatalf("accepted spec %q yields invalid topology: %v", spec, verr)
		}
		again, err := ParseTopologySpec(topo.String())
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not reparse: %v", topo.String(), spec, err)
		}
		if again == nil || *again != *topo {
			t.Fatalf("canonical form %q does not round-trip: %+v vs %+v", topo.String(), topo, again)
		}
	})
}
