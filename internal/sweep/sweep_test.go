package sweep

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/harness"
	"ecvslrc/internal/perf"
)

func testGrid(parallel int) Grid {
	vs, err := ParseVariantSpec("net=x2 detect=hw contention=on")
	if err != nil {
		panic(err)
	}
	return Grid{
		Scale:    apps.Test,
		Apps:     []string{"SOR", "IS"},
		NProcs:   []int{2, 4},
		Variants: vs,
		Parallel: parallel,
	}
}

// TestSweepDeterministicUnderParallel runs the same grid serially and on a
// worker pool and requires bit-identical records, the same guarantee the
// table harness gives.
func TestSweepDeterministicUnderParallel(t *testing.T) {
	serial, err := Run(testGrid(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(testGrid(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("records differ between -parallel 1 and 4")
	}
	// 2 variants (the combined one, baseline prepended) x 2 apps x 2 proc
	// counts x 6 impls.
	if want := 2 * 2 * 2 * 6; len(serial) != want {
		t.Errorf("got %d records, want %d", len(serial), want)
	}
	// Grid order: variants outermost, baseline first.
	if serial[0].Variant != BaselineName || serial[0].App != "SOR" || serial[0].NProcs != 2 {
		t.Errorf("first record = %+v", serial[0])
	}
}

// TestSweepBaselineMatchesHarness is the subsystem's anchor: with contention
// off, the default-variant cells must be bit-identical to harness.RunCell
// under the calibrated cost model — the sweep engine adds an axis, it must
// not move the baseline.
func TestSweepBaselineMatchesHarness(t *testing.T) {
	recs, err := Run(Grid{
		Scale:  apps.Test,
		Apps:   []string{"QS"},
		NProcs: []int{4},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := harness.Config{Scale: apps.Test, NProcs: 4, Cost: fabric.DefaultCostModel()}
	impls := core.Implementations()
	if len(recs) != len(impls) {
		t.Fatalf("got %d records, want %d", len(recs), len(impls))
	}
	seq, err := harness.RunSeq(cfg, "QS")
	if err != nil {
		t.Fatal(err)
	}
	for i, impl := range impls {
		row := harness.RunCell(cfg, "QS", impl)
		if row.Err != nil {
			t.Fatal(row.Err)
		}
		r := recs[i]
		if r.Impl != impl.String() || r.Variant != BaselineName || r.Contention {
			t.Errorf("record %d metadata = %+v", i, r)
		}
		if r.Stats != row.Stats {
			t.Errorf("%v: sweep stats differ from harness:\n  sweep:   %+v\n  harness: %+v", impl, r.Stats, row.Stats)
		}
		if r.Seq != seq {
			t.Errorf("%v: seq = %v, want %v", impl, r.Seq, seq)
		}
	}
}

// TestSweepContentionSlowsCells checks the axis actually bites: with
// contention on, no cell can finish earlier, and communication-heavy cells
// finish strictly later.
func TestSweepContentionSlowsCells(t *testing.T) {
	vs, err := ParseVariantSpec("contention=on")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Run(Grid{
		Scale:    apps.Test,
		Apps:     []string{"IS"},
		NProcs:   []int{4},
		Variants: vs,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := map[string]Record{}
	for _, r := range recs {
		if r.Variant == BaselineName {
			base[r.Impl] = r
		}
	}
	slower := 0
	for _, r := range recs {
		if r.Variant != "contention=on" {
			continue
		}
		b := base[r.Impl]
		if r.Stats.Time < b.Stats.Time {
			t.Errorf("%s: contention made the run faster (%v < %v)", r.Impl, r.Stats.Time, b.Stats.Time)
		}
		if r.Stats.Time > b.Stats.Time {
			slower++
			if r.LinkWait == 0 {
				t.Errorf("%s: contention slowed the run but reported no LinkWait", r.Impl)
			}
		}
		if b.LinkWait != 0 {
			t.Errorf("%s: baseline reports LinkWait %v, want 0", r.Impl, b.LinkWait)
		}
		// The protocol's work is unchanged; only timing moves.
		if r.Stats.Msgs != b.Stats.Msgs {
			t.Errorf("%s: contention changed message count (%d vs %d)", r.Impl, r.Stats.Msgs, b.Stats.Msgs)
		}
	}
	if slower == 0 {
		t.Error("contention=on slowed no cell at all")
	}
}

// TestSweepProgressAndPerf runs a parallel grid with both observers attached
// and checks the accounting: the progress callback fires exactly once per
// unit of work (each seq reference plus each cell), the done counter covers
// 1..total as a set, and the perf registry labels every cell with its
// variant name — while the records themselves stay identical to an
// unobserved run.
func TestSweepProgressAndPerf(t *testing.T) {
	g := testGrid(4)
	g.Impls = core.Implementations()[:2]
	plain, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}

	reg := perf.New()
	var mu sync.Mutex
	seen := make(map[int]string)
	var wantTotal int
	g.Perf = reg
	g.Progress = func(done, total int, cell string, wall time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		if prev, dup := seen[done]; dup {
			t.Errorf("done=%d reported twice (%q, %q)", done, prev, cell)
		}
		seen[done] = cell
		wantTotal = total
		if wall < 0 {
			t.Errorf("negative wall time for %q", cell)
		}
	}
	observed, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Error("progress/perf observation changed the sweep records")
	}

	// 2 seq refs + 2 variants (baseline + spec) x 2 apps x 2 nprocs x
	// 2 impls = 18 units.
	if wantTotal != 18 {
		t.Errorf("reported total = %d, want 18", wantTotal)
	}
	if len(seen) != wantTotal {
		t.Fatalf("got %d progress calls, want %d", len(seen), wantTotal)
	}
	for d := 1; d <= wantTotal; d++ {
		if _, ok := seen[d]; !ok {
			t.Errorf("done=%d never reported", d)
		}
	}

	snap := reg.Snapshot(perf.Meta{Parallel: 4})
	var variantCells, seqCells int
	for _, c := range snap.Cells {
		switch {
		case c.Impl == "seq":
			seqCells++
			if c.Variant != "" {
				t.Errorf("seq cell carries variant %q", c.Variant)
			}
		default:
			variantCells++
			if c.Variant == "" {
				t.Errorf("cell %v missing variant label", c.Key())
			}
		}
	}
	if seqCells != 2 || variantCells != 16 {
		t.Errorf("perf cells: seq=%d variant=%d, want 2/16", seqCells, variantCells)
	}
}
