package sweep

import (
	"reflect"
	"testing"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/harness"
)

func testGrid(parallel int) Grid {
	vs, err := ParseVariantSpec("net=x2 detect=hw contention=on")
	if err != nil {
		panic(err)
	}
	return Grid{
		Scale:    apps.Test,
		Apps:     []string{"SOR", "IS"},
		NProcs:   []int{2, 4},
		Variants: vs,
		Parallel: parallel,
	}
}

// TestSweepDeterministicUnderParallel runs the same grid serially and on a
// worker pool and requires bit-identical records, the same guarantee the
// table harness gives.
func TestSweepDeterministicUnderParallel(t *testing.T) {
	serial, err := Run(testGrid(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(testGrid(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("records differ between -parallel 1 and 4")
	}
	// 2 variants (the combined one, baseline prepended) x 2 apps x 2 proc
	// counts x 6 impls.
	if want := 2 * 2 * 2 * 6; len(serial) != want {
		t.Errorf("got %d records, want %d", len(serial), want)
	}
	// Grid order: variants outermost, baseline first.
	if serial[0].Variant != BaselineName || serial[0].App != "SOR" || serial[0].NProcs != 2 {
		t.Errorf("first record = %+v", serial[0])
	}
}

// TestSweepBaselineMatchesHarness is the subsystem's anchor: with contention
// off, the default-variant cells must be bit-identical to harness.RunCell
// under the calibrated cost model — the sweep engine adds an axis, it must
// not move the baseline.
func TestSweepBaselineMatchesHarness(t *testing.T) {
	recs, err := Run(Grid{
		Scale:  apps.Test,
		Apps:   []string{"QS"},
		NProcs: []int{4},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := harness.Config{Scale: apps.Test, NProcs: 4, Cost: fabric.DefaultCostModel()}
	impls := core.Implementations()
	if len(recs) != len(impls) {
		t.Fatalf("got %d records, want %d", len(recs), len(impls))
	}
	seq, err := harness.RunSeq(cfg, "QS")
	if err != nil {
		t.Fatal(err)
	}
	for i, impl := range impls {
		row := harness.RunCell(cfg, "QS", impl)
		if row.Err != nil {
			t.Fatal(row.Err)
		}
		r := recs[i]
		if r.Impl != impl.String() || r.Variant != BaselineName || r.Contention {
			t.Errorf("record %d metadata = %+v", i, r)
		}
		if r.Stats != row.Stats {
			t.Errorf("%v: sweep stats differ from harness:\n  sweep:   %+v\n  harness: %+v", impl, r.Stats, row.Stats)
		}
		if r.Seq != seq {
			t.Errorf("%v: seq = %v, want %v", impl, r.Seq, seq)
		}
	}
}

// TestSweepContentionSlowsCells checks the axis actually bites: with
// contention on, no cell can finish earlier, and communication-heavy cells
// finish strictly later.
func TestSweepContentionSlowsCells(t *testing.T) {
	vs, err := ParseVariantSpec("contention=on")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Run(Grid{
		Scale:    apps.Test,
		Apps:     []string{"IS"},
		NProcs:   []int{4},
		Variants: vs,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := map[string]Record{}
	for _, r := range recs {
		if r.Variant == BaselineName {
			base[r.Impl] = r
		}
	}
	slower := 0
	for _, r := range recs {
		if r.Variant != "contention=on" {
			continue
		}
		b := base[r.Impl]
		if r.Stats.Time < b.Stats.Time {
			t.Errorf("%s: contention made the run faster (%v < %v)", r.Impl, r.Stats.Time, b.Stats.Time)
		}
		if r.Stats.Time > b.Stats.Time {
			slower++
			if r.LinkWait == 0 {
				t.Errorf("%s: contention slowed the run but reported no LinkWait", r.Impl)
			}
		}
		if b.LinkWait != 0 {
			t.Errorf("%s: baseline reports LinkWait %v, want 0", r.Impl, b.LinkWait)
		}
		// The protocol's work is unchanged; only timing moves.
		if r.Stats.Msgs != b.Stats.Msgs {
			t.Errorf("%s: contention changed message count (%d vs %d)", r.Impl, r.Stats.Msgs, b.Stats.Msgs)
		}
	}
	if slower == 0 {
		t.Error("contention=on slowed no cell at all")
	}
}
