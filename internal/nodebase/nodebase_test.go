package nodebase

import (
	"testing"

	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/sim"
	"ecvslrc/internal/wtrap"
)

// rig builds a Base on a one-processor simulation and runs body.
func rig(t *testing.T, body func(b *Base)) {
	t.Helper()
	s := sim.New()
	net := fabric.New(s, fabric.DefaultCostModel(), 1)
	al := mem.NewAllocator()
	al.Alloc("data", 2*mem.PageSize, 4)
	b := &Base{}
	p := s.Spawn("p0", func(p *sim.Proc) { body(b) })
	b.Init(p, net, al, core.LRC, 1)
	net.Attach(p, func(hc *fabric.HandlerCtx, m fabric.Msg) {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeferredChargeFlushesAtThreshold(t *testing.T) {
	rig(t, func(b *Base) {
		start := b.P.Now()
		// Below the threshold: the clock must not move yet (one event per
		// charge would make instrumented stores unaffordable).
		b.Charge(30 * sim.Microsecond)
		if b.P.Now() != start {
			t.Error("sub-threshold charge advanced the clock")
		}
		if b.Now() != start+30*sim.Microsecond {
			t.Error("Now() must include pending charge")
		}
		// Crossing the threshold flushes everything.
		b.Charge(80 * sim.Microsecond)
		if got := b.P.Now() - start; got != 110*sim.Microsecond {
			t.Errorf("clock advanced %v, want 110µs", got)
		}
	})
}

func TestFlushExplicit(t *testing.T) {
	rig(t, func(b *Base) {
		b.Charge(10 * sim.Microsecond)
		b.Flush()
		if b.P.Now() != 10*sim.Microsecond {
			t.Errorf("now = %v", b.P.Now())
		}
		b.Flush() // idempotent
		if b.P.Now() != 10*sim.Microsecond {
			t.Error("empty flush advanced the clock")
		}
	})
}

func TestAccessorsRoundTripAndTrap(t *testing.T) {
	rig(t, func(b *Base) {
		db := wtrap.NewDirtyBits(b.Al, false)
		b.SetTrap(db, sim.Microsecond)
		b.WriteI32(4, -5)
		b.WriteF32(8, 1.5)
		b.WriteF64(16, 2.25)
		if b.ReadI32(4) != -5 || b.ReadF32(8) != 1.5 || b.ReadF64(16) != 2.25 {
			t.Error("round trip failed")
		}
		if db.Stores() != 3 {
			t.Errorf("instrumented stores = %d, want 3", db.Stores())
		}
		runs, _ := db.Collect([]mem.Range{{Base: 0, Len: 32}})
		if len(runs) != 2 || runs[0].Base != 4 || runs[0].Len != 8 || runs[1].Base != 16 || runs[1].Len != 8 {
			t.Errorf("dirty runs = %v", runs)
		}
		if b.Now() != 3*sim.Microsecond {
			t.Errorf("pending trap cost = %v, want 3µs", b.Now())
		}
	})
}

func TestStatsWindow(t *testing.T) {
	rig(t, func(b *Base) {
		b.P.Sleep(50 * sim.Microsecond)
		b.StatsBegin()
		b.P.Sleep(100 * sim.Microsecond)
		b.Cnt.LockAcquires = 7
		b.Extra.DiffsCreated = 3
		b.StatsEnd()
		w, ok := b.Window()
		if !ok {
			t.Fatal("no window")
		}
		if w.Start != 50*sim.Microsecond || w.End != 150*sim.Microsecond {
			t.Errorf("window [%v,%v]", w.Start, w.End)
		}
		if w.Cnt.LockAcquires != 7 || w.Extra.DiffsCreated != 3 {
			t.Errorf("window counters: %+v %+v", w.Cnt, w.Extra)
		}
	})
}

func TestStatsEndWithoutBeginPanics(t *testing.T) {
	rig(t, func(b *Base) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		b.StatsEnd()
	})
}
