// Package nodebase carries the machinery common to the EC and LRC nodes:
// the private memory image, the software MMU, typed shared-memory accessors
// with write-trapping hooks, deferred CPU-cost accounting, and statistics
// windows. Mirroring Section 6 of the paper, everything that is not a
// consistency action is shared between the models.
package nodebase

import (
	"encoding/binary"
	"math"

	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/sim"
	"ecvslrc/internal/syncmgr"
	"ecvslrc/internal/trace"
	"ecvslrc/internal/vm"
	"ecvslrc/internal/wtrap"
)

// flushThreshold bounds how much deferred CPU cost may accumulate before it
// is converted into simulated sleep. Charging every instrumented store
// individually would create one event per store; batching below this
// granularity preserves interleaving fidelity at simulation speed.
const flushThreshold = 100 * sim.Microsecond

// Base is embedded by both protocol nodes.
type Base struct {
	P      *sim.Proc
	Net    *fabric.Network
	CM     *fabric.CostModel
	Al     *mem.Allocator
	Im     *mem.Image
	MMU    *vm.MMU
	NProcs int
	Model  core.Model

	// prot and data are the devirtualized access fast path: prot aliases the
	// MMU's protection table (SetProt mutates the shared backing array) and
	// data the image's backing store, so the in-window check plus the load or
	// store is flat slice indexing — no MMU or Image pointer chase, no
	// closure, no nested call. Every accessor below keeps its fast path small
	// enough to inline, with the fault and trap slow paths out of line.
	prot []vm.Prot
	data []byte

	// trapDB and trapCost are the compiler-instrumentation write trap (nil
	// when twinning handles trapping via protection faults): every shared
	// store charges trapCost and marks the dirty bits. A direct field pair
	// replaces the previous per-store closure call.
	trapDB   *wtrap.DirtyBits
	trapCost sim.Time

	// fastWriteProt is the protection level at which a store may skip the
	// slow path entirely: ReadWrite normally, an impossible sentinel when
	// instrumentation is on (every store must then trap — there is no
	// untrapped write under ci by construction). Folding the trap test into
	// the protection compare keeps the store fast path to a single branch.
	fastWriteProt vm.Prot

	// Tr is the event tracer, nil when tracing is off. Every emit method is
	// nil-safe, so protocol code records unconditionally.
	Tr *trace.Tracer

	Cnt syncmgr.Counters

	pending sim.Time // deferred CPU cost not yet slept
	// trapPend is the instrumented-store share of pending when tracing: one
	// EvWork per store would dwarf the trace, so trap charges accumulate here
	// and emit as a single record at the next Flush.
	trapPend sim.Time

	statsOpen  bool
	winStart   sim.Time
	winEnd     sim.Time
	hasWindow  bool
	netBase    fabric.Stats
	faultsBase int64
	cntBase    syncmgr.Counters
	extraBase  Extra
	window     WindowStats
	Extra      Extra
}

// Extra counts protocol-specific events for core.Stats.
type Extra struct {
	AccessMisses  int64
	DiffsCreated  int64
	TwinsMade     int64
	StampRunsSent int64
}

// Init fills the common fields with a zeroed private image.
func (b *Base) Init(p *sim.Proc, net *fabric.Network, al *mem.Allocator, model core.Model, nprocs int) {
	b.InitWithImage(p, net, al, model, nprocs, mem.NewImage(al.Size()))
}

// InitWithImage is Init with a caller-provided image (typically recycled,
// contents unspecified): the runner overwrites it in full before the
// simulation starts.
func (b *Base) InitWithImage(p *sim.Proc, net *fabric.Network, al *mem.Allocator, model core.Model, nprocs int, im *mem.Image) {
	b.P = p
	b.Net = net
	b.CM = net.Cost()
	b.Al = al
	b.Im = im
	b.MMU = vm.New(al.Pages())
	b.prot = b.MMU.Table()
	b.data = im.Bytes()
	b.fastWriteProt = vm.ReadWrite
	b.NProcs = nprocs
	b.Model = model
}

// neverProt is fastWriteProt's sentinel: no page ever reaches it, so every
// store misses the fast-path compare and takes writeSlow.
const neverProt vm.Prot = 0xFF

// SetTrap installs the compiler-instrumentation write trap: every shared
// store charges cost and records its block in db. Pass nil to clear (the
// twinning configurations trap via protection faults instead).
func (b *Base) SetTrap(db *wtrap.DirtyBits, cost sim.Time) {
	b.trapDB = db
	b.trapCost = cost
	if db != nil {
		b.fastWriteProt = neverProt
	} else {
		b.fastWriteProt = vm.ReadWrite
	}
}

// AttachTracer stores the event tracer and taps the hooks common to both
// protocol stacks (protection faults via the MMU observer). The protocol
// nodes extend it with their own taps in their SetTracer methods.
func (b *Base) AttachTracer(tr *trace.Tracer) {
	b.Tr = tr
	b.MMU.SetObserver(func(a mem.Addr, write bool) {
		tr.Fault(b.P.Now(), b.P.ID(), mem.PageOf(a), write)
	})
}

// Charge defers d of CPU cost, flushing when the accumulation grows large.
func (b *Base) Charge(d sim.Time) {
	b.pending += d
	if b.pending >= flushThreshold {
		b.Flush()
	}
}

// Flush converts deferred cost into simulated time. Must be called before
// any blocking or communicating operation.
func (b *Base) Flush() {
	if b.pending > 0 {
		if b.trapPend > 0 {
			b.Tr.Work(b.P.Now(), b.P.ID(), trace.WorkTrapDiff, trace.ObjNone, -1, b.trapPend)
			b.trapPend = 0
		}
		d := b.pending
		b.pending = 0
		b.P.Sleep(d)
	}
}

// Compute implements core.DSM: application CPU time.
func (b *Base) Compute(d sim.Time) { b.Charge(d) }

// Now implements core.DSM.
func (b *Base) Now() sim.Time { return b.P.Now() + b.pending }

// Proc implements core.DSM.
func (b *Base) Proc() int { return b.P.ID() }

// Typed accessors: every shared access consults the protection table (the
// page protection hardware) and fires the write trap on instrumented stores.
// The in-window, no-fault, no-trap path of each accessor is a flat check
// plus a direct load or store on Base-resident slices — no MMU or Image
// pointer chase, no closure, no virtual call — and stays inside the
// compiler's inlining budget. The fault and trap machinery lives in the
// out-of-line readFault/writeSlow* slow paths, which reproduce the
// pre-devirtualization behaviour exactly: resolve the fault first, then
// charge and record the instrumented store, then perform the access.

// ReadI32 implements core.DSM.
func (b *Base) ReadI32(a mem.Addr) int32 {
	if b.prot[a>>mem.PageShift] == vm.NoAccess {
		b.readFault(a)
	}
	return int32(binary.LittleEndian.Uint32(b.data[a:]))
}

// WriteI32 implements core.DSM.
func (b *Base) WriteI32(a mem.Addr, v int32) {
	if b.prot[a>>mem.PageShift] != b.fastWriteProt {
		b.writeSlow4(a)
	}
	binary.LittleEndian.PutUint32(b.data[a:], uint32(v))
}

// ReadF32 implements core.DSM.
func (b *Base) ReadF32(a mem.Addr) float32 {
	if b.prot[a>>mem.PageShift] == vm.NoAccess {
		b.readFault(a)
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(b.data[a:]))
}

// WriteF32 implements core.DSM.
func (b *Base) WriteF32(a mem.Addr, v float32) {
	if b.prot[a>>mem.PageShift] != b.fastWriteProt {
		b.writeSlow4(a)
	}
	binary.LittleEndian.PutUint32(b.data[a:], math.Float32bits(v))
}

// ReadF64 implements core.DSM.
func (b *Base) ReadF64(a mem.Addr) float64 {
	if b.prot[a>>mem.PageShift] == vm.NoAccess {
		b.readFault(a)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b.data[a:]))
}

// WriteF64 implements core.DSM.
func (b *Base) WriteF64(a mem.Addr, v float64) {
	if b.prot[a>>mem.PageShift] != b.fastWriteProt {
		b.writeSlow8(a)
	}
	binary.LittleEndian.PutUint64(b.data[a:], math.Float64bits(v))
}

// readFault is the read slow path: the page is invalid, run the fault
// machinery. go:noinline keeps its cost out of the accessors' budgets — it
// is taken once per access miss, never on the in-window path.
//
//go:noinline
func (b *Base) readFault(a mem.Addr) { b.MMU.FaultRead(a) }

// writeSlow handles everything a store may owe beyond the raw write: a
// protection fault (resolved before trapping, as the hardware would), then
// the compiler-instrumentation charge and dirty-bit update. For the ci
// configurations every store lands here by construction — instrumentation
// is per-store work, there is no untrapped write path to speed up.
func (b *Base) writeSlow(a mem.Addr, size int) {
	if b.prot[a>>mem.PageShift] != vm.ReadWrite {
		b.MMU.FaultWrite(a)
	}
	if b.trapDB != nil {
		if b.Tr != nil {
			b.trapPend += b.trapCost
		}
		b.Charge(b.trapCost)
		b.trapDB.NoteWrite(a, size)
	}
}

//go:noinline
func (b *Base) writeSlow4(a mem.Addr) { b.writeSlow(a, 4) }

//go:noinline
func (b *Base) writeSlow8(a mem.Addr) { b.writeSlow(a, 8) }

// WindowStats is the per-processor measurement extracted by the runner.
type WindowStats struct {
	Start, End sim.Time
	Net        fabric.Stats
	Faults     int64
	Cnt        syncmgr.Counters
	Extra      Extra
}

// StatsBegin implements core.DSM: opens this processor's window.
func (b *Base) StatsBegin() {
	b.Flush()
	b.statsOpen = true
	b.winStart = b.P.Now()
	b.netBase = b.Net.ProcStats(b.P.ID())
	b.faultsBase = b.MMU.Faults()
	b.cntBase = b.Cnt
	b.extraBase = b.Extra
}

// StatsEnd implements core.DSM: closes the window.
func (b *Base) StatsEnd() {
	if !b.statsOpen {
		panic("nodebase: StatsEnd without StatsBegin")
	}
	b.Flush()
	b.statsOpen = false
	b.hasWindow = true
	b.window = WindowStats{
		Start:  b.winStart,
		End:    b.P.Now(),
		Net:    b.Net.ProcStats(b.P.ID()).Sub(b.netBase),
		Faults: b.MMU.Faults() - b.faultsBase,
		Cnt: syncmgr.Counters{
			LockAcquires:     b.Cnt.LockAcquires - b.cntBase.LockAcquires,
			ReadLockAcquires: b.Cnt.ReadLockAcquires - b.cntBase.ReadLockAcquires,
			RemoteAcquires:   b.Cnt.RemoteAcquires - b.cntBase.RemoteAcquires,
			Barriers:         b.Cnt.Barriers - b.cntBase.Barriers,
		},
		Extra: Extra{
			AccessMisses:  b.Extra.AccessMisses - b.extraBase.AccessMisses,
			DiffsCreated:  b.Extra.DiffsCreated - b.extraBase.DiffsCreated,
			TwinsMade:     b.Extra.TwinsMade - b.extraBase.TwinsMade,
			StampRunsSent: b.Extra.StampRunsSent - b.extraBase.StampRunsSent,
		},
	}
}

// Window returns the measurement window, valid after StatsEnd.
func (b *Base) Window() (WindowStats, bool) { return b.window, b.hasWindow }
