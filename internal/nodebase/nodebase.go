// Package nodebase carries the machinery common to the EC and LRC nodes:
// the private memory image, the software MMU, typed shared-memory accessors
// with write-trapping hooks, deferred CPU-cost accounting, and statistics
// windows. Mirroring Section 6 of the paper, everything that is not a
// consistency action is shared between the models.
package nodebase

import (
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/sim"
	"ecvslrc/internal/syncmgr"
	"ecvslrc/internal/trace"
	"ecvslrc/internal/vm"
)

// flushThreshold bounds how much deferred CPU cost may accumulate before it
// is converted into simulated sleep. Charging every instrumented store
// individually would create one event per store; batching below this
// granularity preserves interleaving fidelity at simulation speed.
const flushThreshold = 100 * sim.Microsecond

// Base is embedded by both protocol nodes.
type Base struct {
	P      *sim.Proc
	Net    *fabric.Network
	CM     *fabric.CostModel
	Al     *mem.Allocator
	Im     *mem.Image
	MMU    *vm.MMU
	NProcs int
	Model  core.Model

	// OnWrite is the write-trapping hook invoked (after MMU checks) for
	// every shared store; nil when twinning handles trapping via faults.
	OnWrite func(a mem.Addr, size int)

	// Tr is the event tracer, nil when tracing is off. Every emit method is
	// nil-safe, so protocol code records unconditionally.
	Tr *trace.Tracer

	Cnt syncmgr.Counters

	pending sim.Time // deferred CPU cost not yet slept

	statsOpen  bool
	winStart   sim.Time
	winEnd     sim.Time
	hasWindow  bool
	netBase    fabric.Stats
	faultsBase int64
	cntBase    syncmgr.Counters
	extraBase  Extra
	window     WindowStats
	Extra      Extra
}

// Extra counts protocol-specific events for core.Stats.
type Extra struct {
	AccessMisses  int64
	DiffsCreated  int64
	TwinsMade     int64
	StampRunsSent int64
}

// Init fills the common fields with a zeroed private image.
func (b *Base) Init(p *sim.Proc, net *fabric.Network, al *mem.Allocator, model core.Model, nprocs int) {
	b.InitWithImage(p, net, al, model, nprocs, mem.NewImage(al.Size()))
}

// InitWithImage is Init with a caller-provided image (typically recycled,
// contents unspecified): the runner overwrites it in full before the
// simulation starts.
func (b *Base) InitWithImage(p *sim.Proc, net *fabric.Network, al *mem.Allocator, model core.Model, nprocs int, im *mem.Image) {
	b.P = p
	b.Net = net
	b.CM = net.Cost()
	b.Al = al
	b.Im = im
	b.MMU = vm.New(al.Pages())
	b.NProcs = nprocs
	b.Model = model
}

// AttachTracer stores the event tracer and taps the hooks common to both
// protocol stacks (protection faults via the MMU observer). The protocol
// nodes extend it with their own taps in their SetTracer methods.
func (b *Base) AttachTracer(tr *trace.Tracer) {
	b.Tr = tr
	b.MMU.SetObserver(func(a mem.Addr, write bool) {
		tr.Fault(b.P.Now(), b.P.ID(), mem.PageOf(a), write)
	})
}

// Charge defers d of CPU cost, flushing when the accumulation grows large.
func (b *Base) Charge(d sim.Time) {
	b.pending += d
	if b.pending >= flushThreshold {
		b.Flush()
	}
}

// Flush converts deferred cost into simulated time. Must be called before
// any blocking or communicating operation.
func (b *Base) Flush() {
	if b.pending > 0 {
		d := b.pending
		b.pending = 0
		b.P.Sleep(d)
	}
}

// Compute implements core.DSM: application CPU time.
func (b *Base) Compute(d sim.Time) { b.Charge(d) }

// Now implements core.DSM.
func (b *Base) Now() sim.Time { return b.P.Now() + b.pending }

// Proc implements core.DSM.
func (b *Base) Proc() int { return b.P.ID() }

// Typed accessors: every shared access consults the MMU (which models the
// page protection hardware) and fires the trapping hook on stores.

// ReadI32 implements core.DSM.
func (b *Base) ReadI32(a mem.Addr) int32 {
	b.MMU.CheckRead(a)
	return b.Im.ReadI32(a)
}

// WriteI32 implements core.DSM.
func (b *Base) WriteI32(a mem.Addr, v int32) {
	b.MMU.CheckWrite(a)
	if b.OnWrite != nil {
		b.OnWrite(a, 4)
	}
	b.Im.WriteI32(a, v)
}

// ReadF32 implements core.DSM.
func (b *Base) ReadF32(a mem.Addr) float32 {
	b.MMU.CheckRead(a)
	return b.Im.ReadF32(a)
}

// WriteF32 implements core.DSM.
func (b *Base) WriteF32(a mem.Addr, v float32) {
	b.MMU.CheckWrite(a)
	if b.OnWrite != nil {
		b.OnWrite(a, 4)
	}
	b.Im.WriteF32(a, v)
}

// ReadF64 implements core.DSM.
func (b *Base) ReadF64(a mem.Addr) float64 {
	b.MMU.CheckRead(a)
	return b.Im.ReadF64(a)
}

// WriteF64 implements core.DSM.
func (b *Base) WriteF64(a mem.Addr, v float64) {
	b.MMU.CheckWrite(a)
	if b.OnWrite != nil {
		b.OnWrite(a, 8)
	}
	b.Im.WriteF64(a, v)
}

// WindowStats is the per-processor measurement extracted by the runner.
type WindowStats struct {
	Start, End sim.Time
	Net        fabric.Stats
	Faults     int64
	Cnt        syncmgr.Counters
	Extra      Extra
}

// StatsBegin implements core.DSM: opens this processor's window.
func (b *Base) StatsBegin() {
	b.Flush()
	b.statsOpen = true
	b.winStart = b.P.Now()
	b.netBase = b.Net.ProcStats(b.P.ID())
	b.faultsBase = b.MMU.Faults()
	b.cntBase = b.Cnt
	b.extraBase = b.Extra
}

// StatsEnd implements core.DSM: closes the window.
func (b *Base) StatsEnd() {
	if !b.statsOpen {
		panic("nodebase: StatsEnd without StatsBegin")
	}
	b.Flush()
	b.statsOpen = false
	b.hasWindow = true
	b.window = WindowStats{
		Start:  b.winStart,
		End:    b.P.Now(),
		Net:    b.Net.ProcStats(b.P.ID()).Sub(b.netBase),
		Faults: b.MMU.Faults() - b.faultsBase,
		Cnt: syncmgr.Counters{
			LockAcquires:     b.Cnt.LockAcquires - b.cntBase.LockAcquires,
			ReadLockAcquires: b.Cnt.ReadLockAcquires - b.cntBase.ReadLockAcquires,
			RemoteAcquires:   b.Cnt.RemoteAcquires - b.cntBase.RemoteAcquires,
			Barriers:         b.Cnt.Barriers - b.cntBase.Barriers,
		},
		Extra: Extra{
			AccessMisses:  b.Extra.AccessMisses - b.extraBase.AccessMisses,
			DiffsCreated:  b.Extra.DiffsCreated - b.extraBase.DiffsCreated,
			TwinsMade:     b.Extra.TwinsMade - b.extraBase.TwinsMade,
			StampRunsSent: b.Extra.StampRunsSent - b.extraBase.StampRunsSent,
		},
	}
}

// Window returns the measurement window, valid after StatsEnd.
func (b *Base) Window() (WindowStats, bool) { return b.window, b.hasWindow }
