package fabric

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"ecvslrc/internal/sim"
)

// ErrFaultPlan is wrapped by every FaultPlan validation failure.
var ErrFaultPlan = errors.New("invalid fault plan")

// FaultPlan is a seeded description of how the network misbehaves. Every
// per-frame fate (drop, duplicate, delay amount, ack loss) is a pure function
// of (Seed, directed link, sequence number, attempt, virtual send time), so a
// run under a given plan is bit-reproducible: the same (plan, program) pair
// always drops the same frames at the same virtual instants, regardless of
// host scheduling or worker count.
//
// Enabling any plan — even an all-zero-rate one — routes every message
// through the reliable-delivery sublayer: per-link sequence numbers,
// receiver-side dedup and reorder buffering, cumulative acks, and timeout
// retransmission with exponential backoff. Protocol handlers therefore still
// observe exactly-once, in-order delivery per directed link; only the timing
// (and the traffic counters, which include retransmissions) changes.
type FaultPlan struct {
	// Seed keys the fault PRNG. Two runs with the same seed and rates make
	// identical per-frame decisions.
	Seed uint64
	// Drop is the probability that one transmission attempt (data frame or
	// ack) is lost before reaching the wire.
	Drop float64
	// Dup is the probability that a data-frame attempt is delivered twice
	// (the copy arrives after an extra delay).
	Dup float64
	// Delay is the probability that an attempt is held back; a delayed frame
	// arrives up to DelayMax late, which is also how reordering happens: a
	// delayed frame can be overtaken by its successors on the same link.
	Delay float64
	// DelayMax bounds the injected extra latency. Defaults to 2 ms (about
	// two round trips) when Delay > 0 and DelayMax is zero.
	DelayMax sim.Time
	// RTO is the base retransmission timeout, doubling per retry up to
	// 16x. Defaults to 1 ms, several times the ack round trip, so spurious
	// retransmissions are rare at low loss rates.
	RTO sim.Time
	// MaxRetries bounds retransmissions per frame; past it the run fails
	// with a diagnostic (the plan is then not recoverable). Default 12.
	MaxRetries int
}

// withDefaults returns the plan with zero-valued tuning knobs filled in.
func (p FaultPlan) withDefaults() FaultPlan {
	if p.RTO <= 0 {
		p.RTO = sim.Millisecond
	}
	if p.MaxRetries <= 0 {
		p.MaxRetries = 12
	}
	if p.DelayMax <= 0 {
		p.DelayMax = 2 * sim.Millisecond
	}
	return p
}

// Validate checks the plan's rates and knobs, wrapping ErrFaultPlan.
func (p FaultPlan) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("fabric: %w: %s rate %v outside [0,1]", ErrFaultPlan, name, v)
		}
		return nil
	}
	if err := check("drop", p.Drop); err != nil {
		return err
	}
	if err := check("dup", p.Dup); err != nil {
		return err
	}
	if err := check("delay", p.Delay); err != nil {
		return err
	}
	if p.Drop >= 1 {
		return fmt.Errorf("fabric: %w: drop rate 1 loses every attempt (unrecoverable)", ErrFaultPlan)
	}
	if p.DelayMax < 0 || p.RTO < 0 {
		return fmt.Errorf("fabric: %w: negative duration", ErrFaultPlan)
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("fabric: %w: negative MaxRetries", ErrFaultPlan)
	}
	return nil
}

// FaultPresetNames lists the named fault plans, the fault-free one first.
func FaultPresetNames() []string { return []string{"off", "drop1e-3", "drop1e-2", "chaos"} }

// FaultPreset returns the named fault plan: "off" (nil — faults disabled),
// "drop1e-3" and "drop1e-2" (pure loss at 0.1% and 1%), or "chaos" (loss,
// duplication and delay combined). These are the plans the dsmsweep fault
// axis and the CI chaos job run under.
func FaultPreset(name string) (*FaultPlan, error) {
	switch name {
	case "off":
		return nil, nil
	case "drop1e-3":
		return &FaultPlan{Seed: 1, Drop: 1e-3}, nil
	case "drop1e-2":
		return &FaultPlan{Seed: 1, Drop: 1e-2}, nil
	case "chaos":
		return &FaultPlan{Seed: 1, Drop: 5e-3, Dup: 5e-3, Delay: 2e-2, DelayMax: 2 * sim.Millisecond}, nil
	}
	return nil, fmt.Errorf("fabric: %w: unknown fault preset %q (known: %s)",
		ErrFaultPlan, name, strings.Join(FaultPresetNames(), ", "))
}

// FaultStats counts what the fault layer did to one run's traffic. All
// quantities are deterministic for a given (plan, program) pair.
type FaultStats struct {
	// Sent counts data frames entering the reliable sublayer (first
	// attempts only; retransmissions are counted separately).
	Sent int64
	// Dropped counts lost data-frame transmission attempts.
	Dropped int64
	// Duplicated counts injected duplicate deliveries.
	Duplicated int64
	// Delayed counts attempts held back by the delay injector.
	Delayed int64
	// Retransmits counts timeout-driven retransmissions.
	Retransmits int64
	// DupsDropped counts frames the receiver discarded as duplicates
	// (injected duplicates plus retransmissions of already-arrived frames).
	DupsDropped int64
	// OutOfOrder counts frames that arrived ahead of a gap and waited in the
	// receiver's reorder buffer.
	OutOfOrder int64
	// Acks counts acknowledgement frames the receivers generated; AcksLost
	// counts the ones the fault injector discarded.
	Acks     int64
	AcksLost int64
	// RecoveryWait totals, over all delivered frames, how much later each
	// was handed to its destination than its first attempt's fault-free
	// arrival time — the virtual-time cost of loss recovery and reordering.
	RecoveryWait sim.Time
}

// String renders the headline recovery counters.
func (fs FaultStats) String() string {
	return fmt.Sprintf("sent %d, dropped %d, dup %d, delayed %d, retransmits %d, dups-dropped %d, ooo %d, acks %d (lost %d), recovery wait %v",
		fs.Sent, fs.Dropped, fs.Duplicated, fs.Delayed, fs.Retransmits,
		fs.DupsDropped, fs.OutOfOrder, fs.Acks, fs.AcksLost, fs.RecoveryWait)
}

// PRNG purposes: every independent decision about the same attempt hashes a
// distinct purpose constant, so fates never correlate.
const (
	pDrop = iota + 1
	pDelayHit
	pDelayAmt
	pDup
	pDupDelay
	pAckDrop
	pAckDelayHit
	pAckDelayAmt
)

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed 64-bit hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// relFrame is the sender-side record of one unacknowledged data frame.
type relFrame struct {
	msg     Msg
	reply   bool
	seq     uint32
	attempt int
	// nominal is the frame's fault-free arrival time (first attempt's send
	// end plus wire latency); RecoveryWait accumulates deliveries past it.
	nominal sim.Time
}

// heldFrame is one out-of-order frame parked in a receiver's reorder buffer.
type heldFrame struct {
	seq     uint32
	msg     Msg
	reply   bool
	nominal sim.Time
}

// relLink is the reliable-delivery state of one directed link. The sender
// half numbers outgoing frames and tracks the unacknowledged window; the
// receiver half enforces exactly-once in-order delivery.
type relLink struct {
	sendSeq    uint32
	unacked    map[uint32]*relFrame
	deliverSeq uint32
	held       []heldFrame // sorted by seq
	ackDraw    uint32      // per-link counter salting ack fate draws
}

func (lk *relLink) holds(seq uint32) bool {
	for i := range lk.held {
		if lk.held[i].seq == seq {
			return true
		}
	}
	return false
}

// insert places hf into the reorder buffer, keeping it sorted by seq.
func (lk *relLink) insert(hf heldFrame) {
	i := sort.Search(len(lk.held), func(i int) bool { return lk.held[i].seq >= hf.seq })
	lk.held = append(lk.held, heldFrame{})
	copy(lk.held[i+1:], lk.held[i:])
	lk.held[i] = hf
}

// faultState is the per-network fault injector plus reliable-delivery
// sublayer. It exists only when EnableFaults was called; the fault-free path
// costs one nil check in transmit and stays event-for-event identical to the
// seed fabric. Unlike the fault-free path, the sublayer allocates (frames,
// timers, buffers) — fault mode models robustness, not allocator pressure.
type faultState struct {
	n      *Network
	plan   FaultPlan
	nprocs int
	links  []relLink // directed, indexed from*nprocs+to
	stats  FaultStats
}

// roll returns a deterministic uniform draw in [0,1) for one decision about
// one attempt: a pure function of (seed, purpose, virtual time, link, seq,
// attempt), independent of host scheduling.
func (fs *faultState) roll(purpose int, at sim.Time, from, to int, seq uint32, attempt int) float64 {
	x := mix64(fs.plan.Seed ^ uint64(purpose)<<56)
	x = mix64(x ^ uint64(at))
	x = mix64(x ^ uint64(from)<<40 ^ uint64(to)<<20 ^ uint64(seq))
	x = mix64(x ^ uint64(attempt))
	return float64(x>>11) / (1 << 53)
}

// rto returns the retransmission timeout for the given attempt: the base RTO
// doubling per retry, capped at 16x.
func (fs *faultState) rto(attempt int) sim.Time {
	shift := attempt
	if shift > 4 {
		shift = 4
	}
	return fs.plan.RTO << uint(shift)
}

func (fs *faultState) link(from, to int) *relLink { return &fs.links[from*fs.nprocs+to] }

// send routes a freshly posted flight into the reliable sublayer: assign the
// link's next sequence number, remember the frame until it is acked, and
// launch the first transmission attempt.
func (fs *faultState) send(sendEnd sim.Time, fl *flight) {
	lk := fs.link(fl.msg.From, fl.msg.To)
	fr := &relFrame{
		msg:     fl.msg,
		reply:   fl.reply,
		seq:     lk.sendSeq,
		nominal: sendEnd + fs.n.cm.WireLatency,
	}
	lk.sendSeq++
	if lk.unacked == nil {
		lk.unacked = make(map[uint32]*relFrame)
	}
	lk.unacked[fr.seq] = fr
	fs.stats.Sent++
	fs.attempt(sendEnd, fr, fl)
}

// attempt launches one transmission attempt of fr, deciding its fate with
// the plan PRNG. fl, when non-nil, is the already-built flight to reuse for
// this attempt (the first one); retransmissions pass nil and get a fresh
// slot. Whatever the fate, a retransmission timer is armed: only an ack
// cancels the frame.
func (fs *faultState) attempt(sendEnd sim.Time, fr *relFrame, fl *flight) {
	n := fs.n
	from, to := fr.msg.From, fr.msg.To
	if fl == nil {
		fl = n.newFlight(fr.msg)
		fl.reply = fr.reply
	}
	fl.rel = true
	fl.seq = fr.seq
	fl.nominal = fr.nominal

	if fs.plan.Drop > 0 && fs.roll(pDrop, sendEnd, from, to, fr.seq, fr.attempt) < fs.plan.Drop {
		fs.stats.Dropped++
		n.tr.Drop(sendEnd, from, to, fr.msg.Kind, fr.attempt)
		n.release(fl)
	} else {
		var delay sim.Time
		if fs.plan.Delay > 0 && fs.roll(pDelayHit, sendEnd, from, to, fr.seq, fr.attempt) < fs.plan.Delay {
			delay = 1 + sim.Time(fs.roll(pDelayAmt, sendEnd, from, to, fr.seq, fr.attempt)*float64(fs.plan.DelayMax))
			fs.stats.Delayed++
		}
		fs.launch(sendEnd+delay, fl)
		if fs.plan.Dup > 0 && fs.roll(pDup, sendEnd, from, to, fr.seq, fr.attempt) < fs.plan.Dup {
			fs.stats.Duplicated++
			dup := n.newFlight(fr.msg)
			dup.reply = fr.reply
			dup.rel = true
			dup.seq = fr.seq
			dup.nominal = fr.nominal
			d2 := 1 + sim.Time(fs.roll(pDupDelay, sendEnd, from, to, fr.seq, fr.attempt)*float64(fs.plan.DelayMax))
			fs.launch(sendEnd+d2, dup)
		}
	}
	n.sim.ScheduleTimer(sendEnd+fs.rto(fr.attempt), &retryTimer{fs: fs, from: from, to: to, seq: fr.seq})
}

// launch puts an attempt on the wire at time at: straight to arrival without
// contention, or through the shared-link claim stage with it — the same two
// event shapes as the fault-free fabric.
func (fs *faultState) launch(at sim.Time, fl *flight) {
	n := fs.n
	if !n.contention {
		n.sim.ScheduleTimer(at+n.cm.WireLatency, fl)
		return
	}
	fl.claim = true
	n.sim.ScheduleTimer(at, fl)
}

// retryTimer fires the retransmission check for one frame. A timer is armed
// per attempt and simply does nothing when the frame was acked meanwhile.
type retryTimer struct {
	fs       *faultState
	from, to int
	seq      uint32
}

// Fire retransmits the frame if it is still unacknowledged: the sender's CPU
// is charged for the repeated programmed I/O (landing in virtual time whether
// the sender is computing or blocked), the traffic counters grow like any
// real resend, and the next attempt is launched with a doubled timeout.
func (rt *retryTimer) Fire(at sim.Time) {
	fs := rt.fs
	lk := fs.link(rt.from, rt.to)
	fr := lk.unacked[rt.seq]
	if fr == nil {
		return // acked; the timer outlived its frame
	}
	if fr.attempt >= fs.plan.MaxRetries {
		panic(fmt.Sprintf("fabric: reliable delivery gave up: %d->%d seq %d (kind %d) unacked after %d attempts",
			rt.from, rt.to, rt.seq, fr.msg.Kind, fr.attempt+1))
	}
	fr.attempt++
	fs.stats.Retransmits++
	n := fs.n
	total := n.account(rt.from, fr.msg.Size)
	n.tr.Retransmit(at, rt.from, rt.to, fr.msg.Kind, fr.attempt)
	cost := n.cm.MsgCost(total)
	n.tr.Recovery(at, rt.from, cost)
	n.procs[rt.from].InjectWork(cost)
	fs.attempt(at+cost, fr, nil)
}

// arrive handles a reliable-sublayer frame reaching its destination: discard
// duplicates, park out-of-order frames, deliver in-order ones (draining the
// reorder buffer behind them), and ack what we have so the sender's
// retransmission clock stops.
func (fs *faultState) arrive(fl *flight, at sim.Time) {
	n := fs.n
	m := fl.msg
	from, to, seq := m.From, m.To, fl.seq
	lk := fs.link(from, to)
	switch {
	case seq < lk.deliverSeq || lk.holds(seq):
		fs.stats.DupsDropped++
		n.tr.DupDrop(at, from, to, m.Kind)
		n.release(fl)
	case seq != lk.deliverSeq:
		fs.stats.OutOfOrder++
		lk.insert(heldFrame{seq: seq, msg: m, reply: fl.reply, nominal: fl.nominal})
		n.release(fl)
	default:
		lk.deliverSeq++
		fs.deliver(fl, at)
		for len(lk.held) > 0 && lk.held[0].seq == lk.deliverSeq {
			hf := lk.held[0]
			copy(lk.held, lk.held[1:])
			lk.held = lk.held[:len(lk.held)-1]
			lk.deliverSeq++
			nfl := n.newFlight(hf.msg)
			nfl.reply = hf.reply
			nfl.nominal = hf.nominal
			fs.deliver(nfl, at)
		}
	}
	// The ack carries the link's updated cumulative edge plus the specific
	// sequence that just arrived (so a buffered out-of-order frame is acked
	// too, stopping its retransmission).
	fs.sendAck(at, from, to, seq)
}

// deliver hands one in-order frame to its destination — the handler for
// requests, the waiting caller for replies — accounting the recovery delay
// against the frame's fault-free arrival time.
func (fs *faultState) deliver(fl *flight, at sim.Time) {
	if at > fl.nominal {
		fs.stats.RecoveryWait += at - fl.nominal
		fs.n.tr.Recovery(at, fl.msg.To, at-fl.nominal)
	}
	fl.rel = false
	fl.Fire(at)
}

// ackTimer is one in-flight acknowledgement for the data link from->to:
// below is the receiver's cumulative delivery edge (everything before it has
// been delivered), got the specific sequence that triggered the ack.
type ackTimer struct {
	fs       *faultState
	from, to int
	below    uint32
	got      uint32
}

// Fire lands the ack at the data sender: every frame covered by it leaves
// the unacked window, so its pending retransmission timers become no-ops.
func (ak *ackTimer) Fire(at sim.Time) {
	fs := ak.fs
	lk := fs.link(ak.from, ak.to)
	fs.n.tr.Ack(at, ak.to, ak.from, int(ak.got))
	for seq := range lk.unacked {
		if seq < ak.below || seq == ak.got {
			delete(lk.unacked, seq)
		}
	}
}

// sendAck emits the acknowledgement for a frame that just arrived on the
// data link from->to. Acks are NIC-level control frames: they consume no
// processor CPU and no sequence numbers, travel back after one wire latency,
// are subject to the same loss and delay injection as data (a lost ack is
// repaired by the data retransmission provoking a fresh one), and are
// idempotent, so they need no reliability of their own.
func (fs *faultState) sendAck(at sim.Time, from, to int, got uint32) {
	lk := fs.link(from, to)
	fs.stats.Acks++
	lk.ackDraw++
	draw := lk.ackDraw
	if fs.plan.Drop > 0 && fs.roll(pAckDrop, at, from, to, got, int(draw)) < fs.plan.Drop {
		fs.stats.AcksLost++
		return
	}
	var delay sim.Time
	if fs.plan.Delay > 0 && fs.roll(pAckDelayHit, at, from, to, got, int(draw)) < fs.plan.Delay {
		delay = 1 + sim.Time(fs.roll(pAckDelayAmt, at, from, to, got, int(draw))*float64(fs.plan.DelayMax))
	}
	fs.n.sim.ScheduleTimer(at+fs.n.cm.WireLatency+delay,
		&ackTimer{fs: fs, from: from, to: to, below: lk.deliverSeq, got: got})
}

// EnableFaults switches the network onto the seeded fault plan and enables
// the reliable-delivery sublayer for every directed link. Must be called
// before the simulation starts. The plan is validated and normalized
// (defaults filled in); with faults off the fabric stays event-for-event
// identical to the fault-free seed.
func (n *Network) EnableFaults(plan FaultPlan) error {
	if err := plan.Validate(); err != nil {
		return err
	}
	if n.topo != nil {
		return fmt.Errorf("fabric: fault plan cannot be combined with a topology")
	}
	np := len(n.procs)
	n.faults = &faultState{
		n:      n,
		plan:   plan.withDefaults(),
		nprocs: np,
		links:  make([]relLink, np*np),
	}
	return nil
}

// FaultsEnabled reports whether a fault plan is active.
func (n *Network) FaultsEnabled() bool { return n.faults != nil }

// FaultStats returns the fault-injection and recovery counters (zero-valued
// with faults off).
func (n *Network) FaultStats() FaultStats {
	if n.faults == nil {
		return FaultStats{}
	}
	return n.faults.stats
}
