package fabric

// PayloadKind tags which variant of the Payload union a message carries. The
// set is closed: every protocol message in the system is one of these, which
// is what lets a Msg travel as a plain value with no interface boxing on the
// delivery path (see DESIGN.md, "Event loop & messaging").
type PayloadKind uint8

const (
	// PayloadNone marks an empty payload (pure-synchronization messages,
	// acknowledgements, EC barrier traffic).
	PayloadNone PayloadKind = iota
	// PayloadLockReq is a lock acquire request. Slots: A = lock id,
	// B = acquire mode, Flag2 = routed-via-manager; the consistency portion
	// is model-specific (EC: C = incarnation, D = binding version,
	// Flag = acquire-for-rebind; LRC: Vec = interval vector).
	PayloadLockReq
	// PayloadLockGrant is a lock grant reply. EC: C = owner incarnation,
	// D = binding version, Body = update-protocol data; LRC: Vec = granter
	// vector, Body = write-notice set.
	PayloadLockGrant
	// PayloadBarrier is a barrier arrival or departure. Slots: A = barrier
	// id; LRC adds Vec = sender vector and Body = write-notice set.
	PayloadBarrier
	// PayloadPageReq is an LRC data fetch for one page. Slots: A = page,
	// B = highest interval already applied, C = highest interval requested.
	PayloadPageReq
	// PayloadPageReply answers a page request. Body carries the diffs or
	// timestamp-selected runs.
	PayloadPageReply
	// PayloadNoticeSet tags a write-notice-set Body (LRC interval records);
	// it rides inside lock grants and barrier payloads, never alone.
	PayloadNoticeSet
)

// String names the payload kind for taxonomy tables and test failures.
func (k PayloadKind) String() string {
	switch k {
	case PayloadNone:
		return "none"
	case PayloadLockReq:
		return "lock-req"
	case PayloadLockGrant:
		return "lock-grant"
	case PayloadBarrier:
		return "barrier"
	case PayloadPageReq:
		return "page-req"
	case PayloadPageReply:
		return "page-reply"
	case PayloadNoticeSet:
		return "notice-set"
	}
	return "?"
}

// Body is the sealed extension point for payload variants too large for the
// union's inline slots (grant data, diffs, write-notice sets). Implementations
// are pointer types owned by the protocol packages, so carrying one in a
// Payload stores a pointer and never boxes a value.
type Body interface {
	// BodyKind identifies the variant, for round-trip tests and debugging.
	BodyKind() PayloadKind
}

// Payload is the typed body of a Msg: a small value-struct union in place of
// the previous `any` payload, so posting and delivering a message moves plain
// values and allocates nothing. Which fields are meaningful is fixed per
// PayloadKind (documented on the constants); unused slots stay zero. The
// synchronization managers own the A, B and Flag2 slots of the kinds they
// wrap, and the consistency hooks own C, D, Flag, Vec and Body — see
// syncmgr's LockHooks.
type Payload struct {
	Kind PayloadKind
	// A, B, C, D are the inline scalar slots (ids, interval bounds,
	// incarnation numbers).
	A, B, C, D int32
	// Flag and Flag2 are the inline boolean slots.
	Flag, Flag2 bool
	// Vec is the inline vector slot (interval/version vectors).
	Vec []int32
	// Body points at a protocol-owned variant for payloads that carry bulk
	// protocol data; nil otherwise.
	Body Body
}
