package fabric

import (
	"strings"
	"testing"

	"ecvslrc/internal/sim"
)

func TestTopologyValidate(t *testing.T) {
	cases := []struct {
		name string
		topo Topology
		want string // substring of the error, "" for valid
	}{
		{"valid-minimal", Topology{Radix: 2, Taper: 1}, ""},
		{"valid-full", Topology{Radix: 8, Taper: 4, StageLatency: sim.Microsecond, ForcedStages: 3}, ""},
		{"radix-one", Topology{Radix: 1, Taper: 1}, "radix 1 < 2"},
		{"radix-zero", Topology{Radix: 0, Taper: 1}, "radix 0 < 2"},
		{"radix-negative", Topology{Radix: -4, Taper: 1}, "radix -4 < 2"},
		{"taper-below-one", Topology{Radix: 4, Taper: 0.5}, "taper 0.5 outside"},
		{"taper-above-radix", Topology{Radix: 4, Taper: 4.5}, "taper 4.5 outside"},
		{"taper-zero", Topology{Radix: 4, Taper: 0}, "taper 0 outside"},
		{"negative-stage-latency", Topology{Radix: 4, Taper: 1, StageLatency: -1}, "negative stage latency"},
		{"stages-negative", Topology{Radix: 4, Taper: 1, ForcedStages: -1}, "stages -1 outside"},
		{"stages-too-many", Topology{Radix: 2, Taper: 1, ForcedStages: 17}, "stages 17 outside"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.topo.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestTopologyStages(t *testing.T) {
	cases := []struct {
		topo   Topology
		nprocs int
		want   int
	}{
		{Topology{Radix: 2, Taper: 1}, 8, 3},
		{Topology{Radix: 2, Taper: 1}, 9, 4},
		{Topology{Radix: 4, Taper: 1}, 64, 3},
		{Topology{Radix: 16, Taper: 1}, 8, 1},
		{Topology{Radix: 16, Taper: 1}, 1024, 3},
		{Topology{Radix: 2, Taper: 1, ForcedStages: 5}, 8, 5},
	}
	for _, tc := range cases {
		if got := tc.topo.Stages(tc.nprocs); got != tc.want {
			t.Errorf("%+v.Stages(%d) = %d, want %d", tc.topo, tc.nprocs, got, tc.want)
		}
	}
}

func TestTopologyString(t *testing.T) {
	cases := []struct {
		topo Topology
		want string
	}{
		{Topology{Radix: 8, Taper: 1}, "clos:radix=8"},
		{Topology{Radix: 8, Taper: 2}, "clos:radix=8:taper=2"},
		{Topology{Radix: 4, Taper: 1, ForcedStages: 2}, "clos:radix=4:stages=2"},
		{Topology{Radix: 4, Taper: 4, ForcedStages: 1}, "clos:radix=4:taper=4:stages=1"},
	}
	for _, tc := range cases {
		if got := tc.topo.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

// TestTopologyLatencyClimbsLCA pins the per-stage latency model: a message
// pays 2*level*StageLatency of wire time, where level is the lowest common
// switch of the endpoints.
func TestTopologyLatencyClimbsLCA(t *testing.T) {
	for _, tc := range []struct {
		to   int
		want sim.Time // wire component
	}{
		{1, 100 * sim.Microsecond}, // same first-level switch: up 1, down 1
		{2, 200 * sim.Microsecond}, // siblings' parent: up 2, down 2
		{5, 300 * sim.Microsecond}, // across the root of an 8-leaf radix-2 tree
	} {
		s := sim.New()
		n := New(s, flatCost(), 8)
		if err := n.EnableTopology(Topology{Radix: 2, Taper: 1, StageLatency: 50 * sim.Microsecond}); err != nil {
			t.Fatal(err)
		}
		var arriveAt sim.Time
		p0 := s.Spawn("p0", func(p *sim.Proc) {
			n.Send(p, tc.to, 7, 8, Payload{})
		})
		procs := []*sim.Proc{p0}
		for i := 1; i < 8; i++ {
			procs = append(procs, s.Spawn("p", func(p *sim.Proc) {}))
		}
		for i, p := range procs {
			i, p := i, p
			n.Attach(p, func(hc *HandlerCtx, m Msg) {
				if i != tc.to {
					t.Errorf("processor %d got a message addressed to %d", i, tc.to)
				}
				arriveAt = hc.Now() - n.cm.HandlerFixed
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		// 100µs programmed send, then the switch traversal.
		if want := 100*sim.Microsecond + tc.want; arriveAt != want {
			t.Errorf("to=%d: arrival = %v, want %v", tc.to, arriveAt, want)
		}
	}
}

// TestTopologyTaperSerializes pins tapered contention: with Taper == Radix
// every level runs at single-link speed, so two transfers crossing the same
// top-level switch serialize; with Taper == 1 (full bisection) the level's
// aggregate capacity scales and the same transfers overlap, strictly faster.
func TestTopologyTaperSerializes(t *testing.T) {
	finish := func(taper float64) sim.Time {
		s := sim.New()
		cm := flatCost()
		cm.LinkPerByte = 100 * sim.Nanosecond
		n := New(s, cm, 4)
		n.EnableContention()
		if err := n.EnableTopology(Topology{Radix: 2, Taper: taper, StageLatency: 50 * sim.Microsecond}); err != nil {
			t.Fatal(err)
		}
		var last sim.Time
		mk := func(from, to int) *sim.Proc {
			return s.Spawn("sender", func(p *sim.Proc) {
				if from == p.ID() {
					n.Send(p, to, 7, 4096, Payload{})
				}
			})
		}
		procs := []*sim.Proc{mk(0, 2), mk(1, 3), mk(2, 0), mk(3, 0)}
		for _, p := range procs {
			n.Attach(p, func(hc *HandlerCtx, m Msg) {
				if hc.Now() > last {
					last = hc.Now()
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	serial := finish(2) // taper == radix: single-link speed at every level
	overlap := finish(1)
	if overlap >= serial {
		t.Errorf("full-bisection finish %v not faster than tapered %v", overlap, serial)
	}
}
