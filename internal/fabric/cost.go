// Package fabric models the paper's communication substrate: a 100-Mbps
// point-to-point ATM LAN connecting 8 DECstation-5000/240 workstations, with
// AAL3/4 messaging, programmed I/O, SIGIO-driven request handling, and
// mprotect/SIGSEGV memory protection. Messages are one-way datagrams with a
// size-dependent cost; incoming requests run as handlers that steal CPU time
// from the receiving processor, exactly like the signal handlers in
// TreadMarks and Midway.
package fabric

import "ecvslrc/internal/sim"

// CostModel collects every platform constant used by the simulation. The
// defaults are calibrated to the paper's environment (40 MHz DECstation CPUs,
// Fore ATM interfaces with programmed I/O, Ultrix signal handling); see
// EXPERIMENTS.md for the calibration notes. All values are simulated time.
type CostModel struct {
	// SendFixed is the fixed CPU cost of assembling and transmitting a
	// message (system call, AAL3/4 fragmentation setup, FIFO programming).
	SendFixed sim.Time
	// SendPerByte is the per-byte CPU cost of programmed I/O into the
	// transmit FIFO plus wire time at ~10 MB/s effective bandwidth.
	SendPerByte sim.Time
	// WireLatency is the switch+interrupt latency between the end of the
	// send and the start of handler execution at the receiver.
	WireLatency sim.Time
	// HandlerFixed is the fixed cost of fielding the SIGIO interrupt,
	// reassembling the message and dispatching the request handler.
	HandlerFixed sim.Time

	// ProtFault is the cost of a protection fault: SIGSEGV delivery,
	// handler entry, and resumption under Ultrix.
	ProtFault sim.Time
	// MProtect is the cost of one mprotect call on one page.
	MProtect sim.Time

	// InstrStore is the per-store cost of the compiler-emitted dirty-bit
	// code (vector to the region's template code and set the bit).
	InstrStore sim.Time
	// InstrStoreOpt is the per-store cost after the loop-splitting
	// optimization of Section 4.1 (dirty-bit setting hoisted into its own
	// loop, improving cache behaviour).
	InstrStoreOpt sim.Time
	// WordCopy is the per-word cost of making a twin.
	WordCopy sim.Time
	// WordCompare is the per-word cost of comparing data against its twin
	// during diff creation or timestamp stamping.
	WordCompare sim.Time
	// WordScan is the per-word cost of scanning timestamps or dirty bits
	// during write collection.
	WordScan sim.Time
	// WordApply is the per-word cost of applying received data (diff or
	// timestamp runs) to local memory.
	WordApply sim.Time

	// LinkPerByte is the occupancy per byte of the shared ATM link/switch
	// path. It is consulted only when contention mode is enabled on the
	// Network (see Network.EnableContention): a message then holds the link
	// for Size*LinkPerByte before its WireLatency starts, and concurrent
	// bulk transfers queue instead of overlapping for free.
	LinkPerByte sim.Time
}

// DefaultCostModel returns the calibrated cost model for the paper's
// platform. A 40 MHz DECstation executes roughly one instruction per 25 ns;
// word-granularity software overheads are small multiples of that. Messaging
// constants reflect the user-level AAL3/4 protocol the paper describes
// (hundreds of microseconds per small message, ~10 MB/s for bulk data).
func DefaultCostModel() CostModel {
	return CostModel{
		// A minimal user-level AAL3/4 message cost ~0.5 ms of software time
		// each way on this platform (TreadMarks reported ~1 ms remote lock
		// acquisitions and ~2 ms 8-processor barriers).
		SendFixed:    250 * sim.Microsecond,
		SendPerByte:  90 * sim.Nanosecond, // ≈ 11 MB/s effective
		WireLatency:  100 * sim.Microsecond,
		HandlerFixed: 150 * sim.Microsecond,
		ProtFault:    120 * sim.Microsecond,
		MProtect:     30 * sim.Microsecond,
		// Setting a software dirty bit costs ~10-20 cycles at 40 MHz
		// (vector to the region template, compute the bit address, set
		// it); the loop-splitting optimization of Section 4.1 roughly
		// halves it. The hierarchical LRC scheme adds half again.
		InstrStore:    450 * sim.Nanosecond,
		InstrStoreOpt: 260 * sim.Nanosecond,
		WordCopy:      50 * sim.Nanosecond,
		WordCompare:   75 * sim.Nanosecond,
		WordScan:      50 * sim.Nanosecond,
		WordApply:     50 * sim.Nanosecond,
		// 100 Mbps raw ATM is 12.5 MB/s on the shared path; only contention
		// mode charges this (the uncontended wire share is already folded
		// into SendPerByte).
		LinkPerByte: 80 * sim.Nanosecond,
	}
}

// MsgCost returns the sender-side cost of transmitting size payload bytes.
func (cm *CostModel) MsgCost(size int) sim.Time {
	return cm.SendFixed + sim.Time(size)*cm.SendPerByte
}

// MsgHeader is the framing overhead charged to every message, covering ATM
// cell headers and the operation-specific user-level protocol header.
const MsgHeader = 32
