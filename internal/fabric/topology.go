package fabric

import (
	"fmt"
	"strings"

	"ecvslrc/internal/sim"
)

// Topology models the interconnect as a folded-Clos (fat-tree) hierarchy of
// switches instead of the default flat shared link. Processors are leaves;
// Radix consecutive leaves share a first-level switch, Radix first-level
// switches share a second-level switch, and so on. A message between
// processors i and j climbs to their lowest common switch level and back
// down, paying StageLatency per stage each way; under contention it occupies
// that level's subtree resource, whose bandwidth tapers with height.
//
// The flat link remains the calibrated 1996 ATM model and stays bit-exact
// when no Topology is enabled. At 256-1024 processors a flat link is
// meaningless — every barrier would serialize the whole machine through one
// resource — so `-scale large` sweeps enable a Clos model via the `topo=`
// variant axis (internal/sweep.ParseTopologySpec).
type Topology struct {
	// Radix is the switch radix: leaves (or subtrees) per switch, >= 2.
	Radix int
	// Taper is the per-level bandwidth taper, in [1, Radix]: crossing level
	// l gives the message (Radix/Taper)^(l-1) times the single-link
	// bandwidth. Taper 1 models full bisection bandwidth (each level
	// aggregates its children's capacity); Taper == Radix degrades every
	// level to single-link speed — with a single stage that is exactly the
	// flat shared link, which TestTopologySingleStageIdentity pins.
	Taper float64
	// StageLatency is the one-way per-stage switch traversal time; 0 picks
	// WireLatency/2 so a single-stage crossing (up one, down one) costs
	// exactly the flat model's WireLatency.
	StageLatency sim.Time
	// ForcedStages, when > 0, fixes the switch-level count instead of
	// deriving ceil(log_Radix nprocs). Levels above the derived need are
	// harmless (no pair reaches them); fewer levels cap the climb.
	ForcedStages int
}

// maxTopologyStages bounds ForcedStages: 16 levels of radix 2 already
// address 65,536 processors, far past the simulated machine.
const maxTopologyStages = 16

// Validate rejects degenerate switch geometries.
func (t Topology) Validate() error {
	if t.Radix < 2 {
		return fmt.Errorf("fabric: topology radix %d < 2", t.Radix)
	}
	if t.Taper < 1 || t.Taper > float64(t.Radix) {
		return fmt.Errorf("fabric: topology taper %g outside [1, radix=%d]", t.Taper, t.Radix)
	}
	if t.StageLatency < 0 {
		return fmt.Errorf("fabric: negative stage latency %v", t.StageLatency)
	}
	if t.ForcedStages < 0 || t.ForcedStages > maxTopologyStages {
		return fmt.Errorf("fabric: topology stages %d outside [0, %d]", t.ForcedStages, maxTopologyStages)
	}
	return nil
}

// Stages returns the switch-level count for an nprocs-leaf machine.
func (t Topology) Stages(nprocs int) int {
	if t.ForcedStages > 0 {
		return t.ForcedStages
	}
	stages, span := 1, t.Radix
	for span < nprocs && stages < maxTopologyStages {
		stages++
		span *= t.Radix
	}
	return stages
}

// String renders the canonical spec form parsed by sweep.ParseTopologySpec.
func (t Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "clos:radix=%d", t.Radix)
	if t.Taper != 1 {
		fmt.Fprintf(&b, ":taper=%g", t.Taper)
	}
	if t.ForcedStages > 0 {
		fmt.Fprintf(&b, ":stages=%d", t.ForcedStages)
	}
	return b.String()
}

// topoState is the network's resolved topology: the per-(level, group)
// contention resources and the precomputed radix powers.
type topoState struct {
	t      Topology
	stage  sim.Time   // resolved per-stage latency
	pow    []int      // pow[l] = Radix^l, l in [0, stages]
	off    []int      // resource index offset of level l+1's groups
	free   []sim.Time // next-idle time per (level, group) resource
	speedr []float64  // per-level occupancy divisor (Radix/Taper)^(l-1)
}

// EnableTopology replaces the flat shared link with the folded-Clos model:
// message latency becomes 2*level*StageLatency (level = lowest common switch
// of the endpoints) and, when contention is also enabled, each message
// serializes on its crossing level's subtree resource with tapered
// bandwidth. Must be called before the simulation starts. Topology composes
// with contention but not with fault plans: the reliable sublayer's
// retransmission timing is calibrated against the flat link.
func (n *Network) EnableTopology(t Topology) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if n.faults != nil {
		return fmt.Errorf("fabric: topology cannot be combined with a fault plan")
	}
	nprocs := len(n.procs)
	stages := t.Stages(nprocs)
	ts := &topoState{t: t, stage: t.StageLatency}
	if ts.stage == 0 {
		ts.stage = n.cm.WireLatency / 2
	}
	ts.pow = make([]int, stages+1)
	ts.pow[0] = 1
	for l := 1; l <= stages; l++ {
		ts.pow[l] = ts.pow[l-1] * t.Radix
	}
	ts.off = make([]int, stages)
	ts.speedr = make([]float64, stages)
	resources := 0
	speed := 1.0
	for l := 1; l <= stages; l++ {
		ts.off[l-1] = resources
		resources += (nprocs + ts.pow[l] - 1) / ts.pow[l]
		ts.speedr[l-1] = speed
		speed *= float64(t.Radix) / t.Taper
	}
	ts.free = make([]sim.Time, resources)
	n.topo = ts
	return nil
}

// TopologyEnabled reports whether a switch topology is active.
func (n *Network) TopologyEnabled() bool { return n.topo != nil }

// level returns the lowest common switch level of two distinct processors.
func (ts *topoState) level(i, j int) int {
	l := 1
	for l < len(ts.pow)-1 && i/ts.pow[l] != j/ts.pow[l] {
		l++
	}
	return l
}

// wireLatency is the end-to-end switch traversal time between two endpoints:
// up to the lowest common level and back down.
func (n *Network) wireLatency(from, to int) sim.Time {
	if n.topo == nil {
		return n.cm.WireLatency
	}
	return sim.Time(2*n.topo.level(from, to)) * n.topo.stage
}

// claimTopo occupies the (level, group) resource a message crosses, in
// virtual-time claim order, and returns the time its transfer completes.
// Higher levels divide the per-byte occupancy by the level's aggregate
// speedup, so full-bisection fabrics (Taper 1) never bottleneck on height.
func (n *Network) claimTopo(start sim.Time, from, to, totalBytes int) sim.Time {
	ts := n.topo
	l := ts.level(from, to)
	idx := ts.off[l-1] + from/ts.pow[l]
	if ts.free[idx] > start {
		n.linkWait += ts.free[idx] - start
		n.tr.LinkWait(start, from, ts.free[idx]-start)
		start = ts.free[idx]
	}
	occ := sim.Time(float64(totalBytes) * float64(n.cm.LinkPerByte) / ts.speedr[l-1])
	ts.free[idx] = start + occ
	return ts.free[idx]
}
