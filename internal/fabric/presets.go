package fabric

import (
	"fmt"
	"math"
	"strings"

	"ecvslrc/internal/sim"
)

// The knobs below are the sensitivity axes of the EC-vs-LRC comparison: the
// paper's verdict depends on platform constants (messaging software, wire
// bandwidth, write-detection cost, diff hardware), and each knob moves one
// group of constants while leaving the rest calibrated. They compose: each
// returns a modified copy, so cm.ScaleNetwork(4).HardwareWriteDetection() is
// a valid variant. See EXPERIMENTS.md for the calibration and the axes.

// scaled divides t by k, rounding to the nearest simulated nanosecond.
func scaled(t sim.Time, k float64) sim.Time {
	return sim.Time(math.Round(float64(t) / k))
}

// ScaleNetwork returns a copy with the whole messaging path k times faster:
// fixed send/handler software, per-byte programmed I/O and wire share,
// switch+interrupt latency, and the shared-link occupancy. k=1 is identity;
// k>1 models a faster interconnect (e.g. k=10 approximates gigabit-class
// networking relative to the paper's 100 Mbps ATM).
func (cm CostModel) ScaleNetwork(k float64) CostModel {
	cm.SendFixed = scaled(cm.SendFixed, k)
	cm.SendPerByte = scaled(cm.SendPerByte, k)
	cm.WireLatency = scaled(cm.WireLatency, k)
	cm.HandlerFixed = scaled(cm.HandlerFixed, k)
	cm.LinkPerByte = scaled(cm.LinkPerByte, k)
	return cm
}

// ScaleCPU returns a copy with the memory-management software k times
// faster: protection faults, mprotect, store instrumentation, and the
// per-word twin/compare/scan/apply costs. The messaging path is untouched
// (use ScaleNetwork for it), so CPU and network speed are independent axes.
func (cm CostModel) ScaleCPU(k float64) CostModel {
	cm.ProtFault = scaled(cm.ProtFault, k)
	cm.MProtect = scaled(cm.MProtect, k)
	cm.InstrStore = scaled(cm.InstrStore, k)
	cm.InstrStoreOpt = scaled(cm.InstrStoreOpt, k)
	cm.WordCopy = scaled(cm.WordCopy, k)
	cm.WordCompare = scaled(cm.WordCompare, k)
	cm.WordScan = scaled(cm.WordScan, k)
	cm.WordApply = scaled(cm.WordApply, k)
	return cm
}

// HardwareWriteDetection returns a copy in which write trapping is free, as
// if the memory system maintained per-block dirty bits in hardware: no store
// instrumentation, no protection faults, no mprotect transitions. Collection
// costs (twinning, comparing, scanning) are untouched; combine with
// ZeroCostDiff to model a full hardware diff engine.
func (cm CostModel) HardwareWriteDetection() CostModel {
	cm.InstrStore = 0
	cm.InstrStoreOpt = 0
	cm.ProtFault = 0
	cm.MProtect = 0
	return cm
}

// ZeroCostDiff returns a copy in which write collection is free, as if twin
// creation, word comparison, timestamp scanning and data application were
// performed by hardware (or hidden behind the memory system): the protocols
// still move the same messages and bytes, but pay no per-word CPU time.
func (cm CostModel) ZeroCostDiff() CostModel {
	cm.WordCopy = 0
	cm.WordCompare = 0
	cm.WordScan = 0
	cm.WordApply = 0
	return cm
}

// Preset is a named, documented cost-model variant.
type Preset struct {
	Name string
	Desc string
	Cost CostModel
}

// knobPresets are the knob-composed sensitivity variants: scaled or zeroed
// copies of the calibrated paper platform. The "modern" preset predates the
// platform-model library and is kept for compatibility — prefer the
// registered models (cluster_gbe, rdma_100g, ...) whose constants derive
// from published numbers instead of round-number guesses.
func knobPresets() []Preset {
	base := DefaultCostModel()
	return []Preset{
		{"paper", "calibrated DECstation-5000/240 + 100 Mbps ATM platform", base},
		{"net-x2", "messaging path 2x faster", base.ScaleNetwork(2)},
		{"net-x4", "messaging path 4x faster", base.ScaleNetwork(4)},
		{"cpu-x4", "memory-management software 4x faster", base.ScaleCPU(4)},
		{"hw-detect", "free write trapping (hardware dirty bits)", base.HardwareWriteDetection()},
		{"hw-diff", "free write collection (hardware diff engine)", base.ZeroCostDiff()},
		{"modern", "10x network and 25x CPU, a late-90s cluster (superseded by cluster_gbe)", base.ScaleNetwork(10).ScaleCPU(25)},
	}
}

// registered holds the presets contributed by the platform-model library
// (internal/platform): fabric owns the preset namespace and the lookup, the
// models own their constants. Registration happens at init time from the
// model library package, so the order is deterministic.
var registered []Preset

// RegisterPreset adds a named cost model to the preset table. It is meant
// to be called at init time by a platform-model library; an empty or
// duplicate name is a programming error and panics.
func RegisterPreset(p Preset) {
	if p.Name == "" {
		panic("fabric: RegisterPreset with empty name")
	}
	for _, q := range Presets() {
		if q.Name == p.Name {
			panic(fmt.Sprintf("fabric: duplicate cost preset %q", p.Name))
		}
	}
	registered = append(registered, p)
}

// Presets lists the named cost models: the calibrated paper platform first,
// then the knob-composed sensitivity variants, then every registered
// platform model (see internal/platform). These are the starting points of
// a sensitivity sweep; arbitrary variants compose from the knobs above (see
// sweep.ParseVariantSpec) or from "name+knob" cost specs (platform.Resolve).
func Presets() []Preset {
	return append(knobPresets(), registered...)
}

// PresetByName resolves a named preset; unknown names are reported with the
// valid set.
func PresetByName(name string) (CostModel, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p.Cost, nil
		}
	}
	return CostModel{}, fmt.Errorf("fabric: unknown cost preset %q (valid: %s)",
		name, strings.Join(PresetNames(), ", "))
}

// PresetNames lists the preset names in Presets order.
func PresetNames() []string {
	var out []string
	for _, p := range Presets() {
		out = append(out, p.Name)
	}
	return out
}
