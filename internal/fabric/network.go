package fabric

import (
	"fmt"

	"ecvslrc/internal/sim"
)

// Msg is one ATM message. Size is the payload size in bytes; MsgHeader is
// added automatically for cost and statistics purposes.
type Msg struct {
	From    int
	To      int
	Kind    int
	Size    int
	Payload any

	waiter *sim.Waiter // reply rendezvous for Call; nil for one-way messages
}

// Handler services an incoming request at a processor, in the role of the
// paper's SIGIO signal handler: it runs at message-arrival time, consumes CPU
// of the hosting processor, and may send or reply via the HandlerCtx.
type Handler func(hc *HandlerCtx, m Msg)

// Stats counts the traffic originated by one processor.
type Stats struct {
	Msgs  int64
	Bytes int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Msgs += other.Msgs
	s.Bytes += other.Bytes
}

// Sub returns s minus other, used for measurement windows.
func (s Stats) Sub(other Stats) Stats {
	return Stats{Msgs: s.Msgs - other.Msgs, Bytes: s.Bytes - other.Bytes}
}

// Network is the simulated ATM LAN. Every processor attaches one endpoint
// (its sim.Proc plus a request handler). Messages between distinct processors
// cost sender CPU time, wire latency and receiver handler time; a processor
// never sends a message to itself (protocol code must special-case local
// managers, as the real systems do).
type Network struct {
	sim      *sim.Simulator
	cm       CostModel
	procs    []*sim.Proc
	handlers []Handler
	stats    []Stats

	// Shared-link contention (opt-in; see EnableContention). linkFree is the
	// virtual time at which the shared ATM path next becomes idle; linkWait
	// accumulates the queueing delay messages suffered behind it.
	contention bool
	linkFree   sim.Time
	linkWait   sim.Time
}

// New returns a network over s for nprocs processors using cost model cm.
func New(s *sim.Simulator, cm CostModel, nprocs int) *Network {
	return &Network{
		sim:      s,
		cm:       cm,
		procs:    make([]*sim.Proc, nprocs),
		handlers: make([]Handler, nprocs),
		stats:    make([]Stats, nprocs),
	}
}

// Cost returns the network's cost model.
func (n *Network) Cost() *CostModel { return &n.cm }

// EnableContention switches on shared-link contention: every message must
// additionally occupy the shared ATM link/switch path for
// (size+header)*LinkPerByte after the sender's programmed I/O completes, and
// the link serves one message at a time in send order. With contention off
// (the default) transfers overlap for free and all outputs are byte-identical
// to the calibrated model. Must be called before the simulation starts.
func (n *Network) EnableContention() { n.contention = true }

// ContentionEnabled reports whether shared-link contention is modeled.
func (n *Network) ContentionEnabled() bool { return n.contention }

// LinkWait returns the total queueing delay messages spent waiting for the
// shared link (always zero with contention off).
func (n *Network) LinkWait() sim.Time { return n.linkWait }

// transmit moves a message of total bytes whose sender-side processing ends
// at sendEnd to its receiver, invoking deliver with the arrival time. Without
// contention the message arrives WireLatency after sendEnd, scheduled
// directly (the pre-contention event pattern, kept bit-identical). With
// contention the message first claims the shared link at sendEnd — claims are
// processed in virtual-time order because they are themselves events — holds
// it for total*LinkPerByte, and only then starts its WireLatency.
func (n *Network) transmit(sendEnd sim.Time, total int, deliver func(arrive sim.Time)) {
	if !n.contention {
		arrive := sendEnd + n.cm.WireLatency
		n.sim.Schedule(arrive, func() { deliver(arrive) })
		return
	}
	n.sim.Schedule(sendEnd, func() {
		start := sendEnd
		if n.linkFree > start {
			n.linkWait += n.linkFree - start
			start = n.linkFree
		}
		n.linkFree = start + sim.Time(total)*n.cm.LinkPerByte
		arrive := n.linkFree + n.cm.WireLatency
		n.sim.Schedule(arrive, func() { deliver(arrive) })
	})
}

// Attach registers proc (with request handler h) as processor proc.ID().
func (n *Network) Attach(p *sim.Proc, h Handler) {
	n.procs[p.ID()] = p
	n.handlers[p.ID()] = h
}

// ProcStats returns the traffic counters for processor id.
func (n *Network) ProcStats(id int) Stats { return n.stats[id] }

// Snapshot copies all per-processor counters.
func (n *Network) Snapshot() []Stats {
	out := make([]Stats, len(n.stats))
	copy(out, n.stats)
	return out
}

// Total sums traffic over all processors.
func (n *Network) Total() Stats {
	var t Stats
	for _, s := range n.stats {
		t.Add(s)
	}
	return t
}

func (n *Network) account(from, size int) int {
	total := size + MsgHeader
	n.stats[from].Msgs++
	n.stats[from].Bytes += int64(total)
	return total
}

// Send transmits a one-way message from the running processor p. The sender
// is busy for the programmed-I/O cost of the message.
func (n *Network) Send(p *sim.Proc, to, kind, size int, payload any) {
	n.post(p, Msg{From: p.ID(), To: to, Kind: kind, Size: size, Payload: payload})
}

// Call transmits a request from the running processor p and blocks until the
// matching Reply arrives, returning the reply message. The remote handler may
// reply immediately, forward the request, or queue it and reply much later.
// The rendezvous reuses p's cached waiter: a processor has at most one
// synchronous call outstanding.
func (n *Network) Call(p *sim.Proc, to, kind, size int, payload any) Msg {
	w := p.CallWaiter()
	n.post(p, Msg{From: p.ID(), To: to, Kind: kind, Size: size, Payload: payload, waiter: w})
	return w.Wait("rpc-reply").(Msg)
}

// CallAsync transmits a request and returns the reply Waiter without
// blocking, so a processor can issue several requests in parallel (as
// TreadMarks does for diff fetches) and then await all replies.
func (n *Network) CallAsync(p *sim.Proc, to, kind, size int, payload any) *sim.Waiter {
	w := sim.NewWaiter(p)
	n.post(p, Msg{From: p.ID(), To: to, Kind: kind, Size: size, Payload: payload, waiter: w})
	return w
}

// post charges the running sender and schedules delivery.
func (n *Network) post(p *sim.Proc, m Msg) {
	if m.To == p.ID() {
		panic(fmt.Sprintf("fabric: proc %d sending to itself (kind %d)", m.To, m.Kind))
	}
	if m.To < 0 || m.To >= len(n.procs) {
		panic(fmt.Sprintf("fabric: bad destination %d", m.To))
	}
	total := n.account(p.ID(), m.Size)
	p.Sleep(n.cm.MsgCost(total))
	n.transmit(p.Now(), total, func(arrive sim.Time) { n.deliver(m, arrive) })
}

// ForwardFrom re-addresses request req to another processor from process
// context, preserving the original requester's reply path.
func (n *Network) ForwardFrom(p *sim.Proc, req Msg, to int, extraSize int) {
	if to == p.ID() {
		panic("fabric: forwarding to self")
	}
	fwd := req
	fwd.To = to
	fwd.Size += extraSize
	total := n.account(p.ID(), fwd.Size)
	p.Sleep(n.cm.MsgCost(total))
	n.transmit(p.Now(), total, func(arrive sim.Time) { n.deliver(fwd, arrive) })
}

// ReplyFrom sends the reply to request req from the running processor p.
// Used when a request was queued by a handler and is granted later from
// process context (e.g. a lock released while others are waiting).
func (n *Network) ReplyFrom(p *sim.Proc, req Msg, kind, size int, payload any) {
	if req.waiter == nil {
		panic("fabric: ReplyFrom for a one-way message")
	}
	if req.From == p.ID() {
		panic("fabric: replying to self")
	}
	total := n.account(p.ID(), size)
	p.Sleep(n.cm.MsgCost(total))
	reply := Msg{From: p.ID(), To: req.From, Kind: kind, Size: size, Payload: payload}
	n.transmit(p.Now(), total, func(arrive sim.Time) { n.deliverReply(req, reply, arrive) })
}

// deliverReply hands the reply to the waiting caller at arrival time; it runs
// in scheduler context at arrive. Reply handling interrupts the receiver like
// any message.
func (n *Network) deliverReply(req Msg, reply Msg, arrive sim.Time) {
	n.procs[reply.To].InjectWork(n.cm.HandlerFixed)
	req.waiter.Deliver(reply, arrive+n.cm.HandlerFixed)
}

// deliver runs the destination's request handler at arrival time, charging
// handler CPU to the destination processor.
func (n *Network) deliver(m Msg, at sim.Time) {
	if m.waiter != nil && m.Kind < 0 {
		panic("fabric: negative kinds are reserved")
	}
	hc := &HandlerCtx{n: n, self: m.To, at: at, busy: n.cm.HandlerFixed}
	h := n.handlers[m.To]
	if h == nil {
		panic(fmt.Sprintf("fabric: no handler attached for proc %d", m.To))
	}
	h(hc, m)
	n.procs[m.To].InjectWork(hc.busy)
}

// HandlerCtx is the execution context of a request handler. All time
// consumed through it (fixed handler cost, Work, message sends) is charged to
// the hosting processor after the handler returns.
type HandlerCtx struct {
	n    *Network
	self int
	at   sim.Time
	busy sim.Time
}

// Self returns the processor the handler is running on.
func (hc *HandlerCtx) Self() int { return hc.self }

// Now returns the handler's current virtual time (arrival plus work so far).
func (hc *HandlerCtx) Now() sim.Time { return hc.at + hc.busy }

// Work charges d of CPU time inside the handler (e.g. a timestamp scan or a
// diff creation performed while servicing the request).
func (hc *HandlerCtx) Work(d sim.Time) { hc.busy += d }

// Send transmits a one-way message from within the handler.
func (hc *HandlerCtx) Send(to, kind, size int, payload any) {
	if to == hc.self {
		panic("fabric: handler sending to self")
	}
	total := hc.n.account(hc.self, size)
	hc.busy += hc.n.cm.MsgCost(total)
	m := Msg{From: hc.self, To: to, Kind: kind, Size: size, Payload: payload}
	hc.n.transmit(hc.at+hc.busy, total, func(arrive sim.Time) { hc.n.deliver(m, arrive) })
}

// Reply answers request req from within the handler.
func (hc *HandlerCtx) Reply(req Msg, kind, size int, payload any) {
	if req.waiter == nil {
		panic("fabric: Reply to a one-way message")
	}
	total := hc.n.account(hc.self, size)
	hc.busy += hc.n.cm.MsgCost(total)
	reply := Msg{From: hc.self, To: req.From, Kind: kind, Size: size, Payload: payload}
	hc.n.transmit(hc.at+hc.busy, total, func(arrive sim.Time) { hc.n.deliverReply(req, reply, arrive) })
}

// Forward re-addresses request req to another processor, preserving the
// original requester's reply path (the manager-forwarding pattern of
// Section 6). extraSize is added to the forwarded payload size.
func (hc *HandlerCtx) Forward(req Msg, to int, extraSize int) {
	if to == hc.self {
		panic("fabric: forwarding to self")
	}
	fwd := req
	fwd.To = to
	fwd.Size += extraSize
	total := hc.n.account(hc.self, fwd.Size)
	hc.busy += hc.n.cm.MsgCost(total)
	hc.n.transmit(hc.at+hc.busy, total, func(arrive sim.Time) { hc.n.deliver(fwd, arrive) })
}

// LocalReply delivers a reply to a request that was queued earlier by this
// same processor's handler and is being granted from handler context now.
func (hc *HandlerCtx) LocalReply(req Msg, kind, size int, payload any) {
	hc.Reply(req, kind, size, payload)
}
