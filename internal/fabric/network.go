package fabric

import (
	"fmt"

	"ecvslrc/internal/sim"
	"ecvslrc/internal/trace"
)

// Msg is one ATM message. Size is the payload size in bytes; MsgHeader is
// added automatically for cost and statistics purposes. Msg is a plain value:
// the typed Payload union replaces the former `any` payload, so queuing,
// forwarding and delivering a message never allocates.
type Msg struct {
	From    int
	To      int
	Kind    int
	Size    int
	Payload Payload

	waiter *sim.Waiter // reply rendezvous for Call; nil for one-way messages
}

// Handler services an incoming request at a processor, in the role of the
// paper's SIGIO signal handler: it runs at message-arrival time, consumes CPU
// of the hosting processor, and may send or reply via the HandlerCtx.
type Handler func(hc *HandlerCtx, m Msg)

// Stats counts the traffic originated by one processor.
type Stats struct {
	Msgs  int64
	Bytes int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Msgs += other.Msgs
	s.Bytes += other.Bytes
}

// Sub returns s minus other, used for measurement windows.
func (s Stats) Sub(other Stats) Stats {
	return Stats{Msgs: s.Msgs - other.Msgs, Bytes: s.Bytes - other.Bytes}
}

// flight is one in-transit message: the slot that carries a Msg from the
// sender's schedule to its arrival. A flight is the sim.Timer target of its
// own delivery events (stored inline, no closure), and is recycled through
// the destination link's free list, so steady-state delivery performs zero
// allocations.
type flight struct {
	n     *Network
	msg   Msg
	reply bool // deliver to the request's waiter instead of the handler
	claim bool // contention: the next Fire claims the shared link first

	// Reliable-sublayer fields, used only when a fault plan is active (see
	// faults.go): rel routes the arrival through the receiver's dedup and
	// reorder logic, seq is the frame's per-link sequence number, nominal its
	// fault-free arrival time (for recovery-wait accounting).
	rel     bool
	seq     uint32
	nominal sim.Time
}

// Fire advances the flight one stage: claim the shared link (contention
// mode), then deliver — to the destination handler, or to the waiting
// caller for replies.
func (fl *flight) Fire(at sim.Time) {
	n := fl.n
	if fl.claim {
		// Link claims are events, so they serialize in virtual-time order.
		fl.claim = false
		start := at
		n.tr.LinkClaim(at, fl.msg.From, fl.msg.To, fl.msg.Size+MsgHeader)
		if n.topo != nil {
			done := n.claimTopo(start, fl.msg.From, fl.msg.To, fl.msg.Size+MsgHeader)
			n.sim.ScheduleTimer(done+n.wireLatency(fl.msg.From, fl.msg.To), fl)
			return
		}
		if n.linkFree > start {
			n.linkWait += n.linkFree - start
			n.tr.LinkWait(at, fl.msg.From, n.linkFree-start)
			start = n.linkFree
		}
		n.linkFree = start + sim.Time(fl.msg.Size+MsgHeader)*n.cm.LinkPerByte
		n.sim.ScheduleTimer(n.linkFree+n.cm.WireLatency, fl)
		return
	}
	if fl.rel {
		// Fault mode: the arrival passes through the reliable sublayer
		// (dedup, reorder buffer, ack) before reaching the handler or waiter.
		n.faults.arrive(fl, at)
		return
	}
	if fl.reply {
		// Reply handling interrupts the receiver like any message. The slot
		// is released by Await once the caller has copied the reply out.
		n.tr.Deliver(at, fl.msg.From, fl.msg.To, fl.msg.Kind, fl.msg.Size+MsgHeader)
		n.procs[fl.msg.To].InjectWork(n.cm.HandlerFixed)
		fl.msg.waiter.Deliver(fl, at+n.cm.HandlerFixed)
		return
	}
	m := fl.msg
	n.release(fl)
	n.deliver(m, at)
}

// link is one attachment point: the free list recycling the flight slots of
// messages addressed to this processor.
type link struct {
	free []*flight
}

// Network is the simulated ATM LAN. Every processor attaches one endpoint
// (its sim.Proc plus a request handler). Messages between distinct processors
// cost sender CPU time, wire latency and receiver handler time; a processor
// never sends a message to itself (protocol code must special-case local
// managers, as the real systems do).
type Network struct {
	sim      *sim.Simulator
	cm       CostModel
	procs    []*sim.Proc
	handlers []Handler
	stats    []Stats
	links    []link

	// hctx is the scratch handler context reused across deliveries: handlers
	// run synchronously in scheduler context and never nest, so one lives at
	// a time and delivery allocates nothing.
	hctx HandlerCtx

	// tr records send/deliver/link events for the tracing subsystem. All
	// emit methods are nil-safe, so the disabled path costs one nil check
	// per hook and allocates nothing.
	tr *trace.Tracer

	// Shared-link contention (opt-in; see EnableContention). linkFree is the
	// virtual time at which the shared ATM path next becomes idle; linkWait
	// accumulates the queueing delay messages suffered behind it.
	contention bool
	linkFree   sim.Time
	linkWait   sim.Time

	// faults, when non-nil, is the seeded fault injector plus the
	// reliable-delivery sublayer (see faults.go and EnableFaults). The
	// fault-free path costs one nil check in transmit.
	faults *faultState

	// topo, when non-nil, is the folded-Clos switch model (see topology.go
	// and EnableTopology): per-level latency and, with contention, per-
	// subtree tapered bandwidth instead of one machine-wide link.
	topo *topoState
}

// New returns a network over s for nprocs processors using cost model cm.
func New(s *sim.Simulator, cm CostModel, nprocs int) *Network {
	return &Network{
		sim:      s,
		cm:       cm,
		procs:    make([]*sim.Proc, nprocs),
		handlers: make([]Handler, nprocs),
		stats:    make([]Stats, nprocs),
		links:    make([]link, nprocs),
	}
}

// Cost returns the network's cost model.
func (n *Network) Cost() *CostModel { return &n.cm }

// SetTracer attaches the event tracer (nil to detach). Tracing is
// observation-only: traced runs stay bit-identical to untraced ones.
func (n *Network) SetTracer(tr *trace.Tracer) { n.tr = tr }

// EnableContention switches on shared-link contention: every message must
// additionally occupy the shared ATM link/switch path for
// (size+header)*LinkPerByte after the sender's programmed I/O completes, and
// the link serves one message at a time in send order. With contention off
// (the default) transfers overlap for free and all outputs are byte-identical
// to the calibrated model. Must be called before the simulation starts.
func (n *Network) EnableContention() { n.contention = true }

// ContentionEnabled reports whether shared-link contention is modeled.
func (n *Network) ContentionEnabled() bool { return n.contention }

// LinkWait returns the total queueing delay messages spent waiting for the
// shared link (always zero with contention off).
func (n *Network) LinkWait() sim.Time { return n.linkWait }

// newFlight takes a slot from the destination link's free list (or grows it)
// and loads m into it.
func (n *Network) newFlight(m Msg) *flight {
	free := n.links[m.To].free
	if k := len(free); k > 0 {
		fl := free[k-1]
		free[k-1] = nil
		n.links[m.To].free = free[:k-1]
		fl.msg = m
		return fl
	}
	return &flight{n: n, msg: m}
}

// release returns a consumed flight to its destination link's free list,
// cleared for reuse.
func (n *Network) release(fl *flight) {
	to := fl.msg.To
	fl.msg = Msg{}
	fl.reply, fl.claim = false, false
	fl.rel, fl.seq, fl.nominal = false, 0, 0
	n.links[to].free = append(n.links[to].free, fl)
}

// transmit moves fl, whose sender-side processing ends at sendEnd, to its
// receiver. Without contention the message arrives WireLatency after sendEnd,
// scheduled directly (the pre-contention event pattern, kept bit-identical).
// With contention the message first claims the shared link at sendEnd —
// claims are processed in virtual-time order because they are themselves
// events — holds it for (size+header)*LinkPerByte, and only then starts its
// WireLatency.
func (n *Network) transmit(sendEnd sim.Time, fl *flight) {
	if n.faults != nil {
		n.faults.send(sendEnd, fl)
		return
	}
	if !n.contention {
		if n.topo != nil {
			n.sim.ScheduleTimer(sendEnd+n.wireLatency(fl.msg.From, fl.msg.To), fl)
			return
		}
		n.sim.ScheduleTimer(sendEnd+n.cm.WireLatency, fl)
		return
	}
	fl.claim = true
	n.sim.ScheduleTimer(sendEnd, fl)
}

// Attach registers proc (with request handler h) as processor proc.ID().
func (n *Network) Attach(p *sim.Proc, h Handler) {
	n.procs[p.ID()] = p
	n.handlers[p.ID()] = h
}

// ProcStats returns the traffic counters for processor id.
func (n *Network) ProcStats(id int) Stats { return n.stats[id] }

// Snapshot copies all per-processor counters.
func (n *Network) Snapshot() []Stats {
	out := make([]Stats, len(n.stats))
	copy(out, n.stats)
	return out
}

// Total sums traffic over all processors.
func (n *Network) Total() Stats {
	var t Stats
	for _, s := range n.stats {
		t.Add(s)
	}
	return t
}

func (n *Network) account(from, size int) int {
	total := size + MsgHeader
	n.stats[from].Msgs++
	n.stats[from].Bytes += int64(total)
	return total
}

// Send transmits a one-way message from the running processor p. The sender
// is busy for the programmed-I/O cost of the message.
func (n *Network) Send(p *sim.Proc, to, kind, size int, payload Payload) {
	n.post(p, Msg{From: p.ID(), To: to, Kind: kind, Size: size, Payload: payload})
}

// Call transmits a request from the running processor p and blocks until the
// matching Reply arrives, returning the reply message. The remote handler may
// reply immediately, forward the request, or queue it and reply much later.
// The rendezvous reuses p's cached waiter: a processor has at most one
// synchronous call outstanding.
func (n *Network) Call(p *sim.Proc, to, kind, size int, payload Payload) Msg {
	w := p.CallWaiter()
	n.post(p, Msg{From: p.ID(), To: to, Kind: kind, Size: size, Payload: payload, waiter: w})
	return n.Await(w, "rpc-reply")
}

// CallAsync transmits a request and returns the reply Waiter without
// blocking, so a processor can issue several requests in parallel (as
// TreadMarks does for diff fetches) and then collect all replies via Await.
func (n *Network) CallAsync(p *sim.Proc, to, kind, size int, payload Payload) *sim.Waiter {
	w := sim.NewWaiter(p)
	n.post(p, Msg{From: p.ID(), To: to, Kind: kind, Size: size, Payload: payload, waiter: w})
	return w
}

// Await blocks until the reply for a Call/CallAsync waiter arrives and
// returns it. CallAsync callers must collect each reply through Await, not
// Waiter.Wait directly: the delivered value is the fabric's in-flight slot,
// which Await copies out and returns to its link's free list.
func (n *Network) Await(w *sim.Waiter, reason string) Msg {
	fl := w.Wait(reason).(*flight)
	m := fl.msg
	m.waiter = nil
	fl.n.release(fl)
	return m
}

// post charges the running sender and schedules delivery.
func (n *Network) post(p *sim.Proc, m Msg) {
	if m.To == p.ID() {
		panic(fmt.Sprintf("fabric: proc %d sending to itself (kind %d)", m.To, m.Kind))
	}
	if m.To < 0 || m.To >= len(n.procs) {
		panic(fmt.Sprintf("fabric: bad destination %d", m.To))
	}
	total := n.account(p.ID(), m.Size)
	n.tr.Send(p.Now(), m.From, m.To, m.Kind, total)
	p.Sleep(n.cm.MsgCost(total))
	n.transmit(p.Now(), n.newFlight(m))
}

// ForwardFrom re-addresses request req to another processor from process
// context, preserving the original requester's reply path.
func (n *Network) ForwardFrom(p *sim.Proc, req Msg, to int, extraSize int) {
	if to == p.ID() {
		panic("fabric: forwarding to self")
	}
	fwd := req
	fwd.To = to
	fwd.Size += extraSize
	total := n.account(p.ID(), fwd.Size)
	n.tr.Send(p.Now(), p.ID(), fwd.To, fwd.Kind, total)
	p.Sleep(n.cm.MsgCost(total))
	n.transmit(p.Now(), n.newFlight(fwd))
}

// ReplyFrom sends the reply to request req from the running processor p.
// Used when a request was queued by a handler and is granted later from
// process context (e.g. a lock released while others are waiting).
func (n *Network) ReplyFrom(p *sim.Proc, req Msg, kind, size int, payload Payload) {
	if req.waiter == nil {
		panic("fabric: ReplyFrom for a one-way message")
	}
	if req.From == p.ID() {
		panic("fabric: replying to self")
	}
	total := n.account(p.ID(), size)
	n.tr.Send(p.Now(), p.ID(), req.From, kind, total)
	p.Sleep(n.cm.MsgCost(total))
	fl := n.newFlight(Msg{From: p.ID(), To: req.From, Kind: kind, Size: size, Payload: payload, waiter: req.waiter})
	fl.reply = true
	n.transmit(p.Now(), fl)
}

// deliver runs the destination's request handler at arrival time, charging
// handler CPU to the destination processor.
func (n *Network) deliver(m Msg, at sim.Time) {
	if m.waiter != nil && m.Kind < 0 {
		panic("fabric: negative kinds are reserved")
	}
	n.tr.Deliver(at, m.From, m.To, m.Kind, m.Size+MsgHeader)
	hc := &n.hctx
	*hc = HandlerCtx{n: n, self: m.To, at: at, busy: n.cm.HandlerFixed}
	h := n.handlers[m.To]
	if h == nil {
		panic(fmt.Sprintf("fabric: no handler attached for proc %d", m.To))
	}
	h(hc, m)
	n.procs[m.To].InjectWork(hc.busy)
}

// HandlerCtx is the execution context of a request handler. All time
// consumed through it (fixed handler cost, Work, message sends) is charged to
// the hosting processor after the handler returns; the context is valid only
// for the duration of the handler call (it is reused across deliveries).
type HandlerCtx struct {
	n    *Network
	self int
	at   sim.Time
	busy sim.Time
}

// Self returns the processor the handler is running on.
func (hc *HandlerCtx) Self() int { return hc.self }

// Now returns the handler's current virtual time (arrival plus work so far).
func (hc *HandlerCtx) Now() sim.Time { return hc.at + hc.busy }

// Work charges d of CPU time inside the handler (e.g. a timestamp scan or a
// diff creation performed while servicing the request).
func (hc *HandlerCtx) Work(d sim.Time) { hc.busy += d }

// Send transmits a one-way message from within the handler.
func (hc *HandlerCtx) Send(to, kind, size int, payload Payload) {
	if to == hc.self {
		panic("fabric: handler sending to self")
	}
	total := hc.n.account(hc.self, size)
	hc.n.tr.Send(hc.Now(), hc.self, to, kind, total)
	hc.busy += hc.n.cm.MsgCost(total)
	m := Msg{From: hc.self, To: to, Kind: kind, Size: size, Payload: payload}
	hc.n.transmit(hc.at+hc.busy, hc.n.newFlight(m))
}

// Reply answers request req from within the handler.
func (hc *HandlerCtx) Reply(req Msg, kind, size int, payload Payload) {
	if req.waiter == nil {
		panic("fabric: Reply to a one-way message")
	}
	total := hc.n.account(hc.self, size)
	hc.n.tr.Send(hc.Now(), hc.self, req.From, kind, total)
	hc.busy += hc.n.cm.MsgCost(total)
	fl := hc.n.newFlight(Msg{From: hc.self, To: req.From, Kind: kind, Size: size, Payload: payload, waiter: req.waiter})
	fl.reply = true
	hc.n.transmit(hc.at+hc.busy, fl)
}

// Forward re-addresses request req to another processor, preserving the
// original requester's reply path (the manager-forwarding pattern of
// Section 6). extraSize is added to the forwarded payload size.
func (hc *HandlerCtx) Forward(req Msg, to int, extraSize int) {
	if to == hc.self {
		panic("fabric: forwarding to self")
	}
	fwd := req
	fwd.To = to
	fwd.Size += extraSize
	total := hc.n.account(hc.self, fwd.Size)
	hc.n.tr.Send(hc.Now(), hc.self, fwd.To, fwd.Kind, total)
	hc.busy += hc.n.cm.MsgCost(total)
	hc.n.transmit(hc.at+hc.busy, hc.n.newFlight(fwd))
}

// LocalReply delivers a reply to a request that was queued earlier by this
// same processor's handler and is being granted from handler context now.
func (hc *HandlerCtx) LocalReply(req Msg, kind, size int, payload Payload) {
	hc.Reply(req, kind, size, payload)
}
