package fabric

import (
	"strings"
	"testing"
)

// TestPresetUnknownNameNamesValidSet pins the error contract: an unknown
// preset is reported together with the full valid set, so CLI exit-2 paths
// tell the user what to type instead.
func TestPresetUnknownNameNamesValidSet(t *testing.T) {
	for _, name := range []string{"nope", "", "Paper", "net-x8"} {
		_, err := PresetByName(name)
		if err == nil {
			t.Errorf("PresetByName(%q) accepted", name)
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, "unknown cost preset") {
			t.Errorf("PresetByName(%q) error %q lacks the unknown-preset prefix", name, msg)
		}
		for _, valid := range PresetNames() {
			if !strings.Contains(msg, valid) {
				t.Errorf("PresetByName(%q) error %q does not name valid preset %q", name, msg, valid)
			}
		}
	}
}

// TestRegisterPreset drives the platform-model bridge: registered presets
// resolve by name and land after the knob presets; empty and duplicate names
// panic (they are programming errors in a model library, not user input).
func TestRegisterPreset(t *testing.T) {
	cm := DefaultCostModel().ScaleNetwork(3)
	RegisterPreset(Preset{Name: "test-registered", Desc: "test preset", Cost: cm})
	got, err := PresetByName("test-registered")
	if err != nil || got != cm {
		t.Errorf("registered preset lookup: %v, %+v", err, got)
	}
	names := PresetNames()
	if names[len(names)-1] != "test-registered" {
		t.Errorf("registered preset not last: %v", names)
	}

	mustPanic := func(name string, p Preset) {
		defer func() {
			if recover() == nil {
				t.Errorf("RegisterPreset(%s) did not panic", name)
			}
		}()
		RegisterPreset(p)
	}
	mustPanic("empty name", Preset{Desc: "nameless"})
	mustPanic("duplicate of a knob preset", Preset{Name: "paper", Cost: cm})
	mustPanic("duplicate of a registered preset", Preset{Name: "test-registered", Cost: cm})
}
