package fabric

import (
	"runtime"
	"runtime/debug"
	"testing"

	"ecvslrc/internal/sim"
)

// BenchmarkFabricDeliver drives synchronous request/reply round trips through
// the full message path (post, flight scheduling, delivery, reply, waiter
// rendezvous). The CI bench smoke step asserts it reports 0 allocs/op: with
// typed payloads and per-link flight free lists, steady-state delivery must
// not allocate. (The per-benchmark setup — spawn, first-message pool growth —
// amortizes to zero over the measured iterations.)
func BenchmarkFabricDeliver(b *testing.B) {
	s := sim.New()
	n := New(s, flatCost(), 2)
	client := s.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			reply := n.Call(p, 1, 1, 8, Payload{Kind: PayloadPageReq, A: int32(i), B: 2, C: 3})
			if reply.Payload.C != int32(i) {
				b.Errorf("reply %d carries %d", i, reply.Payload.C)
				return
			}
		}
	})
	server := s.Spawn("server", func(p *sim.Proc) {})
	n.Attach(client, func(hc *HandlerCtx, m Msg) {})
	n.Attach(server, func(hc *HandlerCtx, m Msg) {
		hc.Reply(m, 2, 8, Payload{Kind: PayloadPageReply, C: m.Payload.A})
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// TestDeliverSteadyStateAllocs is the strict in-process form of the
// BenchmarkFabricDeliver guard: after a warm-up that grows the flight free
// lists and event queues, a window of call round trips must perform zero heap
// allocations.
func TestDeliverSteadyStateAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	s := sim.New()
	n := New(s, flatCost(), 2)
	var delta uint64
	client := s.Spawn("client", func(p *sim.Proc) {
		call := func(i int) {
			reply := n.Call(p, 1, 1, 8, Payload{Kind: PayloadPageReq, A: int32(i)})
			if reply.Payload.C != int32(i) {
				t.Errorf("reply %d carries %d", i, reply.Payload.C)
			}
		}
		for i := 0; i < 64; i++ {
			call(i)
		}
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for i := 0; i < 200; i++ {
			call(i)
		}
		runtime.ReadMemStats(&m1)
		delta = m1.Mallocs - m0.Mallocs
	})
	server := s.Spawn("server", func(p *sim.Proc) {})
	n.Attach(client, func(hc *HandlerCtx, m Msg) {})
	n.Attach(server, func(hc *HandlerCtx, m Msg) {
		hc.Reply(m, 2, 8, Payload{Kind: PayloadPageReply, C: m.Payload.A})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if delta != 0 {
		t.Errorf("200 call round trips allocated %d objects, want 0", delta)
	}
}

// TestNilTracerDeliverAllocs proves the tracing hooks add zero allocations
// to the BenchmarkFabricDeliver message path when no tracer is attached: the
// nil-tracer fast path is one nil check per hook. SetTracer(nil) is called
// explicitly so the test stays honest if the default ever changes.
func TestNilTracerDeliverAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	s := sim.New()
	n := New(s, flatCost(), 2)
	n.SetTracer(nil)
	var delta uint64
	client := s.Spawn("client", func(p *sim.Proc) {
		call := func(i int) {
			reply := n.Call(p, 1, 1, 8, Payload{Kind: PayloadPageReq, A: int32(i)})
			if reply.Payload.C != int32(i) {
				t.Errorf("reply %d carries %d", i, reply.Payload.C)
			}
		}
		for i := 0; i < 64; i++ {
			call(i)
		}
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for i := 0; i < 200; i++ {
			call(i)
		}
		runtime.ReadMemStats(&m1)
		delta = m1.Mallocs - m0.Mallocs
	})
	server := s.Spawn("server", func(p *sim.Proc) {})
	n.Attach(client, func(hc *HandlerCtx, m Msg) {})
	n.Attach(server, func(hc *HandlerCtx, m Msg) {
		hc.Reply(m, 2, 8, Payload{Kind: PayloadPageReply, C: m.Payload.A})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if delta != 0 {
		t.Errorf("200 nil-tracer call round trips allocated %d objects, want 0", delta)
	}
}

// roundTripBody is a test Body implementation.
type roundTripBody struct{ tag int }

func (*roundTripBody) BodyKind() PayloadKind { return PayloadNoticeSet }

// TestPayloadRoundTripEveryVariant sends one message per payload variant —
// empty, scalar slots, flags, vector, and pointer body — and checks every
// slot arrives intact, for both one-way delivery and the reply path.
func TestPayloadRoundTripEveryVariant(t *testing.T) {
	body := &roundTripBody{tag: 9}
	payloads := []Payload{
		{Kind: PayloadNone},
		{Kind: PayloadLockReq, A: 7, B: 1, C: -3, D: 1 << 30, Flag: true, Flag2: true},
		{Kind: PayloadLockGrant, C: 5, D: 2, Body: body},
		{Kind: PayloadBarrier, A: 11, Vec: []int32{1, 2, 3}},
		{Kind: PayloadPageReq, A: 4, B: 2, C: 6},
		{Kind: PayloadPageReply, Body: body},
	}
	s := sim.New()
	n := New(s, flatCost(), 2)
	got := make([]Payload, 0, len(payloads))
	echoed := make([]Payload, 0, len(payloads))
	client := s.Spawn("client", func(p *sim.Proc) {
		for _, pl := range payloads {
			reply := n.Call(p, 1, int(pl.Kind)+1, 8, pl)
			echoed = append(echoed, reply.Payload)
		}
	})
	server := s.Spawn("server", func(p *sim.Proc) {})
	n.Attach(client, func(hc *HandlerCtx, m Msg) {})
	n.Attach(server, func(hc *HandlerCtx, m Msg) {
		got = append(got, m.Payload)
		hc.Reply(m, m.Kind, 8, m.Payload) // echo the payload back unchanged
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	check := func(tag string, seen []Payload) {
		if len(seen) != len(payloads) {
			t.Fatalf("%s: %d payloads, want %d", tag, len(seen), len(payloads))
		}
		for i, want := range payloads {
			g := seen[i]
			if g.Kind != want.Kind || g.A != want.A || g.B != want.B || g.C != want.C ||
				g.D != want.D || g.Flag != want.Flag || g.Flag2 != want.Flag2 {
				t.Errorf("%s: payload %v: got %+v, want %+v", tag, want.Kind, g, want)
			}
			if len(g.Vec) != len(want.Vec) {
				t.Errorf("%s: payload %v: vec %v, want %v", tag, want.Kind, g.Vec, want.Vec)
			}
			for j := range want.Vec {
				if g.Vec[j] != want.Vec[j] {
					t.Errorf("%s: payload %v: vec %v, want %v", tag, want.Kind, g.Vec, want.Vec)
				}
			}
			if want.Body != nil {
				rb, ok := g.Body.(*roundTripBody)
				if !ok || rb != body || rb.tag != 9 {
					t.Errorf("%s: payload %v: body %#v, want the original pointer", tag, want.Kind, g.Body)
				}
			} else if g.Body != nil {
				t.Errorf("%s: payload %v: unexpected body %#v", tag, want.Kind, g.Body)
			}
		}
	}
	check("request", got)
	check("reply", echoed)
}

// TestBatchedWakesKeepLinkClaimOrder pins the interplay between the sim's
// per-instant wake batching and contention mode: three senders wake at the
// same virtual instant (a batched resume chain) and send concurrently; their
// shared-link claims must still serialize in process schedule order with the
// exact queueing delays of unbatched execution.
func TestBatchedWakesKeepLinkClaimOrder(t *testing.T) {
	const size = 4000
	cm := flatCost()
	cm.LinkPerByte = 100 * sim.Nanosecond
	s := sim.New()
	n := New(s, cm, 6)
	var arrivals [3]sim.Time
	var order []int32
	for i := 0; i < 3; i++ {
		i := i
		sp := s.Spawn("sender", func(p *sim.Proc) {
			p.Sleep(10 * sim.Microsecond) // all three wake at the same instant
			n.Send(p, 3+i, 1, size, Payload{A: int32(i)})
		})
		n.Attach(sp, nil)
	}
	n.EnableContention()
	for i := 0; i < 3; i++ {
		i := i
		rp := s.Spawn("recv", func(p *sim.Proc) { p.Park("recv") })
		n.Attach(rp, func(hc *HandlerCtx, m Msg) {
			arrivals[i] = hc.Now() - cm.HandlerFixed
			order = append(order, m.Payload.A)
			rp.UnparkAt(hc.Now())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// All sends finish their programmed I/O at 10µs + SendFixed; the link then
	// serves them one occupancy at a time, in process schedule order.
	occupancy := sim.Time(size+MsgHeader) * cm.LinkPerByte
	sendEnd := 10*sim.Microsecond + cm.SendFixed
	for i, at := range arrivals {
		want := sendEnd + sim.Time(i+1)*occupancy + cm.WireLatency
		if at != want {
			t.Errorf("arrival %d = %v, want %v", i, at, want)
		}
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("claim service order = %v, want [0 1 2]", order)
	}
	if want := 3 * occupancy; n.LinkWait() != want {
		t.Errorf("LinkWait = %v, want %v", n.LinkWait(), want)
	}
}
