package fabric

import (
	"testing"

	"ecvslrc/internal/sim"
)

func TestScaleNetworkDividesMessagingCosts(t *testing.T) {
	base := DefaultCostModel()
	half := base.ScaleNetwork(2)
	if half.SendFixed != base.SendFixed/2 || half.WireLatency != base.WireLatency/2 ||
		half.HandlerFixed != base.HandlerFixed/2 || half.SendPerByte != base.SendPerByte/2 ||
		half.LinkPerByte != base.LinkPerByte/2 {
		t.Errorf("ScaleNetwork(2) = %+v", half)
	}
	// CPU-side constants must be untouched.
	if half.InstrStore != base.InstrStore || half.WordCompare != base.WordCompare ||
		half.ProtFault != base.ProtFault {
		t.Errorf("ScaleNetwork touched CPU costs: %+v", half)
	}
	if got := base.ScaleNetwork(1); got != base {
		t.Errorf("ScaleNetwork(1) changed the model: %+v", got)
	}
}

func TestScaleCPUDividesSoftwareCosts(t *testing.T) {
	base := DefaultCostModel()
	q := base.ScaleCPU(4)
	if q.ProtFault != base.ProtFault/4 || q.MProtect != base.MProtect/4 ||
		q.InstrStore != scaled(base.InstrStore, 4) || q.WordCopy != scaled(base.WordCopy, 4) {
		t.Errorf("ScaleCPU(4) = %+v", q)
	}
	if q.SendFixed != base.SendFixed || q.WireLatency != base.WireLatency {
		t.Errorf("ScaleCPU touched the network: %+v", q)
	}
}

func TestHardwareKnobsZeroTheirGroups(t *testing.T) {
	hw := DefaultCostModel().HardwareWriteDetection()
	if hw.InstrStore != 0 || hw.InstrStoreOpt != 0 || hw.ProtFault != 0 || hw.MProtect != 0 {
		t.Errorf("HardwareWriteDetection left trapping costs: %+v", hw)
	}
	if hw.WordCompare == 0 || hw.SendFixed == 0 {
		t.Errorf("HardwareWriteDetection zeroed too much: %+v", hw)
	}
	zd := DefaultCostModel().ZeroCostDiff()
	if zd.WordCopy != 0 || zd.WordCompare != 0 || zd.WordScan != 0 || zd.WordApply != 0 {
		t.Errorf("ZeroCostDiff left collection costs: %+v", zd)
	}
	if zd.InstrStore == 0 {
		t.Errorf("ZeroCostDiff zeroed trapping: %+v", zd)
	}
}

func TestPresetLookup(t *testing.T) {
	if cm, err := PresetByName("paper"); err != nil || cm != DefaultCostModel() {
		t.Errorf("paper preset: %v, %+v", err, cm)
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Error("want error for unknown preset")
	}
	names := PresetNames()
	if len(names) != len(Presets()) || names[0] != "paper" {
		t.Errorf("names = %v", names)
	}
}

// TestContentionSerializesBulkTransfers checks the occupancy model: two
// senders transmitting at once to distinct receivers overlap for free with
// contention off, but queue on the shared link with it on.
func TestContentionSerializesBulkTransfers(t *testing.T) {
	const size = 10000
	run := func(contend bool) (arrivals [2]sim.Time, wait sim.Time) {
		cm := flatCost()
		cm.LinkPerByte = 100 * sim.Nanosecond
		s := sim.New()
		n := New(s, cm, 4)
		if contend {
			n.EnableContention()
		}
		senders := []*sim.Proc{
			s.Spawn("s0", func(p *sim.Proc) { n.Send(p, 2, 1, size, Payload{}) }),
			s.Spawn("s1", func(p *sim.Proc) { n.Send(p, 3, 1, size, Payload{}) }),
		}
		for i, sp := range senders {
			n.Attach(sp, nil)
			i := i
			rp := s.Spawn("r", func(p *sim.Proc) { p.Park("recv") })
			n.Attach(rp, func(hc *HandlerCtx, m Msg) {
				arrivals[i] = hc.Now() - hc.n.cm.HandlerFixed
				rp.UnparkAt(hc.Now())
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return arrivals, n.LinkWait()
	}

	free, w0 := run(false)
	if free[0] != free[1] {
		t.Errorf("contention off: arrivals differ: %v vs %v", free[0], free[1])
	}
	if w0 != 0 {
		t.Errorf("contention off: link wait = %v, want 0", w0)
	}
	occupancy := sim.Time(size+MsgHeader) * 100 * sim.Nanosecond
	queued, w1 := run(true)
	if got := queued[1] - queued[0]; got != occupancy {
		t.Errorf("contention on: second arrival lags by %v, want one occupancy %v", got, occupancy)
	}
	if w1 != occupancy {
		t.Errorf("contention on: link wait = %v, want %v", w1, occupancy)
	}
	// Even the first message is delayed by its own serialization time.
	if queued[0] != free[0]+occupancy {
		t.Errorf("contention on: first arrival %v, want %v", queued[0], free[0]+occupancy)
	}
}
