package fabric

import (
	"testing"

	"ecvslrc/internal/sim"
)

// flatCost is a cost model with simple round numbers for assertions.
func flatCost() CostModel {
	return CostModel{
		SendFixed:    100 * sim.Microsecond,
		SendPerByte:  0,
		WireLatency:  50 * sim.Microsecond,
		HandlerFixed: 10 * sim.Microsecond,
	}
}

func TestOneWaySendDeliversAndCharges(t *testing.T) {
	s := sim.New()
	n := New(s, flatCost(), 2)
	var gotKind, gotFrom int
	var arriveAt sim.Time
	var sendDone sim.Time

	p0 := s.Spawn("p0", func(p *sim.Proc) {
		n.Send(p, 1, 7, 8, Payload{A: 42})
		sendDone = p.Now()
	})
	p1 := s.Spawn("p1", func(p *sim.Proc) {
		p.Park("wait") // parked; the handler below unparks it
	})
	_ = p0
	n.Attach(p0, func(hc *HandlerCtx, m Msg) { t.Error("p0 got a message") })
	n.Attach(p1, func(hc *HandlerCtx, m Msg) {
		gotKind, gotFrom = m.Kind, m.From
		arriveAt = hc.Now() - hc.n.cm.HandlerFixed
		p1.UnparkAt(hc.Now())
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if gotKind != 7 || gotFrom != 0 {
		t.Errorf("got kind=%d from=%d", gotKind, gotFrom)
	}
	if sendDone != 100*sim.Microsecond {
		t.Errorf("send busy time = %v, want 100µs", sendDone)
	}
	if arriveAt != 150*sim.Microsecond {
		t.Errorf("arrival = %v, want 150µs", arriveAt)
	}
	st := n.ProcStats(0)
	if st.Msgs != 1 || st.Bytes != int64(8+MsgHeader) {
		t.Errorf("stats = %+v", st)
	}
}

func TestCallRoundTrip(t *testing.T) {
	s := sim.New()
	n := New(s, flatCost(), 2)
	var reply Msg
	var rtt sim.Time
	p0 := s.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		reply = n.Call(p, 1, 1, 0, Payload{Kind: PayloadPageReq, A: 7, B: 8})
		rtt = p.Now() - start
	})
	p1 := s.Spawn("server", func(p *sim.Proc) {})
	n.Attach(p0, func(hc *HandlerCtx, m Msg) {})
	n.Attach(p1, func(hc *HandlerCtx, m Msg) {
		if m.Payload.Kind != PayloadPageReq || m.Payload.A != 7 || m.Payload.B != 8 {
			t.Errorf("payload = %+v", m.Payload)
		}
		hc.Work(5 * sim.Microsecond)
		hc.Reply(m, 2, 4, Payload{C: 9})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if reply.Payload.C != 9 || reply.Kind != 2 || reply.From != 1 {
		t.Errorf("reply = %+v", reply)
	}
	// Request: 100 send + 50 wire. Handler: 10 fixed + 5 work + 100 reply send.
	// Reply: 50 wire + 10 receive handling.
	want := (100 + 50 + 10 + 5 + 100 + 50 + 10) * sim.Microsecond
	if rtt != want {
		t.Errorf("rtt = %v, want %v", rtt, want)
	}
	total := n.Total()
	if total.Msgs != 2 {
		t.Errorf("total msgs = %d, want 2", total.Msgs)
	}
}

func TestForwardPreservesReplyPath(t *testing.T) {
	s := sim.New()
	n := New(s, flatCost(), 3)
	var reply Msg
	procs := make([]*sim.Proc, 3)
	procs[0] = s.Spawn("requester", func(p *sim.Proc) {
		reply = n.Call(p, 1, 1, 0, Payload{})
	})
	procs[1] = s.Spawn("manager", func(p *sim.Proc) {})
	procs[2] = s.Spawn("owner", func(p *sim.Proc) {})
	n.Attach(procs[0], func(hc *HandlerCtx, m Msg) {})
	n.Attach(procs[1], func(hc *HandlerCtx, m Msg) { hc.Forward(m, 2, 4) })
	n.Attach(procs[2], func(hc *HandlerCtx, m Msg) { hc.Reply(m, 9, 0, Payload{A: 1}) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if reply.Payload.A != 1 || reply.From != 2 {
		t.Errorf("reply = %+v", reply)
	}
	if got := n.Total().Msgs; got != 3 { // request + forward + grant
		t.Errorf("msgs = %d, want 3", got)
	}
}

func TestDeferredReplyFromProcessContext(t *testing.T) {
	s := sim.New()
	n := New(s, flatCost(), 2)
	var pending []Msg
	var reply Msg

	p0 := s.Spawn("requester", func(p *sim.Proc) {
		reply = n.Call(p, 1, 1, 0, Payload{})
	})
	p1 := s.Spawn("holder", func(p *sim.Proc) {
		p.Sleep(1000 * sim.Microsecond) // holds the resource for 1 ms
		for _, req := range pending {
			n.ReplyFrom(p, req, 2, 0, Payload{B: 5})
		}
	})
	n.Attach(p0, func(hc *HandlerCtx, m Msg) {})
	n.Attach(p1, func(hc *HandlerCtx, m Msg) { pending = append(pending, m) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if reply.Payload.B != 5 {
		t.Errorf("reply = %+v", reply)
	}
}

func TestParallelCallsOverlap(t *testing.T) {
	s := sim.New()
	n := New(s, flatCost(), 3)
	var elapsed sim.Time
	p0 := s.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		w1 := n.CallAsync(p, 1, 1, 0, Payload{})
		w2 := n.CallAsync(p, 2, 1, 0, Payload{})
		n.Await(w1, "r1")
		n.Await(w2, "r2")
		elapsed = p.Now() - start
	})
	p1 := s.Spawn("s1", func(p *sim.Proc) {})
	p2 := s.Spawn("s2", func(p *sim.Proc) {})
	n.Attach(p0, func(hc *HandlerCtx, m Msg) {})
	echo := func(hc *HandlerCtx, m Msg) { hc.Reply(m, 2, 0, Payload{}) }
	n.Attach(p1, echo)
	n.Attach(p2, echo)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Serial would be ≥ 2 full round trips (640µs). Overlapped: the second
	// send begins right after the first (sender serializes sends only).
	serial := 2 * (100 + 50 + 10 + 100 + 50 + 10) * sim.Microsecond
	if elapsed >= serial {
		t.Errorf("elapsed = %v, not overlapped (serial = %v)", elapsed, serial)
	}
}

func TestSelfSendPanics(t *testing.T) {
	s := sim.New()
	n := New(s, flatCost(), 1)
	p0 := s.Spawn("p0", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("want panic on self-send")
			}
		}()
		n.Send(p, 0, 1, 0, Payload{})
	})
	n.Attach(p0, func(hc *HandlerCtx, m Msg) {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPerByteCostAndStats(t *testing.T) {
	cm := flatCost()
	cm.SendPerByte = 100 * sim.Nanosecond
	s := sim.New()
	n := New(s, cm, 2)
	var sendDone sim.Time
	p0 := s.Spawn("p0", func(p *sim.Proc) {
		n.Send(p, 1, 1, 968, Payload{}) // 968 + 32 header = 1000 bytes
		sendDone = p.Now()
	})
	p1 := s.Spawn("p1", func(p *sim.Proc) { p.Park("x") })
	n.Attach(p0, nil)
	n.Attach(p1, func(hc *HandlerCtx, m Msg) { p1.UnparkAt(hc.Now()) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := 100*sim.Microsecond + 1000*100*sim.Nanosecond
	if sendDone != want {
		t.Errorf("send time = %v, want %v", sendDone, want)
	}
	if n.ProcStats(0).Bytes != 1000 {
		t.Errorf("bytes = %d, want 1000", n.ProcStats(0).Bytes)
	}
}

func TestStatsWindowSub(t *testing.T) {
	a := Stats{Msgs: 10, Bytes: 1000}
	b := Stats{Msgs: 4, Bytes: 300}
	d := a.Sub(b)
	if d.Msgs != 6 || d.Bytes != 700 {
		t.Errorf("d = %+v", d)
	}
}
