package fabric

import (
	"errors"
	"strings"
	"testing"

	"ecvslrc/internal/sim"
)

// faultWorkload runs a fixed two-processor exchange under plan: p0 issues k
// synchronous calls to p1 (whose handler echoes A+1), while p1 streams k
// one-way messages to p0. It returns the reply values p0 collected, the
// one-way values p0's handler received in arrival order, the virtual finish
// time, the fault counters, and the run error.
func faultWorkload(t *testing.T, plan *FaultPlan, k int) (replies, oneways []int32, finish sim.Time, fs FaultStats, err error) {
	t.Helper()
	s := sim.New()
	n := New(s, flatCost(), 2)
	if plan != nil {
		if ferr := n.EnableFaults(*plan); ferr != nil {
			t.Fatalf("EnableFaults: %v", ferr)
		}
	}
	p0 := s.Spawn("p0", func(p *sim.Proc) {
		for i := 0; i < k; i++ {
			m := n.Call(p, 1, 7, 16, Payload{A: int32(i)})
			replies = append(replies, m.Payload.A)
		}
	})
	p1 := s.Spawn("p1", func(p *sim.Proc) {
		for i := 0; i < k; i++ {
			n.Send(p, 0, 8, 16, Payload{A: int32(i)})
		}
	})
	n.Attach(p0, func(hc *HandlerCtx, m Msg) {
		oneways = append(oneways, m.Payload.A)
	})
	n.Attach(p1, func(hc *HandlerCtx, m Msg) {
		hc.Reply(m, 7, 16, Payload{A: m.Payload.A + 1})
	})
	err = s.Run()
	// Finish is when the application work completed, not s.Now(): trailing
	// no-op retry/ack timers legitimately extend the event queue past the
	// last application event without affecting any process.
	finish = p0.FinishedAt()
	if p1.FinishedAt() > finish {
		finish = p1.FinishedAt()
	}
	return replies, oneways, finish, n.FaultStats(), err
}

// wantExchange asserts the workload's application-visible outcome: every
// call got its echo, every one-way arrived exactly once in send order.
func wantExchange(t *testing.T, replies, oneways []int32, k int) {
	t.Helper()
	if len(replies) != k || len(oneways) != k {
		t.Fatalf("got %d replies, %d one-ways, want %d each", len(replies), len(oneways), k)
	}
	for i := 0; i < k; i++ {
		if replies[i] != int32(i)+1 {
			t.Errorf("reply %d = %d, want %d", i, replies[i], i+1)
		}
		if oneways[i] != int32(i) {
			t.Errorf("one-way %d = %d, want %d (in-order delivery violated)", i, oneways[i], i)
		}
	}
}

func TestFaultPlanValidate(t *testing.T) {
	bad := []FaultPlan{
		{Drop: -0.1},
		{Drop: 1},
		{Dup: 1.5},
		{Delay: 2},
		{DelayMax: -1},
		{RTO: -1},
		{MaxRetries: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrFaultPlan) {
			t.Errorf("Validate(%+v) = %v, want ErrFaultPlan", p, err)
		}
	}
	for _, name := range FaultPresetNames() {
		p, err := FaultPreset(name)
		if err != nil {
			t.Fatalf("FaultPreset(%q): %v", name, err)
		}
		if name == "off" {
			if p != nil {
				t.Errorf("FaultPreset(off) = %+v, want nil", p)
			}
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("preset %q does not validate: %v", name, err)
		}
	}
	if _, err := FaultPreset("nosuch"); !errors.Is(err, ErrFaultPlan) {
		t.Errorf("unknown preset error = %v, want ErrFaultPlan", err)
	}
}

func TestZeroRatePlanPreservesBehaviorAndTiming(t *testing.T) {
	const k = 20
	r0, o0, t0, fs0, err := faultWorkload(t, nil, k)
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}
	plan := &FaultPlan{Seed: 7}
	r1, o1, t1, fs1, err := faultWorkload(t, plan, k)
	if err != nil {
		t.Fatalf("zero-rate run: %v", err)
	}
	wantExchange(t, r0, o0, k)
	wantExchange(t, r1, o1, k)
	// The sublayer only sequences and acks; with zero rates nothing is
	// dropped or delayed, so the application timeline is identical.
	if t1 != t0 {
		t.Errorf("zero-rate plan changed the finish time: %v -> %v", t0, t1)
	}
	if fs0 != (FaultStats{}) {
		t.Errorf("fault-free run has fault stats: %+v", fs0)
	}
	if fs1.Acks == 0 || fs1.Sent == 0 {
		t.Errorf("zero-rate plan recorded no sublayer activity: %+v", fs1)
	}
	if fs1.Dropped != 0 || fs1.Retransmits != 0 || fs1.DupsDropped != 0 || fs1.RecoveryWait != 0 {
		t.Errorf("zero-rate plan injected faults: %+v", fs1)
	}
}

func TestDropRecovery(t *testing.T) {
	const k = 40
	plan := &FaultPlan{Seed: 3, Drop: 0.3}
	replies, oneways, _, fs, err := faultWorkload(t, plan, k)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	wantExchange(t, replies, oneways, k)
	if fs.Dropped == 0 {
		t.Error("30% loss dropped nothing")
	}
	if fs.Retransmits == 0 {
		t.Error("no retransmissions despite drops")
	}
	if fs.RecoveryWait == 0 {
		t.Error("recovery cost did not land in virtual time")
	}
}

func TestDuplicateSuppression(t *testing.T) {
	const k = 30
	plan := &FaultPlan{Seed: 5, Dup: 0.9}
	replies, oneways, _, fs, err := faultWorkload(t, plan, k)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	wantExchange(t, replies, oneways, k)
	if fs.Duplicated == 0 || fs.DupsDropped == 0 {
		t.Errorf("90%% duplication produced dup=%d dropped=%d", fs.Duplicated, fs.DupsDropped)
	}
}

func TestDelayReordersButDeliversInOrder(t *testing.T) {
	const k = 40
	plan := &FaultPlan{Seed: 11, Delay: 0.7, DelayMax: 3 * sim.Millisecond}
	replies, oneways, _, fs, err := faultWorkload(t, plan, k)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	wantExchange(t, replies, oneways, k)
	if fs.Delayed == 0 {
		t.Error("70% delay injection delayed nothing")
	}
	if fs.OutOfOrder == 0 {
		t.Error("heavy delays never reordered a frame (reorder buffer untested)")
	}
}

func TestChaosPreset(t *testing.T) {
	const k = 50
	plan, err := FaultPreset("chaos")
	if err != nil {
		t.Fatal(err)
	}
	replies, oneways, _, fs, err := faultWorkload(t, plan, k)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	wantExchange(t, replies, oneways, k)
	if fs.Sent == 0 || fs.Acks == 0 {
		t.Errorf("chaos run recorded no activity: %+v", fs)
	}
}

func TestFaultDeterminism(t *testing.T) {
	const k = 40
	plan := &FaultPlan{Seed: 9, Drop: 0.2, Dup: 0.1, Delay: 0.3, DelayMax: 2 * sim.Millisecond}
	r1, o1, t1, fs1, err := faultWorkload(t, plan, k)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	r2, o2, t2, fs2, err := faultWorkload(t, plan, k)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if t1 != t2 || fs1 != fs2 {
		t.Errorf("same (plan, seed) diverged: %v/%+v vs %v/%+v", t1, fs1, t2, fs2)
	}
	wantExchange(t, r1, o1, k)
	wantExchange(t, r2, o2, k)
	// A different seed must induce a different fault pattern (sanity check
	// that the seed actually keys the PRNG).
	other := *plan
	other.Seed = 10
	_, _, t3, fs3, err := faultWorkload(t, &other, k)
	if err != nil {
		t.Fatalf("reseeded run: %v", err)
	}
	if t3 == t1 && fs3 == fs1 {
		t.Error("changing the seed changed nothing")
	}
}

func TestUnrecoverablePlanFailsLoudly(t *testing.T) {
	plan := &FaultPlan{Seed: 2, Drop: 0.9, MaxRetries: 2, RTO: 200 * sim.Microsecond}
	_, _, _, _, err := faultWorkload(t, plan, 20)
	if err == nil {
		t.Fatal("90% loss with 2 retries completed — expected the run to fail")
	}
	if !strings.Contains(err.Error(), "reliable delivery gave up") {
		t.Errorf("error does not name the abandoned frame: %v", err)
	}
}

func TestFaultsComposeWithContention(t *testing.T) {
	const k = 20
	s := sim.New()
	cm := flatCost()
	cm.LinkPerByte = sim.Microsecond // 288-byte frames hold the link ~3x the send gap
	n := New(s, cm, 2)
	n.EnableContention()
	if err := n.EnableFaults(FaultPlan{Seed: 4, Drop: 0.2}); err != nil {
		t.Fatal(err)
	}
	var got []int32
	p0 := s.Spawn("p0", func(p *sim.Proc) {
		for i := 0; i < k; i++ {
			n.Send(p, 1, 8, 256, Payload{A: int32(i)})
		}
	})
	p1 := s.Spawn("p1", func(p *sim.Proc) {})
	n.Attach(p0, func(hc *HandlerCtx, m Msg) {})
	n.Attach(p1, func(hc *HandlerCtx, m Msg) { got = append(got, m.Payload.A) })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(got) != k {
		t.Fatalf("delivered %d of %d", len(got), k)
	}
	for i, v := range got {
		if v != int32(i) {
			t.Fatalf("out-of-order delivery under contention: got[%d] = %d", i, v)
		}
	}
	if n.FaultStats().Dropped == 0 {
		t.Error("no drops recorded")
	}
	if n.LinkWait() == 0 {
		t.Error("contention recorded no link wait for 20 overlapping bulk sends")
	}
}
