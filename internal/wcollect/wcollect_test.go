package wcollect

import (
	"reflect"
	"testing"
	"testing/quick"

	"ecvslrc/internal/mem"
)

func wordAlloc() *mem.Allocator {
	al := mem.NewAllocator()
	al.Alloc("w4", 4*mem.PageSize, 4)
	return al
}

func TestDiffBuildApply(t *testing.T) {
	src := mem.NewImage(mem.PageSize)
	dst := mem.NewImage(mem.PageSize)
	src.WriteI32(8, 7)
	src.WriteI32(12, 8)
	src.WriteF32(100, 2.5)
	d := BuildDiff(src, []mem.Range{{Base: 8, Len: 8}, {Base: 100, Len: 4}})
	if d.Empty() {
		t.Fatal("diff should not be empty")
	}
	if d.Words() != 3 {
		t.Errorf("Words = %d, want 3", d.Words())
	}
	wantSize := DiffHeaderBytes + (RunHeaderBytes + 8) + (RunHeaderBytes + 4)
	if d.WireSize() != wantSize {
		t.Errorf("WireSize = %d, want %d", d.WireSize(), wantSize)
	}
	applied := d.Apply(dst)
	if applied != 3 {
		t.Errorf("applied = %d, want 3", applied)
	}
	if dst.ReadI32(8) != 7 || dst.ReadI32(12) != 8 || dst.ReadF32(100) != 2.5 {
		t.Error("apply did not install data")
	}
	if dst.ReadI32(0) != 0 {
		t.Error("apply touched unrelated data")
	}
}

func TestDiffSnapshotsDataAtBuildTime(t *testing.T) {
	src := mem.NewImage(mem.PageSize)
	src.WriteI32(0, 1)
	d := BuildDiff(src, []mem.Range{{Base: 0, Len: 4}})
	src.WriteI32(0, 2) // later write must not leak into the diff
	dst := mem.NewImage(mem.PageSize)
	d.Apply(dst)
	if dst.ReadI32(0) != 1 {
		t.Errorf("diff captured %d, want snapshot value 1", dst.ReadI32(0))
	}
}

func TestLRCStampPacking(t *testing.T) {
	s := LRCStamp(7, 123456)
	p, i := s.ProcInterval()
	if p != 7 || i != 123456 {
		t.Errorf("unpacked (%d,%d)", p, i)
	}
	if LRCStamp(0, 0) != 0 {
		t.Error("zero stamp should be zero")
	}
}

func TestStampsSetSelect(t *testing.T) {
	al := wordAlloc()
	st := NewStamps(al)
	st.Set([]mem.Range{{Base: 16, Len: 8}}, 5)
	st.Set([]mem.Range{{Base: 24, Len: 4}}, 6)
	st.Set([]mem.Range{{Base: 40, Len: 4}}, 5)

	runs, scanned := st.Select([]mem.Range{{Base: 0, Len: 64}}, func(s Stamp) bool { return s > 4 })
	want := []StampRun{
		{Base: 16, Len: 8, Stamp: 5},
		{Base: 24, Len: 4, Stamp: 6},
		{Base: 40, Len: 4, Stamp: 5},
	}
	if !reflect.DeepEqual(runs, want) {
		t.Errorf("runs = %v, want %v", runs, want)
	}
	if scanned != 16 {
		t.Errorf("scanned = %d, want 16", scanned)
	}
	// Runs with equal stamps but non-adjacent addresses must not merge;
	// adjacent blocks with different stamps must not merge.
	runs2, _ := st.Select([]mem.Range{{Base: 16, Len: 16}}, func(s Stamp) bool { return s != 0 })
	if len(runs2) != 2 {
		t.Errorf("adjacent different stamps merged: %v", runs2)
	}
}

func TestStampsGetAndApply(t *testing.T) {
	al := wordAlloc()
	a := NewStamps(al)
	a.Set([]mem.Range{{Base: 100, Len: 4}}, 9)
	if a.Get(100) != 9 || a.Get(104) != 0 {
		t.Error("Get wrong")
	}
	b := NewStamps(al)
	runs, _ := a.Select([]mem.Range{{Base: 96, Len: 16}}, func(s Stamp) bool { return s != 0 })
	b.ApplyStamps(runs)
	if b.Get(100) != 9 {
		t.Error("ApplyStamps did not install")
	}
}

func TestExtractStampedRoundTrip(t *testing.T) {
	al := wordAlloc()
	src := mem.NewImage(mem.PageSize)
	dst := mem.NewImage(mem.PageSize)
	srcStamps := NewStamps(al)
	dstStamps := NewStamps(al)

	src.WriteI32(8, 42)
	srcStamps.Set([]mem.Range{{Base: 8, Len: 4}}, LRCStamp(3, 17))

	runs, _ := srcStamps.Select([]mem.Range{{Base: 0, Len: 64}}, func(s Stamp) bool { return s != 0 })
	sd := ExtractStamped(src, runs)
	if got := sd.WireSize(LRCStampBytes); got != RunHeaderBytes+LRCStampBytes+4 {
		t.Errorf("WireSize = %d", got)
	}
	words := sd.Apply(dst, dstStamps)
	if words != 1 {
		t.Errorf("words = %d, want 1", words)
	}
	if dst.ReadI32(8) != 42 {
		t.Error("data not applied")
	}
	p, i := dstStamps.Get(8).ProcInterval()
	if p != 3 || i != 17 {
		t.Errorf("stamp = (%d,%d)", p, i)
	}
}

func TestDoubleWordBlockStamps(t *testing.T) {
	al := mem.NewAllocator()
	al.Alloc("w8", mem.PageSize, 8)
	st := NewStamps(al)
	// Writing one word of an 8-byte block stamps the whole block.
	st.Set([]mem.Range{{Base: 12, Len: 4}}, 3)
	runs, scanned := st.Select([]mem.Range{{Base: 0, Len: 32}}, func(s Stamp) bool { return s != 0 })
	want := []StampRun{{Base: 8, Len: 8, Stamp: 3}}
	if !reflect.DeepEqual(runs, want) {
		t.Errorf("runs = %v, want %v", runs, want)
	}
	if scanned != 4 { // 32 bytes / 8-byte blocks
		t.Errorf("scanned = %d, want 4", scanned)
	}
}

func TestPropertyDiffRoundTrip(t *testing.T) {
	f := func(writes []uint16, vals []uint32) bool {
		src := mem.NewImage(mem.PageSize)
		dst := mem.NewImage(mem.PageSize)
		var changed []mem.Range
		for i, w := range writes {
			idx := int(w) % mem.PageWords
			var v uint32 = 0xabcd
			if i < len(vals) {
				v = vals[i]
			}
			src.WriteU32(mem.Addr(idx*4), v)
			changed = append(changed, mem.Range{Base: mem.Addr(idx * 4), Len: 4})
		}
		d := BuildDiff(src, changed)
		d.Apply(dst)
		return mem.EqualRange(src, dst, mem.Range{Base: 0, Len: mem.PageSize})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Select(newer) ∘ Set behaves like a map from block to stamp.
func TestPropertyStampsSelectConsistent(t *testing.T) {
	al := wordAlloc()
	f := func(ops []struct {
		W uint16
		S uint8
	}) bool {
		st := NewStamps(al)
		model := map[int]Stamp{}
		for _, op := range ops {
			idx := int(op.W) % (2 * mem.PageWords)
			s := Stamp(op.S%8) + 1
			st.Set([]mem.Range{{Base: mem.Addr(idx * 4), Len: 4}}, s)
			model[idx] = s
		}
		cut := Stamp(4)
		runs, _ := st.Select([]mem.Range{{Base: 0, Len: 2 * mem.PageSize}}, func(s Stamp) bool { return s > cut })
		got := map[int]Stamp{}
		for _, r := range runs {
			for a := r.Base; a < r.Base+mem.Addr(r.Len); a += 4 {
				got[int(a)/4] = r.Stamp
			}
		}
		for idx, s := range model {
			if s > cut && got[idx] != s {
				return false
			}
			if s <= cut {
				if _, ok := got[idx]; ok {
					return false
				}
			}
		}
		return len(got) <= len(model)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
