// Package wcollect implements the paper's two write-collection mechanisms:
// timestamping (per-block logical timestamps; EC uses lock incarnation
// numbers, LRC uses (processor, interval) pairs — Section 5.1) and diffing
// (run-length-encoded records of changes — Section 5.2). It also defines the
// wire-size accounting for transmitted runs.
package wcollect

import (
	"fmt"

	"ecvslrc/internal/mem"
)

// Wire-format overheads, in bytes. A run header carries (address, length);
// an EC timestamp is one incarnation number per run; an LRC timestamp is a
// (processor, interval) pair per run; a diff carries one tag for the whole
// diff.
const (
	RunHeaderBytes  = 8
	ECStampBytes    = 4
	LRCStampBytes   = 8
	DiffHeaderBytes = 16
)

// DataRun is a contiguous span of shared data in transit: the run-length
// encoding unit of both diffs and timestamp responses.
type DataRun struct {
	Base mem.Addr
	Data []byte
}

// ExtractRuns copies the bytes of each changed range out of im. All runs
// share one backing array (a per-call arena): the extraction allocates twice
// regardless of run count, instead of once per run. Run lifetimes are
// unbounded (diffs are retained for later requesters), so the arena is owned
// by the result and never recycled.
func ExtractRuns(im *mem.Image, changed []mem.Range) []DataRun {
	runs := make([]DataRun, len(changed))
	if len(changed) == 0 {
		return runs
	}
	total := 0
	for _, r := range changed {
		total += r.Len
	}
	backing := make([]byte, total)
	off := 0
	for i, r := range changed {
		b := backing[off : off+r.Len : off+r.Len]
		copy(b, im.Bytes()[r.Base:r.End()])
		runs[i] = DataRun{Base: r.Base, Data: b}
		off += r.Len
	}
	return runs
}

// ApplyRuns writes each run's bytes into im and returns the number of words
// applied (the apply cost basis).
func ApplyRuns(im *mem.Image, runs []DataRun) int {
	words := 0
	for _, r := range runs {
		copy(im.Bytes()[r.Base:int(r.Base)+len(r.Data)], r.Data)
		words += (len(r.Data) + mem.WordSize - 1) / mem.WordSize
	}
	return words
}

// Diff is a run-length encoding of the changes to an object (EC) or a page
// (LRC) during one execution interval.
type Diff struct {
	Runs []DataRun
}

// BuildDiff captures the contents of the changed ranges from im.
func BuildDiff(im *mem.Image, changed []mem.Range) *Diff {
	return &Diff{Runs: ExtractRuns(im, changed)}
}

// Apply copies the diff's runs into im, returning words applied.
func (d *Diff) Apply(im *mem.Image) int { return ApplyRuns(im, d.Runs) }

// Words returns the total data words carried.
func (d *Diff) Words() int {
	n := 0
	for _, r := range d.Runs {
		n += (len(r.Data) + mem.WordSize - 1) / mem.WordSize
	}
	return n
}

// WireSize returns the transmission size in bytes: a diff header plus one
// run header per run plus the data.
func (d *Diff) WireSize() int {
	n := DiffHeaderBytes
	for _, r := range d.Runs {
		n += RunHeaderBytes + len(r.Data)
	}
	return n
}

// Empty reports whether the diff carries no changes.
func (d *Diff) Empty() bool { return len(d.Runs) == 0 }

// Stamp is a per-block logical timestamp. For EC it holds the lock
// incarnation number; for LRC it packs (processor, interval).
type Stamp int64

// LRCStamp packs a processor id and an interval index.
func LRCStamp(proc, interval int) Stamp {
	return Stamp(int64(proc)<<40 | int64(interval)&0xffffffffff)
}

// ProcInterval unpacks an LRC stamp.
func (s Stamp) ProcInterval() (proc, interval int) {
	return int(int64(s) >> 40), int(int64(s) & 0xffffffffff)
}

// StampRun is a maximal sequence of adjacent blocks sharing one timestamp —
// the transmission unit of the timestamping scheme ("only one value is sent
// for each run", Section 5.1).
type StampRun struct {
	Base  mem.Addr
	Len   int
	Stamp Stamp
}

// Range returns the run's extent.
func (sr StampRun) Range() mem.Range { return mem.Range{Base: sr.Base, Len: sr.Len} }

// StampRunsWireSize returns the transmission size of runs carrying their
// data: per run, a header, one stamp of stampBytes, and the data bytes.
func StampRunsWireSize(runs []StampRun, stampBytes int) int {
	n := 0
	for _, r := range runs {
		n += RunHeaderBytes + stampBytes + r.Len
	}
	return n
}

// Stamps is the per-processor timestamp array: one Stamp per block of the
// shared space, allocated lazily per page and indexed by a flat page-number
// slice sized from the allocator. Block granularity follows the allocator's
// region configuration (word or double-word for compiler instrumentation;
// always a word with twinning).
type Stamps struct {
	al    *mem.Allocator
	pages [][]Stamp // indexed by page; nil until first stamped
}

// NewStamps returns an empty timestamp array over al's address space.
func NewStamps(al *mem.Allocator) *Stamps {
	return &Stamps{al: al, pages: make([][]Stamp, al.Pages())}
}

func (st *Stamps) page(pg int) []Stamp {
	p := st.pages[pg]
	if p == nil {
		p = make([]Stamp, mem.PageWords)
		st.pages[pg] = p
	}
	return p
}

func (st *Stamps) blockAt(a mem.Addr) int { return st.al.BlockAt(a) }

// Set stamps every block overlapping the changed ranges with s. The span is
// walked page by page so the page lookup happens once per page, not once per
// block.
func (st *Stamps) Set(changed []mem.Range, s Stamp) {
	for _, r := range changed {
		if r.Len <= 0 {
			continue
		}
		block := st.blockAt(r.Base)
		start := int(r.Base) &^ (block - 1) // block is a power of two
		end := int(r.End())
		for off := start; off < end; {
			pg := off >> mem.PageShift
			stop := (pg + 1) << mem.PageShift
			if stop > end {
				stop = end
			}
			p := st.page(pg)
			for ; off < stop; off += block {
				p[(off&(mem.PageSize-1))/mem.WordSize] = s
			}
		}
	}
}

// Get returns the stamp of the block containing a.
func (st *Stamps) Get(a mem.Addr) Stamp {
	block := st.blockAt(a)
	off := int(a) &^ (block - 1) // block is a power of two
	if p := st.pages[off>>mem.PageShift]; p != nil {
		return p[(off&(mem.PageSize-1))/mem.WordSize]
	}
	return 0
}

// stampPred is a statically-dispatched stamp predicate: the scan loop is
// instantiated per concrete predicate type, so the per-block test inlines
// and the call sites allocate no closures.
type stampPred interface {
	newer(Stamp) bool
}

// NewerThan selects stamps strictly above Min (EC: blocks written since the
// requester's incarnation).
type NewerThan struct{ Min Stamp }

func (p NewerThan) newer(s Stamp) bool { return s > p.Min }

// ProcWindow selects stamps by processor Proc with interval in (Since, UpTo]
// (LRC: one writer's unfetched intervals).
type ProcWindow struct {
	Proc        int
	Since, UpTo int32
}

func (p ProcWindow) newer(s Stamp) bool {
	q, iv := s.ProcInterval()
	return q == p.Proc && int32(iv) > p.Since && int32(iv) <= p.UpTo
}

type funcPred struct{ f func(Stamp) bool }

func (p funcPred) newer(s Stamp) bool { return p.f(s) }

// Select scans the blocks of ranges and returns maximal runs of adjacent
// blocks whose stamp satisfies newer, plus the number of blocks scanned (the
// responder-side scan cost charged on every request — the computation
// overhead Section 5.3 attributes to timestamping). Protocol hot paths use
// SelectPred with a concrete predicate instead.
func (st *Stamps) Select(ranges []mem.Range, newer func(Stamp) bool) (runs []StampRun, scanned int) {
	return SelectPred(st, ranges, funcPred{newer})
}

// SelectPred is Select with a statically-typed predicate.
func SelectPred[P stampPred](st *Stamps, ranges []mem.Range, pred P) (runs []StampRun, scanned int) {
	zeroNewer := pred.newer(0) // the predicate is pure: hoist the never-stamped case
	var cur *StampRun
	emit := func(off, block int, s Stamp) {
		if cur != nil && cur.Stamp == s && cur.Base+mem.Addr(cur.Len) == mem.Addr(off) {
			cur.Len += block
		} else {
			runs = append(runs, StampRun{Base: mem.Addr(off), Len: block, Stamp: s})
			cur = &runs[len(runs)-1]
		}
	}
	for _, r := range ranges {
		if r.Len <= 0 {
			continue
		}
		block := st.blockAt(r.Base)
		start := int(r.Base) &^ (block - 1) // block is a power of two
		end := int(r.End())
		cur = nil
		for off := start; off < end; {
			pg := off >> mem.PageShift
			stop := (pg + 1) << mem.PageShift
			if stop > end {
				stop = end
			}
			p := st.pages[pg]
			if p == nil {
				// Whole page unstamped: every block reads stamp 0.
				blocks := (stop - off + block - 1) / block
				scanned += blocks
				if zeroNewer {
					for ; off < stop; off += block {
						emit(off, block, 0)
					}
				} else {
					cur = nil
					off = stop
				}
				continue
			}
			for ; off < stop; off += block {
				scanned++
				s := p[(off&(mem.PageSize-1))/mem.WordSize]
				if pred.newer(s) {
					emit(off, block, s)
				} else {
					cur = nil
				}
			}
		}
	}
	return runs, scanned
}

// slot returns the stamp slot index (word index within page of the block
// start) for address a given block size.
func slot(a mem.Addr, block int) (pg, idx int) {
	off := int(a) &^ (block - 1) // block is a power of two
	return mem.PageOf(mem.Addr(off)), (off % mem.PageSize) / mem.WordSize
}

// ApplyStamps records the stamps of received runs locally, so this processor
// can in turn serve later requests. Run bases are aligned down per block (a
// run base inside a block stamps that whole block).
func (st *Stamps) ApplyStamps(runs []StampRun) {
	for _, sr := range runs {
		block := st.blockAt(sr.Base)
		if block <= 0 {
			panic(fmt.Sprintf("wcollect: bad block at %d", sr.Base))
		}
		for off := int(sr.Base); off < int(sr.Base)+sr.Len; off += block {
			pg, idx := slot(mem.Addr(off), block)
			st.page(pg)[idx] = sr.Stamp
		}
	}
}

// StampedData pairs stamp runs with the data bytes extracted from im, for
// transmission.
type StampedData struct {
	Runs []StampRun
	Data []DataRun
}

// ExtractStamped builds the response payload for a timestamp-based request.
func ExtractStamped(im *mem.Image, runs []StampRun) StampedData {
	ranges := make([]mem.Range, len(runs))
	for i, r := range runs {
		ranges[i] = r.Range()
	}
	return StampedData{Runs: runs, Data: ExtractRuns(im, ranges)}
}

// Apply installs the received data and stamps, returning words applied.
func (sd StampedData) Apply(im *mem.Image, st *Stamps) int {
	st.ApplyStamps(sd.Runs)
	return ApplyRuns(im, sd.Data)
}

// WireSize returns the transmission size given the per-run stamp width.
func (sd StampedData) WireSize(stampBytes int) int {
	return StampRunsWireSize(sd.Runs, stampBytes)
}
