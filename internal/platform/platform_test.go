package platform

import (
	"math"
	"strings"
	"testing"

	"ecvslrc/internal/fabric"
	"ecvslrc/internal/sim"
)

// testModel is a DECstation-shaped model used across the tests: every derived
// constant is large against the nanosecond resolution, so quantization does
// not blur the arithmetic being checked.
func testModel() Model {
	return Model{
		Name: "test-platform",
		Desc: "synthetic platform for tests",
		P: Primitives{
			CPUMHz: 40, IPC: 1,
			SendInstrs: 10000, HandlerInstrs: 6000,
			NICPerByteNs: 10, WireGbps: 0.1, SwitchDelayUs: 100,
			FaultInstrs: 4800, MProtectInstrs: 1200,
			StoreCycles: 18, StoreOptCycles: 10.4,
			CopyCycles: 2, CompareCycles: 3, ScanCycles: 2, ApplyCycles: 2,
		},
	}
}

func TestDeriveFormulas(t *testing.T) {
	got := testModel().Derive()
	want := fabric.CostModel{
		SendFixed:     250 * sim.Microsecond,
		SendPerByte:   90 * sim.Nanosecond,
		WireLatency:   100 * sim.Microsecond,
		HandlerFixed:  150 * sim.Microsecond,
		ProtFault:     120 * sim.Microsecond,
		MProtect:      30 * sim.Microsecond,
		InstrStore:    450 * sim.Nanosecond,
		InstrStoreOpt: 260 * sim.Nanosecond,
		WordCopy:      50 * sim.Nanosecond,
		WordCompare:   75 * sim.Nanosecond,
		WordScan:      50 * sim.Nanosecond,
		WordApply:     50 * sim.Nanosecond,
		LinkPerByte:   80 * sim.Nanosecond,
	}
	if got != want {
		t.Errorf("Derive() = %+v, want %+v", got, want)
	}
}

// TestDeriveBandwidthBound pins the ECM-style max(): with a starved memory
// system the bandwidth term must override the in-core cycle counts, touching
// 2 words for copy/compare/apply and 1 for scan.
func TestDeriveBandwidthBound(t *testing.T) {
	m := testModel()
	m.P.CPUMHz, m.P.IPC = 500, 1 // 2 ns/cycle: in-core copy = 4 ns
	m.P.MemGBps = 0.4            // 8 B / 0.4 GB/s = 20 ns per copied word
	cm := m.Derive()
	if cm.WordCopy != 20 || cm.WordCompare != 20 || cm.WordApply != 20 {
		t.Errorf("bandwidth-bound word costs = %d/%d/%d, want 20/20/20",
			cm.WordCopy, cm.WordCompare, cm.WordApply)
	}
	if cm.WordScan != 10 {
		t.Errorf("scan touches one word: got %d, want 10", cm.WordScan)
	}
	// Fast memory hands the bound back to the in-core term.
	m.P.MemGBps = 100
	if cm := m.Derive(); cm.WordCopy != 4 {
		t.Errorf("in-core-bound copy = %d, want 4", cm.WordCopy)
	}
}

func TestDeriveCorrections(t *testing.T) {
	m := testModel()
	m.C = Corrections{MsgFixed: 2, PerByte: 0.5, Latency: 1.5, MemMgmt: 2, PerWord: 4}
	cm := m.Derive()
	base := testModel().Derive()
	if cm.SendFixed != 2*base.SendFixed || cm.HandlerFixed != 2*base.HandlerFixed {
		t.Errorf("MsgFixed=2: send/handler = %v/%v", cm.SendFixed, cm.HandlerFixed)
	}
	if cm.SendPerByte != 45 || cm.LinkPerByte != 40 {
		t.Errorf("PerByte=0.5: per-byte = %v/%v, want 45/40", cm.SendPerByte, cm.LinkPerByte)
	}
	if cm.WireLatency != 150*sim.Microsecond {
		t.Errorf("Latency=1.5: wire latency = %v", cm.WireLatency)
	}
	if cm.ProtFault != 2*base.ProtFault || cm.InstrStoreOpt != 520 {
		t.Errorf("MemMgmt=2: fault/storeOpt = %v/%v", cm.ProtFault, cm.InstrStoreOpt)
	}
	if cm.WordCompare != 300 {
		t.Errorf("PerWord=4: compare = %v, want 300", cm.WordCompare)
	}
}

func TestValidateAndStatus(t *testing.T) {
	m := testModel()
	m.Refs = []Reference{
		{Name: "rtt", Want: 1000, Unit: "µs", Tol: 0.02, Quantity: RTTUs},
		{Name: "bulk", Want: 11, Unit: "MB/s", Tol: 0.03, Quantity: BulkMBps},
	}
	checks := m.Validate()
	if len(checks) != 2 || Status(checks) != "validated" {
		t.Fatalf("checks = %+v", checks)
	}
	if math.Abs(checks[0].Got-1005.76) > 1e-9 {
		t.Errorf("rtt got = %v, want 1005.76", checks[0].Got)
	}
	if got := MaxErr(checks); math.Abs(got-checks[1].RelErr) > 1e-12 {
		t.Errorf("MaxErr = %v, want the bulk error %v", got, checks[1].RelErr)
	}
	// A tolerance below the actual error flips the table to failing.
	m.Refs[0].Tol = 0.001
	if got := Status(m.Validate()); got != "failing" {
		t.Errorf("status = %q, want failing", got)
	}
}

// TestFitRoundTrip plants known correction factors, generates reference
// values from the corrected model, and checks Fit recovers the factors from
// the identity start within a few percent.
func TestFitRoundTrip(t *testing.T) {
	target := Corrections{MsgFixed: 1.5, PerByte: 1.2, Latency: 0.8, MemMgmt: 1.25, PerWord: 0.6}
	corrupted := testModel()
	corrupted.C = target
	tcm := corrupted.Derive()

	// One reference per correction group, so the system is identifiable.
	refs := []Reference{
		{Name: "send fixed", Want: float64(tcm.SendFixed), Tol: 0.05,
			Quantity: func(cm fabric.CostModel) float64 { return float64(cm.SendFixed) }},
		{Name: "per byte", Want: float64(tcm.SendPerByte), Tol: 0.05,
			Quantity: func(cm fabric.CostModel) float64 { return float64(cm.SendPerByte) }},
		{Name: "latency", Want: float64(tcm.WireLatency), Tol: 0.05,
			Quantity: func(cm fabric.CostModel) float64 { return float64(cm.WireLatency) }},
		{Name: "fault", Want: float64(tcm.ProtFault), Tol: 0.05,
			Quantity: func(cm fabric.CostModel) float64 { return float64(cm.ProtFault) }},
		{Name: "compare", Want: float64(tcm.WordCompare), Tol: 0.05,
			Quantity: func(cm fabric.CostModel) float64 { return float64(cm.WordCompare) }},
	}
	fitted, rms, err := testModel().Fit(refs)
	if err != nil {
		t.Fatal(err)
	}
	if rms > 0.02 {
		t.Errorf("final RMS relative error %v > 0.02", rms)
	}
	pairs := []struct {
		name      string
		got, want float64
	}{
		{"MsgFixed", fitted.MsgFixed, target.MsgFixed},
		{"PerByte", fitted.PerByte, target.PerByte},
		{"Latency", fitted.Latency, target.Latency},
		{"MemMgmt", fitted.MemMgmt, target.MemMgmt},
		{"PerWord", fitted.PerWord, target.PerWord},
	}
	for _, p := range pairs {
		if math.Abs(p.got-p.want)/p.want > 0.05 {
			t.Errorf("%s = %v, want %v within 5%%", p.name, p.got, p.want)
		}
	}
	// The fitted model must validate against the same references.
	refitted := testModel()
	refitted.C = fitted
	refitted.Refs = refs
	if got := Status(refitted.Validate()); got != "validated" {
		t.Errorf("fitted model status = %q: %+v", got, refitted.Validate())
	}
}

func TestFitNeedsReferences(t *testing.T) {
	if _, _, err := testModel().Fit(nil); err == nil {
		t.Error("Fit with no references must fail")
	}
}

func TestResolve(t *testing.T) {
	base := fabric.DefaultCostModel()
	good := []struct {
		spec string
		want fabric.CostModel
	}{
		{"paper", base},
		{"paper+net=x2", base.ScaleNetwork(2)},
		{"paper+net=x2+cpu=x4", base.ScaleNetwork(2).ScaleCPU(4)},
		{"paper+detect=hw+diff=free", base.HardwareWriteDetection().ZeroCostDiff()},
		{"net-x2", base.ScaleNetwork(2)}, // knob presets resolve too
	}
	for _, tc := range good {
		cm, err := Resolve(tc.spec)
		if err != nil {
			t.Errorf("Resolve(%q): %v", tc.spec, err)
			continue
		}
		if cm != tc.want {
			t.Errorf("Resolve(%q) = %+v, want %+v", tc.spec, cm, tc.want)
		}
	}
	bad := []struct {
		spec, msg string
	}{
		{"nope", "valid:"},
		{"paper+net", "not a knob setting"},
		{"paper+net=x0", "positive xK factor"},
		{"paper+net=x2junk", "positive xK factor"},
		{"paper+detect=sw", `knob "detect" takes "hw"`},
		{"paper+bogus=1", "unknown knob"},
	}
	for _, tc := range bad {
		_, err := Resolve(tc.spec)
		if err == nil {
			t.Errorf("Resolve(%q) accepted", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.msg) {
			t.Errorf("Resolve(%q) error %q does not mention %q", tc.spec, err, tc.msg)
		}
	}
}

func TestRegisterRejectsInvalidModels(t *testing.T) {
	for _, m := range []Model{
		{Name: ""},
		{Name: "bad-cpu", P: Primitives{CPUMHz: 0, IPC: 1, WireGbps: 1}},
		{Name: "bad-wire", P: Primitives{CPUMHz: 100, IPC: 1, WireGbps: 0}},
		{Name: "bad-corr", P: Primitives{CPUMHz: 100, IPC: 1, WireGbps: 1},
			C: Corrections{MsgFixed: 100}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q) did not panic", m.Name)
				}
			}()
			Register(m)
		}()
	}
}
