package platform

import (
	"fmt"
	"math"
)

// Fit is the system-identification pass: it solves for the bounded
// correction terms that minimize the summed squared relative error of the
// model's predictions against the reference timings, and returns the fitted
// corrections with the final root-mean-square relative error. The model
// itself is not modified — a model file bakes the fitted terms in (and
// records the session in its changelog), so Derive stays pure.
//
// The solver is damped Gauss-Newton over the five correction factors with a
// forward-difference Jacobian: each iteration solves (JᵀJ + λI)δ = -Jᵀr,
// halves the step while it does not improve the cost, and clamps every
// factor to [CorrMin, CorrMax]. The finite-difference step (2%) is large
// against the simulator's nanosecond quantization, so the staircase in
// Derive's rounding does not flatten the gradient for µs-scale references.
// At least one reference per correction group is needed for the ridge term
// not to dominate; unconstrained factors stay at their starting value.
func (m Model) Fit(refs []Reference) (Corrections, float64, error) {
	if len(refs) == 0 {
		return Corrections{}, 0, fmt.Errorf("platform: model %q: Fit needs at least one reference", m.Name)
	}
	const (
		nParams = 5
		step    = 0.02 // forward-difference step in correction units
		ridge   = 1e-6
		iters   = 40
	)
	x := corrVec(m.C.normalized())
	residuals := func(x [nParams]float64) []float64 {
		trial := m
		trial.C = vecCorr(x)
		cm := trial.Derive()
		r := make([]float64, len(refs))
		for i, ref := range refs {
			got := ref.Quantity(cm)
			if ref.Want != 0 {
				r[i] = (got - ref.Want) / ref.Want
			} else {
				r[i] = got
			}
		}
		return r
	}
	cost := func(r []float64) float64 {
		var s float64
		for _, v := range r {
			s += v * v
		}
		return s
	}

	r := residuals(x)
	c := cost(r)
	for iter := 0; iter < iters; iter++ {
		// Forward-difference Jacobian, clamped so probes stay in bounds.
		var jac [][nParams]float64 // len(refs) rows
		jac = make([][nParams]float64, len(refs))
		for p := 0; p < nParams; p++ {
			xp := x
			h := step
			if xp[p]+h > CorrMax {
				h = -step
			}
			xp[p] += h
			rp := residuals(xp)
			for i := range refs {
				jac[i][p] = (rp[i] - r[i]) / h
			}
		}
		// Normal equations (JᵀJ + λI)δ = -Jᵀr.
		var a [nParams][nParams]float64
		var b [nParams]float64
		for i := range refs {
			for p := 0; p < nParams; p++ {
				b[p] -= jac[i][p] * r[i]
				for q := 0; q < nParams; q++ {
					a[p][q] += jac[i][p] * jac[i][q]
				}
			}
		}
		for p := 0; p < nParams; p++ {
			a[p][p] += ridge
		}
		delta, ok := solve(a, b)
		if !ok {
			break
		}
		// Backtracking line search: halve the step until the cost improves.
		improved := false
		for scale := 1.0; scale > 1.0/256; scale /= 2 {
			xn := x
			for p := 0; p < nParams; p++ {
				xn[p] = clamp(x[p]+scale*delta[p], CorrMin, CorrMax)
			}
			rn := residuals(xn)
			if cn := cost(rn); cn < c {
				x, r, c = xn, rn, cn
				improved = true
				break
			}
		}
		if !improved || c < 1e-16 {
			break
		}
	}
	return vecCorr(x), math.Sqrt(c / float64(len(refs))), nil
}

func corrVec(c Corrections) [5]float64 {
	return [5]float64{c.MsgFixed, c.PerByte, c.Latency, c.MemMgmt, c.PerWord}
}

func vecCorr(x [5]float64) Corrections {
	return Corrections{MsgFixed: x[0], PerByte: x[1], Latency: x[2], MemMgmt: x[3], PerWord: x[4]}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// solve returns the solution of the 5x5 system a·x = b by Gaussian
// elimination with partial pivoting, or ok=false when singular.
func solve(a [5][5]float64, b [5]float64) ([5]float64, bool) {
	const n = 5
	for col := 0; col < n; col++ {
		pivot := col
		for row := col + 1; row < n; row++ {
			if math.Abs(a[row][col]) > math.Abs(a[pivot][col]) {
				pivot = row
			}
		}
		if math.Abs(a[pivot][col]) < 1e-15 {
			return b, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for row := col + 1; row < n; row++ {
			f := a[row][col] / a[col][col]
			for k := col; k < n; k++ {
				a[row][k] -= f * a[col][k]
			}
			b[row] -= f * b[col]
		}
	}
	var x [5]float64
	for row := n - 1; row >= 0; row-- {
		s := b[row]
		for k := row + 1; k < n; k++ {
			s -= a[row][k] * x[k]
		}
		x[row] = s / a[row][row]
	}
	return x, true
}
