package platform

import (
	"fmt"
	"strconv"
	"strings"

	"ecvslrc/internal/fabric"
)

// registered holds the model library in registration order. The shipped
// models live in internal/platform/models (one directory per platform);
// importing that package populates this registry at init time, so the order
// — and therefore fabric.Presets() — is deterministic.
var registered []Model

// Register adds a model to the library and surfaces it as a fabric cost
// preset, so every preset consumer (CLIs, sweep axes, the root API) resolves
// it by name. Registration happens at init time from a model library
// package; an invalid model or duplicate name is a programming error and
// panics.
func Register(m Model) {
	if err := m.validate(); err != nil {
		panic(err)
	}
	if _, ok := ByName(m.Name); ok {
		panic(fmt.Sprintf("platform: duplicate model %q", m.Name))
	}
	fabric.RegisterPreset(fabric.Preset{Name: m.Name, Desc: m.Desc, Cost: m.Derive()})
	registered = append(registered, m)
}

// Models lists the registered models in registration order.
func Models() []Model {
	out := make([]Model, len(registered))
	copy(out, registered)
	return out
}

// ByName looks up a registered model.
func ByName(name string) (Model, bool) {
	for _, m := range registered {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}

// knob is one composable cost-model transform Resolve accepts after the
// preset name. The set mirrors the sweep engine's cost axes (net, cpu,
// detect, diff); contention, faults and topologies are run options, not
// cost-model transforms, and stay out of cost specs.
type knob struct {
	name    string
	numeric bool // takes a xK factor
	apply   func(cm fabric.CostModel, k float64) fabric.CostModel
	value   string // fixed value for enumerated knobs ("hw", "free")
}

func knobs() []knob {
	return []knob{
		{name: "net", numeric: true,
			apply: func(cm fabric.CostModel, k float64) fabric.CostModel { return cm.ScaleNetwork(k) }},
		{name: "cpu", numeric: true,
			apply: func(cm fabric.CostModel, k float64) fabric.CostModel { return cm.ScaleCPU(k) }},
		{name: "detect", value: "hw",
			apply: func(cm fabric.CostModel, _ float64) fabric.CostModel { return cm.HardwareWriteDetection() }},
		{name: "diff", value: "free",
			apply: func(cm fabric.CostModel, _ float64) fabric.CostModel { return cm.ZeroCostDiff() }},
	}
}

// knobSyntax names the accepted knob spellings for error messages.
const knobSyntax = "net=xK, cpu=xK, detect=hw, diff=free"

// Resolve turns a cost spec into a cost model. A spec is a preset name —
// any registered platform model or knob-composed preset — optionally
// followed by "+"-separated knob settings applied left to right:
//
//	paper
//	rdma_100g
//	cluster_gbe+net=x2
//	decstation_atm+detect=hw+diff=free
//
// This is the single entry point every CLI resolves its -preset flag
// through, so "dsmrun -preset X", "dsmsweep -preset X" and "dsmbench
// -preset X" accept identical specs. Unknown names and malformed knobs are
// reported with the valid set.
func Resolve(spec string) (fabric.CostModel, error) {
	parts := strings.Split(spec, "+")
	cm, err := fabric.PresetByName(parts[0])
	if err != nil {
		return fabric.CostModel{}, err
	}
	for _, part := range parts[1:] {
		cm, err = applyKnob(cm, part, spec)
		if err != nil {
			return fabric.CostModel{}, err
		}
	}
	return cm, nil
}

func applyKnob(cm fabric.CostModel, part, spec string) (fabric.CostModel, error) {
	name, val, ok := strings.Cut(part, "=")
	if !ok {
		return cm, fmt.Errorf("platform: cost spec %q: %q is not a knob setting (knobs: %s)",
			spec, part, knobSyntax)
	}
	for _, k := range knobs() {
		if k.name != name {
			continue
		}
		if !k.numeric {
			if val != k.value {
				return cm, fmt.Errorf("platform: cost spec %q: knob %q takes %q, got %q",
					spec, name, k.value, val)
			}
			return k.apply(cm, 0), nil
		}
		factor, err := strconv.ParseFloat(strings.TrimPrefix(val, "x"), 64)
		if err != nil || factor <= 0 {
			return cm, fmt.Errorf("platform: cost spec %q: knob %q needs a positive xK factor, got %q",
				spec, name, val)
		}
		return k.apply(cm, factor), nil
	}
	return cm, fmt.Errorf("platform: cost spec %q: unknown knob %q (knobs: %s)",
		spec, name, knobSyntax)
}
