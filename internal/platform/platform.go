// Package platform is the machine-model library behind the cost presets: a
// Model owns the primitive parameters of one hardware platform (clock rate,
// messaging software path lengths, wire bandwidth, switch latency, syscall
// costs, per-word software bandwidth) in the units its spec sheet publishes,
// and derives every fabric.CostModel constant from them with documented
// formulas. Each model validates itself — Validate recomputes observable
// quantities (small-message round trip, bulk bandwidth, barrier and
// page-fetch estimates) and reports the relative error against published or
// measured reference numbers — and can run a least-squares system-
// identification pass (Fit) that solves for bounded correction terms from
// reference timings, the way the in-core processor-modeling literature
// calibrates machine models.
//
// Models register themselves (Register) and surface as fabric cost presets,
// so `dsmrun -preset rdma_100g` and the sweep engine's `platform=` axis
// resolve them by name; Resolve composes a registered model with the
// sensitivity knobs ("rdma_100g+net=x2"). The shipped model library lives in
// internal/platform/models, one directory per platform with an append-only
// CHANGELOG.md; importing that package populates the registry.
package platform

import (
	"fmt"
	"math"

	"ecvslrc/internal/fabric"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/sim"
)

// Primitives are the published platform constants a model is built from.
// Every field is in the unit its source material uses (instruction counts,
// MHz, Gbit/s, µs), so a model file reads like the spec sheets and papers it
// cites; Derive converts them into the simulator's nanosecond cost constants.
type Primitives struct {
	// CPUMHz is the core clock in MHz.
	CPUMHz float64
	// IPC is the sustained instructions per cycle on the DSM software paths
	// (protocol code, not peak vector issue width).
	IPC float64

	// SendInstrs is the instruction count of the message-send software path:
	// system call or doorbell, protocol framing, transmit setup.
	SendInstrs float64
	// HandlerInstrs is the instruction count to field an incoming message:
	// interrupt or completion-queue poll, reassembly, handler dispatch.
	HandlerInstrs float64
	// NICPerByteNs is the per-byte CPU cost in ns of moving payload into the
	// NIC (programmed I/O or a bounce-buffer copy); 0 models zero-copy DMA.
	NICPerByteNs float64
	// WireGbps is the raw link bandwidth in Gbit/s.
	WireGbps float64
	// SwitchDelayUs is the switch traversal plus delivery-notification
	// latency in µs, from the end of the send to the start of the handler.
	SwitchDelayUs float64

	// FaultInstrs is the instruction count of a protection fault: trap
	// delivery, signal-handler entry and resumption.
	FaultInstrs float64
	// MProtectInstrs is the instruction count of one single-page mprotect.
	MProtectInstrs float64

	// StoreCycles is the cycle cost per instrumented store (the software
	// dirty-bit code); StoreOptCycles is the same after the Section 4.1
	// loop-splitting optimization.
	StoreCycles    float64
	StoreOptCycles float64

	// CopyCycles, CompareCycles, ScanCycles and ApplyCycles are the in-core
	// per-word cycle costs of twin creation, twin comparison, timestamp or
	// dirty-bit scanning, and applying received data. Derive takes the
	// ECM-style maximum of this in-core term and the memory-bandwidth term
	// (bytes touched per word / MemGBps), so bandwidth-starved platforms are
	// memory-bound and modern cores are instruction-bound.
	CopyCycles    float64
	CompareCycles float64
	ScanCycles    float64
	ApplyCycles   float64
	// MemGBps is the sustained memory bandwidth in GB/s feeding the per-word
	// bound above; 0 disables the bandwidth term (the in-core cycle counts
	// are then taken as already calibrated).
	MemGBps float64
}

// Corrections are bounded multiplicative correction terms applied to groups
// of derived constants — the system-identification residue that absorbs what
// the primitives do not capture (cache effects on the send path, protocol
// overheads, timer granularity). The zero value means "no correction"
// (every factor 1); Fit solves for them from reference timings and clamps
// each factor to [CorrMin, CorrMax].
type Corrections struct {
	// MsgFixed scales the fixed messaging software (SendFixed, HandlerFixed).
	MsgFixed float64
	// PerByte scales the per-byte path (SendPerByte, LinkPerByte).
	PerByte float64
	// Latency scales the switch+notification latency (WireLatency).
	Latency float64
	// MemMgmt scales the memory-management software (ProtFault, MProtect,
	// InstrStore, InstrStoreOpt).
	MemMgmt float64
	// PerWord scales the per-word collection costs (WordCopy, WordCompare,
	// WordScan, WordApply).
	PerWord float64
}

// Correction-factor bounds enforced by Fit: a correction outside this range
// means the primitives are wrong, not in need of a trim.
const (
	CorrMin = 0.25
	CorrMax = 4.0
)

// normalized maps the zero value to the identity correction.
func (c Corrections) normalized() Corrections {
	one := func(f float64) float64 {
		if f == 0 {
			return 1
		}
		return f
	}
	return Corrections{
		MsgFixed: one(c.MsgFixed),
		PerByte:  one(c.PerByte),
		Latency:  one(c.Latency),
		MemMgmt:  one(c.MemMgmt),
		PerWord:  one(c.PerWord),
	}
}

// Reference is one published or measured quantity a model is validated (and
// optionally fitted) against: a derived prediction computed from the cost
// model, the reference value, and the relative error the model claims to
// stay within.
type Reference struct {
	Name string
	// Want is the reference value in Unit; Source says where it comes from.
	Want   float64
	Unit   string
	Source string
	// Tol is the model's stated calibration error for this quantity: Validate
	// fails the check when the relative error exceeds it.
	Tol float64
	// Quantity computes the model's prediction from the derived constants.
	Quantity func(fabric.CostModel) float64
}

// Check is the outcome of validating one Reference.
type Check struct {
	Name   string
	Unit   string
	Got    float64
	Want   float64
	RelErr float64
	Tol    float64
	Source string
}

// Pass reports whether the check stayed within its stated calibration error.
func (c Check) Pass() bool { return c.RelErr <= c.Tol }

// Model is one platform: metadata for the status table, the primitive
// parameters, the fitted correction terms, and the reference quantities it
// validates against.
type Model struct {
	// Name is the preset name ("decstation_atm"); Desc the one-line summary.
	Name string
	Desc string
	// Priority ranks the model in the status table (P0 highest).
	Priority string
	P        Primitives
	C        Corrections
	Refs     []Reference
}

// round converts a float nanosecond quantity to the nearest simulated
// nanosecond — the simulator's resolution. Sub-nanosecond costs quantize
// (possibly to zero); models whose per-byte or per-word primitives fall
// below 0.5 ns must document the resulting calibration error.
func round(ns float64) sim.Time { return sim.Time(math.Round(ns)) }

// Derive computes the full cost model from the primitives, with the
// correction terms applied before nanosecond rounding. The formulas:
//
//	instr       = 1000 / (CPUMHz * IPC)                ns per instruction
//	cycle       = 1000 / CPUMHz                        ns per cycle
//	wire        = 8 / WireGbps                         ns per byte
//	SendFixed   = SendInstrs * instr                   * MsgFixed
//	SendPerByte = (NICPerByteNs + wire)                * PerByte
//	WireLatency = SwitchDelayUs * 1000                 * Latency
//	HandlerFixed= HandlerInstrs * instr                * MsgFixed
//	ProtFault   = FaultInstrs * instr                  * MemMgmt
//	MProtect    = MProtectInstrs * instr               * MemMgmt
//	InstrStore  = StoreCycles * cycle                  * MemMgmt   (Opt likewise)
//	Word*       = max(Cycles * cycle, bytes/MemGBps)   * PerWord
//	LinkPerByte = wire                                 * PerByte
//
// where the per-word bandwidth term touches 2 words of memory for copy,
// compare and apply (data + twin, or read + write) and 1 for scan. Derive is
// pure: the same model always yields the same constants.
func (m Model) Derive() fabric.CostModel {
	p, c := m.P, m.C.normalized()
	instr := 1000 / (p.CPUMHz * p.IPC)
	cycle := 1000 / p.CPUMHz
	wire := 8 / p.WireGbps
	word := func(cycles, bytes float64) sim.Time {
		t := cycles * cycle
		if p.MemGBps > 0 {
			if bw := bytes / p.MemGBps; bw > t {
				t = bw
			}
		}
		return round(t * c.PerWord)
	}
	return fabric.CostModel{
		SendFixed:     round(p.SendInstrs * instr * c.MsgFixed),
		SendPerByte:   round((p.NICPerByteNs + wire) * c.PerByte),
		WireLatency:   round(p.SwitchDelayUs * 1000 * c.Latency),
		HandlerFixed:  round(p.HandlerInstrs * instr * c.MsgFixed),
		ProtFault:     round(p.FaultInstrs * instr * c.MemMgmt),
		MProtect:      round(p.MProtectInstrs * instr * c.MemMgmt),
		InstrStore:    round(p.StoreCycles * cycle * c.MemMgmt),
		InstrStoreOpt: round(p.StoreOptCycles * cycle * c.MemMgmt),
		WordCopy:      word(p.CopyCycles, 2*mem.WordSize),
		WordCompare:   word(p.CompareCycles, 2*mem.WordSize),
		WordScan:      word(p.ScanCycles, mem.WordSize),
		WordApply:     word(p.ApplyCycles, 2*mem.WordSize),
		LinkPerByte:   round(wire * c.PerByte),
	}
}

// Validate recomputes every reference quantity from the derived constants
// and reports the per-check relative error against the reference value. A
// model is calibrated when every check passes its stated tolerance; MaxErr
// summarizes the table for the status line.
func (m Model) Validate() []Check {
	cm := m.Derive()
	out := make([]Check, 0, len(m.Refs))
	for _, r := range m.Refs {
		got := r.Quantity(cm)
		out = append(out, Check{
			Name: r.Name, Unit: r.Unit, Got: got, Want: r.Want,
			RelErr: relErr(got, r.Want), Tol: r.Tol, Source: r.Source,
		})
	}
	return out
}

// relErr is |got-want|/|want|, degrading to |got| when the reference is zero
// (checks that pin a constant at exactly zero).
func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// MaxErr returns the largest relative error in a validation table — the
// model's calibration error as recorded in the status table.
func MaxErr(checks []Check) float64 {
	var max float64
	for _, c := range checks {
		if c.RelErr > max {
			max = c.RelErr
		}
	}
	return max
}

// Status summarizes a validation table for the status line: "validated" when
// every check passes its stated tolerance, "failing" otherwise.
func Status(checks []Check) string {
	for _, c := range checks {
		if !c.Pass() {
			return "failing"
		}
	}
	return "validated"
}

// The derived observable quantities models validate against. Message sizes
// are on-the-wire bytes including the fabric.MsgHeader framing; the helpers
// mirror how the simulator charges the corresponding operations.

// OneWayUs is the one-way latency in µs of a message of size bytes: sender
// software and per-byte cost, switch traversal, receiver handler entry.
func OneWayUs(cm fabric.CostModel, size int) float64 {
	return (cm.MsgCost(size) + cm.WireLatency + cm.HandlerFixed).Micros()
}

// RTTUs is the small-message round trip in µs (request and reply, header
// only) — the remote-lock-acquisition shape.
func RTTUs(cm fabric.CostModel) float64 {
	return 2 * OneWayUs(cm, fabric.MsgHeader)
}

// BarrierUs estimates an nprocs flat barrier in µs: the last arrival's
// round trip plus the manager serially fielding the other arrivals.
func BarrierUs(cm fabric.CostModel, nprocs int) float64 {
	return RTTUs(cm) + float64(nprocs-1)*cm.HandlerFixed.Micros()
}

// PageFetchUs is a remote page fetch in µs: a header-only request one way, a
// full-page reply back.
func PageFetchUs(cm fabric.CostModel) float64 {
	return OneWayUs(cm, fabric.MsgHeader) + OneWayUs(cm, fabric.MsgHeader+mem.PageSize)
}

// BulkMBps is the effective bulk-transfer bandwidth in MB/s implied by the
// per-byte send cost. It is +Inf when the per-byte cost quantized to zero
// (wire bandwidth beyond the 1 ns/byte simulator resolution); such models
// validate their page-fetch estimate instead.
func BulkMBps(cm fabric.CostModel) float64 {
	if cm.SendPerByte == 0 {
		return math.Inf(1)
	}
	return 1000 / float64(cm.SendPerByte)
}

// PageCopyUs is the cost in µs of twinning one full page word by word.
func PageCopyUs(cm fabric.CostModel) float64 {
	return (sim.Time(mem.PageWords) * cm.WordCopy).Micros()
}

// PageCompareUs is the cost in µs of diffing one full page against its twin.
func PageCompareUs(cm fabric.CostModel) float64 {
	return (sim.Time(mem.PageWords) * cm.WordCompare).Micros()
}

// ProtFaultUs is the protection-fault cost in µs.
func ProtFaultUs(cm fabric.CostModel) float64 { return cm.ProtFault.Micros() }

// validate reports whether the model definition itself is usable.
func (m Model) validate() error {
	if m.Name == "" {
		return fmt.Errorf("platform: model with empty name")
	}
	p := m.P
	switch {
	case p.CPUMHz <= 0 || p.IPC <= 0:
		return fmt.Errorf("platform: model %q: CPU clock and IPC must be positive", m.Name)
	case p.WireGbps <= 0:
		return fmt.Errorf("platform: model %q: wire bandwidth must be positive", m.Name)
	case p.SendInstrs < 0 || p.HandlerInstrs < 0 || p.NICPerByteNs < 0 ||
		p.SwitchDelayUs < 0 || p.FaultInstrs < 0 || p.MProtectInstrs < 0 ||
		p.StoreCycles < 0 || p.StoreOptCycles < 0 || p.CopyCycles < 0 ||
		p.CompareCycles < 0 || p.ScanCycles < 0 || p.ApplyCycles < 0 || p.MemGBps < 0:
		return fmt.Errorf("platform: model %q: negative primitive", m.Name)
	}
	c := m.C.normalized()
	for _, f := range []float64{c.MsgFixed, c.PerByte, c.Latency, c.MemMgmt, c.PerWord} {
		if f < CorrMin || f > CorrMax {
			return fmt.Errorf("platform: model %q: correction %g outside [%g, %g]",
				m.Name, f, CorrMin, CorrMax)
		}
	}
	return nil
}
