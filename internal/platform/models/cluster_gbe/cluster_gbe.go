// Package cluster_gbe models a late-1990s gigabit cluster: 500 MHz Pentium
// III nodes, kernel UDP/IP messaging over gigabit Ethernet with a single
// bounce-buffer copy, PC100 SDRAM memory. It replaces the hand-waved
// "modern" knob preset ("10x network and 25x CPU") with constants derived
// from published numbers; the knob preset stays registered for
// compatibility but this model is the late-90s platform of record.
package cluster_gbe

import (
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/platform"
)

// Model returns the late-90s gigabit-cluster platform.
//
// Primitive derivation (500 MHz, 1 instruction/cycle → 2 ns/instr):
//
//	SendInstrs     12500 → SendFixed    25 µs   kernel UDP/IP send path
//	HandlerInstrs   7500 → HandlerFixed 15 µs   interrupt + protocol receive
//	NICPerByteNs       7 → with the 8 ns/B wire share: SendPerByte 15 ns
//	WireGbps           1 → LinkPerByte 8 ns     1 Gbit/s = 125 MB/s raw
//	SwitchDelayUs     35 → WireLatency 35 µs    store-and-forward switch + IRQ
//	FaultInstrs     3000 → ProtFault    6 µs    Linux 2.2-era SIGSEGV
//	MProtectInstrs  1500 → MProtect     3 µs
//	StoreCycles        9 → InstrStore  18 ns
//	StoreOptCycles     5 → InstrStoreOpt 10 ns
//	Copy/Cmp/Scan/Apply 2/3/2/2 cycles, MemGBps 0.4 (PC100 sustained):
//	  the bandwidth bound dominates the in-core term — copy/compare/apply
//	  touch 8 B per word → 20 ns; scan touches 4 B → 10 ns.
//
// Word-granularity protocol work on this platform is memory-bound, not
// instruction-bound — the first platform in the library where the ECM-style
// max() in platform.Derive switches sides.
func Model() platform.Model {
	return platform.Model{
		Name:     "cluster_gbe",
		Desc:     "late-90s gigabit cluster: 500 MHz PIII, kernel UDP over GbE, PC100 SDRAM",
		Priority: "P1",
		P: platform.Primitives{
			CPUMHz:         500,
			IPC:            1,
			SendInstrs:     12500,
			HandlerInstrs:  7500,
			NICPerByteNs:   7,
			WireGbps:       1,
			SwitchDelayUs:  35,
			FaultInstrs:    3000,
			MProtectInstrs: 1500,
			StoreCycles:    9,
			StoreOptCycles: 5,
			CopyCycles:     2,
			CompareCycles:  3,
			ScanCycles:     2,
			ApplyCycles:    2,
			MemGBps:        0.4,
		},
		Refs: []platform.Reference{
			{
				Name: "small-message round trip", Want: 155, Unit: "µs", Tol: 0.05,
				Source:   "published UDP/IP RTTs on late-90s gigabit NICs (~150-160 µs without interrupt coalescing)",
				Quantity: platform.RTTUs,
			},
			{
				Name: "bulk transfer bandwidth", Want: 65, Unit: "MB/s", Tol: 0.05,
				Source:   "netperf-class kernel UDP throughput on 500 MHz hosts (~65 MB/s, CPU-bound below line rate)",
				Quantity: platform.BulkMBps,
			},
			{
				Name: "8-processor barrier", Want: 250, Unit: "µs", Tol: 0.05,
				Source:   "central-manager barrier estimate at the measured RTT and handler costs",
				Quantity: func(cm fabric.CostModel) float64 { return platform.BarrierUs(cm, 8) },
			},
			{
				Name: "4 KB page fetch", Want: 220, Unit: "µs", Tol: 0.07,
				Source:   "request + full-page reply at the measured message costs",
				Quantity: platform.PageFetchUs,
			},
			{
				Name: "4 KB page twin (memcpy)", Want: 20, Unit: "µs", Tol: 0.05,
				Source:   "PC100 memcpy: 8 KB touched at ~0.4 GB/s sustained ≈ 20 µs per page",
				Quantity: platform.PageCopyUs,
			},
		},
	}
}
