// Package decstation_atm models the paper's experimental platform: eight
// DECstation-5000/240 workstations (40 MHz MIPS R3400) on a 100 Mbps Fore
// ATM LAN with programmed-I/O AAL3/4 messaging, SIGIO request handling and
// Ultrix mprotect/SIGSEGV memory protection.
//
// This is the anchor model of the library: its derivation must reproduce
// fabric.DefaultCostModel() bit-exactly (pinned by
// TestDECstationModelMatchesDefault), so every golden in the repository
// rests on these primitives. Change them only together with a reviewed
// golden revision and a changelog entry.
package decstation_atm

import (
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/platform"
)

// Model returns the calibrated paper platform.
//
// Primitive derivation (40 MHz, 1 instruction/cycle → 25 ns/instr):
//
//	SendInstrs     10000 → SendFixed    250 µs   user-level AAL3/4 send path
//	HandlerInstrs   6000 → HandlerFixed 150 µs   SIGIO + reassembly + dispatch
//	NICPerByteNs      10 → with the 80 ns/B wire share: SendPerByte 90 ns
//	WireGbps         0.1 → LinkPerByte 80 ns     100 Mbps raw ATM = 12.5 MB/s
//	SwitchDelayUs    100 → WireLatency 100 µs    switch + interrupt delivery
//	FaultInstrs     4800 → ProtFault   120 µs    Ultrix SIGSEGV round trip
//	MProtectInstrs  1200 → MProtect     30 µs    one-page mprotect
//	StoreCycles       18 → InstrStore  450 ns    dirty-bit vector + set
//	StoreOptCycles  10.4 → InstrStoreOpt 260 ns  after Section 4.1 splitting
//	Copy/Cmp/Scan/Apply 2/3/2/2 cycles → 50/75/50/50 ns per word
//
// MemGBps is 0: the per-word cycle counts were calibrated end to end against
// the paper's microbenchmarks, so the memory-bandwidth bound is already
// folded in.
func Model() platform.Model {
	return platform.Model{
		Name:     "decstation_atm",
		Desc:     "DECstation-5000/240 + 100 Mbps ATM (the paper platform, derived from primitives)",
		Priority: "—",
		P: platform.Primitives{
			CPUMHz:         40,
			IPC:            1,
			SendInstrs:     10000,
			HandlerInstrs:  6000,
			NICPerByteNs:   10,
			WireGbps:       0.1,
			SwitchDelayUs:  100,
			FaultInstrs:    4800,
			MProtectInstrs: 1200,
			StoreCycles:    18,
			StoreOptCycles: 10.4,
			CopyCycles:     2,
			CompareCycles:  3,
			ScanCycles:     2,
			ApplyCycles:    2,
		},
		Refs: []platform.Reference{
			{
				Name: "remote lock acquisition", Want: 1000, Unit: "µs", Tol: 0.02,
				Source:   "TreadMarks on this platform: ~1 ms remote lock acquisition (Keleher et al. 1994)",
				Quantity: platform.RTTUs,
			},
			{
				Name: "8-processor barrier", Want: 2000, Unit: "µs", Tol: 0.05,
				Source:   "TreadMarks on this platform: ~2 ms 8-processor barriers (Keleher et al. 1994)",
				Quantity: func(cm fabric.CostModel) float64 { return platform.BarrierUs(cm, 8) },
			},
			{
				Name: "bulk transfer bandwidth", Want: 11, Unit: "MB/s", Tol: 0.03,
				Source:   "user-level AAL3/4 effective bandwidth on the Fore TCA-100 (~11 MB/s of the 12.5 MB/s raw)",
				Quantity: platform.BulkMBps,
			},
			{
				Name: "4 KB page fetch", Want: 1400, Unit: "µs", Tol: 0.05,
				Source:   "request + full-page reply at the measured message costs: ~1.4 ms remote page fault",
				Quantity: platform.PageFetchUs,
			},
		},
	}
}
