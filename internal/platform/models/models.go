// Package models registers the platform-model library with
// internal/platform (and, through it, with the fabric preset table).
// Importing this package — usually as a blank import — makes every model
// resolvable by name via fabric.PresetByName, platform.Resolve and the
// sweep "platform=" axis.
//
// Each model lives in its own sub-package with a sibling CHANGELOG.md
// (append-only; enforced by a test and a CI grep). Registration order is
// fixed and historical: paper platform first, then newer machines.
package models

import (
	"ecvslrc/internal/platform"
	"ecvslrc/internal/platform/models/cluster_gbe"
	"ecvslrc/internal/platform/models/decstation_atm"
	"ecvslrc/internal/platform/models/grace"
	"ecvslrc/internal/platform/models/rdma_100g"
)

func init() {
	platform.Register(decstation_atm.Model())
	platform.Register(cluster_gbe.Model())
	platform.Register(rdma_100g.Model())
	platform.Register(grace.Model())
}
