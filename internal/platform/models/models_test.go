package models

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ecvslrc/internal/fabric"
	"ecvslrc/internal/platform"
)

// TestDECstationModelMatchesDefault pins the anchor contract field for field:
// the derived paper platform IS fabric.DefaultCostModel(), bit-exactly. Every
// golden in the repository rests on this; a failure here means either the
// model's primitives or the default constants changed without the other.
func TestDECstationModelMatchesDefault(t *testing.T) {
	m, ok := platform.ByName("decstation_atm")
	if !ok {
		t.Fatal("decstation_atm not registered")
	}
	got := reflect.ValueOf(m.Derive())
	want := reflect.ValueOf(fabric.DefaultCostModel())
	typ := got.Type()
	for i := 0; i < typ.NumField(); i++ {
		if g, w := got.Field(i).Interface(), want.Field(i).Interface(); g != w {
			t.Errorf("%s: derived %v, DefaultCostModel %v", typ.Field(i).Name, g, w)
		}
	}
}

// maxErrByModel is the library's stated calibration error per model — the
// numbers recorded in DESIGN.md's status table and each model's changelog.
// Tightening a model is fine; loosening one must be a reviewed change here
// AND a changelog entry.
var maxErrByModel = map[string]float64{
	"decstation_atm": 0.03,
	"cluster_gbe":    0.04,
	"rdma_100g":      0.07,
	"grace":          0.33,
}

func TestAllModelsValidate(t *testing.T) {
	if got := len(platform.Models()); got < 4 {
		t.Fatalf("model library has %d models, want >= 4", got)
	}
	for _, m := range platform.Models() {
		checks := m.Validate()
		if len(checks) < 4 {
			t.Errorf("%s: only %d reference checks, want >= 4", m.Name, len(checks))
		}
		for _, c := range checks {
			if !c.Pass() {
				t.Errorf("%s: %s = %g %s, want %g within %.0f%% (got %.1f%%) [%s]",
					m.Name, c.Name, c.Got, c.Unit, c.Want, c.Tol*100, c.RelErr*100, c.Source)
			}
			if c.Source == "" {
				t.Errorf("%s: %s: reference without a source", m.Name, c.Name)
			}
		}
		if got := platform.Status(checks); got != "validated" {
			t.Errorf("%s: status %q, want validated", m.Name, got)
		}
		ceiling, ok := maxErrByModel[m.Name]
		if !ok {
			t.Errorf("%s: not in the stated-calibration-error table; add it with its changelog entry", m.Name)
			continue
		}
		if got := platform.MaxErr(checks); got > ceiling {
			t.Errorf("%s: max calibration error %.4f exceeds the stated %.2f", m.Name, got, ceiling)
		}
	}
}

// TestModelsRegisterAsPresets checks the fabric bridge: every model resolves
// by name through the preset table to exactly its derived constants, and the
// pre-library knob presets still resolve to their historical values.
func TestModelsRegisterAsPresets(t *testing.T) {
	for _, m := range platform.Models() {
		cm, err := fabric.PresetByName(m.Name)
		if err != nil {
			t.Errorf("PresetByName(%q): %v", m.Name, err)
			continue
		}
		if cm != m.Derive() {
			t.Errorf("preset %q != model.Derive()", m.Name)
		}
	}
	base := fabric.DefaultCostModel()
	compat := map[string]fabric.CostModel{
		"paper":     base,
		"net-x2":    base.ScaleNetwork(2),
		"net-x4":    base.ScaleNetwork(4),
		"cpu-x4":    base.ScaleCPU(4),
		"hw-detect": base.HardwareWriteDetection(),
		"hw-diff":   base.ZeroCostDiff(),
		"modern":    base.ScaleNetwork(10).ScaleCPU(25),
	}
	for name, want := range compat {
		cm, err := fabric.PresetByName(name)
		if err != nil {
			t.Errorf("compat preset %q: %v", name, err)
			continue
		}
		if cm != want {
			t.Errorf("compat preset %q drifted: %+v, want %+v", name, cm, want)
		}
	}
	// Knob presets lead the table, models follow in registration order.
	names := fabric.PresetNames()
	if len(names) < 11 || names[0] != "paper" {
		t.Fatalf("preset names = %v", names)
	}
	tail := names[len(names)-4:]
	wantTail := []string{"decstation_atm", "cluster_gbe", "rdma_100g", "grace"}
	for i := range wantTail {
		if tail[i] != wantTail[i] {
			t.Errorf("registered preset order = %v, want %v", tail, wantTail)
		}
	}
}

// TestEveryModelHasChangelog enforces the library's documentation contract:
// one directory per model, each with a non-empty sibling CHANGELOG.md (the
// append-only calibration history; also enforced by the CI platform job).
func TestEveryModelHasChangelog(t *testing.T) {
	for _, m := range platform.Models() {
		path := filepath.Join(m.Name, "CHANGELOG.md")
		info, err := os.Stat(path)
		if err != nil {
			t.Errorf("%s: %v", m.Name, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("%s: empty CHANGELOG.md", m.Name)
		}
	}
}

// TestModelMetadata keeps the status table renderable: every model carries a
// description and a priority rank.
func TestModelMetadata(t *testing.T) {
	for _, m := range platform.Models() {
		if m.Desc == "" {
			t.Errorf("%s: empty description", m.Name)
		}
		if m.Priority == "" {
			t.Errorf("%s: empty priority", m.Name)
		}
	}
}
