// Package grace models a 2025 CPU-class platform after the in-core-modeling
// literature's Grace studies: a 3.4 GHz Neoverse-V2-class core (sustained
// ~3 instructions/cycle on branchy protocol code) with LPDDR5X-class memory
// at ~450 GB/s sustained, on a 400 Gb/s NDR fabric with kernel-bypass
// messaging.
//
// Per-word costs follow the ECM methodology: Derive takes
// max(in-core cycles, bytes/memory-bandwidth) per word. At 450 GB/s the
// bandwidth term is ~0.02 ns/word, so the in-core term binds — and at
// 0.88-1.47 ns/word the in-core term itself sits at the simulator's 1 ns
// resolution. The page-twin and page-diff checks carry that quantization as
// the model's dominant calibration error (~32% on word compare), recorded
// honestly in the status table: on 2025 hardware the simulator's clock tick
// is the binding constraint, not the model.
package grace

import (
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/platform"
)

// Model returns the 2025 Grace-class platform.
//
// Primitive derivation (3.4 GHz, IPC 3 → 1000/10200 ns/instr; cycle
// 0.294 ns):
//
//	SendInstrs      6120 → SendFixed   600 ns   kernel-bypass post + doorbell
//	HandlerInstrs   2550 → HandlerFixed 250 ns  CQ poll + dispatch
//	WireGbps         400 → 0.02 ns/B, below resolution → SendPerByte 0
//	SwitchDelayUs    0.8 → WireLatency 800 ns
//	FaultInstrs    25500 → ProtFault   2.5 µs   SIGSEGV deliver+resume
//	MProtectInstrs  8160 → MProtect    800 ns
//	StoreCycles        5 → 1.47 ns → InstrStore 1 ns
//	StoreOptCycles     3 → 0.88 ns → InstrStoreOpt 1 ns
//	Copy/Cmp/Scan/Apply 3/5/3/3 cycles → 0.88/1.47/0.88/0.88 ns, all
//	  rounding to 1 ns (MemGBps 450: bandwidth term ~0.02 ns never binds)
func Model() platform.Model {
	return platform.Model{
		Name:     "grace",
		Desc:     "2025 Grace-class node: 3.4 GHz Neoverse V2, ~450 GB/s memory, 400 Gb/s fabric",
		Priority: "P0",
		P: platform.Primitives{
			CPUMHz:         3400,
			IPC:            3,
			SendInstrs:     6120,
			HandlerInstrs:  2550,
			NICPerByteNs:   0,
			WireGbps:       400,
			SwitchDelayUs:  0.8,
			FaultInstrs:    25500,
			MProtectInstrs: 8160,
			StoreCycles:    5,
			StoreOptCycles: 3,
			CopyCycles:     3,
			CompareCycles:  5,
			ScanCycles:     3,
			ApplyCycles:    3,
			MemGBps:        450,
		},
		Refs: []platform.Reference{
			{
				Name: "small-message round trip", Want: 3.2, Unit: "µs", Tol: 0.06,
				Source:   "NDR-class verbs RTTs through one switch (~3-3.5 µs)",
				Quantity: platform.RTTUs,
			},
			{
				Name: "8-processor barrier", Want: 5, Unit: "µs", Tol: 0.03,
				Source:   "central-manager barrier estimate at the measured RTT and CQ-poll costs",
				Quantity: func(cm fabric.CostModel) float64 { return platform.BarrierUs(cm, 8) },
			},
			{
				Name: "4 KB page fetch", Want: 3.4, Unit: "µs", Tol: 0.06,
				Source:   "RTT + 4 KB at 50 GB/s (~0.08 µs wire, below the 1 ns/B resolution)",
				Quantity: platform.PageFetchUs,
			},
			{
				Name: "protection fault", Want: 2.5, Unit: "µs", Tol: 0.02,
				Source:   "SIGSEGV deliver+resume on current aarch64 Linux (~2.5 µs)",
				Quantity: platform.ProtFaultUs,
			},
			{
				Name: "4 KB page twin", Want: 0.9, Unit: "µs", Tol: 0.20,
				Source:   "in-core bound: 1024 words × 3 cycles at 3.4 GHz ≈ 0.90 µs; the 1 ns/word floor quantizes to 1.02 µs",
				Quantity: platform.PageCopyUs,
			},
			{
				Name: "4 KB page diff", Want: 1.51, Unit: "µs", Tol: 0.40,
				Source:   "in-core bound: 1024 words × 5 cycles ≈ 1.51 µs; quantization to 1 ns/word makes this the model's max error",
				Quantity: platform.PageCompareUs,
			},
		},
	}
}
