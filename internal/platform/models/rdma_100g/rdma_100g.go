// Package rdma_100g models a contemporary datacenter fabric point: 3 GHz
// x86 servers with 100 GbE RDMA NICs — kernel-bypass verbs send (no
// per-byte CPU cost, zero-copy DMA), microsecond-scale switch traversal,
// completion-queue polling instead of interrupts.
//
// This is the first model where the simulator's 1 ns resolution binds: the
// wire costs 0.08 ns/byte (12.5 GB/s), which quantizes to a zero per-byte
// cost — bulk bandwidth is effectively infinite and a 4 KB transfer is
// charged only its fixed costs. The page-fetch check carries that
// quantization as an honest ~7% calibration error, and a dedicated check
// pins the per-byte constant at exactly zero so the quantization is a
// documented contract, not an accident.
package rdma_100g

import (
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/platform"
)

// Model returns the 100 GbE RDMA platform.
//
// Primitive derivation (3 GHz, 2 instructions/cycle → 1/6 ns/instr):
//
//	SendInstrs      4200 → SendFixed   700 ns   verbs post + doorbell
//	HandlerInstrs   1800 → HandlerFixed 300 ns  CQ poll + dispatch
//	NICPerByteNs       0 → zero-copy DMA; SendPerByte = wire share only
//	WireGbps         100 → 0.08 ns/B, below resolution → SendPerByte 0
//	SwitchDelayUs      1 → WireLatency 1 µs     switch + NIC traversal
//	FaultInstrs    18000 → ProtFault   3 µs     Linux SIGSEGV round trip
//	MProtectInstrs  6000 → MProtect    1 µs
//	StoreCycles        6 → InstrStore  2 ns
//	StoreOptCycles     3 → InstrStoreOpt 1 ns
//	Copy/Cmp/Scan/Apply 2/3/2/2 cycles at 1/3 ns/cycle → all round to 1 ns
//	  (MemGBps 40: the bandwidth term, 0.1-0.2 ns/word, never binds)
func Model() platform.Model {
	return platform.Model{
		Name:     "rdma_100g",
		Desc:     "100 GbE RDMA fabric: kernel-bypass verbs, zero-copy DMA, µs-scale switch",
		Priority: "P0",
		P: platform.Primitives{
			CPUMHz:         3000,
			IPC:            2,
			SendInstrs:     4200,
			HandlerInstrs:  1800,
			NICPerByteNs:   0,
			WireGbps:       100,
			SwitchDelayUs:  1,
			FaultInstrs:    18000,
			MProtectInstrs: 6000,
			StoreCycles:    6,
			StoreOptCycles: 3,
			CopyCycles:     2,
			CompareCycles:  3,
			ScanCycles:     2,
			ApplyCycles:    2,
			MemGBps:        40,
		},
		Refs: []platform.Reference{
			{
				Name: "small-message round trip", Want: 3.8, Unit: "µs", Tol: 0.10,
				Source:   "measured RoCE verbs RTTs on 100 GbE (~3.5-4 µs through one switch)",
				Quantity: platform.RTTUs,
			},
			{
				Name: "4 KB page fetch", Want: 4.3, Unit: "µs", Tol: 0.15,
				Source:   "RTT + 4 KB at 12.5 GB/s (~0.33 µs wire); the wire term is below the 1 ns/B resolution and quantizes away",
				Quantity: platform.PageFetchUs,
			},
			{
				Name: "8-processor barrier", Want: 6, Unit: "µs", Tol: 0.05,
				Source:   "central-manager barrier estimate at the measured RTT and CQ-poll costs",
				Quantity: func(cm fabric.CostModel) float64 { return platform.BarrierUs(cm, 8) },
			},
			{
				Name: "protection fault", Want: 3, Unit: "µs", Tol: 0.02,
				Source:   "Linux SIGSEGV deliver+resume microbenchmarks on current x86 (~3 µs)",
				Quantity: platform.ProtFaultUs,
			},
			{
				Name: "per-byte cost quantizes to zero", Want: 0, Unit: "ns/B", Tol: 0,
				Source:   "0.08 ns/B wire share is below the simulator's 1 ns resolution — pinned so the quantization is a contract",
				Quantity: func(cm fabric.CostModel) float64 { return float64(cm.SendPerByte) },
			},
		},
	}
}
