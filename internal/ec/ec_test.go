package ec

import (
	"strings"
	"testing"

	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/sim"
	"ecvslrc/internal/wcollect"
)

// newTestNode builds a single EC node inside a throwaway simulation.
func newTestNode(t *testing.T, impl core.Impl, body func(n *Node)) {
	t.Helper()
	s := sim.New()
	net := fabric.New(s, fabric.DefaultCostModel(), 1)
	al := mem.NewAllocator()
	al.Alloc("data", 4*mem.PageSize, 4)
	var n *Node
	s.Spawn("p0", func(p *sim.Proc) { body(n) })
	n = New(s.Procs()[0].Sim().Procs()[0], net, al, 1, impl)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBadImpl(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for LRC impl passed to ec.New")
		}
	}()
	s := sim.New()
	net := fabric.New(s, fabric.DefaultCostModel(), 1)
	al := mem.NewAllocator()
	al.Alloc("x", 64, 4)
	p := s.Spawn("p", func(p *sim.Proc) {})
	New(p, net, al, 1, core.Impl{Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs})
}

func TestDoubleBindPanics(t *testing.T) {
	newTestNode(t, core.Impl{Model: core.EC, Trap: core.Twinning, Collect: core.Diffs}, func(n *Node) {
		n.Bind(1, mem.Range{Base: 0, Len: 64})
		defer func() {
			if r := recover(); r == nil || !strings.Contains(r.(string), "already bound") {
				t.Errorf("recover = %v", r)
			}
		}()
		n.Bind(1, mem.Range{Base: 64, Len: 64})
	})
}

func TestRebindRequiresExclusiveHold(t *testing.T) {
	newTestNode(t, core.Impl{Model: core.EC, Trap: core.Twinning, Collect: core.Diffs}, func(n *Node) {
		n.Bind(1, mem.Range{Base: 0, Len: 64})
		defer func() {
			if recover() == nil {
				t.Error("want panic for Rebind without the lock held")
			}
		}()
		n.Rebind(1, mem.Range{Base: 64, Len: 64})
	})
}

func TestAccessToUnboundLockPanics(t *testing.T) {
	newTestNode(t, core.Impl{Model: core.EC, Trap: core.Twinning, Collect: core.Diffs}, func(n *Node) {
		defer func() {
			if recover() == nil {
				t.Error("want panic for acquiring an unbound lock")
			}
		}()
		n.Acquire(99)
	})
}

func TestLocalEpochsAdvanceIncarnation(t *testing.T) {
	newTestNode(t, core.Impl{Model: core.EC, Trap: core.Twinning, Collect: core.Timestamps}, func(n *Node) {
		n.Bind(1, mem.Range{Base: 0, Len: 64})
		for k := 0; k < 3; k++ {
			n.Acquire(1)
			n.WriteI32(0, int32(k))
			n.Release(1)
		}
		if n.ls(1).inc != 3 {
			t.Errorf("inc = %d, want 3 (one per local write epoch)", n.ls(1).inc)
		}
	})
}

func TestPruneDiffs(t *testing.T) {
	newTestNode(t, core.Impl{Model: core.EC, Trap: core.Twinning, Collect: core.Diffs}, func(n *Node) {
		n.Bind(1, mem.Range{Base: 0, Len: 64})
		n.ls(1).diffs = []taggedDiff{{Tag: 1}, {Tag: 2}, {Tag: 3}}
		// Incomplete gossip: no pruning.
		n.pruneDiffs(1)
		if len(n.ls(1).diffs) != 3 {
			t.Fatalf("pruned without full gossip: %d", len(n.ls(1).diffs))
		}
		n.known(1)[0] = 2
		n.pruneDiffs(1)
		if len(n.ls(1).diffs) != 1 || n.ls(1).diffs[0].Tag != 3 {
			t.Errorf("diffs after prune = %+v", n.ls(1).diffs)
		}
	})
}

func TestBindingSmallLargeBoundary(t *testing.T) {
	var b binding
	b.ranges = []mem.Range{{Base: 0, Len: mem.PageSize - 1}}
	b.recompute()
	if !b.small {
		t.Error("just under a page should be small")
	}
	b.ranges = []mem.Range{{Base: 0, Len: mem.PageSize}}
	b.recompute()
	if b.small {
		t.Error("a full page should be large")
	}
	b.ranges = []mem.Range{{Base: 0, Len: 3000}, {Base: 8192, Len: 3000}}
	b.recompute()
	if b.small {
		t.Error("multi-range totals above a page should be large")
	}
	if b.words != 1500 {
		t.Errorf("words = %d", b.words)
	}
}

func TestGrantPayloadSelectsByIncarnation(t *testing.T) {
	newTestNode(t, core.Impl{Model: core.EC, Trap: core.Twinning, Collect: core.Timestamps}, func(n *Node) {
		n.Bind(1, mem.Range{Base: 0, Len: 64})
		n.Acquire(1)
		n.WriteI32(0, 7)
		n.Release(1)
		h := (*lockHooks)(n)
		payload, _, _ := h.MakeLockGrant(1, 0, fabric.Payload{C: 0, D: 1}, 0)
		g := payload.Body.(*grantBody)
		if len(g.Stamped.Runs) == 0 {
			t.Error("requester at inc 0 should receive the epoch-1 write")
		}
		payload2, _, _ := h.MakeLockGrant(1, 0, fabric.Payload{C: 1, D: 1}, 0)
		g2 := payload2.Body.(*grantBody)
		if len(g2.Stamped.Runs) != 0 {
			t.Error("requester at inc 1 already has everything")
		}
		if payload.C != 1 {
			t.Errorf("owner inc = %d", payload.C)
		}
	})
}

func TestRebindForcesFullSend(t *testing.T) {
	newTestNode(t, core.Impl{Model: core.EC, Trap: core.Twinning, Collect: core.Diffs}, func(n *Node) {
		n.Bind(1, mem.Range{Base: 0, Len: 64})
		n.Acquire(1)
		n.Rebind(1, mem.Range{Base: 128, Len: 64})
		n.WriteI32(128, 9)
		n.Release(1)
		h := (*lockHooks)(n)
		payload, size, _ := h.MakeLockGrant(1, 0, fabric.Payload{C: 0, D: 1}, 0)
		g := payload.Body.(*grantBody)
		if g.Full == nil || g.Ranges == nil {
			t.Error("stale binding version must trigger a conservative full send")
		}
		if size < 64 {
			t.Errorf("full send size = %d, want >= bound bytes", size)
		}
		if _, n2 := wcollect.ApplyRuns(mem.NewImage(mem.PageSize), g.Full), 0; n2 != 0 {
			_ = n2
		}
	})
}
