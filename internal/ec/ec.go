// Package ec implements entry consistency (Section 3.1), the model used by
// Midway: all shared data is bound to a synchronization object, and an
// update protocol makes exactly the bound data consistent at acquire time.
// Write trapping is by compiler instrumentation or twinning (with the
// paper's improvement of eager copies for small objects), write collection
// by per-lock incarnation-number timestamps or by diffs.
package ec

import (
	"fmt"
	"sort"

	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/nodebase"
	"ecvslrc/internal/sim"
	"ecvslrc/internal/syncmgr"
	"ecvslrc/internal/trace"
	"ecvslrc/internal/vm"
	"ecvslrc/internal/wcollect"
	"ecvslrc/internal/wtrap"
)

// binding records the data associated with a lock. Version counts rebinds so
// that a grant after a Rebind conservatively carries the full bound data
// (Section 7.1, "Rebinding").
type binding struct {
	ranges  []mem.Range
	version int32
	words   int
	bytes   int
	small   bool // below a page: twin eagerly instead of write-protecting
}

func (b *binding) recompute() {
	b.words, b.bytes = 0, 0
	for _, r := range b.ranges {
		b.words += r.Words()
		b.bytes += r.Len
	}
	b.small = b.bytes < mem.PageSize
}

type taggedDiff struct {
	Tag  int32
	Diff *wcollect.Diff
}

// EC lock-request slot conventions (the hook-owned half of a PayloadLockReq):
// C is the requester's incarnation number, D its known binding version, and
// Flag marks an acquire-for-rebind — the requester will immediately rebind
// the lock, so the grant must carry no update-protocol data (installing the
// old binding's contents could clobber memory the requester holds newer
// values for under other locks). Grants put the owner's incarnation in C and
// the binding version in D, with the bulk data in a *grantBody.

const acqPayloadBytes = 8

// grantBody carries the update-protocol data of a lock grant, as the typed
// payload Body of a PayloadLockGrant message.
type grantBody struct {
	Ranges []mem.Range // non-nil when the requester's binding is stale

	Stamped wcollect.StampedData // Timestamps collection
	Diffs   []taggedDiff         // Diffs collection: applied at the requester
	// Carried diffs are older than the requester's incarnation (already
	// reflected in its memory) but travel with ownership so the new owner
	// can serve future requesters with even older incarnations.
	Carried  []taggedDiff
	KnownInc map[int]int32      // incarnation gossip for diff pruning
	Full     []wcollect.DataRun // conservative full transfer after rebind
}

// BodyKind implements fabric.Body.
func (*grantBody) BodyKind() fabric.PayloadKind { return fabric.PayloadLockGrant }

// lockState is the per-lock protocol state, held in a dense LockID-indexed
// slice: lock operations are the protocol's hottest control path and the
// previous per-field maps dominated their cost.
type lockState struct {
	b       *binding
	inc     int32
	dirty   bool // write epoch open and not yet harvested
	diffs   []taggedDiff
	objTwin *wtrap.ObjectTwin
	// knownInc tracks the last incarnation number each processor was seen to
	// hold. It travels with exclusive grants and lets the owner prune diffs
	// no live requester can still need, giving the steady-state "n-1 diffs
	// per transfer" behaviour of Section 5.3 without losing correctness for
	// processors that have never acquired the lock.
	knownInc map[int]int32
}

// Node is one processor's EC engine. It implements core.DSM.
type Node struct {
	nodebase.Base
	impl core.Impl

	locks *syncmgr.LockMgr
	bars  *syncmgr.BarrierMgr

	lockSt []lockState // indexed by LockID, grown on demand

	// write collection state
	stamps *wcollect.Stamps

	// write trapping state
	db         *wtrap.DirtyBits
	twins      *wtrap.PageTwins
	openEpochs []map[core.LockID]bool // page -> locks with open large-object epochs

	nextNoData bool // the next acquire is an AcquireForRebind

	cmpScratch []mem.Range // reused small-object compare buffer; the runs
	// it backs are consumed (stamped or diffed) before the next harvest
}

// ls returns the state slot of lock l, growing the table geometrically (ids
// arrive in ascending order, so linear growth would copy quadratically).
func (n *Node) ls(l core.LockID) *lockState {
	if int(l) >= len(n.lockSt) {
		newLen := int(l) + 1
		if min := 2 * len(n.lockSt); newLen < min {
			newLen = min
		}
		if newLen < 64 {
			newLen = 64
		}
		grown := make([]lockState, newLen)
		copy(grown, n.lockSt)
		n.lockSt = grown
	}
	return &n.lockSt[l]
}

// New builds the EC node for processor p with a zeroed private image.
// impl.Model must be core.EC.
func New(p *sim.Proc, net *fabric.Network, al *mem.Allocator, nprocs int, impl core.Impl) *Node {
	return NewWithImage(p, net, al, nprocs, impl, mem.NewImage(al.Size()))
}

// NewWithImage is New with a caller-provided (possibly recycled) image; the
// caller must overwrite it in full before the simulation starts.
func NewWithImage(p *sim.Proc, net *fabric.Network, al *mem.Allocator, nprocs int, impl core.Impl, im *mem.Image) *Node {
	if impl.Model != core.EC || !impl.Valid() {
		panic(fmt.Sprintf("ec: bad implementation %v", impl))
	}
	n := &Node{impl: impl}
	n.InitWithImage(p, net, al, core.EC, nprocs, im)
	n.locks = syncmgr.NewLockMgr(p, net, nprocs, (*lockHooks)(n), &n.Cnt)
	n.bars = syncmgr.NewBarrierMgr(p, net, nprocs, nilBarrierHooks{}, &n.Cnt)

	if impl.Collect == core.Timestamps {
		n.stamps = wcollect.NewStamps(al)
	}
	switch impl.Trap {
	case core.CompilerInstr:
		n.db = wtrap.NewDirtyBits(al, false)
		n.SetTrap(n.db, n.CM.InstrStoreOpt)
	case core.Twinning:
		n.twins = wtrap.NewPageTwins(n.Im)
		n.openEpochs = make([]map[core.LockID]bool, al.Pages())
		n.MMU.SetHandler(n.onFault)
	}
	net.Attach(p, n.handle)
	return n
}

// Impl returns the implementation configuration.
func (n *Node) Impl() core.Impl { return n.impl }

// SetTracer attaches the event tracer to this node and its sub-machinery:
// fault, twin, harvest and grant-install events plus the lock and barrier
// manager taps. EC attribution is lock-keyed (trace.DomainLock); the Bind
// records let the analyzer project it onto pages. Call before the run starts.
func (n *Node) SetTracer(tr *trace.Tracer) {
	n.AttachTracer(tr)
	n.locks.SetTracer(tr)
	n.bars.SetTracer(tr)
	if n.twins != nil {
		n.twins.OnMake = func(pg int) {
			tr.Twin(n.P.Now(), n.P.ID(), trace.DomainPage, pg)
		}
	}
}

// NProcs implements core.DSM.
func (n *Node) NProcs() int { return n.Base.NProcs }

// Model implements core.DSM.
func (n *Node) Model() core.Model { return core.EC }

// handle dispatches incoming protocol messages. All EC traffic rides the
// shared lock/barrier kinds, and like syncmgr the handlers assume
// exactly-once in-order delivery (see the syncmgr package doc): under a
// fault plan the fabric's reliable sublayer restores that guarantee before
// anything reaches here.
func (n *Node) handle(hc *fabric.HandlerCtx, m fabric.Msg) {
	if n.locks.Handle(hc, m) || n.bars.Handle(hc, m) {
		return
	}
	panic(fmt.Sprintf("ec: unhandled message kind %d", m.Kind))
}

// Bind implements core.DSM: associates ranges with l. Must be issued
// identically on every processor before the lock is first transferred.
func (n *Node) Bind(l core.LockID, rs ...mem.Range) {
	st := n.ls(l)
	if st.b != nil {
		panic(fmt.Sprintf("ec: lock %d already bound (use Rebind)", l))
	}
	b := &binding{ranges: rs, version: 1}
	b.recompute()
	st.b = b
	for _, r := range rs {
		n.Tr.Bind(n.P.Now(), n.P.ID(), int(l), int(r.Base), r.Len)
	}
}

// Rebind implements core.DSM: rebinds l to new ranges. The caller must hold
// l exclusively; the next transfer sends all bound data conservatively.
func (n *Node) Rebind(l core.LockID, rs ...mem.Range) {
	held, mode := n.locks.Holding(l)
	if !held || mode != syncmgr.Exclusive {
		panic(fmt.Sprintf("ec: Rebind(%d) without holding the lock exclusively", l))
	}
	b := n.binding(l)
	// Harvest the open epoch against the OLD binding first, so pending
	// changes are not mis-scanned against the new ranges.
	hwork := n.harvest(l)
	n.Tr.Work(n.P.Now(), n.P.ID(), trace.WorkTrapDiff, trace.ObjLock, int(l), hwork)
	n.Charge(hwork)
	// Every post-rebind transfer is a conservative full send, so diffs
	// against the old binding can never be needed again.
	n.ls(l).diffs = nil
	b.ranges = rs
	b.version++
	b.recompute()
	for _, r := range rs {
		n.Tr.Bind(n.P.Now(), n.P.ID(), int(l), int(r.Base), r.Len)
	}
	// Re-open the epoch for the new ranges: the holder may write them.
	n.openEpoch(l)
}

func (n *Node) binding(l core.LockID) *binding {
	b := n.ls(l).b
	if b == nil {
		panic(fmt.Sprintf("ec: lock %d has no bound data", l))
	}
	return b
}

// Acquire implements core.DSM.
func (n *Node) Acquire(l core.LockID) {
	n.Flush()
	n.locks.Acquire(l, syncmgr.Exclusive)
}

// AcquireForRebind implements core.DSM: an exclusive acquire whose grant
// carries no data, used just before a Rebind.
func (n *Node) AcquireForRebind(l core.LockID) {
	n.Flush()
	n.nextNoData = true
	n.locks.Acquire(l, syncmgr.Exclusive)
	n.nextNoData = false
}

// AcquireRead implements core.DSM.
func (n *Node) AcquireRead(l core.LockID) {
	n.Flush()
	n.locks.Acquire(l, syncmgr.ReadOnly)
}

// Release implements core.DSM.
func (n *Node) Release(l core.LockID) {
	n.Flush()
	n.locks.Release(l)
}

// Barrier implements core.DSM. EC barriers carry no consistency data:
// following Midway, shared data is associated with locks, not barriers.
func (n *Node) Barrier(b core.BarrierID) {
	n.Flush()
	n.bars.Wait(b)
}

// onFault is the SIGSEGV handler for twinning mode: first write to a
// write-protected large-object page makes the twin and unprotects.
func (n *Node) onFault(a mem.Addr, write bool) {
	if !write {
		panic(fmt.Sprintf("ec: read fault at %d (EC pages are never read-protected)", a))
	}
	pg := mem.PageOf(a)
	n.Tr.Work(n.P.Now(), n.P.ID(), trace.WorkTrapDiff, trace.ObjPage, pg,
		n.CM.ProtFault+mem.PageWords*n.CM.WordCopy+n.CM.MProtect)
	n.Charge(n.CM.ProtFault + mem.PageWords*n.CM.WordCopy + n.CM.MProtect)
	n.twins.Make(pg)
	n.Extra.TwinsMade++
	n.MMU.SetProt(pg, vm.ReadWrite)
}

// openEpoch prepares write trapping for a newly acquired exclusive lock and
// advances the lock's incarnation number.
func (n *Node) openEpoch(l core.LockID) {
	st := n.ls(l)
	b := n.binding(l)
	st.dirty = true
	if n.impl.Trap != core.Twinning {
		return
	}
	if b.small {
		// Eager copy: no protection faults for small objects (Section 4.2).
		st.objTwin = wtrap.MakeObjectTwin(n.Im, b.ranges)
		n.Tr.Twin(n.P.Now(), n.P.ID(), trace.DomainLock, int(l))
		n.Tr.Work(n.P.Now(), n.P.ID(), trace.WorkTrapDiff, trace.ObjLock, int(l), sim.Time(b.words)*n.CM.WordCopy)
		n.Charge(sim.Time(b.words) * n.CM.WordCopy)
		return
	}
	for _, r := range b.ranges {
		protected := false
		for _, pg := range r.Pages() {
			// Register this epoch on every page it may write, so a twin
			// shared with an overlapping lock's epoch survives until both
			// have harvested.
			eps := n.openEpochs[pg]
			if eps == nil {
				eps = make(map[core.LockID]bool)
				n.openEpochs[pg] = eps
			}
			eps[l] = true
			if n.twins.Has(pg) {
				// Already twinned by an overlapping open epoch: writes are
				// already trapped; the harvest intersects with our ranges.
				continue
			}
			if n.MMU.Prot(pg) == vm.ReadWrite {
				n.MMU.SetProt(pg, vm.ReadOnly)
				protected = true
			}
		}
		if protected {
			n.Tr.Work(n.P.Now(), n.P.ID(), trace.WorkTrapDiff, trace.ObjLock, int(l), n.CM.MProtect)
			n.Charge(n.CM.MProtect) // one mprotect call per contiguous range
		}
	}
}

// harvest closes the open write epoch of l: it discovers the changed words
// via the trapping mechanism and records them for collection (stamping them
// or building a diff). Returns the CPU cost.
func (n *Node) harvest(l core.LockID) sim.Time {
	st := n.ls(l)
	if !st.dirty {
		return 0
	}
	st.dirty = false
	b := n.binding(l)
	var changed []mem.Range
	var work sim.Time

	switch n.impl.Trap {
	case core.CompilerInstr:
		runs, scanned := n.db.Collect(b.ranges)
		n.db.Reset(b.ranges)
		changed = runs
		work += sim.Time(scanned) * n.CM.WordScan
	case core.Twinning:
		if ot := st.objTwin; ot != nil {
			runs, cmp := ot.CompareAppend(n.cmpScratch[:0])
			n.cmpScratch = runs[:0]
			st.objTwin = nil
			changed = runs
			work += sim.Time(cmp) * n.CM.WordCompare
		} else {
			changed, work = n.harvestLargeObject(l, b)
		}
	}

	switch n.impl.Collect {
	case core.Timestamps:
		n.stamps.Set(changed, wcollect.Stamp(st.inc))
	case core.Diffs:
		if len(changed) > 0 {
			d := wcollect.BuildDiff(n.Im, changed)
			st.diffs = append(st.diffs, taggedDiff{Tag: st.inc, Diff: d})
			n.Extra.DiffsCreated++
			work += sim.Time(d.Words()) * n.CM.WordCopy
		}
	}
	if n.Tr != nil && len(changed) > 0 {
		words := 0
		for _, r := range changed {
			words += r.Words()
		}
		n.Tr.Collect(n.P.Now(), n.P.ID(), trace.DomainLock, int(l), int(st.inc), words)
	}
	return work
}

// known returns the incarnation-gossip map for l.
func (n *Node) known(l core.LockID) map[int]int32 {
	st := n.ls(l)
	if st.knownInc == nil {
		st.knownInc = make(map[int]int32)
	}
	return st.knownInc
}

// pruneDiffs discards diffs every processor has provably incorporated: those
// tagged at or below the minimum incarnation seen across all processors.
func (n *Node) pruneDiffs(l core.LockID) {
	st := n.ls(l)
	ki := st.knownInc
	if len(ki) < n.Base.NProcs {
		return // some processor has never been heard from; assume inc 0
	}
	minInc := int32(1<<31 - 1)
	for _, v := range ki {
		if v < minInc {
			minInc = v
		}
	}
	ds := st.diffs
	keep := ds[:0]
	for _, td := range ds {
		if td.Tag > minInc {
			keep = append(keep, td)
		}
	}
	st.diffs = keep
}

// harvestLargeObject compares the twinned pages overlapping l's ranges,
// keeps the twins alive for other open epochs sharing a page, and refreshes
// the twin contents within l's ranges so nothing is collected twice. Pages
// are processed once each even when several of l's ranges share a page
// (non-contiguous bindings like the transpose blocks or per-owner position
// chunks).
func (n *Node) harvestLargeObject(l core.LockID, b *binding) (changed []mem.Range, work sim.Time) {
	seen := make(map[int]bool)
	var pages []int
	for _, r := range b.ranges {
		for _, pg := range r.Pages() {
			if !seen[pg] {
				seen[pg] = true
				pages = append(pages, pg)
			}
		}
	}
	sort.Ints(pages)
	for _, pg := range pages {
		if !n.twins.Has(pg) {
			continue // never written
		}
		runs, cmp := n.twins.Compare(pg)
		work += sim.Time(cmp) * n.CM.WordCompare
		for _, run := range runs {
			for _, r := range b.ranges {
				if x, ok := intersect(run, r); ok {
					changed = append(changed, x)
				}
			}
		}
		if eps := n.openEpochs[pg]; eps != nil {
			delete(eps, l)
			if len(eps) == 0 {
				n.openEpochs[pg] = nil
			}
		}
		if len(n.openEpochs[pg]) == 0 {
			n.twins.Drop(pg)
		} else {
			// Refresh the twin within our spans so a later harvest of an
			// overlapping lock does not re-collect our changes.
			for _, r := range b.ranges {
				lo := max(int(r.Base), int(mem.PageBase(pg)))
				hi := min(int(r.End()), int(mem.PageBase(pg+1)))
				if lo < hi {
					twinCopy(n.twins, n.Im, pg, lo, hi)
				}
			}
		}
	}
	return changed, work
}

func intersect(a, b mem.Range) (mem.Range, bool) {
	lo := max(int(a.Base), int(b.Base))
	hi := min(int(a.End()), int(b.End()))
	if lo >= hi {
		return mem.Range{}, false
	}
	return mem.Range{Base: mem.Addr(lo), Len: hi - lo}, true
}

// twinCopy refreshes twin bytes of page pg in [lo,hi).
func twinCopy(t *wtrap.PageTwins, im *mem.Image, pg, lo, hi int) {
	// The twin is reachable only through Compare/Drop in wtrap's API;
	// refresh by dropping and re-making would lose other locks' deltas, so
	// wtrap exposes Refresh for exactly this case.
	t.Refresh(im, pg, lo, hi)
}

// --- syncmgr lock hooks -------------------------------------------------

// lockHooks adapts Node to syncmgr.LockHooks. Defined as a separate type so
// the hook methods do not pollute the core.DSM surface of Node.
type lockHooks Node

func (h *lockHooks) node() *Node { return (*Node)(h) }

// MakeLockRequest sends our incarnation number and binding version.
func (h *lockHooks) MakeLockRequest(l core.LockID, mode syncmgr.Mode) (fabric.Payload, int) {
	n := h.node()
	p := fabric.Payload{C: n.ls(l).inc, D: n.binding(l).version, Flag: n.nextNoData}
	return p, acqPayloadBytes
}

// MakeLockGrant runs at the owner: harvest pending changes, then collect
// everything newer than the requester's incarnation.
func (h *lockHooks) MakeLockGrant(l core.LockID, mode syncmgr.Mode, req fabric.Payload, requester int) (fabric.Payload, int, sim.Time) {
	n := h.node()
	reqInc, reqBind, noData := req.C, req.D, req.Flag
	b := n.binding(l)
	work := n.harvest(l)
	st := n.ls(l)

	g := &grantBody{}
	grant := fabric.Payload{C: st.inc, D: b.version, Body: g}
	size := 8 // incarnation + binding version

	if noData {
		// Acquire-for-rebind: transfer ownership and the current binding,
		// but no data. The requester rebinds immediately, after which every
		// transfer is a conservative full send of the new binding.
		g.Ranges = b.ranges
		size += 8 * len(b.ranges)
		if n.impl.Collect == core.Diffs && mode == syncmgr.Exclusive {
			// Old-binding diffs are useless to the rebinder and to everyone
			// after it (post-rebind transfers are full sends).
			st.diffs = nil
		}
		return grant, size, work
	}

	if reqBind != b.version {
		// Rebound since the requester last saw it: conservatively send all
		// bound data (the releaser cannot know what is already consistent).
		g.Ranges = b.ranges
		size += 8 * len(b.ranges)
		g.Full = wcollect.ExtractRuns(n.Im, b.ranges)
		for _, r := range g.Full {
			size += wcollect.RunHeaderBytes + len(r.Data)
		}
		work += sim.Time(b.words) * n.CM.WordCopy
	} else {
		switch n.impl.Collect {
		case core.Timestamps:
			runs, scanned := wcollect.SelectPred(n.stamps, b.ranges, wcollect.NewerThan{Min: wcollect.Stamp(reqInc)})
			work += sim.Time(scanned) * n.CM.WordScan
			g.Stamped = wcollect.ExtractStamped(n.Im, runs)
			size += g.Stamped.WireSize(wcollect.ECStampBytes)
			n.Extra.StampRunsSent += int64(len(runs))
		case core.Diffs:
			ki := n.known(l)
			ki[requester] = reqInc
			ki[n.P.ID()] = st.inc
			n.pruneDiffs(l)
			for _, td := range st.diffs {
				if td.Tag > reqInc {
					g.Diffs = append(g.Diffs, td)
					size += td.Diff.WireSize()
				} else if mode == syncmgr.Exclusive {
					g.Carried = append(g.Carried, td)
					size += td.Diff.WireSize()
				}
			}
			if mode == syncmgr.Exclusive {
				// Ownership moves: the diffs travel with it (Section 5.2),
				// along with the incarnation gossip that bounds the list.
				g.KnownInc = make(map[int]int32, len(ki))
				for p, v := range ki {
					g.KnownInc[p] = v
				}
				st.diffs = nil
			}
		}
	}
	return grant, size, work
}

// ApplyLockGrant runs at the requester: install the update-protocol data.
func (h *lockHooks) ApplyLockGrant(l core.LockID, mode syncmgr.Mode, payload fabric.Payload) sim.Time {
	n := h.node()
	ownerInc, bindVersion := payload.C, payload.D
	g := payload.Body.(*grantBody)
	b := n.binding(l)
	st := n.ls(l)
	var work sim.Time

	if g.Ranges != nil {
		b.ranges = g.Ranges
		b.version = bindVersion
		b.recompute()
		for _, r := range g.Ranges {
			n.Tr.Bind(n.P.Now(), n.P.ID(), int(l), int(r.Base), r.Len)
		}
	}
	appliedWords := 0
	switch {
	case g.Full != nil:
		words := wcollect.ApplyRuns(n.Im, g.Full)
		appliedWords += words
		work += sim.Time(words) * n.CM.WordApply
		if n.impl.Collect == core.Timestamps {
			// The full content is current as of the owner's incarnation.
			for _, r := range g.Full {
				n.stamps.Set([]mem.Range{{Base: r.Base, Len: len(r.Data)}}, wcollect.Stamp(ownerInc))
			}
		} else {
			st.diffs = nil
		}
	case n.impl.Collect == core.Timestamps:
		words := g.Stamped.Apply(n.Im, n.stamps)
		appliedWords += words
		work += sim.Time(words) * n.CM.WordApply
	default:
		sort.Slice(g.Diffs, func(i, j int) bool { return g.Diffs[i].Tag < g.Diffs[j].Tag })
		for _, td := range g.Diffs {
			words := td.Diff.Apply(n.Im)
			appliedWords += words
			work += sim.Time(words) * n.CM.WordApply
		}
		if mode == syncmgr.Exclusive {
			// Save everything (applied and carried) for future transmission.
			st.diffs = append(st.diffs, g.Carried...)
			st.diffs = append(st.diffs, g.Diffs...)
			sort.Slice(st.diffs, func(i, j int) bool { return st.diffs[i].Tag < st.diffs[j].Tag })
			ki := n.known(l)
			for p, v := range g.KnownInc {
				if v > ki[p] {
					ki[p] = v
				}
			}
		}
	}

	if appliedWords > 0 {
		n.Tr.Apply(n.P.Now(), n.P.ID(), trace.DomainLock, int(l), -1, appliedWords)
	}
	if mode == syncmgr.Exclusive {
		st.inc = ownerInc + 1
		if !n.nextNoData {
			// An acquire-for-rebind skips the epoch on the old binding;
			// Rebind opens one on the new ranges.
			n.openEpoch(l)
		} else {
			st.dirty = false
		}
	} else {
		st.inc = ownerInc
	}
	return work
}

// LocalReacquire: the owner re-enters its own lock; a write acquire opens a
// new epoch with a fresh incarnation so later requesters can tell the new
// writes apart.
func (h *lockHooks) LocalReacquire(l core.LockID, mode syncmgr.Mode) {
	n := h.node()
	if mode != syncmgr.Exclusive {
		return
	}
	rwork := n.harvest(l) // close any previous un-harvested epoch
	n.Tr.Work(n.P.Now(), n.P.ID(), trace.WorkTrapDiff, trace.ObjLock, int(l), rwork)
	n.Charge(rwork)
	n.ls(l).inc++
	if !n.nextNoData {
		n.openEpoch(l)
	}
}

// OnRelease: collection is lazy (at grant time), nothing to do here.
func (h *lockHooks) OnRelease(l core.LockID) sim.Time { return 0 }

// nilBarrierHooks: EC barriers are pure synchronization; arrival and
// departure payloads stay empty (PayloadNone body slots).
type nilBarrierHooks struct{}

func (nilBarrierHooks) MakeArrival(core.BarrierID) (fabric.Payload, int, sim.Time) {
	return fabric.Payload{}, 0, 0
}
func (nilBarrierHooks) AbsorbArrival(core.BarrierID, int, fabric.Payload) sim.Time { return 0 }
func (nilBarrierHooks) PrepareDepartures(core.BarrierID) sim.Time                  { return 0 }
func (nilBarrierHooks) MakeDeparture(core.BarrierID, int) (fabric.Payload, int, sim.Time) {
	return fabric.Payload{}, 0, 0
}
func (nilBarrierHooks) ApplyDeparture(core.BarrierID, fabric.Payload) sim.Time { return 0 }

// SetBarrierFanIn arranges barrier episodes as a radix-r arrival/departure
// tree (see syncmgr.BarrierMgr.SetFanIn). EC barriers carry no consistency
// payload, so only the message pattern changes. r < 2 keeps the flat
// protocol; must be called before the simulation starts.
func (n *Node) SetBarrierFanIn(r int) { n.bars.SetFanIn(r) }

var _ core.DSM = (*Node)(nil)
var _ syncmgr.LockHooks = (*lockHooks)(nil)
