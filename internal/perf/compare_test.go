package perf

import (
	"bytes"
	"strings"
	"testing"
)

func traj(exact bool, cells ...Cell) *Trajectory {
	r := New()
	r.SetAllocsExact(exact)
	for _, c := range cells {
		r.ObserveCell(c)
	}
	return r.Snapshot(Meta{Rev: "test", Parallel: 1})
}

func cell(app string, minWall, mallocs int64) Cell {
	return Cell{App: app, Impl: "EC-time", NProcs: 8, Outcome: "ok",
		Runs: 1, WallNS: minWall, MinWallNS: minWall, Mallocs: mallocs}
}

func TestCompareClean(t *testing.T) {
	base := traj(true, cell("SOR", 1000, 100), cell("QS", 2000, 200))
	head := traj(true, cell("SOR", 1050, 100), cell("QS", 1900, 200))
	res := Compare(base, head, CompareOptions{WallTol: 0.30, AllocTol: 0.05})
	if res.Regressions != 0 {
		t.Fatalf("clean compare found %d regressions: %+v", res.Regressions, res.Deltas)
	}
	if !res.AllocsGated {
		t.Error("exact trajectories did not gate allocs")
	}
	if len(res.Deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(res.Deltas))
	}
	// Worst wall ratio leads.
	if res.Deltas[0].Key.App != "SOR" {
		t.Errorf("deltas not sorted worst-first: %v", res.Deltas[0].Key)
	}
}

func TestCompareWallRegression(t *testing.T) {
	base := traj(true, cell("SOR", 1000, 100))
	head := traj(true, cell("SOR", 1500, 100))
	res := Compare(base, head, CompareOptions{WallTol: 0.30, AllocTol: 0.05})
	if res.Regressions != 1 || !res.Deltas[0].WallRegressed {
		t.Errorf("1.5x wall at 30%% tolerance not flagged: %+v", res.Deltas[0])
	}
	// Disabled wall gating lets the same delta pass.
	res = Compare(base, head, CompareOptions{WallTol: -1, AllocTol: 0.05})
	if res.Regressions != 0 {
		t.Errorf("wall gating disabled but still flagged: %+v", res.Deltas[0])
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := traj(true, cell("SOR", 1000, 100))
	head := traj(true, cell("SOR", 1000, 120))
	res := Compare(base, head, CompareOptions{WallTol: -1, AllocTol: 0.05})
	if res.Regressions != 1 || !res.Deltas[0].AllocRegressed {
		t.Errorf("1.2x allocs at 5%% tolerance not flagged: %+v", res.Deltas[0])
	}
	// Inexact measurements must never gate on allocs.
	inexact := traj(false, cell("SOR", 1000, 120))
	res = Compare(base, inexact, CompareOptions{WallTol: -1, AllocTol: 0.05})
	if res.AllocsGated || res.Regressions != 0 {
		t.Errorf("inexact head still gated allocs: gated=%v regressions=%d", res.AllocsGated, res.Regressions)
	}
}

func TestCompareOutcomeAndCoverage(t *testing.T) {
	base := traj(true, cell("SOR", 1000, 100), cell("QS", 1000, 100))
	sick := cell("SOR", 1000, 100)
	sick.Outcome = "panic"
	head := traj(true, sick, cell("Water", 1000, 100))
	res := Compare(base, head, CompareOptions{WallTol: -1, AllocTol: -1})
	// Two regressions: SOR ok->panic, QS lost from head.
	if res.Regressions != 2 {
		t.Errorf("regressions = %d, want 2: %+v", res.Regressions, res)
	}
	if len(res.OnlyBase) != 1 || res.OnlyBase[0].App != "QS" {
		t.Errorf("OnlyBase = %v", res.OnlyBase)
	}
	if len(res.OnlyHead) != 1 || res.OnlyHead[0].App != "Water" {
		t.Errorf("OnlyHead = %v", res.OnlyHead)
	}
	if !res.Deltas[0].OutcomeChanged {
		t.Errorf("outcome change not flagged: %+v", res.Deltas[0])
	}
}

func TestWriteCompareReport(t *testing.T) {
	base := traj(true, cell("SOR", 1000, 100))
	head := traj(true, cell("SOR", 1500, 120))
	opt := CompareOptions{WallTol: 0.30, AllocTol: 0.05}
	res := Compare(base, head, opt)
	var buf bytes.Buffer
	if err := WriteCompare(&buf, base, head, res, opt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# dsmperf compare",
		"Top wall movers",
		"## Regressions",
		"SOR/EC-time/8",
		"1.50x",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCellKeyString(t *testing.T) {
	k := CellKey{App: "SOR", Impl: "EC-time", NProcs: 8}
	if k.String() != "SOR/EC-time/8" {
		t.Errorf("bare key = %s", k)
	}
	k.Variant = "net-x4"
	if k.String() != "net-x4/SOR/EC-time/8" {
		t.Errorf("variant key = %s", k)
	}
}
