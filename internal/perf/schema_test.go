package perf

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"
)

// syntheticTrajectory builds a fully deterministic trajectory: cells are
// injected pre-measured (ObserveCell), so no host clock or MemStats value
// leaks into the encoding. The span-derived aggregates (wall_ns,
// cells_per_sec, occupancy) stay zero by construction.
func syntheticTrajectory() *Trajectory {
	r := New()
	r.SetAllocsExact(true)
	r.ObserveCell(Cell{Variant: "paper", App: "SOR", Impl: "EC-time", NProcs: 8,
		Outcome: "ok", Runs: 2, WallNS: 3_000_000, MinWallNS: 1_400_000, Mallocs: 2400, AllocBytes: 96_000})
	r.ObserveCell(Cell{Variant: "paper", App: "SOR", Impl: "LRC-diff", NProcs: 8,
		Outcome: "ok", Runs: 1, WallNS: 2_000_000, MinWallNS: 2_000_000, Mallocs: 5000, AllocBytes: 128_000})
	r.ObserveCell(Cell{App: "Water", Impl: "seq", NProcs: 1,
		Outcome: "err", Runs: 1, WallNS: 500_000, MinWallNS: 500_000, Mallocs: 100, AllocBytes: 4_096})
	r.Counter("phase_simulate_ns").Add(4_200_000)
	r.Counter("phase_init_ns").Add(300_000)
	r.Gauge("peak_heap_bytes").SetMax(64 << 20)
	r.Histogram("cell_wall_ns", WallBuckets).Observe(1_400_000)
	r.Histogram("cell_wall_ns", WallBuckets).Observe(2_000_000)
	meta := Meta{
		Rev: "deadbeef", GoVersion: "go1.99", GOOS: "linux", GOARCH: "amd64",
		GOMAXPROCS: 8, NumCPU: 8, Parallel: 1, Scale: "bench",
		Cmd: "dsmbench -all -micro -scale bench -parallel 1 -perf-out BENCH_deadbeef.json",
	}
	return r.Snapshot(meta)
}

// TestTrajectorySchemaGolden pins the BENCH_*.json encoding byte for byte.
// A diff here is a schema change: bump Schema and document it in DESIGN.md
// ("Host observability") before regenerating with -run TestTrajectorySchemaGolden -update-golden...
// i.e. delete the golden and re-run this test to print the new encoding.
func TestTrajectorySchemaGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrajectory(&buf, syntheticTrajectory()); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/bench_schema.golden")
	if err != nil {
		t.Fatalf("golden missing (%v); new encoding:\n%s", err, buf.String())
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("BENCH encoding drifted from the schema golden (%d vs %d bytes). If the schema deliberately changed, bump perf.Schema, document it in DESIGN.md and regenerate the golden.\ngot:\n%s",
			buf.Len(), len(want), buf.String())
	}
}

// TestTrajectoryRoundTrip pins Write -> Read as the identity on the decoded
// value.
func TestTrajectoryRoundTrip(t *testing.T) {
	orig := syntheticTrajectory()
	var buf bytes.Buffer
	if err := WriteTrajectory(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrajectory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Errorf("round trip diverged:\norig: %+v\ngot:  %+v", orig, got)
	}
}

func TestReadTrajectoryRejects(t *testing.T) {
	cases := map[string]string{
		"not json":       "{",
		"schema zero":    `{"schema":0,"cells":[]}`,
		"future schema":  `{"schema":99,"cells":[]}`,
		"empty identity": `{"schema":1,"cells":[{"app":"","impl":"x","nprocs":1,"runs":1}]}`,
		"zero runs":      `{"schema":1,"cells":[{"app":"a","impl":"x","nprocs":1,"runs":0}]}`,
		"duplicate cell": `{"schema":1,"cells":[{"app":"a","impl":"x","nprocs":1,"runs":1},{"app":"a","impl":"x","nprocs":1,"runs":1}]}`,
	}
	for name, in := range cases {
		_, err := ReadTrajectory(strings.NewReader(in))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, ErrTrajectory) {
			t.Errorf("%s: error does not wrap ErrTrajectory: %v", name, err)
		}
	}
}
