// Compare loads two trajectories and reports per-cell deltas — the tool CI
// uses to gate on the BENCH_*.json perf history. Wall-clock deltas are
// computed on each cell's min-of-N run (the least noisy estimator) and gated
// with a configurable fractional tolerance; allocation-count deltas are
// near-noise-free for sequential (allocs_exact) trajectories, so they can be
// gated tightly even on shared CI hardware where wall clocks are unreliable.

package perf

import (
	"fmt"
	"io"
	"sort"
)

// CompareOptions tunes regression detection.
type CompareOptions struct {
	// WallTol is the fractional wall-time regression tolerance: a cell
	// regresses when head_min_wall > base_min_wall * (1 + WallTol).
	// Negative disables wall gating entirely (the right setting on shared
	// CI runners).
	WallTol float64
	// AllocTol is the fractional per-run Mallocs regression tolerance.
	// Negative disables allocation gating. Allocation gating also requires
	// both trajectories to be allocs_exact; otherwise deltas are reported
	// but never flagged.
	AllocTol float64
}

// Delta is one cell's base-vs-head comparison.
type Delta struct {
	Key CellKey
	// BaseWall / HeadWall are per-run min wall times in nanoseconds.
	BaseWall, HeadWall int64
	// WallRatio is HeadWall / BaseWall (0 when BaseWall is 0).
	WallRatio float64
	// BaseAllocs / HeadAllocs are per-run Mallocs averages.
	BaseAllocs, HeadAllocs float64
	// AllocRatio is HeadAllocs / BaseAllocs (0 when BaseAllocs is 0).
	AllocRatio float64
	// WallRegressed / AllocRegressed flag tolerance violations under the
	// comparison's options.
	WallRegressed, AllocRegressed bool
	// OutcomeChanged flags a head outcome worse than base (ok -> err/panic).
	OutcomeChanged bool
	BaseOutcome    string
	HeadOutcome    string
}

// CompareResult is the full outcome of comparing two trajectories.
type CompareResult struct {
	Deltas []Delta
	// OnlyBase / OnlyHead list cells present in one trajectory only. A cell
	// disappearing from head is flagged as a regression (coverage loss);
	// new cells are informational.
	OnlyBase []CellKey
	OnlyHead []CellKey
	// AllocsGated reports whether allocation tolerances were enforced
	// (both sides exact and AllocTol >= 0).
	AllocsGated bool
	// Regressions counts flagged cells (wall, alloc, outcome) plus cells
	// lost from head.
	Regressions int
}

// Compare diffs head against base cell by cell under opt.
func Compare(base, head *Trajectory, opt CompareOptions) *CompareResult {
	res := &CompareResult{
		AllocsGated: opt.AllocTol >= 0 && base.AllocsExact && head.AllocsExact,
	}
	headByKey := make(map[CellKey]Cell, len(head.Cells))
	for _, c := range head.Cells {
		headByKey[c.Key()] = c
	}
	baseSeen := make(map[CellKey]bool, len(base.Cells))
	for _, b := range base.Cells {
		baseSeen[b.Key()] = true
		h, ok := headByKey[b.Key()]
		if !ok {
			res.OnlyBase = append(res.OnlyBase, b.Key())
			res.Regressions++
			continue
		}
		d := Delta{
			Key:         b.Key(),
			BaseWall:    b.MinWallNS,
			HeadWall:    h.MinWallNS,
			BaseOutcome: b.Outcome,
			HeadOutcome: h.Outcome,
		}
		if b.Runs > 0 {
			d.BaseAllocs = float64(b.Mallocs) / float64(b.Runs)
		}
		if h.Runs > 0 {
			d.HeadAllocs = float64(h.Mallocs) / float64(h.Runs)
		}
		if d.BaseWall > 0 {
			d.WallRatio = float64(d.HeadWall) / float64(d.BaseWall)
		}
		if d.BaseAllocs > 0 {
			d.AllocRatio = d.HeadAllocs / d.BaseAllocs
		}
		if opt.WallTol >= 0 && d.BaseWall > 0 &&
			float64(d.HeadWall) > float64(d.BaseWall)*(1+opt.WallTol) {
			d.WallRegressed = true
		}
		if res.AllocsGated && d.BaseAllocs > 0 &&
			d.HeadAllocs > d.BaseAllocs*(1+opt.AllocTol) {
			d.AllocRegressed = true
		}
		if outcomeRank(Outcome(h.Outcome)) > outcomeRank(Outcome(b.Outcome)) {
			d.OutcomeChanged = true
		}
		if d.WallRegressed || d.AllocRegressed || d.OutcomeChanged {
			res.Regressions++
		}
		res.Deltas = append(res.Deltas, d)
	}
	for _, h := range head.Cells {
		if !baseSeen[h.Key()] {
			res.OnlyHead = append(res.OnlyHead, h.Key())
		}
	}
	// Worst wall ratio first, so the report leads with the damage.
	sort.Slice(res.Deltas, func(i, j int) bool {
		if res.Deltas[i].WallRatio != res.Deltas[j].WallRatio {
			return res.Deltas[i].WallRatio > res.Deltas[j].WallRatio
		}
		return keyLess(res.Deltas[j].Key, res.Deltas[i].Key)
	})
	sortKeys(res.OnlyBase)
	sortKeys(res.OnlyHead)
	return res
}

func keyLess(a, b CellKey) bool {
	if a.Variant != b.Variant {
		return a.Variant < b.Variant
	}
	if a.App != b.App {
		return a.App < b.App
	}
	if a.Impl != b.Impl {
		return a.Impl < b.Impl
	}
	return a.NProcs < b.NProcs
}

func sortKeys(keys []CellKey) {
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
}

// String renders the key as variant/app/impl/nprocs (variant omitted when
// empty).
func (k CellKey) String() string {
	s := fmt.Sprintf("%s/%s/%d", k.App, k.Impl, k.NProcs)
	if k.Variant != "" {
		s = k.Variant + "/" + s
	}
	return s
}

// WriteCompare renders the comparison as a markdown report: header with both
// revisions and aggregates, the top wall movers, every flagged regression,
// and the coverage diff.
func WriteCompare(w io.Writer, base, head *Trajectory, res *CompareResult, opt CompareOptions) error {
	bw := &errWriter{w: w}
	fmt.Fprintf(bw, "# dsmperf compare\n\n")
	fmt.Fprintf(bw, "| | base | head |\n|---|---|---|\n")
	fmt.Fprintf(bw, "| rev | %s | %s |\n", base.Meta.Rev, head.Meta.Rev)
	fmt.Fprintf(bw, "| go | %s %s/%s | %s %s/%s |\n",
		base.Meta.GoVersion, base.Meta.GOOS, base.Meta.GOARCH,
		head.Meta.GoVersion, head.Meta.GOOS, head.Meta.GOARCH)
	fmt.Fprintf(bw, "| cells/sec | %.2f | %.2f |\n", base.CellsPerSec, head.CellsPerSec)
	fmt.Fprintf(bw, "| p50 / p99 cell wall | %s / %s | %s / %s |\n",
		fmtNS(base.P50NS), fmtNS(base.P99NS), fmtNS(head.P50NS), fmtNS(head.P99NS))
	fmt.Fprintf(bw, "| peak heap | %s | %s |\n", fmtBytes(base.PeakHeapBytes), fmtBytes(head.PeakHeapBytes))
	fmt.Fprintf(bw, "| total mallocs | %d | %d |\n", base.TotalMallocs, head.TotalMallocs)
	fmt.Fprintf(bw, "| allocs exact | %v | %v |\n\n", base.AllocsExact, head.AllocsExact)
	gates := "wall gating off"
	if opt.WallTol >= 0 {
		gates = fmt.Sprintf("wall tolerance %+.0f%%", opt.WallTol*100)
	}
	if res.AllocsGated {
		gates += fmt.Sprintf(", alloc tolerance %+.1f%%", opt.AllocTol*100)
	} else {
		gates += ", alloc gating off"
	}
	fmt.Fprintf(bw, "Gates: %s.\n\n", gates)

	fmt.Fprintf(bw, "## Top wall movers (min-of-N per run)\n\n")
	fmt.Fprintf(bw, "| cell | base | head | ratio | allocs/run base | head | ratio |\n")
	fmt.Fprintf(bw, "|---|---|---|---|---|---|---|\n")
	top := res.Deltas
	if len(top) > 10 {
		top = top[:10]
	}
	for _, d := range top {
		fmt.Fprintf(bw, "| %s | %s | %s | %.2fx | %.0f | %.0f | %.3fx |\n",
			d.Key, fmtNS(d.BaseWall), fmtNS(d.HeadWall), d.WallRatio,
			d.BaseAllocs, d.HeadAllocs, d.AllocRatio)
	}
	fmt.Fprintf(bw, "\n## Regressions\n\n")
	if res.Regressions == 0 {
		fmt.Fprintf(bw, "none\n")
	}
	for _, d := range res.Deltas {
		switch {
		case d.OutcomeChanged:
			fmt.Fprintf(bw, "- %s: outcome %s -> %s\n", d.Key, d.BaseOutcome, d.HeadOutcome)
		case d.WallRegressed:
			fmt.Fprintf(bw, "- %s: wall %s -> %s (%.2fx, tolerance %+.0f%%)\n",
				d.Key, fmtNS(d.BaseWall), fmtNS(d.HeadWall), d.WallRatio, opt.WallTol*100)
		case d.AllocRegressed:
			fmt.Fprintf(bw, "- %s: allocs/run %.0f -> %.0f (%.3fx, tolerance %+.1f%%)\n",
				d.Key, d.BaseAllocs, d.HeadAllocs, d.AllocRatio, opt.AllocTol*100)
		}
	}
	for _, k := range res.OnlyBase {
		fmt.Fprintf(bw, "- %s: present in base, missing from head (coverage lost)\n", k)
	}
	if len(res.OnlyHead) > 0 {
		fmt.Fprintf(bw, "\n## New cells in head\n\n")
		for _, k := range res.OnlyHead {
			fmt.Fprintf(bw, "- %s\n", k)
		}
	}
	return bw.err
}

// errWriter latches the first write error so the report renderer stays
// linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return len(p), nil
	}
	n, err := ew.w.Write(p)
	ew.err = err
	return n, nil
}

func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
