// Trajectory is the BENCH_*.json perf record: a schema-versioned snapshot of
// one measurement session, designed to be committed, diffed across revisions
// (cmd/dsmperf) and gated on in CI. Encoding is deterministic: cells are
// sorted by identity, counters/gauges are maps (encoding/json sorts keys),
// and every field is either host metadata or derived from the registry.

package perf

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
)

// Schema is the current trajectory schema version. Bump it — and document
// the change in DESIGN.md's "Host observability" chapter — whenever a field
// changes meaning or is removed; adding fields is backward compatible and
// does not bump.
const Schema = 1

// ErrTrajectory is wrapped by every trajectory decode/validation failure.
var ErrTrajectory = errors.New("invalid perf trajectory")

// Meta identifies the build and host a trajectory was measured on.
type Meta struct {
	// Rev is the git revision the measured binary was built from.
	Rev       string `json:"rev"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// GOMAXPROCS and NumCPU describe the host parallelism available to the
	// measurement; Parallel is how many cells actually ran concurrently.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	Parallel   int `json:"parallel"`
	// Scale and Cmd record what was measured (problem scale, command line).
	Scale string `json:"scale,omitempty"`
	Cmd   string `json:"cmd,omitempty"`
}

// HostMeta fills Meta from the running binary and host. rev overrides the
// revision stamp; empty falls back to the build's vcs.revision, then
// "unknown".
func HostMeta(rev string) Meta {
	if rev == "" {
		rev = vcsRevision()
	}
	if rev == "" {
		rev = "unknown"
	}
	return Meta{
		Rev:        rev,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// vcsRevision returns the vcs.revision build setting, if the binary carries
// one ("" otherwise — e.g. `go run` from a dirty tree omits it).
func vcsRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			return s.Value
		}
	}
	return ""
}

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	Name string `json:"name"`
	// Bounds are ascending upper bounds; Buckets has len(Bounds)+1 entries,
	// the last counting observations beyond the final bound.
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"`
	Count   int64   `json:"count"`
	SumNS   int64   `json:"sum"`
}

// Trajectory is the complete perf record of one measurement session.
type Trajectory struct {
	SchemaVersion int  `json:"schema"`
	Meta          Meta `json:"meta"`
	// AllocsExact reports whether per-cell allocation deltas are exact
	// (cells ran one at a time). dsmperf only gates on allocations when
	// both compared trajectories are exact.
	AllocsExact bool `json:"allocs_exact"`
	// WallNS is the host wall-clock span from the first cell start to the
	// last cell end; CellRuns the number of individual cell runs;
	// CellsPerSec the aggregate throughput over that span.
	WallNS      int64   `json:"wall_ns"`
	CellRuns    int64   `json:"cell_runs"`
	CellsPerSec float64 `json:"cells_per_sec"`
	// P50NS / P99NS are exact quantiles over every individual cell-run wall
	// time (not histogram approximations).
	P50NS int64 `json:"p50_ns"`
	P99NS int64 `json:"p99_ns"`
	// Occupancy is busy-worker utilization: total cell wall time divided by
	// (span x parallel). 1.0 means every worker was simulating the whole
	// time.
	Occupancy     float64             `json:"occupancy"`
	PeakHeapBytes int64               `json:"peak_heap_bytes"`
	TotalMallocs  int64               `json:"total_mallocs"`
	TotalAllocB   int64               `json:"total_alloc_bytes"`
	Counters      map[string]int64    `json:"counters,omitempty"`
	Gauges        map[string]int64    `json:"gauges,omitempty"`
	Histograms    []HistogramSnapshot `json:"histograms,omitempty"`
	Cells         []Cell              `json:"cells"`
}

// Snapshot freezes the registry into a trajectory. Cells are sorted by
// (variant, app, impl, nprocs); quantiles are exact over every recorded
// run. A nil registry yields an empty (but valid) trajectory.
func (r *Registry) Snapshot(meta Meta) *Trajectory {
	t := &Trajectory{SchemaVersion: Schema, Meta: meta, Cells: []Cell{}}
	if r == nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	t.AllocsExact = r.allocsExact
	for _, c := range r.cells {
		t.Cells = append(t.Cells, *c)
		t.CellRuns += c.Runs
		t.TotalMallocs += c.Mallocs
		t.TotalAllocB += c.AllocBytes
	}
	sort.Slice(t.Cells, func(i, j int) bool {
		a, b := t.Cells[i], t.Cells[j]
		if a.Variant != b.Variant {
			return a.Variant < b.Variant
		}
		if a.App != b.App {
			return a.App < b.App
		}
		if a.Impl != b.Impl {
			return a.Impl < b.Impl
		}
		return a.NProcs < b.NProcs
	})

	if !r.firstStart.IsZero() {
		t.WallNS = r.lastEnd.Sub(r.firstStart).Nanoseconds()
	}
	var busy int64
	for _, w := range r.walls {
		busy += w
	}
	if t.WallNS > 0 {
		t.CellsPerSec = float64(t.CellRuns) / (float64(t.WallNS) / 1e9)
		if meta.Parallel > 0 {
			t.Occupancy = float64(busy) / (float64(t.WallNS) * float64(meta.Parallel))
		}
	}
	if len(r.walls) > 0 {
		ws := append([]int64(nil), r.walls...)
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		t.P50NS = quantile(ws, 0.50)
		t.P99NS = quantile(ws, 0.99)
	}

	if len(r.counters) > 0 {
		t.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			t.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		t.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			t.Gauges[name] = g.Value()
		}
	}
	t.PeakHeapBytes = t.Gauges["peak_heap_bytes"]
	names := make([]string, 0, len(r.hists))
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		hs := HistogramSnapshot{
			Name:    name,
			Bounds:  append([]int64(nil), h.bounds...),
			Buckets: make([]int64, len(h.buckets)),
			Count:   h.count.Load(),
			SumNS:   h.sum.Load(),
		}
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		t.Histograms = append(t.Histograms, hs)
	}
	return t
}

// quantile returns the q-quantile of the ascending-sorted slice, by
// nearest-rank (the convention used for benchmark latency percentiles).
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// WriteTrajectory encodes t deterministically (indented JSON, sorted cells
// and map keys, trailing newline).
func WriteTrajectory(w io.Writer, t *Trajectory) error {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadTrajectory decodes and validates a trajectory. Unknown schema versions
// and malformed cells fail with errors wrapping ErrTrajectory.
func ReadTrajectory(r io.Reader) (*Trajectory, error) {
	var t Trajectory
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("perf: %w: %v", ErrTrajectory, err)
	}
	if t.SchemaVersion < 1 || t.SchemaVersion > Schema {
		return nil, fmt.Errorf("perf: %w: schema %d (this build reads 1..%d)",
			ErrTrajectory, t.SchemaVersion, Schema)
	}
	seen := make(map[CellKey]bool, len(t.Cells))
	for _, c := range t.Cells {
		if c.App == "" || c.Impl == "" {
			return nil, fmt.Errorf("perf: %w: cell with empty identity %+v", ErrTrajectory, c.Key())
		}
		if c.Runs < 1 {
			return nil, fmt.Errorf("perf: %w: cell %v has %d runs", ErrTrajectory, c.Key(), c.Runs)
		}
		if seen[c.Key()] {
			return nil, fmt.Errorf("perf: %w: duplicate cell %v", ErrTrajectory, c.Key())
		}
		seen[c.Key()] = true
	}
	return &t, nil
}
