// Live progress heartbeats for long sweeps: one line per completed cell
// with running throughput and an ETA from the remaining grid size, so a
// 1024-proc-bound sweep no longer runs silent until the end.

package perf

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// ProgressEmitter returns a callback matching sweep.Grid.Progress that
// streams one heartbeat line per completed cell to w (conventionally
// stderr, keeping stdout artifacts byte-stable):
//
//	perf: 37/336 paper/Water/LRC-diff/8 12.3ms | 41.2 cells/s | ETA 7.3s
//
// The callback is safe for concurrent use; rate and ETA are computed from
// the host clock since the first completion was observed. Heartbeats are
// observation-only — they never touch the simulated statistics.
func ProgressEmitter(w io.Writer) func(done, total int, cell string, wall time.Duration) {
	var mu sync.Mutex
	var start time.Time
	return func(done, total int, cell string, wall time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		if start.IsZero() {
			// Anchor the rate at the first completion, backdated by that
			// cell's own wall time so the first line shows a finite rate.
			start = time.Now().Add(-wall)
		}
		elapsed := time.Since(start)
		var rate float64
		eta := "?"
		if elapsed > 0 {
			rate = float64(done) / elapsed.Seconds()
			if rate > 0 && total >= done {
				d := time.Duration(float64(total-done) / rate * float64(time.Second))
				eta = d.Round(100 * time.Millisecond).String()
			}
		}
		fmt.Fprintf(w, "perf: %d/%d %s %v | %.1f cells/s | ETA %s\n",
			done, total, cell, wall.Round(100*time.Microsecond), rate, eta)
	}
}
