package perf

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Add(3)
	c.Add(4)
	if got := c.Value(); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	if r.Counter("c") != c {
		t.Error("second Counter lookup returned a different handle")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.SetMax(5)
	if got := g.Value(); got != 10 {
		t.Errorf("SetMax(5) lowered gauge to %d", got)
	}
	g.SetMax(20)
	if got := g.Value(); got != 20 {
		t.Errorf("gauge = %d, want 20", got)
	}
	h := r.Histogram("h", []int64{10, 100})
	for _, v := range []int64{5, 50, 500} {
		h.Observe(v)
	}
	if got := h.Count(); got != 3 {
		t.Errorf("histogram count = %d, want 3", got)
	}
	snap := r.Snapshot(Meta{})
	hs := snap.Histograms[0]
	if want := []int64{1, 1, 1}; len(hs.Buckets) != 3 || hs.Buckets[0] != want[0] || hs.Buckets[1] != want[1] || hs.Buckets[2] != want[2] {
		t.Errorf("buckets = %v, want %v", hs.Buckets, want)
	}
	if hs.SumNS != 555 {
		t.Errorf("histogram sum = %d, want 555", hs.SumNS)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(1)
	r.Gauge("g").SetMax(1)
	r.Histogram("h", WallBuckets).Observe(1)
	r.SetAllocsExact(true)
	r.ObserveCell(Cell{App: "a", Impl: "b"})
	ph := r.StartPhase("x")
	ph.End()
	cs := r.StartCell("", "a", "b", 1)
	if cs.Active() {
		t.Error("nil registry produced an active span")
	}
	if cs.Elapsed() != 0 {
		t.Error("inactive span reports elapsed time")
	}
	cs.End(OutcomeOK)
	snap := r.Snapshot(Meta{Rev: "x"})
	if snap.SchemaVersion != Schema || len(snap.Cells) != 0 || snap.Meta.Rev != "x" {
		t.Errorf("nil snapshot = %+v", snap)
	}
}

func TestCellSpanMeasures(t *testing.T) {
	r := New()
	cs := r.StartCell("v", "SOR", "EC-time", 8)
	if !cs.Active() {
		t.Fatal("span inactive on live registry")
	}
	time.Sleep(2 * time.Millisecond)
	if cs.Elapsed() < time.Millisecond {
		t.Errorf("Elapsed = %v, want >= 1ms", cs.Elapsed())
	}
	_ = make([]byte, 1<<16) // guarantee at least one allocation in the window
	cs.End(OutcomeOK)
	snap := r.Snapshot(Meta{Parallel: 1})
	if len(snap.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(snap.Cells))
	}
	c := snap.Cells[0]
	if c.Variant != "v" || c.App != "SOR" || c.Impl != "EC-time" || c.NProcs != 8 {
		t.Errorf("cell identity = %+v", c.Key())
	}
	if c.Outcome != "ok" || c.Runs != 1 {
		t.Errorf("outcome/runs = %s/%d", c.Outcome, c.Runs)
	}
	if c.WallNS < int64(time.Millisecond) || c.MinWallNS != c.WallNS {
		t.Errorf("wall = %d, min = %d", c.WallNS, c.MinWallNS)
	}
	if c.Mallocs < 1 {
		t.Errorf("mallocs = %d, want >= 1", c.Mallocs)
	}
	if snap.PeakHeapBytes <= 0 {
		t.Error("no peak heap recorded")
	}
	if snap.CellRuns != 1 || snap.WallNS <= 0 || snap.CellsPerSec <= 0 {
		t.Errorf("aggregates: runs=%d wall=%d cps=%f", snap.CellRuns, snap.WallNS, snap.CellsPerSec)
	}
	if snap.Occupancy <= 0 || snap.Occupancy > 1.01 {
		t.Errorf("occupancy = %f", snap.Occupancy)
	}
	if snap.P50NS == 0 || snap.P99NS < snap.P50NS {
		t.Errorf("quantiles p50=%d p99=%d", snap.P50NS, snap.P99NS)
	}
}

// TestCellMerge pins the multi-run merge rule: runs accumulate, min wall
// keeps the fastest run, the worst outcome wins.
func TestCellMerge(t *testing.T) {
	r := New()
	r.ObserveCell(Cell{App: "SOR", Impl: "EC-time", NProcs: 8, Outcome: "ok", Runs: 1, WallNS: 300, MinWallNS: 300, Mallocs: 10})
	r.ObserveCell(Cell{App: "SOR", Impl: "EC-time", NProcs: 8, Outcome: "panic", Runs: 1, WallNS: 100, MinWallNS: 100, Mallocs: 30})
	r.ObserveCell(Cell{App: "SOR", Impl: "EC-time", NProcs: 4, Outcome: "ok", Runs: 1, WallNS: 50, MinWallNS: 50})
	snap := r.Snapshot(Meta{})
	if len(snap.Cells) != 2 {
		t.Fatalf("got %d cells, want 2 (one merged, one distinct)", len(snap.Cells))
	}
	// Sorted by nprocs: the 4-proc cell first.
	m := snap.Cells[1]
	if m.Runs != 2 || m.WallNS != 400 || m.MinWallNS != 100 || m.Mallocs != 40 {
		t.Errorf("merged cell = %+v", m)
	}
	if m.Outcome != "panic" {
		t.Errorf("merged outcome = %s, want panic (worst wins)", m.Outcome)
	}
}

func TestQuantile(t *testing.T) {
	ws := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(ws, 0.50); q != 5 {
		t.Errorf("p50 = %d, want 5", q)
	}
	if q := quantile(ws, 0.99); q != 10 {
		t.Errorf("p99 = %d, want 10", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %d", q)
	}
}

// TestRegistryConcurrentUse hammers one registry from many goroutines (the
// parallel-harness shape) and checks totals are exact. Run under -race in
// CI.
func TestRegistryConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	const workers, perWorker = 8, 200
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("n").Add(1)
				r.Gauge("peak").SetMax(int64(w*1000 + i))
				r.Histogram("h", WallBuckets).Observe(int64(i))
				cs := r.StartCell("", "app", "impl", w)
				cs.End(OutcomeOK)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("peak").Value(); got != 7199 {
		t.Errorf("max gauge = %d, want 7199", got)
	}
	snap := r.Snapshot(Meta{Parallel: workers})
	if snap.CellRuns != workers*perWorker {
		t.Errorf("cell runs = %d, want %d", snap.CellRuns, workers*perWorker)
	}
	if len(snap.Cells) != workers {
		t.Errorf("distinct cells = %d, want %d", len(snap.Cells), workers)
	}
}

func TestProgressEmitter(t *testing.T) {
	var buf bytes.Buffer
	p := ProgressEmitter(&buf)
	p(1, 4, "paper/SOR/EC-time/8", 50*time.Millisecond)
	p(2, 4, "paper/SOR/LRC-diff/8", 10*time.Millisecond)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d heartbeat lines, want 2:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "1/4 paper/SOR/EC-time/8") {
		t.Errorf("first heartbeat = %q", lines[0])
	}
	for _, l := range lines {
		if !strings.Contains(l, "cells/s") || !strings.Contains(l, "ETA") {
			t.Errorf("heartbeat missing rate/ETA: %q", l)
		}
	}
}
