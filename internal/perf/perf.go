// Package perf is the host-side observability layer: counters, gauges,
// fixed-bucket histograms, phase timers and per-cell spans measuring the
// *host* running the simulator — wall-clock time, allocation counts, heap
// footprint — as opposed to internal/trace, which observes the *simulated*
// machine in virtual time.
//
// The layer is observation-only by construction:
//
//   - Every entry point is nil-safe: a nil *Registry (and the nil Counter /
//     Gauge / Histogram handles and zero-valued CellSpan / Phase it hands
//     out) turns every operation into a pointer check — no clock reads, no
//     runtime.MemStats, no allocation. The disabled path is pinned at zero
//     allocations by BenchmarkPerfDisabled and TestDisabledRegistryAllocs.
//   - Nothing here reads virtual time. Metrics come from host clocks and the
//     Go runtime, so simulated statistics are byte-identical with metrics on
//     (TestBenchReportWithMetricsMatchesSeedGolden pins the full report).
//
// All handles are safe for concurrent use: counters, gauges and histogram
// buckets are atomics, and the per-cell record list is mutex-guarded, so a
// registry can be shared by every worker of a parallel harness sweep.
package perf

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically-increasing atomic counter. The nil Counter
// (from a nil Registry) accepts Add and reports zero.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d. No-op on the nil Counter.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count; zero on the nil Counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value with a set-to-maximum operation
// (used for peak-heap tracking). The nil Gauge accepts everything.
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on the nil Gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v exceeds the current value.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value; zero on the nil Gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: bounds are ascending upper bounds,
// observations beyond the last bound land in an overflow bucket. Buckets and
// the sum are atomics, so concurrent Observe calls are race-free and the
// totals are deterministic for a deterministic observation set.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is overflow
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records v. No-op on the nil Histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations; zero on the nil Histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// WallBuckets is the default bucket layout for host wall-time histograms:
// exponential upper bounds from 100µs to 100s, in nanoseconds.
var WallBuckets = []int64{
	100e3, 1e6, 10e6, 100e6, 1e9, 10e9, 100e9,
}

// Outcome classifies how a cell run ended.
type Outcome string

// Cell outcomes. Severity orders panic > err > ok; merged cells keep the
// worst outcome seen.
const (
	OutcomeOK    Outcome = "ok"
	OutcomeErr   Outcome = "err"
	OutcomePanic Outcome = "panic"
)

func outcomeRank(o Outcome) int {
	switch o {
	case OutcomePanic:
		return 2
	case OutcomeErr:
		return 1
	default:
		return 0
	}
}

// Cell is the host-side performance record of one evaluation-matrix cell,
// attributed by (variant, app, impl, nprocs). Repeated runs of the same cell
// (Table 3 and Table 4 both run SOR/EC-time, say) merge: Runs counts them,
// WallNS / Mallocs / AllocBytes accumulate, MinWallNS keeps the fastest run
// (the least-noisy wall estimator, benchmarking's min-of-N).
type Cell struct {
	Variant string `json:"variant,omitempty"`
	App     string `json:"app"`
	Impl    string `json:"impl"`
	NProcs  int    `json:"nprocs"`
	Outcome string `json:"outcome"`
	Runs    int64  `json:"runs"`
	// WallNS is the summed host wall-clock time of all runs; MinWallNS the
	// fastest single run.
	WallNS    int64 `json:"wall_ns"`
	MinWallNS int64 `json:"min_wall_ns"`
	// Mallocs and AllocBytes are summed runtime.MemStats deltas across the
	// cell's runs. Exact only when cells run one at a time (see
	// Trajectory.AllocsExact); under parallel workers concurrent cells bleed
	// into each other's windows.
	Mallocs    int64 `json:"mallocs"`
	AllocBytes int64 `json:"alloc_bytes"`
}

// Key is the cell's merge/compare identity.
func (c Cell) Key() CellKey {
	return CellKey{Variant: c.Variant, App: c.App, Impl: c.Impl, NProcs: c.NProcs}
}

// CellKey identifies a cell across trajectories.
type CellKey struct {
	Variant string
	App     string
	Impl    string
	NProcs  int
}

// Registry collects every metric of one measurement session. The zero value
// is not useful; use New. A nil *Registry is the disabled layer: every
// method is a no-op returning nil/zero handles.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	cells map[CellKey]*Cell
	walls []int64 // every individual cell-run wall time, for exact quantiles

	firstStart  time.Time
	lastEnd     time.Time
	allocsExact bool
}

// New returns an empty enabled registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		cells:    make(map[CellKey]*Cell),
	}
}

// SetAllocsExact records whether per-cell allocation deltas are exact —
// true only when the caller runs cells strictly one at a time (parallel 1).
// The flag lands in the trajectory; dsmperf only gates on allocation counts
// when both sides are exact.
func (r *Registry) SetAllocsExact(exact bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.allocsExact = exact
	r.mu.Unlock()
}

// Counter returns the named counter, creating it on first use. Nil registry
// returns the nil Counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil registry
// returns the nil Gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later bounds are ignored). Nil registry returns the nil
// Histogram.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// Phase times one named phase of a run; obtain it from StartPhase and call
// End when the phase completes. The elapsed time accumulates into the
// counter "phase_<name>_ns", so phases aggregate across cells.
type Phase struct {
	c     *Counter
	start time.Time
}

// StartPhase starts timing the named phase. On the nil registry it returns
// the zero Phase, whose End is a pointer check — no clock is read.
func (r *Registry) StartPhase(name string) Phase {
	if r == nil {
		return Phase{}
	}
	return Phase{c: r.Counter("phase_" + name + "_ns"), start: time.Now()}
}

// End stops the phase and accumulates its wall time.
func (p Phase) End() {
	if p.c == nil {
		return
	}
	p.c.Add(int64(time.Since(p.start)))
}

// CellSpan measures one cell run: host wall time plus runtime.MemStats
// deltas (Mallocs, TotalAlloc) between StartCell and End, with the peak
// observed HeapAlloc folded into the "peak_heap_bytes" gauge at both edges.
type CellSpan struct {
	r        *Registry
	cell     Cell
	start    time.Time
	mallocs0 uint64
	alloc0   uint64
}

// StartCell opens a measurement span for the identified cell. On the nil
// registry it returns the zero CellSpan: End and Elapsed become pointer
// checks, and no clock or MemStats read happens.
func (r *Registry) StartCell(variant, app, impl string, nprocs int) CellSpan {
	if r == nil {
		return CellSpan{}
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	r.Gauge("peak_heap_bytes").SetMax(int64(m.HeapAlloc))
	return CellSpan{
		r:        r,
		cell:     Cell{Variant: variant, App: app, Impl: impl, NProcs: nprocs},
		start:    time.Now(),
		mallocs0: m.Mallocs,
		alloc0:   m.TotalAlloc,
	}
}

// Active reports whether the span measures anything (false for spans from a
// nil registry).
func (cs CellSpan) Active() bool { return cs.r != nil }

// Elapsed returns the host wall time since StartCell; zero on an inactive
// span.
func (cs CellSpan) Elapsed() time.Duration {
	if cs.r == nil {
		return 0
	}
	return time.Since(cs.start)
}

// End closes the span with the given outcome and records the cell. Slow
// cells that die are still attributed their elapsed time: the harness calls
// End(OutcomePanic) from its recovery path, so a slow-then-crashing cell is
// distinguishable from a fast one in the perf record.
func (cs CellSpan) End(outcome Outcome) {
	if cs.r == nil {
		return
	}
	end := time.Now()
	wall := end.Sub(cs.start)
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	cs.r.Gauge("peak_heap_bytes").SetMax(int64(m.HeapAlloc))
	cs.r.Histogram("cell_wall_ns", WallBuckets).Observe(int64(wall))

	c := cs.cell
	c.Outcome = string(outcome)
	c.Runs = 1
	c.WallNS = int64(wall)
	c.MinWallNS = int64(wall)
	c.Mallocs = int64(m.Mallocs - cs.mallocs0)
	c.AllocBytes = int64(m.TotalAlloc - cs.alloc0)

	cs.r.mu.Lock()
	cs.r.mergeLocked(c)
	cs.r.walls = append(cs.r.walls, int64(wall))
	if cs.r.firstStart.IsZero() || cs.start.Before(cs.r.firstStart) {
		cs.r.firstStart = cs.start
	}
	if end.After(cs.r.lastEnd) {
		cs.r.lastEnd = end
	}
	cs.r.mu.Unlock()
}

// ObserveCell records a pre-measured cell (merging with any existing record
// of the same identity). It exists for synthetic attribution — tests and
// callers that measure cells through means other than CellSpan. Runs of a
// multi-run cell contribute their average wall to the quantile pool.
func (r *Registry) ObserveCell(c Cell) {
	if r == nil {
		return
	}
	if c.Runs <= 0 {
		c.Runs = 1
	}
	if c.MinWallNS == 0 {
		c.MinWallNS = c.WallNS / c.Runs
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mergeLocked(c)
	avg := c.WallNS / c.Runs
	for i := int64(0); i < c.Runs; i++ {
		r.walls = append(r.walls, avg)
	}
}

// mergeLocked folds one cell record into the registry. Caller holds r.mu.
func (r *Registry) mergeLocked(c Cell) {
	key := c.Key()
	cur := r.cells[key]
	if cur == nil {
		cc := c
		r.cells[key] = &cc
		return
	}
	cur.Runs += c.Runs
	cur.WallNS += c.WallNS
	cur.Mallocs += c.Mallocs
	cur.AllocBytes += c.AllocBytes
	if c.MinWallNS < cur.MinWallNS {
		cur.MinWallNS = c.MinWallNS
	}
	if outcomeRank(Outcome(c.Outcome)) > outcomeRank(Outcome(cur.Outcome)) {
		cur.Outcome = c.Outcome
	}
}

// Counters returns a point-in-time copy of every named counter.
func (r *Registry) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// Gauges returns a point-in-time copy of every named gauge.
func (r *Registry) Gauges() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}
