// Standard pprof wiring shared by the CLIs (dsmbench, dsmsweep, dsmrun):
// the conventional -cpuprofile/-memprofile flags, replacing the ad-hoc
// profiling setups used while measuring earlier PRs.

package perf

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts a CPU profile at cpuPath and/or arranges a heap
// profile at memPath, either may be empty. The returned stop function (never
// nil) finishes both and must be called exactly once before process exit;
// the heap profile is taken at stop time, after a forced GC, so it shows
// live retained memory rather than transient garbage.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuF *os.File
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return func() error { return nil }, fmt.Errorf("perf: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return func() error { return nil }, fmt.Errorf("perf: cpu profile: %w", err)
		}
	}
	return func() error {
		var errs []error
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				errs = append(errs, fmt.Errorf("perf: cpu profile: %w", err))
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				errs = append(errs, fmt.Errorf("perf: heap profile: %w", err))
			} else {
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					errs = append(errs, fmt.Errorf("perf: heap profile: %w", err))
				}
				if err := f.Close(); err != nil {
					errs = append(errs, fmt.Errorf("perf: heap profile: %w", err))
				}
			}
		}
		return errors.Join(errs...)
	}, nil
}
