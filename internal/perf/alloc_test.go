package perf

import (
	"runtime"
	"runtime/debug"
	"testing"
)

// BenchmarkPerfDisabled drives every hot-path entry point against the nil
// registry — the disabled layer every cell pays when metrics are off. The
// CI alloc guard asserts 0 allocs/op: disabled metrics must be a pointer
// check, never a clock read or an allocation.
func BenchmarkPerfDisabled(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs := r.StartCell("", "app", "impl", 8)
		_ = cs.Elapsed()
		cs.End(OutcomeOK)
		ph := r.StartPhase("simulate")
		ph.End()
		r.Counter("c").Add(1)
		r.Gauge("g").SetMax(int64(i))
		r.Histogram("h", WallBuckets).Observe(int64(i))
	}
}

// TestDisabledRegistryAllocs is the strict in-process form of the
// BenchmarkPerfDisabled guard: a window of disabled-path operations must
// perform zero heap allocations, measured as a runtime Mallocs delta with
// GC pinned off (the same discipline as the trace and fabric nil-path
// tests).
func TestDisabledRegistryAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var r *Registry
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < 1000; i++ {
		cs := r.StartCell("", "app", "impl", 8)
		_ = cs.Elapsed()
		_ = cs.Active()
		cs.End(OutcomePanic)
		ph := r.StartPhase("init")
		ph.End()
		r.Counter("c").Add(1)
		r.Gauge("g").SetMax(int64(i))
		r.Histogram("h", WallBuckets).Observe(int64(i))
		r.ObserveCell(Cell{})
		r.SetAllocsExact(true)
	}
	runtime.ReadMemStats(&m1)
	if delta := m1.Mallocs - m0.Mallocs; delta != 0 {
		t.Errorf("9000 disabled-path operations allocated %d objects, want 0", delta)
	}
}
