package harness

import (
	"bytes"
	"fmt"
	"testing"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/run"
	"ecvslrc/internal/sim"
	"ecvslrc/internal/trace"
)

// TestProfileConservationGrid runs every (application x implementation) cell
// at bench scale with tracing on and checks the virtual-time profiler's
// foundation on each: every simulated nanosecond of every processor is
// classified into exactly one stall class (the class totals sum to each
// processor's end time), and the critical path tiles [0, end) with the same
// exactness.
func TestProfileConservationGrid(t *testing.T) {
	cfg := Config{Scale: apps.Bench, NProcs: 8, Cost: fabric.DefaultCostModel(), Trace: true}
	for _, app := range apps.Names() {
		for _, impl := range core.Implementations() {
			app, impl := app, impl
			t.Run(fmt.Sprintf("%s/%v", app, impl), func(t *testing.T) {
				t.Parallel()
				row := RunCell(cfg, app, impl)
				if row.Err != nil {
					t.Fatal(row.Err)
				}
				if row.Trace == nil {
					t.Fatal("traced cell returned no tracer")
				}
				meta := trace.Meta{App: app, Impl: impl.String(), Scale: cfg.Scale.String(), NProcs: cfg.NProcs}
				prof := trace.BuildProfile(row.Trace, meta)
				if err := prof.CheckConservation(); err != nil {
					t.Error(err)
				}
				// The trace covers the whole simulated run, including the
				// initialization outside the StatsBegin..StatsEnd window, so the
				// profiled span can only exceed the reported run time.
				if prof.Span <= 0 || prof.Span < row.Result.Stats.Time {
					t.Errorf("span = %v, want >= the run time %v", prof.Span, row.Result.Stats.Time)
				}
				cp := trace.ExtractCriticalPath(row.Trace, prof)
				if cp.Truncated {
					t.Error("critical path truncated")
				}
				if cp.Total != prof.Procs[cp.EndProc].End {
					t.Errorf("path total %v != anchor end %v", cp.Total, prof.Procs[cp.EndProc].End)
				}
				// The spans must tile [0, Total) without gap or overlap, and the
				// class decomposition must sum to the total.
				var at sim.Time
				for i, s := range cp.Spans {
					if s.T0 != at || s.T1 <= s.T0 {
						t.Fatalf("span %d = [%v, %v), want to start at %v", i, s.T0, s.T1, at)
					}
					at = s.T1
				}
				if at != cp.Total {
					t.Errorf("spans tile [0, %v), want [0, %v)", at, cp.Total)
				}
				var sum sim.Time
				for _, c := range trace.StallClasses() {
					sum += cp.Class[c]
				}
				if sum != cp.Total {
					t.Errorf("path classes sum to %v, want %v", sum, cp.Total)
				}
			})
		}
	}
}

// TestProfileRealRunDeterminism renders the full profiler report set from two
// independent traced runs of the same cell: the bytes must match exactly.
func TestProfileRealRunDeterminism(t *testing.T) {
	cfg := Config{Scale: apps.Bench, NProcs: 8, Cost: fabric.DefaultCostModel(), Trace: true}
	render := func() []byte {
		row := RunCell(cfg, "SOR", core.Impl{Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs})
		if row.Err != nil {
			t.Fatal(row.Err)
		}
		a, err := apps.New("SOR", cfg.Scale)
		if err != nil {
			t.Fatal(err)
		}
		meta := run.TraceMeta(a, row.Impl, cfg.NProcs, cfg.Scale.String())
		art := trace.Analyzed(row.Trace, meta)
		var buf bytes.Buffer
		for _, w := range []func() error{
			func() error { return trace.WriteProfileMarkdown(&buf, art.Profile, art.CritPath) },
			func() error { return trace.WriteFoldedStacks(&buf, art.Profile) },
			func() error { return trace.WriteCritPathCSV(&buf, art.CritPath) },
			func() error { return trace.WriteWhatIfMarkdown(&buf, art.CritPath) },
		} {
			if err := w(); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Error("profiler reports differ across identical traced runs")
	}
}
