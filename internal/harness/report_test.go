package harness

import (
	"errors"
	"os"
	"strings"
	"testing"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/perf"
	"ecvslrc/internal/run"
)

// TestBenchReportMatchesSeedGolden pins the complete `dsmbench -all -micro
// -scale bench` output against the seed's byte-identical golden: with
// contention off and the default cost model, no refactor (sweep engine,
// image cache, fabric transmit path) may move a single byte.
func TestBenchReportMatchesSeedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale full sweep")
	}
	want, err := os.ReadFile("testdata/bench_all_micro.golden")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Scale: apps.Bench, NProcs: 8, Cost: fabric.DefaultCostModel()}
	got, err := BenchReport(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("BenchReport drifted from the seed golden (%d vs %d bytes); regenerate deliberately with `go run ./cmd/dsmbench -all -micro -scale bench > internal/harness/testdata/bench_all_micro.golden` only if the simulated statistics were meant to change", len(got), len(want))
	}
}

// TestBenchReportWithTracingMatchesSeedGolden re-runs the full bench-scale
// report with a fresh tracer attached to every cell and requires the output
// to stay byte-identical to the seed golden: tracing is observation-only at
// every hook point, so turning it on moves no simulated statistic.
func TestBenchReportWithTracingMatchesSeedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale full sweep")
	}
	want, err := os.ReadFile("testdata/bench_all_micro.golden")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Scale: apps.Bench, NProcs: 8, Cost: fabric.DefaultCostModel(), Trace: true}
	got, err := BenchReport(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("BenchReport with tracing enabled drifted from the seed golden (%d vs %d bytes): a trace hook is perturbing the simulation", len(got), len(want))
	}
}

// TestBenchReportWithMetricsMatchesSeedGolden is the same invariant for the
// host-side perf layer: a live registry on every cell reads host clocks and
// MemStats only, so the simulated report must not move by a byte. It also
// sanity-checks the registry actually observed the sweep (cells recorded,
// phase counters non-zero) so a silently-disconnected registry can't fake a
// pass.
func TestBenchReportWithMetricsMatchesSeedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale full sweep")
	}
	want, err := os.ReadFile("testdata/bench_all_micro.golden")
	if err != nil {
		t.Fatal(err)
	}
	reg := perf.New()
	cfg := Config{Scale: apps.Bench, NProcs: 8, Cost: fabric.DefaultCostModel(), Perf: reg}
	got, err := BenchReport(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("BenchReport with metrics enabled drifted from the seed golden (%d vs %d bytes): the perf layer is perturbing the simulation", len(got), len(want))
	}
	snap := reg.Snapshot(perf.Meta{Parallel: 1})
	if len(snap.Cells) == 0 || snap.CellRuns == 0 {
		t.Error("registry attached but observed no cells")
	}
	if snap.Counters["phase_simulate_ns"] <= 0 {
		t.Error("no simulate-phase time attributed")
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Scale: apps.Test, NProcs: 2, Cost: fabric.DefaultCostModel()}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	// Each rejection names the offending value and — for enumerated fields —
	// the accepted ones, so a bad -scale flag is self-diagnosing.
	bad := []struct {
		name string
		cfg  Config
		want string // substring of the error message
	}{
		{"zero-procs", Config{Scale: apps.Test, NProcs: 0}, "nprocs 0 < 1"},
		{"unknown-scale", Config{Scale: apps.Scale(99), NProcs: 4},
			"unknown scale 99 (valid: test, bench, paper, large)"},
		{"negative-scale", Config{Scale: apps.Scale(-1), NProcs: 4},
			"unknown scale -1 (valid: test, bench, paper, large)"},
		{"negative-timeout", Config{Scale: apps.Test, NProcs: 4, Timeout: -1},
			"negative timeout"},
		{"negative-fanin", Config{Scale: apps.Test, NProcs: 4, BarrierFanIn: -2},
			"negative barrier fan-in -2"},
		{"bad-topology", Config{Scale: apps.Test, NProcs: 4, Topology: &fabric.Topology{Radix: 1, Taper: 1}},
			"radix 1 < 2"},
		{"topology-with-faults", Config{Scale: apps.Test, NProcs: 4,
			Topology: &fabric.Topology{Radix: 4, Taper: 1},
			Faults:   &fabric.FaultPlan{Seed: 1}},
			"mutually exclusive"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatalf("config %+v accepted", tc.cfg)
			}
			if !errors.Is(err, ErrConfig) {
				t.Errorf("error does not wrap ErrConfig: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err.Error(), tc.want)
			}
		})
	}
	if _, err := BenchReport(Config{Scale: apps.Test, NProcs: 0}, nil); !errors.Is(err, ErrConfig) {
		t.Errorf("BenchReport did not propagate config error: %v", err)
	}
}

// TestInitImageCached checks the per-(app, scale) cache returns the same
// seeded image on every call and that cells using it still verify.
func TestInitImageCached(t *testing.T) {
	a, err := InitImage("SOR", apps.Test)
	if err != nil {
		t.Fatal(err)
	}
	b, err := InitImage("SOR", apps.Test)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second InitImage call did not hit the cache")
	}
	if _, err := InitImage("no-such-app", apps.Test); err == nil {
		t.Error("want error for unknown app")
	}
	// The computed layout is cached alongside the image and shared by cells.
	la, err := InitLayout("SOR", apps.Test)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := InitLayout("SOR", apps.Test)
	if err != nil {
		t.Fatal(err)
	}
	if la != lb {
		t.Error("second InitLayout call did not hit the cache")
	}
	if la.Size() != a.Size() {
		t.Errorf("cached layout spans %d bytes, image %d", la.Size(), a.Size())
	}
	// A cell run off the cached image must produce the exact stats of a
	// cold run (run.Run seeds its own image, bypassing the cache).
	cfg := Config{Scale: apps.Test, NProcs: 4, Cost: fabric.DefaultCostModel()}
	impl := core.Impl{Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}
	row := RunCell(cfg, "SOR", impl)
	if row.Err != nil {
		t.Fatal(row.Err)
	}
	app, err := apps.New("SOR", apps.Test)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := run.Run(app, impl, cfg.NProcs, cfg.Cost)
	if err != nil {
		t.Fatal(err)
	}
	if row.Stats != cold.Stats {
		t.Errorf("cached-image stats differ from cold run:\n  cached: %+v\n  cold:   %+v", row.Stats, cold.Stats)
	}
}
