// Package harness regenerates the paper's evaluation artifacts: Table 2
// (application parameters), Table 3 (best EC vs best LRC), Tables 4 and 5
// (write trapping x write collection within each model), the in-text
// message/data counters of Section 7.2, and the Section 7.1 factor
// microbenchmarks.
package harness

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/perf"
	"ecvslrc/internal/run"
	"ecvslrc/internal/sim"
	"ecvslrc/internal/trace"
)

// Config selects the experiment size.
type Config struct {
	Scale  apps.Scale
	NProcs int
	Cost   fabric.CostModel
	// Parallel bounds how many table cells run concurrently. Each cell is an
	// isolated sim.Simulator, so cells are embarrassingly parallel; results
	// are always assembled in table order, making the output independent of
	// the worker count. <= 0 means GOMAXPROCS.
	Parallel int
	// Contention enables shared-link contention in the fabric (see
	// fabric.Network.EnableContention). Off reproduces the calibrated
	// free-overlap model bit-exactly.
	Contention bool
	// Trace attaches a fresh event tracer to every cell (internal/trace).
	// Tracing is observation-only — the tables are byte-identical with it on.
	// RunCell hands the cell's tracer back on Row.Trace for post-hoc analysis
	// (the sweep engine's stall breakdown); the table entry points still
	// discard the per-cell traces.
	Trace bool
	// Faults injects the given seeded fault plan into every cell's fabric
	// (see fabric.FaultPlan). nil reproduces the fault-free run bit-exactly.
	Faults *fabric.FaultPlan
	// Timeout arms the simulator watchdog in every cell: a cell whose
	// virtual clock would pass Timeout fails with a sim.Stalled diagnostic
	// naming the blocked processes instead of running forever. 0 disables.
	Timeout sim.Time
	// Perf, when non-nil, attributes host-side performance to every cell:
	// wall-clock time, runtime.MemStats allocation deltas and peak heap per
	// (app, impl, nprocs, variant), plus the run-phase timers (internal/perf).
	// Metrics are observation-only — host clocks, never virtual time — so
	// the tables are byte-identical with metrics on; nil costs nothing.
	Perf *perf.Registry
	// Variant labels this configuration's cost variant in the perf record
	// (the sweep engine sets it to the variant name; "" for the calibrated
	// paper platform). Purely a metrics label — it changes no behavior.
	Variant string
	// NoticeGC enables LRC notice-history garbage collection in every cell
	// (run.Options.NoticeGC). Collection is provably invisible to Stats and
	// final memory images (TestNoticeGCEquivalence), so it additionally
	// defaults ON at apps.Large scale, where an uncollected 256-1024 processor
	// run holds O(intervals x procs) history per node.
	NoticeGC bool
	// BarrierFanIn arranges barrier episodes as a radix-r tree (r >= 2; see
	// syncmgr.BarrierMgr.SetFanIn). 0 picks the scale default: flat at the
	// golden-pinned scales, 16 at apps.Large (a flat 1024-way barrier
	// serializes the whole machine through one handler). 1 forces the flat
	// protocol at any scale.
	BarrierFanIn int
	// Topology, when non-nil, replaces every cell's flat shared link with
	// the folded-Clos switch model (fabric.Topology). Nil keeps the flat
	// calibrated fabric. Mutually exclusive with Faults: the reliable
	// sublayer's retransmission timing is calibrated against the flat link.
	Topology *fabric.Topology
}

// ErrConfig is wrapped by every Config validation failure.
var ErrConfig = errors.New("invalid harness config")

// Validate reports whether the configuration can run at all. Errors wrap
// ErrConfig so callers can classify them with errors.Is.
func (cfg Config) Validate() error {
	if cfg.NProcs < 1 {
		return fmt.Errorf("harness: %w: nprocs %d < 1", ErrConfig, cfg.NProcs)
	}
	switch cfg.Scale {
	case apps.Test, apps.Bench, apps.Paper, apps.Large:
	default:
		return fmt.Errorf("harness: %w: unknown scale %d (valid: %s)",
			ErrConfig, int(cfg.Scale), strings.Join(apps.ScaleNames(), ", "))
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return fmt.Errorf("harness: %w: %v", ErrConfig, err)
		}
	}
	if cfg.Timeout < 0 {
		return fmt.Errorf("harness: %w: negative timeout %v", ErrConfig, cfg.Timeout)
	}
	if cfg.BarrierFanIn < 0 {
		return fmt.Errorf("harness: %w: negative barrier fan-in %d", ErrConfig, cfg.BarrierFanIn)
	}
	if cfg.Topology != nil {
		if err := cfg.Topology.Validate(); err != nil {
			return fmt.Errorf("harness: %w: %v", ErrConfig, err)
		}
		if cfg.Faults != nil {
			return fmt.Errorf("harness: %w: topology and fault injection are mutually exclusive", ErrConfig)
		}
	}
	return nil
}

// Default returns the paper's configuration: 8 processors, paper-size data
// sets, calibrated platform costs.
func Default() Config {
	return Config{Scale: apps.Paper, NProcs: 8, Cost: fabric.DefaultCostModel()}
}

func (cfg Config) parallelism() int {
	if cfg.Parallel > 0 {
		return cfg.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on a bounded worker pool. fn must
// write its result to an index-addressed slot; iteration order is unspecified
// but every index completes before ForEach returns, so callers assemble
// deterministic output regardless of par. The sweep engine reuses this pool
// for its grid cells.
//
// A panic in fn(i) is confined to that index: the worker recovers, records
// the panic (with its stack) against i, and moves on, so one poisoned cell
// cannot take down the rest of a table or sweep. The recovered panics are
// returned joined in index order; nil means every index completed normally.
func ForEach(par, n int, fn func(int)) error {
	errs := make([]error, n)
	call := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				errs[i] = fmt.Errorf("harness: cell %d panicked: %v\n%s", i, v, debug.Stack())
			}
		}()
		fn(i)
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			call(i)
		}
		return errors.Join(errs...)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				call(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return errors.Join(errs...)
}

// Row is the outcome of one (application, implementation) cell.
type Row struct {
	App  string
	Impl core.Impl
	run.Result
	Err error
	// Trace is the cell's event tracer when Config.Trace was set (nil
	// otherwise), so callers can run post-hoc analysis — the sweep engine's
	// stall breakdown builds its per-record profile from it.
	Trace *trace.Tracer
}

// imageCache memoizes the computed layout and pre-seeded initial image per
// (application, scale): both are pure functions of the problem instance, and
// a sweep re-runs the same instance for every implementation, processor count
// and cost variant. Seeding runs under a per-key once — not a global lock —
// so a parallel sweep's first touches of distinct apps seed concurrently. The
// footprint is bounded by #apps x #scales (a few MB per paper-scale image);
// cells share images and layouts read-only.
var imageCache sync.Map // imageKey -> *imageEntry

type imageKey struct {
	app   string
	scale apps.Scale
}

type imageEntry struct {
	once sync.Once
	im   *mem.Image
	al   *mem.Allocator
	err  error
}

func initEntry(app string, scale apps.Scale) *imageEntry {
	e, _ := imageCache.LoadOrStore(imageKey{app, scale}, &imageEntry{})
	ent := e.(*imageEntry)
	ent.once.Do(func() {
		a, err := apps.New(app, scale)
		if err != nil {
			ent.err = err
			return
		}
		al := mem.NewAllocator()
		a.Layout(al)
		im := mem.NewImage(al.Size())
		a.Init(im)
		ent.im, ent.al = im, al
	})
	return ent
}

// InitImage returns the cached pre-seeded initial image for (app, scale),
// seeding it on first use. The returned image must be treated as read-only.
func InitImage(app string, scale apps.Scale) (*mem.Image, error) {
	ent := initEntry(app, scale)
	return ent.im, ent.err
}

// InitLayout returns the cached computed layout for (app, scale), computing
// it on first use. Cells replay it (run.Options.Layout) instead of laying
// shared memory out again; the returned allocator must be treated as
// read-only.
func InitLayout(app string, scale apps.Scale) (*mem.Allocator, error) {
	ent := initEntry(app, scale)
	return ent.al, ent.err
}

// cellOptions assembles the cached-artifact options for one cell.
func cellOptions(cfg Config, app string) (run.Options, error) {
	ent := initEntry(app, cfg.Scale)
	if ent.err != nil {
		return run.Options{}, ent.err
	}
	opts := run.Options{
		Contention:   cfg.Contention,
		InitImage:    ent.im,
		Layout:       ent.al,
		Faults:       cfg.Faults,
		Timeout:      cfg.Timeout,
		Perf:         cfg.Perf,
		NoticeGC:     cfg.NoticeGC,
		BarrierFanIn: cfg.BarrierFanIn,
		Topology:     cfg.Topology,
	}
	// The large machine gets the scaling machinery by default: notice GC is
	// equivalence-pinned (TestNoticeGCEquivalence), and a flat 256-1024-way
	// barrier funnels the whole machine through one manager handler. The
	// golden-pinned scales (test/bench/paper) keep everything off unless
	// asked. BarrierFanIn == 1 explicitly forces the flat protocol.
	if cfg.Scale == apps.Large {
		opts.NoticeGC = true
		if opts.BarrierFanIn == 0 {
			opts.BarrierFanIn = 16
		}
	}
	if cfg.Trace {
		opts.Trace = trace.New(cfg.NProcs)
	}
	return opts, nil
}

// CellPanic is the structured error a cell reports when its run panics. The
// panic is confined to the cell — the rest of the table or sweep completes —
// and the error carries the full cell identity plus the recovered value and
// stack, so a crashing configuration is diagnosable from the report alone.
type CellPanic struct {
	App    string
	Impl   core.Impl
	NProcs int
	Value  any    // the recovered panic value
	Stack  []byte // stack captured at recovery
	// Elapsed is the cell's host wall time up to the panic, measured when a
	// perf registry is attached (Config.Perf; zero otherwise). It makes a
	// slow-then-crashing cell distinguishable from a fast one.
	Elapsed time.Duration
}

func (cp *CellPanic) Error() string {
	after := ""
	if cp.Elapsed > 0 {
		after = fmt.Sprintf(" after %v", cp.Elapsed.Round(time.Microsecond))
	}
	return fmt.Sprintf("harness: cell %s/%v (%d procs) panicked%s: %v\n%s",
		cp.App, cp.Impl, cp.NProcs, after, cp.Value, cp.Stack)
}

// outcomeOf classifies a cell error for the perf record.
func outcomeOf(err error) perf.Outcome {
	switch {
	case err == nil:
		return perf.OutcomeOK
	default:
		var cp *CellPanic
		if errors.As(err, &cp) {
			return perf.OutcomePanic
		}
		return perf.OutcomeErr
	}
}

// RunCell executes one cell of the evaluation matrix. A panic anywhere in the
// cell's run is recovered into a *CellPanic in Row.Err rather than crashing
// the caller. With Config.Perf attached, the cell's wall time and allocation
// deltas are recorded whatever the outcome — the panic path is attributed
// its elapsed time too.
func RunCell(cfg Config, app string, impl core.Impl) (row Row) {
	row = Row{App: app, Impl: impl}
	cs := cfg.Perf.StartCell(cfg.Variant, app, impl.String(), cfg.NProcs)
	defer func() {
		if v := recover(); v != nil {
			row.Err = &CellPanic{
				App: app, Impl: impl, NProcs: cfg.NProcs, Value: v,
				Stack: debug.Stack(), Elapsed: cs.Elapsed(),
			}
		}
		cs.End(outcomeOf(row.Err))
	}()
	a, err := apps.New(app, cfg.Scale)
	if err != nil {
		row.Err = err
		return row
	}
	opts, err := cellOptions(cfg, app)
	if err != nil {
		row.Err = err
		return row
	}
	res, err := run.RunWith(a, impl, cfg.NProcs, cfg.Cost, opts)
	row.Result, row.Err = res, err
	row.Trace = opts.Trace
	return row
}

// RunSeq executes the sequential reference of one application. With
// Config.Perf attached it is attributed like a cell, under impl "seq".
func RunSeq(cfg Config, app string) (t sim.Time, err error) {
	cs := cfg.Perf.StartCell(cfg.Variant, app, "seq", 1)
	defer func() {
		if v := recover(); v != nil {
			cs.End(perf.OutcomePanic)
			panic(v) // ForEach's per-index recovery attributes it
		}
		cs.End(outcomeOf(err))
	}()
	a, err := apps.New(app, cfg.Scale)
	if err != nil {
		return 0, err
	}
	opts, err := cellOptions(cfg, app)
	if err != nil {
		return 0, err
	}
	opts.Contention = false // the sequential reference has no fabric at all
	return run.RunSeqWith(a, opts)
}

// Table2 renders the application-parameter table for the configured scale.
func Table2(cfg Config) string {
	params := map[apps.Scale]map[string]string{
		apps.Paper: {
			"SOR":        "1000x1000 floats, 50 iterations",
			"SOR+":       "1000x1000 floats (boundary rows shared), 50 iterations",
			"QS":         "262,144 integers, cutoff 1024",
			"Water":      "343 molecules, 5 iterations",
			"Barnes-Hut": "8,192 bodies, 5 iterations",
			"IS":         "N = 2^20, Bmax = 2^9, 10 rankings",
			"3D-FFT":     "64x64x32",
		},
		apps.Bench: {
			"SOR":        "256x256 floats, 8 iterations",
			"SOR+":       "256x256 floats (boundary rows shared), 8 iterations",
			"QS":         "32,768 integers, cutoff 1024",
			"Water":      "125 molecules, 3 iterations",
			"Barnes-Hut": "512 bodies, 2 iterations",
			"IS":         "N = 2^16, Bmax = 2^9, 5 rankings",
			"3D-FFT":     "32x32x32",
		},
		apps.Test: {
			"SOR":        "48x64 floats, 4 iterations",
			"SOR+":       "48x64 floats (boundary rows shared), 4 iterations",
			"QS":         "4,096 integers, cutoff 256",
			"Water":      "37 molecules, 2 iterations",
			"Barnes-Hut": "64 bodies, 2 iterations",
			"IS":         "N = 4096, Bmax = 128, 3 rankings",
			"3D-FFT":     "16x16x32",
		},
		apps.Large: {
			"SOR":        "1026x64 floats, 4 iterations",
			"SOR+":       "1026x64 floats (boundary rows shared), 4 iterations",
			"QS":         "131,072 integers, cutoff 512",
			"Water":      "1,024 molecules, 2 iterations",
			"Barnes-Hut": "2,048 bodies, 2 iterations",
			"IS":         "N = 2^18, Bmax = 2^10, 3 rankings",
			"3D-FFT":     "64x64x8",
		},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Application Parameters (%s scale)\n", cfg.Scale)
	fmt.Fprintf(&b, "%-12s %s\n", "Application", "Data Set Size")
	for _, name := range apps.Names() {
		fmt.Fprintf(&b, "%-12s %s\n", name, params[cfg.Scale][name])
	}
	return b.String()
}

// Table3Result holds one application row of Table 3.
type Table3Result struct {
	App      string
	SeqTime  sim.Time
	BestEC   Row
	BestLRC  Row
	ECImpls  []Row
	LRCImpls []Row
}

// Table3 runs every implementation of every application and reports the
// best EC against the best LRC, the paper's headline comparison. Cells run
// concurrently up to cfg.Parallel; the result is identical for any worker
// count.
func Table3(cfg Config, appNames []string) ([]Table3Result, error) {
	impls := core.Implementations()
	stride := 1 + len(impls) // per app: the sequential reference plus each impl
	seqTimes := make([]sim.Time, len(appNames))
	seqErrs := make([]error, len(appNames))
	rows := make([]Row, len(appNames)*len(impls))
	poolErr := ForEach(cfg.parallelism(), len(appNames)*stride, func(k int) {
		app := appNames[k/stride]
		j := k % stride
		if j == 0 {
			seqTimes[k/stride], seqErrs[k/stride] = RunSeq(cfg, app)
			return
		}
		rows[(k/stride)*len(impls)+j-1] = RunCell(cfg, app, impls[j-1])
	})
	// Collect every failed cell before giving up, so one bad configuration
	// reports the whole damage, not just its first victim.
	errs := []error{poolErr}
	for i, name := range appNames {
		if seqErrs[i] != nil {
			errs = append(errs, fmt.Errorf("harness: %s sequential: %w", name, seqErrs[i]))
		}
		for j := range impls {
			if err := rows[i*len(impls)+j].Err; err != nil {
				errs = append(errs, fmt.Errorf("harness: %s/%v: %w", name, impls[j], err))
			}
		}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	var out []Table3Result
	for i, name := range appNames {
		r := Table3Result{App: name, SeqTime: seqTimes[i]}
		for j := range impls {
			row := rows[i*len(impls)+j]
			if impls[j].Model == core.EC {
				r.ECImpls = append(r.ECImpls, row)
			} else {
				r.LRCImpls = append(r.LRCImpls, row)
			}
		}
		r.BestEC = best(r.ECImpls)
		r.BestLRC = best(r.LRCImpls)
		out = append(out, r)
	}
	return out, nil
}

func best(rows []Row) Row {
	b := rows[0]
	for _, r := range rows[1:] {
		if r.Stats.Time < b.Stats.Time {
			b = r
		}
	}
	return b
}

// FormatTable3 renders Table 3 in the paper's layout.
func FormatTable3(rows []Table3Result) string {
	var b strings.Builder
	b.WriteString("Table 3: Execution Times — best EC vs best LRC\n")
	fmt.Fprintf(&b, "%-12s %9s %9s %9s %10s %10s\n", "App", "1 proc.", "EC", "LRC", "EC Imp.", "LRC Imp.")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %9.2f %9.2f %9.2f %10s %10s\n",
			r.App, r.SeqTime.Seconds(), r.BestEC.Stats.Time.Seconds(), r.BestLRC.Stats.Time.Seconds(),
			implSuffix(r.BestEC.Impl), implSuffix(r.BestLRC.Impl))
	}
	return b.String()
}

func implSuffix(i core.Impl) string {
	s := i.String()
	return s[strings.Index(s, "-")+1:]
}

// TableModel runs the trapping x collection matrix for one model (Table 4
// for EC, Table 5 for LRC), with cells running concurrently up to
// cfg.Parallel.
func TableModel(cfg Config, model core.Model, appNames []string) (map[string][]Row, error) {
	impls := core.ModelImpls(model)
	rows := make([]Row, len(appNames)*len(impls))
	poolErr := ForEach(cfg.parallelism(), len(rows), func(k int) {
		rows[k] = RunCell(cfg, appNames[k/len(impls)], impls[k%len(impls)])
	})
	if err := errors.Join(append([]error{poolErr}, rowErrs(rows)...)...); err != nil {
		return nil, err
	}
	out := make(map[string][]Row)
	for k, row := range rows {
		name := appNames[k/len(impls)]
		out[name] = append(out[name], row)
	}
	return out, nil
}

// rowErrs gathers the errors of all failed rows, wrapped with cell identity.
func rowErrs(rows []Row) []error {
	var errs []error
	for _, row := range rows {
		if row.Err != nil {
			errs = append(errs, fmt.Errorf("harness: %s/%v: %w", row.App, row.Impl, row.Err))
		}
	}
	return errs
}

// FormatTableModel renders Table 4 or Table 5.
func FormatTableModel(model core.Model, rows map[string][]Row, appNames []string) string {
	var b strings.Builder
	n := 4
	if model == core.LRC {
		n = 5
	}
	fmt.Fprintf(&b, "Table %d: Execution Times (seconds) for Write Trapping x Write Collection in %v\n", n, model)
	impls := core.ModelImpls(model)
	fmt.Fprintf(&b, "%-12s", "App")
	for _, i := range impls {
		fmt.Fprintf(&b, " %10s", i)
	}
	b.WriteString("\n")
	for _, name := range appNames {
		fmt.Fprintf(&b, "%-12s", name)
		cells := rows[name]
		sort.Slice(cells, func(i, j int) bool { return cells[i].Impl.String() < cells[j].Impl.String() })
		byImpl := map[string]Row{}
		for _, c := range cells {
			byImpl[c.Impl.String()] = c
		}
		for _, i := range impls {
			fmt.Fprintf(&b, " %10.2f", byImpl[i.String()].Stats.Time.Seconds())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatCounters renders the Section 7.2 in-text counters (messages and MB
// moved) for the best implementations, the quantities the paper quotes when
// explaining each application's outcome.
func FormatCounters(rows []Table3Result) string {
	var b strings.Builder
	b.WriteString("Section 7.2 counters: messages and data moved (best impls)\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %12s\n", "App", "EC msgs", "LRC msgs", "EC MB", "LRC MB")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %12d %12d %12.1f %12.1f\n",
			r.App, r.BestEC.Stats.Msgs, r.BestLRC.Stats.Msgs,
			r.BestEC.Stats.MB(), r.BestLRC.Stats.MB())
	}
	return b.String()
}

// Micro runs the Section 7.1 factor kernels for every implementation, with
// cells running concurrently up to cfg.Parallel.
func Micro(cfg Config) (map[string][]Row, error) {
	names := apps.MicroNames()
	impls := core.Implementations()
	rows := make([]Row, len(names)*len(impls))
	poolErr := ForEach(cfg.parallelism(), len(rows), func(k int) {
		rows[k] = RunCell(cfg, names[k/len(impls)], impls[k%len(impls)])
	})
	if err := errors.Join(append([]error{poolErr}, rowErrs(rows)...)...); err != nil {
		return nil, err
	}
	out := make(map[string][]Row)
	for k, row := range rows {
		name := names[k/len(impls)]
		out[name] = append(out[name], row)
	}
	return out, nil
}

// FormatMicro renders the factor-kernel comparison.
func FormatMicro(rows map[string][]Row) string {
	var b strings.Builder
	b.WriteString("Section 7.1 factor kernels (time / msgs / KB per implementation)\n")
	for _, name := range apps.MicroNames() {
		fmt.Fprintf(&b, "%s:\n", name)
		for _, r := range rows[name] {
			fmt.Fprintf(&b, "  %-10s %10v %8d msgs %8.1f KB\n",
				r.Impl, r.Stats.Time, r.Stats.Msgs, float64(r.Stats.Bytes)/1024)
		}
	}
	return b.String()
}

// BenchReport renders the complete `dsmbench -all` output — Tables 2-5, the
// Section 7.2 counters and the Section 7.1 factor kernels — as one string.
// cmd/dsmbench prints exactly this for -all, and the byte-identity regression
// test pins it against the seed's golden output with contention off.
func BenchReport(cfg Config, appNames []string) (string, error) {
	if err := cfg.Validate(); err != nil {
		return "", err
	}
	if len(appNames) == 0 {
		appNames = apps.Names()
	}
	var b strings.Builder
	b.WriteString(Table2(cfg))
	b.WriteString("\n")
	t3, err := Table3(cfg, appNames)
	if err != nil {
		return "", err
	}
	b.WriteString(FormatTable3(t3))
	b.WriteString("\n")
	t4, err := TableModel(cfg, core.EC, appNames)
	if err != nil {
		return "", err
	}
	b.WriteString(FormatTableModel(core.EC, t4, appNames))
	b.WriteString("\n")
	t5, err := TableModel(cfg, core.LRC, appNames)
	if err != nil {
		return "", err
	}
	b.WriteString(FormatTableModel(core.LRC, t5, appNames))
	b.WriteString("\n")
	b.WriteString(FormatCounters(t3))
	b.WriteString("\n")
	m, err := Micro(cfg)
	if err != nil {
		return "", err
	}
	b.WriteString(FormatMicro(m))
	return b.String(), nil
}
