package harness

import (
	"strings"
	"testing"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
)

func testConfig() Config {
	return Config{Scale: apps.Test, NProcs: 4, Cost: fabric.DefaultCostModel()}
}

func TestTable3TestScale(t *testing.T) {
	rows, err := Table3(testConfig(), []string{"SOR", "IS"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SeqTime <= 0 || r.BestEC.Stats.Time <= 0 || r.BestLRC.Stats.Time <= 0 {
			t.Errorf("%s: non-positive times: %+v", r.App, r)
		}
		if len(r.ECImpls) != 3 || len(r.LRCImpls) != 3 {
			t.Errorf("%s: wrong implementation counts", r.App)
		}
		// At test scale communication dominates and speedup is not
		// expected; TestPaperScaleSpeedup checks it at realistic sizes.
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "SOR") || !strings.Contains(out, "1 proc.") {
		t.Errorf("format:\n%s", out)
	}
}

func TestTableModelFormat(t *testing.T) {
	rows, err := TableModel(testConfig(), core.EC, []string{"IS"})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTableModel(core.EC, rows, []string{"IS"})
	if !strings.Contains(out, "Table 4") || !strings.Contains(out, "EC-ci") {
		t.Errorf("format:\n%s", out)
	}
	rows5, err := TableModel(testConfig(), core.LRC, []string{"IS"})
	if err != nil {
		t.Fatal(err)
	}
	out5 := FormatTableModel(core.LRC, rows5, []string{"IS"})
	if !strings.Contains(out5, "Table 5") || !strings.Contains(out5, "LRC-diff") {
		t.Errorf("format:\n%s", out5)
	}
}

// TestPaperScaleSpeedup checks that at paper-size data sets the parallel
// runs achieve real speedup over the sequential reference, as Table 3 shows
// for every application.
func TestPaperScaleSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	cfg := Config{Scale: apps.Paper, NProcs: 8, Cost: fabric.DefaultCostModel()}
	for _, name := range []string{"Water", "IS"} {
		seq, err := RunSeq(cfg, name)
		if err != nil {
			t.Fatal(err)
		}
		row := RunCell(cfg, name, core.Impl{Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs})
		if row.Err != nil {
			t.Fatal(row.Err)
		}
		speedup := float64(seq) / float64(row.Stats.Time)
		if speedup < 2 {
			t.Errorf("%s: speedup %.2f at 8 procs, want >= 2", name, speedup)
		}
		t.Logf("%s: seq %v, LRC-diff %v, speedup %.2f", name, seq, row.Stats.Time, speedup)
	}
}

func TestTable2AllScales(t *testing.T) {
	for _, s := range []apps.Scale{apps.Test, apps.Bench, apps.Paper} {
		out := Table2(Config{Scale: s})
		for _, name := range apps.Names() {
			if !strings.Contains(out, name) {
				t.Errorf("scale %v: missing %s", s, name)
			}
		}
	}
}

func TestMicroKernels(t *testing.T) {
	rows, err := Micro(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatMicro(rows)
	if !strings.Contains(out, "micro-migratory") {
		t.Errorf("format:\n%s", out)
	}
	// Factor checks at kernel scale:
	byName := func(name string, impl core.Impl) Row {
		for _, r := range rows[name] {
			if r.Impl == impl {
				return r
			}
		}
		t.Fatalf("missing %s %v", name, impl)
		return Row{}
	}
	ecTime := core.Impl{Model: core.EC, Trap: core.Twinning, Collect: core.Timestamps}
	ecDiff := core.Impl{Model: core.EC, Trap: core.Twinning, Collect: core.Diffs}
	// Migratory data: timestamps move less data than diffs (Section 5.3).
	if mt, md := byName("micro-migratory", ecTime), byName("micro-migratory", ecDiff); mt.Stats.Bytes >= md.Stats.Bytes {
		t.Errorf("migratory: EC-time bytes %d >= EC-diff bytes %d", mt.Stats.Bytes, md.Stats.Bytes)
	}
	// Prefetching: LRC needs fewer messages than EC when one consumer reads
	// many small objects from one page (Section 7.1).
	lrcDiff := core.Impl{Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}
	ecCi := core.Impl{Model: core.EC, Trap: core.CompilerInstr, Collect: core.Timestamps}
	if lp, ep := byName("micro-prefetch", lrcDiff), byName("micro-prefetch", ecCi); lp.Stats.Msgs >= ep.Stats.Msgs {
		t.Errorf("prefetch: LRC msgs %d >= EC msgs %d", lp.Stats.Msgs, ep.Stats.Msgs)
	}
	// False sharing: EC moves less data than LRC (Section 7.1).
	if ef, lf := byName("micro-false-sharing", ecDiff), byName("micro-false-sharing", lrcDiff); ef.Stats.Bytes >= lf.Stats.Bytes {
		t.Errorf("false sharing: EC bytes %d >= LRC bytes %d", ef.Stats.Bytes, lf.Stats.Bytes)
	}
}
