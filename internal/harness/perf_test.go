package harness

import (
	"errors"
	"testing"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/perf"
)

// TestPerfRegistryParallelDeterminism runs the same table twice on the
// parallel worker pool, each with a fresh registry, and requires the
// *identity* content of the snapshots to match exactly: same cell set, same
// run counts, same outcomes, same phase-counter keys. Wall times and alloc
// deltas are host noise and deliberately not compared. Runs under -race in
// CI (the harness package is in the race job), which exercises the
// registry's concurrent merge path.
func TestPerfRegistryParallelDeterminism(t *testing.T) {
	appNames := []string{"SOR", "IS"}
	snap := func() *perf.Trajectory {
		reg := perf.New()
		cfg := Config{Scale: apps.Test, NProcs: 4, Cost: fabric.DefaultCostModel(), Parallel: 8, Perf: reg}
		if _, err := TableModel(cfg, core.EC, appNames); err != nil {
			t.Fatal(err)
		}
		if _, err := Table3(cfg, appNames); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot(perf.Meta{Parallel: 8})
	}
	a, b := snap(), snap()
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		if ca.Key() != cb.Key() || ca.Runs != cb.Runs || ca.Outcome != cb.Outcome {
			t.Errorf("cell %d diverged: %+v vs %+v", i, ca.Key(), cb.Key())
		}
	}
	if a.CellRuns != b.CellRuns {
		t.Errorf("run totals differ: %d vs %d", a.CellRuns, b.CellRuns)
	}
	for name := range a.Counters {
		if _, ok := b.Counters[name]; !ok {
			t.Errorf("counter %q present in first snapshot only", name)
		}
	}
	// Table3 (6 impls + seq) and TableModel EC (3 impls, merged into the
	// same cells) over 2 apps: 12 impl cells + 2 seq cells.
	if want := 14; len(a.Cells) != want {
		t.Errorf("distinct cells = %d, want %d", len(a.Cells), want)
	}
}

// TestPanicCellWallAttribution poisons a cell (the PR 6 isolation scenario)
// and checks the perf record still attributes wall time to the crashed cell:
// outcome panic, a positive wall measurement, and the elapsed time surfaced
// on the *CellPanic itself — a slow-then-crashing cell must be
// distinguishable from a fast one.
func TestPanicCellWallAttribution(t *testing.T) {
	key := imageKey{"SOR", apps.Test}
	poison := &imageEntry{}
	poison.once.Do(func() {
		other, err := apps.New("QS", apps.Test)
		if err != nil {
			t.Fatal(err)
		}
		al := mem.NewAllocator()
		other.Layout(al)
		im := mem.NewImage(al.Size())
		other.Init(im)
		poison.al, poison.im = al, im
	})
	imageCache.Store(key, poison)
	defer imageCache.Delete(key)

	reg := perf.New()
	impl := core.Implementations()[0]
	cfg := Config{Scale: apps.Test, NProcs: 2, Cost: fabric.DefaultCostModel(), Perf: reg}
	row := RunCell(cfg, "SOR", impl)
	var cp *CellPanic
	if !errors.As(row.Err, &cp) {
		t.Fatalf("poisoned cell returned %v, want *CellPanic", row.Err)
	}
	if cp.Elapsed <= 0 {
		t.Error("CellPanic carries no elapsed time despite an attached registry")
	}
	snap := reg.Snapshot(perf.Meta{Parallel: 1})
	if len(snap.Cells) != 1 {
		t.Fatalf("got %d perf cells, want 1", len(snap.Cells))
	}
	c := snap.Cells[0]
	if c.Outcome != string(perf.OutcomePanic) {
		t.Errorf("outcome = %q, want panic", c.Outcome)
	}
	if c.WallNS <= 0 {
		t.Error("panicked cell has no wall time in the perf record")
	}
	if c.App != "SOR" || c.Impl != impl.String() || c.NProcs != 2 {
		t.Errorf("panicked cell identity = %v", c.Key())
	}
}

// TestRunCellPerfAttribution pins the happy-path record: one cell, outcome
// ok, run-phase counters populated, peak heap observed.
func TestRunCellPerfAttribution(t *testing.T) {
	reg := perf.New()
	reg.SetAllocsExact(true)
	impl := core.Impl{Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}
	cfg := Config{Scale: apps.Test, NProcs: 4, Cost: fabric.DefaultCostModel(), Perf: reg, Variant: "paper"}
	row := RunCell(cfg, "SOR", impl)
	if row.Err != nil {
		t.Fatal(row.Err)
	}
	snap := reg.Snapshot(perf.Meta{Parallel: 1})
	if len(snap.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(snap.Cells))
	}
	c := snap.Cells[0]
	if c.Variant != "paper" || c.Outcome != "ok" || c.WallNS <= 0 || c.Mallocs <= 0 {
		t.Errorf("cell = %+v", c)
	}
	for _, phase := range []string{"phase_init_ns", "phase_simulate_ns", "phase_verify_ns"} {
		if snap.Counters[phase] <= 0 {
			t.Errorf("%s = %d, want > 0", phase, snap.Counters[phase])
		}
	}
	if snap.PeakHeapBytes <= 0 {
		t.Error("no peak heap recorded")
	}
	if !snap.AllocsExact {
		t.Error("allocs_exact flag lost")
	}
}
