package harness

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/mem"
)

// TestForEachPanicIsolation pins the worker-pool contract: a panicking index
// neither crashes the pool nor prevents any other index from running, and
// every panic comes back attributed to its index, joined in index order.
func TestForEachPanicIsolation(t *testing.T) {
	for _, par := range []int{1, 4} {
		const n = 9
		var ran [n]atomic.Bool
		err := ForEach(par, n, func(i int) {
			ran[i].Store(true)
			if i%3 == 0 {
				panic(fmt.Sprintf("boom-%d", i))
			}
		})
		if err == nil {
			t.Fatalf("par=%d: three panicking cells, no error", par)
		}
		for i := range ran {
			if !ran[i].Load() {
				t.Errorf("par=%d: index %d never ran", par, i)
			}
		}
		for _, want := range []string{"boom-0", "boom-3", "boom-6"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("par=%d: error does not mention %s: %v", par, want, err)
			}
		}
		if !strings.Contains(err.Error(), "panic_test.go") {
			t.Errorf("par=%d: error carries no stack trace: %.200s", par, err)
		}
	}
}

// TestRunCellPanicIsolation poisons the (app, scale) cache with another
// application's layout — the kind of internal corruption that previously
// crashed a whole table — and checks the cell comes back as a structured
// *CellPanic carrying the full cell identity instead of panicking the
// caller.
func TestRunCellPanicIsolation(t *testing.T) {
	key := imageKey{"SOR", apps.Test}
	poison := &imageEntry{}
	poison.once.Do(func() {
		other, err := apps.New("QS", apps.Test)
		if err != nil {
			t.Fatal(err)
		}
		al := mem.NewAllocator()
		other.Layout(al)
		im := mem.NewImage(al.Size())
		other.Init(im)
		poison.al, poison.im = al, im
	})
	imageCache.Store(key, poison)
	defer imageCache.Delete(key)

	impl := core.Implementations()[0]
	cfg := Config{Scale: apps.Test, NProcs: 2, Cost: fabric.DefaultCostModel()}
	row := RunCell(cfg, "SOR", impl)
	var cp *CellPanic
	if !errors.As(row.Err, &cp) {
		t.Fatalf("poisoned cell returned %v, want *CellPanic", row.Err)
	}
	if cp.App != "SOR" || cp.Impl != impl || cp.NProcs != 2 {
		t.Errorf("CellPanic identity = %s/%v/%d, want SOR/%v/2", cp.App, cp.Impl, cp.NProcs, impl)
	}
	if len(cp.Stack) == 0 {
		t.Error("CellPanic has no stack")
	}
	if !strings.Contains(cp.Error(), "replay alloc") {
		t.Errorf("CellPanic does not carry the panic value: %.200s", cp.Error())
	}

	// A table over the poisoned cell reports every casualty and survives.
	_, err := TableModel(cfg, impl.Model, []string{"SOR"})
	if err == nil {
		t.Fatal("TableModel over a poisoned cell succeeded")
	}
	if !errors.As(err, &cp) {
		t.Errorf("TableModel error does not expose the *CellPanic: %.200s", err)
	}
}
