// Package sim provides a deterministic discrete-event simulator used to model
// the paper's experimental platform (8 DECstation-5000/240 nodes on an ATM
// LAN). Simulated processors are coroutine-style processes scheduled one at a
// time by a virtual-time event loop, so every run is bit-reproducible: tests
// can assert on exact message counts, byte totals and finish times.
package sim

import "fmt"

// Time is a point in simulated time, in nanoseconds since the start of the
// run. It is also used for durations.
type Time int64

// Common durations, mirroring the time package but in simulated units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats t with an adaptive unit, e.g. "13.23s" or "412µs".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.2fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.2fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.1fµs", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}
