package sim

import (
	"testing"
)

// TestSameInstantWakeBatchOrder pins the per-instant batching rule: when
// several processes become runnable at one virtual instant, they are drained
// through the batch in schedule order, and a plain callback scheduled between
// them (which is never batched) still fires at its sequence position.
func TestSameInstantWakeBatchOrder(t *testing.T) {
	s := New()
	var log []string
	// The callback is scheduled before Run, so its sequence number precedes
	// every sleep-wake the processes schedule once running.
	s.Schedule(10*Microsecond, func() { log = append(log, "fn") })
	for _, name := range []string{"p0", "p1", "p2"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			p.Sleep(10 * Microsecond)
			if p.Now() != 10*Microsecond {
				t.Errorf("%s woke at %v", name, p.Now())
			}
			log = append(log, name)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"fn", "p0", "p1", "p2"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

// TestBatchedWakeHonoursInjectedWork: a process already prefetched into the
// per-instant batch must still defer its resume when an earlier process in
// the chain injects handler work into it, exactly as unbatched validation
// would.
func TestBatchedWakeHonoursInjectedWork(t *testing.T) {
	s := New()
	var resumed Time
	var pB *Proc
	pA := s.Spawn("a", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		// Both wakes landed on the batch; b must now wait out the extra work.
		pB.InjectWork(5 * Microsecond)
	})
	pB = s.Spawn("b", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		resumed = p.Now()
	})
	_ = pA
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if resumed != 15*Microsecond {
		t.Errorf("b resumed at %v, want 15µs (10µs sleep + 5µs injected)", resumed)
	}
}

// timerLog is a Timer implementation recording its firings.
type timerLog struct {
	at []Time
}

func (tl *timerLog) Fire(at Time) { tl.at = append(tl.at, at) }

// TestScheduleTimerFiresInOrder: typed timer events obey the same time and
// same-instant sequencing as closures, without allocating per event.
func TestScheduleTimerFiresInOrder(t *testing.T) {
	s := New()
	tl := &timerLog{}
	s.ScheduleTimer(20*Microsecond, tl)
	s.ScheduleTimer(10*Microsecond, tl)
	s.ScheduleTimer(10*Microsecond, tl)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tl.at) != 3 || tl.at[0] != 10*Microsecond || tl.at[1] != 10*Microsecond || tl.at[2] != 20*Microsecond {
		t.Errorf("timer firings = %v", tl.at)
	}
}
