package sim

import (
	"fmt"
	"runtime/debug"
)

// event is a scheduled callback. Events at equal times fire in scheduling
// order (seq), which is what makes the simulation deterministic.
//
// The scheduler's own wake-ups (sleep expiry, deferred resume, unpark) are
// encoded as typed events targeting a Proc instead of closures: they are by
// far the most frequent events, and storing them inline keeps the event loop
// allocation-free. Subsystems with their own high-frequency events (the
// fabric's message deliveries) use typed timer events (kindTimer) the same
// way: the Timer target is stored inline, so no closure is allocated.
type event struct {
	at   Time
	seq  uint64
	kind uint8
	gen  uint64 // kindSleepWake: wake-generation guard
	p    *Proc  // target of the typed kinds
	fn   func() // kindFn only
	t    Timer  // kindTimer only
}

const (
	kindFn        = uint8(iota) // run fn
	kindSleepWake               // resume p if its wake generation still matches
	kindRunProc                 // resume p unconditionally (busyUntil deferral, spawn)
	kindUnpark                  // resume p if still parked
	kindTimer                   // fire t
)

// Probe observes scheduler activity for the tracing subsystem. All methods
// run with the baton held and must not mutate simulation state: a probed run
// must stay bit-identical to an unprobed one. ProcBlocked fires when a
// process gives up the CPU (with the wait reason it parks under); ProcResumed
// fires once per actual process resume (the wake half of the block/wake
// cycle — busyUntil deferrals and stale wake generations do not fire it);
// EventDispatched fires for every event the loop dispatches, with the
// internal event kind and the target process id (-1 for callbacks and
// timers). Because virtual time only advances while every process is blocked,
// a ProcBlocked/ProcResumed pairing exactly tiles each process's lifetime
// into blocked intervals — the profiler's time-accounting foundation.
type Probe interface {
	ProcBlocked(at Time, proc int, reason string)
	ProcResumed(at Time, proc int)
	EventDispatched(at Time, kind uint8, proc int)
}

// Timer is the typed-event counterpart of a Schedule closure for subsystems
// that schedule many recurring events of their own (message deliveries, link
// claims). The target is stored inline in the event, so scheduling one
// allocates nothing; Fire runs in scheduler context at the scheduled instant,
// under the same ordering rules as any event.
type Timer interface {
	Fire(at Time)
}

// eventLess orders events by (at, seq): earlier time first, scheduling order
// on ties. seq is unique, so this is a strict total order.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Simulator owns the virtual clock and the event queue, and coordinates the
// coroutine handoff with processes. All simulation state (processes, protocol
// structures, memory images) is mutated by exactly one goroutine at a time:
// the holder of the scheduling baton. The baton starts with Run's goroutine
// and travels with control: a process that blocks keeps the baton and drives
// the event loop itself until some process must resume — itself (no channel
// operations at all, the common case for an undisturbed Sleep) or another
// process (one direct channel handoff). Run's goroutine sleeps until the
// event queue drains. Compared to a dedicated scheduler goroutine this
// halves (often eliminates) the context switches per simulated block/resume,
// without changing the event order. No locking is needed anywhere in the
// simulation.
type Simulator struct {
	now Time
	seq uint64

	// queue is a value-based 4-ary min-heap ordered by eventLess. Storing
	// events by value (rather than *event through container/heap's interface
	// boxing) keeps Schedule/pop allocation-free in steady state.
	queue []event

	// nowQ is the fast path for the very common same-instant case
	// (After(0, ...), Schedule(Now(), ...)): events scheduled for the
	// current instant carry a seq greater than any queued event at this
	// instant, so they form a FIFO that needs no heap sifting. nowHead
	// indexes the first unconsumed entry; the backing array is reused once
	// the instant drains.
	nowQ    []event
	nowHead int

	// batch is the per-instant run queue: when dispatching an event resumes a
	// process, every immediately following event at the same instant that is
	// itself a process wake-up is popped ahead of time into this FIFO. The
	// baton then travels straight down the batch — each blocking process takes
	// the next entry without re-entering the queues — so all scheduler work
	// for the instant happens on the carrier that first reached it. Entries
	// are raw events, validated (wake generation, busyUntil, parked state)
	// only when their turn comes, which keeps the dispatch order and every
	// reschedule's sequence number identical to unbatched execution.
	batch     []event
	batchHead int

	// probe, when non-nil, observes dispatches and process resumes. The
	// disabled path costs one nil check per event.
	probe Probe

	procs   []*Proc
	done    chan struct{} // baton holder -> Run: the event queue drained
	yield   chan struct{} // killed process -> killBlocked: unwound, baton back
	failure error         // first panic captured from a process
	stopped bool

	// watchdog, when > 0, is the virtual-time horizon past which the run is
	// declared stalled: the first event scheduled beyond it stops the loop
	// and Run returns a *Stalled naming every blocked process. watchdogHit
	// records that the horizon fired.
	watchdog    Time
	watchdogHit bool
}

// New returns an empty simulator at time zero.
func New() *Simulator {
	return &Simulator{done: make(chan struct{}), yield: make(chan struct{})}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// SetProbe installs the scheduler observation hook (nil to remove). Must be
// called before Run; the probe only records, so probed runs are bit-identical
// to unprobed ones.
func (s *Simulator) SetProbe(p Probe) { s.probe = p }

// SetWatchdog arms the virtual-time watchdog: if the simulation is about to
// advance past limit, the run stops and Run returns a *Stalled error naming
// every still-blocked process and what it waits on. Events at exactly limit
// still fire. Zero disables the watchdog (the default). A watchdog bounds
// livelocks and pathological slowdowns the plain deadlock detector cannot
// see, because in those the event queue never drains.
func (s *Simulator) SetWatchdog(limit Time) { s.watchdog = limit }

// Procs returns the processes spawned so far, in spawn order.
func (s *Simulator) Procs() []*Proc { return s.procs }

// Schedule registers fn to run at time at (>= Now) in scheduler context.
// Callbacks scheduled for the same instant run in the order scheduled.
func (s *Simulator) Schedule(at Time, fn func()) {
	s.schedule(event{at: at, fn: fn})
}

// ScheduleTimer registers t to fire at time at (>= Now) in scheduler context,
// under the same same-instant ordering as Schedule, without allocating: the
// target is stored inline in the event.
func (s *Simulator) ScheduleTimer(at Time, t Timer) {
	s.schedule(event{at: at, kind: kindTimer, t: t})
}

// schedule enqueues e (whose at must be >= Now), assigning its sequence
// number.
func (s *Simulator) schedule(e event) {
	if e.at < s.now {
		panic(fmt.Sprintf("sim: schedule in the past: %v < %v", e.at, s.now))
	}
	s.seq++
	e.seq = s.seq
	if e.at == s.now {
		s.nowQ = append(s.nowQ, e)
		return
	}
	s.heapPush(e)
}

// dispatch runs one event with the baton held, returning the process that
// must now resume (marked running), or nil to keep looping.
func (s *Simulator) dispatch(ev *event) *Proc {
	if s.probe != nil {
		pid := -1
		if ev.p != nil {
			pid = ev.p.id
		}
		s.probe.EventDispatched(ev.at, ev.kind, pid)
	}
	switch ev.kind {
	case kindFn:
		ev.fn()
		return nil
	case kindSleepWake:
		// wake re-checks busyUntil and reschedules if the sleep was
		// extended by injected handler work.
		if ev.p.wakeGen == ev.gen {
			return s.wake(ev.p)
		}
		return nil
	case kindRunProc:
		return s.wake(ev.p)
	case kindUnpark:
		if ev.p.parked && ev.p.state == stateBlocked {
			ev.p.parked = false
			return s.wake(ev.p)
		}
		return nil
	case kindTimer:
		ev.t.Fire(ev.at)
		return nil
	}
	panic("sim: unknown event kind")
}

// step drains events until some process must resume (returned marked
// running) or the run is over (nil). Called by the baton holder. The
// per-instant batch is drained first: its entries were popped ahead of the
// queues and must fire before anything scheduled since. A panic in an event
// callback is recorded as the run's failure and ends the run: the baton may
// be held by any process goroutine, where an escaping panic would kill the
// whole program (or be misattributed to the parked process).
func (s *Simulator) step() (next *Proc) {
	defer func() {
		if r := recover(); r != nil {
			s.failure = &procPanic{proc: "(event callback)", value: r, stack: debug.Stack()}
			next = nil
		}
	}()
	for s.batchHead < len(s.batch) && s.failure == nil && !s.stopped {
		ev := s.batch[s.batchHead]
		s.batch[s.batchHead] = event{}
		s.batchHead++
		if s.batchHead == len(s.batch) {
			s.batch = s.batch[:0]
			s.batchHead = 0
		}
		if p := s.dispatch(&ev); p != nil {
			s.batchWakes()
			return p
		}
	}
	for s.pending() && s.failure == nil && !s.stopped {
		if s.watchdog > 0 && s.peek().at > s.watchdog {
			// The next event lies beyond the watchdog horizon: declare the
			// run stalled without advancing the clock past the limit.
			s.watchdogHit = true
			return nil
		}
		ev := s.pop()
		s.now = ev.at
		if p := s.dispatch(&ev); p != nil {
			s.batchWakes()
			return p
		}
	}
	return nil
}

// peek returns the event that pop would remove next, or nil.
func (s *Simulator) peek() *event {
	if s.nowHead < len(s.nowQ) {
		front := &s.nowQ[s.nowHead]
		if len(s.queue) == 0 || eventLess(front, &s.queue[0]) {
			return front
		}
		return &s.queue[0]
	}
	if len(s.queue) > 0 {
		return &s.queue[0]
	}
	return nil
}

// batchWakes extends the per-instant batch: consecutive pending wake-up
// events at the current instant are popped into the batch so the processes
// they resume are handed the baton one after another without queue re-entry.
// The look-ahead stops at the first callback or timer event (those may mutate
// state the later wake-ups' validation depends on only in the same ways a
// process run can, but keeping them in the queues keeps the batch a pure run
// queue of processes). Entries stay unvalidated; see the batch field.
func (s *Simulator) batchWakes() {
	for {
		e := s.peek()
		if e == nil || e.at != s.now || e.kind == kindFn || e.kind == kindTimer {
			return
		}
		s.batch = append(s.batch, s.pop())
	}
}

// After is shorthand for Schedule(Now()+d, fn).
func (s *Simulator) After(d Time, fn func()) { s.Schedule(s.now+d, fn) }

// heapPush inserts e into the 4-ary heap.
func (s *Simulator) heapPush(e event) {
	q := append(s.queue, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(&q[i], &q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	s.queue = q
}

// heapPop removes and returns the minimum event of the 4-ary heap.
func (s *Simulator) heapPop() event {
	q := s.queue
	top := q[0]
	last := len(q) - 1
	e := q[last]
	q[last] = event{} // release the closure for GC
	q = q[:last]
	s.queue = q
	if last > 0 {
		i := 0
		for {
			first := i<<2 + 1
			if first >= last {
				break
			}
			min := first
			end := first + 4
			if end > last {
				end = last
			}
			for c := first + 1; c < end; c++ {
				if eventLess(&q[c], &q[min]) {
					min = c
				}
			}
			if !eventLess(&q[min], &e) {
				break
			}
			q[i] = q[min]
			i = min
		}
		q[i] = e
	}
	return top
}

// pending reports whether any event remains in either queue.
func (s *Simulator) pending() bool {
	return len(s.queue) > 0 || s.nowHead < len(s.nowQ)
}

// pop removes the globally minimum event across the heap and the
// same-instant FIFO. The selection is delegated to peek, so the batch
// look-ahead (which peeks, then pops) can never disagree with it.
func (s *Simulator) pop() event {
	front := s.peek()
	if s.nowHead < len(s.nowQ) && front == &s.nowQ[s.nowHead] {
		e := *front
		*front = event{} // release the closure and proc for GC
		s.nowHead++
		if s.nowHead == len(s.nowQ) {
			s.nowQ = s.nowQ[:0]
			s.nowHead = 0
		}
		return e
	}
	return s.heapPop()
}

// Spawn creates a process that will execute body when Run starts. The process
// begins at time 0 (or at the current time if spawned mid-run), and processes
// spawned earlier get control first on ties.
func (s *Simulator) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{
		sim:    s,
		id:     len(s.procs),
		name:   name,
		resume: make(chan struct{}),
		state:  stateBlocked,
	}
	s.procs = append(s.procs, p)
	go p.top(body)
	s.schedule(event{at: s.now, kind: kindRunProc, p: p})
	return p
}

// wake prepares p to resume, or returns nil if it must not run yet. Must be
// called with the baton held.
func (s *Simulator) wake(p *Proc) *Proc {
	if p.state == stateDone {
		return nil
	}
	if p.state != stateBlocked {
		panic(fmt.Sprintf("sim: resuming %s in state %v", p.name, p.state))
	}
	// A process may not run before its busyUntil horizon (time consumed on
	// its behalf by message handlers while it was blocked).
	if p.busyUntil > s.now {
		s.schedule(event{at: p.busyUntil, kind: kindRunProc, p: p})
		return nil
	}
	p.state = stateRunning
	if s.probe != nil {
		s.probe.ProcResumed(s.now, p.id)
	}
	return p
}

// Deadlock is returned by Run when the event queue drains while processes are
// still blocked.
type Deadlock struct {
	At      Time
	Blocked []string // names of the blocked processes with their wait reasons
}

// Error describes the deadlock with every blocked process and its reason.
func (d *Deadlock) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: blocked: %v", d.At, d.Blocked)
}

// Stalled is returned by Run when the virtual-time watchdog (SetWatchdog)
// fires: the simulation was about to advance past the limit with work still
// pending. Blocked lists every unfinished process with its wait reason
// (lock, barrier, page fetch, ...), same format as Deadlock.
type Stalled struct {
	Limit   Time
	At      Time     // virtual time reached when the watchdog fired
	Blocked []string // names of the unfinished processes with wait reasons
}

// Error names the limit and every process still waiting when it fired.
func (st *Stalled) Error() string {
	return fmt.Sprintf("sim: watchdog: no progress past %v (stopped at %v): blocked: %v",
		st.Limit, st.At, st.Blocked)
}

// Run drives the simulation until the event queue is empty or a process
// panics. It returns nil when every spawned process has finished, a *Deadlock
// if some are still blocked, or the captured panic as an error.
func (s *Simulator) Run() error {
	if p := s.step(); p != nil {
		// Hand the baton into the process web; it returns on s.done when the
		// queue drains (every handoff in between is proc-to-proc).
		p.resume <- struct{}{}
		<-s.done
	}
	// Gather the blocked set for the deadlock report before the teardown
	// below releases those goroutines.
	var blocked []string
	for _, p := range s.procs {
		if p.state != stateDone {
			blocked = append(blocked, fmt.Sprintf("%s(%s)", p.name, p.waitReason))
		}
	}
	// The run is over in every branch from here: release parked process
	// goroutines so stopped, deadlocked and failed runs do not leak them
	// (goroutines blocked on channels are never garbage collected). A stop or
	// failure may abandon prefetched batch entries; drop them with the run.
	s.batch, s.batchHead = nil, 0
	s.killBlocked()
	if s.failure != nil {
		return s.failure
	}
	if s.watchdogHit {
		return &Stalled{Limit: s.watchdog, At: s.now, Blocked: blocked}
	}
	if len(blocked) > 0 && !s.stopped {
		return &Deadlock{At: s.now, Blocked: blocked}
	}
	return nil
}

// Stop aborts the run at the end of the current event. Goroutines blocked on
// their resume channel are not garbage-collectable, so Run terminates them
// explicitly (via killBlocked) before returning. Intended for tests.
func (s *Simulator) Stop() { s.stopped = true }

// killBlocked terminates every process goroutine still parked when a run
// ends (stop, deadlock or failure): each one is resumed with the killed flag
// set, unwinds via a sentinel panic recovered in Proc.top, and exits.
// Without this, repeated terminated runs accumulate goroutines forever.
func (s *Simulator) killBlocked() {
	for _, p := range s.procs {
		if p.state == stateDone {
			continue
		}
		p.killed = true
		p.state = stateRunning
		p.resume <- struct{}{}
		<-s.yield
	}
}

type procPanic struct {
	proc  string
	value any
	stack []byte
}

// Error reproduces the panicking process, value and stack.
func (e *procPanic) Error() string {
	return fmt.Sprintf("sim: process %s panicked: %v\n%s", e.proc, e.value, e.stack)
}
