package sim

import (
	"fmt"
	"runtime/debug"
)

// event is a scheduled callback. Events at equal times fire in scheduling
// order (seq), which is what makes the simulation deterministic.
//
// The scheduler's own wake-ups (sleep expiry, deferred resume, unpark) are
// encoded as typed events targeting a Proc instead of closures: they are by
// far the most frequent events, and storing them inline keeps the event loop
// allocation-free.
type event struct {
	at   Time
	seq  uint64
	kind uint8
	gen  uint64 // kindSleepWake: wake-generation guard
	p    *Proc  // target of the typed kinds
	fn   func() // kindFn only
}

const (
	kindFn        = uint8(iota) // run fn
	kindSleepWake               // resume p if its wake generation still matches
	kindRunProc                 // resume p unconditionally (busyUntil deferral, spawn)
	kindUnpark                  // resume p if still parked
)

// eventLess orders events by (at, seq): earlier time first, scheduling order
// on ties. seq is unique, so this is a strict total order.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Simulator owns the virtual clock and the event queue, and coordinates the
// coroutine handoff with processes. All simulation state (processes, protocol
// structures, memory images) is mutated by exactly one goroutine at a time:
// the holder of the scheduling baton. The baton starts with Run's goroutine
// and travels with control: a process that blocks keeps the baton and drives
// the event loop itself until some process must resume — itself (no channel
// operations at all, the common case for an undisturbed Sleep) or another
// process (one direct channel handoff). Run's goroutine sleeps until the
// event queue drains. Compared to a dedicated scheduler goroutine this
// halves (often eliminates) the context switches per simulated block/resume,
// without changing the event order. No locking is needed anywhere in the
// simulation.
type Simulator struct {
	now Time
	seq uint64

	// queue is a value-based 4-ary min-heap ordered by eventLess. Storing
	// events by value (rather than *event through container/heap's interface
	// boxing) keeps Schedule/pop allocation-free in steady state.
	queue []event

	// nowQ is the fast path for the very common same-instant case
	// (After(0, ...), Schedule(Now(), ...)): events scheduled for the
	// current instant carry a seq greater than any queued event at this
	// instant, so they form a FIFO that needs no heap sifting. nowHead
	// indexes the first unconsumed entry; the backing array is reused once
	// the instant drains.
	nowQ    []event
	nowHead int

	procs   []*Proc
	done    chan struct{} // baton holder -> Run: the event queue drained
	yield   chan struct{} // killed process -> killBlocked: unwound, baton back
	failure error         // first panic captured from a process
	stopped bool
}

// New returns an empty simulator at time zero.
func New() *Simulator {
	return &Simulator{done: make(chan struct{}), yield: make(chan struct{})}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Procs returns the processes spawned so far, in spawn order.
func (s *Simulator) Procs() []*Proc { return s.procs }

// Schedule registers fn to run at time at (>= Now) in scheduler context.
// Callbacks scheduled for the same instant run in the order scheduled.
func (s *Simulator) Schedule(at Time, fn func()) {
	s.schedule(event{at: at, fn: fn})
}

// schedule enqueues e (whose at must be >= Now), assigning its sequence
// number.
func (s *Simulator) schedule(e event) {
	if e.at < s.now {
		panic(fmt.Sprintf("sim: schedule in the past: %v < %v", e.at, s.now))
	}
	s.seq++
	e.seq = s.seq
	if e.at == s.now {
		s.nowQ = append(s.nowQ, e)
		return
	}
	s.heapPush(e)
}

// dispatch runs one event with the baton held, returning the process that
// must now resume (marked running), or nil to keep looping.
func (s *Simulator) dispatch(ev *event) *Proc {
	switch ev.kind {
	case kindFn:
		ev.fn()
		return nil
	case kindSleepWake:
		// wake re-checks busyUntil and reschedules if the sleep was
		// extended by injected handler work.
		if ev.p.wakeGen == ev.gen {
			return s.wake(ev.p)
		}
		return nil
	case kindRunProc:
		return s.wake(ev.p)
	case kindUnpark:
		if ev.p.parked && ev.p.state == stateBlocked {
			ev.p.parked = false
			return s.wake(ev.p)
		}
		return nil
	}
	panic("sim: unknown event kind")
}

// step drains events until some process must resume (returned marked
// running) or the run is over (nil). Called by the baton holder. A panic in
// an event callback is recorded as the run's failure and ends the run: the
// baton may be held by any process goroutine, where an escaping panic would
// kill the whole program (or be misattributed to the parked process).
func (s *Simulator) step() (next *Proc) {
	defer func() {
		if r := recover(); r != nil {
			s.failure = &procPanic{proc: "(event callback)", value: r, stack: debug.Stack()}
			next = nil
		}
	}()
	for s.pending() && s.failure == nil && !s.stopped {
		ev := s.pop()
		s.now = ev.at
		if p := s.dispatch(&ev); p != nil {
			return p
		}
	}
	return nil
}

// After is shorthand for Schedule(Now()+d, fn).
func (s *Simulator) After(d Time, fn func()) { s.Schedule(s.now+d, fn) }

// heapPush inserts e into the 4-ary heap.
func (s *Simulator) heapPush(e event) {
	q := append(s.queue, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(&q[i], &q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	s.queue = q
}

// heapPop removes and returns the minimum event of the 4-ary heap.
func (s *Simulator) heapPop() event {
	q := s.queue
	top := q[0]
	last := len(q) - 1
	e := q[last]
	q[last] = event{} // release the closure for GC
	q = q[:last]
	s.queue = q
	if last > 0 {
		i := 0
		for {
			first := i<<2 + 1
			if first >= last {
				break
			}
			min := first
			end := first + 4
			if end > last {
				end = last
			}
			for c := first + 1; c < end; c++ {
				if eventLess(&q[c], &q[min]) {
					min = c
				}
			}
			if !eventLess(&q[min], &e) {
				break
			}
			q[i] = q[min]
			i = min
		}
		q[i] = e
	}
	return top
}

// pending reports whether any event remains in either queue.
func (s *Simulator) pending() bool {
	return len(s.queue) > 0 || s.nowHead < len(s.nowQ)
}

// pop removes the globally minimum event across the heap and the
// same-instant FIFO.
func (s *Simulator) pop() event {
	if s.nowHead < len(s.nowQ) {
		front := &s.nowQ[s.nowHead]
		if len(s.queue) == 0 || eventLess(front, &s.queue[0]) {
			e := *front
			*front = event{} // release the closure and proc for GC
			s.nowHead++
			if s.nowHead == len(s.nowQ) {
				s.nowQ = s.nowQ[:0]
				s.nowHead = 0
			}
			return e
		}
		return s.heapPop()
	}
	return s.heapPop()
}

// Spawn creates a process that will execute body when Run starts. The process
// begins at time 0 (or at the current time if spawned mid-run), and processes
// spawned earlier get control first on ties.
func (s *Simulator) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{
		sim:    s,
		id:     len(s.procs),
		name:   name,
		resume: make(chan struct{}),
		state:  stateBlocked,
	}
	s.procs = append(s.procs, p)
	go p.top(body)
	s.schedule(event{at: s.now, kind: kindRunProc, p: p})
	return p
}

// wake prepares p to resume, or returns nil if it must not run yet. Must be
// called with the baton held.
func (s *Simulator) wake(p *Proc) *Proc {
	if p.state == stateDone {
		return nil
	}
	if p.state != stateBlocked {
		panic(fmt.Sprintf("sim: resuming %s in state %v", p.name, p.state))
	}
	// A process may not run before its busyUntil horizon (time consumed on
	// its behalf by message handlers while it was blocked).
	if p.busyUntil > s.now {
		s.schedule(event{at: p.busyUntil, kind: kindRunProc, p: p})
		return nil
	}
	p.state = stateRunning
	return p
}

// Deadlock is returned by Run when the event queue drains while processes are
// still blocked.
type Deadlock struct {
	At      Time
	Blocked []string // names of the blocked processes with their wait reasons
}

func (d *Deadlock) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: blocked: %v", d.At, d.Blocked)
}

// Run drives the simulation until the event queue is empty or a process
// panics. It returns nil when every spawned process has finished, a *Deadlock
// if some are still blocked, or the captured panic as an error.
func (s *Simulator) Run() error {
	if p := s.step(); p != nil {
		// Hand the baton into the process web; it returns on s.done when the
		// queue drains (every handoff in between is proc-to-proc).
		p.resume <- struct{}{}
		<-s.done
	}
	// Gather the blocked set for the deadlock report before the teardown
	// below releases those goroutines.
	var blocked []string
	for _, p := range s.procs {
		if p.state != stateDone {
			blocked = append(blocked, fmt.Sprintf("%s(%s)", p.name, p.waitReason))
		}
	}
	// The run is over in every branch from here: release parked process
	// goroutines so stopped, deadlocked and failed runs do not leak them
	// (goroutines blocked on channels are never garbage collected).
	s.killBlocked()
	if s.failure != nil {
		return s.failure
	}
	if len(blocked) > 0 && !s.stopped {
		return &Deadlock{At: s.now, Blocked: blocked}
	}
	return nil
}

// Stop aborts the run at the end of the current event. Goroutines blocked on
// their resume channel are not garbage-collectable, so Run terminates them
// explicitly (via killBlocked) before returning. Intended for tests.
func (s *Simulator) Stop() { s.stopped = true }

// killBlocked terminates every process goroutine still parked when a run
// ends (stop, deadlock or failure): each one is resumed with the killed flag
// set, unwinds via a sentinel panic recovered in Proc.top, and exits.
// Without this, repeated terminated runs accumulate goroutines forever.
func (s *Simulator) killBlocked() {
	for _, p := range s.procs {
		if p.state == stateDone {
			continue
		}
		p.killed = true
		p.state = stateRunning
		p.resume <- struct{}{}
		<-s.yield
	}
}

type procPanic struct {
	proc  string
	value any
	stack []byte
}

func (e *procPanic) Error() string {
	return fmt.Sprintf("sim: process %s panicked: %v\n%s", e.proc, e.value, e.stack)
}
