package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback. Events at equal times fire in scheduling
// order (seq), which is what makes the simulation deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulator owns the virtual clock and the event queue, and coordinates the
// coroutine handoff with processes. All simulation state (processes, protocol
// structures, memory images) is mutated by exactly one goroutine at a time:
// either the scheduler goroutine (inside event callbacks) or the single
// currently-running process. No locking is needed anywhere in the simulation.
type Simulator struct {
	now     Time
	seq     uint64
	queue   eventHeap
	procs   []*Proc
	yield   chan struct{} // process -> scheduler: I blocked or finished
	failure error         // first panic captured from a process
	stopped bool
}

// New returns an empty simulator at time zero.
func New() *Simulator {
	return &Simulator{yield: make(chan struct{})}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Procs returns the processes spawned so far, in spawn order.
func (s *Simulator) Procs() []*Proc { return s.procs }

// Schedule registers fn to run at time at (>= Now) in scheduler context.
// Callbacks scheduled for the same instant run in the order scheduled.
func (s *Simulator) Schedule(at Time, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule in the past: %v < %v", at, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &event{at: at, seq: s.seq, fn: fn})
}

// After is shorthand for Schedule(Now()+d, fn).
func (s *Simulator) After(d Time, fn func()) { s.Schedule(s.now+d, fn) }

// Spawn creates a process that will execute body when Run starts. The process
// begins at time 0 (or at the current time if spawned mid-run), and processes
// spawned earlier get control first on ties.
func (s *Simulator) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{
		sim:    s,
		id:     len(s.procs),
		name:   name,
		resume: make(chan struct{}),
		state:  stateBlocked,
	}
	s.procs = append(s.procs, p)
	go p.top(body)
	s.Schedule(s.now, func() { s.runProc(p) })
	return p
}

// runProc hands control to p until it blocks or finishes. Must be called from
// scheduler context only.
func (s *Simulator) runProc(p *Proc) {
	if p.state == stateDone {
		return
	}
	if p.state != stateBlocked {
		panic(fmt.Sprintf("sim: resuming %s in state %v", p.name, p.state))
	}
	// A process may not run before its busyUntil horizon (time consumed on
	// its behalf by message handlers while it was blocked).
	if p.busyUntil > s.now {
		s.Schedule(p.busyUntil, func() { s.runProc(p) })
		return
	}
	p.state = stateRunning
	p.resume <- struct{}{}
	<-s.yield
}

// Deadlock is returned by Run when the event queue drains while processes are
// still blocked.
type Deadlock struct {
	At      Time
	Blocked []string // names of the blocked processes with their wait reasons
}

func (d *Deadlock) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: blocked: %v", d.At, d.Blocked)
}

// Run drives the simulation until the event queue is empty or a process
// panics. It returns nil when every spawned process has finished, a *Deadlock
// if some are still blocked, or the captured panic as an error.
func (s *Simulator) Run() error {
	for len(s.queue) > 0 && s.failure == nil && !s.stopped {
		ev := heap.Pop(&s.queue).(*event)
		s.now = ev.at
		ev.fn()
	}
	if s.failure != nil {
		return s.failure
	}
	var blocked []string
	for _, p := range s.procs {
		if p.state != stateDone {
			blocked = append(blocked, fmt.Sprintf("%s(%s)", p.name, p.waitReason))
		}
	}
	if len(blocked) > 0 && !s.stopped {
		return &Deadlock{At: s.now, Blocked: blocked}
	}
	return nil
}

// Stop aborts the run at the end of the current event. Blocked process
// goroutines are left parked; they are garbage once the Simulator is dropped
// ... except goroutines don't get collected while blocked on channels, so
// Stop also marks them done to let Run exit cleanly. Intended for tests.
func (s *Simulator) Stop() { s.stopped = true }

type procPanic struct {
	proc  string
	value any
	stack []byte
}

func (e *procPanic) Error() string {
	return fmt.Sprintf("sim: process %s panicked: %v\n%s", e.proc, e.value, e.stack)
}
