package sim

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestScheduleAllocs guards the event loop's allocation behaviour: in steady
// state, Schedule and event dispatch reuse the heap and same-instant queue
// backing arrays, so a schedule/run cycle performs no per-event allocations
// beyond the caller's own closure.
func TestScheduleAllocs(t *testing.T) {
	s := New()
	fn := func() {}
	// Warm the queue capacities before measuring.
	for i := 0; i < 64; i++ {
		s.Schedule(s.Now()+Time(i%7), fn)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		s.Schedule(s.Now(), fn)             // same-instant fast path
		s.Schedule(s.Now()+Microsecond, fn) // heap path
		s.Schedule(s.Now()+2*Microsecond, fn)
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("schedule/dispatch cycle allocates %.2f objects per run, want 0", avg)
	}
}

// TestStopReleasesGoroutines guards the Stop leak fix: goroutines of blocked
// processes must exit once a stopped Run returns, instead of staying parked
// on their resume channels forever.
func TestStopReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		s := New()
		s.Spawn("sleeper", func(p *Proc) {
			for {
				p.Sleep(Microsecond)
			}
		})
		s.Spawn("parked", func(p *Proc) {
			p.Park("never woken")
		})
		s.Schedule(5*Microsecond, s.Stop)
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("%d goroutines alive after stopped runs, started with %d", got, before)
	}
}

// TestDeadlockReleasesGoroutines: a deadlocked run must release its parked
// goroutines when Run returns, like a stopped one.
func TestDeadlockReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		s := New()
		s.Spawn("stuck", func(p *Proc) { p.Park("forever") })
		if _, ok := s.Run().(*Deadlock); !ok {
			t.Fatal("expected deadlock")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("%d goroutines alive after deadlocked runs, started with %d", got, before)
	}
}

// TestEventCallbackPanicBecomesFailure: a panic inside a scheduled callback
// must surface as Run's error — the event loop runs on process goroutines,
// where an escaping panic would kill the whole program.
func TestEventCallbackPanicBecomesFailure(t *testing.T) {
	s := New()
	s.Spawn("bystander", func(p *Proc) {
		p.Sleep(10 * Microsecond)
	})
	s.Schedule(Microsecond, func() { panic("boom in event") })
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "boom in event") {
		t.Fatalf("err = %v, want the event panic", err)
	}
}

// TestStopBeforeFirstResume stops a run before a freshly spawned process ever
// gets control: its goroutine must still be released and its body skipped.
func TestStopBeforeFirstResume(t *testing.T) {
	s := New()
	ran := false
	s.Schedule(0, s.Stop) // stops before the spawn's first runProc event fires
	s.Spawn("never-started", func(p *Proc) { ran = true })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("process body ran despite Stop before its first dispatch")
	}
}
