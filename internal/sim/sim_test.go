package sim

import (
	"strings"
	"testing"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.0µs"},
		{3 * Millisecond, "3.00ms"},
		{13230 * Millisecond, "13.23s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	s := New()
	var end Time
	s.Spawn("p0", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		p.Sleep(7 * Microsecond)
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 12*Microsecond {
		t.Errorf("end = %v, want 12µs", end)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []string {
		s := New()
		var order []string
		for i, d := range []Time{30, 10, 20} {
			name := string(rune('a' + i))
			delay := d
			s.Spawn(name, func(p *Proc) {
				p.Sleep(delay * Microsecond)
				order = append(order, p.Name())
				p.Sleep(delay * Microsecond)
				order = append(order, p.Name())
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	want := "b,c,b,a,c,a"
	for i := 0; i < 3; i++ {
		if got := strings.Join(run(), ","); got != want {
			t.Fatalf("run %d: order %q, want %q", i, got, want)
		}
	}
}

func TestTieBreakBySpawnOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 4; i++ {
		s.Spawn("p", func(p *Proc) {
			p.Sleep(Microsecond)
			order = append(order, p.ID())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("order = %v, want ascending IDs", order)
		}
	}
}

func TestWaiterRendezvous(t *testing.T) {
	s := New()
	var got any
	var when Time
	s.Spawn("consumer", func(p *Proc) {
		w := NewWaiter(p)
		s.Schedule(9*Microsecond, func() { w.Deliver("hello", 10*Microsecond) })
		got = w.Wait("msg")
		when = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hello" || when != 10*Microsecond {
		t.Errorf("got %v at %v, want hello at 10µs", got, when)
	}
}

func TestWaiterDeliverBeforeWait(t *testing.T) {
	s := New()
	var got any
	s.Spawn("consumer", func(p *Proc) {
		w := NewWaiter(p)
		w.Deliver(42, p.Now())
		p.Sleep(Microsecond)
		got = w.Wait("msg") // already ready: must not block
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("got %v, want 42", got)
	}
}

func TestInjectWorkExtendsSleep(t *testing.T) {
	s := New()
	var end Time
	var p0 *Proc
	p0 = s.Spawn("worker", func(p *Proc) {
		p.Sleep(100 * Microsecond)
		end = p.Now()
	})
	// At t=40µs a "handler" steals 25µs of the worker's CPU.
	s.Schedule(40*Microsecond, func() { p0.InjectWork(25 * Microsecond) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 125*Microsecond {
		t.Errorf("end = %v, want 125µs", end)
	}
}

func TestInjectWorkWhileParkedDelaysResume(t *testing.T) {
	s := New()
	var end Time
	s.Spawn("waiter", func(p *Proc) {
		w := NewWaiter(p)
		s.Schedule(10*Microsecond, func() {
			p.InjectWork(30 * Microsecond) // handler work while parked
		})
		s.Schedule(20*Microsecond, func() { w.Deliver(nil, 20*Microsecond) })
		w.Wait("reply")
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 40*Microsecond {
		t.Errorf("end = %v, want 40µs (10 + 30 handler work)", end)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	s.Spawn("stuck", func(p *Proc) {
		p.Park("forever")
	})
	err := s.Run()
	d, ok := err.(*Deadlock)
	if !ok {
		t.Fatalf("err = %v, want *Deadlock", err)
	}
	if len(d.Blocked) != 1 || !strings.Contains(d.Blocked[0], "stuck") {
		t.Errorf("blocked = %v", d.Blocked)
	}
}

// TestWatchdogStallsLongRun pins the watchdog contract: a run whose clock
// would pass the limit stops with a *Stalled naming the blocked processes
// (here: one sleeper mid-sleep, one process parked forever), without
// advancing past the limit.
func TestWatchdogStallsLongRun(t *testing.T) {
	s := New()
	s.SetWatchdog(50 * Microsecond)
	s.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(10 * Microsecond)
		}
	})
	s.Spawn("parked", func(p *Proc) {
		p.Park("a grant that never comes")
	})
	err := s.Run()
	st, ok := err.(*Stalled)
	if !ok {
		t.Fatalf("err = %v, want *Stalled", err)
	}
	if st.Limit != 50*Microsecond {
		t.Errorf("Limit = %v, want 50µs", st.Limit)
	}
	if st.At > 50*Microsecond {
		t.Errorf("stopped at %v, past the %v limit", st.At, st.Limit)
	}
	if len(st.Blocked) != 2 {
		t.Errorf("blocked = %v, want both processes", st.Blocked)
	}
	found := false
	for _, b := range st.Blocked {
		if strings.Contains(b, "a grant that never comes") {
			found = true
		}
	}
	if !found {
		t.Errorf("blocked list does not name the wait reason: %v", st.Blocked)
	}
}

// TestWatchdogAboveFinishIsInert pins the zero-overhead requirement: a
// watchdog the run never reaches changes neither the result nor the timing.
func TestWatchdogAboveFinishIsInert(t *testing.T) {
	runIt := func(limit Time) (Time, error) {
		s := New()
		if limit > 0 {
			s.SetWatchdog(limit)
		}
		var end Time
		s.Spawn("worker", func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.Sleep(10 * Microsecond)
			}
			end = p.Now()
		})
		err := s.Run()
		return end, err
	}
	plain, err := runIt(0)
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := runIt(Second)
	if err != nil {
		t.Fatal(err)
	}
	if plain != guarded {
		t.Errorf("watchdog changed the finish time: %v vs %v", plain, guarded)
	}
}

func TestPanicPropagates(t *testing.T) {
	s := New()
	s.Spawn("boom", func(p *Proc) {
		p.Sleep(Microsecond)
		panic("kaput")
	})
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Fatalf("err = %v, want panic text", err)
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	s := New()
	s.Spawn("p", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		defer func() {
			if recover() == nil {
				t.Error("expected panic on scheduling in the past")
			}
		}()
		s.Schedule(5*Microsecond, func() {})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnparkNotParkedIsNoop(t *testing.T) {
	s := New()
	p := s.Spawn("p", func(p *Proc) {
		p.Sleep(Microsecond)
	})
	s.Schedule(0, func() { p.UnparkAt(0) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStop(t *testing.T) {
	s := New()
	s.Spawn("looper", func(p *Proc) {
		for {
			p.Sleep(Microsecond)
		}
	})
	s.Schedule(10*Microsecond, func() { s.Stop() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 10*Microsecond {
		t.Errorf("stopped at %v, want 10µs", s.Now())
	}
}
