package sim

import (
	"fmt"
	"runtime/debug"
)

type procState int

const (
	stateBlocked procState = iota
	stateRunning
	stateDone
)

// String names the state for panics and debug output.
func (st procState) String() string {
	switch st {
	case stateBlocked:
		return "blocked"
	case stateRunning:
		return "running"
	case stateDone:
		return "done"
	}
	return "?"
}

// Proc is a simulated processor: a goroutine that runs application and
// protocol code against the virtual clock. Exactly one Proc (or the
// scheduler) executes at any instant; control moves by explicit handoff.
type Proc struct {
	sim    *Simulator
	id     int
	name   string
	resume chan struct{}
	state  procState

	// busyUntil is the horizon before which this process may not resume:
	// message handlers that ran on its behalf while it was blocked have
	// consumed its CPU up to this point.
	busyUntil Time

	waitReason string
	parked     bool
	killed     bool // set by Simulator.killBlocked: unwind instead of resuming
	finishedAt Time
	wakeGen    uint64  // invalidates stale sleep-wake events
	callWaiter *Waiter // reused rendezvous for synchronous calls
}

// killSignal is the sentinel panic value used to unwind a blocked process
// goroutine after Simulator.Stop; it is recovered in top and not treated as
// a failure.
type killSignal struct{}

// ID returns the process's spawn index, used as the processor identifier.
func (p *Proc) ID() int { return p.id }

// Name returns the debug name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the owning simulator.
func (p *Proc) Sim() *Simulator { return p.sim }

// Now returns the current simulated time. Valid only while p is running.
func (p *Proc) Now() Time { return p.sim.now }

// FinishedAt reports when the process body returned (valid after Run).
func (p *Proc) FinishedAt() Time { return p.finishedAt }

// top is the goroutine body wrapping the user function.
func (p *Proc) top(body func(*Proc)) {
	<-p.resume // wait for the first baton delivery
	if !p.killed {
		p.runBody(body)
	}
	p.state = stateDone
	p.finishedAt = p.sim.now
	if p.killed {
		p.sim.yield <- struct{}{} // acknowledge to killBlocked and exit
		return
	}
	// The body returned with the baton held: keep driving the event loop,
	// then pass the baton on (this goroutine is done and never resumes).
	s := p.sim
	if next := s.step(); next != nil {
		next.resume <- struct{}{}
		return
	}
	s.done <- struct{}{}
}

// runBody executes the user function, capturing panics as the simulation's
// failure. A killSignal unwind (Stop teardown) is not a failure.
func (p *Proc) runBody(body func(*Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if _, kill := r.(killSignal); !kill {
				p.sim.failure = &procPanic{proc: p.name, value: r, stack: debug.Stack()}
			}
		}
	}()
	body(p)
}

// block parks the process until it is resumed. The caller must have arranged
// a wake-up (an event or a Waiter delivery). The blocking goroutine keeps
// the baton and drives the event loop itself: when its own wake-up is the
// next thing to run it simply continues — no channel operation, no context
// switch — and otherwise it hands the baton straight to the next process.
func (p *Proc) block(reason string) {
	if p.state != stateRunning {
		panic(fmt.Sprintf("sim: block on non-running proc %s", p.name))
	}
	p.state = stateBlocked
	p.waitReason = reason
	s := p.sim
	if s.probe != nil {
		s.probe.ProcBlocked(s.now, p.id, reason)
	}
	switch next := s.step(); {
	case next == p:
		// Direct self-resume.
	case next != nil:
		next.resume <- struct{}{}
		<-p.resume
	default:
		// The run is over (drain, failure or stop) while we are blocked:
		// give the baton back to Run and park. We are woken again only by
		// killBlocked after a Stop.
		s.done <- struct{}{}
		<-p.resume
	}
	if p.killed {
		panic(killSignal{})
	}
	p.waitReason = ""
}

// Sleep advances the process by d: the processor is busy (computing) for d of
// simulated time. Handler work injected while sleeping extends the sleep.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	if d == 0 {
		return
	}
	s := p.sim
	p.busyUntil = s.now + d
	p.wakeGen++
	s.schedule(event{at: p.busyUntil, kind: kindSleepWake, p: p, gen: p.wakeGen})
	p.block("sleep")
}

// InjectWork charges d of CPU time to this process on behalf of an
// asynchronous message handler (the SIGIO handler in the paper's systems).
// If the process is currently computing, its wake-up is pushed back; if it is
// blocked waiting, the time is consumed before it can resume.
func (p *Proc) InjectWork(d Time) {
	if d <= 0 {
		return
	}
	s := p.sim
	if p.busyUntil < s.now {
		p.busyUntil = s.now
	}
	p.busyUntil += d
	// Any pending sleep-wake or unpark event will observe the moved horizon
	// via runProc's busyUntil check and reschedule itself.
}

// Park blocks the process until some event unparks it via UnparkAt. Spurious
// wake-ups are possible; callers must re-check their condition in a loop.
func (p *Proc) Park(reason string) {
	p.parked = true
	p.block(reason)
}

// UnparkAt schedules the process to resume at time at (respecting any
// busyUntil horizon). Must be called from scheduler context or from another
// running process. Unparking a process that is not parked is a no-op.
func (p *Proc) UnparkAt(at Time) {
	s := p.sim
	if at < s.now {
		at = s.now
	}
	s.schedule(event{at: at, kind: kindUnpark, p: p})
}

// Waiter is a one-shot rendezvous: a process Waits until a value is
// Delivered by a handler or another process.
type Waiter struct {
	p     *Proc
	ready bool
	val   any
}

// NewWaiter returns a Waiter owned by p.
func NewWaiter(p *Proc) *Waiter { return &Waiter{p: p} }

// CallWaiter returns p's cached waiter for fully synchronous request/reply
// exchanges: the caller must Wait before issuing another synchronous call,
// which a blocked process trivially guarantees. Concurrent outstanding
// requests (parallel fetches) must use NewWaiter instead.
func (p *Proc) CallWaiter() *Waiter {
	if p.callWaiter == nil {
		p.callWaiter = NewWaiter(p)
	}
	return p.callWaiter
}

// Wait blocks the owner until Deliver has been called, then returns the
// delivered value and resets the Waiter for reuse.
func (w *Waiter) Wait(reason string) any {
	for !w.ready {
		w.p.Park(reason)
	}
	w.ready = false
	v := w.val
	w.val = nil
	return v
}

// Ready reports whether a value has been delivered and not yet consumed.
func (w *Waiter) Ready() bool { return w.ready }

// Deliver stores the value and unparks the owner so it resumes at time at.
func (w *Waiter) Deliver(val any, at Time) {
	if w.ready {
		panic("sim: Waiter.Deliver called twice without Wait")
	}
	w.ready = true
	w.val = val
	w.p.UnparkAt(at)
}
