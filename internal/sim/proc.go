package sim

import (
	"fmt"
	"runtime/debug"
)

type procState int

const (
	stateBlocked procState = iota
	stateRunning
	stateDone
)

func (st procState) String() string {
	switch st {
	case stateBlocked:
		return "blocked"
	case stateRunning:
		return "running"
	case stateDone:
		return "done"
	}
	return "?"
}

// Proc is a simulated processor: a goroutine that runs application and
// protocol code against the virtual clock. Exactly one Proc (or the
// scheduler) executes at any instant; control moves by explicit handoff.
type Proc struct {
	sim    *Simulator
	id     int
	name   string
	resume chan struct{}
	state  procState

	// busyUntil is the horizon before which this process may not resume:
	// message handlers that ran on its behalf while it was blocked have
	// consumed its CPU up to this point.
	busyUntil Time

	waitReason string
	parked     bool
	finishedAt Time
	wakeGen    uint64 // invalidates stale sleep-wake events
}

// ID returns the process's spawn index, used as the processor identifier.
func (p *Proc) ID() int { return p.id }

// Name returns the debug name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the owning simulator.
func (p *Proc) Sim() *Simulator { return p.sim }

// Now returns the current simulated time. Valid only while p is running.
func (p *Proc) Now() Time { return p.sim.now }

// FinishedAt reports when the process body returned (valid after Run).
func (p *Proc) FinishedAt() Time { return p.finishedAt }

// top is the goroutine body wrapping the user function.
func (p *Proc) top(body func(*Proc)) {
	<-p.resume // wait for the first runProc
	defer func() {
		if r := recover(); r != nil {
			p.sim.failure = &procPanic{proc: p.name, value: r, stack: debug.Stack()}
		}
		p.state = stateDone
		p.finishedAt = p.sim.now
		p.sim.yield <- struct{}{}
	}()
	body(p)
}

// block yields control to the scheduler and waits to be resumed. The caller
// must have arranged a wake-up (an event or a Waiter delivery).
func (p *Proc) block(reason string) {
	if p.state != stateRunning {
		panic(fmt.Sprintf("sim: block on non-running proc %s", p.name))
	}
	p.state = stateBlocked
	p.waitReason = reason
	p.sim.yield <- struct{}{}
	<-p.resume
	p.waitReason = ""
}

// Sleep advances the process by d: the processor is busy (computing) for d of
// simulated time. Handler work injected while sleeping extends the sleep.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	if d == 0 {
		return
	}
	s := p.sim
	p.busyUntil = s.now + d
	p.wakeGen++
	gen := p.wakeGen
	s.Schedule(p.busyUntil, func() {
		if p.wakeGen == gen {
			s.runProc(p) // runProc re-checks busyUntil and reschedules if extended
		}
	})
	p.block("sleep")
}

// InjectWork charges d of CPU time to this process on behalf of an
// asynchronous message handler (the SIGIO handler in the paper's systems).
// If the process is currently computing, its wake-up is pushed back; if it is
// blocked waiting, the time is consumed before it can resume.
func (p *Proc) InjectWork(d Time) {
	if d <= 0 {
		return
	}
	s := p.sim
	if p.busyUntil < s.now {
		p.busyUntil = s.now
	}
	p.busyUntil += d
	// Any pending sleep-wake or unpark event will observe the moved horizon
	// via runProc's busyUntil check and reschedule itself.
}

// Park blocks the process until some event unparks it via UnparkAt. Spurious
// wake-ups are possible; callers must re-check their condition in a loop.
func (p *Proc) Park(reason string) {
	p.parked = true
	p.block(reason)
}

// UnparkAt schedules the process to resume at time at (respecting any
// busyUntil horizon). Must be called from scheduler context or from another
// running process. Unparking a process that is not parked is a no-op.
func (p *Proc) UnparkAt(at Time) {
	s := p.sim
	if at < s.now {
		at = s.now
	}
	s.Schedule(at, func() {
		if p.parked && p.state == stateBlocked {
			p.parked = false
			s.runProc(p)
		}
	})
}

// Waiter is a one-shot rendezvous: a process Waits until a value is
// Delivered by a handler or another process.
type Waiter struct {
	p     *Proc
	ready bool
	val   any
}

// NewWaiter returns a Waiter owned by p.
func NewWaiter(p *Proc) *Waiter { return &Waiter{p: p} }

// Wait blocks the owner until Deliver has been called, then returns the
// delivered value and resets the Waiter for reuse.
func (w *Waiter) Wait(reason string) any {
	for !w.ready {
		w.p.Park(reason)
	}
	w.ready = false
	v := w.val
	w.val = nil
	return v
}

// Ready reports whether a value has been delivered and not yet consumed.
func (w *Waiter) Ready() bool { return w.ready }

// Deliver stores the value and unparks the owner so it resumes at time at.
func (w *Waiter) Deliver(val any, at Time) {
	if w.ready {
		panic("sim: Waiter.Deliver called twice without Wait")
	}
	w.ready = true
	w.val = val
	w.p.UnparkAt(at)
}
