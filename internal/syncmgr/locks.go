// Package syncmgr implements the location and synchronization machinery that
// the paper's EC and LRC implementations share (Section 6): statically
// managed distributed locks with manager forwarding, and centralized
// barriers. The consistency actions differ per model and are supplied as
// hooks, so "the various implementations share as much code as possible".
//
// Delivery contract: every handler in this package assumes exactly-once,
// in-order delivery per link. The fabric provides that natively when faults
// are off, and its reliable sublayer (fabric.FaultPlan) restores it under
// injected loss, duplication and reordering — duplicates are dropped and
// out-of-order frames buffered below the handler layer. Handlers are
// therefore NOT idempotent and must not be: a replayed KindLockReq would
// double-queue a requester and a replayed KindBarrierArrive would over-count
// st.arrived. Keeping the dedup in one place (the sublayer) is what lets the
// two protocol stacks stay oblivious to fault plans.
package syncmgr

import (
	"fmt"

	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/sim"
	"ecvslrc/internal/trace"
)

// Message kinds used by the managers. Protocol-specific kinds must be >= 10.
const (
	KindLockReq = iota + 1
	KindLockGrant
	KindBarrierArrive
	KindBarrierDepart
)

// Mode is the lock acquisition mode.
type Mode int

const (
	// Exclusive grants write access and transfers ownership.
	Exclusive Mode = iota
	// ReadOnly grants read access; ownership stays with the last writer.
	ReadOnly
)

// String names the mode for debug output.
func (m Mode) String() string {
	if m == Exclusive {
		return "excl"
	}
	return "ro"
}

// LockHooks supplies the model-specific consistency payloads attached to
// lock traffic. All payload sizes are in bytes (headers are added by fabric).
//
// Payloads are typed fabric.Payload unions. The lock manager owns the A
// (lock id), B (mode) and Flag2 (routed-via-manager) slots of every lock
// message, plus the Kind tag; hooks populate and read only the C, D, Flag,
// Vec and Body slots, so both halves compose into one value with no nesting
// and no boxing.
type LockHooks interface {
	// MakeLockRequest builds the consistency portion of an acquire request
	// (e.g. the requester's incarnation number or interval vector).
	MakeLockRequest(l core.LockID, mode Mode) (payload fabric.Payload, size int)
	// MakeLockGrant runs at the granting owner and builds the consistency
	// payload (updated data, diffs, or write notices) from the request's
	// hook slots. The returned work is CPU time spent collecting it, charged
	// to the granter.
	MakeLockGrant(l core.LockID, mode Mode, req fabric.Payload, requester int) (payload fabric.Payload, size int, work sim.Time)
	// ApplyLockGrant runs at the requester when the grant arrives and
	// returns the CPU time spent installing the payload.
	ApplyLockGrant(l core.LockID, mode Mode, payload fabric.Payload) sim.Time
	// LocalReacquire runs when the owner reacquires its own lock without
	// any communication.
	LocalReacquire(l core.LockID, mode Mode)
	// OnRelease runs at release time, before any queued grant is serviced.
	OnRelease(l core.LockID) sim.Time
}

// Counters tallies synchronization events for core.Stats.
type Counters struct {
	LockAcquires     int64
	ReadLockAcquires int64
	RemoteAcquires   int64
	Barriers         int64
}

// Lock-message slot conventions (see LockHooks): A carries the lock id and B
// the mode; Flag2 is set once the manager has routed the request, so a second
// arrival at the manager (via successor forwarding) does not re-route it.

type lockState struct {
	owned     bool // this processor holds the lock token (is the data owner)
	acquiring bool // an acquire is in flight from this processor
	held      bool
	heldMode  Mode
	successor int // processor we last granted exclusive ownership to, or -1
	// manager-only: the processor that most recently requested the lock
	// exclusively (Section 6's "last requested" pointer).
	lastReq int

	pendingEx   []fabric.Msg
	pendingRead []fabric.Msg
}

// LockMgr implements distributed locks for one processor.
type LockMgr struct {
	self   int
	nprocs int
	p      *sim.Proc
	net    *fabric.Network
	hooks  LockHooks
	locks  map[core.LockID]*lockState
	cnt    *Counters
	tr     *trace.Tracer
}

// SetTracer attaches the event tracer (nil-safe, observation-only): acquire
// requests, grants, completions and releases are recorded with their modes
// and queue depths, the raw material of the per-lock contention reports.
func (m *LockMgr) SetTracer(tr *trace.Tracer) { m.tr = tr }

// NewLockMgr returns the lock manager endpoint for processor p.
func NewLockMgr(p *sim.Proc, net *fabric.Network, nprocs int, hooks LockHooks, cnt *Counters) *LockMgr {
	return &LockMgr{
		self:   p.ID(),
		nprocs: nprocs,
		p:      p,
		net:    net,
		hooks:  hooks,
		locks:  make(map[core.LockID]*lockState),
		cnt:    cnt,
	}
}

// ManagerOf returns the statically assigned manager (round-robin by id).
func (m *LockMgr) ManagerOf(l core.LockID) int { return int(l) % m.nprocs }

func (m *LockMgr) lock(l core.LockID) *lockState {
	st := m.locks[l]
	if st == nil {
		st = &lockState{successor: -1, lastReq: m.ManagerOf(l)}
		st.owned = m.ManagerOf(l) == m.self
		m.locks[l] = st
	}
	return st
}

// Holding reports whether the lock is currently held locally (and its mode).
func (m *LockMgr) Holding(l core.LockID) (bool, Mode) {
	st := m.locks[l]
	if st == nil || !st.held {
		return false, Exclusive
	}
	return true, st.heldMode
}

// Acquire obtains lock l in the given mode, blocking until granted.
func (m *LockMgr) Acquire(l core.LockID, mode Mode) {
	if mode == Exclusive {
		m.cnt.LockAcquires++
	} else {
		m.cnt.ReadLockAcquires++
	}
	st := m.lock(l)
	if st.held {
		panic(fmt.Sprintf("syncmgr: proc %d reacquiring held lock %d", m.self, l))
	}
	if st.owned {
		st.held, st.heldMode = true, mode
		m.hooks.LocalReacquire(l, mode)
		m.tr.LockAcq(m.p.Now(), m.self, int(l), mode == ReadOnly, true)
		return
	}
	m.cnt.RemoteAcquires++
	m.tr.LockReq(m.p.Now(), m.self, int(l), mode == ReadOnly)
	req, size := m.hooks.MakeLockRequest(l, mode)
	req.Kind, req.A, req.B = fabric.PayloadLockReq, int32(l), int32(mode)

	target := m.ManagerOf(l)
	if target == m.self {
		// We are the manager: route locally to the last requester.
		target = st.lastReq
		if mode == Exclusive {
			st.lastReq = m.self
		}
		req.Flag2 = true // routed via the manager already
		if target == m.self {
			panic(fmt.Sprintf("syncmgr: manager %d believes it owns un-owned lock %d", m.self, l))
		}
	}
	st.acquiring = true
	reply := m.net.Call(m.p, target, KindLockReq, size, req)
	// Commit the new state before the apply work sleeps: requests arriving
	// during the apply must see us as the holder and queue here.
	st.acquiring = false
	st.held, st.heldMode = true, mode
	if mode == Exclusive {
		st.owned = true
		st.successor = -1
	}
	work := m.hooks.ApplyLockGrant(l, mode, reply.Payload)
	m.tr.Work(m.p.Now(), m.self, trace.WorkTrapDiff, trace.ObjLock, int(l), work)
	m.p.Sleep(work)
	m.tr.LockAcq(m.p.Now(), m.self, int(l), mode == ReadOnly, false)
}

// Release releases lock l and grants any queued requests.
func (m *LockMgr) Release(l core.LockID) {
	st := m.lock(l)
	if !st.held {
		panic(fmt.Sprintf("syncmgr: proc %d releasing un-held lock %d", m.self, l))
	}
	relWork := m.hooks.OnRelease(l)
	m.tr.Work(m.p.Now(), m.self, trace.WorkTrapDiff, trace.ObjLock, int(l), relWork)
	m.p.Sleep(relWork)
	m.tr.LockRel(m.p.Now(), m.self, int(l), len(st.pendingEx)+len(st.pendingRead))
	st.held = false
	if st.heldMode == ReadOnly {
		// Read-only releases are local: ownership was never transferred.
		// (Programs separate read and write epochs by barriers, as all the
		// paper's applications do, so no revocation protocol is needed.)
		return
	}
	// Serve queued readers first (they do not move ownership), then pass
	// ownership to the queued exclusive requester, forwarding any leftovers
	// down the chain.
	for _, req := range st.pendingRead {
		m.grantFromProc(st, req)
	}
	st.pendingRead = nil
	if len(st.pendingEx) > 0 {
		head := st.pendingEx[0]
		rest := st.pendingEx[1:]
		st.pendingEx = nil
		m.grantFromProc(st, head)
		for _, req := range rest {
			m.net.ForwardFrom(m.p, req, st.successor, 0)
		}
	}
}

func (m *LockMgr) grantFromProc(st *lockState, req fabric.Msg) {
	l, mode := core.LockID(req.Payload.A), Mode(req.Payload.B)
	// Transfer ownership before the collection work sleeps: requests
	// arriving mid-grant must chase the new owner, not be granted again.
	if mode == Exclusive {
		st.owned = false
		st.successor = req.From
	}
	payload, size, work := m.hooks.MakeLockGrant(l, mode, req.Payload, req.From)
	payload.Kind, payload.A, payload.B = fabric.PayloadLockGrant, int32(l), int32(mode)
	m.tr.Work(m.p.Now(), m.self, trace.WorkTrapDiff, trace.ObjLock, int(l), work)
	m.p.Sleep(work)
	m.tr.LockGrant(m.p.Now(), m.self, int(l), req.From, mode == ReadOnly, size)
	m.net.ReplyFrom(m.p, req, KindLockGrant, size, payload)
}

func (m *LockMgr) grantFromHandler(hc *fabric.HandlerCtx, st *lockState, req fabric.Msg) {
	l, mode := core.LockID(req.Payload.A), Mode(req.Payload.B)
	if mode == Exclusive {
		st.owned = false
		st.successor = req.From
	}
	payload, size, work := m.hooks.MakeLockGrant(l, mode, req.Payload, req.From)
	payload.Kind, payload.A, payload.B = fabric.PayloadLockGrant, int32(l), int32(mode)
	m.tr.Work(hc.Now(), m.self, trace.WorkTrapDiff, trace.ObjLock, int(l), work)
	hc.Work(work)
	m.tr.LockGrant(hc.Now(), m.self, int(l), req.From, mode == ReadOnly, size)
	hc.Reply(req, KindLockGrant, size, payload)
}

// Handle processes a lock-protocol message; it returns false if the message
// is not a lock message. Relies on the package delivery contract: a
// duplicated KindLockReq would enqueue the requester twice and grant the
// lock to a stale chase, so dedup must happen below this layer.
func (m *LockMgr) Handle(hc *fabric.HandlerCtx, msg fabric.Msg) bool {
	if msg.Kind != KindLockReq {
		return false
	}
	l, mode := core.LockID(msg.Payload.A), Mode(msg.Payload.B)
	st := m.lock(l)

	if m.ManagerOf(l) == m.self && !msg.Payload.Flag2 {
		// Manager role: forward to the last exclusive requester unless that
		// is ourselves (then we are the owner and fall through).
		msg.Payload.Flag2 = true
		if st.lastReq != m.self {
			target := st.lastReq
			if mode == Exclusive {
				st.lastReq = msg.From
			}
			hc.Forward(msg, target, 0)
			return true
		}
		if mode == Exclusive {
			st.lastReq = msg.From
		}
	}

	// A read request can be granted while the owner itself holds the lock
	// read-only: read-only locks are shared (Midway semantics; IS phase 2
	// has every processor read-locking the same array concurrently).
	free := !st.held || (st.heldMode == ReadOnly && mode == ReadOnly)
	switch {
	case st.owned && free && len(st.pendingEx) == 0:
		m.grantFromHandler(hc, st, msg)
	case st.owned || st.acquiring:
		// Busy (or about to own): queue until release.
		if mode == Exclusive {
			st.pendingEx = append(st.pendingEx, msg)
		} else {
			st.pendingRead = append(st.pendingRead, msg)
		}
	default:
		// Ownership has moved on; chase it down the successor chain.
		if st.successor < 0 {
			panic(fmt.Sprintf("syncmgr: proc %d got request for lock %d it never owned", m.self, l))
		}
		hc.Forward(msg, st.successor, 0)
	}
	return true
}
