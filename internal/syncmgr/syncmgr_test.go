package syncmgr

import (
	"testing"

	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/sim"
)

// nilHooks attach no consistency traffic: pure synchronization.
type nilHooks struct{}

func (nilHooks) MakeLockRequest(core.LockID, Mode) (fabric.Payload, int) {
	return fabric.Payload{}, 0
}
func (nilHooks) MakeLockGrant(core.LockID, Mode, fabric.Payload, int) (fabric.Payload, int, sim.Time) {
	return fabric.Payload{}, 0, 0
}
func (nilHooks) ApplyLockGrant(core.LockID, Mode, fabric.Payload) sim.Time { return 0 }
func (nilHooks) LocalReacquire(core.LockID, Mode)                          {}
func (nilHooks) OnRelease(core.LockID) sim.Time                            { return 0 }

func (nilHooks) MakeArrival(core.BarrierID) (fabric.Payload, int, sim.Time) {
	return fabric.Payload{}, 0, 0
}
func (nilHooks) AbsorbArrival(core.BarrierID, int, fabric.Payload) sim.Time { return 0 }
func (nilHooks) PrepareDepartures(core.BarrierID) sim.Time                  { return 0 }
func (nilHooks) MakeDeparture(core.BarrierID, int) (fabric.Payload, int, sim.Time) {
	return fabric.Payload{}, 0, 0
}
func (nilHooks) ApplyDeparture(core.BarrierID, fabric.Payload) sim.Time { return 0 }

type cluster struct {
	s     *sim.Simulator
	net   *fabric.Network
	locks []*LockMgr
	bars  []*BarrierMgr
	cnts  []*Counters
}

// newCluster spawns n processors each running body(proc index).
func newCluster(t *testing.T, n int, body func(c *cluster, i int)) *cluster {
	t.Helper()
	c := &cluster{s: sim.New()}
	c.net = fabric.New(c.s, fabric.DefaultCostModel(), n)
	c.locks = make([]*LockMgr, n)
	c.bars = make([]*BarrierMgr, n)
	c.cnts = make([]*Counters, n)
	for i := 0; i < n; i++ {
		i := i
		p := c.s.Spawn("proc", func(p *sim.Proc) { body(c, i) })
		c.cnts[i] = &Counters{}
		c.locks[i] = NewLockMgr(p, c.net, n, nilHooks{}, c.cnts[i])
		c.bars[i] = NewBarrierMgr(p, c.net, n, nilHooks{}, c.cnts[i])
		lm, bm := c.locks[i], c.bars[i]
		c.net.Attach(p, func(hc *fabric.HandlerCtx, m fabric.Msg) {
			if lm.Handle(hc, m) || bm.Handle(hc, m) {
				return
			}
			t.Errorf("unhandled message kind %d", m.Kind)
		})
	}
	return c
}

func TestMutualExclusion(t *testing.T) {
	const n = 4
	inCS := 0
	maxCS := 0
	count := 0
	c := newCluster(t, n, func(c *cluster, i int) {
		for k := 0; k < 5; k++ {
			c.locks[i].Acquire(1, Exclusive)
			inCS++
			if inCS > maxCS {
				maxCS = inCS
			}
			count++
			c.locks[i].p.Sleep(50 * sim.Microsecond)
			inCS--
			c.locks[i].Release(1)
		}
	})
	if err := c.s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxCS != 1 {
		t.Errorf("max procs in critical section = %d, want 1", maxCS)
	}
	if count != n*5 {
		t.Errorf("count = %d, want %d", count, n*5)
	}
}

func TestLockMessageCounts(t *testing.T) {
	// Sequential, deterministic acquisition pattern on lock 0 (manager=p0).
	c := newCluster(t, 3, func(c *cluster, i int) {
		lm := c.locks[i]
		switch i {
		case 1:
			// p0 is manager and initial owner: request p1->p0, grant p0->p1.
			lm.Acquire(0, Exclusive)
			lm.Release(0)
		case 2:
			lm.p.Sleep(50 * sim.Millisecond) // let p1 finish first
			// request p2->p0 (manager), forward p0->p1 (last), grant p1->p2.
			lm.Acquire(0, Exclusive)
			lm.Release(0)
		}
	})
	if err := c.s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.net.Total().Msgs; got != 5 {
		t.Errorf("total messages = %d, want 5 (2 for p1's acquire, 3 for p2's)", got)
	}
}

func TestLocalReacquireNoMessages(t *testing.T) {
	c := newCluster(t, 2, func(c *cluster, i int) {
		if i != 0 {
			return
		}
		lm := c.locks[i] // lock 0's manager is p0 = initial owner
		for k := 0; k < 3; k++ {
			lm.Acquire(0, Exclusive)
			lm.Release(0)
		}
	})
	if err := c.s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.net.Total().Msgs; got != 0 {
		t.Errorf("messages = %d, want 0", got)
	}
	if c.cnts[0].RemoteAcquires != 0 || c.cnts[0].LockAcquires != 3 {
		t.Errorf("counters = %+v", c.cnts[0])
	}
}

func TestConcurrentReaders(t *testing.T) {
	readers := 0
	maxReaders := 0
	c := newCluster(t, 4, func(c *cluster, i int) {
		if i == 0 {
			return // p0 is owner; stays out
		}
		c.locks[i].Acquire(0, ReadOnly)
		readers++
		if readers > maxReaders {
			maxReaders = readers
		}
		c.locks[i].p.Sleep(10 * sim.Millisecond)
		readers--
		c.locks[i].Release(0)
	})
	if err := c.s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxReaders < 2 {
		t.Errorf("max concurrent readers = %d, want >= 2", maxReaders)
	}
	if c.cnts[1].ReadLockAcquires != 1 {
		t.Errorf("counters = %+v", c.cnts[1])
	}
}

func TestQueuedExclusiveGrantedOnRelease(t *testing.T) {
	var holdEnd, p2Got sim.Time
	c := newCluster(t, 3, func(c *cluster, i int) {
		lm := c.locks[i]
		switch i {
		case 0:
			lm.Acquire(3, Exclusive) // manager of lock 3 is p0 (3%3)
			lm.p.Sleep(20 * sim.Millisecond)
			holdEnd = lm.p.Now()
			lm.Release(3)
		case 2:
			lm.p.Sleep(time1ms())
			lm.Acquire(3, Exclusive)
			p2Got = lm.p.Now()
			lm.Release(3)
		}
	})
	if err := c.s.Run(); err != nil {
		t.Fatal(err)
	}
	if p2Got <= holdEnd {
		t.Errorf("p2 acquired at %v, before release at %v", p2Got, holdEnd)
	}
}

func time1ms() sim.Time { return sim.Millisecond }

func TestBarrierSynchronizes(t *testing.T) {
	const n = 5
	after := make([]sim.Time, n)
	var latestArrival sim.Time
	c := newCluster(t, n, func(c *cluster, i int) {
		c.bars[i].p.Sleep(sim.Time(i+1) * sim.Millisecond)
		if now := c.bars[i].p.Now(); now > latestArrival {
			latestArrival = now
		}
		c.bars[i].Wait(0)
		after[i] = c.bars[i].p.Now()
	})
	if err := c.s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, tm := range after {
		if tm < latestArrival {
			t.Errorf("proc %d left barrier at %v, before last arrival %v", i, tm, latestArrival)
		}
	}
	if c.cnts[2].Barriers != 1 {
		t.Errorf("barrier count = %d", c.cnts[2].Barriers)
	}
}

func TestBarrierReusable(t *testing.T) {
	const n = 3
	const rounds = 4
	counts := make([]int, n)
	c := newCluster(t, n, func(c *cluster, i int) {
		for r := 0; r < rounds; r++ {
			c.bars[i].p.Sleep(sim.Time(i*100+1) * sim.Microsecond)
			c.bars[i].Wait(7) // manager is 7%3 = p1
			counts[i]++
			// Everyone must have completed the same number of rounds.
			for j := 0; j < n; j++ {
				if counts[j] < counts[i]-1 || counts[j] > counts[i] {
					t.Errorf("round skew: counts=%v", counts)
				}
			}
		}
	})
	if err := c.s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if counts[i] != rounds {
			t.Errorf("proc %d did %d rounds", i, counts[i])
		}
	}
}

func TestBarrierMessageCount(t *testing.T) {
	const n = 4
	c := newCluster(t, n, func(c *cluster, i int) {
		c.bars[i].Wait(0)
	})
	if err := c.s.Run(); err != nil {
		t.Fatal(err)
	}
	// n-1 arrivals + n-1 departures.
	if got := c.net.Total().Msgs; got != int64(2*(n-1)) {
		t.Errorf("messages = %d, want %d", got, 2*(n-1))
	}
}

func TestReleaseUnheldPanics(t *testing.T) {
	c := newCluster(t, 1, func(c *cluster, i int) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		c.locks[0].Release(0)
	})
	if err := c.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHoldingQuery(t *testing.T) {
	c := newCluster(t, 1, func(c *cluster, i int) {
		lm := c.locks[0]
		if h, _ := lm.Holding(0); h {
			t.Error("should not hold before acquire")
		}
		lm.Acquire(0, ReadOnly)
		if h, m := lm.Holding(0); !h || m != ReadOnly {
			t.Error("should hold read-only")
		}
		lm.Release(0)
		if h, _ := lm.Holding(0); h {
			t.Error("should not hold after release")
		}
	})
	if err := c.s.Run(); err != nil {
		t.Fatal(err)
	}
}
