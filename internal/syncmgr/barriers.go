package syncmgr

import (
	"fmt"

	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/sim"
	"ecvslrc/internal/trace"
)

// BarrierHooks supplies the model-specific consistency traffic attached to
// barrier episodes. EC barriers move no data (shared data is associated with
// locks, not barriers); LRC barriers exchange interval vectors and write
// notices through the manager.
//
// Payloads are typed fabric.Payload unions; the barrier manager owns the A
// slot (barrier id) and the Kind tag, hooks own the rest (LRC uses Vec and
// Body; EC barriers leave everything zero).
type BarrierHooks interface {
	// MakeArrival builds the client's arrival payload; work is charged to
	// the arriving processor.
	MakeArrival(b core.BarrierID) (payload fabric.Payload, size int, work sim.Time)
	// AbsorbArrival records one arrival at the manager. Implementations
	// must only buffer here: the manager may still be computing, and
	// consistency actions belong at synchronization points.
	AbsorbArrival(b core.BarrierID, from int, payload fabric.Payload) (work sim.Time)
	// PrepareDepartures runs once at the manager when every processor has
	// arrived, before any departure is built. This is the manager's safe
	// point for merging the buffered consistency state.
	PrepareDepartures(b core.BarrierID) (work sim.Time)
	// MakeDeparture builds the departure payload for processor to.
	MakeDeparture(b core.BarrierID, to int) (payload fabric.Payload, size int, work sim.Time)
	// ApplyDeparture installs the departure payload at a client.
	ApplyDeparture(b core.BarrierID, payload fabric.Payload) (work sim.Time)
}

// TreeBarrierHooks is the optional extension a BarrierHooks implementation
// provides to ride a fan-in tree (SetFanIn): MergeSubtreeArrival folds the
// child arrivals buffered by AbsorbArrival into this node's own arrival,
// producing the single arrival message for the node's whole subtree. Hooks
// that do not implement it (EC: barriers move no data) send their own
// arrival unchanged.
type TreeBarrierHooks interface {
	MergeSubtreeArrival(b core.BarrierID, own fabric.Payload) (payload fabric.Payload, size int, work sim.Time)
}

type barrierState struct {
	arrived    int
	reqs       []fabric.Msg // remote arrival requests awaiting departure
	local      *sim.Waiter  // manager's own arrival, if waiting
	ownArrived bool         // tree mode: this node's program reached the barrier
}

// BarrierMgr implements centralized barriers for one processor (Section 6:
// arrival messages to a statically assigned manager, who lowers the barrier
// with departure messages once everyone has arrived).
type BarrierMgr struct {
	self     int
	nprocs   int
	p        *sim.Proc
	net      *fabric.Network
	hooks    BarrierHooks
	barriers map[core.BarrierID]*barrierState
	cnt      *Counters
	tr       *trace.Tracer
	fanin    int // >= 2: implicit radix-fanin arrival/departure tree
}

// SetFanIn arranges every barrier episode as an implicit radix-r tree rooted
// at the barrier's manager instead of the flat all-to-one exchange. Ranks are
// processor ids rotated so the manager is rank 0; rank k's parent is rank
// (k-1)/r and its children are ranks rk+1..rk+r. Each node waits for its
// children's subtree arrivals, merges them with its own (TreeBarrierHooks),
// sends one arrival up, and fans the departure back out to its children. The
// flat protocol serializes O(nprocs) messages through one handler — the
// dominant term at 256-1024 processors — where the tree pays O(log_r nprocs)
// chained hops. r < 2 keeps the flat protocol. Must be called before the
// simulation starts; message contents differ from the flat exchange, so
// runs with fan-in are a distinct experiment, not a byte-identical one.
func (m *BarrierMgr) SetFanIn(r int) {
	if r < 2 {
		r = 0
	}
	m.fanin = r
}

// SetTracer attaches the event tracer (nil-safe, observation-only): each
// processor's arrival and departure instants are recorded, from which the
// analyzer derives per-episode barrier imbalance.
func (m *BarrierMgr) SetTracer(tr *trace.Tracer) { m.tr = tr }

// NewBarrierMgr returns the barrier manager endpoint for processor p.
func NewBarrierMgr(p *sim.Proc, net *fabric.Network, nprocs int, hooks BarrierHooks, cnt *Counters) *BarrierMgr {
	return &BarrierMgr{
		self:     p.ID(),
		nprocs:   nprocs,
		p:        p,
		net:      net,
		hooks:    hooks,
		barriers: make(map[core.BarrierID]*barrierState),
		cnt:      cnt,
	}
}

// ManagerOf returns the barrier's statically assigned manager.
func (m *BarrierMgr) ManagerOf(b core.BarrierID) int { return int(b) % m.nprocs }

func (m *BarrierMgr) state(b core.BarrierID) *barrierState {
	st := m.barriers[b]
	if st == nil {
		st = &barrierState{}
		m.barriers[b] = st
	}
	return st
}

// workRec records classified consistency work charged for barrier b (nil-safe
// through the tracer; zero work is dropped there).
func (m *BarrierMgr) workRec(at sim.Time, b core.BarrierID, d sim.Time) {
	m.tr.Work(at, m.self, trace.WorkTrapDiff, trace.ObjBarrier, int(b), d)
}

// treeRank is this processor's rank in barrier b's tree: ids rotated so the
// manager is rank 0.
func (m *BarrierMgr) treeRank(b core.BarrierID) int {
	return (m.self - m.ManagerOf(b) + m.nprocs) % m.nprocs
}

// treeParent is the processor id of this node's tree parent for barrier b.
func (m *BarrierMgr) treeParent(b core.BarrierID) int {
	k := (m.treeRank(b) - 1) / m.fanin
	return (m.ManagerOf(b) + k) % m.nprocs
}

// treeChildren is how many direct children this node has in barrier b's tree.
func (m *BarrierMgr) treeChildren(b core.BarrierID) int {
	lo := m.treeRank(b)*m.fanin + 1
	if lo >= m.nprocs {
		return 0
	}
	hi := lo + m.fanin
	if hi > m.nprocs {
		hi = m.nprocs
	}
	return hi - lo
}

// waitTree is Wait under SetFanIn: block until the subtree below this node
// has arrived, send one merged arrival up, and fan the departure back down.
// Departures to children are always built in this node's program context
// (after its own departure applied), never in handler context.
func (m *BarrierMgr) waitTree(b core.BarrierID) {
	m.cnt.Barriers++
	payload, size, work := m.hooks.MakeArrival(b)
	payload.Kind, payload.A = fabric.PayloadBarrier, int32(b)
	m.workRec(m.p.Now(), b, work)
	m.p.Sleep(work)
	m.tr.BarArrive(m.p.Now(), m.self, int(b))

	root := m.self == m.ManagerOf(b)
	st := m.state(b)
	st.ownArrived = true
	if root {
		// The root absorbs its own arrival exactly like the flat manager.
		awork := m.hooks.AbsorbArrival(b, m.self, payload)
		m.workRec(m.p.Now(), b, awork)
		m.p.Sleep(awork)
	}
	if st.arrived < m.treeChildren(b) {
		if st.local != nil {
			panic(fmt.Sprintf("syncmgr: barrier %d node arrived twice", b))
		}
		st.local = sim.NewWaiter(m.p)
		st.local.Wait("barrier")
		st.local = nil
	}

	// The whole subtree is in. Claim the buffered child requests and reset
	// the state before blocking upward, so next-episode arrivals (which can
	// reach us only after our departures below) start from a clean slate.
	reqs := st.reqs
	st.reqs, st.arrived, st.ownArrived = nil, 0, false

	if !root {
		up, usize, uwork := payload, size, sim.Time(0)
		if th, ok := m.hooks.(TreeBarrierHooks); ok {
			up, usize, uwork = th.MergeSubtreeArrival(b, payload)
			up.Kind, up.A = fabric.PayloadBarrier, int32(b)
		}
		m.workRec(m.p.Now(), b, uwork)
		m.p.Sleep(uwork)
		reply := m.net.Call(m.p, m.treeParent(b), KindBarrierArrive, usize, up)
		dwork := m.hooks.ApplyDeparture(b, reply.Payload)
		m.workRec(m.p.Now(), b, dwork)
		m.p.Sleep(dwork)
	} else {
		pwork := m.hooks.PrepareDepartures(b)
		m.workRec(m.p.Now(), b, pwork)
		m.p.Sleep(pwork)
	}
	m.tr.BarDepart(m.p.Now(), m.self, int(b))
	for _, req := range reqs {
		dp, dsize, dwork := m.hooks.MakeDeparture(b, req.From)
		dp.Kind, dp.A = fabric.PayloadBarrier, int32(b)
		m.workRec(m.p.Now(), b, dwork)
		m.p.Sleep(dwork)
		m.net.ReplyFrom(m.p, req, KindBarrierDepart, dsize, dp)
	}
}

// Wait blocks until all processors have arrived at barrier b.
func (m *BarrierMgr) Wait(b core.BarrierID) {
	if m.fanin >= 2 && m.nprocs > 1 {
		m.waitTree(b)
		return
	}
	m.cnt.Barriers++
	payload, size, work := m.hooks.MakeArrival(b)
	payload.Kind, payload.A = fabric.PayloadBarrier, int32(b)
	m.workRec(m.p.Now(), b, work)
	m.p.Sleep(work)
	m.tr.BarArrive(m.p.Now(), m.self, int(b))

	mgr := m.ManagerOf(b)
	if mgr != m.self {
		reply := m.net.Call(m.p, mgr, KindBarrierArrive, size, payload)
		dwork := m.hooks.ApplyDeparture(b, reply.Payload)
		m.workRec(m.p.Now(), b, dwork)
		m.p.Sleep(dwork)
		m.tr.BarDepart(m.p.Now(), m.self, int(b))
		return
	}

	// Manager's own arrival.
	st := m.state(b)
	awork := m.hooks.AbsorbArrival(b, m.self, payload)
	m.workRec(m.p.Now(), b, awork)
	m.p.Sleep(awork)
	st.arrived++
	if st.arrived < m.nprocs {
		if st.local != nil {
			panic(fmt.Sprintf("syncmgr: barrier %d manager arrived twice", b))
		}
		st.local = sim.NewWaiter(m.p)
		st.local.Wait("barrier")
		m.tr.BarDepart(m.p.Now(), m.self, int(b))
		return
	}
	m.depart(b, st, nil)
	m.tr.BarDepart(m.p.Now(), m.self, int(b))
}

// Handle processes a barrier-protocol message; returns false if the message
// is not a barrier message. Relies on the package delivery contract: a
// duplicated KindBarrierArrive would over-count st.arrived and lower the
// barrier early, so dedup must happen below this layer.
func (m *BarrierMgr) Handle(hc *fabric.HandlerCtx, msg fabric.Msg) bool {
	if msg.Kind != KindBarrierArrive {
		return false
	}
	b := core.BarrierID(msg.Payload.A)
	st := m.state(b)
	awork := m.hooks.AbsorbArrival(b, msg.From, msg.Payload)
	m.workRec(hc.Now(), b, awork)
	hc.Work(awork)
	st.arrived++
	st.reqs = append(st.reqs, msg)
	if m.fanin >= 2 {
		// Tree mode: arrivals are subtree arrivals from direct children. The
		// handler only buffers; when the last child completes the subtree and
		// this node's own program already arrived, wake it to carry the
		// merged arrival upward (or, at the root, to lower the barrier).
		if st.ownArrived && st.arrived == m.treeChildren(b) && st.local != nil {
			st.local.Deliver(nil, hc.Now())
		}
		return true
	}
	if st.arrived == m.nprocs {
		m.depart(b, st, hc)
	}
	return true
}

// depart lowers the barrier: departure messages to every queued remote
// arrival, and a local wake-up if the manager itself is waiting. Called
// either from the manager's process context (manager arrived last, hc nil)
// or from handler context (a remote arrival completed the set).
func (m *BarrierMgr) depart(b core.BarrierID, st *barrierState, hc *fabric.HandlerCtx) {
	reqs := st.reqs
	local := st.local
	st.reqs = nil
	st.local = nil
	st.arrived = 0

	if work := m.hooks.PrepareDepartures(b); work > 0 {
		if hc != nil {
			m.workRec(hc.Now(), b, work)
			hc.Work(work)
		} else {
			m.workRec(m.p.Now(), b, work)
			m.p.Sleep(work)
		}
	}
	for _, req := range reqs {
		payload, size, work := m.hooks.MakeDeparture(b, req.From)
		payload.Kind, payload.A = fabric.PayloadBarrier, int32(b)
		if hc != nil {
			m.workRec(hc.Now(), b, work)
			hc.Work(work)
			hc.Reply(req, KindBarrierDepart, size, payload)
		} else {
			m.workRec(m.p.Now(), b, work)
			m.p.Sleep(work)
			m.net.ReplyFrom(m.p, req, KindBarrierDepart, size, payload)
		}
	}
	if local != nil {
		if hc == nil {
			panic("syncmgr: manager waiting on its own last arrival")
		}
		local.Deliver(nil, hc.Now())
	}
}
