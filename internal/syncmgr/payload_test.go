package syncmgr

import (
	"testing"

	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/sim"
)

// testBody is a hook-owned payload body for round-trip checks.
type testBody struct{ tag int32 }

func (*testBody) BodyKind() fabric.PayloadKind { return fabric.PayloadNoticeSet }

// recHooks populate every hook-owned payload slot on the send side and verify
// the slots (plus the manager-owned ones) on the receive side, for all four
// synchronization message kinds.
type recHooks struct {
	t    *testing.T
	self int

	grantBody *testBody

	appliedGrant  bool
	appliedDepart bool
	absorbed      bool
}

func (h *recHooks) MakeLockRequest(l core.LockID, mode Mode) (fabric.Payload, int) {
	return fabric.Payload{C: 77, D: 88, Flag: true, Vec: []int32{int32(h.self), 6}}, 12
}

func (h *recHooks) MakeLockGrant(l core.LockID, mode Mode, req fabric.Payload, requester int) (fabric.Payload, int, sim.Time) {
	if req.Kind != fabric.PayloadLockReq {
		h.t.Errorf("grant side sees request kind %v", req.Kind)
	}
	if core.LockID(req.A) != l || Mode(req.B) != mode {
		h.t.Errorf("manager slots: lock %d mode %d, want %d %v", req.A, req.B, l, mode)
	}
	if req.C != 77 || req.D != 88 || !req.Flag || len(req.Vec) != 2 || req.Vec[1] != 6 {
		h.t.Errorf("hook slots did not round-trip: %+v", req)
	}
	h.grantBody = &testBody{tag: 31}
	return fabric.Payload{C: 99, Body: h.grantBody}, 8, 0
}

func (h *recHooks) ApplyLockGrant(l core.LockID, mode Mode, payload fabric.Payload) sim.Time {
	if payload.Kind != fabric.PayloadLockGrant {
		h.t.Errorf("grant kind = %v", payload.Kind)
	}
	if payload.C != 99 {
		h.t.Errorf("grant hook slot C = %d, want 99", payload.C)
	}
	if b, ok := payload.Body.(*testBody); !ok || b.tag != 31 {
		h.t.Errorf("grant body did not round-trip: %#v", payload.Body)
	}
	h.appliedGrant = true
	return 0
}

func (h *recHooks) LocalReacquire(core.LockID, Mode) {}
func (h *recHooks) OnRelease(core.LockID) sim.Time   { return 0 }

func (h *recHooks) MakeArrival(b core.BarrierID) (fabric.Payload, int, sim.Time) {
	return fabric.Payload{Vec: []int32{int32(h.self), 40}, Body: &testBody{tag: 7}}, 8, 0
}

func (h *recHooks) AbsorbArrival(b core.BarrierID, from int, payload fabric.Payload) sim.Time {
	if payload.Kind != fabric.PayloadBarrier || core.BarrierID(payload.A) != b {
		h.t.Errorf("arrival payload = %+v for barrier %d", payload, b)
	}
	if len(payload.Vec) != 2 || payload.Vec[0] != int32(from) || payload.Vec[1] != 40 {
		h.t.Errorf("arrival vec from %d = %v", from, payload.Vec)
	}
	if body, ok := payload.Body.(*testBody); !ok || body.tag != 7 {
		h.t.Errorf("arrival body = %#v", payload.Body)
	}
	h.absorbed = true
	return 0
}

func (h *recHooks) PrepareDepartures(core.BarrierID) sim.Time { return 0 }

func (h *recHooks) MakeDeparture(b core.BarrierID, to int) (fabric.Payload, int, sim.Time) {
	return fabric.Payload{Vec: []int32{int32(to)}, Body: &testBody{tag: 13}}, 4, 0
}

func (h *recHooks) ApplyDeparture(b core.BarrierID, payload fabric.Payload) sim.Time {
	if payload.Kind != fabric.PayloadBarrier || core.BarrierID(payload.A) != b {
		h.t.Errorf("departure payload = %+v for barrier %d", payload, b)
	}
	if len(payload.Vec) != 1 || payload.Vec[0] != int32(h.self) {
		h.t.Errorf("departure vec at %d = %v", h.self, payload.Vec)
	}
	if body, ok := payload.Body.(*testBody); !ok || body.tag != 13 {
		h.t.Errorf("departure body = %#v", payload.Body)
	}
	h.appliedDepart = true
	return 0
}

// TestTypedPayloadRoundTripAllKinds drives one remote lock acquire (request +
// grant) and one barrier episode (arrival + departure) through recording
// hooks, checking every payload slot for all four synchronization message
// kinds.
func TestTypedPayloadRoundTripAllKinds(t *testing.T) {
	const n = 2
	s := sim.New()
	net := fabric.New(s, fabric.DefaultCostModel(), n)
	hooks := make([]*recHooks, n)
	locks := make([]*LockMgr, n)
	bars := make([]*BarrierMgr, n)
	for i := 0; i < n; i++ {
		i := i
		var p *sim.Proc
		p = s.Spawn("proc", func(p *sim.Proc) {
			if i == 1 {
				// Lock 0 is managed (and initially owned) by proc 0: this
				// acquire sends a request and applies the returned grant.
				locks[1].Acquire(0, Exclusive)
				locks[1].Release(0)
			}
			bars[i].Wait(0)
		})
		hooks[i] = &recHooks{t: t, self: i}
		cnt := &Counters{}
		locks[i] = NewLockMgr(p, net, n, hooks[i], cnt)
		bars[i] = NewBarrierMgr(p, net, n, hooks[i], cnt)
		lm, bm := locks[i], bars[i]
		net.Attach(p, func(hc *fabric.HandlerCtx, m fabric.Msg) {
			if !lm.Handle(hc, m) && !bm.Handle(hc, m) {
				t.Errorf("unhandled message kind %d", m.Kind)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !hooks[1].appliedGrant {
		t.Error("no lock grant was applied")
	}
	if !hooks[0].absorbed {
		t.Error("the manager absorbed no remote arrival")
	}
	if !hooks[1].appliedDepart {
		t.Error("no remote departure was applied")
	}
}
