// Notice-history garbage collection: the real TreadMarks scaling problem.
// Without it every node's interval records and every writer's diff store grow
// without bound — O(intervals x procs) memory per node, which is what stops a
// 1996 protocol at 8 processors from becoming a 1024-processor machine.
//
// The collector is simulator-omniscient: it runs at the barrier quiescent
// point (the end of PrepareDepartures at the managing node), when every
// processor is provably blocked at the same barrier. At that instant no
// record-carrying message is in flight — lock grants and fetch replies go to
// blocked-waiting processors whose requests were already consumed, and the
// barrier departures have not been made yet — so global state is stable and
// an exact kill floor can be computed instead of TreadMarks' heuristics.
// Collection does zero protocol work: no messages, no simulated time, no
// cost-model charges. Equivalence (identical core.Stats and final memory
// images with GC on vs off) is pinned by TestNoticeGCEquivalence.
//
// Keying rule. Retained state is consulted by exactly three futures, and
// each gets its own floor:
//
//   - Interval records at node y serve two purposes: forwarding to peers
//     (collectNotices sends only records past the requester's vector, and
//     every vector is at least minVec[q] = min over nodes of vec[q]), and
//     happens-before ordering of y's OWN access misses (intervalBefore
//     consults record (q,j) only for j inside one of y's pending fetch
//     windows (applied, noticed]). So records of writer q at node y are
//     dead up to recFloor_y[q] = min(minVec[q], min applied over y's own
//     pending windows for q); for y == q additionally capped by
//     lastBarrierSent, since q's next barrier arrival re-sends its own
//     records past that mark. Re-absorption of a pruned record is
//     impossible — a node's vector covers every record it ever absorbed,
//     so peers never resend them (the violation counter enforces this).
//
//   - Diffs live at their writer and are served only to fetch windows on
//     one page. A node with a window (applied, noticed] never asks below
//     applied; a node with NO window for (pg, q) may later gain one whose
//     applied is 0 (a cold reader must reconstruct the page from the
//     initial image), so it pins the page's diffs entirely. Hence
//     diffFloor_q[pg] = min over all other nodes of their applied on
//     (pg, q), with absent windows counting as 0, capped one below a
//     pending (closed-but-unharvested) interval on the page so a lazy
//     harvest cannot append below the pruned line.
//
// Cold windows — notices held for pages a node never reads — therefore pin
// exactly the history a future read would need, and nothing else. That is
// the honest shape of the problem: real TreadMarks GC VALIDATES pages (real
// traffic) to drain those windows, which an equivalence-preserving collector
// must not do. Workloads whose windows drain (migratory, producer-consumer,
// all-read epochs: Water, QS, the micros) get bounded history; broadcast-
// invalidate workloads with unread pages (SOR's distant interior rows) keep
// theirs, measured in EXPERIMENTS.md.
package lrc

import "fmt"

// GC is a shared notice-history collector across the nodes of one run.
// Attach with NewGC before the simulation starts; it fires once per barrier.
type GC struct {
	nodes  []*Node
	minVec []int32 // scratch: min over nodes of vec[q]
	report GCReport
}

// GCReport summarizes a run's collections. It is host-side observability
// only and never feeds back into simulated cost or core.Stats.
type GCReport struct {
	Collections   int        // barrier-quiescence collection passes
	RecordsPruned int64      // interval records dropped across all nodes
	DiffsPruned   int64      // stored diffs dropped at their writers
	Violations    int64      // floor-soundness violations (must stay 0)
	Samples       []GCSample // notice-history footprint around each pass
}

// GCSample is the machine-wide notice-history footprint in bytes immediately
// before and after one collection pass.
type GCSample struct {
	Before int64
	After  int64
}

// NewGC wires a collector into every node of a run. All nodes must belong to
// the same simulation; the collector fires at each barrier's managing node.
func NewGC(nodes []*Node) *GC {
	if len(nodes) == 0 {
		return nil
	}
	nprocs := nodes[0].Base.NProcs
	g := &GC{nodes: nodes, minVec: make([]int32, nprocs)}
	for _, n := range nodes {
		n.gc = g
		n.recFloor = make([]int32, nprocs)
		n.diffFloor = make(map[int]int32)
	}
	return g
}

// Report returns the accumulated collection report.
func (g *GC) Report() GCReport { return g.report }

// NoticeBytes returns the machine-wide notice-history footprint: the wire
// size of every retained interval record on every node plus every stored
// diff at its writer. This is the quantity GC bounds.
func (g *GC) NoticeBytes() int64 {
	var b int64
	for _, n := range g.nodes {
		b += n.NoticeHistoryBytes()
	}
	return b
}

// NoticeHistoryBytes is one node's share of the notice-history footprint:
// retained interval records plus the node's own stored diffs, in wire bytes.
// The runner reports the machine-wide sum so GC-off and GC-on footprints
// compare directly.
func (n *Node) NoticeHistoryBytes() int64 {
	var b int64
	for _, recs := range n.records {
		for _, r := range recs {
			b += int64(r.wireSize())
		}
	}
	for _, ds := range n.diffStore {
		for _, idf := range ds {
			b += int64(idf.Diff.WireSize())
		}
	}
	return b
}

const gcMaxIdx = int32(1<<31 - 1)

// collect runs one collection pass at the barrier quiescent point.
func (g *GC) collect() {
	before := g.NoticeBytes()

	// minVec[q]: the lowest interval of q any node's vector still misses.
	// No future grant or departure ships records at or below it.
	for q := range g.minVec {
		g.minVec[q] = gcMaxIdx
	}
	for _, n := range g.nodes {
		for q, v := range n.vec {
			if v < g.minVec[q] {
				g.minVec[q] = v
			}
		}
	}

	// Per-node record floors and pruning.
	for _, n := range g.nodes {
		self := n.P.ID()
		for q := range n.recFloor {
			n.recFloor[q] = g.minVec[q]
		}
		if n.lastBarrierSent < n.recFloor[self] {
			n.recFloor[self] = n.lastBarrierSent
		}
		for _, pm := range n.meta {
			if pm == nil {
				continue
			}
			for _, w := range pm.writers {
				if w.noticed > w.applied && w.applied < n.recFloor[w.proc] {
					n.recFloor[w.proc] = w.applied
				}
			}
		}
		for q := range n.records {
			recs := n.records[q]
			cut := 0
			for cut < len(recs) && recs[cut].idx <= n.recFloor[q] {
				cut++
			}
			if cut == 0 {
				continue
			}
			g.report.RecordsPruned += int64(cut)
			// Shift down in place and nil the tail so the pruned records are
			// unreachable; the backing array stays at its high-water mark,
			// which collection bounds across barriers.
			k := copy(recs, recs[cut:])
			for j := k; j < len(recs); j++ {
				recs[j] = nil
			}
			n.records[q] = recs[:k]
		}
	}

	// Per-(writer, page) diff floors and pruning.
	for _, n := range g.nodes {
		self := int32(n.P.ID())
		for pg, ds := range n.diffStore {
			floor := gcMaxIdx
			for _, x := range g.nodes {
				if x == n {
					continue
				}
				pm := x.meta[pg]
				var w *writerWindow
				if pm != nil {
					w = pm.find(self)
				}
				if w == nil {
					// A cold reader reconstructs the page from the initial
					// image: a future window here starts at applied 0 and
					// pins the page's whole diff history.
					floor = 0
					break
				}
				if w.applied < floor {
					floor = w.applied
				}
			}
			if pm := n.meta[pg]; pm != nil && pm.closedIval >= 0 && pm.closedIval-1 < floor {
				floor = pm.closedIval - 1
			}
			if floor <= 0 {
				continue
			}
			if floor > n.diffFloor[pg] {
				n.diffFloor[pg] = floor
			}
			kept := ds[:0]
			for _, idf := range ds {
				if idf.Ival > floor {
					kept = append(kept, idf)
				} else {
					g.report.DiffsPruned++
				}
			}
			for j := len(kept); j < len(ds); j++ {
				ds[j] = ivalDiff{}
			}
			if len(kept) < len(ds) {
				n.diffStore[pg] = kept
			}
		}
	}

	g.report.Collections++
	g.report.Samples = append(g.report.Samples, GCSample{Before: before, After: g.NoticeBytes()})
	if Trace {
		fmt.Printf("    [gc] pass %d minVec=%v pruned rec=%d diff=%d bytes %d->%d\n",
			g.report.Collections, g.minVec, g.report.RecordsPruned, g.report.DiffsPruned,
			before, g.NoticeBytes())
	}
}
