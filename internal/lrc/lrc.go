// Package lrc implements lazy release consistency (Section 3.2), the model
// used by TreadMarks: execution is divided into intervals, modifications are
// summarized as per-page write notices ordered by interval vectors, and an
// invalidate protocol propagates data lazily — a page access miss fetches
// diffs (or timestamp-selected words) from the writers. Multiple concurrent
// writers per page are supported, so there is no ping-pong effect under
// false sharing (Section 7.1).
package lrc

import (
	"fmt"
	"sort"

	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/nodebase"
	"ecvslrc/internal/sim"
	"ecvslrc/internal/syncmgr"
	"ecvslrc/internal/trace"
	"ecvslrc/internal/vm"
	"ecvslrc/internal/wcollect"
	"ecvslrc/internal/wtrap"
)

// Trace enables protocol-level debug output (tests only).
var Trace = false

// Message kinds beyond the shared synchronization managers'.
const (
	kindFetchReq = 10 + iota
	kindFetchReply
)

// interval is a closed execution interval of one processor: the unit the
// write notices name. The vector captures the intervals of every other
// processor that happened before this one.
type interval struct {
	proc  int
	idx   int32
	vec   []int32
	pages []int
}

// wireSize is the cost of shipping this interval's write notices: interval
// identity, its vector, and one notice per page.
func (iv *interval) wireSize() int {
	return 8 + 4*len(iv.vec) + 4*len(iv.pages)
}

// writerWindow is one remote writer's notice state on a page: noticed is the
// highest interval index of that writer named by a write notice here, applied
// the highest whose modifications are installed locally. The page's pending
// fetch window is (applied, noticed].
type writerWindow struct {
	proc    int32
	noticed int32
	applied int32
}

// pageMeta is the per-page protocol state of one processor. The writer
// windows are a sparse slice sorted by processor: a page has a window only
// for processors that actually sent a write notice naming it, so per-page
// state is O(writers of that page), not O(procs) — at 1024 processors a
// dense per-page array would multiply out to gigabytes across the machine
// (pages x procs x nodes), while real pages have a handful of writers.
type pageMeta struct {
	writers []writerWindow // sorted by proc
	// closedIval is this processor's own closed-but-unharvested interval
	// that modified the page (-1 if none); the twin is kept for lazy diff
	// creation until someone asks or a conflicting event forces it.
	closedIval int32
}

func newPageMeta() *pageMeta { return &pageMeta{closedIval: -1} }

// window returns the writer window for proc, inserting a zero window in
// sorted position if the page has none yet.
func (pm *pageMeta) window(proc int32) *writerWindow {
	i := sort.Search(len(pm.writers), func(i int) bool { return pm.writers[i].proc >= proc })
	if i < len(pm.writers) && pm.writers[i].proc == proc {
		return &pm.writers[i]
	}
	pm.writers = append(pm.writers, writerWindow{})
	copy(pm.writers[i+1:], pm.writers[i:])
	pm.writers[i] = writerWindow{proc: proc}
	return &pm.writers[i]
}

// find returns the window for proc, or nil if the page has none.
func (pm *pageMeta) find(proc int32) *writerWindow {
	i := sort.Search(len(pm.writers), func(i int) bool { return pm.writers[i].proc >= proc })
	if i < len(pm.writers) && pm.writers[i].proc == proc {
		return &pm.writers[i]
	}
	return nil
}

type ivalDiff struct {
	Ival int32
	Diff *wcollect.Diff
}

// Fetch-request slot conventions (PayloadPageReq): A is the page, B the
// highest interval of the responder already applied locally, and C bounds
// the reply to intervals the requester holds write notices for —
// modifications from the responder's later intervals have not been
// "released" to the requester yet and must not travel early.

// pageReply is the typed Body of a kindFetchReply message.
type pageReply struct {
	Diffs   []ivalDiff           // Diffs collection
	Stamped wcollect.StampedData // Timestamps collection
}

// BodyKind implements fabric.Body.
func (*pageReply) BodyKind() fabric.PayloadKind { return fabric.PayloadPageReply }

// noticeBody is the write-notice set riding with lock grants, barrier
// arrivals and barrier departures: the interval records the receiver's
// vector does not cover. The sender's vector travels in the payload's Vec
// slot alongside it.
type noticeBody struct {
	records []*interval
	// minVec rides only on tree fan-in subtree arrivals: the elementwise
	// minimum vector over the subtree's members. The parent keys each
	// member-covering departure to it, while the payload Vec slot carries
	// the elementwise maximum for vector merging.
	minVec []int32
}

// BodyKind implements fabric.Body.
func (*noticeBody) BodyKind() fabric.PayloadKind { return fabric.PayloadNoticeSet }

// pendingWriter is one processor with unfetched write notices for a page.
type pendingWriter struct {
	proc  int
	since int32
	upTo  int32
}

// applyUnit is one writer interval's modifications, the happens-before
// ordering unit of an access miss.
type applyUnit struct {
	proc int
	ival int32
	dr   []wcollect.DataRun
	sr   []wcollect.StampRun
}

// Node is one processor's LRC engine. It implements core.DSM.
type Node struct {
	nodebase.Base
	impl core.Impl

	locks *syncmgr.LockMgr
	bars  *syncmgr.BarrierMgr

	cur     int32 // index of the currently open interval
	vec     []int32
	records [][]*interval // per processor, its known closed intervals in idx order

	meta      []*pageMeta // indexed by page, nil until first touched
	openPages []int       // pages modified in the open interval (twinning), in fault order

	// diffStore holds this processor's own harvested diffs: page -> diffs
	// in interval order (Diffs collection).
	diffStore map[int][]ivalDiff

	stamps *wcollect.Stamps // Timestamps collection

	db    *wtrap.DirtyBits // CompilerInstr trapping
	twins *wtrap.PageTwins // Twinning

	// barrier bookkeeping
	lastBarrierSent int32               // own interval records up to this index were pushed at a barrier
	arrivalVecs     map[int][]int32     // manager: vector received from each arriver
	arrivalRecs     map[int][]*interval // manager: buffered records, absorbed at departure
	arrivalMins     map[int][]int32     // tree fan-in: subtree min vector per child arrival

	missWriters []pendingWriter // accessMiss scratch, reused across misses

	gc        *GC           // shared notice-history collector, nil when GC is off
	recFloor  []int32       // per-writer record kill floor at this node (GC only)
	diffFloor map[int]int32 // per-page diff kill floor at this writer (GC only)
}

// New builds the LRC node for processor p with a zeroed private image.
// impl.Model must be core.LRC.
func New(p *sim.Proc, net *fabric.Network, al *mem.Allocator, nprocs int, impl core.Impl) *Node {
	return NewWithImage(p, net, al, nprocs, impl, mem.NewImage(al.Size()))
}

// NewWithImage is New with a caller-provided (possibly recycled) image; the
// caller must overwrite it in full before the simulation starts.
func NewWithImage(p *sim.Proc, net *fabric.Network, al *mem.Allocator, nprocs int, impl core.Impl, im *mem.Image) *Node {
	if impl.Model != core.LRC || !impl.Valid() {
		panic(fmt.Sprintf("lrc: bad implementation %v", impl))
	}
	n := &Node{
		impl:        impl,
		cur:         1,
		vec:         make([]int32, nprocs),
		records:     make([][]*interval, nprocs),
		meta:        make([]*pageMeta, al.Pages()),
		diffStore:   make(map[int][]ivalDiff),
		arrivalVecs: make(map[int][]int32),
		arrivalRecs: make(map[int][]*interval),
	}
	// vec[q] is the highest CLOSED interval of q whose write notices this
	// node holds; the open interval (index cur) is not covered until it
	// closes. Initially nothing is closed anywhere.
	n.InitWithImage(p, net, al, core.LRC, nprocs, im)
	n.locks = syncmgr.NewLockMgr(p, net, nprocs, (*lockHooks)(n), &n.Cnt)
	n.bars = syncmgr.NewBarrierMgr(p, net, nprocs, (*barrierHooks)(n), &n.Cnt)

	if impl.Collect == core.Timestamps {
		n.stamps = wcollect.NewStamps(al)
	}
	switch impl.Trap {
	case core.CompilerInstr:
		// Hierarchical dirty bits: page-level bits narrow the collection
		// scan because there is no lock/data association (Section 4.1).
		n.db = wtrap.NewDirtyBits(al, true)
		// Setting both the word- and page-level bits costs more than EC's
		// flat scheme (Section 8.1).
		n.SetTrap(n.db, n.CM.InstrStoreOpt+n.CM.InstrStoreOpt/2)
	case core.Twinning:
		n.twins = wtrap.NewPageTwins(n.Im)
		// All shared pages start write-protected so first writes twin.
		for pg := 0; pg < al.Pages(); pg++ {
			n.MMU.SetProt(pg, vm.ReadOnly)
		}
	}
	n.MMU.SetHandler(n.onFault)
	net.Attach(p, n.handle)
	return n
}

// Impl returns the implementation configuration.
func (n *Node) Impl() core.Impl { return n.impl }

// SetTracer attaches the event tracer to this node and its sub-machinery:
// fault, miss, twin, collect and apply events plus the lock and barrier
// manager taps. Tracing is observation-only; call before the run starts.
func (n *Node) SetTracer(tr *trace.Tracer) {
	n.AttachTracer(tr)
	n.locks.SetTracer(tr)
	n.bars.SetTracer(tr)
	if n.twins != nil {
		n.twins.OnMake = func(pg int) {
			tr.Twin(n.P.Now(), n.P.ID(), trace.DomainPage, pg)
		}
	}
}

// NProcs implements core.DSM.
func (n *Node) NProcs() int { return n.Base.NProcs }

// Model implements core.DSM.
func (n *Node) Model() core.Model { return core.LRC }

// Bind implements core.DSM: LRC has no lock/data association; no-op.
func (n *Node) Bind(l core.LockID, rs ...mem.Range) {}

// Rebind implements core.DSM: no-op under LRC.
func (n *Node) Rebind(l core.LockID, rs ...mem.Range) {}

// Acquire implements core.DSM.
func (n *Node) Acquire(l core.LockID) {
	n.Flush()
	// An acquire begins a new interval (Section 5.1).
	cwork := n.closeInterval()
	n.Tr.Work(n.P.Now(), n.P.ID(), trace.WorkTrapDiff, trace.ObjNone, -1, cwork)
	n.Charge(cwork)
	n.Flush()
	n.locks.Acquire(l, syncmgr.Exclusive)
}

// AcquireRead implements core.DSM: LRC provides exclusive locks only; the
// paper's LRC programs never need read-only locks (Section 3.2).
func (n *Node) AcquireRead(l core.LockID) { n.Acquire(l) }

// AcquireForRebind implements core.DSM: LRC has no lock/data association,
// so this is an ordinary acquire.
func (n *Node) AcquireForRebind(l core.LockID) { n.Acquire(l) }

// Release implements core.DSM. Consistency actions are lazy: the interval is
// closed when the next acquirer's request arrives.
func (n *Node) Release(l core.LockID) {
	n.Flush()
	n.locks.Release(l)
}

// Barrier implements core.DSM.
func (n *Node) Barrier(b core.BarrierID) {
	n.Flush()
	n.bars.Wait(b)
}

// handle dispatches incoming protocol messages. Like syncmgr's handlers,
// these assume exactly-once in-order delivery (see the syncmgr package doc);
// under a fault plan the fabric's reliable sublayer restores that guarantee.
// handleFetch in particular is not idempotent: a replayed fetch request
// would charge the owner's CPU and the link twice for the same page.
func (n *Node) handle(hc *fabric.HandlerCtx, m fabric.Msg) {
	if n.locks.Handle(hc, m) || n.bars.Handle(hc, m) {
		return
	}
	if m.Kind == kindFetchReq {
		n.handleFetch(hc, m)
		return
	}
	panic(fmt.Sprintf("lrc: unhandled message kind %d", m.Kind))
}

func (n *Node) pageMeta(pg int) *pageMeta {
	pm := n.meta[pg]
	if pm == nil {
		pm = newPageMeta()
		n.meta[pg] = pm
	}
	return pm
}

// --- interval management -------------------------------------------------

// closeInterval ends the open interval if it modified anything: it records
// the write notices and prepares the modified pages for collection. Returns
// the CPU cost.
func (n *Node) closeInterval() sim.Time {
	var pages []int
	var work sim.Time
	self := n.P.ID()

	switch n.impl.Trap {
	case core.CompilerInstr:
		pages = n.db.DirtyPages()
		for _, pg := range pages {
			// Hierarchical collection: scan word bits of dirty pages only,
			// stamping the modified blocks now (ci implies timestamps).
			runs, scanned := n.db.CollectPage(pg)
			work += sim.Time(scanned) * n.CM.WordScan
			n.stamps.Set(runs, wcollect.LRCStamp(self, int(n.cur)))
			if n.Tr != nil {
				n.Tr.Collect(n.P.Now(), self, trace.DomainPage, pg, int(n.cur), rangeWords(runs))
			}
			n.db.ResetPage(pg)
		}
	case core.Twinning:
		// openPages holds each page once (a page write-faults at most once
		// per interval); ownership of the slice moves to the interval record.
		pages = n.openPages
		n.openPages = nil
		sort.Ints(pages)
		for _, pg := range pages {
			pm := n.pageMeta(pg)
			if pm.closedIval >= 0 {
				panic("lrc: open and closed twin on one page")
			}
			pm.closedIval = n.cur
			// Re-protect so the next write starts a fresh epoch; the twin
			// stays for lazy diff creation.
			n.MMU.SetProt(pg, vm.ReadOnly)
			work += n.CM.MProtect
		}
	}

	if len(pages) == 0 {
		return work
	}
	vec := make([]int32, len(n.vec))
	copy(vec, n.vec)
	rec := &interval{proc: self, idx: n.cur, vec: vec, pages: pages}
	n.records[self] = append(n.records[self], rec)
	n.vec[self] = n.cur
	n.cur++
	return work
}

// harvestPage forces collection of this processor's closed-but-unharvested
// modifications to page pg (lazy diffing's deferred work). Returns CPU cost.
func (n *Node) harvestPage(pg int) sim.Time {
	pm := n.pageMeta(pg)
	if pm.closedIval < 0 {
		return 0
	}
	ival := pm.closedIval
	pm.closedIval = -1
	if n.impl.Trap != core.Twinning {
		return 0 // compiler instrumentation stamps at interval close
	}
	runs, cmp := n.twins.Compare(pg)
	n.twins.Drop(pg)
	work := sim.Time(cmp) * n.CM.WordCompare
	switch n.impl.Collect {
	case core.Timestamps:
		n.stamps.Set(runs, wcollect.LRCStamp(n.P.ID(), int(ival)))
	case core.Diffs:
		d := wcollect.BuildDiff(n.Im, runs)
		n.diffStore[pg] = append(n.diffStore[pg], ivalDiff{Ival: ival, Diff: d})
		n.Extra.DiffsCreated++
		work += sim.Time(d.Words()) * n.CM.WordCopy
	}
	if n.Tr != nil {
		n.Tr.Collect(n.P.Now(), n.P.ID(), trace.DomainPage, pg, int(ival), rangeWords(runs))
	}
	return work
}

// rangeWords sums the word count of changed ranges (trace attribution only).
func rangeWords(rs []mem.Range) int {
	words := 0
	for _, r := range rs {
		words += r.Words()
	}
	return words
}

// --- write notice application --------------------------------------------

// absorb installs a batch of interval records received with a grant or a
// barrier departure: it saves them, invalidates the named pages, and merges
// the sender's vector. Records for intervals already covered are skipped.
func (n *Node) absorb(records []*interval, senderVec []int32) sim.Time {
	var work sim.Time
	self := n.P.ID()
	// Apply in (proc, idx) order so per-processor record lists stay sorted.
	sorted := make([]*interval, len(records))
	copy(sorted, records)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].proc != sorted[j].proc {
			return sorted[i].proc < sorted[j].proc
		}
		return sorted[i].idx < sorted[j].idx
	})
	for _, rec := range sorted {
		if rec.proc == self || n.hasRecord(rec.proc, rec.idx) {
			continue
		}
		if n.recFloor != nil && rec.idx <= n.recFloor[rec.proc] {
			// A collected interval must never come back: its diffs are gone.
			// The floor proof says this cannot happen; count it if it does.
			n.gc.report.Violations++
			continue
		}
		n.records[rec.proc] = append(n.records[rec.proc], rec)
		for _, pg := range rec.pages {
			pm := n.pageMeta(pg)
			if w := pm.window(int32(rec.proc)); w.noticed < rec.idx {
				w.noticed = rec.idx
			}
			// A write notice for a page we have pending modifications on
			// forces the diff/stamps out of the twin first, so the twin
			// comparison never sees the other writers' data.
			work += n.harvestPage(pg)
			if n.MMU.Prot(pg) != vm.NoAccess {
				n.MMU.SetProt(pg, vm.NoAccess)
				work += n.CM.MProtect
			}
		}
	}
	if senderVec != nil {
		for q := range n.vec {
			if q != self && senderVec[q] > n.vec[q] {
				n.vec[q] = senderVec[q]
			}
		}
	}
	return work
}

func (n *Node) hasRecord(proc int, idx int32) bool {
	recs := n.records[proc]
	i := sort.Search(len(recs), func(i int) bool { return recs[i].idx >= idx })
	return i < len(recs) && recs[i].idx == idx
}

func (n *Node) record(proc int, idx int32) *interval {
	recs := n.records[proc]
	i := sort.Search(len(recs), func(i int) bool { return recs[i].idx >= idx })
	if i < len(recs) && recs[i].idx == idx {
		return recs[i]
	}
	return nil
}

// recordsAfter returns the records of q with index beyond bound.
func (n *Node) recordsAfter(q int, bound int32) []*interval {
	recs := n.records[q]
	i := sort.Search(len(recs), func(i int) bool { return recs[i].idx > bound })
	return recs[i:]
}

// collectNotices gathers every record this node knows that the peer's
// vector does not cover.
func (n *Node) collectNotices(peerVec []int32) (out []*interval, size int) {
	for q := 0; q < n.Base.NProcs; q++ {
		for _, rec := range n.recordsAfter(q, peerVec[q]) {
			out = append(out, rec)
			size += rec.wireSize()
		}
	}
	return out, size
}

// --- fault handling and data fetch ----------------------------------------

func (n *Node) onFault(a mem.Addr, write bool) {
	pg := mem.PageOf(a)
	switch n.MMU.Prot(pg) {
	case vm.NoAccess:
		n.accessMiss(pg, write)
	case vm.ReadOnly:
		if !write {
			panic("lrc: read fault on readable page")
		}
		n.writeTwinFault(pg)
	default:
		panic("lrc: fault on accessible page")
	}
}

// writeTwinFault handles the first write to a clean page under twinning.
func (n *Node) writeTwinFault(pg int) {
	// If a closed interval's twin is still pending for this page, its diff
	// must be extracted before re-twinning for the new interval.
	hwork := n.harvestPage(pg)
	twork := n.CM.ProtFault + mem.PageWords*n.CM.WordCopy + n.CM.MProtect
	n.Tr.Work(n.P.Now(), n.P.ID(), trace.WorkTrapDiff, trace.ObjPage, pg, hwork+twork)
	n.Charge(hwork)
	n.Charge(twork)
	n.twins.Make(pg)
	n.Extra.TwinsMade++
	n.openPages = append(n.openPages, pg)
	n.MMU.SetProt(pg, vm.ReadWrite)
}

// accessMiss resolves an invalid page: fetch the missing modifications from
// every writer with outstanding write notices, apply them in happens-before
// order, and re-validate the page.
func (n *Node) accessMiss(pg int, write bool) {
	n.Extra.AccessMisses++
	n.Tr.Work(n.P.Now(), n.P.ID(), trace.WorkTrapDiff, trace.ObjPage, pg, n.CM.ProtFault)
	n.Charge(n.CM.ProtFault)
	n.Flush()
	pm := n.pageMeta(pg)

	writers := n.missWriters[:0]
	for _, w := range pm.writers { // ascending proc order: the slice is sorted
		if w.noticed > w.applied {
			writers = append(writers, pendingWriter{proc: int(w.proc), since: w.applied, upTo: w.noticed})
		}
	}
	n.missWriters = writers[:0]
	if len(writers) == 0 {
		panic(fmt.Sprintf("lrc: proc %d: invalid page %d with no pending notices", n.P.ID(), pg))
	}
	n.Tr.Miss(n.P.Now(), n.P.ID(), pg, len(writers), write)
	if Trace {
		fmt.Printf("    [lrc] t=%v p%d miss pg%d writers=%+v windows=%+v\n",
			n.P.Now(), n.P.ID(), pg, writers, pm.writers)
	}

	// Parallel requests, as TreadMarks issues its diff requests.
	waiters := make([]*sim.Waiter, len(writers))
	for i, w := range writers {
		req := fabric.Payload{Kind: fabric.PayloadPageReq, A: int32(pg), B: w.since, C: w.upTo}
		waiters[i] = n.Net.CallAsync(n.P, w.proc, kindFetchReq, 12, req)
	}
	var units []applyUnit
	for i, w := range waiters {
		reply := n.Net.Await(w, "lrc-fetch")
		fr := reply.Payload.Body.(*pageReply)
		switch n.impl.Collect {
		case core.Diffs:
			for _, idf := range fr.Diffs {
				units = append(units, applyUnit{proc: writers[i].proc, ival: idf.Ival, dr: idf.Diff.Runs})
			}
		case core.Timestamps:
			// Split the stamped runs per interval for ordered application.
			// Data[k] carries the bytes of Runs[k], so the split needs no
			// by-address lookup; units appear in first-seen interval order
			// and runs stay in address order within each unit.
			for k, sr := range fr.Stamped.Runs {
				p, iv := sr.Stamp.ProcInterval()
				if p != writers[i].proc {
					panic("lrc: responder sent foreign stamps")
				}
				u := (*applyUnit)(nil)
				for j := range units {
					if units[j].proc == p && units[j].ival == int32(iv) {
						u = &units[j]
						break
					}
				}
				if u == nil {
					units = append(units, applyUnit{proc: p, ival: int32(iv)})
					u = &units[len(units)-1]
				}
				u.sr = append(u.sr, sr)
				u.dr = append(u.dr, fr.Stamped.Data[k])
			}
		}
	}

	// Apply in happens-before order: unit a must precede b when b's
	// interval vector covers a's interval. Happens-before plus an arbitrary
	// tie-break is NOT a strict weak order (incomparability is not
	// transitive), so a comparison sort would be unsound; use an explicit
	// topological selection instead. Concurrent units touch disjoint words
	// (they arise only from multi-writer false sharing), so their relative
	// order matters only for determinism.
	//
	// Each unit's closed-interval vector is resolved once up front: the
	// happens-before test is then a single array index. The selection runs
	// Kahn's algorithm over precomputed in-degrees, always extracting the
	// (proc, ival)-minimum source — the same order the naive re-scan
	// produced, but in O(k^2) integer compares instead of O(k^3) binary
	// searches over the full record history, which dominated wall clock on
	// pages with many concurrent writers at 256-1024 processors.
	vecs := make([][]int32, len(units))
	for i, u := range units {
		if rec := n.record(u.proc, u.ival); rec != nil {
			vecs[i] = rec.vec
		}
	}
	before := func(a, b int) bool { // did units[a] happen before units[b]?
		if units[a].proc == units[b].proc {
			return units[a].ival < units[b].ival
		}
		return vecs[b] != nil && vecs[b][units[a].proc] >= units[a].ival
	}
	indeg := make([]int, len(units))
	for b := range units {
		for a := range units {
			if a != b && before(a, b) {
				indeg[b]++
			}
		}
	}
	ordered := make([]applyUnit, 0, len(units))
	done := make([]bool, len(units))
	for len(ordered) < len(units) {
		pick := -1
		for i := range units {
			if done[i] || indeg[i] != 0 {
				continue
			}
			if pick < 0 || units[i].proc < units[pick].proc ||
				(units[i].proc == units[pick].proc && units[i].ival < units[pick].ival) {
				pick = i
			}
		}
		if pick < 0 {
			panic("lrc: cycle in interval happens-before order")
		}
		done[pick] = true
		ordered = append(ordered, units[pick])
		for b := range units {
			if !done[b] && before(pick, b) {
				indeg[b]--
			}
		}
	}
	words := 0
	for _, u := range ordered {
		w := wcollect.ApplyRuns(n.Im, u.dr)
		if n.stamps != nil {
			n.stamps.ApplyStamps(u.sr)
		}
		n.Tr.Apply(n.P.Now(), n.P.ID(), trace.DomainPage, pg, u.proc, w)
		words += w
	}
	n.Tr.Work(n.P.Now(), n.P.ID(), trace.WorkTrapDiff, trace.ObjPage, pg, sim.Time(words)*n.CM.WordApply)
	n.Charge(sim.Time(words) * n.CM.WordApply)

	for _, w := range writers {
		// Record exactly what was fetched: notices that arrived after the
		// requests went out remain pending.
		if win := pm.find(int32(w.proc)); win != nil && w.upTo > win.applied {
			win.applied = w.upTo
		}
	}
	// Re-validate. Under twinning the page stays write-protected so the
	// next write twins it; a write miss twins immediately.
	n.Tr.Work(n.P.Now(), n.P.ID(), trace.WorkTrapDiff, trace.ObjPage, pg, n.CM.MProtect)
	if n.impl.Trap == core.Twinning {
		n.MMU.SetProt(pg, vm.ReadOnly)
		n.Charge(n.CM.MProtect)
		if write {
			n.writeTwinFault(pg)
		}
	} else {
		n.MMU.SetProt(pg, vm.ReadWrite)
		n.Charge(n.CM.MProtect)
	}
}

// intervalBefore reports whether (p,i) happened before (q,j): q had seen p's
// interval i closed by the time it closed its own interval j.
func (n *Node) intervalBefore(p int, i int32, q int, j int32) bool {
	if p == q {
		return i < j
	}
	rec := n.record(q, j)
	return rec != nil && rec.vec[p] >= i
}

// handleFetch serves a data request for one page. With diffs, the diff is
// created once (lazily, now if necessary) and returned immediately on later
// requests; with timestamps, every request pays a fresh scan of the page's
// timestamps (the computation-overhead asymmetry of Section 5.3).
func (n *Node) handleFetch(hc *fabric.HandlerCtx, m fabric.Msg) {
	pg, since, upTo := int(m.Payload.A), m.Payload.B, m.Payload.C
	if n.diffFloor != nil && since < n.diffFloor[pg] {
		// The requester's window reaches below the kill floor: it would need
		// diffs the collector already discarded. Must be unreachable.
		n.gc.report.Violations++
	}
	fwork := n.harvestPage(pg) // lazy collection happens at first request
	n.Tr.Work(hc.Now(), n.P.ID(), trace.WorkTrapDiff, trace.ObjPage, pg, fwork)
	hc.Work(fwork)

	reply := &pageReply{}
	size := 0
	switch n.impl.Collect {
	case core.Diffs:
		for _, idf := range n.diffStore[pg] {
			if idf.Ival > since && idf.Ival <= upTo {
				reply.Diffs = append(reply.Diffs, idf)
				size += idf.Diff.WireSize()
			}
		}
		if Trace {
			fmt.Printf("    [lrc] p%d serves fetch(pg%d since %d) from p%d: %d diffs of %d stored\n",
				n.P.ID(), pg, since, m.From, len(reply.Diffs), len(n.diffStore[pg]))
			for _, idf := range reply.Diffs {
				fmt.Printf("      ival %d: %d runs\n", idf.Ival, len(idf.Diff.Runs))
			}
		}
	case core.Timestamps:
		pageRange := []mem.Range{{Base: mem.PageBase(pg), Len: mem.PageSize}}
		runs, scanned := wcollect.SelectPred(n.stamps, pageRange,
			wcollect.ProcWindow{Proc: n.P.ID(), Since: since, UpTo: upTo})
		n.Tr.Work(hc.Now(), n.P.ID(), trace.WorkTrapDiff, trace.ObjPage, pg, sim.Time(scanned)*n.CM.WordScan)
		hc.Work(sim.Time(scanned) * n.CM.WordScan)
		reply.Stamped = wcollect.ExtractStamped(n.Im, runs)
		size = reply.Stamped.WireSize(wcollect.LRCStampBytes)
		n.Extra.StampRunsSent += int64(len(runs))
	}
	n.Tr.FetchServe(hc.Now(), n.P.ID(), pg, m.From, size)
	hc.Reply(m, kindFetchReply, size, fabric.Payload{Kind: fabric.PayloadPageReply, Body: reply})
}

// --- syncmgr lock hooks ----------------------------------------------------

type lockHooks Node

func (h *lockHooks) node() *Node { return (*Node)(h) }

// MakeLockRequest attaches the requester's interval vector.
func (h *lockHooks) MakeLockRequest(l core.LockID, mode syncmgr.Mode) (fabric.Payload, int) {
	n := h.node()
	v := make([]int32, len(n.vec))
	copy(v, n.vec)
	return fabric.Payload{Vec: v}, 4 * len(v)
}

// MakeLockGrant closes the granter's interval and piggybacks the write
// notices the requester's vector does not cover.
func (h *lockHooks) MakeLockGrant(l core.LockID, mode syncmgr.Mode, req fabric.Payload, requester int) (fabric.Payload, int, sim.Time) {
	n := h.node()
	work := n.closeInterval()
	records, size := n.collectNotices(req.Vec)
	v := make([]int32, len(n.vec))
	copy(v, n.vec)
	return fabric.Payload{Vec: v, Body: &noticeBody{records: records}}, size + 4*len(v), work
}

// ApplyLockGrant installs the piggybacked write notices and invalidates.
func (h *lockHooks) ApplyLockGrant(l core.LockID, mode syncmgr.Mode, payload fabric.Payload) sim.Time {
	n := h.node()
	return n.absorb(payload.Body.(*noticeBody).records, payload.Vec)
}

// LocalReacquire begins a new interval even without communication, so local
// write epochs remain distinguishable.
func (h *lockHooks) LocalReacquire(l core.LockID, mode syncmgr.Mode) {
	// The interval was already closed by Node.Acquire before the lock
	// manager ran; nothing further is needed.
}

// OnRelease is lazy: consistency work happens when the next acquire arrives.
func (h *lockHooks) OnRelease(l core.LockID) sim.Time { return 0 }

// --- syncmgr barrier hooks --------------------------------------------------

type barrierHooks Node

func (h *barrierHooks) node() *Node { return (*Node)(h) }

// MakeArrival closes the interval and sends the manager this processor's
// vector (the payload Vec slot) plus its own interval records created since
// the last barrier (a noticeBody).
func (h *barrierHooks) MakeArrival(b core.BarrierID) (fabric.Payload, int, sim.Time) {
	n := h.node()
	work := n.closeInterval()
	self := n.P.ID()
	recs := n.recordsAfter(self, n.lastBarrierSent)
	size := 4 * len(n.vec)
	for _, r := range recs {
		size += r.wireSize()
	}
	n.lastBarrierSent = n.cur - 1
	v := make([]int32, len(n.vec))
	copy(v, n.vec)
	return fabric.Payload{Vec: v, Body: &noticeBody{records: recs}}, size, work
}

// AbsorbArrival buffers one arrival at the manager. The records are merged
// into the manager's consistency state only at PrepareDepartures: until then
// the manager may still be computing, and applying write notices mid-
// interval would invalidate pages under its feet.
func (h *barrierHooks) AbsorbArrival(b core.BarrierID, from int, payload fabric.Payload) sim.Time {
	n := h.node()
	n.arrivalVecs[from] = payload.Vec
	if from != n.P.ID() {
		body := payload.Body.(*noticeBody)
		n.arrivalRecs[from] = body.records
		if body.minVec != nil {
			if n.arrivalMins == nil {
				n.arrivalMins = make(map[int][]int32)
			}
			n.arrivalMins[from] = body.minVec
		} else if n.arrivalMins != nil {
			delete(n.arrivalMins, from)
		}
	}
	return 0
}

// MergeSubtreeArrival implements syncmgr.TreeBarrierHooks: fold the child
// subtree arrivals buffered by AbsorbArrival into this node's own arrival.
// The merged record set is the union (each processor's records travel up
// exactly one tree path, so the sets are disjoint by writer); the payload
// Vec becomes the subtree's elementwise-max vector (what absorbing merges)
// and the body's minVec its elementwise-min (what departures must cover).
// Children are folded in ascending processor order to keep runs replayable.
func (h *barrierHooks) MergeSubtreeArrival(b core.BarrierID, own fabric.Payload) (fabric.Payload, int, sim.Time) {
	n := h.node()
	maxVec := own.Vec // MakeArrival already returns a private copy
	minVec := make([]int32, len(maxVec))
	copy(minVec, maxVec)
	// Own records alias n.records[self]; the union must not append in place.
	records := append([]*interval(nil), own.Body.(*noticeBody).records...)
	for from := 0; from < n.Base.NProcs; from++ {
		recs, ok := n.arrivalRecs[from]
		if !ok {
			continue
		}
		records = append(records, recs...)
		delete(n.arrivalRecs, from)
		cv := n.arrivalVecs[from]
		mv := n.arrivalMins[from]
		if mv == nil {
			mv = cv // leaf child: its own vector is its subtree min
		}
		for q := range minVec {
			if mv[q] < minVec[q] {
				minVec[q] = mv[q]
			}
			if cv[q] > maxVec[q] {
				maxVec[q] = cv[q]
			}
		}
	}
	size := 8 * len(maxVec) // max and min vectors
	for _, r := range records {
		size += r.wireSize()
	}
	return fabric.Payload{Vec: maxVec, Body: &noticeBody{records: records, minVec: minVec}}, size, 0
}

// PrepareDepartures runs at the manager once everyone (itself included) has
// arrived: the buffered records are merged and the pages they name are
// invalidated locally.
func (h *barrierHooks) PrepareDepartures(b core.BarrierID) sim.Time {
	n := h.node()
	var work sim.Time
	for from := 0; from < n.Base.NProcs; from++ {
		recs, ok := n.arrivalRecs[from]
		if !ok {
			continue
		}
		work += n.absorb(recs, n.arrivalVecs[from])
		delete(n.arrivalRecs, from)
	}
	// The barrier is the machine's quiescent point: every processor is
	// blocked here and nothing carrying records is in flight, so this is
	// where collected intervals are provably dead (see gc.go).
	if n.gc != nil {
		n.gc.collect()
	}
	return work
}

// MakeDeparture sends processor q every record it lacks.
func (h *barrierHooks) MakeDeparture(b core.BarrierID, to int) (fabric.Payload, int, sim.Time) {
	n := h.node()
	av := n.arrivalVecs[to]
	if mv, ok := n.arrivalMins[to]; ok {
		// Tree fan-in: the departure must cover everything ANY member of the
		// child's subtree lacks, so it is keyed to the subtree min vector.
		av = mv
	}
	records, size := n.collectNotices(av)
	if Trace {
		fmt.Printf("    [lrc] t=%v barrier %d mgr p%d departure to p%d: av=%v, %d records:",
			n.P.Now(), b, n.P.ID(), to, av, len(records))
		for _, r := range records {
			fmt.Printf(" (p%d,%d,pgs%v)", r.proc, r.idx, r.pages)
		}
		fmt.Println()
	}
	v := make([]int32, len(n.vec))
	copy(v, n.vec)
	return fabric.Payload{Vec: v, Body: &noticeBody{records: records}}, size + 4*len(v), 0
}

// ApplyDeparture installs the departure's notices at a client.
func (h *barrierHooks) ApplyDeparture(b core.BarrierID, payload fabric.Payload) sim.Time {
	n := h.node()
	return n.absorb(payload.Body.(*noticeBody).records, payload.Vec)
}

// SetBarrierFanIn arranges barrier episodes as a radix-r arrival/departure
// tree (see syncmgr.BarrierMgr.SetFanIn). Must be called before the
// simulation starts; r < 2 keeps the flat protocol.
func (n *Node) SetBarrierFanIn(r int) { n.bars.SetFanIn(r) }

var _ core.DSM = (*Node)(nil)
var _ syncmgr.LockHooks = (*lockHooks)(nil)
var _ syncmgr.BarrierHooks = (*barrierHooks)(nil)
var _ syncmgr.TreeBarrierHooks = (*barrierHooks)(nil)
