package lrc

import (
	"testing"

	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/sim"
)

// TestFetchRoundTripEveryImpl drives the page-fetch message pair
// (kindFetchReq / kindFetchReply) end to end for each LRC implementation: a
// writer modifies a page under a lock, the reader's acquire invalidates it,
// and the reader's access miss must fetch exactly the written modifications
// through the typed PayloadPageReq/PayloadPageReply messages.
func TestFetchRoundTripEveryImpl(t *testing.T) {
	for _, impl := range core.ModelImpls(core.LRC) {
		impl := impl
		t.Run(impl.String(), func(t *testing.T) {
			s := sim.New()
			net := fabric.New(s, fabric.DefaultCostModel(), 2)
			al := mem.NewAllocator()
			base := al.Alloc("data", mem.PageSize, 4)
			nodes := make([]*Node, 2)
			var got int32
			// Lock 0 is managed by proc 0, the writer, so the grant ordering
			// is deterministic: the reader's acquire always reaches the
			// writer after its release.
			p0 := s.Spawn("writer", func(p *sim.Proc) {
				d := nodes[0]
				d.Acquire(0)
				d.WriteI32(base+8, 4242)
				d.Release(0)
				d.Barrier(1)
			})
			p1 := s.Spawn("reader", func(p *sim.Proc) {
				d := nodes[1]
				p.Sleep(sim.Millisecond) // let the writer win the first acquire
				d.Acquire(0)
				got = d.ReadI32(base + 8) // invalid page: access miss + fetch
				d.Release(0)
				d.Barrier(1)
			})
			nodes[0] = New(p0, net, al, 2, impl)
			nodes[1] = New(p1, net, al, 2, impl)
			if err := s.Run(); err != nil {
				t.Fatal(err)
			}
			if got != 4242 {
				t.Errorf("fetched value = %d, want 4242", got)
			}
			if misses := nodes[1].Extra.AccessMisses; misses != 1 {
				t.Errorf("reader access misses = %d, want 1", misses)
			}
			// The miss costs one fetch request; the responder pays the reply.
			if msgs := net.ProcStats(1).Msgs; msgs < 3 { // acquire + arrive + fetch
				t.Errorf("reader sent %d messages, want at least 3", msgs)
			}
		})
	}
}
