package lrc

import (
	"testing"

	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/sim"
	"ecvslrc/internal/vm"
)

func newTestNode(t *testing.T, impl core.Impl, body func(n *Node)) {
	t.Helper()
	s := sim.New()
	net := fabric.New(s, fabric.DefaultCostModel(), 1)
	al := mem.NewAllocator()
	al.Alloc("data", 4*mem.PageSize, 4)
	var n *Node
	p := s.Spawn("p0", func(p *sim.Proc) { body(n) })
	n = New(p, net, al, 1, impl)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func diffImpl() core.Impl {
	return core.Impl{Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}
}

func TestNewRejectsBadImpl(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for EC impl passed to lrc.New")
		}
	}()
	s := sim.New()
	net := fabric.New(s, fabric.DefaultCostModel(), 1)
	al := mem.NewAllocator()
	al.Alloc("x", 64, 4)
	p := s.Spawn("p", func(p *sim.Proc) {})
	New(p, net, al, 1, core.Impl{Model: core.EC, Trap: core.Twinning, Collect: core.Diffs})
}

func TestTwinningStartsWriteProtected(t *testing.T) {
	newTestNode(t, diffImpl(), func(n *Node) {
		for pg := 0; pg < n.MMU.Pages(); pg++ {
			if n.MMU.Prot(pg) != vm.ReadOnly {
				t.Fatalf("page %d prot = %v, want ro", pg, n.MMU.Prot(pg))
			}
		}
		n.WriteI32(0, 1) // first write must twin via a fault
		if n.MMU.Faults() != 1 || !n.twins.Has(0) {
			t.Errorf("faults=%d twinned=%v", n.MMU.Faults(), n.twins.Has(0))
		}
	})
}

func TestCompilerInstrNoProtection(t *testing.T) {
	newTestNode(t, core.Impl{Model: core.LRC, Trap: core.CompilerInstr, Collect: core.Timestamps}, func(n *Node) {
		n.WriteI32(0, 1)
		if n.MMU.Faults() != 0 {
			t.Errorf("faults = %d, want 0 under instrumentation", n.MMU.Faults())
		}
		if got := n.db.DirtyPages(); len(got) != 1 || got[0] != 0 {
			t.Errorf("dirty pages = %v", got)
		}
	})
}

func TestCloseIntervalRecordsNotices(t *testing.T) {
	newTestNode(t, diffImpl(), func(n *Node) {
		n.WriteI32(0, 1)
		n.WriteI32(2*mem.PageSize, 2)
		work := n.closeInterval()
		if work <= 0 {
			t.Error("closing a dirty interval should cost time")
		}
		recs := n.records[0]
		if len(recs) != 1 || recs[0].idx != 1 {
			t.Fatalf("records = %+v", recs)
		}
		if len(recs[0].pages) != 2 {
			t.Errorf("pages = %v, want 2 pages", recs[0].pages)
		}
		if n.vec[0] != 1 || n.cur != 2 {
			t.Errorf("vec=%v cur=%d", n.vec, n.cur)
		}
		// Empty close: no new record.
		n.closeInterval()
		if len(n.records[0]) != 1 {
			t.Error("empty interval must not produce a record")
		}
	})
}

func TestLazyDiffCreatedAtHarvest(t *testing.T) {
	newTestNode(t, diffImpl(), func(n *Node) {
		n.WriteI32(0, 42)
		n.closeInterval()
		if len(n.diffStore[0]) != 0 {
			t.Error("diff must not exist before harvest (lazy diffing)")
		}
		n.harvestPage(0)
		ds := n.diffStore[0]
		if len(ds) != 1 || ds[0].Ival != 1 || ds[0].Diff.Words() != 1 {
			t.Errorf("diffStore = %+v", ds)
		}
		if n.twins.Has(0) {
			t.Error("twin must be dropped after harvest")
		}
	})
}

func TestRewriteForcesHarvestOfClosedInterval(t *testing.T) {
	newTestNode(t, diffImpl(), func(n *Node) {
		n.WriteI32(0, 1)
		n.closeInterval()
		n.WriteI32(4, 2) // fault: must harvest interval 1 first, then retwin
		if len(n.diffStore[0]) != 1 {
			t.Fatalf("diffStore = %+v", n.diffStore[0])
		}
		if d := n.diffStore[0][0].Diff; d.Words() != 1 || d.Runs[0].Base != 0 {
			t.Errorf("interval-1 diff = %+v (must contain only the first write)", d)
		}
	})
}

func TestIntervalWireSize(t *testing.T) {
	iv := &interval{proc: 1, idx: 3, vec: make([]int32, 8), pages: []int{1, 2, 3}}
	if got := iv.wireSize(); got != 8+32+12 {
		t.Errorf("wireSize = %d", got)
	}
}

func TestIntervalBefore(t *testing.T) {
	newTestNode(t, diffImpl(), func(n *Node) {
		// Fake a two-processor history on a one-node test rig.
		n.vec = make([]int32, 2)
		n.records = make([][]*interval, 2)
		n.records[1] = []*interval{
			{proc: 1, idx: 1, vec: []int32{0, 0}, pages: []int{0}},
			{proc: 1, idx: 2, vec: []int32{5, 1}, pages: []int{0}},
		}
		if !n.intervalBefore(1, 1, 1, 2) {
			t.Error("same-processor intervals are ordered by index")
		}
		if !n.intervalBefore(0, 5, 1, 2) {
			t.Error("(0,5) precedes (1,2): rec(1,2).vec[0]=5 covers it")
		}
		if n.intervalBefore(0, 6, 1, 2) {
			t.Error("(0,6) is not covered by rec(1,2)")
		}
		if n.intervalBefore(0, 1, 1, 99) {
			t.Error("unknown record: incomparable")
		}
	})
}

func TestCollectNoticesHonoursPeerVector(t *testing.T) {
	newTestNode(t, diffImpl(), func(n *Node) {
		n.WriteI32(0, 1)
		n.closeInterval()
		n.WriteI32(0, 2)
		n.closeInterval()
		recs, size := n.collectNotices([]int32{1})
		if len(recs) != 1 || recs[0].idx != 2 {
			t.Errorf("records = %+v", recs)
		}
		if size != recs[0].wireSize() {
			t.Errorf("size = %d", size)
		}
		recs, _ = n.collectNotices([]int32{2})
		if len(recs) != 0 {
			t.Errorf("up-to-date peer got %+v", recs)
		}
	})
}
