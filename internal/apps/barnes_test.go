package apps

import (
	"math"
	"testing"

	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/run"
)

func TestBarnesAllImpls(t *testing.T) {
	testAllImpls(t, "Barnes-Hut", 4)
}

func TestBarnesSequential(t *testing.T) {
	app, _ := New("Barnes-Hut", Test)
	if _, err := run.RunSeq(app); err != nil {
		t.Fatal(err)
	}
}

func TestRefTreeMassConservation(t *testing.T) {
	a := newBarnes(Test)
	pos := make([][3]float64, a.m)
	mass := make([]float64, a.m)
	var total float64
	for i := range pos {
		pos[i], mass[i] = a.initPos(i)
		total += mass[i]
	}
	tree := buildRefTree(pos, mass)
	_, rootMass := tree.com(0)
	if math.Abs(rootMass-total) > 1e-12 {
		t.Errorf("root mass = %v, want %v", rootMass, total)
	}
}

func TestOctantAndChildCenter(t *testing.T) {
	center := [3]float64{0.5, 0.5, 0.5}
	if o := octant(center, [3]float64{0.1, 0.1, 0.1}); o != 0 {
		t.Errorf("low octant = %d", o)
	}
	if o := octant(center, [3]float64{0.9, 0.9, 0.9}); o != 7 {
		t.Errorf("high octant = %d", o)
	}
	cc := childCenter(center, 0.5, 7)
	if cc != [3]float64{0.75, 0.75, 0.75} {
		t.Errorf("childCenter = %v", cc)
	}
	cc = childCenter(center, 0.5, 0)
	if cc != [3]float64{0.25, 0.25, 0.25} {
		t.Errorf("childCenter(0) = %v", cc)
	}
}

func TestGravityPointsTowardMass(t *testing.T) {
	f := gravity([3]float64{0, 0, 0}, [3]float64{1, 0, 0}, 1)
	if f[0] <= 0 || f[1] != 0 || f[2] != 0 {
		t.Errorf("gravity = %v", f)
	}
	// Closer mass pulls harder.
	f2 := gravity([3]float64{0, 0, 0}, [3]float64{0.5, 0, 0}, 1)
	if f2[0] <= f[0] {
		t.Errorf("closer pull %v not stronger than %v", f2[0], f[0])
	}
}

// Barnes-Hut combines extra synchronization and prefetching in LRC's favour
// with false sharing in EC's favour; the first two dominate (§7.2): LRC
// sends fewer messages, EC moves less data.
func TestBarnesSectionEffects(t *testing.T) {
	lrcApp, _ := New("Barnes-Hut", Test)
	lrcRes, err := run.Run(lrcApp, core.Impl{Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}, 4, fabric.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	ecApp, _ := New("Barnes-Hut", Test)
	ecRes, err := run.Run(ecApp, core.Impl{Model: core.EC, Trap: core.Twinning, Collect: core.Timestamps}, 4, fabric.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if lrcRes.Stats.Msgs >= ecRes.Stats.Msgs {
		t.Errorf("LRC msgs = %d, EC msgs = %d: expected LRC < EC", lrcRes.Stats.Msgs, ecRes.Stats.Msgs)
	}
	// The paper's data-volume reversal (EC 9.5 MB < LRC 29.9 MB) needs
	// thousands of bodies before page-grain false sharing dominates; at
	// test scale the whole tree fits in a handful of pages, so only the
	// message-count relation is asserted here. EXPERIMENTS.md records the
	// paper-scale volumes.
}
