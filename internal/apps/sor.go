package apps

import (
	"fmt"
	"sync"

	"ecvslrc/internal/core"
	"ecvslrc/internal/ec"
	"ecvslrc/internal/lrc"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/run"
	"ecvslrc/internal/sim"
)

func init() {
	register("SOR", func(s Scale) run.App { return newSOR(s, false) })
	register("SOR+", func(s Scale) run.App { return newSOR(s, true) })
}

// sorPerElem is the CPU cost of one five-point stencil update, calibrated so
// the paper-size sequential run lands near Table 3's 86.10 s.
const sorPerElem = 1720 * sim.Nanosecond

// SOR solves a PDE by Red-Black Successive Over-Relaxation on a float32
// matrix whose four edges are constant. Each iteration has a red and a black
// phase separated by barriers; the matrix is divided into bands of
// consecutive rows, one band per processor, and communication occurs across
// band boundaries.
//
// Rows are laid out with all red elements first and all black elements next
// (the layout behind the paper's prefetch observation for LRC, Section 7.2).
//
// In the plus variant (SOR+) only the band-boundary rows are declared
// shared; interior rows live in private memory.
type SOR struct {
	plus       bool
	rows, cols int
	iters      int
	base       mem.Addr // full matrix (SOR) or boundary-row block (SOR+)
	// sharedOf[i] is row i's index in the shared boundary block, -1 when the
	// row is private (SOR+). A flat table: rowBase runs on every element
	// access of the stencil.
	sharedOf     []int32
	bandCounts   []int // processor counts whose band boundaries Layout pre-shares
	nShared      int
	stride       int // cached sharedStride (SOR+)
	expected     [][]float32
	priv         map[int][][]float32 // SOR+: per-processor private bands
	verifyGather bool
}

func newSOR(s Scale, plus bool) *SOR {
	a := &SOR{plus: plus, priv: make(map[int][][]float32)}
	switch s {
	case Test:
		a.rows, a.cols, a.iters = 48, 64, 4
	case Bench:
		a.rows, a.cols, a.iters = 256, 256, 8
	case Large:
		// 1024 interior rows: one full row per processor at 1024 procs,
		// narrow columns so the replicated per-node image stays small.
		a.rows, a.cols, a.iters = 1026, 64, 4
	default: // Paper: 1000x1000 floats (Table 2)
		a.rows, a.cols, a.iters = 1000, 1000, 50
	}
	// Band-boundary precompute set for SOR+'s Layout: the historical tiers
	// share boundaries for every processor count 1..64 (kept verbatim so the
	// shared-row numbering and the seed golden stay byte-identical); Large
	// additionally supports the power-of-two counts of the scaled machine.
	for p := 1; p <= 64; p++ {
		a.bandCounts = append(a.bandCounts, p)
	}
	if s == Large {
		a.bandCounts = append(a.bandCounts, 128, 256, 512, 1024)
	}
	a.sharedOf = make([]int32, a.rows)
	for i := range a.sharedOf {
		a.sharedOf[i] = -1
	}
	a.stride = a.sharedStride()
	return a
}

// Name implements run.App.
func (a *SOR) Name() string {
	if a.plus {
		return "SOR+"
	}
	return "SOR"
}

// rowBytes is the storage size of one row (red half then black half).
func (a *SOR) rowBytes() int { return a.cols * 4 }

// sharedStride is the spacing of rows inside SOR+'s boundary block. Shared
// rows belong to different processors and live pages apart in the real
// program's address space; packing them tightly would introduce artificial
// false sharing, so each shared row gets its own page(s).
func (a *SOR) sharedStride() int {
	pages := (a.rowBytes() + mem.PageSize - 1) / mem.PageSize
	return pages * mem.PageSize
}

// elemAddr returns the shared address of element (i,j) given the base
// address of row i's storage: red elements pack first, black second.
func (a *SOR) elemAddr(rowBase mem.Addr, i, j int) mem.Addr {
	nRed := (a.cols + 1 - i%2) / 2 // count of red (i+j even) elements in row i
	if (i+j)%2 == 0 {
		return rowBase + mem.Addr(4*(j/2))
	}
	return rowBase + mem.Addr(4*(nRed+j/2))
}

// redRange and blackRange give the two color halves of a row's storage.
func (a *SOR) redRange(rowBase mem.Addr, i int) mem.Range {
	nRed := (a.cols + 1 - i%2) / 2
	return mem.Range{Base: rowBase, Len: 4 * nRed}
}

func (a *SOR) blackRange(rowBase mem.Addr, i int) mem.Range {
	nRed := (a.cols + 1 - i%2) / 2
	return mem.Range{Base: rowBase + mem.Addr(4*nRed), Len: 4 * (a.cols - nRed)}
}

// rowBase returns the shared base address of row i, or -1 if the row is
// private (SOR+ interior rows).
func (a *SOR) rowBase(i int) mem.Addr {
	if !a.plus {
		return a.base + mem.Addr(i*a.rowBytes())
	}
	if idx := a.sharedOf[i]; idx >= 0 {
		return a.base + mem.Addr(int(idx)*a.stride)
	}
	return -1
}

// Layout implements run.App.
func (a *SOR) Layout(al *mem.Allocator) {
	if !a.plus {
		a.base = al.Alloc("matrix", a.rows*a.rowBytes(), 4)
		return
	}
	// SOR+ shares only the band-boundary rows. The band split must match
	// Program's; it depends only on row count and processor count, so we
	// precompute for every plausible processor count by sharing the first
	// and last row of every band (1..64 everywhere; Large adds the scaled
	// machine's power-of-two counts — see newSOR). Redundant rows collapse
	// via the map.
	for _, p := range a.bandCounts {
		for q := 0; q < p; q++ {
			lo, hi := band(a.rows-2, p, q)
			for _, r := range []int{lo + 1, hi} {
				if r >= 1 && r <= a.rows-2 && a.sharedOf[r] < 0 {
					a.sharedOf[r] = int32(a.nShared)
					a.nShared++
				}
			}
		}
	}
	a.base = al.Alloc("boundary-rows", a.nShared*a.stride, 4)
}

// initValue gives the deterministic nonzero initial matrix (internal
// elements change on every iteration, as the paper arranged for a fair
// trapping comparison).
func (a *SOR) initValue(i, j int) float32 {
	if i == 0 || j == 0 || i == a.rows-1 || j == a.cols-1 {
		return float32(100 + (i+j)%7) // constant edges
	}
	return float32(1 + (i*31+j*17)%23)
}

// sorRefCache memoizes the sequential reference solution per problem size:
// it is a pure function of (rows, cols, iters) and every cell of a table
// sweep re-solves the same instance otherwise.
var sorRefCache sync.Map // [3]int{rows, cols, iters} -> [][]float32

// Init implements run.App: it seeds the shared rows and precomputes the
// expected result with a plain sequential solver.
func (a *SOR) Init(im *mem.Image) {
	for i := 0; i < a.rows; i++ {
		base := a.rowBase(i)
		if base < 0 {
			continue
		}
		for j := 0; j < a.cols; j++ {
			im.WriteF32(a.elemAddr(base, i, j), a.initValue(i, j))
		}
	}
	a.InitRef()
}

// InitRef implements run.RefInit: adopt the memoized sequential solution
// without re-seeding an image.
func (a *SOR) InitRef() {
	key := [3]int{a.rows, a.cols, a.iters}
	if ref, ok := sorRefCache.Load(key); ok {
		a.expected = ref.([][]float32)
		return
	}
	// Sequential reference.
	m := make([][]float32, a.rows)
	for i := range m {
		m[i] = make([]float32, a.cols)
		for j := range m[i] {
			m[i][j] = a.initValue(i, j)
		}
	}
	for it := 0; it < a.iters; it++ {
		for color := 0; color < 2; color++ {
			for i := 1; i < a.rows-1; i++ {
				for j := 1; j < a.cols-1; j++ {
					if (i+j)%2 == color {
						m[i][j] = (m[i-1][j] + m[i+1][j] + m[i][j-1] + m[i][j+1]) / 4
					}
				}
			}
		}
	}
	a.expected = m
	sorRefCache.Store(key, m)
}

// lock ids: per (row, color).
func (a *SOR) lockOf(row, color int) core.LockID { return core.LockID(1 + 2*row + color) }

// Program implements run.App: the interface-adapter entry of sorProgram —
// the same generic kernel the statically-dispatched entries run.
func (a *SOR) Program(d core.DSM) { sorProgram(a, d) }

// ProgramLRC implements run.StaticApp: sorProgram instantiated at *lrc.Node.
func (a *SOR) ProgramLRC(n *lrc.Node) { sorProgram(a, n) }

// ProgramEC implements run.StaticApp: sorProgram instantiated at *ec.Node.
func (a *SOR) ProgramEC(n *ec.Node) { sorProgram(a, n) }

// ProgramSeq implements run.StaticApp: sorProgram instantiated at *run.Local.
func (a *SOR) ProgramSeq(l *run.Local) { sorProgram(a, l) }

// sorProgram is the per-processor program as a generic kernel: one source,
// statically instantiated per protocol stack.
func sorProgram[D core.Accessor](a *SOR, d D) {
	ec := d.Model() == core.EC
	np := d.NProcs()
	me := d.Proc()
	lo, hi := band(a.rows-2, np, me)
	lo, hi = lo+1, hi+1 // interior rows [lo, hi)

	if ec {
		// Bindings are static program declarations: every processor issues
		// the identical full set (lock managers must know them too).
		for i := 1; i < a.rows-1; i++ {
			if base := a.rowBase(i); base >= 0 {
				d.Bind(a.lockOf(i, 0), a.redRange(base, i))
				d.Bind(a.lockOf(i, 1), a.blackRange(base, i))
			}
		}
	}

	// SOR+: private band storage, rows [lo-1, hi] inclusive halo.
	var pm [][]float32
	if a.plus {
		pm = make([][]float32, a.rows)
		for i := lo - 1; i <= hi; i++ {
			pm[i] = make([]float32, a.cols)
			for j := 0; j < a.cols; j++ {
				pm[i][j] = a.initValue(i, j)
			}
		}
		a.priv[me] = pm
	}

	get := func(i, j int) float32 {
		if a.plus {
			if base := a.rowBase(i); base >= 0 && (i < lo || i >= hi) {
				return d.ReadF32(a.elemAddr(base, i, j))
			}
			return pm[i][j]
		}
		return d.ReadF32(a.elemAddr(a.rowBase(i), i, j))
	}
	put := func(i, j int, v float32) {
		if a.plus {
			pm[i][j] = v
			if base := a.rowBase(i); base >= 0 {
				d.WriteF32(a.elemAddr(base, i, j), v)
			}
			return
		}
		d.WriteF32(a.elemAddr(a.rowBase(i), i, j), v)
	}

	barrier := core.BarrierID(0)
	for it := 0; it < a.iters; it++ {
		for color := 0; color < 2; color++ {
			if ec {
				// Read-only locks on the neighbours' boundary rows (the
				// other colour is read), exclusive locks on own rows.
				for _, i := range []int{lo - 1, hi} {
					if i >= 1 && i <= a.rows-2 && (i < lo || i >= hi) && a.rowBase(i) >= 0 {
						d.AcquireRead(a.lockOf(i, 1-color))
					}
				}
				for i := lo; i < hi; i++ {
					if a.rowBase(i) >= 0 {
						d.Acquire(a.lockOf(i, color))
					}
				}
			}
			for i := lo; i < hi; i++ {
				j0 := 1
				if (i+j0)%2 != color {
					j0 = 2
				}
				switch {
				case !a.plus:
					// Every access hits shared memory; the five addresses
					// advance by one word per stencil step, so compute them
					// once per row instead of re-deriving per element
					// (identical addresses, identical access order).
					rowB := a.rowBytes()
					rbU := a.base + mem.Addr((i-1)*rowB)
					rbD := a.base + mem.Addr((i+1)*rowB)
					rbI := a.base + mem.Addr(i*rowB)
					nRedU := (a.cols + 1 - (i-1)%2) / 2
					nRedD := (a.cols + 1 - (i+1)%2) / 2
					nRedI := (a.cols + 1 - i%2) / 2
					var up, dn, lf, rt, self mem.Addr
					if color == 1 { // neighbours are red, the written cell black
						up = rbU + mem.Addr(4*(j0/2))
						dn = rbD + mem.Addr(4*(j0/2))
						lf = rbI + mem.Addr(4*((j0-1)/2))
						rt = rbI + mem.Addr(4*((j0+1)/2))
						self = rbI + mem.Addr(4*(nRedI+j0/2))
					} else { // neighbours are black, the written cell red
						up = rbU + mem.Addr(4*(nRedU+j0/2))
						dn = rbD + mem.Addr(4*(nRedD+j0/2))
						lf = rbI + mem.Addr(4*(nRedI+(j0-1)/2))
						rt = rbI + mem.Addr(4*(nRedI+(j0+1)/2))
						self = rbI + mem.Addr(4*(j0/2))
					}
					for j := j0; j < a.cols-1; j += 2 {
						v := (d.ReadF32(up) + d.ReadF32(dn) + d.ReadF32(lf) + d.ReadF32(rt)) / 4
						d.WriteF32(self, v)
						up += 4
						dn += 4
						lf += 4
						rt += 4
						self += 4
					}
				case i > lo && i < hi-1:
					// SOR+ interior row: all four neighbours are in-band and
					// private, so only the write may touch shared memory.
					for j := j0; j < a.cols-1; j += 2 {
						v := (pm[i-1][j] + pm[i+1][j] + pm[i][j-1] + pm[i][j+1]) / 4
						put(i, j, v)
					}
				default:
					for j := j0; j < a.cols-1; j += 2 {
						v := (get(i-1, j) + get(i+1, j) + get(i, j-1) + get(i, j+1)) / 4
						put(i, j, v)
					}
				}
				d.Compute(sim.Time(a.cols/2) * sorPerElem)
			}
			if ec {
				for i := lo; i < hi; i++ {
					if a.rowBase(i) >= 0 {
						d.Release(a.lockOf(i, color))
					}
				}
				for _, i := range []int{lo - 1, hi} {
					if i >= 1 && i <= a.rows-2 && (i < lo || i >= hi) && a.rowBase(i) >= 0 {
						d.Release(a.lockOf(i, 1-color))
					}
				}
			}
			d.Barrier(barrier)
		}
	}
	d.StatsEnd()

	// Verify own band against the reference; gather shared rows to proc 0.
	for i := lo; i < hi; i++ {
		for j := 1; j < a.cols-1; j++ {
			var got float32
			if a.plus {
				got = pm[i][j]
			} else {
				got = d.ReadF32(a.elemAddr(a.rowBase(i), i, j))
			}
			if got != a.expected[i][j] {
				panic(fmt.Sprintf("%s: proc %d: m[%d][%d] = %v, want %v", a.Name(), me, i, j, got, a.expected[i][j]))
			}
		}
	}
	d.Barrier(1)
	if me == 0 {
		for i := 1; i < a.rows-1; i++ {
			base := a.rowBase(i)
			if base < 0 {
				continue
			}
			if ec {
				d.AcquireRead(a.lockOf(i, 0))
				d.AcquireRead(a.lockOf(i, 1))
			}
			for j := 1; j < a.cols-1; j++ {
				_ = d.ReadF32(a.elemAddr(base, i, j))
			}
			if ec {
				d.Release(a.lockOf(i, 0))
				d.Release(a.lockOf(i, 1))
			}
		}
	}
}

// Verify implements run.App: checks every shared row in processor 0's image.
func (a *SOR) Verify(im *mem.Image) error {
	for i := 1; i < a.rows-1; i++ {
		base := a.rowBase(i)
		if base < 0 {
			continue
		}
		for j := 1; j < a.cols-1; j++ {
			got := im.ReadF32(a.elemAddr(base, i, j))
			if got != a.expected[i][j] {
				return fmt.Errorf("%s: m[%d][%d] = %v, want %v", a.Name(), i, j, got, a.expected[i][j])
			}
		}
	}
	return nil
}
