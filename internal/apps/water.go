package apps

import (
	"fmt"
	"math"
	"sync"

	"ecvslrc/internal/core"
	"ecvslrc/internal/ec"
	"ecvslrc/internal/lrc"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/run"
	"ecvslrc/internal/sim"
)

func init() {
	register("Water", func(s Scale) run.App { return newWater(s, false) })
	register("Water-split", func(s Scale) run.App { return newWater(s, true) })
}

// waterPerPair is the CPU cost of one pairwise interaction, calibrated so
// 343 molecules x 5 steps lands near Table 3's 61.21 s sequential time.
const waterPerPair = 208 * sim.Microsecond

// molBytes is the per-molecule record size. The SPLASH Water molecule record
// holds positions, forces and higher-order derivatives for all atom sites
// (several hundred bytes); we keep the displacement and force vectors live
// and pad to the realistic record size, which determines how many molecules
// share a page. Water traps writes at 8-byte granularity (Section 8.1).
const molBytes = 512

// Water is the SPLASH molecular-dynamics kernel's sharing skeleton with a
// simplified pairwise force law. Each timestep has a force-computation phase
// (each processor interacts its molecules with those of half the other
// processors, accumulating updates locally and applying them under
// per-molecule locks) and a displacement phase (owners update their own
// molecules), separated by barriers (Section 2).
//
// In the split variant the displacements are reorganized into a separate
// array with one per-processor lock over each owner's chunk, giving EC the
// prefetch-like effect discussed at the end of Section 7.2.
type Water struct {
	split  bool
	m      int // molecules
	steps  int
	mols   mem.Addr
	disp   mem.Addr // split variant: separate displacement array
	nprocs int

	expDisp  [][3]float64
	expForce [][3]float64
}

func newWater(s Scale, split bool) *Water {
	a := &Water{split: split}
	switch s {
	case Test:
		a.m, a.steps = 37, 2
	case Bench:
		a.m, a.steps = 125, 3
	case Large:
		// One molecule per processor at 1024 procs; the O(m^2/2) pair phase
		// still gives every processor real work at 256.
		a.m, a.steps = 1024, 2
	default: // Paper: 343 molecules, 5 iterations (Table 2)
		a.m, a.steps = 343, 5
	}
	return a
}

// Name implements run.App.
func (a *Water) Name() string {
	if a.split {
		return "Water-split"
	}
	return "Water"
}

// Layout implements run.App.
func (a *Water) Layout(al *mem.Allocator) {
	if a.split {
		a.disp = al.Alloc("displacements", a.m*24, 8)
		a.mols = al.Alloc("forces", a.m*32, 8)
		return
	}
	a.mols = al.Alloc("molecules", a.m*molBytes, 8)
}

func (a *Water) dispAddr(i, c int) mem.Addr {
	if a.split {
		return a.disp + mem.Addr(24*i+8*c)
	}
	return a.mols + mem.Addr(molBytes*i+8*c)
}

func (a *Water) forceAddr(i, c int) mem.Addr {
	if a.split {
		return a.mols + mem.Addr(32*i+8*c)
	}
	return a.mols + mem.Addr(molBytes*i+24+8*c)
}

func (a *Water) initDisp(i int) [3]float64 {
	rng := newLCG(uint64(7777 + i))
	return [3]float64{rng.f64(), rng.f64(), rng.f64()}
}

// Init implements run.App: deterministic initial positions, zero forces,
// plus the sequential reference trajectory.
func (a *Water) Init(im *mem.Image) {
	for i := 0; i < a.m; i++ {
		d := a.initDisp(i)
		for c := 0; c < 3; c++ {
			im.WriteF64(a.dispAddr(i, c), d[c])
		}
	}
	a.InitRef()
}

// InitRef implements run.RefInit: adopt the memoized sequential reference
// trajectory without re-seeding an image.
func (a *Water) InitRef() {
	key := [2]int{a.m, a.steps}
	if ref, ok := waterRefCache.Load(key); ok {
		r := ref.(*waterRef)
		a.expDisp, a.expForce = r.disp, r.force
		return
	}
	disp := make([][3]float64, a.m)
	force := make([][3]float64, a.m)
	for i := range disp {
		disp[i] = a.initDisp(i)
	}
	for s := 0; s < a.steps; s++ {
		acc := make([][3]float64, a.m)
		for i := 0; i < a.m; i++ {
			for w := 1; w <= a.m/2; w++ {
				j := (i + w) % a.m
				f := pairForce(disp[i], disp[j])
				for c := 0; c < 3; c++ {
					acc[i][c] += f[c]
					acc[j][c] -= f[c]
				}
			}
		}
		for i := 0; i < a.m; i++ {
			for c := 0; c < 3; c++ {
				force[i][c] = acc[i][c]
				disp[i][c] += 0.001 * force[i][c]
			}
		}
	}
	a.expDisp, a.expForce = disp, force
	waterRefCache.Store(key, &waterRef{disp: disp, force: force})
}

// waterRef memoizes the sequential reference trajectory per problem size:
// it is a pure function of (molecules, steps).
type waterRef struct {
	disp, force [][3]float64
}

var waterRefCache sync.Map // [2]int{m, steps} -> *waterRef

// pairForce is the simplified interaction: a clipped inverse-square pull.
func pairForce(di, dj [3]float64) [3]float64 {
	var r [3]float64
	var r2 float64
	for c := 0; c < 3; c++ {
		r[c] = dj[c] - di[c]
		r2 += r[c] * r[c]
	}
	s := 1.0 / (r2 + 0.05)
	var f [3]float64
	for c := 0; c < 3; c++ {
		f[c] = s * r[c]
	}
	return f
}

// Lock layout: per-molecule locks 1..m; split variant adds per-processor
// displacement-chunk locks after them.
func (a *Water) molLock(i int) core.LockID       { return core.LockID(1 + i) }
func (a *Water) dispChunkLock(p int) core.LockID { return core.LockID(1 + a.m + p) }

// Program implements run.App: the interface-adapter entry of waterProgram —
// the same generic kernel the statically-dispatched entries run.
func (a *Water) Program(d core.DSM) { waterProgram(a, d) }

// ProgramLRC implements run.StaticApp: waterProgram instantiated at *lrc.Node.
func (a *Water) ProgramLRC(n *lrc.Node) { waterProgram(a, n) }

// ProgramEC implements run.StaticApp: waterProgram instantiated at *ec.Node.
func (a *Water) ProgramEC(n *ec.Node) { waterProgram(a, n) }

// ProgramSeq implements run.StaticApp: waterProgram instantiated at *run.Local.
func (a *Water) ProgramSeq(l *run.Local) { waterProgram(a, l) }

// waterProgram is the per-processor program as a generic kernel: one source,
// statically instantiated per protocol stack.
func waterProgram[D core.Accessor](a *Water, d D) {
	ec := d.Model() == core.EC
	np := d.NProcs()
	me := d.Proc()
	a.nprocs = np
	lo, hi := band(a.m, np, me)
	owner := func(i int) int {
		for p := 0; p < np; p++ {
			l, h := band(a.m, np, p)
			if i >= l && i < h {
				return p
			}
		}
		return 0
	}

	if ec {
		for i := 0; i < a.m; i++ {
			if a.split {
				d.Bind(a.molLock(i), mem.Range{Base: a.forceAddr(i, 0), Len: 24})
			} else {
				d.Bind(a.molLock(i), mem.Range{Base: a.mols + mem.Addr(molBytes*i), Len: 48})
			}
		}
		if a.split {
			for p := 0; p < np; p++ {
				l, h := band(a.m, np, p)
				if h > l {
					d.Bind(a.dispChunkLock(p), mem.Range{Base: a.dispAddr(l, 0), Len: 24 * (h - l)})
				}
			}
		}
	}

	readDisp := func(i int) [3]float64 {
		return [3]float64{d.ReadF64(a.dispAddr(i, 0)), d.ReadF64(a.dispAddr(i, 1)), d.ReadF64(a.dispAddr(i, 2))}
	}

	for s := 0; s < a.steps; s++ {
		// Force computation phase: accumulate locally, then apply under
		// per-molecule locks (the SPLASH report's optimization). Flat
		// accumulators: bump runs once per pairwise interaction.
		acc := make([][3]float64, a.m)
		touched := make([]bool, a.m)
		bump := func(i int, f [3]float64, sign float64) {
			touched[i] = true
			for c := 0; c < 3; c++ {
				acc[i][c] += sign * f[c]
			}
		}
		// EC: read-only locks on the displacements of molecules read in
		// this phase, one acquire per molecule per phase. The acquisition
		// order is tracked in a slice so releases stay deterministic.
		readLocked := map[core.LockID]bool{}
		var readOrder []core.LockID
		lockDisp := func(i int) {
			if !ec {
				return
			}
			var l core.LockID
			if a.split {
				l = a.dispChunkLock(owner(i))
			} else {
				l = a.molLock(i)
			}
			if !readLocked[l] && owner(i) != me {
				d.AcquireRead(l)
				readLocked[l] = true
				readOrder = append(readOrder, l)
			}
		}
		for i := lo; i < hi; i++ {
			for w := 1; w <= a.m/2; w++ {
				j := (i + w) % a.m
				lockDisp(j)
				f := pairForce(readDisp(i), readDisp(j))
				bump(i, f, 1)
				bump(j, f, -1)
				d.Compute(waterPerPair)
			}
		}
		for _, l := range readOrder {
			d.Release(l)
		}
		// Apply accumulated force updates under per-molecule locks (both
		// models: the lock is part of the sequentially consistent program).
		for i := 0; i < a.m; i++ {
			if !touched[i] {
				continue
			}
			v := &acc[i]
			d.Acquire(a.molLock(i))
			for c := 0; c < 3; c++ {
				d.WriteF64(a.forceAddr(i, c), d.ReadF64(a.forceAddr(i, c))+v[c])
			}
			d.Release(a.molLock(i))
		}
		d.Barrier(0)

		// Displacement phase: owners update their own molecules. LRC needs
		// no locks; EC takes exclusive per-molecule locks (and the split
		// variant holds its own displacement-chunk lock).
		if ec && a.split && hi > lo {
			d.Acquire(a.dispChunkLock(me))
		}
		for i := lo; i < hi; i++ {
			if ec {
				d.Acquire(a.molLock(i))
			}
			for c := 0; c < 3; c++ {
				f := d.ReadF64(a.forceAddr(i, c))
				d.WriteF64(a.dispAddr(i, c), d.ReadF64(a.dispAddr(i, c))+0.001*f)
				if s < a.steps-1 {
					d.WriteF64(a.forceAddr(i, c), 0)
				}
			}
			d.Compute(2 * sim.Microsecond)
			if ec {
				d.Release(a.molLock(i))
			}
		}
		if ec && a.split && hi > lo {
			d.Release(a.dispChunkLock(me))
		}
		d.Barrier(1)
	}
	d.StatsEnd()

	// Gather for verification.
	if me == 0 {
		for i := 0; i < a.m; i++ {
			if ec {
				d.AcquireRead(a.molLock(i))
				if a.split {
					d.AcquireRead(a.dispChunkLock(owner(i)))
				}
			}
			for c := 0; c < 3; c++ {
				_ = d.ReadF64(a.dispAddr(i, c))
				_ = d.ReadF64(a.forceAddr(i, c))
			}
			if ec {
				d.Release(a.molLock(i))
				if a.split {
					d.Release(a.dispChunkLock(owner(i)))
				}
			}
		}
	}
}

// Verify implements run.App: compare against the sequential trajectory with
// a tolerance for the parallel force-accumulation order.
func (a *Water) Verify(im *mem.Image) error {
	const tol = 1e-9
	for i := 0; i < a.m; i++ {
		for c := 0; c < 3; c++ {
			got := im.ReadF64(a.dispAddr(i, c))
			want := a.expDisp[i][c]
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				return fmt.Errorf("Water: disp[%d][%d] = %v, want %v", i, c, got, want)
			}
			gotF := im.ReadF64(a.forceAddr(i, c))
			wantF := a.expForce[i][c]
			if math.Abs(gotF-wantF) > tol*(1+math.Abs(wantF)) {
				return fmt.Errorf("Water: force[%d][%d] = %v, want %v", i, c, gotF, wantF)
			}
		}
	}
	return nil
}
