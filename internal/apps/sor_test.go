package apps

import (
	"testing"

	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/run"
)

func testAllImpls(t *testing.T, name string, nprocs int) map[string]run.Result {
	t.Helper()
	out := map[string]run.Result{}
	for _, impl := range core.Implementations() {
		impl := impl
		t.Run(impl.String(), func(t *testing.T) {
			app, err := New(name, Test)
			if err != nil {
				t.Fatal(err)
			}
			res, err := run.Run(app, impl, nprocs, fabric.DefaultCostModel())
			if err != nil {
				t.Fatal(err)
			}
			out[impl.String()] = res
		})
	}
	return out
}

func TestSORAllImpls(t *testing.T) {
	res := testAllImpls(t, "SOR", 4)
	if r, ok := res["LRC-diff"]; ok && r.Stats.Msgs == 0 {
		t.Error("SOR on LRC should communicate")
	}
}

func TestSORPlusAllImpls(t *testing.T) {
	testAllImpls(t, "SOR+", 4)
}

func TestSORSequential(t *testing.T) {
	app, err := New("SOR", Test)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := run.RunSeq(app)
	if err != nil {
		t.Fatal(err)
	}
	if tm <= 0 {
		t.Error("sequential time should be positive")
	}
}

func TestSORElementLayout(t *testing.T) {
	a := newSOR(Test, false)
	// Row 0 (even): red elements at even j. cols=64 -> 32 red, 32 black.
	if got := a.elemAddr(0, 0, 0); got != 0 {
		t.Errorf("(0,0) -> %d", got)
	}
	if got := a.elemAddr(0, 0, 2); got != 4 {
		t.Errorf("(0,2) -> %d", got)
	}
	if got := a.elemAddr(0, 0, 1); got != 32*4 {
		t.Errorf("(0,1) black must follow the red half: %d", got)
	}
	// Row 1 (odd): red elements at odd j.
	if got := a.elemAddr(0, 1, 1); got != 0 {
		t.Errorf("(1,1) -> %d", got)
	}
	if got := a.elemAddr(0, 1, 0); got != 32*4 {
		t.Errorf("(1,0) -> %d", got)
	}
}

// The paper's prefetch observation: under LRC-diff, fetching the red part of
// a boundary row also brings the black part on the same page, so SOR's LRC
// message count stays below EC's (6936 vs 10498 in Section 7.2).
func TestSORLRCFewerMessagesThanEC(t *testing.T) {
	lrcApp, _ := New("SOR", Test)
	lrcRes, err := run.Run(lrcApp, core.Impl{Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}, 4, fabric.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	ecApp, _ := New("SOR", Test)
	ecRes, err := run.Run(ecApp, core.Impl{Model: core.EC, Trap: core.Twinning, Collect: core.Timestamps}, 4, fabric.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if lrcRes.Stats.Msgs >= ecRes.Stats.Msgs {
		t.Errorf("LRC msgs = %d, EC msgs = %d: expected LRC < EC (prefetch effect)",
			lrcRes.Stats.Msgs, ecRes.Stats.Msgs)
	}
}
