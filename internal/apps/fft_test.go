package apps

import (
	"math"
	"math/cmplx"
	"testing"

	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/run"
)

func TestFFT1DKnownValues(t *testing.T) {
	// FFT of a constant signal concentrates everything in bin 0.
	x := make([]complex128, 8)
	for i := range x {
		x[i] = 1
	}
	fft1d(x)
	if x[0] != 8 {
		t.Errorf("bin 0 = %v, want 8", x[0])
	}
	for i := 1; i < 8; i++ {
		if cmplx.Abs(x[i]) > 1e-12 {
			t.Errorf("bin %d = %v, want 0", i, x[i])
		}
	}
	// FFT of a unit impulse is flat.
	y := make([]complex128, 8)
	y[0] = 1
	fft1d(y)
	for i := range y {
		if cmplx.Abs(y[i]-1) > 1e-12 {
			t.Errorf("impulse bin %d = %v, want 1", i, y[i])
		}
	}
}

func TestFFT1DParseval(t *testing.T) {
	rng := newLCG(5)
	n := 64
	x := make([]complex128, n)
	var inPower float64
	for i := range x {
		x[i] = complex(rng.f64()-0.5, rng.f64()-0.5)
		inPower += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	fft1d(x)
	var outPower float64
	for i := range x {
		outPower += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	if math.Abs(outPower-float64(n)*inPower) > 1e-9*outPower {
		t.Errorf("Parseval violated: out=%v, n*in=%v", outPower, float64(n)*inPower)
	}
}

func TestFFTFlops(t *testing.T) {
	if fftFlops(8) != 5*8*3 {
		t.Errorf("fftFlops(8) = %d", fftFlops(8))
	}
}

func TestFFTAllImpls(t *testing.T) {
	testAllImpls(t, "3D-FFT", 4)
}

func TestFFTSequential(t *testing.T) {
	app, _ := New("3D-FFT", Test)
	if _, err := run.RunSeq(app); err != nil {
		t.Fatal(err)
	}
}

// Section 8.1's granularity claim: with 8-byte blocks the write-collection
// scan halves relative to word granularity, so EC-ci at double-word
// granularity must not be slower than the word-granularity variant (and the
// scan accounting must show fewer timestamp runs or equal).
func TestFFTGranularityAblation(t *testing.T) {
	run8, _ := New("3D-FFT", Test)
	r8, err := run.Run(run8, core.Impl{Model: core.EC, Trap: core.CompilerInstr, Collect: core.Timestamps}, 4, fabric.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	run4, _ := New("3D-FFT-w4", Test)
	r4, err := run.Run(run4, core.Impl{Model: core.EC, Trap: core.CompilerInstr, Collect: core.Timestamps}, 4, fabric.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if r8.Stats.Time > r4.Stats.Time {
		t.Errorf("8-byte blocks (%v) slower than 4-byte (%v)", r8.Stats.Time, r4.Stats.Time)
	}
}

// The 3D-FFT result of Section 7.2: EC's update protocol ships each
// eight-page transpose block in one exchange, while LRC's invalidate
// protocol faults page by page (2517 vs 7175 messages), so EC wins.
func TestFFTECFewerMessagesThanLRC(t *testing.T) {
	ecApp, _ := New("3D-FFT", Test)
	ecRes, err := run.Run(ecApp, core.Impl{Model: core.EC, Trap: core.CompilerInstr, Collect: core.Timestamps}, 4, fabric.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	lrcApp, _ := New("3D-FFT", Test)
	lrcRes, err := run.Run(lrcApp, core.Impl{Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}, 4, fabric.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if ecRes.Stats.Msgs >= lrcRes.Stats.Msgs {
		t.Errorf("EC msgs = %d, LRC msgs = %d: expected EC < LRC (update protocol)",
			ecRes.Stats.Msgs, lrcRes.Stats.Msgs)
	}
	if ecRes.Stats.Time >= lrcRes.Stats.Time {
		t.Errorf("EC time = %v, LRC time = %v: expected EC faster (Table 3 shape)",
			ecRes.Stats.Time, lrcRes.Stats.Time)
	}
}
