package apps

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"

	"ecvslrc/internal/core"
	"ecvslrc/internal/ec"
	"ecvslrc/internal/lrc"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/run"
	"ecvslrc/internal/sim"
)

func init() {
	register("3D-FFT", func(s Scale) run.App { return newFFT(s) })
	// Granularity ablation (Section 8.1): the same program trapped at
	// single-word granularity, doubling the dirty bits scanned during write
	// collection. "Compiler instrumentation pays off in EC only when the
	// granularity of sharing is greater than a word."
	register("3D-FFT-w4", func(s Scale) run.App { f := newFFT(s); f.block = 4; return f })
}

// fftPerFlop is the CPU cost of one butterfly flop, calibrated so the
// paper-size run lands near Table 3's 39.82 s sequential time.
const fftPerFlop = 640 * sim.Nanosecond

// FFT is the NAS 3D-FFT benchmark skeleton: an n1 x n2 x n3 complex array
// distributed along the first dimension. Each iteration performs 1-D FFTs
// along dimension 3 and dimension 2 (both local), a barrier, then a
// transpose into a duplicate array (each processor reads 1/P of its data
// from every other processor) followed by the dimension-1 FFTs (Section 2).
//
// The transposed blocks read from each peer are non-contiguous in memory, so
// the EC program binds multiple ranges to a single lock; the block bound to
// one lock spans eight pages at paper scale, making EC's update protocol
// fetch all eight pages in one exchange where LRC's invalidate protocol
// takes one page fault each (Section 7.2). Memory is duplicated rather than
// rebound, as the paper's program chose.
type FFT struct {
	n1, n2, n3 int
	iters      int
	block      int      // trapping granularity: 8 (double-word, the paper's) or 4
	a, b       mem.Addr // the array and its transpose-duplicate
	nprocs     int
	expected   []complex128
}

func newFFT(s Scale) *FFT {
	f := &FFT{block: 8}
	switch s {
	case Test:
		f.n1, f.n2, f.n3, f.iters = 16, 16, 32, 2
	case Bench:
		f.n1, f.n2, f.n3, f.iters = 32, 32, 32, 3
	case Large:
		// The kernel bands both n1 and n2, so only min(n1,n2) processors get
		// work: past 64 procs 3D-FFT saturates by construction — a documented
		// scaling finding (the transpose, not the butterflies, is the wall).
		f.n1, f.n2, f.n3, f.iters = 64, 64, 8, 2
	default: // Paper: 64x64x32 (Table 2)
		f.n1, f.n2, f.n3, f.iters = 64, 64, 32, 6
	}
	return f
}

// Name implements run.App.
func (f *FFT) Name() string {
	if f.block == 4 {
		return "3D-FFT-w4"
	}
	return "3D-FFT"
}

func (f *FFT) elems() int { return f.n1 * f.n2 * f.n3 }

// Layout implements run.App: two arrays of complex128 (16 bytes each),
// trapped at double-word granularity.
func (f *FFT) Layout(al *mem.Allocator) {
	f.a = al.Alloc("A", f.elems()*16, f.block)
	f.b = al.Alloc("B", f.elems()*16, f.block)
}

// addrA is the address of A[i][j][k] (row-major).
func (f *FFT) addrA(i, j, k int) mem.Addr {
	return f.a + mem.Addr(16*((i*f.n2+j)*f.n3+k))
}

// addrB is the address of B[j][i][k]: B is A transposed in dims 1<->2,
// distributed along j.
func (f *FFT) addrB(j, i, k int) mem.Addr {
	return f.b + mem.Addr(16*((j*f.n1+i)*f.n3+k))
}

func (f *FFT) initValue(i, j, k int) complex128 {
	rng := newLCG(uint64(i*1000003 + j*1009 + k))
	return complex(rng.f64()-0.5, rng.f64()-0.5)
}

// Init implements run.App: seed A and compute the sequential reference of
// the full iteration pipeline.
func (f *FFT) Init(im *mem.Image) {
	for i := 0; i < f.n1; i++ {
		for j := 0; j < f.n2; j++ {
			for k := 0; k < f.n3; k++ {
				v := f.initValue(i, j, k)
				im.WriteF64(f.addrA(i, j, k), real(v))
				im.WriteF64(f.addrA(i, j, k)+8, imag(v))
			}
		}
	}
	f.InitRef()
}

// InitRef implements run.RefInit: adopt the sequential reference (plain Go,
// identical operation order), memoized per problem size — every cell of a
// table sweep re-solves the same instance otherwise.
func (f *FFT) InitRef() {
	key := [4]int{f.n1, f.n2, f.n3, f.iters}
	if ref, ok := fftRefCache.Load(key); ok {
		f.expected = ref.([]complex128)
		return
	}
	a := make([]complex128, f.elems())
	b := make([]complex128, f.elems())
	idxA := func(i, j, k int) int { return (i*f.n2+j)*f.n3 + k }
	idxB := func(j, i, k int) int { return (j*f.n1+i)*f.n3 + k }
	for i := 0; i < f.n1; i++ {
		for j := 0; j < f.n2; j++ {
			for k := 0; k < f.n3; k++ {
				a[idxA(i, j, k)] = f.initValue(i, j, k)
			}
		}
	}
	buf := make([]complex128, maxInt(f.n1, maxInt(f.n2, f.n3)))
	for it := 0; it < f.iters; it++ {
		for i := 0; i < f.n1; i++ {
			for j := 0; j < f.n2; j++ {
				for k := 0; k < f.n3; k++ {
					buf[k] = a[idxA(i, j, k)]
				}
				fft1d(buf[:f.n3])
				for k := 0; k < f.n3; k++ {
					a[idxA(i, j, k)] = buf[k]
				}
			}
			for k := 0; k < f.n3; k++ {
				for j := 0; j < f.n2; j++ {
					buf[j] = a[idxA(i, j, k)]
				}
				fft1d(buf[:f.n2])
				for j := 0; j < f.n2; j++ {
					a[idxA(i, j, k)] = buf[j]
				}
			}
		}
		for j := 0; j < f.n2; j++ {
			for i := 0; i < f.n1; i++ {
				for k := 0; k < f.n3; k++ {
					b[idxB(j, i, k)] = a[idxA(i, j, k)]
				}
			}
			for k := 0; k < f.n3; k++ {
				for i := 0; i < f.n1; i++ {
					buf[i] = b[idxB(j, i, k)]
				}
				fft1d(buf[:f.n1])
				for i := 0; i < f.n1; i++ {
					b[idxB(j, i, k)] = buf[i]
				}
			}
		}
		// Feed back (scaled) for the next iteration, keeping values bounded.
		if it < f.iters-1 {
			scale := complex(1/float64(f.elems()), 0)
			for i := 0; i < f.n1; i++ {
				for j := 0; j < f.n2; j++ {
					for k := 0; k < f.n3; k++ {
						a[idxA(i, j, k)] = b[idxB(j, i, k)] * scale
					}
				}
			}
		}
	}
	f.expected = b
	fftRefCache.Store(key, b)
}

// fftRefCache memoizes the sequential reference spectrum per problem size.
var fftRefCache sync.Map // [4]int{n1, n2, n3, iters} -> []complex128

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// fft1d is an in-place iterative radix-2 complex FFT (stdlib only).
func fft1d(x []complex128) {
	n := len(x)
	if n&(n-1) != 0 {
		panic("fft: length must be a power of two")
	}
	// Bit reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		m := n >> 1
		for m >= 1 && j&m != 0 {
			j &^= m
			m >>= 1
		}
		j |= m
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		w := cmplx.Exp(complex(0, -2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			wk := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * wk
				x[start+k] = a + b
				x[start+k+half] = a - b
				wk *= w
			}
		}
	}
}

// fftFlops is the standard 5·n·log2(n) operation count.
func fftFlops(n int) int {
	lg := 0
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	return 5 * n * lg
}

// lockA covers the block of A owned by writer q that reader p needs for its
// transpose: rows A[i in q's planes][j in p's planes][*] — multiple
// non-contiguous ranges bound to one lock. At paper scale each block spans
// eight pages.
func (f *FFT) lockA(q, p int) core.LockID {
	return core.LockID(1 + q*64 + p)
}

// lockB covers the block of B owned by writer q (its j-planes) that reader p
// needs for the feed-back transpose: B[j in q's planes][i in p's planes][*].
func (f *FFT) lockB(q, p int) core.LockID {
	return core.LockID(5001 + q*64 + p)
}

// Program implements run.App: the interface-adapter entry of fftProgram —
// the same generic kernel the statically-dispatched entries run.
func (f *FFT) Program(d core.DSM) { fftProgram(f, d) }

// ProgramLRC implements run.StaticApp: fftProgram instantiated at *lrc.Node.
func (f *FFT) ProgramLRC(n *lrc.Node) { fftProgram(f, n) }

// ProgramEC implements run.StaticApp: fftProgram instantiated at *ec.Node.
func (f *FFT) ProgramEC(n *ec.Node) { fftProgram(f, n) }

// ProgramSeq implements run.StaticApp: fftProgram instantiated at *run.Local.
func (f *FFT) ProgramSeq(l *run.Local) { fftProgram(f, l) }

// fftProgram is the per-processor program as a generic kernel: one source,
// statically instantiated per protocol stack.
func fftProgram[D core.Accessor](f *FFT, d D) {
	ec := d.Model() == core.EC
	np := d.NProcs()
	me := d.Proc()
	a := f
	iLo, iHi := band(a.n1, np, me) // my planes of A
	jLo, jHi := band(a.n2, np, me) // my planes of B

	if ec {
		for q := 0; q < np; q++ {
			qiLo, qiHi := band(a.n1, np, q)
			qjLo, qjHi := band(a.n2, np, q)
			for p := 0; p < np; p++ {
				pjLo, pjHi := band(a.n2, np, p)
				piLo, piHi := band(a.n1, np, p)
				var rsA []mem.Range
				for i := qiLo; i < qiHi; i++ {
					if pjHi > pjLo {
						rsA = append(rsA, mem.Range{Base: a.addrA(i, pjLo, 0), Len: (pjHi - pjLo) * a.n3 * 16})
					}
				}
				if len(rsA) > 0 {
					d.Bind(f.lockA(q, p), rsA...)
				}
				var rsB []mem.Range
				for j := qjLo; j < qjHi; j++ {
					if piHi > piLo {
						rsB = append(rsB, mem.Range{Base: a.addrB(j, piLo, 0), Len: (piHi - piLo) * a.n3 * 16})
					}
				}
				if len(rsB) > 0 {
					d.Bind(f.lockB(q, p), rsB...)
				}
			}
		}
	}

	readA := func(i, j, k int) complex128 {
		base := a.addrA(i, j, k)
		return complex(d.ReadF64(base), d.ReadF64(base+8))
	}
	writeA := func(i, j, k int, v complex128) {
		base := a.addrA(i, j, k)
		d.WriteF64(base, real(v))
		d.WriteF64(base+8, imag(v))
	}
	readB := func(j, i, k int) complex128 {
		base := a.addrB(j, i, k)
		return complex(d.ReadF64(base), d.ReadF64(base+8))
	}
	writeB := func(j, i, k int, v complex128) {
		base := a.addrB(j, i, k)
		d.WriteF64(base, real(v))
		d.WriteF64(base+8, imag(v))
	}

	// rdim is the dimension the reader p is banded over (n2 for lockA blocks,
	// n1 for lockB blocks): past np > rdim the tail processors' bands are
	// empty and their locks were never bound, so they must be skipped.
	acquireOwn := func(lock func(q, p int) core.LockID, rdim int) {
		for p := 0; p < np; p++ {
			if lo, hi := band(rdim, np, p); hi > lo {
				d.Acquire(lock(me, p))
			}
		}
	}
	releaseOwn := func(lock func(q, p int) core.LockID, rdim int) {
		for p := 0; p < np; p++ {
			if lo, hi := band(rdim, np, p); hi > lo {
				d.Release(lock(me, p))
			}
		}
	}

	buf := make([]complex128, maxInt(a.n1, maxInt(a.n2, a.n3)))
	for it := 0; it < a.iters; it++ {
		// Local phases: FFT along dim 3 then dim 2 on my planes of A. Under
		// EC, I hold my A-block locks exclusively while writing (they stay
		// owned locally, so reacquisition is free).
		if ec && iHi > iLo {
			acquireOwn(f.lockA, a.n2)
		}
		for i := iLo; i < iHi; i++ {
			for j := 0; j < a.n2; j++ {
				for k := 0; k < a.n3; k++ {
					buf[k] = readA(i, j, k)
				}
				fft1d(buf[:a.n3])
				for k := 0; k < a.n3; k++ {
					writeA(i, j, k, buf[k])
				}
				d.Compute(sim.Time(fftFlops(a.n3)) * fftPerFlop)
			}
			for k := 0; k < a.n3; k++ {
				for j := 0; j < a.n2; j++ {
					buf[j] = readA(i, j, k)
				}
				fft1d(buf[:a.n2])
				for j := 0; j < a.n2; j++ {
					writeA(i, j, k, buf[j])
				}
				d.Compute(sim.Time(fftFlops(a.n2)) * fftPerFlop)
			}
		}
		if ec && iHi > iLo {
			releaseOwn(f.lockA, a.n2)
		}
		d.Barrier(0)

		// Transpose: read my j-columns from every processor's planes of A,
		// writing my planes of B. Under EC the read of each peer's block is
		// one read-lock acquisition that ships the whole (eight-page at
		// paper scale) block via the update protocol; under LRC it is one
		// page fault per page.
		if ec && jHi > jLo {
			acquireOwn(f.lockB, a.n1)
		}
		for q := 0; q < np; q++ {
			qLo, qHi := band(a.n1, np, q)
			if ec && q != me && qHi > qLo && jHi > jLo {
				d.AcquireRead(f.lockA(q, me))
			}
			for i := qLo; i < qHi; i++ {
				for j := jLo; j < jHi; j++ {
					for k := 0; k < a.n3; k++ {
						writeB(j, i, k, readA(i, j, k))
					}
				}
			}
			d.Compute(sim.Time((qHi-qLo)*(jHi-jLo)*a.n3) * 100 * sim.Nanosecond)
			if ec && q != me && qHi > qLo && jHi > jLo {
				d.Release(f.lockA(q, me))
			}
		}

		// Dimension-1 FFTs on my planes of B.
		for j := jLo; j < jHi; j++ {
			for k := 0; k < a.n3; k++ {
				for i := 0; i < a.n1; i++ {
					buf[i] = readB(j, i, k)
				}
				fft1d(buf[:a.n1])
				for i := 0; i < a.n1; i++ {
					writeB(j, i, k, buf[i])
				}
				d.Compute(sim.Time(fftFlops(a.n1)) * fftPerFlop)
			}
		}
		if ec && jHi > jLo {
			releaseOwn(f.lockB, a.n1)
		}
		d.Barrier(1)

		// Feed back for the next iteration: my A planes from B (reading
		// 1/P of B from every processor — the reverse transpose).
		if it < a.iters-1 {
			scale := complex(1/float64(a.elems()), 0)
			if ec && iHi > iLo {
				acquireOwn(f.lockA, a.n2)
			}
			for q := 0; q < np; q++ {
				pLo, pHi := band(a.n2, np, q)
				if ec && q != me && pHi > pLo && iHi > iLo {
					d.AcquireRead(f.lockB(q, me))
				}
				for i := iLo; i < iHi; i++ {
					for j := pLo; j < pHi; j++ {
						for k := 0; k < a.n3; k++ {
							writeA(i, j, k, readB(j, i, k)*scale)
						}
					}
				}
				if ec && q != me && pHi > pLo && iHi > iLo {
					d.Release(f.lockB(q, me))
				}
			}
			d.Compute(sim.Time((iHi-iLo)*a.n2*a.n3) * 100 * sim.Nanosecond)
			if ec && iHi > iLo {
				releaseOwn(f.lockA, a.n2)
			}
			d.Barrier(2)
		}
	}
	d.StatsEnd()

	// Gather B to processor 0 for verification.
	if me == 0 {
		for q := 0; q < np; q++ {
			qjLo, qjHi := band(a.n2, np, q)
			for p := 0; p < np; p++ {
				if ec && q != me {
					piLo, piHi := band(a.n1, np, p)
					if qjHi > qjLo && piHi > piLo {
						d.AcquireRead(f.lockB(q, p))
					}
				}
			}
			for j := qjLo; j < qjHi; j++ {
				for i := 0; i < a.n1; i++ {
					for k := 0; k < a.n3; k++ {
						_ = readB(j, i, k)
					}
				}
			}
			for p := 0; p < np; p++ {
				if ec && q != me {
					piLo, piHi := band(a.n1, np, p)
					if qjHi > qjLo && piHi > piLo {
						d.Release(f.lockB(q, p))
					}
				}
			}
		}
	}
}

// Verify implements run.App: exact comparison with the sequential pipeline.
func (f *FFT) Verify(im *mem.Image) error {
	idxB := func(j, i, k int) int { return (j*f.n1+i)*f.n3 + k }
	for j := 0; j < f.n2; j++ {
		for i := 0; i < f.n1; i++ {
			for k := 0; k < f.n3; k++ {
				base := f.addrB(j, i, k)
				got := complex(im.ReadF64(base), im.ReadF64(base+8))
				want := f.expected[idxB(j, i, k)]
				if got != want {
					return fmt.Errorf("3D-FFT: B[%d][%d][%d] = %v, want %v", j, i, k, got, want)
				}
			}
		}
	}
	return nil
}
