package apps

import (
	"sort"
	"testing"
	"testing/quick"

	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/run"
)

func TestQSAllImpls(t *testing.T) {
	testAllImpls(t, "QS", 4)
}

func TestISAllImpls(t *testing.T) {
	res := testAllImpls(t, "IS", 4)
	// IS's shared array is migratory: under EC, timestamping must move less
	// data than diffing (overlapping diffs travel with the lock).
	if rt, ok := res["EC-time"]; ok {
		if rd, ok2 := res["EC-diff"]; ok2 && rt.Stats.Bytes >= rd.Stats.Bytes {
			t.Errorf("EC-time bytes = %d, EC-diff = %d: timestamps should send less for migratory data",
				rt.Stats.Bytes, rd.Stats.Bytes)
		}
	}
}

func TestQSSequential(t *testing.T) {
	app, _ := New("QS", Test)
	if _, err := run.RunSeq(app); err != nil {
		t.Fatal(err)
	}
}

func TestISSequential(t *testing.T) {
	app, _ := New("IS", Test)
	if _, err := run.RunSeq(app); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		buf := make([]int32, len(raw))
		for i, v := range raw {
			buf[i] = int32(v)
		}
		want := append([]int32(nil), buf...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		p := partition(buf)
		if p == 0 { // all equal
			for _, v := range buf {
				if v != buf[0] {
					return false
				}
			}
			return true
		}
		if p < 1 || p >= len(buf) {
			return false
		}
		maxL := buf[0]
		for _, v := range buf[:p] {
			if v > maxL {
				maxL = v
			}
		}
		for _, v := range buf[p:] {
			if v < maxL {
				return false
			}
		}
		// Partition preserves the multiset.
		got := append([]int32(nil), buf...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBubblesortSorts(t *testing.T) {
	f := func(raw []int16) bool {
		buf := make([]int32, len(raw))
		for i, v := range raw {
			buf[i] = int32(v)
		}
		bubblesort(buf)
		return sort.SliceIsSorted(buf, func(i, j int) bool { return buf[i] < buf[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The analytic step count must reproduce the literal bubble sort exactly:
// the count feeds d.Compute, so any divergence would change simulated times.
func TestBubblesortStepsMatchReference(t *testing.T) {
	f := func(raw []int16) bool {
		fast := make([]int32, len(raw))
		ref := make([]int32, len(raw))
		for i, v := range raw {
			fast[i] = int32(v)
			ref[i] = int32(v)
		}
		fastSteps := bubblesort(fast)
		refSteps := bubblesortReference(ref)
		if fastSteps != refSteps {
			return false
		}
		for i := range fast {
			if fast[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Directed cases: sorted, reverse, all-equal, single, empty.
	for _, c := range [][]int32{{}, {1}, {1, 2, 3, 4}, {4, 3, 2, 1}, {7, 7, 7}, {2, 1, 2, 1}} {
		fast := append([]int32(nil), c...)
		ref := append([]int32(nil), c...)
		if got, want := bubblesort(fast), bubblesortReference(ref); got != want {
			t.Errorf("steps(%v) = %d, want %d", c, got, want)
		}
	}
}

// QS exhibits false sharing under LRC (task size is not a multiple of the
// page size): EC should transfer less data (3.4MB vs 7.1MB in Section 7.2).
func TestQSECMovesLessDataThanLRC(t *testing.T) {
	ecApp, _ := New("QS", Test)
	ecRes, err := run.Run(ecApp, core.Impl{Model: core.EC, Trap: core.Twinning, Collect: core.Diffs}, 4, fabric.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	lrcApp, _ := New("QS", Test)
	lrcRes, err := run.Run(lrcApp, core.Impl{Model: core.LRC, Trap: core.Twinning, Collect: core.Timestamps}, 4, fabric.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if ecRes.Stats.Bytes >= lrcRes.Stats.Bytes {
		t.Errorf("EC bytes = %d >= LRC bytes = %d; expected EC < LRC (false sharing)",
			ecRes.Stats.Bytes, lrcRes.Stats.Bytes)
	}
}
