package apps

import (
	"fmt"
	"slices"

	"ecvslrc/internal/core"
	"ecvslrc/internal/ec"
	"ecvslrc/internal/lrc"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/run"
	"ecvslrc/internal/sim"
)

func init() {
	register("QS", func(s Scale) run.App { return newQS(s) })
}

// Per-operation CPU costs, calibrated against Table 3's 47.89 s sequential
// time for 262,144 integers with a 1024-element bubblesort cutoff.
const (
	qsSortOp   = 330 * sim.Nanosecond // one bubblesort compare/swap step
	qsPartElem = 300 * sim.Nanosecond // one partition step
	qsIdle     = 500 * sim.Microsecond
)

// qsSlots is the task-queue capacity (a stack of (offset, length) entries).
const qsSlots = 512

// QS sorts an integer array with a centralized task queue: processors pop a
// sub-array, partition it around a pivot, push the smaller part as a new
// task and continue with the larger, bubblesorting below the cutoff
// (Section 2). Under EC the queue is bound to a lock, and each queue slot
// has a task lock that is REBOUND to the task's sub-array at enqueue time —
// the rebinding scenario of Section 3.3.
type QS struct {
	n      int
	cutoff int
	arr    mem.Addr
	queue  mem.Addr // top(4), done(4), entries qsSlots x (off,len)
	nprocs int

	// finalized tracks, per processor, the sub-ranges it bubblesorted, for
	// the EC gather (exported by rebinding the per-processor gather lock).
	finalized map[int][]mem.Range
}

func newQS(s Scale) *QS {
	a := &QS{finalized: map[int][]mem.Range{}}
	switch s {
	case Test:
		a.n, a.cutoff = 4096, 256
	case Bench:
		a.n, a.cutoff = 1<<15, 1024
	case Large:
		// ~256 leaf tasks against the 512-slot queue (the Paper ratio); the
		// centralized queue lock is the scaling stress.
		a.n, a.cutoff = 1<<17, 512
	default: // Paper: 262,144 integers, cutoff 1024 (Table 2)
		a.n, a.cutoff = 1<<18, 1024
	}
	return a
}

// Name implements run.App.
func (a *QS) Name() string { return "QS" }

// Layout implements run.App.
func (a *QS) Layout(al *mem.Allocator) {
	a.arr = al.Alloc("array", a.n*4, 4)
	a.queue = al.Alloc("queue", 8+qsSlots*8, 4)
}

// Init implements run.App: deterministic pseudo-random keys; the initial
// task covering the whole array is pre-enqueued.
func (a *QS) Init(im *mem.Image) {
	rng := newLCG(42)
	for i := 0; i < a.n; i++ {
		im.WriteI32(a.arr+mem.Addr(4*i), int32(rng.intn(1<<30)))
	}
	im.WriteI32(a.qTop(), 1)
	im.WriteI32(a.qDone(), 0)
	im.WriteI32(a.qOff(0), 0)
	im.WriteI32(a.qLen(0), int32(a.n))
}

// InitRef implements run.RefInit: Verify recomputes its reference from the
// generator, so Init keeps no instance state to adopt.
func (a *QS) InitRef() {}

func (a *QS) qTop() mem.Addr      { return a.queue }
func (a *QS) qDone() mem.Addr     { return a.queue + 4 }
func (a *QS) qOff(s int) mem.Addr { return a.queue + 8 + mem.Addr(8*s) }
func (a *QS) qLen(s int) mem.Addr { return a.queue + 8 + mem.Addr(8*s) + 4 }

const (
	qsQueueLock  = core.LockID(1)
	qsEntryLock0 = core.LockID(10)           // + slot
	qsGatherL0   = core.LockID(10 + qsSlots) // + proc
)

func (a *QS) entryLock(slot int) core.LockID { return qsEntryLock0 + core.LockID(slot) }
func (a *QS) gatherLock(p int) core.LockID   { return qsGatherL0 + core.LockID(p) }

// Program implements run.App: the interface-adapter entry of qsProgram —
// the same generic kernel the statically-dispatched entries run.
func (a *QS) Program(d core.DSM) { qsProgram(a, d) }

// ProgramLRC implements run.StaticApp: qsProgram instantiated at *lrc.Node.
func (a *QS) ProgramLRC(n *lrc.Node) { qsProgram(a, n) }

// ProgramEC implements run.StaticApp: qsProgram instantiated at *ec.Node.
func (a *QS) ProgramEC(n *ec.Node) { qsProgram(a, n) }

// ProgramSeq implements run.StaticApp: qsProgram instantiated at *run.Local.
func (a *QS) ProgramSeq(l *run.Local) { qsProgram(a, l) }

// qsProgram is the per-processor program as a generic kernel: one source,
// statically instantiated per protocol stack.
func qsProgram[D core.Accessor](a *QS, d D) {
	ec := d.Model() == core.EC
	a.nprocs = d.NProcs()
	me := d.Proc()
	if ec {
		d.Bind(qsQueueLock, mem.Range{Base: a.queue, Len: 8 + qsSlots*8})
		for s := 0; s < qsSlots; s++ {
			// Placeholder binding: rebound to the task's data at enqueue.
			d.Bind(a.entryLock(s), mem.Range{Base: a.qOff(s), Len: 8})
		}
		for p := 0; p < d.NProcs(); p++ {
			d.Bind(a.gatherLock(p), mem.Range{Base: a.qDone(), Len: 4})
		}
		// The pre-enqueued initial task: processor 0 rebinds slot 0's lock
		// to the whole array before anyone pops it.
		if me == 0 {
			d.AcquireForRebind(a.entryLock(0))
			d.Rebind(a.entryLock(0), mem.Range{Base: a.arr, Len: a.n * 4})
			d.Release(a.entryLock(0))
		}
	}
	d.Barrier(0)

	var myFinal []mem.Range
	total := 0

	// enqueue pushes a task while the caller holds the queue lock. Under EC
	// the slot's task lock is rebound to the sub-array first, so the next
	// popper's acquire transfers the task data (conservative full send).
	enqueue := func(off, length int) {
		slot := int(d.ReadI32(a.qTop()))
		if slot >= qsSlots {
			panic("QS: task queue overflow")
		}
		if ec {
			d.AcquireForRebind(a.entryLock(slot))
			d.Rebind(a.entryLock(slot), mem.Range{Base: a.arr + mem.Addr(4*off), Len: 4 * length})
			d.Release(a.entryLock(slot))
		}
		d.WriteI32(a.qOff(slot), int32(off))
		d.WriteI32(a.qLen(slot), int32(length))
		d.WriteI32(a.qTop(), int32(slot+1))
	}

	readRange := func(off, length int) []int32 {
		buf := make([]int32, length)
		for i := range buf {
			buf[i] = d.ReadI32(a.arr + mem.Addr(4*(off+i)))
		}
		return buf
	}
	writeRange := func(off int, buf []int32) {
		for i, v := range buf {
			d.WriteI32(a.arr+mem.Addr(4*(off+i)), v)
		}
	}

	for {
		d.Acquire(qsQueueLock)
		top := int(d.ReadI32(a.qTop()))
		if top == 0 {
			done := int(d.ReadI32(a.qDone()))
			d.Release(qsQueueLock)
			if done == a.n {
				break
			}
			d.Compute(qsIdle)
			continue
		}
		top--
		d.WriteI32(a.qTop(), int32(top))
		off := int(d.ReadI32(a.qOff(top)))
		length := int(d.ReadI32(a.qLen(top)))
		var buf []int32
		if ec {
			// The task lock's update-protocol grant carries the sub-array.
			d.Acquire(a.entryLock(top))
			buf = readRange(off, length)
			d.Release(a.entryLock(top))
		} else {
			buf = readRange(off, length)
		}
		d.Release(qsQueueLock)

		// Work on the task locally: partition until below the cutoff,
		// pushing the smaller side, then bubblesort.
		sorted := 0
		for {
			if length <= a.cutoff {
				steps := bubblesort(buf)
				d.Compute(sim.Time(steps) * qsSortOp)
				writeRange(off, buf)
				myFinal = append(myFinal, mem.Range{Base: a.arr + mem.Addr(4*off), Len: 4 * length})
				sorted += length
				break
			}
			p := partition(buf)
			d.Compute(sim.Time(length) * qsPartElem)
			writeRange(off, buf)
			if p == 0 {
				// Every element equal: the task is already sorted.
				myFinal = append(myFinal, mem.Range{Base: a.arr + mem.Addr(4*off), Len: 4 * length})
				sorted += length
				break
			}
			// Push the smaller partition; continue with the larger.
			loLen, hiLen := p, length-p
			d.Acquire(qsQueueLock)
			if loLen <= hiLen {
				enqueue(off, loLen)
				off, length, buf = off+p, hiLen, buf[p:]
			} else {
				enqueue(off+p, hiLen)
				length, buf = loLen, buf[:p]
			}
			d.Release(qsQueueLock)
		}
		total += sorted

		d.Acquire(qsQueueLock)
		d.WriteI32(a.qDone(), d.ReadI32(a.qDone())+int32(sorted))
		d.Release(qsQueueLock)
	}

	// Export the finalized fragments for the gather (EC: rebinding the
	// per-processor gather lock to the non-contiguous result ranges).
	a.finalized[me] = myFinal
	if ec && len(myFinal) > 0 {
		d.AcquireForRebind(a.gatherLock(me))
		d.Rebind(a.gatherLock(me), myFinal...)
		d.Release(a.gatherLock(me))
	}
	d.Barrier(1)
	d.StatsEnd()

	if me == 0 {
		for p := 0; p < d.NProcs(); p++ {
			if ec {
				if p != me {
					d.AcquireRead(a.gatherLock(p))
				}
			}
			for _, r := range a.finalized[p] {
				for addr := r.Base; addr < r.End(); addr += 4 {
					_ = d.ReadI32(addr)
				}
			}
			if ec && p != me {
				d.Release(a.gatherLock(p))
			}
		}
	}
}

// partition reorders buf into (< pivot)(== pivot)(> pivot) around a
// median-of-three pivot and returns the split index (elements [0,p) stay in
// the left task, [p,n) in the right; both parts non-empty), or 0 if every
// element is equal (the slice is already sorted).
func partition(buf []int32) int {
	n := len(buf)
	x, y, z := buf[0], buf[n/2], buf[n-1]
	pivot := max(min(x, y), min(max(x, y), z))
	var lt, eq, gt []int32
	for _, v := range buf {
		switch {
		case v < pivot:
			lt = append(lt, v)
		case v > pivot:
			gt = append(gt, v)
		default:
			eq = append(eq, v)
		}
	}
	copy(buf, lt)
	copy(buf[len(lt):], eq)
	copy(buf[len(lt)+len(eq):], gt)
	if len(gt) > 0 {
		return len(lt) + len(eq)
	}
	// The pivot is the maximum. Split before the equal run unless every
	// element is equal (already sorted).
	return len(lt)
}

// bubblesort sorts buf in place and returns the number of compare/swap
// steps (the paper's local sort below the cutoff). The simulated DECstation
// pays the quadratic cost, but the simulator does not: the step count of the
// early-exit bubble sort is derived analytically. A pass moves an element at
// most one position left, so the number of swapping passes equals the
// largest leftward displacement L between initial and (stable) final
// position; one clean terminating pass follows, and pass k scans len-1-k
// pairs. bubblesortReference is the literal algorithm, kept as the oracle
// for the equivalence test.
func bubblesort(buf []int32) int {
	n := len(buf)
	if n == 0 {
		return 0
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	// Stable order: by value, original index on ties.
	slices.SortFunc(idx, func(i, j int32) int {
		if buf[i] != buf[j] {
			return int(buf[i]) - int(buf[j])
		}
		return int(i) - int(j)
	})
	maxDisp := 0
	for final, orig := range idx {
		if d := int(orig) - final; d > maxDisp {
			maxDisp = d
		}
	}
	passes := maxDisp + 1
	steps := passes*(n-1) - passes*(passes-1)/2
	slices.Sort(buf)
	return steps
}

// bubblesortReference is the verbatim quadratic bubble sort whose step count
// bubblesort reproduces.
func bubblesortReference(buf []int32) int {
	steps := 0
	n := len(buf)
	for {
		swapped := false
		for i := 1; i < n; i++ {
			steps++
			if buf[i-1] > buf[i] {
				buf[i-1], buf[i] = buf[i], buf[i-1]
				swapped = true
			}
		}
		n--
		if !swapped {
			break
		}
	}
	return steps
}

// Verify implements run.App.
func (a *QS) Verify(im *mem.Image) error {
	var prev int32 = -1 << 31
	var sum, sumRef int64
	rng := newLCG(42)
	for i := 0; i < a.n; i++ {
		v := im.ReadI32(a.arr + mem.Addr(4*i))
		if v < prev {
			return fmt.Errorf("QS: array[%d]=%d < array[%d]=%d", i, v, i-1, prev)
		}
		prev = v
		sum += int64(v)
		sumRef += int64(int32(rng.intn(1 << 30)))
	}
	if sum != sumRef {
		return fmt.Errorf("QS: element checksum mismatch: %d vs %d", sum, sumRef)
	}
	return nil
}
