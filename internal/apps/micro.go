package apps

import (
	"fmt"

	"ecvslrc/internal/core"
	"ecvslrc/internal/ec"
	"ecvslrc/internal/lrc"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/run"
	"ecvslrc/internal/sim"
)

func init() {
	register("micro-migratory", func(s Scale) run.App { return newMicro(s, microMigratory) })
	register("micro-producer-consumer", func(s Scale) run.App { return newMicro(s, microProducerConsumer) })
	register("micro-false-sharing", func(s Scale) run.App { return newMicro(s, microFalseSharing) })
	register("micro-prefetch", func(s Scale) run.App { return newMicro(s, microPrefetch) })
	register("micro-rebinding", func(s Scale) run.App { return newMicro(s, microRebinding) })
}

type microKind int

const (
	// microMigratory: a sub-page record passes round-robin between
	// processors, each mutating all of it under one lock — the Section 5.3
	// pattern where EC timestamps beat diffs (overlapping diffs).
	microMigratory microKind = iota
	// microProducerConsumer: one processor writes a multi-page buffer,
	// everyone reads it after a barrier — the single-diff pattern where
	// diffing beats timestamps (one diff, no repeated scans).
	microProducerConsumer
	// microFalseSharing: each processor owns a distinct quarter of a page,
	// writing its quarter and reading a neighbour's each phase — EC moves
	// only the bound quarters, LRC the page (Section 7.1, false sharing).
	microFalseSharing
	// microPrefetch: many small objects on the same page, each bound to its
	// own lock, all read by the same consumer — LRC's page fault brings all
	// of them at once, EC pays one lock exchange each (Section 7.1,
	// prefetching).
	microPrefetch
	// microRebinding: a lock is rebound to fresh memory each round and the
	// next acquirer receives a conservative full transfer (Section 7.1,
	// rebinding).
	microRebinding
)

var microNames = map[microKind]string{
	microMigratory:        "micro-migratory",
	microProducerConsumer: "micro-producer-consumer",
	microFalseSharing:     "micro-false-sharing",
	microPrefetch:         "micro-prefetch",
	microRebinding:        "micro-rebinding",
}

// Micro is a synthetic kernel isolating one of the five performance factors
// of Section 7.1.
type Micro struct {
	kind   microKind
	rounds int
	base   mem.Addr
	nprocs int
}

func newMicro(s Scale, k microKind) *Micro {
	m := &Micro{kind: k}
	switch s {
	case Test:
		m.rounds = 4
	case Bench:
		m.rounds = 16
	case Large:
		m.rounds = 32
	default:
		m.rounds = 64
	}
	return m
}

// Name implements run.App.
func (m *Micro) Name() string { return microNames[m.kind] }

// Layout implements run.App.
func (m *Micro) Layout(al *mem.Allocator) {
	switch m.kind {
	case microProducerConsumer:
		m.base = al.Alloc("buffer", 4*mem.PageSize, 4)
	case microRebinding:
		m.base = al.Alloc("slots", 8*mem.PageSize, 4)
	default:
		m.base = al.Alloc("page", mem.PageSize, 4)
	}
}

// Init implements run.App.
func (m *Micro) Init(im *mem.Image) {}

// InitRef implements run.RefInit (Init is stateless).
func (m *Micro) InitRef() {}

// Program implements run.App: the interface-adapter entry of microProgram —
// the same generic kernel the statically-dispatched entries run.
func (m *Micro) Program(d core.DSM) { microProgram(m, d) }

// ProgramLRC implements run.StaticApp: microProgram at *lrc.Node.
func (m *Micro) ProgramLRC(n *lrc.Node) { microProgram(m, n) }

// ProgramEC implements run.StaticApp: microProgram at *ec.Node.
func (m *Micro) ProgramEC(n *ec.Node) { microProgram(m, n) }

// ProgramSeq implements run.StaticApp: microProgram at *run.Local.
func (m *Micro) ProgramSeq(l *run.Local) { microProgram(m, l) }

// microProgram dispatches to the selected factor kernel; each kernel is
// generic over the access frontend and instantiated per protocol stack.
func microProgram[D core.Accessor](m *Micro, d D) {
	switch m.kind {
	case microMigratory:
		migratory(m, d)
	case microProducerConsumer:
		producerConsumer(m, d)
	case microFalseSharing:
		falseSharing(m, d)
	case microPrefetch:
		prefetch(m, d)
	case microRebinding:
		rebinding(m, d)
	}
}

func migratory[D core.Accessor](m *Micro, d D) {
	m.nprocs = d.NProcs()
	const words = 256 // 1 KB record, below a page
	d.Bind(1, mem.Range{Base: m.base, Len: words * 4})
	for r := 0; r < m.rounds; r++ {
		d.Acquire(1)
		for w := 0; w < words; w++ {
			a := m.base + mem.Addr(4*w)
			d.WriteI32(a, d.ReadI32(a)+1)
		}
		d.Compute(50 * sim.Microsecond)
		d.Release(1)
	}
	d.Barrier(0)
	d.StatsEnd()
	if d.Proc() == 0 {
		d.AcquireRead(1)
		for w := 0; w < words; w++ {
			_ = d.ReadI32(m.base + mem.Addr(4*w))
		}
		d.Release(1)
	}
}

func producerConsumer[D core.Accessor](m *Micro, d D) {
	ec := d.Model() == core.EC
	m.nprocs = d.NProcs()
	n := 4 * mem.PageSize / 4
	d.Bind(1, mem.Range{Base: m.base, Len: n * 4})
	for r := 0; r < m.rounds; r++ {
		if d.Proc() == 0 {
			if ec {
				d.Acquire(1)
			}
			for w := 0; w < n; w++ {
				d.WriteI32(m.base+mem.Addr(4*w), int32(r*n+w))
			}
			d.Compute(200 * sim.Microsecond)
			if ec {
				d.Release(1)
			}
		}
		d.Barrier(0)
		if d.Proc() != 0 {
			if ec {
				d.AcquireRead(1)
			}
			var sum int64
			for w := 0; w < n; w += 16 {
				sum += int64(d.ReadI32(m.base + mem.Addr(4*w)))
			}
			_ = sum
			d.Compute(50 * sim.Microsecond)
			if ec {
				d.Release(1)
			}
		}
		d.Barrier(1)
	}
	d.StatsEnd()
	if d.Proc() == 0 {
		_ = d.ReadI32(m.base)
	}
}

func falseSharing[D core.Accessor](m *Micro, d D) {
	ec := d.Model() == core.EC
	m.nprocs = d.NProcs()
	np := d.NProcs()
	me := d.Proc()
	chunk := mem.PageSize / np
	lock := func(p int) core.LockID { return core.LockID(1 + p) }
	rng := func(p int) mem.Range { return mem.Range{Base: m.base + mem.Addr(p*chunk), Len: chunk} }
	for p := 0; p < np; p++ {
		d.Bind(lock(p), rng(p))
	}
	for r := 0; r < m.rounds; r++ {
		if ec {
			d.Acquire(lock(me))
		}
		for a := rng(me).Base; a < rng(me).End(); a += 4 {
			d.WriteI32(a, int32(r))
		}
		d.Compute(50 * sim.Microsecond)
		if ec {
			d.Release(lock(me))
		}
		d.Barrier(0)
		other := (me + 1) % np
		if ec {
			d.AcquireRead(lock(other))
		}
		if got := d.ReadI32(rng(other).Base); got != int32(r) {
			panic(fmt.Sprintf("micro-false-sharing: read %d, want %d", got, r))
		}
		if ec {
			d.Release(lock(other))
		}
		d.Barrier(1)
	}
	d.StatsEnd()
}

func prefetch[D core.Accessor](m *Micro, d D) {
	ec := d.Model() == core.EC
	m.nprocs = d.NProcs()
	const objs = 32 // 128-byte objects, all on one page
	objRange := func(o int) mem.Range {
		return mem.Range{Base: m.base + mem.Addr(o*128), Len: 128}
	}
	for o := 0; o < objs; o++ {
		d.Bind(core.LockID(1+o), objRange(o))
	}
	writer := 1 % d.NProcs()
	for r := 0; r < m.rounds; r++ {
		if d.Proc() == writer {
			for o := 0; o < objs; o++ {
				if ec {
					d.Acquire(core.LockID(1 + o))
				}
				for a := objRange(o).Base; a < objRange(o).End(); a += 4 {
					d.WriteI32(a, int32(r*objs+o))
				}
				if ec {
					d.Release(core.LockID(1 + o))
				}
			}
			d.Compute(100 * sim.Microsecond)
		}
		d.Barrier(0)
		if d.Proc() == 0 {
			// The consumer touches every object: LRC faults once for the
			// page; EC needs one read-lock exchange per object.
			for o := 0; o < objs; o++ {
				if ec {
					d.AcquireRead(core.LockID(1 + o))
				}
				_ = d.ReadI32(objRange(o).Base)
				if ec {
					d.Release(core.LockID(1 + o))
				}
			}
			d.Compute(50 * sim.Microsecond)
		}
		d.Barrier(1)
	}
	d.StatsEnd()
}

func rebinding[D core.Accessor](m *Micro, d D) {
	ec := d.Model() == core.EC
	m.nprocs = d.NProcs()
	const taskBytes = 2048
	d.Bind(1, mem.Range{Base: m.base, Len: taskBytes})
	np := d.NProcs()
	for r := 0; r < m.rounds; r++ {
		turn := r % np
		if d.Proc() == turn {
			d.AcquireForRebind(1)
			slot := mem.Range{Base: m.base + mem.Addr((r%8)*mem.PageSize), Len: taskBytes}
			if ec {
				d.Rebind(1, slot)
			}
			for a := slot.Base; a < slot.End(); a += 4 {
				d.WriteI32(a, int32(r))
			}
			d.Compute(50 * sim.Microsecond)
			d.Release(1)
		}
		d.Barrier(0)
	}
	d.StatsEnd()
	if d.Proc() == 0 {
		d.AcquireRead(1)
		_ = d.ReadI32(m.base)
		d.Release(1)
	}
}

// Verify implements run.App: the kernels assert inline; nothing to check.
func (m *Micro) Verify(im *mem.Image) error { return nil }
