package apps

import (
	"fmt"

	"ecvslrc/internal/core"
	"ecvslrc/internal/ec"
	"ecvslrc/internal/lrc"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/run"
	"ecvslrc/internal/sim"
)

func init() {
	register("IS", func(s Scale) run.App { return newIS(s) })
}

// Per-key CPU costs, calibrated against Table 3's 10.27 s sequential time
// for N=2^20 keys and 10 rankings.
const (
	isPerKeyCount = 400 * sim.Nanosecond
	isPerKeyRank  = 600 * sim.Nanosecond
)

// IS is the NAS Integer Sort benchmark: ranking N keys in [0, Bmax) by
// counting sort. Phase 1: each processor ranks its keys locally, then adds
// its counts into a shared bucket array under a lock (migratory data — the
// array is smaller than a page). Phase 2: each processor reads the shared
// array to compute the global ranks of its keys. Barriers separate phases.
type IS struct {
	n, bmax, rounds int
	buckets         mem.Addr
	nprocs          int
}

func newIS(s Scale) *IS {
	a := &IS{}
	switch s {
	case Test:
		a.n, a.bmax, a.rounds = 4096, 128, 3
	case Bench:
		a.n, a.bmax, a.rounds = 1<<16, 1<<9, 5
	case Large:
		// 256 keys per processor at 1024 procs; the shared bucket array is
		// the scaling stress (every processor merges all Bmax buckets).
		a.n, a.bmax, a.rounds = 1<<18, 1<<10, 3
	default: // Paper: N = 2^20, Bmax = 2^9, 10 rankings (Table 2)
		a.n, a.bmax, a.rounds = 1<<20, 1<<9, 10
	}
	return a
}

// Name implements run.App.
func (a *IS) Name() string { return "IS" }

// Layout implements run.App. The bucket array (2 KB at paper scale) is the
// only shared data: "the size of the shared array is less than a page".
func (a *IS) Layout(al *mem.Allocator) {
	a.buckets = al.Alloc("buckets", a.bmax*4, 4)
}

// Init implements run.App.
func (a *IS) Init(im *mem.Image) {}

// InitRef implements run.RefInit (Init is stateless).
func (a *IS) InitRef() {}

// keys regenerates processor p's deterministic key set.
func (a *IS) keys(p, nprocs int) []int {
	lo, hi := band(a.n, nprocs, p)
	rng := newLCG(uint64(1000 + p))
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = rng.intn(a.bmax)
	}
	return out
}

const isLock = core.LockID(1)

// Program implements run.App: the interface-adapter entry of isProgram —
// the same generic kernel the statically-dispatched entries run.
func (a *IS) Program(d core.DSM) { isProgram(a, d) }

// ProgramLRC implements run.StaticApp: isProgram instantiated at *lrc.Node.
func (a *IS) ProgramLRC(n *lrc.Node) { isProgram(a, n) }

// ProgramEC implements run.StaticApp: isProgram instantiated at *ec.Node.
func (a *IS) ProgramEC(n *ec.Node) { isProgram(a, n) }

// ProgramSeq implements run.StaticApp: isProgram instantiated at *run.Local.
func (a *IS) ProgramSeq(l *run.Local) { isProgram(a, l) }

// isProgram is the per-processor program as a generic kernel: one source,
// statically instantiated per protocol stack.
func isProgram[D core.Accessor](a *IS, d D) {
	ec := d.Model() == core.EC
	a.nprocs = d.NProcs()
	d.Bind(isLock, mem.Range{Base: a.buckets, Len: a.bmax * 4})
	keys := a.keys(d.Proc(), d.NProcs())

	for r := 0; r < a.rounds; r++ {
		// Phase 1: local ranking, then merge into the shared array.
		local := make([]int32, a.bmax)
		for _, k := range keys {
			local[k]++
		}
		d.Compute(sim.Time(len(keys)) * isPerKeyCount)

		d.Acquire(isLock)
		snapshot := make([]int32, a.bmax)
		for b := 0; b < a.bmax; b++ {
			addr := a.buckets + mem.Addr(4*b)
			v := d.ReadI32(addr) + local[b]
			snapshot[b] = v
			d.WriteI32(addr, v)
		}
		d.Compute(sim.Time(a.bmax) * 200 * sim.Nanosecond)
		d.Release(isLock)
		d.Barrier(0)

		// Phase 2: read the final counts and rank the local keys.
		if ec {
			d.AcquireRead(isLock)
		}
		var checksum int64
		for b := 0; b < a.bmax; b++ {
			checksum += int64(d.ReadI32(a.buckets + mem.Addr(4*b)))
		}
		_ = checksum
		d.Compute(sim.Time(len(keys)) * isPerKeyRank)
		if ec {
			d.Release(isLock)
		}
		d.Barrier(1)
	}
	d.StatsEnd()

	// Gather for verification.
	if d.Proc() == 0 {
		if ec {
			d.AcquireRead(isLock)
		}
		for b := 0; b < a.bmax; b++ {
			_ = d.ReadI32(a.buckets + mem.Addr(4*b))
		}
		if ec {
			d.Release(isLock)
		}
	}
}

// Verify implements run.App: the shared buckets accumulate rounds×histogram.
func (a *IS) Verify(im *mem.Image) error {
	want := make([]int32, a.bmax)
	for p := 0; p < a.nprocs; p++ {
		for _, k := range a.keys(p, a.nprocs) {
			want[k] += int32(a.rounds)
		}
	}
	for b := 0; b < a.bmax; b++ {
		if got := im.ReadI32(a.buckets + mem.Addr(4*b)); got != want[b] {
			return fmt.Errorf("IS: bucket[%d] = %d, want %d", b, got, want[b])
		}
	}
	return nil
}
