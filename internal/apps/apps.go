// Package apps implements the paper's application suite (Section 2): SOR and
// SOR+, Quicksort, Water, Barnes-Hut, Integer Sort and 3D-FFT, plus the
// synthetic kernels behind the Section 7.1 factor analysis. Every application
// is written once, in the dual programming style of Section 3.3: the LRC code
// path is the program "as written for sequential consistency", and the EC
// path adds the lock bindings, read-only locks, extra exclusive locks and
// rebinding the model demands.
package apps

import (
	"fmt"
	"strings"

	"ecvslrc/internal/run"
	"ecvslrc/internal/sim"
)

// Scale selects a problem-size preset.
type Scale int

const (
	// Test is small enough for unit tests (fractions of a second of real time).
	Test Scale = iota
	// Bench is a medium size for Go benchmarks.
	Bench
	// Paper is the data-set size of Table 2.
	Paper
	// Large is the scaled-machine tier: problem sizes chosen so 256-1024
	// simulated processors each have real work while the per-node memory
	// image stays small (every node replicates the full shared image, so
	// image bytes multiply by the processor count). Cells at this scale
	// default to LRC notice garbage collection and tree barrier fan-in
	// (see internal/harness); 8-proc output at the other tiers is
	// unaffected.
	Large
)

func (s Scale) String() string {
	switch s {
	case Test:
		return "test"
	case Bench:
		return "bench"
	case Large:
		return "large"
	default:
		return "paper"
	}
}

// ScaleNames lists the valid -scale flag spellings, in tier order. It is the
// single source of truth for CLI flag parsing and config error messages.
func ScaleNames() []string { return []string{"test", "bench", "paper", "large"} }

// ParseScale maps a -scale flag spelling to its Scale. The error names every
// valid spelling, so CLIs can print it verbatim.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "test":
		return Test, nil
	case "bench":
		return Bench, nil
	case "paper":
		return Paper, nil
	case "large":
		return Large, nil
	}
	return 0, fmt.Errorf("apps: unknown scale %q (valid: %s)", s, strings.Join(ScaleNames(), ", "))
}

// Factory builds a fresh application instance at the given scale. Instances
// hold per-run state and must not be reused across runs.
type Factory func(scale Scale) run.App

var registry = map[string]Factory{}

func register(name string, f Factory) { registry[name] = f }

// New builds the named application at the given scale.
func New(name string, scale Scale) (run.App, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown application %q", name)
	}
	return f(scale), nil
}

// Names lists the registered applications in table order.
func Names() []string {
	return []string{"SOR", "SOR+", "QS", "Water", "Barnes-Hut", "IS", "3D-FFT"}
}

// MicroNames lists the synthetic Section 7.1 kernels.
func MicroNames() []string {
	return []string{"micro-migratory", "micro-producer-consumer", "micro-false-sharing", "micro-prefetch", "micro-rebinding"}
}

// Every suite application is written as a generic kernel
// (func kernel[D core.Accessor](app, d D)) and provides the
// statically-dispatched run.StaticApp entries alongside the
// Program(core.DSM) adapter; the runner picks the concrete instantiation.
var (
	_ run.StaticApp = (*SOR)(nil)
	_ run.StaticApp = (*QS)(nil)
	_ run.StaticApp = (*Water)(nil)
	_ run.StaticApp = (*Barnes)(nil)
	_ run.StaticApp = (*IS)(nil)
	_ run.StaticApp = (*FFT)(nil)
	_ run.StaticApp = (*Micro)(nil)
)

// lcg is a small deterministic pseudo-random generator (stdlib-only, and
// identical across runs so results are bit-reproducible).
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*2862933555777941757 + 3037000493} }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s
}

// intn returns a value in [0, n).
func (l *lcg) intn(n int) int { return int(l.next() % uint64(n)) }

// f64 returns a value in [0, 1).
func (l *lcg) f64() float64 { return float64(l.next()>>11) / (1 << 53) }

// band splits n items into p nearly-equal contiguous chunks and returns the
// half-open range of chunk i.
func band(n, p, i int) (lo, hi int) { return n * i / p, n * (i + 1) / p }

// us is shorthand for microseconds of simulated time.
func us(n float64) sim.Time { return sim.Time(n * 1000) }
