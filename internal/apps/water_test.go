package apps

import (
	"testing"

	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/run"
)

func TestWaterAllImpls(t *testing.T) {
	testAllImpls(t, "Water", 4)
}

// Water's dominant effect is LRC prefetching: a page fault brings every
// molecule on the page, while EC pays one read-lock exchange per molecule
// (11381 vs 69422 messages in §7.2). The effect needs enough molecules per
// page to bite, hence the Bench preset.
func TestWaterLRCPrefetchBeatsEC(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale run")
	}
	lrcApp, _ := New("Water", Bench)
	lrcRes, err := run.Run(lrcApp, core.Impl{Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}, 8, fabric.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	ecApp, _ := New("Water", Bench)
	ecRes, err := run.Run(ecApp, core.Impl{Model: core.EC, Trap: core.CompilerInstr, Collect: core.Timestamps}, 8, fabric.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if lrcRes.Stats.Msgs >= ecRes.Stats.Msgs {
		t.Errorf("LRC-diff msgs = %d, EC-ci msgs = %d: expected LRC < EC",
			lrcRes.Stats.Msgs, ecRes.Stats.Msgs)
	}
	if lrcRes.Stats.Time >= ecRes.Stats.Time {
		t.Errorf("LRC-diff time = %v, EC-ci time = %v: expected LRC faster (Table 3 shape)",
			lrcRes.Stats.Time, ecRes.Stats.Time)
	}
}

func TestWaterSplitAllImpls(t *testing.T) {
	testAllImpls(t, "Water-split", 4)
}

func TestWaterSequential(t *testing.T) {
	app, _ := New("Water", Test)
	if _, err := run.RunSeq(app); err != nil {
		t.Fatal(err)
	}
}

// The §7.2 restructuring: binding a per-processor lock to all displacements
// computed by a processor reduces EC's message count relative to
// per-molecule read locks.
func TestWaterSplitImprovesEC(t *testing.T) {
	base, _ := New("Water", Test)
	baseRes, err := run.Run(base, core.Impl{Model: core.EC, Trap: core.CompilerInstr, Collect: core.Timestamps}, 4, fabric.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	split, _ := New("Water-split", Test)
	splitRes, err := run.Run(split, core.Impl{Model: core.EC, Trap: core.CompilerInstr, Collect: core.Timestamps}, 4, fabric.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if splitRes.Stats.Msgs >= baseRes.Stats.Msgs {
		t.Errorf("split msgs = %d, base msgs = %d: expected split < base",
			splitRes.Stats.Msgs, baseRes.Stats.Msgs)
	}
	if splitRes.Stats.Time >= baseRes.Stats.Time {
		t.Errorf("split time = %v, base time = %v: expected split faster",
			splitRes.Stats.Time, baseRes.Stats.Time)
	}
}
