package apps

import (
	"fmt"
	"math"
	"sync"

	"ecvslrc/internal/core"
	"ecvslrc/internal/ec"
	"ecvslrc/internal/lrc"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/run"
	"ecvslrc/internal/sim"
)

func init() {
	register("Barnes-Hut", func(s Scale) run.App { return newBarnes(s) })
	// The granularity-ablation variant: positions bound per owner instead
	// of per body. Section 7.2 argues this restructuring is impractical for
	// Barnes-Hut because "at the beginning of a phase it cannot be
	// determined which body and cell positions will be read"; with a
	// uniform distribution and theta=0.8 each processor in fact reads most
	// bodies, so the coarse binding pays off — the Section 3.3 trade-off
	// made measurable.
	register("Barnes-Hut-chunked", func(s Scale) run.App { b := newBarnes(s); b.chunked = true; return b })
}

// Per-operation CPU costs, calibrated against Table 3's 133.76 s sequential
// time for 8,192 bodies and 5 steps.
const (
	barnesPerInteract = 15 * sim.Microsecond
	barnesPerInsert   = 4 * sim.Microsecond
	barnesPerVisit    = 2 * sim.Microsecond
)

const (
	bodyBytes   = 128 // set A: position+mass; set B: force (Section 3.3's two lock sets)
	cellBytes   = 128 // center, half-width, centre of mass, mass, 8 children
	barnesTheta = 0.8
)

// Barnes is the Barnes-Hut N-body simulation: a hierarchical oct-tree of
// cells over the bodies, rebuilt each step, with load-balancing, force-
// computation and position-update phases separated by barriers (Section 2).
// No data item is written by two processors in a phase, so LRC needs no
// locks at all; EC adds per-cell locks and two per-body locks (splitting the
// body record into position and force sets avoids the nested-lock deadlock
// the paper describes).
type Barnes struct {
	m        int
	steps    int
	maxCells int
	chunked  bool // bind positions per owner (granularity ablation)
	bodies   mem.Addr
	cells    mem.Addr
	ncells   mem.Addr // shared allocation counter (written by proc 0 only)
	nprocs   int

	expPos   [][3]float64
	expForce [][3]float64
}

func newBarnes(s Scale) *Barnes {
	a := &Barnes{}
	switch s {
	case Test:
		a.m, a.steps = 64, 2
	case Bench:
		a.m, a.steps = 512, 2
	case Large:
		// Two bodies per processor at 1024 procs; tree build stays the
		// serial fraction (a documented scaling finding, not a bug).
		a.m, a.steps = 2048, 2
	default: // Paper: 8,192 bodies, 5 iterations (Table 2)
		a.m, a.steps = 8192, 5
	}
	a.maxCells = 4*a.m + 64
	return a
}

// Name implements run.App.
func (a *Barnes) Name() string {
	if a.chunked {
		return "Barnes-Hut-chunked"
	}
	return "Barnes-Hut"
}

// Layout implements run.App.
func (a *Barnes) Layout(al *mem.Allocator) {
	a.bodies = al.Alloc("bodies", a.m*bodyBytes, 8)
	a.cells = al.Alloc("cells", a.maxCells*cellBytes, 8)
	a.ncells = al.Alloc("ncells", 8, 4)
}

// Body field addresses. Set A holds position and mass; set B holds force.
func (a *Barnes) posAddr(i, c int) mem.Addr   { return a.bodies + mem.Addr(bodyBytes*i+8*c) }
func (a *Barnes) massAddr(i int) mem.Addr     { return a.bodies + mem.Addr(bodyBytes*i+24) }
func (a *Barnes) forceAddr(i, c int) mem.Addr { return a.bodies + mem.Addr(bodyBytes*i+64+8*c) }

// Cell field addresses.
func (a *Barnes) cCenter(c, k int) mem.Addr { return a.cells + mem.Addr(cellBytes*c+8*k) }
func (a *Barnes) cHalf(c int) mem.Addr      { return a.cells + mem.Addr(cellBytes*c+24) }
func (a *Barnes) cCom(c, k int) mem.Addr    { return a.cells + mem.Addr(cellBytes*c+32+8*k) }
func (a *Barnes) cMass(c int) mem.Addr      { return a.cells + mem.Addr(cellBytes*c+56) }
func (a *Barnes) cKid(c, k int) mem.Addr    { return a.cells + mem.Addr(cellBytes*c+64+4*k) }

// Child encoding: 0 = empty, > 0 = cell index, < 0 = -(body index + 1).
const emptyKid = 0

// cellsPerLock groups cells under one lock: the granularity choice of
// Section 3.3 ("if some fields of a large subset of the array elements are
// accessed in a phase, it may be profitable to associate a single lock with
// these fields for the entire subset"). Cells are written only by processor
// 0 and read by everyone, so coarse read-lock granularity cuts the
// per-traversal lock count without adding write contention.
const cellsPerLock = 64

// Lock layout. The body record splits into two lock sets (the deadlock fix
// of Section 3.3): set B (forces) always uses per-body locks; set A
// (positions+mass) uses per-body locks in the paper's program and per-owner
// chunk locks in the granularity-ablation variant.
func (a *Barnes) bodyBLock(i int) core.LockID { return core.LockID(1 + i) }
func (a *Barnes) bodyALock(i int) core.LockID { return core.LockID(1 + a.m + i) }
func (a *Barnes) posChunkLock(p int) core.LockID {
	return core.LockID(1 + 2*a.m + p)
}
func (a *Barnes) cellLock(c int) core.LockID {
	return core.LockID(1 + 2*a.m + 64 + c/cellsPerLock)
}

// posLock returns the lock protecting body i's position set: per body in
// the paper's program, per owner in the chunked variant.
func (a *Barnes) posLock(i int) core.LockID {
	if !a.chunked {
		return a.bodyALock(i)
	}
	for p := 0; p < a.nprocs; p++ {
		lo, hi := band(a.m, a.nprocs, p)
		if i >= lo && i < hi {
			return a.posChunkLock(p)
		}
	}
	return a.posChunkLock(0)
}

func (a *Barnes) initPos(i int) ([3]float64, float64) {
	rng := newLCG(uint64(31337 + i))
	return [3]float64{rng.f64(), rng.f64(), rng.f64()}, 1.0 / float64(a.m)
}

// Init implements run.App: body positions plus the sequential reference.
func (a *Barnes) Init(im *mem.Image) {
	for i := 0; i < a.m; i++ {
		p, m := a.initPos(i)
		for c := 0; c < 3; c++ {
			im.WriteF64(a.posAddr(i, c), p[c])
		}
		im.WriteF64(a.massAddr(i), m)
	}
	a.InitRef()
}

// InitRef implements run.RefInit: adopt the memoized sequential reference
// without re-seeding an image.
func (a *Barnes) InitRef() { a.computeReference() }

// --- plain-Go reference implementation (also defines the physics) ---------

type refCell struct {
	center [3]float64
	half   float64
	com    [3]float64
	mass   float64
	kids   [8]int // same encoding as the shared tree
}

type refTree struct {
	cells []refCell
	pos   [][3]float64
	mass  []float64
}

func buildRefTree(pos [][3]float64, mass []float64) *refTree {
	t := &refTree{pos: pos, mass: mass}
	t.cells = append(t.cells, refCell{center: [3]float64{0.5, 0.5, 0.5}, half: 0.5})
	for i := range pos {
		t.insert(0, i, 0)
	}
	t.com(0)
	return t
}

func octant(center, p [3]float64) int {
	o := 0
	for c := 0; c < 3; c++ {
		if p[c] >= center[c] {
			o |= 1 << c
		}
	}
	return o
}

func childCenter(center [3]float64, half float64, o int) [3]float64 {
	var out [3]float64
	for c := 0; c < 3; c++ {
		d := -half / 2
		if o&(1<<c) != 0 {
			d = half / 2
		}
		out[c] = center[c] + d
	}
	return out
}

func (t *refTree) insert(cell, body, depth int) {
	o := octant(t.cells[cell].center, t.pos[body])
	kid := t.cells[cell].kids[o]
	switch {
	case kid == emptyKid:
		t.cells[cell].kids[o] = -(body + 1)
	case kid < 0:
		other := -kid - 1
		if depth > 60 || t.pos[other] == t.pos[body] {
			// Coincident bodies: keep both in a chain is impossible in this
			// encoding; nudge by treating as direct neighbours (store the
			// new body in the next empty slot scan). Coincidence cannot
			// happen with our generator; guard anyway.
			panic("barnes: coincident bodies")
		}
		nc := len(t.cells)
		t.cells = append(t.cells, refCell{
			center: childCenter(t.cells[cell].center, t.cells[cell].half, o),
			half:   t.cells[cell].half / 2,
		})
		t.cells[cell].kids[o] = nc
		t.insert(nc, other, depth+1)
		t.insert(nc, body, depth+1)
	default:
		t.insert(kid, body, depth+1)
	}
}

func (t *refTree) com(cell int) ([3]float64, float64) {
	var com [3]float64
	var mass float64
	for _, kid := range t.cells[cell].kids {
		var kc [3]float64
		var km float64
		switch {
		case kid == emptyKid:
			continue
		case kid < 0:
			kc, km = t.pos[-kid-1], t.mass[-kid-1]
		default:
			kc, km = t.com(kid)
		}
		mass += km
		for c := 0; c < 3; c++ {
			com[c] += kc[c] * km
		}
	}
	if mass > 0 {
		for c := 0; c < 3; c++ {
			com[c] /= mass
		}
	}
	t.cells[cell].com = com
	t.cells[cell].mass = mass
	return com, mass
}

// gravity computes the interaction of a body at p with a point mass.
func gravity(p, q [3]float64, m float64) [3]float64 {
	var r [3]float64
	r2 := 1e-6 // softening
	for c := 0; c < 3; c++ {
		r[c] = q[c] - p[c]
		r2 += r[c] * r[c]
	}
	s := m / (r2 * math.Sqrt(r2))
	var f [3]float64
	for c := 0; c < 3; c++ {
		f[c] = s * r[c]
	}
	return f
}

// forceOn traverses the reference tree accumulating the force on body i,
// counting interactions.
func (t *refTree) forceOn(i, cell int, f *[3]float64, interactions *int) {
	for _, kid := range t.cells[cell].kids {
		switch {
		case kid == emptyKid:
		case kid < 0:
			j := -kid - 1
			if j != i {
				g := gravity(t.pos[i], t.pos[j], t.mass[j])
				for c := 0; c < 3; c++ {
					f[c] += g[c]
				}
				*interactions++
			}
		default:
			kc := &t.cells[kid]
			var d2 float64
			for c := 0; c < 3; c++ {
				dd := kc.com[c] - t.pos[i][c]
				d2 += dd * dd
			}
			size := kc.half * 2
			if size*size < barnesTheta*barnesTheta*d2 {
				g := gravity(t.pos[i], kc.com, kc.mass)
				for c := 0; c < 3; c++ {
					f[c] += g[c]
				}
				*interactions++
			} else {
				t.forceOn(i, kid, f, interactions)
			}
		}
	}
}

func (a *Barnes) computeReference() {
	key := [2]int{a.m, a.steps}
	if ref, ok := barnesRefCache.Load(key); ok {
		r := ref.(*barnesRef)
		a.expPos, a.expForce = r.pos, r.force
		return
	}
	pos := make([][3]float64, a.m)
	mass := make([]float64, a.m)
	for i := range pos {
		pos[i], mass[i] = a.initPos(i)
	}
	force := make([][3]float64, a.m)
	for s := 0; s < a.steps; s++ {
		t := buildRefTree(pos, mass)
		ints := 0
		for i := 0; i < a.m; i++ {
			force[i] = [3]float64{}
			t.forceOn(i, 0, &force[i], &ints)
		}
		for i := 0; i < a.m; i++ {
			for c := 0; c < 3; c++ {
				pos[i][c] += 1e-4 * force[i][c]
				pos[i][c] = math.Min(math.Max(pos[i][c], 0), 1-1e-12)
			}
		}
	}
	a.expPos, a.expForce = pos, force
	barnesRefCache.Store(key, &barnesRef{pos: pos, force: force})
}

// barnesRef memoizes the sequential reference per problem size: a pure
// function of (bodies, steps).
type barnesRef struct {
	pos, force [][3]float64
}

var barnesRefCache sync.Map // [2]int{m, steps} -> *barnesRef

// --- the DSM program -------------------------------------------------------

// Program implements run.App: the interface-adapter entry of barnesProgram —
// the same generic kernel the statically-dispatched entries run.
func (a *Barnes) Program(d core.DSM) { barnesProgram(a, d) }

// ProgramLRC implements run.StaticApp: barnesProgram at *lrc.Node.
func (a *Barnes) ProgramLRC(n *lrc.Node) { barnesProgram(a, n) }

// ProgramEC implements run.StaticApp: barnesProgram at *ec.Node.
func (a *Barnes) ProgramEC(n *ec.Node) { barnesProgram(a, n) }

// ProgramSeq implements run.StaticApp: barnesProgram at *run.Local.
func (a *Barnes) ProgramSeq(l *run.Local) { barnesProgram(a, l) }

// barnesProgram is the per-processor program as a generic kernel: one
// source, statically instantiated per protocol stack (the tree-walking
// helpers below are generic over the same frontend).
func barnesProgram[D core.Accessor](a *Barnes, d D) {
	ec := d.Model() == core.EC
	np := d.NProcs()
	me := d.Proc()
	a.nprocs = np
	lo, hi := band(a.m, np, me)

	if ec {
		for i := 0; i < a.m; i++ {
			d.Bind(a.bodyBLock(i), mem.Range{Base: a.forceAddr(i, 0), Len: 24})
		}
		if a.chunked {
			for p := 0; p < np; p++ {
				l, h := band(a.m, np, p)
				var rs []mem.Range
				for i := l; i < h; i++ {
					rs = append(rs, mem.Range{Base: a.posAddr(i, 0), Len: 32})
				}
				if len(rs) > 0 {
					d.Bind(a.posChunkLock(p), rs...)
				}
			}
		} else {
			for i := 0; i < a.m; i++ {
				d.Bind(a.bodyALock(i), mem.Range{Base: a.posAddr(i, 0), Len: 32})
			}
		}
		for c := 0; c < a.maxCells; c += cellsPerLock {
			n := min(cellsPerLock, a.maxCells-c)
			d.Bind(a.cellLock(c), mem.Range{Base: a.cells + mem.Addr(cellBytes*c), Len: n * cellBytes})
		}
	}

	// Per-phase read-lock cache (EC): lock each cell/body set once per
	// phase, releasing in acquisition order at phase end.
	var held []core.LockID
	heldSet := map[core.LockID]bool{}
	rlock := func(l core.LockID) {
		if !ec || heldSet[l] {
			return
		}
		d.AcquireRead(l)
		heldSet[l] = true
		held = append(held, l)
	}
	releaseAll := func() {
		for _, l := range held {
			d.Release(l)
		}
		held = held[:0]
		heldSet = map[core.LockID]bool{}
	}

	for s := 0; s < a.steps; s++ {
		// Phase 1 (processor 0): rebuild the oct-tree from the body
		// positions. Under EC this takes read locks on every body's
		// position set and exclusive locks on the cells being written.
		if me == 0 {
			barnesBuildShared(a, d, rlock)
			releaseAll()
		}
		d.Barrier(0)

		// Phase 2: load balancing. Every processor traverses the tree
		// (read-locking cells under EC) to examine the body distribution;
		// the assignment itself is the static band (a documented
		// simplification — cost zones change ownership rarely for uniform
		// distributions).
		barnesTraverse(a, d, 0, rlock)
		releaseAll()
		d.Barrier(1)

		// Phase 3: force computation on my bodies.
		for i := lo; i < hi; i++ {
			var f [3]float64
			ints := 0
			barnesForce(a, d, i, 0, &f, &ints, rlock)
			d.Compute(sim.Time(ints) * barnesPerInteract)
			if ec {
				d.Acquire(a.bodyBLock(i))
			}
			for c := 0; c < 3; c++ {
				d.WriteF64(a.forceAddr(i, c), f[c])
			}
			if ec {
				d.Release(a.bodyBLock(i))
			}
		}
		releaseAll()
		d.Barrier(2)

		// Phase 4: position update on my bodies under the position locks
		// (they stay owned here, so reacquisition is free).
		if ec && a.chunked && hi > lo {
			d.Acquire(a.posChunkLock(me))
		}
		for i := lo; i < hi; i++ {
			if ec {
				if !a.chunked {
					d.Acquire(a.bodyALock(i))
				}
				d.AcquireRead(a.bodyBLock(i))
			}
			for c := 0; c < 3; c++ {
				p := d.ReadF64(a.posAddr(i, c)) + 1e-4*d.ReadF64(a.forceAddr(i, c))
				p = math.Min(math.Max(p, 0), 1-1e-12)
				d.WriteF64(a.posAddr(i, c), p)
			}
			d.Compute(3 * sim.Microsecond)
			if ec {
				d.Release(a.bodyBLock(i))
				if !a.chunked {
					d.Release(a.bodyALock(i))
				}
			}
		}
		if ec && a.chunked && hi > lo {
			d.Release(a.posChunkLock(me))
		}
		d.Barrier(3)
	}
	d.StatsEnd()

	// Gather for verification.
	if me == 0 {
		if ec && a.chunked {
			for p := 1; p < np; p++ {
				if l, h := band(a.m, np, p); h > l {
					d.AcquireRead(a.posChunkLock(p))
				}
			}
		}
		for i := 0; i < a.m; i++ {
			if ec {
				if !a.chunked {
					d.AcquireRead(a.posLock(i))
				}
				d.AcquireRead(a.bodyBLock(i))
			}
			for c := 0; c < 3; c++ {
				_ = d.ReadF64(a.posAddr(i, c))
				_ = d.ReadF64(a.forceAddr(i, c))
			}
			if ec {
				d.Release(a.bodyBLock(i))
				if !a.chunked {
					d.Release(a.posLock(i))
				}
			}
		}
		if ec && a.chunked {
			for p := 1; p < np; p++ {
				if l, h := band(a.m, np, p); h > l {
					d.Release(a.posChunkLock(p))
				}
			}
		}
	}
}

// buildShared rebuilds the shared tree (processor 0 only). Cell locks are
// acquired exclusively per touched cell; they stay owned by processor 0
// across steps, so reacquisition is free after the first step.
func barnesBuildShared[D core.Accessor](a *Barnes, d D, rlock func(core.LockID)) {
	ec := d.Model() == core.EC
	next := 1
	var heldCells []core.LockID
	heldCell := map[core.LockID]bool{}
	wlockCell := func(c int) {
		l := a.cellLock(c)
		if !ec || heldCell[l] {
			return
		}
		d.Acquire(l)
		heldCell[l] = true
		heldCells = append(heldCells, l)
	}
	// Root cell.
	wlockCell(0)
	d.WriteF64(a.cCenter(0, 0), 0.5)
	d.WriteF64(a.cCenter(0, 1), 0.5)
	d.WriteF64(a.cCenter(0, 2), 0.5)
	d.WriteF64(a.cHalf(0), 0.5)
	for k := 0; k < 8; k++ {
		d.WriteI32(a.cKid(0, k), emptyKid)
	}

	var insert func(cell, body, depth int)
	insert = func(cell, body, depth int) {
		d.Compute(barnesPerInsert)
		p := [3]float64{d.ReadF64(a.posAddr(body, 0)), d.ReadF64(a.posAddr(body, 1)), d.ReadF64(a.posAddr(body, 2))}
		center := [3]float64{d.ReadF64(a.cCenter(cell, 0)), d.ReadF64(a.cCenter(cell, 1)), d.ReadF64(a.cCenter(cell, 2))}
		o := octant(center, p)
		kid := int(d.ReadI32(a.cKid(cell, o)))
		switch {
		case kid == emptyKid:
			d.WriteI32(a.cKid(cell, o), int32(-(body + 1)))
		case kid < 0:
			other := -kid - 1
			if depth > 60 {
				panic("barnes: tree too deep")
			}
			nc := next
			next++
			if nc >= a.maxCells {
				panic("barnes: cell pool exhausted")
			}
			wlockCell(nc)
			half := d.ReadF64(a.cHalf(cell))
			cc := childCenter(center, half, o)
			for c := 0; c < 3; c++ {
				d.WriteF64(a.cCenter(nc, c), cc[c])
			}
			d.WriteF64(a.cHalf(nc), half/2)
			for k := 0; k < 8; k++ {
				d.WriteI32(a.cKid(nc, k), emptyKid)
			}
			d.WriteI32(a.cKid(cell, o), int32(nc))
			insert(nc, other, depth+1)
			insert(nc, body, depth+1)
		default:
			insert(kid, body, depth+1)
		}
	}
	for i := 0; i < a.m; i++ {
		rlock(a.posLock(i))
		insert(0, i, 0)
	}

	var com func(cell int) ([3]float64, float64)
	com = func(cell int) ([3]float64, float64) {
		d.Compute(barnesPerVisit)
		var cm [3]float64
		var mass float64
		for k := 0; k < 8; k++ {
			kid := int(d.ReadI32(a.cKid(cell, k)))
			var kc [3]float64
			var km float64
			switch {
			case kid == emptyKid:
				continue
			case kid < 0:
				b := -kid - 1
				kc = [3]float64{d.ReadF64(a.posAddr(b, 0)), d.ReadF64(a.posAddr(b, 1)), d.ReadF64(a.posAddr(b, 2))}
				km = d.ReadF64(a.massAddr(b))
			default:
				kc, km = com(kid)
			}
			mass += km
			for c := 0; c < 3; c++ {
				cm[c] += kc[c] * km
			}
		}
		if mass > 0 {
			for c := 0; c < 3; c++ {
				cm[c] /= mass
			}
		}
		for c := 0; c < 3; c++ {
			d.WriteF64(a.cCom(cell, c), cm[c])
		}
		d.WriteF64(a.cMass(cell), mass)
		return cm, mass
	}
	com(0)

	if ec {
		for _, l := range heldCells {
			d.Release(l)
		}
	}
}

// traverse walks the whole tree, read-locking cells (the load-balancing
// phase's tree examination).
func barnesTraverse[D core.Accessor](a *Barnes, d D, cell int, rlock func(core.LockID)) {
	rlock(a.cellLock(cell))
	d.Compute(barnesPerVisit)
	for k := 0; k < 8; k++ {
		kid := int(d.ReadI32(a.cKid(cell, k)))
		if kid > 0 {
			barnesTraverse(a, d, kid, rlock)
		}
	}
}

// force accumulates the force on body i by tree traversal, mirroring the
// reference implementation but reading through the DSM with EC read locks.
func barnesForce[D core.Accessor](a *Barnes, d D, i, cell int, f *[3]float64, ints *int, rlock func(core.LockID)) {
	rlock(a.cellLock(cell))
	pi := [3]float64{d.ReadF64(a.posAddr(i, 0)), d.ReadF64(a.posAddr(i, 1)), d.ReadF64(a.posAddr(i, 2))}
	for k := 0; k < 8; k++ {
		kid := int(d.ReadI32(a.cKid(cell, k)))
		switch {
		case kid == emptyKid:
		case kid < 0:
			j := -kid - 1
			if j != i {
				rlock(a.posLock(j))
				pj := [3]float64{d.ReadF64(a.posAddr(j, 0)), d.ReadF64(a.posAddr(j, 1)), d.ReadF64(a.posAddr(j, 2))}
				g := gravity(pi, pj, d.ReadF64(a.massAddr(j)))
				for c := 0; c < 3; c++ {
					f[c] += g[c]
				}
				*ints++
			}
		default:
			rlock(a.cellLock(kid))
			com := [3]float64{d.ReadF64(a.cCom(kid, 0)), d.ReadF64(a.cCom(kid, 1)), d.ReadF64(a.cCom(kid, 2))}
			var d2 float64
			for c := 0; c < 3; c++ {
				dd := com[c] - pi[c]
				d2 += dd * dd
			}
			size := d.ReadF64(a.cHalf(kid)) * 2
			if size*size < barnesTheta*barnesTheta*d2 {
				g := gravity(pi, com, d.ReadF64(a.cMass(kid)))
				for c := 0; c < 3; c++ {
					f[c] += g[c]
				}
				*ints++
			} else {
				barnesForce(a, d, i, kid, f, ints, rlock)
			}
		}
	}
}

// Verify implements run.App.
func (a *Barnes) Verify(im *mem.Image) error {
	const tol = 1e-9
	for i := 0; i < a.m; i++ {
		for c := 0; c < 3; c++ {
			got := im.ReadF64(a.posAddr(i, c))
			want := a.expPos[i][c]
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				return fmt.Errorf("Barnes-Hut: pos[%d][%d] = %v, want %v", i, c, got, want)
			}
			gotF := im.ReadF64(a.forceAddr(i, c))
			wantF := a.expForce[i][c]
			if math.Abs(gotF-wantF) > tol*(1+math.Abs(wantF)) {
				return fmt.Errorf("Barnes-Hut: force[%d][%d] = %v, want %v", i, c, gotF, wantF)
			}
		}
	}
	return nil
}
