package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestImplNames(t *testing.T) {
	cases := map[string]Impl{
		"EC-ci":    {EC, CompilerInstr, Timestamps},
		"EC-time":  {EC, Twinning, Timestamps},
		"EC-diff":  {EC, Twinning, Diffs},
		"LRC-ci":   {LRC, CompilerInstr, Timestamps},
		"LRC-time": {LRC, Twinning, Timestamps},
		"LRC-diff": {LRC, Twinning, Diffs},
	}
	for want, impl := range cases {
		if got := impl.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", impl, got, want)
		}
		parsed, err := ParseImpl(want)
		if err != nil || parsed != impl {
			t.Errorf("ParseImpl(%q) = %+v, %v", want, parsed, err)
		}
	}
}

func TestParseImplUnknown(t *testing.T) {
	if _, err := ParseImpl("EC-lazy"); err == nil {
		t.Error("want error for unknown implementation")
	}
}

func TestImplValidity(t *testing.T) {
	// Compiler instrumentation + diffing is the excluded combination
	// (memory overhead of both dirty bits and diffs, Section 5.3).
	bad := Impl{EC, CompilerInstr, Diffs}
	if bad.Valid() {
		t.Error("ci+diff must be invalid")
	}
	for _, i := range Implementations() {
		if !i.Valid() {
			t.Errorf("%v listed but invalid", i)
		}
	}
}

func TestImplementationsMatchTable1(t *testing.T) {
	impls := Implementations()
	if len(impls) != 6 {
		t.Fatalf("count = %d, want 6", len(impls))
	}
	if len(ModelImpls(EC)) != 3 || len(ModelImpls(LRC)) != 3 {
		t.Error("each model has three implementations")
	}
	seen := map[string]bool{}
	for _, i := range impls {
		if seen[i.String()] {
			t.Errorf("duplicate %v", i)
		}
		seen[i.String()] = true
	}
}

func TestStatsMBAndString(t *testing.T) {
	s := Stats{Bytes: 5_700_000, Msgs: 10498, Time: 13_230_000_000}
	if s.MB() != 5.7 {
		t.Errorf("MB = %v", s.MB())
	}
	out := s.String()
	for _, frag := range []string{"13.23s", "msgs=10498", "5.70MB"} {
		if !strings.Contains(out, frag) {
			t.Errorf("String() = %q missing %q", out, frag)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if EC.String() != "EC" || LRC.String() != "LRC" {
		t.Error("Model strings")
	}
	if CompilerInstr.String() != "ci" || Twinning.String() != "twin" {
		t.Error("Trap strings")
	}
	if Timestamps.String() != "time" || Diffs.String() != "diff" {
		t.Error("Collect strings")
	}
}

// Property: String/ParseImpl round-trip for every valid combination.
func TestPropertyImplRoundTrip(t *testing.T) {
	f := func(m, tr, c uint8) bool {
		impl := Impl{Model: Model(m % 2), Trap: Trap(tr % 2), Collect: Collect(c % 2)}
		if !impl.Valid() {
			return true
		}
		// Names collapse trapping/collection into the paper's three labels;
		// ci implies timestamps.
		parsed, err := ParseImpl(impl.String())
		if err != nil {
			return false
		}
		return parsed.Model == impl.Model && parsed.String() == impl.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
