// Package core defines the public surface shared by every DSM implementation
// in this repository: the consistency model / write trapping / write
// collection configuration matrix (Table 1 of the paper), the DSM programming
// interface used by the applications, and the run statistics the paper
// reports (execution time, messages, data moved).
package core

import (
	"fmt"

	"ecvslrc/internal/mem"
	"ecvslrc/internal/sim"
)

// Model selects the consistency model.
type Model int

const (
	// EC is entry consistency (Midway): shared data is bound to locks, an
	// update protocol propagates only the bound data at acquires.
	EC Model = iota
	// LRC is lazy release consistency (TreadMarks): all shared data is made
	// consistent at acquires via write notices and an invalidate protocol.
	LRC
)

func (m Model) String() string {
	if m == EC {
		return "EC"
	}
	return "LRC"
}

// Trap selects the write-trapping mechanism (Section 4).
type Trap int

const (
	// CompilerInstr uses compiler-emitted software dirty bits.
	CompilerInstr Trap = iota
	// Twinning compares data against saved copies.
	Twinning
)

func (t Trap) String() string {
	if t == CompilerInstr {
		return "ci"
	}
	return "twin"
}

// Collect selects the write-collection mechanism (Section 5).
type Collect int

const (
	// Timestamps tags each block with a logical time and scans on request.
	Timestamps Collect = iota
	// Diffs builds run-length-encoded change records once and forwards them.
	Diffs
)

func (c Collect) String() string {
	if c == Timestamps {
		return "time"
	}
	return "diff"
}

// Impl is one cell of the paper's implementation matrix.
type Impl struct {
	Model   Model
	Trap    Trap
	Collect Collect
}

// Valid reports whether the combination is one the paper explores. Compiler
// instrumentation with diffing is excluded: it would pay the memory overhead
// of both the software dirty bits and the diffs (Section 5.3).
func (i Impl) Valid() bool {
	return !(i.Trap == CompilerInstr && i.Collect == Diffs)
}

// String renders the paper's implementation names: EC-ci, EC-time, EC-diff,
// LRC-ci, LRC-time, LRC-diff. "ci" implies timestamps; "time" and "diff" use
// twinning.
func (i Impl) String() string {
	switch {
	case i.Trap == CompilerInstr:
		return i.Model.String() + "-ci"
	case i.Collect == Timestamps:
		return i.Model.String() + "-time"
	default:
		return i.Model.String() + "-diff"
	}
}

// ParseImpl converts a paper-style implementation name back to an Impl.
func ParseImpl(s string) (Impl, error) {
	for _, i := range Implementations() {
		if i.String() == s {
			return i, nil
		}
	}
	return Impl{}, fmt.Errorf("core: unknown implementation %q", s)
}

// Implementations lists the six combinations explored in the paper, EC first.
func Implementations() []Impl {
	return []Impl{
		{EC, CompilerInstr, Timestamps},
		{EC, Twinning, Timestamps},
		{EC, Twinning, Diffs},
		{LRC, CompilerInstr, Timestamps},
		{LRC, Twinning, Timestamps},
		{LRC, Twinning, Diffs},
	}
}

// ModelImpls lists the implementations of one model.
func ModelImpls(m Model) []Impl {
	var out []Impl
	for _, i := range Implementations() {
		if i.Model == m {
			out = append(out, i)
		}
	}
	return out
}

// LockID names a lock. Locks are created on first use; managers are assigned
// round-robin by ID (Section 6).
type LockID int

// BarrierID names a barrier; managers are assigned round-robin by ID.
type BarrierID int

// DSM is the programming interface the applications run against. One DSM
// value exists per simulated processor. All shared-memory access goes through
// the typed accessors so the implementation can trap writes and detect access
// misses; Compute charges application CPU time to the simulated clock.
type DSM interface {
	// Proc returns this processor's id, 0-based.
	Proc() int
	// NProcs returns the number of processors in the run.
	NProcs() int
	// Model identifies the consistency model, letting one application
	// source express both programming styles (Section 3.3).
	Model() Model

	// ReadI32 loads a 32-bit integer from shared memory.
	ReadI32(a mem.Addr) int32
	// WriteI32 stores a 32-bit integer to shared memory.
	WriteI32(a mem.Addr, v int32)
	// ReadF32 loads a 32-bit float from shared memory.
	ReadF32(a mem.Addr) float32
	// WriteF32 stores a 32-bit float to shared memory.
	WriteF32(a mem.Addr, v float32)
	// ReadF64 loads a 64-bit float from shared memory.
	ReadF64(a mem.Addr) float64
	// WriteF64 stores a 64-bit float to shared memory.
	WriteF64(a mem.Addr, v float64)

	// Acquire obtains lock l in exclusive mode, performing the model's
	// consistency actions.
	Acquire(l LockID)
	// AcquireRead obtains lock l in read-only mode (EC programs use this
	// for data read but not written; LRC treats it as Acquire).
	AcquireRead(l LockID)
	// Release releases lock l.
	Release(l LockID)
	// Barrier blocks until all processors arrive at barrier b.
	Barrier(b BarrierID)

	// Bind associates shared ranges with lock l (EC only; no-op for LRC).
	// Every processor must issue identical initial bindings.
	Bind(l LockID, rs ...mem.Range)
	// Rebind changes the data bound to l (EC only). Must be called while
	// holding l exclusively; the next transfer conservatively sends all
	// bound data (Section 7.1, "Rebinding").
	Rebind(l LockID, rs ...mem.Range)
	// AcquireForRebind obtains l exclusively without applying the update-
	// protocol data: the caller is about to Rebind, so the old binding's
	// contents must not be installed (they may alias memory the acquirer
	// currently holds newer values for under other locks). Equivalent to
	// Acquire under LRC.
	AcquireForRebind(l LockID)

	// Compute charges d of application CPU time.
	Compute(d sim.Time)
	// Now returns the current simulated time.
	Now() sim.Time

	// StatsBegin starts this processor's measurement window (typically
	// right after initialization barriers).
	StatsBegin()
	// StatsEnd closes the window (typically right after the final barrier,
	// before result verification).
	StatsEnd()
}

// Accessor is the type-parameter constraint for statically-dispatched
// application kernels: write the program once as
//
//	func kernel[D core.Accessor](d D, ...)
//
// and instantiate it per protocol stack (*lrc.Node, *ec.Node, run.Local's
// sequential frontend). Each instantiation binds the accessor calls to one
// concrete frontend, so the per-word hot path (ReadI32..WriteF64, Compute,
// Now) avoids the itab-based interface dispatch a core.DSM value pays on
// every shared access. The method set is exactly DSM: the interface remains
// the stable adapter surface (CLIs, tests, custom tooling), and any kernel
// also instantiates with D = core.DSM itself — that is the adapter path.
type Accessor interface {
	DSM
}

// Stats aggregates one run's measurements in the units the paper reports.
type Stats struct {
	// Time is the parallel execution time: the latest StatsEnd minus the
	// earliest StatsBegin over all processors.
	Time sim.Time
	// Msgs counts messages sent inside the window.
	Msgs int64
	// Bytes counts bytes sent (with headers) inside the window.
	Bytes int64
	// Faults counts protection faults (SIGSEGV) taken.
	Faults int64
	// AccessMisses counts LRC page access misses.
	AccessMisses int64
	// LockAcquires counts exclusive lock acquisitions.
	LockAcquires int64
	// ReadLockAcquires counts read-only lock acquisitions.
	ReadLockAcquires int64
	// RemoteAcquires counts acquisitions that required messages.
	RemoteAcquires int64
	// Barriers counts barrier episodes completed.
	Barriers int64
	// DiffsCreated counts diffs built.
	DiffsCreated int64
	// TwinsMade counts page twins created.
	TwinsMade int64
	// StampRunsSent counts timestamp runs transmitted.
	StampRunsSent int64
}

// MB reports the data volume in megabytes (10^6 bytes, as the paper quotes).
func (s Stats) MB() float64 { return float64(s.Bytes) / 1e6 }

// String summarizes the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("time=%v msgs=%d data=%.2fMB faults=%d misses=%d locks=%d(+%dro) barriers=%d",
		s.Time, s.Msgs, s.MB(), s.Faults, s.AccessMisses, s.LockAcquires, s.ReadLockAcquires, s.Barriers)
}
