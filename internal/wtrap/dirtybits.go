// Package wtrap implements the paper's two write-trapping mechanisms:
// compiler instrumentation (software dirty bits set on every shared store,
// Section 4.1) and twinning (unmodified copies compared word-by-word,
// Section 4.2). Trapping detects WHICH shared data changed during an
// execution interval; write collection (package wcollect) decides WHAT to
// send.
package wtrap

import (
	"ecvslrc/internal/mem"
)

// DirtyBits is the compiler-instrumentation tracker: one software dirty bit
// per block (word or double-word, per region), plus optional page-level
// dirty bits for the hierarchical scheme used with LRC (Section 4.1,
// "Differences between EC and LRC").
type DirtyBits struct {
	al *mem.Allocator
	// words and pageDirty are indexed by page number (flat, sized from the
	// allocator's extent): the per-page bit arrays allocate lazily and are
	// zeroed in place on reset so steady-state runs reuse their memory.
	words        []*pageBits
	pageDirty    []bool
	dirtyCount   int
	hierarchical bool
	stores       int64
}

type pageBits [mem.PageWords / 64]uint64

func (pb *pageBits) set(w int)      { pb[w>>6] |= 1 << (uint(w) & 63) }
func (pb *pageBits) get(w int) bool { return pb[w>>6]&(1<<(uint(w)&63)) != 0 }

// NewDirtyBits returns a tracker over the allocator's address space.
// hierarchical additionally maintains page-level dirty bits so collection
// can skip clean pages (required for LRC, where there is no lock/data
// association to narrow the scan).
func NewDirtyBits(al *mem.Allocator, hierarchical bool) *DirtyBits {
	return &DirtyBits{
		al:           al,
		words:        make([]*pageBits, al.Pages()),
		pageDirty:    make([]bool, al.Pages()),
		hierarchical: hierarchical,
	}
}

// Hierarchical reports whether page-level bits are maintained.
func (db *DirtyBits) Hierarchical() bool { return db.hierarchical }

// Stores returns the number of instrumented stores recorded (each one paid
// the instrumentation cost).
func (db *DirtyBits) Stores() int64 { return db.stores }

// pageBitsFor returns page pg's bit array, allocating it on first touch.
func (db *DirtyBits) pageBitsFor(pg int) *pageBits {
	pb := db.words[pg]
	if pb == nil {
		pb = new(pageBits)
		db.words[pg] = pb
	}
	return pb
}

// NoteWrite records a store of size bytes at a: the compiler-emitted code
// vectors to the region's template and sets the dirty bit(s) of the block(s)
// covering the store.
func (db *DirtyBits) NoteWrite(a mem.Addr, size int) {
	db.stores++
	block := db.al.BlockAt(a)
	first := int(a) &^ (block - 1) // block is a power of two
	for off := first; off < int(a)+size; off += block {
		pg := off >> mem.PageShift
		db.pageBitsFor(pg).set((off & (mem.PageSize - 1)) / mem.WordSize)
		if db.hierarchical && !db.pageDirty[pg] {
			db.pageDirty[pg] = true
			db.dirtyCount++
		}
	}
}

// DirtyPages returns the pages with the page-level dirty bit set, sorted.
// Only meaningful for hierarchical trackers.
func (db *DirtyBits) DirtyPages() []int {
	out := make([]int, 0, db.dirtyCount)
	for pg, d := range db.pageDirty {
		if d {
			out = append(out, pg)
		}
	}
	return out
}

// Collect scans the dirty bits within ranges and returns the modified spans
// as block-aligned runs, plus the number of blocks examined (the write-
// collection scan cost). The bits are left set; call Reset to clear them.
func (db *DirtyBits) Collect(ranges []mem.Range) (runs []mem.Range, scanned int) {
	for _, r := range ranges {
		if r.Len <= 0 {
			continue
		}
		block := db.al.BlockAt(r.Base)
		start := int(r.Base) &^ (block - 1) // block is a power of two
		end := int(r.End())
		var cur *mem.Range
		// Walk the span page by page so the bit-array lookup happens once
		// per page instead of once per block.
		for off := start; off < end; {
			pg := off >> mem.PageShift
			stop := (pg + 1) << mem.PageShift
			if stop > end {
				stop = end
			}
			pb := db.words[pg]
			if pb == nil {
				scanned += (stop - off + block - 1) / block
				cur = nil
				off = stop
				continue
			}
			for ; off < stop; off += block {
				scanned++
				if pb.get((off & (mem.PageSize - 1)) / mem.WordSize) {
					if cur != nil && cur.End() == mem.Addr(off) {
						cur.Len += block
					} else {
						runs = append(runs, mem.Range{Base: mem.Addr(off), Len: block})
						cur = &runs[len(runs)-1]
					}
				} else {
					cur = nil
				}
			}
		}
	}
	return runs, scanned
}

// CollectPage scans one page's word-level bits (used with the hierarchical
// scheme after the page-level bit identified the page).
func (db *DirtyBits) CollectPage(pg int) (runs []mem.Range, scanned int) {
	return db.Collect([]mem.Range{{Base: mem.PageBase(pg), Len: mem.PageSize}})
}

// Reset clears all dirty state within ranges.
func (db *DirtyBits) Reset(ranges []mem.Range) {
	for _, r := range ranges {
		if r.Len <= 0 {
			continue
		}
		first, last := mem.PageOf(r.Base), mem.PageOf(r.End()-1)
		for pg := first; pg <= last; pg++ {
			pb := db.words[pg]
			if pb == nil {
				continue
			}
			lo := max(int(r.Base), int(mem.PageBase(pg)))
			hi := min(int(r.End()), int(mem.PageBase(pg+1)))
			for off := lo &^ (mem.WordSize - 1); off < hi; off += mem.WordSize {
				w := (off & (mem.PageSize - 1)) / mem.WordSize
				pb[w>>6] &^= 1 << (uint(w) & 63)
			}
		}
	}
}

// ResetPage clears the word bits and the page bit of page pg.
func (db *DirtyBits) ResetPage(pg int) {
	if pb := db.words[pg]; pb != nil {
		*pb = pageBits{} // zero in place: the array is reused on the next write
	}
	if db.pageDirty[pg] {
		db.pageDirty[pg] = false
		db.dirtyCount--
	}
}

// ResetAll clears every dirty bit.
func (db *DirtyBits) ResetAll() {
	for pg := range db.words {
		if pb := db.words[pg]; pb != nil {
			*pb = pageBits{}
		}
		db.pageDirty[pg] = false
	}
	db.dirtyCount = 0
}
