// Package wtrap implements the paper's two write-trapping mechanisms:
// compiler instrumentation (software dirty bits set on every shared store,
// Section 4.1) and twinning (unmodified copies compared word-by-word,
// Section 4.2). Trapping detects WHICH shared data changed during an
// execution interval; write collection (package wcollect) decides WHAT to
// send.
package wtrap

import (
	"sort"

	"ecvslrc/internal/mem"
)

// DirtyBits is the compiler-instrumentation tracker: one software dirty bit
// per block (word or double-word, per region), plus optional page-level
// dirty bits for the hierarchical scheme used with LRC (Section 4.1,
// "Differences between EC and LRC").
type DirtyBits struct {
	al           *mem.Allocator
	words        map[int]*pageBits
	dirtyPages   map[int]struct{}
	hierarchical bool
	stores       int64
}

type pageBits [mem.PageWords / 64]uint64

func (pb *pageBits) set(w int)      { pb[w>>6] |= 1 << (uint(w) & 63) }
func (pb *pageBits) get(w int) bool { return pb[w>>6]&(1<<(uint(w)&63)) != 0 }

// NewDirtyBits returns a tracker over the allocator's address space.
// hierarchical additionally maintains page-level dirty bits so collection
// can skip clean pages (required for LRC, where there is no lock/data
// association to narrow the scan).
func NewDirtyBits(al *mem.Allocator, hierarchical bool) *DirtyBits {
	return &DirtyBits{
		al:           al,
		words:        make(map[int]*pageBits),
		dirtyPages:   make(map[int]struct{}),
		hierarchical: hierarchical,
	}
}

// Hierarchical reports whether page-level bits are maintained.
func (db *DirtyBits) Hierarchical() bool { return db.hierarchical }

// Stores returns the number of instrumented stores recorded (each one paid
// the instrumentation cost).
func (db *DirtyBits) Stores() int64 { return db.stores }

// NoteWrite records a store of size bytes at a: the compiler-emitted code
// vectors to the region's template and sets the dirty bit(s) of the block(s)
// covering the store.
func (db *DirtyBits) NoteWrite(a mem.Addr, size int) {
	db.stores++
	block := db.al.BlockAt(a)
	first := (int(a) / block) * block
	for off := first; off < int(a)+size; off += block {
		pg := mem.PageOf(mem.Addr(off))
		pb := db.words[pg]
		if pb == nil {
			pb = new(pageBits)
			db.words[pg] = pb
		}
		pb.set((off % mem.PageSize) / mem.WordSize)
		if db.hierarchical {
			db.dirtyPages[pg] = struct{}{}
		}
	}
}

// DirtyPages returns the pages with the page-level dirty bit set, sorted.
// Only meaningful for hierarchical trackers.
func (db *DirtyBits) DirtyPages() []int {
	out := make([]int, 0, len(db.dirtyPages))
	for pg := range db.dirtyPages {
		out = append(out, pg)
	}
	sort.Ints(out)
	return out
}

// Collect scans the dirty bits within ranges and returns the modified spans
// as block-aligned runs, plus the number of blocks examined (the write-
// collection scan cost). The bits are left set; call Reset to clear them.
func (db *DirtyBits) Collect(ranges []mem.Range) (runs []mem.Range, scanned int) {
	for _, r := range ranges {
		if r.Len <= 0 {
			continue
		}
		block := db.al.BlockAt(r.Base)
		start := (int(r.Base) / block) * block
		end := int(r.End())
		var cur *mem.Range
		for off := start; off < end; off += block {
			scanned++
			pg := mem.PageOf(mem.Addr(off))
			pb := db.words[pg]
			dirty := pb != nil && pb.get((off%mem.PageSize)/mem.WordSize)
			if dirty {
				if cur != nil && cur.End() == mem.Addr(off) {
					cur.Len += block
				} else {
					runs = append(runs, mem.Range{Base: mem.Addr(off), Len: block})
					cur = &runs[len(runs)-1]
				}
			} else {
				cur = nil
			}
		}
	}
	return runs, scanned
}

// CollectPage scans one page's word-level bits (used with the hierarchical
// scheme after the page-level bit identified the page).
func (db *DirtyBits) CollectPage(pg int) (runs []mem.Range, scanned int) {
	return db.Collect([]mem.Range{{Base: mem.PageBase(pg), Len: mem.PageSize}})
}

// Reset clears all dirty state within ranges.
func (db *DirtyBits) Reset(ranges []mem.Range) {
	for _, r := range ranges {
		if r.Len <= 0 {
			continue
		}
		for _, pg := range r.Pages() {
			pb := db.words[pg]
			if pb == nil {
				continue
			}
			lo := max(int(r.Base), int(mem.PageBase(pg)))
			hi := min(int(r.End()), int(mem.PageBase(pg+1)))
			for off := lo &^ (mem.WordSize - 1); off < hi; off += mem.WordSize {
				w := (off % mem.PageSize) / mem.WordSize
				pb[w>>6] &^= 1 << (uint(w) & 63)
			}
		}
	}
}

// ResetPage clears the word bits and the page bit of page pg.
func (db *DirtyBits) ResetPage(pg int) {
	delete(db.words, pg)
	delete(db.dirtyPages, pg)
}

// ResetAll clears every dirty bit.
func (db *DirtyBits) ResetAll() {
	db.words = make(map[int]*pageBits)
	db.dirtyPages = make(map[int]struct{})
}
