package wtrap

import (
	"sort"

	"ecvslrc/internal/mem"
)

// PageTwins implements copy-on-write page twinning, the mechanism used by
// LRC and by EC for objects larger than a page: the page is write-protected;
// the first write faults, a copy (the twin) is made, and the page is
// unprotected. At collection time the page is compared word-by-word against
// its twin.
type PageTwins struct {
	im    *mem.Image
	twins map[int][]byte
	made  int64
}

// NewPageTwins returns an empty twin store over image im.
func NewPageTwins(im *mem.Image) *PageTwins {
	return &PageTwins{im: im, twins: make(map[int][]byte)}
}

// Make copies page pg as its twin. Calling Make for an already-twinned page
// panics: the protocol must not double-fault.
func (t *PageTwins) Make(pg int) {
	if _, ok := t.twins[pg]; ok {
		panic("wtrap: page already twinned")
	}
	twin := make([]byte, mem.PageSize)
	copy(twin, t.im.Page(pg))
	t.twins[pg] = twin
	t.made++
}

// Has reports whether page pg currently has a twin.
func (t *PageTwins) Has(pg int) bool {
	_, ok := t.twins[pg]
	return ok
}

// Pages returns the twinned pages in ascending order.
func (t *PageTwins) Pages() []int {
	out := make([]int, 0, len(t.twins))
	for pg := range t.twins {
		out = append(out, pg)
	}
	sort.Ints(out)
	return out
}

// Made returns the total number of twins created.
func (t *PageTwins) Made() int64 { return t.made }

// Compare diffs page pg against its twin and returns the modified words as
// coalesced runs. The comparison examines every word of the page (the
// twinning granularity is always a single word, Section 5.1).
func (t *PageTwins) Compare(pg int) (runs []mem.Range, compared int) {
	twin, ok := t.twins[pg]
	if !ok {
		panic("wtrap: compare of untwinned page")
	}
	cur := t.im.Page(pg)
	return compareWords(cur, twin, mem.PageBase(pg))
}

// Drop discards the twin of page pg.
func (t *PageTwins) Drop(pg int) { delete(t.twins, pg) }

// Refresh overwrites the twin of page pg with the current image contents in
// the byte span [lo, hi) (absolute addresses). EC uses this when two locks'
// large objects share a page: after harvesting one lock's changes, its span
// of the twin is brought up to date so the other lock's later harvest does
// not re-collect them.
func (t *PageTwins) Refresh(im *mem.Image, pg, lo, hi int) {
	twin, ok := t.twins[pg]
	if !ok {
		panic("wtrap: refresh of untwinned page")
	}
	base := int(mem.PageBase(pg))
	copy(twin[lo-base:hi-base], im.Bytes()[lo:hi])
}

// DropAll discards every twin.
func (t *PageTwins) DropAll() { t.twins = make(map[int][]byte) }

// ObjectTwin is the eager small-object twin used by our EC implementation:
// when a write lock is acquired on an object smaller than a page, the object
// is copied immediately instead of taking a protection fault (Section 4.2,
// "Twinning for EC" — the improvement over the Midway VM implementation).
type ObjectTwin struct {
	ranges []mem.Range
	data   [][]byte
	im     *mem.Image
}

// MakeObjectTwin eagerly copies the bytes of ranges from im.
func MakeObjectTwin(im *mem.Image, ranges []mem.Range) *ObjectTwin {
	o := &ObjectTwin{ranges: ranges, im: im}
	for _, r := range ranges {
		b := make([]byte, r.Len)
		copy(b, im.Bytes()[r.Base:r.End()])
		o.data = append(o.data, b)
	}
	return o
}

// Words returns the total words twinned (the copy cost basis).
func (o *ObjectTwin) Words() int {
	n := 0
	for _, r := range o.ranges {
		n += r.Words()
	}
	return n
}

// Compare diffs the current object contents against the twin, returning
// modified word runs and the number of words compared.
func (o *ObjectTwin) Compare() (runs []mem.Range, compared int) {
	for i, r := range o.ranges {
		rs, c := compareWords(o.im.Bytes()[r.Base:r.End()], o.data[i], r.Base)
		runs = append(runs, rs...)
		compared += c
	}
	return runs, compared
}

// compareWords diffs cur against old word-by-word; base is the shared
// address of cur[0]. Both slices must have equal, word-multiple length.
func compareWords(cur, old []byte, base mem.Addr) (runs []mem.Range, compared int) {
	words := len(cur) / mem.WordSize
	compared = words
	var run *mem.Range
	for w := 0; w < words; w++ {
		off := w * mem.WordSize
		same := cur[off] == old[off] && cur[off+1] == old[off+1] &&
			cur[off+2] == old[off+2] && cur[off+3] == old[off+3]
		if !same {
			a := base + mem.Addr(off)
			if run != nil && run.End() == a {
				run.Len += mem.WordSize
			} else {
				runs = append(runs, mem.Range{Base: a, Len: mem.WordSize})
				run = &runs[len(runs)-1]
			}
		} else {
			run = nil
		}
	}
	return runs, compared
}
