package wtrap

import (
	"bytes"
	"encoding/binary"

	"ecvslrc/internal/mem"
)

// PageTwins implements copy-on-write page twinning, the mechanism used by
// LRC and by EC for objects larger than a page: the page is write-protected;
// the first write faults, a copy (the twin) is made, and the page is
// unprotected. At collection time the page is compared word-by-word against
// its twin.
type PageTwins struct {
	im      *mem.Image
	twins   [][]byte // indexed by page; nil = no twin
	pool    [][]byte // free-list of dropped twin buffers, reused by Make
	scratch []mem.Range
	count   int
	made    int64

	// OnMake, when non-nil, observes every twin creation (the tracing
	// subsystem's tap point). It must not mutate twin state.
	OnMake func(pg int)
}

// NewPageTwins returns an empty twin store over image im.
func NewPageTwins(im *mem.Image) *PageTwins {
	return &PageTwins{im: im, twins: make([][]byte, im.Size()/mem.PageSize)}
}

// Make copies page pg as its twin. Calling Make for an already-twinned page
// panics: the protocol must not double-fault.
func (t *PageTwins) Make(pg int) {
	if t.twins[pg] != nil {
		panic("wtrap: page already twinned")
	}
	var twin []byte
	if n := len(t.pool); n > 0 {
		twin = t.pool[n-1]
		t.pool[n-1] = nil
		t.pool = t.pool[:n-1]
	} else {
		twin = make([]byte, mem.PageSize)
	}
	copy(twin, t.im.Page(pg))
	t.twins[pg] = twin
	t.count++
	t.made++
	if t.OnMake != nil {
		t.OnMake(pg)
	}
}

// Has reports whether page pg currently has a twin.
func (t *PageTwins) Has(pg int) bool { return t.twins[pg] != nil }

// Pages returns the twinned pages in ascending order.
func (t *PageTwins) Pages() []int {
	out := make([]int, 0, t.count)
	for pg, twin := range t.twins {
		if twin != nil {
			out = append(out, pg)
		}
	}
	return out
}

// Made returns the total number of twins created.
func (t *PageTwins) Made() int64 { return t.made }

// Compare diffs page pg against its twin and returns the modified words as
// coalesced runs. The comparison examines every word of the page (the
// twinning granularity is always a single word, Section 5.1). The returned
// slice aliases an internal scratch buffer valid until the next Compare:
// callers consume or copy the runs before comparing another page.
func (t *PageTwins) Compare(pg int) (runs []mem.Range, compared int) {
	twin := t.twins[pg]
	if twin == nil {
		panic("wtrap: compare of untwinned page")
	}
	cur := t.im.Page(pg)
	runs, compared = compareWords(t.scratch[:0], cur, twin, mem.PageBase(pg))
	t.scratch = runs[:0]
	return runs, compared
}

// Drop discards the twin of page pg, returning its buffer to the free-list.
func (t *PageTwins) Drop(pg int) {
	if twin := t.twins[pg]; twin != nil {
		t.pool = append(t.pool, twin)
		t.twins[pg] = nil
		t.count--
	}
}

// Refresh overwrites the twin of page pg with the current image contents in
// the byte span [lo, hi) (absolute addresses). EC uses this when two locks'
// large objects share a page: after harvesting one lock's changes, its span
// of the twin is brought up to date so the other lock's later harvest does
// not re-collect them.
func (t *PageTwins) Refresh(im *mem.Image, pg, lo, hi int) {
	twin := t.twins[pg]
	if twin == nil {
		panic("wtrap: refresh of untwinned page")
	}
	base := int(mem.PageBase(pg))
	copy(twin[lo-base:hi-base], im.Bytes()[lo:hi])
}

// DropAll discards every twin.
func (t *PageTwins) DropAll() {
	for pg, twin := range t.twins {
		if twin != nil {
			t.pool = append(t.pool, twin)
			t.twins[pg] = nil
		}
	}
	t.count = 0
}

// ObjectTwin is the eager small-object twin used by our EC implementation:
// when a write lock is acquired on an object smaller than a page, the object
// is copied immediately instead of taking a protection fault (Section 4.2,
// "Twinning for EC" — the improvement over the Midway VM implementation).
type ObjectTwin struct {
	ranges []mem.Range
	data   [][]byte
	im     *mem.Image
}

// MakeObjectTwin eagerly copies the bytes of ranges from im. All range
// copies share one backing array, so the twin costs a fixed three
// allocations however many ranges the lock binds.
func MakeObjectTwin(im *mem.Image, ranges []mem.Range) *ObjectTwin {
	o := &ObjectTwin{ranges: ranges, im: im, data: make([][]byte, len(ranges))}
	total := 0
	for _, r := range ranges {
		total += r.Len
	}
	backing := make([]byte, total)
	off := 0
	for i, r := range ranges {
		b := backing[off : off+r.Len : off+r.Len]
		copy(b, im.Bytes()[r.Base:r.End()])
		o.data[i] = b
		off += r.Len
	}
	return o
}

// Words returns the total words twinned (the copy cost basis).
func (o *ObjectTwin) Words() int {
	n := 0
	for _, r := range o.ranges {
		n += r.Words()
	}
	return n
}

// Compare diffs the current object contents against the twin, returning
// modified word runs and the number of words compared.
func (o *ObjectTwin) Compare() (runs []mem.Range, compared int) {
	return o.CompareAppend(nil)
}

// CompareAppend is Compare appending to dst, letting callers reuse a scratch
// buffer across harvests.
func (o *ObjectTwin) CompareAppend(dst []mem.Range) (runs []mem.Range, compared int) {
	runs = dst
	for i, r := range o.ranges {
		var c int
		runs, c = compareWords(runs, o.im.Bytes()[r.Base:r.End()], o.data[i], r.Base)
		compared += c
	}
	return runs, compared
}

// compareChunk is the granularity of the bytes.Equal fast-skip inside
// compareWords: identical stretches are skipped a cache line at a time using
// the runtime's vectorized memequal before any per-word work happens.
const compareChunk = 64

// compareWords diffs cur against old word-by-word, appending coalesced runs
// to dst; base is the shared address of cur[0]. Both slices must have equal,
// word-multiple length. Comparison proceeds 8 bytes at a time, narrowing to
// the two 4-byte words only when a double-word differs, so the reported runs
// are identical to a word-by-word scan. Passing a reused dst keeps the
// steady-state compare allocation-free.
func compareWords(dst []mem.Range, cur, old []byte, base mem.Addr) (runs []mem.Range, compared int) {
	n := len(cur)
	compared = n / mem.WordSize
	runs = dst
	if bytes.Equal(cur, old) {
		return runs, compared
	}
	off := 0
	for ; off+compareChunk <= n; off += compareChunk {
		if bytes.Equal(cur[off:off+compareChunk], old[off:off+compareChunk]) {
			continue
		}
		for o := off; o < off+compareChunk; o += 8 {
			runs = diff8(runs, cur, old, base, o)
		}
	}
	for ; off+8 <= n; off += 8 {
		runs = diff8(runs, cur, old, base, off)
	}
	if off < n { // 4-byte tail of an odd-word-length object range
		if binary.LittleEndian.Uint32(cur[off:]) != binary.LittleEndian.Uint32(old[off:]) {
			runs = addRun(runs, base+mem.Addr(off))
		}
	}
	return runs, compared
}

// diff8 compares the double-word at off and appends the differing words.
func diff8(runs []mem.Range, cur, old []byte, base mem.Addr, off int) []mem.Range {
	a := binary.LittleEndian.Uint64(cur[off:])
	b := binary.LittleEndian.Uint64(old[off:])
	if a == b {
		return runs
	}
	if uint32(a) != uint32(b) {
		runs = addRun(runs, base+mem.Addr(off))
	}
	if uint32(a>>32) != uint32(b>>32) {
		runs = addRun(runs, base+mem.Addr(off)+4)
	}
	return runs
}

// addRun appends the changed word at a, coalescing with an adjacent last run.
func addRun(runs []mem.Range, a mem.Addr) []mem.Range {
	if len(runs) > 0 && runs[len(runs)-1].End() == a {
		runs[len(runs)-1].Len += mem.WordSize
		return runs
	}
	return append(runs, mem.Range{Base: a, Len: mem.WordSize})
}
