package wtrap

import (
	"testing"

	"ecvslrc/internal/mem"
)

// TestCompareWordsAllocs guards the diff kernel: comparing an unchanged page
// against its twin must not allocate (the common steady-state case — most
// twinned pages are written sparsely, and identical stretches are skipped
// wholesale).
func TestCompareWordsAllocs(t *testing.T) {
	cur := make([]byte, mem.PageSize)
	old := make([]byte, mem.PageSize)
	avg := testing.AllocsPerRun(100, func() {
		runs, compared := compareWords(nil, cur, old, 0)
		if runs != nil || compared != mem.PageWords {
			t.Fatalf("unexpected result: %v, %d", runs, compared)
		}
	})
	if avg > 0 {
		t.Errorf("compareWords on identical pages allocates %.2f objects per run, want 0", avg)
	}
}

// TestCompareWordsMatchesReference cross-checks the word-wide (8 bytes at a
// time, bytes.Equal fast-skip) implementation against a plain word-by-word
// reference on adversarial change patterns: changes straddling the 64-byte
// skip-chunk and 8-byte double-word boundaries, and a trailing odd word.
func TestCompareWordsMatchesReference(t *testing.T) {
	reference := func(cur, old []byte, base mem.Addr) []mem.Range {
		var runs []mem.Range
		for w := 0; w < len(cur)/mem.WordSize; w++ {
			off := w * mem.WordSize
			same := cur[off] == old[off] && cur[off+1] == old[off+1] &&
				cur[off+2] == old[off+2] && cur[off+3] == old[off+3]
			if !same {
				a := base + mem.Addr(off)
				if n := len(runs); n > 0 && runs[n-1].End() == a {
					runs[n-1].Len += mem.WordSize
				} else {
					runs = append(runs, mem.Range{Base: a, Len: mem.WordSize})
				}
			}
		}
		return runs
	}
	cases := [][]int{
		{0},                      // first word
		{1023},                   // last word of a page
		{15, 16},                 // straddles a 64-byte chunk boundary
		{14, 15, 16, 17},         // run across the chunk boundary
		{0, 1, 2, 3, 4, 5, 6, 7}, // a full chunk
		{8, 10, 12},              // alternating words within a chunk
		{5, 100, 101, 900},       // sparse mix
	}
	for _, words := range cases {
		cur := make([]byte, mem.PageSize)
		old := make([]byte, mem.PageSize)
		for _, w := range words {
			cur[w*mem.WordSize] = 0xff
		}
		got, compared := compareWords(nil, cur, old, 0x3000)
		want := reference(cur, old, 0x3000)
		if compared != mem.PageWords {
			t.Errorf("words %v: compared = %d, want %d", words, compared, mem.PageWords)
		}
		if len(got) != len(want) {
			t.Errorf("words %v: runs = %v, want %v", words, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("words %v: runs = %v, want %v", words, got, want)
				break
			}
		}
	}
	// Odd-word-length tail (object ranges need not be double-word multiples).
	cur := make([]byte, 20)
	old := make([]byte, 20)
	cur[16] = 1 // the lone tail word
	got, compared := compareWords(nil, cur, old, 0)
	if compared != 5 || len(got) != 1 || got[0] != (mem.Range{Base: 16, Len: 4}) {
		t.Errorf("tail case: runs = %v (compared %d)", got, compared)
	}
}
