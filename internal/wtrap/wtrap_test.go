package wtrap

import (
	"reflect"
	"testing"
	"testing/quick"

	"ecvslrc/internal/mem"
)

func newAlloc(t *testing.T) *mem.Allocator {
	t.Helper()
	al := mem.NewAllocator()
	al.Alloc("w4", 2*mem.PageSize, 4) // word-granularity region: pages 0-1
	al.Alloc("w8", 2*mem.PageSize, 8) // double-word region: pages 2-3
	return al
}

func TestNoteWriteAndCollectWordRegion(t *testing.T) {
	al := newAlloc(t)
	db := NewDirtyBits(al, false)
	db.NoteWrite(8, 4)
	db.NoteWrite(12, 4) // adjacent: should coalesce
	db.NoteWrite(100, 4)
	runs, scanned := db.Collect([]mem.Range{{Base: 0, Len: 256}})
	want := []mem.Range{{Base: 8, Len: 8}, {Base: 100, Len: 4}}
	if !reflect.DeepEqual(runs, want) {
		t.Errorf("runs = %v, want %v", runs, want)
	}
	if scanned != 64 {
		t.Errorf("scanned = %d, want 64 blocks", scanned)
	}
}

func TestNoteWriteDoubleWordRegion(t *testing.T) {
	al := newAlloc(t)
	db := NewDirtyBits(al, false)
	base := mem.Addr(2 * mem.PageSize)
	db.NoteWrite(base+4, 4) // a word store inside an 8-byte block dirties the block
	runs, scanned := db.Collect([]mem.Range{{Base: base, Len: 64}})
	want := []mem.Range{{Base: base, Len: 8}}
	if !reflect.DeepEqual(runs, want) {
		t.Errorf("runs = %v, want %v", runs, want)
	}
	if scanned != 8 { // 64 bytes / 8-byte blocks
		t.Errorf("scanned = %d, want 8", scanned)
	}
}

func TestStoreSpanningBlocks(t *testing.T) {
	al := newAlloc(t)
	db := NewDirtyBits(al, false)
	db.NoteWrite(6, 4) // crosses the 4/8 word boundary: dirties both words
	runs, _ := db.Collect([]mem.Range{{Base: 0, Len: 16}})
	want := []mem.Range{{Base: 4, Len: 8}}
	if !reflect.DeepEqual(runs, want) {
		t.Errorf("runs = %v, want %v", runs, want)
	}
}

func TestHierarchicalPageBits(t *testing.T) {
	al := newAlloc(t)
	db := NewDirtyBits(al, true)
	db.NoteWrite(mem.PageSize+40, 4)
	db.NoteWrite(3*mem.PageSize+8, 8)
	if got := db.DirtyPages(); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("dirty pages = %v", got)
	}
	runs, _ := db.CollectPage(1)
	want := []mem.Range{{Base: mem.PageSize + 40, Len: 4}}
	if !reflect.DeepEqual(runs, want) {
		t.Errorf("page runs = %v, want %v", runs, want)
	}
	db.ResetPage(1)
	if got := db.DirtyPages(); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("after reset, dirty pages = %v", got)
	}
}

func TestNonHierarchicalTracksNoPages(t *testing.T) {
	al := newAlloc(t)
	db := NewDirtyBits(al, false)
	db.NoteWrite(0, 4)
	if got := db.DirtyPages(); len(got) != 0 {
		t.Errorf("dirty pages = %v, want none", got)
	}
}

func TestResetRanges(t *testing.T) {
	al := newAlloc(t)
	db := NewDirtyBits(al, false)
	db.NoteWrite(0, 4)
	db.NoteWrite(64, 4)
	db.Reset([]mem.Range{{Base: 0, Len: 32}})
	runs, _ := db.Collect([]mem.Range{{Base: 0, Len: 128}})
	want := []mem.Range{{Base: 64, Len: 4}}
	if !reflect.DeepEqual(runs, want) {
		t.Errorf("runs after reset = %v, want %v", runs, want)
	}
	if db.Stores() != 2 {
		t.Errorf("stores = %d, want 2", db.Stores())
	}
}

func TestPageTwinsCompare(t *testing.T) {
	im := mem.NewImage(2 * mem.PageSize)
	im.WriteI32(16, 1)
	pt := NewPageTwins(im)
	pt.Make(0)
	if !pt.Has(0) || pt.Has(1) {
		t.Error("Has wrong")
	}
	im.WriteI32(16, 2)
	im.WriteI32(20, 3)
	im.WriteI32(800, 4)
	runs, compared := pt.Compare(0)
	want := []mem.Range{{Base: 16, Len: 8}, {Base: 800, Len: 4}}
	if !reflect.DeepEqual(runs, want) {
		t.Errorf("runs = %v, want %v", runs, want)
	}
	if compared != mem.PageWords {
		t.Errorf("compared = %d, want %d", compared, mem.PageWords)
	}
	pt.Drop(0)
	if pt.Has(0) {
		t.Error("Drop failed")
	}
	if pt.Made() != 1 {
		t.Errorf("Made = %d", pt.Made())
	}
}

func TestDoubleTwinPanics(t *testing.T) {
	im := mem.NewImage(mem.PageSize)
	pt := NewPageTwins(im)
	pt.Make(0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double twin")
		}
	}()
	pt.Make(0)
}

func TestCompareUntwinnedPanics(t *testing.T) {
	pt := NewPageTwins(mem.NewImage(mem.PageSize))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	pt.Compare(0)
}

func TestObjectTwin(t *testing.T) {
	im := mem.NewImage(mem.PageSize)
	im.WriteI32(0, 10)
	im.WriteI32(40, 20)
	ranges := []mem.Range{{Base: 0, Len: 8}, {Base: 40, Len: 8}}
	ot := MakeObjectTwin(im, ranges)
	if ot.Words() != 4 {
		t.Errorf("Words = %d, want 4", ot.Words())
	}
	im.WriteI32(44, 99) // second word of second range
	runs, compared := ot.Compare()
	want := []mem.Range{{Base: 44, Len: 4}}
	if !reflect.DeepEqual(runs, want) {
		t.Errorf("runs = %v, want %v", runs, want)
	}
	if compared != 4 {
		t.Errorf("compared = %d, want 4", compared)
	}
}

// Property: for arbitrary write sets, Collect returns exactly the dirtied
// blocks, coalesced, and twin comparison agrees with direct inspection.
func TestPropertyDirtyBitsMatchWrites(t *testing.T) {
	al := mem.NewAllocator()
	al.Alloc("r", mem.PageSize, 4)
	f := func(words []uint16) bool {
		db := NewDirtyBits(al, false)
		written := map[int]bool{}
		for _, w := range words {
			idx := int(w) % mem.PageWords
			db.NoteWrite(mem.Addr(idx*4), 4)
			written[idx] = true
		}
		runs, _ := db.Collect([]mem.Range{{Base: 0, Len: mem.PageSize}})
		got := map[int]bool{}
		for _, r := range runs {
			for a := r.Base; a < r.End(); a += 4 {
				got[int(a)/4] = true
			}
		}
		if len(got) != len(written) {
			return false
		}
		for w := range written {
			if !got[w] {
				return false
			}
		}
		// Runs must be maximal: no two adjacent runs.
		for i := 1; i < len(runs); i++ {
			if runs[i-1].End() == runs[i].Base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyTwinCompareFindsExactChanges(t *testing.T) {
	f := func(writes []uint16, vals []uint32) bool {
		im := mem.NewImage(mem.PageSize)
		pt := NewPageTwins(im)
		pt.Make(0)
		changed := map[int]bool{}
		for i, w := range writes {
			idx := int(w) % mem.PageWords
			var v uint32 = 0xdead0000
			if i < len(vals) {
				v = vals[i]
			}
			if v != 0 { // writing 0 to a zero word is not a change
				im.WriteU32(mem.Addr(idx*4), v)
				changed[idx] = true
			}
		}
		runs, _ := pt.Compare(0)
		got := map[int]bool{}
		for _, r := range runs {
			for a := r.Base; a < r.End(); a += 4 {
				got[int(a)/4] = true
			}
		}
		for w := range got {
			if !changed[w] {
				return false // found a change that was not written
			}
		}
		// Every word that now differs from zero must be reported.
		for w := range changed {
			if im.ReadU32(mem.Addr(w*4)) != 0 && !got[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
