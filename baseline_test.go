package ecvslrc

import (
	"os"
	"testing"

	"ecvslrc/internal/perf"
)

// TestPerfBaselineRoundTrips guards the committed perf trajectory: the file
// CI compares new revisions against must stay readable by the current
// decoder, carry exact allocation attribution (it gates Mallocs counts), and
// compare cleanly against itself. A failure here means the BENCH schema
// moved without regenerating BENCH_baseline.json.
func TestPerfBaselineRoundTrips(t *testing.T) {
	f, err := os.Open("BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	base, err := perf.ReadTrajectory(f)
	if err != nil {
		t.Fatalf("committed baseline unreadable: %v", err)
	}
	if !base.AllocsExact {
		t.Error("baseline lacks exact allocation attribution; regenerate with -parallel 1")
	}
	if base.Meta.Scale != "bench" || len(base.Cells) == 0 {
		t.Errorf("baseline coverage: scale=%q cells=%d", base.Meta.Scale, len(base.Cells))
	}
	res := perf.Compare(base, base, perf.CompareOptions{WallTol: 0.30, AllocTol: 0.05})
	if res.Regressions != 0 {
		t.Errorf("baseline does not compare cleanly against itself: %d regressions", res.Regressions)
	}
	if !res.AllocsGated {
		t.Error("self-compare did not gate allocations")
	}
}
