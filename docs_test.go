package ecvslrc

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles are the documents whose references must not dangle. CI runs this
// test as the doc-link checker.
var docFiles = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"}

var (
	mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)
	// codeRef matches backtick-quoted repo paths: a path with a directory
	// separator that either lives under a known top-level directory or names
	// a tracked file kind. This deliberately skips protocol spellings like
	// "AAL3/4" and axis specs, which contain slashes but are not paths.
	codeRef    = regexp.MustCompile("`([A-Za-z0-9_./\\-]+)`")
	refPrefix  = []string{"internal/", "cmd/", "examples/", ".github/"}
	refSuffix  = []string{".md", ".go", ".yml", ".golden"}
	anchorOnly = regexp.MustCompile(`^#`)
)

func looksLikePath(s string) bool {
	if !strings.Contains(s, "/") {
		return false
	}
	for _, p := range refPrefix {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	for _, suf := range refSuffix {
		if strings.HasSuffix(s, suf) {
			return true
		}
	}
	return false
}

// TestDocLinksResolve fails on dangling references in the project documents:
// every relative markdown link target and every backtick-quoted repo path
// must exist in the working tree.
func TestDocLinksResolve(t *testing.T) {
	for _, doc := range docFiles {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		text := string(data)
		check := func(target, kind string) {
			target = strings.TrimSuffix(target, "/")
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				return
			}
			if _, err := os.Stat(filepath.Clean(target)); err != nil {
				t.Errorf("%s: dangling %s %q", doc, kind, target)
			}
		}
		for _, m := range mdLink.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.Contains(target, "://") || anchorOnly.MatchString(target) {
				continue // external links and intra-document anchors
			}
			check(target, "link")
		}
		for _, m := range codeRef.FindAllStringSubmatch(text, -1) {
			if looksLikePath(m[1]) {
				check(m[1], "reference")
			}
		}
	}
}
