package ecvslrc

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/run"
	"ecvslrc/internal/sim"
	"ecvslrc/internal/trace"
)

// faultPlans are the seeded recoverable plans the equivalence invariant is
// pinned under — the same set the CI chaos job runs.
func faultPlans(t *testing.T) map[string]*fabric.FaultPlan {
	t.Helper()
	out := make(map[string]*fabric.FaultPlan)
	for _, name := range []string{"drop1e-3", "drop1e-2", "chaos"} {
		p, err := fabric.FaultPreset(name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = p
	}
	return out
}

func runFaulted(t *testing.T, appName string, impl core.Impl, nprocs int, plan *fabric.FaultPlan) run.Result {
	t.Helper()
	a, err := apps.New(appName, apps.Test)
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.RunWith(a, impl, nprocs, fabric.DefaultCostModel(), run.Options{
		Faults:    plan,
		KeepImage: true,
		// A generous virtual-time watchdog: a recovery bug fails the test
		// with a sim.Stalled diagnostic instead of hanging it.
		Timeout: 3600 * sim.Second,
	})
	if err != nil {
		t.Fatalf("%s on %v under faults %+v: %v", appName, impl, plan, err)
	}
	return res
}

// scheduleDependentRegions names, per application, the shared regions whose
// final bytes are a function of cross-processor scheduling order rather than
// of the computed result: Water accumulates forces with `f += contribution`
// under per-molecule locks (float addition is not associative, so the sum's
// low bits follow the lock-grant order), and QS's work-queue bookkeeping
// records which processor popped which task. Fault-induced timing shifts
// legally reorder lock grants, so these regions are excluded from the
// bitwise cross-plan comparison; they are still checked for correctness by
// every run's own sequential-reference verification (app.Verify inside
// RunWith), and TestFaultDeterminism pins them bit-for-bit across repeated
// runs of the same plan. Every other byte of every app's image — including
// QS's sorted output array and all of Water's displacements — must match the
// fault-free run exactly.
var scheduleDependentRegions = map[string]map[string]bool{
	"Water": {"molecules": true, "forces": true},
	"QS":    {"queue": true},
}

// maskScheduleDependent zeroes the schedule-dependent regions of img (a copy)
// so the remainder can be compared bitwise.
func maskScheduleDependent(t *testing.T, appName string, al *mem.Allocator, img []byte) []byte {
	t.Helper()
	masked := append([]byte(nil), img...)
	for _, r := range al.Regions() {
		if scheduleDependentRegions[appName][r.Name] {
			for i := int(r.Base); i < int(r.Base)+r.Size; i++ {
				masked[i] = 0
			}
		}
	}
	return masked
}

// describeImageDiff reports which shared regions differ between two final
// images, for diagnosing equivalence failures.
func describeImageDiff(t *testing.T, al *mem.Allocator, a, b []byte) string {
	t.Helper()
	var diff []string
	for _, r := range al.Regions() {
		ra, rb := a[r.Base:int(r.Base)+r.Size], b[r.Base:int(r.Base)+r.Size]
		if !bytes.Equal(ra, rb) {
			n := 0
			for i := range ra {
				if ra[i] != rb[i] {
					n++
				}
			}
			diff = append(diff, fmt.Sprintf("%s (%d/%d bytes)", r.Name, n, r.Size))
		}
	}
	if len(diff) == 0 {
		return "padding only"
	}
	return fmt.Sprintf("%v", diff)
}

// TestFaultEquivalence pins the tentpole invariant: under every recoverable
// fault plan, every application x implementation completes, passes its own
// sequential-reference verification, and produces the same final memory
// image as the fault-free run, bit for bit, outside the documented
// schedule-dependent regions (see scheduleDependentRegions). The reliable
// sublayer guarantees exactly-once in-order delivery per link, so protocol
// state never corrupts; only synchronization order — and with it the low
// bits of locked float accumulations — may shift.
func TestFaultEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix of faulted runs")
	}
	const nprocs = 4
	plans := faultPlans(t)
	for _, appName := range apps.Names() {
		appName := appName
		t.Run(appName, func(t *testing.T) {
			t.Parallel()
			a, err := apps.New(appName, apps.Test)
			if err != nil {
				t.Fatal(err)
			}
			al := mem.NewAllocator()
			a.Layout(al)
			for _, impl := range core.Implementations() {
				baseline := runFaulted(t, appName, impl, nprocs, nil)
				baseMasked := maskScheduleDependent(t, appName, al, baseline.Image)
				for pname, plan := range plans {
					res := runFaulted(t, appName, impl, nprocs, plan)
					if res.Faults.Sent == 0 {
						t.Errorf("%v/%s: fault plan active but no frames counted", impl, pname)
					}
					if !bytes.Equal(maskScheduleDependent(t, appName, al, res.Image), baseMasked) {
						t.Errorf("%v/%s: final image differs from fault-free run: %s",
							impl, pname, describeImageDiff(t, al, baseline.Image, res.Image))
					}
				}
			}
		})
	}
}

// TestFaultTraceAttribution runs a traced lossy run end to end and checks
// the recovery shows up in the attribution layer: per-link drop/retransmit
// counters in the analysis and the fault section in the markdown report.
func TestFaultTraceAttribution(t *testing.T) {
	const nprocs = 4
	a, err := apps.New("SOR", apps.Test)
	if err != nil {
		t.Fatal(err)
	}
	impl, err := core.ParseImpl("LRC-diff")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fabric.FaultPreset("drop1e-2")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(nprocs)
	res, err := run.RunWith(a, impl, nprocs, fabric.DefaultCostModel(), run.Options{
		Faults: plan, Trace: tr, Timeout: 3600 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Dropped == 0 {
		t.Fatal("1% loss dropped nothing at Test scale")
	}
	fresh, err := apps.New("SOR", apps.Test)
	if err != nil {
		t.Fatal(err)
	}
	an := trace.Analyze(tr, run.TraceMeta(fresh, impl, nprocs, "test"))
	if len(an.Links) == 0 {
		t.Fatal("faulted run produced no per-link fault reports")
	}
	var drops, acks int64
	for _, l := range an.Links {
		drops += l.Drops
		acks += l.Acks
	}
	if drops != res.Faults.Dropped {
		t.Errorf("trace counts %d drops, fabric counted %d", drops, res.Faults.Dropped)
	}
	if acks == 0 {
		t.Error("no acks in the trace")
	}
	var buf bytes.Buffer
	if err := trace.WriteMarkdown(&buf, an); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fault injection per link") {
		t.Error("markdown report has no fault section")
	}
}

// TestFaultDeterminism pins byte-determinism: two runs of the same
// (application, implementation, plan, seed) produce identical images,
// statistics and fault counters.
func TestFaultDeterminism(t *testing.T) {
	plans := faultPlans(t)
	const nprocs = 4
	for _, appName := range []string{"SOR", "Water", "QS"} {
		for _, pname := range []string{"drop1e-2", "chaos"} {
			impl, err := core.ParseImpl("LRC-diff")
			if err != nil {
				t.Fatal(err)
			}
			r1 := runFaulted(t, appName, impl, nprocs, plans[pname])
			r2 := runFaulted(t, appName, impl, nprocs, plans[pname])
			if !bytes.Equal(r1.Image, r2.Image) {
				t.Errorf("%s/%s: images differ across identical runs", appName, pname)
			}
			r1.Image, r2.Image = nil, nil
			if !reflect.DeepEqual(r1, r2) {
				t.Errorf("%s/%s: results differ across identical runs:\n%+v\nvs\n%+v", appName, pname, r1, r2)
			}
		}
	}
}
