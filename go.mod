module ecvslrc

go 1.22
