package ecvslrc

import (
	"strings"
	"testing"
)

// TestResolveCost pins the unified cost-spec surface: the root resolver
// accepts the same "name" and "name+knob" specs as every CLI's -preset flag,
// and the preset table includes the registered platform models.
func TestResolveCost(t *testing.T) {
	if cm, err := ResolveCost("paper"); err != nil || cm != DefaultCost() {
		t.Errorf(`ResolveCost("paper") = %+v, %v`, cm, err)
	}
	if cm, err := ResolveCost("paper+net=x2"); err != nil || cm != DefaultCost().ScaleNetwork(2) {
		t.Errorf(`ResolveCost("paper+net=x2") = %+v, %v`, cm, err)
	}
	byName := make(map[string]CostModel)
	for _, p := range CostPresets() {
		byName[p.Name] = p.Cost
	}
	for _, name := range []string{"decstation_atm", "cluster_gbe", "rdma_100g", "grace"} {
		want, ok := byName[name]
		if !ok {
			t.Errorf("CostPresets() lacks platform model %q", name)
			continue
		}
		cm, err := ResolveCost(name)
		if err != nil || cm != want {
			t.Errorf("ResolveCost(%q) = %+v, %v; want the registered preset", name, cm, err)
		}
	}
	if _, err := ResolveCost("quantum"); err == nil || !strings.Contains(err.Error(), "valid:") {
		t.Errorf("ResolveCost unknown name error = %v, want the valid set", err)
	}

	// A resolved model drives a real run through the existing RunCost surface.
	cm, err := ResolveCost("rdma_100g")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RunCost("SOR", "LRC-diff", 2, Test, cm, false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Time <= 0 {
		t.Errorf("rdma_100g run time = %v, want > 0", stats.Time)
	}
	// The modern fabric must beat the 1996 ATM on the same cell.
	paper, err := RunCost("SOR", "LRC-diff", 2, Test, DefaultCost(), false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Time >= paper.Time {
		t.Errorf("rdma_100g (%v) not faster than paper (%v)", stats.Time, paper.Time)
	}
}
