// Quickstart: run one application of the paper's suite under both models
// and compare — the 30-second tour of the library.
package main

import (
	"fmt"
	"log"

	"ecvslrc"
)

func main() {
	const app = "IS"
	seq, err := ecvslrc.RunSeq(app, ecvslrc.Bench)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s sequential reference: %v\n\n", app, seq)

	for _, impl := range ecvslrc.Impls() {
		st, err := ecvslrc.Run(app, impl, 8, ecvslrc.Bench)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %s\n", impl, st)
	}
}
