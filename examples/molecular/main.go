// Molecular: the Water molecular-dynamics workload, showing LRC's prefetch
// advantage and the Section 7.2 data-restructuring experiment (splitting the
// displacement array gives EC a comparable prefetch effect).
package main

import (
	"fmt"
	"log"

	"ecvslrc"
)

func main() {
	fmt.Println("Water: per-molecule locks vs page prefetch, 8 processors")
	for _, impl := range []string{"EC-ci", "LRC-diff"} {
		st, err := ecvslrc.Run("Water", impl, 8, ecvslrc.Bench)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-12v msgs=%d\n", impl, st.Time, st.Msgs)
	}
	fmt.Println("\nAfter restructuring (split displacement array, per-processor locks):")
	for _, impl := range []string{"EC-ci", "LRC-diff"} {
		st, err := ecvslrc.Run("Water-split", impl, 8, ecvslrc.Bench)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-12v msgs=%d\n", impl, st.Time, st.Msgs)
	}
}
