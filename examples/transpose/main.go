// Transpose: the 3D-FFT workload, where the coherence unit decides the
// winner — EC's update protocol ships an eight-page transpose block in one
// lock exchange, while LRC's invalidate protocol faults page by page
// (Section 7.2).
package main

import (
	"fmt"
	"log"

	"ecvslrc"
)

func main() {
	fmt.Println("3D-FFT transpose: update vs invalidate, 8 processors")
	for _, impl := range ecvslrc.Impls() {
		st, err := ecvslrc.Run("3D-FFT", impl, 8, ecvslrc.Bench)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s time=%-12v msgs=%-7d misses=%d\n", impl, st.Time, st.Msgs, st.AccessMisses)
	}
}
