// Taskqueue: the Quicksort task-queue workload, showing the false-sharing
// and lock-rebinding effects of Sections 3.3 and 7.2 — EC moves less data
// than LRC because task boundaries are not page-aligned.
package main

import (
	"fmt"
	"log"

	"ecvslrc"
)

func main() {
	fmt.Println("Quicksort (task queue): EC vs LRC, 8 processors, bench scale")
	for _, impl := range []string{"EC-diff", "LRC-time", "LRC-diff"} {
		st, err := ecvslrc.Run("QS", impl, 8, ecvslrc.Bench)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s time=%-12v msgs=%-8d data=%.2fMB\n", impl, st.Time, st.Msgs, st.MB())
	}
	fmt.Println("\nThe task size is not a multiple of the page size, so LRC")
	fmt.Println("pages bounce more data than EC's exactly-bound sub-arrays")
	fmt.Println("(compare the data columns; see Section 7.2 of the paper).")
}
