// Genericapp: how to add an application with the statically-dispatched
// access path. The program is written ONCE as a generic kernel over
// core.Accessor; the run.StaticApp methods instantiate it per protocol
// stack (*lrc.Node, *ec.Node, *run.Local), and Program(core.DSM) keeps the
// interface-adapter path for custom tooling. See DESIGN.md, "Access path".
package main

import (
	"fmt"
	"log"

	"ecvslrc/internal/core"
	"ecvslrc/internal/ec"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/lrc"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/run"
	"ecvslrc/internal/sim"
)

// histogram is a minimal DSM application: every processor increments a
// shared bucket array under one lock, then everyone reads the totals.
type histogram struct {
	buckets int
	rounds  int
	base    mem.Addr
	nprocs  int
}

const histLock = core.LockID(1)

// Name implements run.App.
func (h *histogram) Name() string { return "histogram" }

// Layout implements run.App.
func (h *histogram) Layout(al *mem.Allocator) {
	h.base = al.Alloc("buckets", h.buckets*4, 4)
}

// Init implements run.App.
func (h *histogram) Init(im *mem.Image) {}

// Program implements run.App: the interface-adapter entry of histProgram.
func (h *histogram) Program(d core.DSM) { histProgram(h, d) }

// ProgramLRC, ProgramEC and ProgramSeq implement run.StaticApp: the same
// kernel, statically instantiated per protocol stack. This boilerplate is
// all an app provides to get the devirtualized per-word access path.
func (h *histogram) ProgramLRC(n *lrc.Node)  { histProgram(h, n) }
func (h *histogram) ProgramEC(n *ec.Node)    { histProgram(h, n) }
func (h *histogram) ProgramSeq(l *run.Local) { histProgram(h, l) }

// histProgram is the per-processor program: one source for both models
// (Section 3.3's dual programming style), generic over the access frontend.
func histProgram[D core.Accessor](h *histogram, d D) {
	ec := d.Model() == core.EC
	h.nprocs = d.NProcs()
	d.Bind(histLock, mem.Range{Base: h.base, Len: h.buckets * 4})
	for r := 0; r < h.rounds; r++ {
		d.Acquire(histLock)
		for b := 0; b < h.buckets; b++ {
			a := h.base + mem.Addr(4*b)
			d.WriteI32(a, d.ReadI32(a)+int32(d.Proc()+1))
		}
		d.Compute(20 * sim.Microsecond)
		d.Release(histLock)
		d.Barrier(0)
		if ec {
			d.AcquireRead(histLock)
		}
		var sum int64
		for b := 0; b < h.buckets; b++ {
			sum += int64(d.ReadI32(h.base + mem.Addr(4*b)))
		}
		_ = sum
		if ec {
			d.Release(histLock)
		}
		d.Barrier(1)
	}
	d.StatsEnd()
	if d.Proc() == 0 {
		if ec {
			d.AcquireRead(histLock)
		}
		for b := 0; b < h.buckets; b++ {
			_ = d.ReadI32(h.base + mem.Addr(4*b))
		}
		if ec {
			d.Release(histLock)
		}
	}
}

// Verify implements run.App: each bucket accumulated rounds * sum(1..P).
func (h *histogram) Verify(im *mem.Image) error {
	want := int32(h.rounds * h.nprocs * (h.nprocs + 1) / 2)
	for b := 0; b < h.buckets; b++ {
		if got := im.ReadI32(h.base + mem.Addr(4*b)); got != want {
			return fmt.Errorf("histogram: bucket[%d] = %d, want %d", b, got, want)
		}
	}
	return nil
}

var _ run.StaticApp = (*histogram)(nil)

func main() {
	fmt.Println("custom generic-kernel app on all six implementations, 4 processors")
	for _, impl := range core.Implementations() {
		app := &histogram{buckets: 256, rounds: 8}
		res, err := run.Run(app, impl, 4, fabric.DefaultCostModel())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %s\n", impl, res.Stats)
	}
}
