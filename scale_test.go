package ecvslrc

import (
	"bytes"
	"reflect"
	"testing"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/harness"
	"ecvslrc/internal/perf"
	"ecvslrc/internal/run"
)

// scaleProcs are the processor counts the scale-equivalence suite pins:
// the paper's 8 plus two octaves toward the large machine.
var scaleProcs = []int{8, 32, 64}

// TestNoticeGCEquivalence pins the tentpole invariant of notice-history
// garbage collection: for every application and implementation, at 8/32/64
// processors, a run with GC on yields core.Stats deeply equal to the run
// with GC off and a byte-identical final memory image. Collection happens at
// barrier quiescent points and does zero protocol work, so any divergence
// means the kill floor freed an interval some processor still needed.
func TestNoticeGCEquivalence(t *testing.T) {
	cm := fabric.DefaultCostModel()
	collected := false
	for _, name := range apps.Names() {
		for _, impl := range core.Implementations() {
			for _, nprocs := range scaleProcs {
				impl, nprocs, name := impl, nprocs, name
				t.Run(name+"/"+impl.String()+"/"+itoa(nprocs), func(t *testing.T) {
					off := mustRun(t, name, impl, nprocs, cm, run.Options{KeepImage: true})
					on := mustRun(t, name, impl, nprocs, cm, run.Options{KeepImage: true, NoticeGC: true})
					if !reflect.DeepEqual(off.Stats, on.Stats) {
						t.Errorf("stats diverge with notice GC:\n  off: %+v\n  on:  %+v", off.Stats, on.Stats)
					}
					if !bytes.Equal(off.Image, on.Image) {
						t.Errorf("final memory images diverge with notice GC")
					}
					if impl.Model == core.LRC {
						if on.GC == nil {
							t.Fatalf("LRC run with NoticeGC has no GC report")
						}
						if on.GC.Violations != 0 {
							t.Errorf("GC recorded %d floor violations", on.GC.Violations)
						}
						if on.NoticeBytes > off.NoticeBytes {
							t.Errorf("GC-on notice history (%d bytes) exceeds GC-off (%d bytes)",
								on.NoticeBytes, off.NoticeBytes)
						}
						if on.GC.RecordsPruned > 0 {
							collected = true
						}
					} else if on.GC != nil {
						t.Errorf("EC run produced a notice-GC report")
					}
				})
			}
		}
	}
	if !collected {
		t.Errorf("notice GC never pruned a record across the whole matrix; the equivalence is vacuous")
	}
}

// TestGCNeverResurrects drives lock-heavy and barrier-heavy cells with GC on
// and asserts the collector's runtime soundness counters: at least a few
// collection passes actually pruned history, and no fetch window ever
// reached below a responder's kill floor, nor was a pruned record
// re-absorbed anywhere (a collected interval must never come back).
func TestGCNeverResurrects(t *testing.T) {
	cm := fabric.DefaultCostModel()
	for _, name := range []string{"Water", "QS", "SOR", "IS"} {
		name := name
		t.Run(name, func(t *testing.T) {
			res := mustRun(t, name, core.Impl{Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs},
				32, cm, run.Options{NoticeGC: true})
			gc := res.GC
			if gc == nil {
				t.Fatal("no GC report")
			}
			if gc.Violations != 0 {
				t.Fatalf("%d floor violations: a collected interval was needed again", gc.Violations)
			}
			if gc.Collections < 2 {
				t.Fatalf("only %d collection passes; the cell has too few barriers to test GC", gc.Collections)
			}
			if gc.RecordsPruned == 0 {
				t.Errorf("collector ran %d passes but never pruned a record", gc.Collections)
			}
			for _, s := range gc.Samples {
				if s.After > s.Before {
					t.Errorf("collection grew the notice history: %+v", s)
				}
			}
		})
	}
}

// TestTreeBarrierEquivalence pins the tree fan-in contract: arranging
// barrier arrivals/departures as a radix-4 tree changes message shapes and
// timing (it is a different experiment, not a byte-identical one) but every
// app must still verify against its sequential reference (mustRun checks
// this), synchronize the same number of barrier episodes, and — for apps
// whose result does not depend on lock grant order — compute a byte-
// identical final memory image. Water and QS are excluded from the image
// check only: their images legitimately vary with lock acquisition order
// (floating-point accumulation order, task-queue assignment), under flat
// timing perturbations as much as under the tree. Runs combine fan-in with
// notice GC to pin that the collector's quiescence argument holds under the
// tree too.
func TestTreeBarrierEquivalence(t *testing.T) {
	cm := fabric.DefaultCostModel()
	lockOrderDependent := map[string]bool{"Water": true, "QS": true}
	for _, name := range apps.Names() {
		for _, impl := range []core.Impl{
			{Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs},
			{Model: core.EC, Trap: core.Twinning, Collect: core.Diffs},
		} {
			for _, nprocs := range scaleProcs {
				impl, nprocs, name := impl, nprocs, name
				t.Run(name+"/"+impl.String()+"/"+itoa(nprocs), func(t *testing.T) {
					flat := mustRun(t, name, impl, nprocs, cm, run.Options{KeepImage: true})
					tree := mustRun(t, name, impl, nprocs, cm,
						run.Options{KeepImage: true, BarrierFanIn: 4, NoticeGC: true})
					if !lockOrderDependent[name] && !bytes.Equal(flat.Image, tree.Image) {
						t.Errorf("final memory images diverge under tree fan-in")
					}
					if flat.Stats.Barriers != tree.Stats.Barriers {
						t.Errorf("barrier episodes diverge: flat %d, tree %d",
							flat.Stats.Barriers, tree.Stats.Barriers)
					}
					if impl.Model == core.LRC && tree.GC != nil && tree.GC.Violations != 0 {
						t.Errorf("GC under tree fan-in recorded %d floor violations", tree.GC.Violations)
					}
				})
			}
		}
	}
}

// TestTopologySingleStageIdentity pins the degenerate-Clos contract: a
// single-stage switch whose radix covers the whole machine and whose taper
// equals its radix is exactly the calibrated flat link (one resource at
// single-link speed, 2 x WireLatency/2 traversal), so Stats and the final
// memory image must be byte-identical to a run with no topology at all —
// with and without link contention.
func TestTopologySingleStageIdentity(t *testing.T) {
	cm := fabric.DefaultCostModel()
	topo := &fabric.Topology{Radix: 8, Taper: 8, ForcedStages: 1}
	for _, name := range []string{"SOR", "Water", "IS"} {
		for _, impl := range []core.Impl{
			{Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs},
			{Model: core.EC, Trap: core.Twinning, Collect: core.Diffs},
		} {
			for _, contention := range []bool{false, true} {
				impl, name, contention := impl, name, contention
				label := name + "/" + impl.String()
				if contention {
					label += "/contention"
				}
				t.Run(label, func(t *testing.T) {
					flat := mustRun(t, name, impl, 8, cm,
						run.Options{KeepImage: true, Contention: contention})
					clos := mustRun(t, name, impl, 8, cm,
						run.Options{KeepImage: true, Contention: contention, Topology: topo})
					if !reflect.DeepEqual(flat.Stats, clos.Stats) {
						t.Errorf("stats diverge under single-stage clos:\n  flat: %+v\n  clos: %+v",
							flat.Stats, clos.Stats)
					}
					if !bytes.Equal(flat.Image, clos.Image) {
						t.Errorf("final memory images diverge under single-stage clos")
					}
				})
			}
		}
	}
}

// TestNoticeHistoryBounded pins the memory-scaling contract of the collector
// on a workload whose fetch windows drain every epoch: micro-producer-
// consumer (every reader re-reads the whole buffer after each barrier, so
// each epoch's records become collectable at the next quiescent point). With
// GC on, the machine-wide notice-history footprint must cycle — the
// post-collection residue in later epochs never exceeds the first epoch's —
// instead of growing with the epoch count, while the GC-off run demonstrates
// the growth is real (its final history dwarfs the bounded residue).
// Test scale runs 4 producer/consumer epochs (8 barrier episodes), beyond
// the >= 3 needed to distinguish a cycle from monotone growth.
func TestNoticeHistoryBounded(t *testing.T) {
	cm := fabric.DefaultCostModel()
	impl := core.Impl{Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}
	on := mustRun(t, "micro-producer-consumer", impl, 16, cm, run.Options{NoticeGC: true})
	off := mustRun(t, "micro-producer-consumer", impl, 16, cm, run.Options{})
	if on.GC == nil {
		t.Fatal("no GC report")
	}
	if len(on.GC.Samples) < 6 {
		t.Fatalf("only %d collection passes; need >= 3 epochs (6 barriers) to observe the cycle", len(on.GC.Samples))
	}
	firstEpochMax := on.GC.Samples[0].After
	if a := on.GC.Samples[1].After; a > firstEpochMax {
		firstEpochMax = a
	}
	for i, s := range on.GC.Samples {
		if s.After > firstEpochMax {
			t.Errorf("pass %d leaves %d notice bytes live, above the first epoch's %d: history grows with epochs despite GC",
				i, s.After, firstEpochMax)
		}
	}
	if off.NoticeBytes < 8*firstEpochMax {
		t.Errorf("GC-off history (%d bytes) is not much larger than the bounded residue (%d): the workload no longer accumulates history and the bound is vacuous",
			off.NoticeBytes, firstEpochMax)
	}
}

// largePeakHeapBudget bounds the host heap of one 256-processor large-scale
// SOR cell: ~115 MiB measured cold, with headroom for allocator slack and
// residue from earlier tests in the same process. An O(procs^2) regression
// in per-node protocol state blows past this by design (the uncollected
// Water cell at the same processor count peaks at ~2.4 GiB).
const largePeakHeapBudget = 1 << 30 // 1 GiB

// TestLargeScaleMemoryBudget runs a full 256-processor large-scale cell
// through the harness (image cache, scale defaults) and pins its host-side
// peak heap, measured by the perf registry's cell spans, under the budget.
// SOR is the cell: large enough to exercise 256-way sharing, cheap enough
// for the tier-1 suite (the heavyweight Water cell runs in CI's scale smoke
// job instead). It also pins the large-scale harness defaults: notice GC
// must have been on without being asked for.
func TestLargeScaleMemoryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("256-processor cell")
	}
	reg := perf.New()
	cfg := harness.Config{Scale: apps.Large, NProcs: 256, Cost: fabric.DefaultCostModel(), Perf: reg}
	row := harness.RunCell(cfg, "SOR", core.Impl{Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs})
	if row.Err != nil {
		t.Fatal(row.Err)
	}
	if row.GC == nil {
		t.Error("large-scale cell ran without notice GC: the harness scale default regressed")
	} else if row.GC.Violations != 0 {
		t.Errorf("GC recorded %d floor violations", row.GC.Violations)
	}
	snap := reg.Snapshot(perf.Meta{Parallel: 1})
	if len(snap.Cells) == 0 {
		t.Fatal("perf registry observed no cells")
	}
	if snap.PeakHeapBytes <= 0 {
		t.Fatal("no peak heap recorded")
	}
	if snap.PeakHeapBytes > largePeakHeapBudget {
		t.Errorf("256-proc SOR cell peaked at %d heap bytes, over the %d budget (%.1f MiB > %.1f MiB)",
			snap.PeakHeapBytes, int64(largePeakHeapBudget),
			float64(snap.PeakHeapBytes)/(1<<20), float64(largePeakHeapBudget)/(1<<20))
	}
}

func mustRun(t *testing.T, name string, impl core.Impl, nprocs int, cm fabric.CostModel, opts run.Options) run.Result {
	t.Helper()
	a, err := apps.New(name, apps.Test)
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.RunWith(a, impl, nprocs, cm, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
