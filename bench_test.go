package ecvslrc

import (
	"testing"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/harness"
	"ecvslrc/internal/mem"
	"ecvslrc/internal/run"
	"ecvslrc/internal/sim"
	"ecvslrc/internal/wcollect"
	"ecvslrc/internal/wtrap"
)

// Benchmarks regenerate the paper's tables at Bench scale (Go benchmarks at
// full paper scale take minutes per cell; use cmd/dsmbench -scale paper for
// the real numbers). Each reported iteration simulates a complete parallel
// run including result verification. The custom metrics report simulated
// seconds, messages and bytes — the paper's quantities.

func benchCell(b *testing.B, app string, impl core.Impl, nprocs int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		a, err := apps.New(app, apps.Bench)
		if err != nil {
			b.Fatal(err)
		}
		res, err := run.Run(a, impl, nprocs, fabric.DefaultCostModel())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Stats.Time.Seconds(), "sim-sec")
			b.ReportMetric(float64(res.Stats.Msgs), "sim-msgs")
			b.ReportMetric(float64(res.Stats.Bytes), "sim-bytes")
		}
	}
}

// BenchmarkTable3 regenerates Table 3's comparison cells: the best EC and
// best LRC implementation per application (per the paper's Table 3 "Imp."
// columns), at 8 processors.
func BenchmarkTable3(b *testing.B) {
	best := map[string][2]core.Impl{
		"SOR":        {{Model: core.EC, Trap: core.Twinning, Collect: core.Timestamps}, {Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}},
		"SOR+":       {{Model: core.EC, Trap: core.Twinning, Collect: core.Timestamps}, {Model: core.LRC, Trap: core.Twinning, Collect: core.Timestamps}},
		"QS":         {{Model: core.EC, Trap: core.Twinning, Collect: core.Diffs}, {Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}},
		"Water":      {{Model: core.EC, Trap: core.CompilerInstr, Collect: core.Timestamps}, {Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}},
		"Barnes-Hut": {{Model: core.EC, Trap: core.Twinning, Collect: core.Timestamps}, {Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}},
		"IS":         {{Model: core.EC, Trap: core.Twinning, Collect: core.Timestamps}, {Model: core.LRC, Trap: core.Twinning, Collect: core.Timestamps}},
		"3D-FFT":     {{Model: core.EC, Trap: core.CompilerInstr, Collect: core.Timestamps}, {Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}},
	}
	for _, app := range apps.Names() {
		pair := best[app]
		b.Run(app+"/seq", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := apps.New(app, apps.Bench)
				if err != nil {
					b.Fatal(err)
				}
				t, err := run.RunSeq(a)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(t.Seconds(), "sim-sec")
				}
			}
		})
		b.Run(app+"/"+pair[0].String(), func(b *testing.B) { benchCell(b, app, pair[0], 8) })
		b.Run(app+"/"+pair[1].String(), func(b *testing.B) { benchCell(b, app, pair[1], 8) })
	}
}

// BenchmarkTable4 regenerates Table 4: every EC implementation on every
// application.
func BenchmarkTable4(b *testing.B) {
	for _, app := range apps.Names() {
		for _, impl := range core.ModelImpls(core.EC) {
			b.Run(app+"/"+impl.String(), func(b *testing.B) { benchCell(b, app, impl, 8) })
		}
	}
}

// BenchmarkTable5 regenerates Table 5: every LRC implementation on every
// application.
func BenchmarkTable5(b *testing.B) {
	for _, app := range apps.Names() {
		for _, impl := range core.ModelImpls(core.LRC) {
			b.Run(app+"/"+impl.String(), func(b *testing.B) { benchCell(b, app, impl, 8) })
		}
	}
}

// BenchmarkMicroFactors regenerates the Section 7.1 factor kernels across
// the full implementation matrix.
func BenchmarkMicroFactors(b *testing.B) {
	for _, name := range apps.MicroNames() {
		for _, impl := range core.Implementations() {
			b.Run(name+"/"+impl.String(), func(b *testing.B) { benchCell(b, name, impl, 8) })
		}
	}
}

// BenchmarkInstrumentationOptimization is the Section 8.1 ablation: SOR with
// naive vs loop-split compiler instrumentation (the paper measured a 16%
// improvement for SOR).
func BenchmarkInstrumentationOptimization(b *testing.B) {
	for _, opt := range []struct {
		name  string
		naive bool
	}{{"optimized", false}, {"naive", true}} {
		b.Run(opt.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := apps.New("SOR", apps.Bench)
				if err != nil {
					b.Fatal(err)
				}
				cm := fabric.DefaultCostModel()
				if opt.naive {
					cm.InstrStoreOpt = cm.InstrStore
				}
				res, err := run.Run(a, core.Impl{Model: core.EC, Trap: core.CompilerInstr, Collect: core.Timestamps}, 8, cm)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(res.Stats.Time.Seconds(), "sim-sec")
				}
			}
		})
	}
}

// BenchmarkHarnessTable3 exercises the full harness path end to end.
func BenchmarkHarnessTable3(b *testing.B) {
	cfg := harness.Config{Scale: apps.Test, NProcs: 4, Cost: fabric.DefaultCostModel()}
	for i := 0; i < b.N; i++ {
		if _, err := harness.Table3(cfg, []string{"IS"}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- allocation-counting kernels -------------------------------------------
//
// The benchmarks below isolate the simulator's real-time hot paths: event
// scheduling/dispatch, twin diffing, dirty-bit collection and timestamp
// selection. They report allocs/op so regressions in the allocation-free
// design are caught by inspection of the benchmark output.

// BenchmarkSimSchedule measures a schedule/dispatch cycle through both the
// same-instant FIFO and the time-ordered heap. Steady state is zero allocs.
func BenchmarkSimSchedule(b *testing.B) {
	s := sim.New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(s.Now(), fn)
		s.Schedule(s.Now()+sim.Microsecond, fn)
		s.Schedule(s.Now()+2*sim.Microsecond, fn)
		s.Schedule(s.Now()+sim.Microsecond, fn)
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPageCompare measures the word-wide twin diff of one 4 KB page
// with a sparse change pattern (the common protocol case).
func BenchmarkPageCompare(b *testing.B) {
	im := mem.NewImage(mem.PageSize)
	pt := wtrap.NewPageTwins(im)
	pt.Make(0)
	im.WriteU32(128, 7)
	im.WriteU32(132, 8)
	im.WriteU32(3000, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs, _ := pt.Compare(0)
		if len(runs) != 2 {
			b.Fatalf("runs = %v", runs)
		}
	}
}

// BenchmarkPageCompareClean measures the fast-skip over an unmodified page
// (twinned pages that a lock's epoch never wrote are compared in full).
func BenchmarkPageCompareClean(b *testing.B) {
	im := mem.NewImage(mem.PageSize)
	pt := wtrap.NewPageTwins(im)
	pt.Make(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if runs, _ := pt.Compare(0); len(runs) != 0 {
			b.Fatalf("runs = %v", runs)
		}
	}
}

// BenchmarkDirtyCollect measures the compiler-instrumentation scan of a
// 4-page region with scattered dirty blocks.
func BenchmarkDirtyCollect(b *testing.B) {
	al := mem.NewAllocator()
	base := al.Alloc("r", 4*mem.PageSize, 4)
	db := wtrap.NewDirtyBits(al, false)
	for off := 0; off < 4*mem.PageSize; off += 256 {
		db.NoteWrite(base+mem.Addr(off), 4)
	}
	ranges := []mem.Range{{Base: base, Len: 4 * mem.PageSize}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs, scanned := db.Collect(ranges)
		if len(runs) == 0 || scanned != 4*mem.PageWords {
			b.Fatalf("runs=%d scanned=%d", len(runs), scanned)
		}
	}
}

// BenchmarkStampsSelect measures the responder-side timestamp scan charged
// on every timestamp-collection request (Section 5.3's computation
// overhead), over a 4-page binding with a few stamped runs.
func BenchmarkStampsSelect(b *testing.B) {
	al := mem.NewAllocator()
	base := al.Alloc("r", 4*mem.PageSize, 4)
	st := wcollect.NewStamps(al)
	st.Set([]mem.Range{{Base: base + 64, Len: 128}, {Base: base + 9000, Len: 64}}, 5)
	ranges := []mem.Range{{Base: base, Len: 4 * mem.PageSize}}
	newer := func(s wcollect.Stamp) bool { return s > 3 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs, scanned := st.Select(ranges, newer)
		if len(runs) != 2 || scanned != 4*mem.PageWords {
			b.Fatalf("runs=%d scanned=%d", len(runs), scanned)
		}
	}
}
