package ecvslrc

import (
	"testing"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/harness"
	"ecvslrc/internal/run"
)

// Benchmarks regenerate the paper's tables at Bench scale (Go benchmarks at
// full paper scale take minutes per cell; use cmd/dsmbench -scale paper for
// the real numbers). Each reported iteration simulates a complete parallel
// run including result verification. The custom metrics report simulated
// seconds, messages and bytes — the paper's quantities.

func benchCell(b *testing.B, app string, impl core.Impl, nprocs int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		a, err := apps.New(app, apps.Bench)
		if err != nil {
			b.Fatal(err)
		}
		res, err := run.Run(a, impl, nprocs, fabric.DefaultCostModel())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Stats.Time.Seconds(), "sim-sec")
			b.ReportMetric(float64(res.Stats.Msgs), "sim-msgs")
			b.ReportMetric(float64(res.Stats.Bytes), "sim-bytes")
		}
	}
}

// BenchmarkTable3 regenerates Table 3's comparison cells: the best EC and
// best LRC implementation per application (per the paper's Table 3 "Imp."
// columns), at 8 processors.
func BenchmarkTable3(b *testing.B) {
	best := map[string][2]core.Impl{
		"SOR":        {{Model: core.EC, Trap: core.Twinning, Collect: core.Timestamps}, {Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}},
		"SOR+":       {{Model: core.EC, Trap: core.Twinning, Collect: core.Timestamps}, {Model: core.LRC, Trap: core.Twinning, Collect: core.Timestamps}},
		"QS":         {{Model: core.EC, Trap: core.Twinning, Collect: core.Diffs}, {Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}},
		"Water":      {{Model: core.EC, Trap: core.CompilerInstr, Collect: core.Timestamps}, {Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}},
		"Barnes-Hut": {{Model: core.EC, Trap: core.Twinning, Collect: core.Timestamps}, {Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}},
		"IS":         {{Model: core.EC, Trap: core.Twinning, Collect: core.Timestamps}, {Model: core.LRC, Trap: core.Twinning, Collect: core.Timestamps}},
		"3D-FFT":     {{Model: core.EC, Trap: core.CompilerInstr, Collect: core.Timestamps}, {Model: core.LRC, Trap: core.Twinning, Collect: core.Diffs}},
	}
	for _, app := range apps.Names() {
		pair := best[app]
		b.Run(app+"/seq", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := apps.New(app, apps.Bench)
				if err != nil {
					b.Fatal(err)
				}
				t, err := run.RunSeq(a)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(t.Seconds(), "sim-sec")
				}
			}
		})
		b.Run(app+"/"+pair[0].String(), func(b *testing.B) { benchCell(b, app, pair[0], 8) })
		b.Run(app+"/"+pair[1].String(), func(b *testing.B) { benchCell(b, app, pair[1], 8) })
	}
}

// BenchmarkTable4 regenerates Table 4: every EC implementation on every
// application.
func BenchmarkTable4(b *testing.B) {
	for _, app := range apps.Names() {
		for _, impl := range core.ModelImpls(core.EC) {
			b.Run(app+"/"+impl.String(), func(b *testing.B) { benchCell(b, app, impl, 8) })
		}
	}
}

// BenchmarkTable5 regenerates Table 5: every LRC implementation on every
// application.
func BenchmarkTable5(b *testing.B) {
	for _, app := range apps.Names() {
		for _, impl := range core.ModelImpls(core.LRC) {
			b.Run(app+"/"+impl.String(), func(b *testing.B) { benchCell(b, app, impl, 8) })
		}
	}
}

// BenchmarkMicroFactors regenerates the Section 7.1 factor kernels across
// the full implementation matrix.
func BenchmarkMicroFactors(b *testing.B) {
	for _, name := range apps.MicroNames() {
		for _, impl := range core.Implementations() {
			b.Run(name+"/"+impl.String(), func(b *testing.B) { benchCell(b, name, impl, 8) })
		}
	}
}

// BenchmarkInstrumentationOptimization is the Section 8.1 ablation: SOR with
// naive vs loop-split compiler instrumentation (the paper measured a 16%
// improvement for SOR).
func BenchmarkInstrumentationOptimization(b *testing.B) {
	for _, opt := range []struct {
		name  string
		naive bool
	}{{"optimized", false}, {"naive", true}} {
		b.Run(opt.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := apps.New("SOR", apps.Bench)
				if err != nil {
					b.Fatal(err)
				}
				cm := fabric.DefaultCostModel()
				if opt.naive {
					cm.InstrStoreOpt = cm.InstrStore
				}
				res, err := run.Run(a, core.Impl{Model: core.EC, Trap: core.CompilerInstr, Collect: core.Timestamps}, 8, cm)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(res.Stats.Time.Seconds(), "sim-sec")
				}
			}
		})
	}
}

// BenchmarkHarnessTable3 exercises the full harness path end to end.
func BenchmarkHarnessTable3(b *testing.B) {
	cfg := harness.Config{Scale: apps.Test, NProcs: 4, Cost: fabric.DefaultCostModel()}
	for i := 0; i < b.N; i++ {
		if _, err := harness.Table3(cfg, []string{"IS"}); err != nil {
			b.Fatal(err)
		}
	}
}
