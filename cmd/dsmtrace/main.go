// Command dsmtrace answers "why is this cell slow?": it runs one
// (application, implementation) combination with event tracing enabled and
// emits the attribution artifacts — per-page heat and sharing patterns,
// per-lock contention chains, barrier imbalance, a message-class timeline
// and a Chrome trace-event view.
//
// Usage:
//
//	dsmtrace -app Water -impl LRC-diff -procs 8 -report pages,locks,timeline -out results/
//	dsmtrace -app SOR -impl EC-time -procs 4 -scale test
//
// With -out unset the markdown summary goes to stdout; with it set, the
// selected reports (summary.md, pages.csv, locks.csv, timeline.json,
// trace.bin) are written to the directory. Tracing is observation-only: the
// run's statistics are bit-identical to an untraced dsmrun.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/run"
	"ecvslrc/internal/trace"
)

func main() {
	appName := flag.String("app", "SOR", "application: "+strings.Join(apps.Names(), ", "))
	implName := flag.String("impl", "LRC-diff", "implementation: EC-ci, EC-time, EC-diff, LRC-ci, LRC-time, LRC-diff")
	procs := flag.Int("procs", 8, "number of simulated processors")
	scale := flag.String("scale", "bench", "problem scale: test, bench or paper")
	preset := flag.String("preset", "paper", "cost-model preset: "+strings.Join(fabric.PresetNames(), ", "))
	contention := flag.Bool("contention", false, "model shared-link contention (queueing delays appear in the analysis)")
	reports := flag.String("report", "", "comma-separated reports: "+strings.Join(trace.ReportNames(), ", ")+" (default: all)")
	out := flag.String("out", "", "artifact directory; empty prints the summary to stdout")
	sched := flag.Bool("sched", false, "also record scheduler dispatch events (very voluminous)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "dsmtrace: %v\n", err)
		os.Exit(1)
	}
	usageFail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dsmtrace: "+format+"\n", args...)
		os.Exit(2)
	}

	var sc apps.Scale
	switch *scale {
	case "test":
		sc = apps.Test
	case "bench":
		sc = apps.Bench
	case "paper":
		sc = apps.Paper
	default:
		usageFail("unknown scale %q", *scale)
	}
	impl, err := core.ParseImpl(*implName)
	if err != nil {
		usageFail("%v", err)
	}
	if *procs < 1 || *procs > trace.MaxProcs {
		usageFail("traced runs support 1..%d processors, got %d", trace.MaxProcs, *procs)
	}
	cost, err := fabric.PresetByName(*preset)
	if err != nil {
		usageFail("%v", err)
	}
	var sel []trace.Report
	if *reports == "" && *out == "" {
		// Stdout mode emits the summary only; files need -out.
		sel = []trace.Report{trace.ReportSummary}
	} else {
		sel, err = trace.ParseReports(*reports)
		if err != nil {
			usageFail("%v", err)
		}
	}
	topts := trace.Options{Reports: sel, OutDir: *out, Sched: *sched}
	if err := topts.Validate(); err != nil {
		usageFail("%v", err)
	}

	a, err := apps.New(*appName, sc)
	if err != nil {
		fail(err)
	}
	tr := trace.New(*procs)
	if topts.Sched {
		tr.EnableSched()
	}
	res, err := run.RunWith(a, impl, *procs, cost, run.Options{Contention: *contention, Trace: tr})
	if err != nil {
		fail(err)
	}

	// Re-derive the layout on a fresh instance (Layout may bind app state)
	// so the analysis can name pages by region.
	a2, err := apps.New(*appName, sc)
	if err != nil {
		fail(err)
	}
	analysis := trace.Analyze(tr, run.TraceMeta(a2, impl, *procs, *scale))

	if *out == "" {
		if err := trace.WriteMarkdown(os.Stdout, analysis); err != nil {
			fail(err)
		}
		return
	}
	written, err := trace.EmitReports(*out, sel, analysis, tr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("dsmtrace: %s on %v, %d procs: %d events, %v simulated -> %s\n",
		*appName, impl, *procs, tr.Len(), res.Stats.Time, strings.Join(written, ", "))
}
