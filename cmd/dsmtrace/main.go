// Command dsmtrace answers "why is this cell slow?": it runs one
// (application, implementation) combination with event tracing enabled and
// emits the attribution artifacts — per-page heat and sharing patterns,
// per-lock contention chains, barrier imbalance, a message-class timeline,
// a Chrome trace-event view, and the virtual-time profiler's products (the
// per-processor stall breakdown, folded stacks, the critical path and its
// what-if projections).
//
// Usage:
//
//	dsmtrace -app Water -impl LRC-diff -procs 8 -report pages,locks,timeline -out results/
//	dsmtrace -app SOR -impl LRC-diff -procs 8 -report profile,critpath,whatif -out results/
//	dsmtrace -app SOR -impl EC-time -procs 4 -scale test
//
// With -out unset the markdown summary goes to stdout; with it set, the
// selected reports (summary.md, pages.csv, locks.csv, timeline.json,
// trace.bin, profile.md, profile.folded, critpath.csv, critpath.json,
// whatif.md) are written to the directory. Every selection other than
// summary/barriers produces files, so it needs -out: such selections fail
// fast with the wrapped trace.ErrConfig message before the run starts,
// never silently writing nothing. Tracing is observation-only: the run's
// statistics are bit-identical to an untraced dsmrun.
//
// Exit codes: 0 on success, 1 on run/emit failure, 2 on invalid flags
// (including -report selections, which carry the wrapped trace.ErrConfig
// message).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/platform"
	_ "ecvslrc/internal/platform/models" // register the platform models as presets
	"ecvslrc/internal/run"
	"ecvslrc/internal/trace"
)

func main() {
	os.Exit(cli(os.Args[1:], os.Stdout, os.Stderr))
}

// cli is main with injectable arguments and streams, so the exit-code
// contract is table-testable. Returns the process exit code.
func cli(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsmtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	appName := fs.String("app", "SOR", "application: "+strings.Join(apps.Names(), ", "))
	implName := fs.String("impl", "LRC-diff", "implementation: EC-ci, EC-time, EC-diff, LRC-ci, LRC-time, LRC-diff")
	procs := fs.Int("procs", 8, "number of simulated processors")
	scale := fs.String("scale", "bench", "problem scale: test, bench or paper")
	preset := fs.String("preset", "paper", "cost spec: a preset ("+strings.Join(fabric.PresetNames(), ", ")+"), optionally +knobs, e.g. \"rdma_100g+net=x2\"")
	contention := fs.Bool("contention", false, "model shared-link contention (queueing delays appear in the analysis)")
	reports := fs.String("report", "", "comma-separated reports: "+strings.Join(trace.ReportNames(), ", ")+" (default: all)")
	out := fs.String("out", "", "artifact directory; empty prints the summary to stdout")
	sched := fs.Bool("sched", false, "also record scheduler dispatch events (very voluminous)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintf(stderr, "dsmtrace: %v\n", err)
		return 1
	}
	usageFail := func(format string, fargs ...any) int {
		fmt.Fprintf(stderr, "dsmtrace: "+format+"\n", fargs...)
		return 2
	}

	sc, err := apps.ParseScale(*scale)
	if err != nil {
		return usageFail("%v", err)
	}
	impl, err := core.ParseImpl(*implName)
	if err != nil {
		return usageFail("%v", err)
	}
	if *procs < 1 || *procs > trace.MaxProcs {
		return usageFail("traced runs support 1..%d processors, got %d", trace.MaxProcs, *procs)
	}
	cost, err := platform.Resolve(*preset)
	if err != nil {
		return usageFail("%v", err)
	}
	var sel []trace.Report
	if *reports == "" && *out == "" {
		// Stdout mode emits the summary only; files need -out.
		sel = []trace.Report{trace.ReportSummary}
	} else {
		sel, err = trace.ParseReports(*reports)
		if err != nil {
			return usageFail("%v", err)
		}
	}
	topts := trace.Options{Reports: sel, OutDir: *out, Sched: *sched}
	if err := topts.Validate(); err != nil {
		return usageFail("%v", err)
	}

	a, err := apps.New(*appName, sc)
	if err != nil {
		return fail(err)
	}
	tr := trace.New(*procs)
	if topts.Sched {
		tr.EnableSched()
	}
	res, err := run.RunWith(a, impl, *procs, cost, run.Options{Contention: *contention, Trace: tr})
	if err != nil {
		return fail(err)
	}

	// Re-derive the layout on a fresh instance (Layout may bind app state)
	// so the analysis can name pages by region.
	a2, err := apps.New(*appName, sc)
	if err != nil {
		return fail(err)
	}
	meta := run.TraceMeta(a2, impl, *procs, *scale)

	if *out == "" {
		if err := trace.WriteMarkdown(stdout, trace.Analyze(tr, meta)); err != nil {
			return fail(err)
		}
		return 0
	}
	written, err := trace.EmitReports(*out, sel, trace.Artifacts{Analysis: trace.Analyze(tr, meta)}, tr)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "dsmtrace: %s on %v, %d procs: %d events, %v simulated -> %s\n",
		*appName, impl, *procs, tr.Len(), res.Stats.Time, strings.Join(written, ", "))
	return 0
}
