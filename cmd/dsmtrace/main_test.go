package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIExitCodes pins the exit-code contract the CI smoke steps rely on:
// invalid flag values must exit non-zero, and invalid -report selections
// must carry the wrapped trace.ErrConfig message so failures are legible.
func TestCLIExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string // required substring of stderr, "" for any
	}{
		{"help exits zero", []string{"-h"}, 0, "Usage of dsmtrace"},
		{"unknown flag", []string{"-nonsense"}, 2, ""},
		{"bad scale", []string{"-scale", "huge"}, 2, `unknown scale "huge"`},
		{"bad impl", []string{"-impl", "EC-magic"}, 2, `unknown implementation "EC-magic"`},
		{"bad procs", []string{"-procs", "0"}, 2, "traced runs support"},
		{"bad preset", []string{"-preset", "quantum"}, 2, "unknown cost preset"},
		{"bad preset knob", []string{"-preset", "paper+diff=hw"}, 2, `knob "diff" takes "free"`},
		{"bad report", []string{"-report", "pages,nonsense", "-out", t.TempDir()}, 2,
			`invalid trace options: unknown report "nonsense"`},
		{"empty report list", []string{"-report", ",,", "-out", t.TempDir()}, 2,
			"invalid trace options: report list selects nothing"},
		{"file report without out", []string{"-report", "pages"}, 2,
			"invalid trace options: report pages needs an output directory"},
		{"profile without out", []string{"-report", "profile"}, 2,
			"invalid trace options: report profile needs an output directory"},
		{"critpath without out", []string{"-report", "critpath"}, 2,
			"invalid trace options: report critpath needs an output directory"},
		{"whatif without out", []string{"-report", "whatif"}, 2,
			"invalid trace options: report whatif needs an output directory"},
		{"unknown app", []string{"-app", "NoSuch", "-scale", "test", "-procs", "2"}, 1,
			`unknown application "NoSuch"`},
		{"good run", []string{"-app", "IS", "-impl", "LRC-time", "-scale", "test", "-procs", "2"}, 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := cli(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Errorf("exit code = %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.stderr)
			}
		})
	}
}

// TestProfileReportsEmitted drives a real traced run through the profiler
// selection and checks every artifact lands with the advertised content.
func TestProfileReportsEmitted(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr strings.Builder
	code := cli([]string{"-app", "IS", "-impl", "LRC-diff", "-scale", "test", "-procs", "4",
		"-report", "profile,critpath,whatif", "-out", dir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"profile.md", "profile.folded", "critpath.csv", "critpath.json", "whatif.md"} {
		if fi, err := os.Stat(filepath.Join(dir, name)); err != nil || fi.Size() == 0 {
			t.Errorf("%s missing or empty (%v)", name, err)
		}
	}
	prof, err := os.ReadFile(filepath.Join(dir, "profile.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"conservation", "## Per-processor stall breakdown", "## Critical path"} {
		if !strings.Contains(string(prof), want) {
			t.Errorf("profile.md lacks %q", want)
		}
	}
	cp, err := os.ReadFile(filepath.Join(dir, "critpath.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(cp), "proc,start_ns,end_ns,duration_ns,class,object\n") {
		t.Errorf("critpath.csv header = %q", strings.SplitN(string(cp), "\n", 2)[0])
	}
}
