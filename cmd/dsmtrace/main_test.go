package main

import (
	"strings"
	"testing"
)

// TestCLIExitCodes pins the exit-code contract the CI smoke steps rely on:
// invalid flag values must exit non-zero, and invalid -report selections
// must carry the wrapped trace.ErrConfig message so failures are legible.
func TestCLIExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string // required substring of stderr, "" for any
	}{
		{"help exits zero", []string{"-h"}, 0, "Usage of dsmtrace"},
		{"unknown flag", []string{"-nonsense"}, 2, ""},
		{"bad scale", []string{"-scale", "huge"}, 2, `unknown scale "huge"`},
		{"bad impl", []string{"-impl", "EC-magic"}, 2, `unknown implementation "EC-magic"`},
		{"bad procs", []string{"-procs", "0"}, 2, "traced runs support"},
		{"bad preset", []string{"-preset", "quantum"}, 2, "unknown cost preset"},
		{"bad report", []string{"-report", "pages,nonsense", "-out", t.TempDir()}, 2,
			`invalid trace options: unknown report "nonsense"`},
		{"empty report list", []string{"-report", ",,", "-out", t.TempDir()}, 2,
			"invalid trace options: report list selects nothing"},
		{"file report without out", []string{"-report", "pages"}, 2,
			"invalid trace options: report pages needs an output directory"},
		{"unknown app", []string{"-app", "NoSuch", "-scale", "test", "-procs", "2"}, 1,
			`unknown application "NoSuch"`},
		{"good run", []string{"-app", "IS", "-impl", "LRC-time", "-scale", "test", "-procs", "2"}, 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := cli(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Errorf("exit code = %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.stderr)
			}
		})
	}
}
