// Command dsmsweep runs a sensitivity sweep: the (application x
// implementation x processor count) evaluation matrix under a set of
// cost-model variants, with structured CSV/JSON-lines/markdown artifacts and
// a baseline-comparison report.
//
// Usage:
//
//	dsmsweep -scale bench -variants "net=x2,x4 detect=sw,hw" -out sweep-out
//	dsmsweep -scale test -apps SOR,IS -procs 4,8 -variants "contention=off,on"
//	dsmsweep -preset modern -scale bench
//
// Variant axes: net=xK, cpu=xK, detect=sw|hw, diff=sw|free,
// contention=off|on; the calibrated paper platform ("paper") is always
// included as the comparison baseline. With -out unset, the markdown report
// goes to stdout; with it set, sweep.csv, sweep.jsonl, sweep.md and
// report.md are written to the directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/sweep"
)

func main() {
	scale := flag.String("scale", "bench", "problem scale: test, bench or paper")
	procsFlag := flag.String("procs", "8", "comma-separated processor counts, e.g. \"4,8\"")
	appsFlag := flag.String("apps", "", "comma-separated application subset (default: all)")
	implsFlag := flag.String("impls", "", "comma-separated implementation subset, e.g. \"EC-time,LRC-diff\" (default: all six)")
	variants := flag.String("variants", "", "variant spec, e.g. \"net=x2,x4 detect=sw,hw\" (default: baseline only)")
	preset := flag.String("preset", "", "add one named cost preset as a variant: "+strings.Join(fabric.PresetNames(), ", "))
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max cells simulated concurrently (records are identical for any value)")
	out := flag.String("out", "", "artifact directory (csv, jsonl, markdown, report); empty prints markdown to stdout")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "dsmsweep: %v\n", err)
		os.Exit(1)
	}
	usageFail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dsmsweep: "+format+"\n", args...)
		os.Exit(2)
	}

	g := sweep.Grid{Parallel: *parallel}
	switch *scale {
	case "test":
		g.Scale = apps.Test
	case "bench":
		g.Scale = apps.Bench
	case "paper":
		g.Scale = apps.Paper
	default:
		usageFail("unknown scale %q", *scale)
	}
	for _, s := range splitList(*procsFlag) {
		np, err := strconv.Atoi(s)
		if err != nil {
			usageFail("bad -procs entry %q", s)
		}
		g.NProcs = append(g.NProcs, np)
	}
	if *appsFlag != "" {
		known := make(map[string]bool)
		for _, n := range apps.Names() {
			known[n] = true
		}
		for _, n := range splitList(*appsFlag) {
			if !known[n] {
				usageFail("unknown app %q (known: %s)", n, strings.Join(apps.Names(), ", "))
			}
			g.Apps = append(g.Apps, n)
		}
	}
	if *implsFlag != "" {
		for _, s := range splitList(*implsFlag) {
			impl, err := core.ParseImpl(s)
			if err != nil {
				usageFail("%v", err)
			}
			g.Impls = append(g.Impls, impl)
		}
	}
	vs, err := sweep.ParseVariantSpec(*variants)
	if err != nil {
		usageFail("%v", err)
	}
	if *preset != "" {
		cm, err := fabric.PresetByName(*preset)
		if err != nil {
			usageFail("%v", err)
		}
		have := false
		for _, v := range vs {
			if v.Name == *preset {
				have = true
			}
		}
		if !have {
			vs = append(vs, sweep.Variant{Name: *preset, Cost: cm})
		}
	}
	g.Variants = vs

	recs, err := sweep.Run(g)
	if err != nil {
		fail(err)
	}

	if *out == "" {
		if err := sweep.WriteMarkdown(os.Stdout, recs); err != nil {
			fail(err)
		}
		fmt.Println()
		if err := sweep.WriteBaselineReport(os.Stdout, recs, sweep.BaselineName); err != nil {
			fail(err)
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	emit := func(name string, write func(f *os.File) error) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := write(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	emit("sweep.csv", func(f *os.File) error { return sweep.WriteCSV(f, recs) })
	emit("sweep.jsonl", func(f *os.File) error { return sweep.WriteJSONL(f, recs) })
	emit("sweep.md", func(f *os.File) error { return sweep.WriteMarkdown(f, recs) })
	emit("report.md", func(f *os.File) error { return sweep.WriteBaselineReport(f, recs, sweep.BaselineName) })
	fmt.Printf("dsmsweep: %d records (%d variants) -> %s\n", len(recs), len(g.Variants), *out)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}
