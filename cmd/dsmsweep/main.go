// Command dsmsweep runs a sensitivity sweep: the (application x
// implementation x processor count) evaluation matrix under a set of
// cost-model variants, with structured CSV/JSON-lines/markdown artifacts and
// a baseline-comparison report.
//
// Usage:
//
//	dsmsweep -scale bench -variants "net=x2,x4 detect=sw,hw" -out sweep-out
//	dsmsweep -scale test -apps SOR,IS -procs 4,8 -variants "contention=off,on"
//	dsmsweep -scale bench -variants "platform=decstation_atm,cluster_gbe,rdma_100g,grace"
//	dsmsweep -preset rdma_100g -scale bench
//
// Variant axes: platform=NAME (any cost preset, including the registered
// platform models — see internal/platform), net=xK, cpu=xK, detect=sw|hw,
// diff=sw|free, contention=off|on, fault=off|drop1e-3|drop1e-2|chaos,
// topo=flat|clos:radix=K[:taper=T][:stages=N]; the calibrated paper
// platform ("paper") is always included as the comparison baseline.
// -preset adds one cost spec ("name" or "name+knob", platform.Resolve
// grammar) as an extra variant. At
// -scale large every cell defaults to LRC notice GC and a fan-in-16
// barrier tree (override with -fanin 1 for flat barriers).
// With -out unset, the markdown report goes to stdout; with it set,
// sweep.csv, sweep.jsonl, sweep.md and report.md are written to the
// directory.
//
// -breakdown traces every cell and attaches the virtual-time profiler's
// stall decomposition (compute, trap-diff, page-fetch, lock/barrier/link
// wait, fault recovery) to each record, adding the stall columns to
// sweep.csv. All other record fields are identical with it on or off.
//
// -progress streams per-cell completion heartbeats (wall time, running
// cells/sec, ETA) to stderr; -perf-out writes a schema-versioned
// BENCH_*.json host-performance trajectory (see internal/perf and
// cmd/dsmperf); -cpuprofile/-memprofile write standard pprof profiles. All
// are observation-only: the emitted records are identical with and without
// them.
//
// Failed cells do not abort the sweep: the surviving records are emitted,
// every failed cell is listed on stderr, and the exit code is 1.
//
// Exit codes: 0 on success, 1 on run/emit failure (including partial
// failures), 2 on invalid flags (including -variants specs, which carry the
// wrapped sweep.ErrSpec message).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/perf"
	"ecvslrc/internal/platform"
	_ "ecvslrc/internal/platform/models" // register the platform models as presets
	"ecvslrc/internal/sim"
	"ecvslrc/internal/sweep"
)

func main() {
	os.Exit(cli(os.Args[1:], os.Stdout, os.Stderr))
}

// cli is main with injectable arguments and streams, so the exit-code
// contract is table-testable. Returns the process exit code.
func cli(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsmsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.String("scale", "bench", "problem scale: "+strings.Join(apps.ScaleNames(), ", "))
	procsFlag := fs.String("procs", "8", "comma-separated processor counts, e.g. \"4,8\"")
	appsFlag := fs.String("apps", "", "comma-separated application subset (default: all)")
	implsFlag := fs.String("impls", "", "comma-separated implementation subset, e.g. \"EC-time,LRC-diff\" (default: all six)")
	variants := fs.String("variants", "", "variant spec, e.g. \"net=x2,x4 detect=sw,hw\" (default: baseline only)")
	preset := fs.String("preset", "", "add one cost spec as a variant: a preset ("+strings.Join(fabric.PresetNames(), ", ")+"), optionally +knobs, e.g. \"rdma_100g+net=x2\"")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "max cells simulated concurrently (records are identical for any value)")
	fanin := fs.Int("fanin", 0, "barrier fan-in for every cell: radix-r arrival tree (0 = scale default, 1 = force flat, r >= 2 = tree)")
	out := fs.String("out", "", "artifact directory (csv, jsonl, markdown, report); empty prints markdown to stdout")
	timeout := fs.Float64("timeout", 0, "per-cell virtual-time watchdog in simulated seconds: stalled cells fail with a diagnostic instead of hanging the sweep (0 disables)")
	breakdown := fs.Bool("breakdown", false, "trace every cell and attach the virtual-time stall breakdown (compute, trap-diff, page-fetch, lock/barrier/link wait, recovery) to each record")
	progress := fs.Bool("progress", false, "stream per-cell completion heartbeats (wall time, running cells/sec, ETA) to stderr")
	perfOut := fs.String("perf-out", "", "write a BENCH_*.json host-performance trajectory to this file (per-cell alloc deltas are exact only with -parallel 1)")
	rev := fs.String("rev", "", "revision stamp for -perf-out (default: the build's vcs.revision, else \"unknown\")")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	usageFail := func(format string, fargs ...any) int {
		fmt.Fprintf(stderr, "dsmsweep: "+format+"\n", fargs...)
		return 2
	}

	if *timeout < 0 {
		return usageFail("negative -timeout")
	}
	if *fanin < 0 {
		return usageFail("negative -fanin")
	}
	g := sweep.Grid{Parallel: *parallel, Timeout: sim.Time(*timeout * float64(sim.Second)), BarrierFanIn: *fanin, Breakdown: *breakdown}
	sc, err := apps.ParseScale(*scale)
	if err != nil {
		return usageFail("%v", err)
	}
	g.Scale = sc
	for _, s := range splitList(*procsFlag) {
		np, err := strconv.Atoi(s)
		if err != nil {
			return usageFail("bad -procs entry %q", s)
		}
		g.NProcs = append(g.NProcs, np)
	}
	if *appsFlag != "" {
		known := make(map[string]bool)
		for _, n := range apps.Names() {
			known[n] = true
		}
		for _, n := range splitList(*appsFlag) {
			if !known[n] {
				return usageFail("unknown app %q (known: %s)", n, strings.Join(apps.Names(), ", "))
			}
			g.Apps = append(g.Apps, n)
		}
	}
	if *implsFlag != "" {
		for _, s := range splitList(*implsFlag) {
			impl, err := core.ParseImpl(s)
			if err != nil {
				return usageFail("%v", err)
			}
			g.Impls = append(g.Impls, impl)
		}
	}
	vs, err := sweep.ParseVariantSpec(*variants)
	if err != nil {
		return usageFail("%v", err)
	}
	if *preset != "" {
		cm, err := platform.Resolve(*preset)
		if err != nil {
			return usageFail("%v", err)
		}
		have := false
		for _, v := range vs {
			if v.Name == *preset {
				have = true
			}
		}
		if !have {
			vs = append(vs, sweep.Variant{Name: *preset, Cost: cm})
		}
	}
	g.Variants = vs
	if *perfOut != "" {
		g.Perf = perf.New()
		g.Perf.SetAllocsExact(*parallel == 1)
	}
	if *progress {
		g.Progress = perf.ProgressEmitter(stderr)
	}

	stopProf, err := perf.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(stderr, "dsmsweep: %v\n", err)
		return 2
	}
	code := sweepRun(g, *out, recsEmitEnv{stdout: stdout, stderr: stderr})
	if *perfOut != "" {
		meta := perf.HostMeta(*rev)
		meta.Scale, meta.Parallel = *scale, *parallel
		meta.Cmd = "dsmsweep " + strings.Join(args, " ")
		traj := g.Perf.Snapshot(meta)
		if err := writeTrajectory(*perfOut, traj); err != nil {
			fmt.Fprintf(stderr, "dsmsweep: %v\n", err)
			if code == 0 {
				code = 1
			}
		} else {
			fmt.Fprintf(stderr, "dsmsweep: perf trajectory (%d cells, %d runs, %.1f cells/s) -> %s\n",
				len(traj.Cells), traj.CellRuns, traj.CellsPerSec, *perfOut)
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(stderr, "dsmsweep: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

// recsEmitEnv carries the output streams into the run/emit stage.
type recsEmitEnv struct {
	stdout, stderr io.Writer
}

// sweepRun executes the grid and emits artifacts; split from cli so the
// profiling/trajectory epilogue runs on every exit path.
func sweepRun(g sweep.Grid, out string, env recsEmitEnv) int {
	stdout, stderr := env.stdout, env.stderr
	fail := func(err error) int {
		fmt.Fprintf(stderr, "dsmsweep: %v\n", err)
		return 1
	}

	recs, err := sweep.Run(g)
	// Per-cell failures are not fatal to emission: the surviving records are
	// written out, then the failed cells are listed and the exit code is 1.
	var cellFailures *sweep.CellFailures
	if err != nil && !errors.As(err, &cellFailures) {
		return fail(err)
	}
	finish := func() int {
		if cellFailures == nil {
			return 0
		}
		fmt.Fprintf(stderr, "dsmsweep: %d of %d cells failed (partial results emitted):\n",
			len(cellFailures.Errs), len(recs)+len(cellFailures.Errs))
		for _, e := range cellFailures.Errs {
			fmt.Fprintf(stderr, "  %v\n", e)
		}
		return 1
	}

	if out == "" {
		if err := sweep.WriteMarkdown(stdout, recs); err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout)
		if err := sweep.WriteBaselineReport(stdout, recs, sweep.BaselineName); err != nil {
			return fail(err)
		}
		return finish()
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return fail(err)
	}
	emit := func(name string, write func(f *os.File) error) error {
		path := filepath.Join(out, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	for _, e := range []struct {
		name  string
		write func(f *os.File) error
	}{
		{"sweep.csv", func(f *os.File) error { return sweep.WriteCSV(f, recs) }},
		{"sweep.jsonl", func(f *os.File) error { return sweep.WriteJSONL(f, recs) }},
		{"sweep.md", func(f *os.File) error { return sweep.WriteMarkdown(f, recs) }},
		{"report.md", func(f *os.File) error { return sweep.WriteBaselineReport(f, recs, sweep.BaselineName) }},
	} {
		if err := emit(e.name, e.write); err != nil {
			return fail(err)
		}
	}
	fmt.Fprintf(stdout, "dsmsweep: %d records (%d variants) -> %s\n", len(recs), len(g.Variants), out)
	return finish()
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func writeTrajectory(path string, t *perf.Trajectory) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := perf.WriteTrajectory(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
