package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ecvslrc/internal/perf"
)

// TestCLIExitCodes pins the exit-code contract the CI smoke steps rely on:
// invalid flag values must exit non-zero, and invalid -variants specs must
// carry the wrapped sweep.ErrSpec message so failures are legible.
func TestCLIExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string // required substring of stderr, "" for any
	}{
		{"help exits zero", []string{"-h"}, 0, "Usage of dsmsweep"},
		{"unknown flag", []string{"-nonsense"}, 2, ""},
		{"bad scale", []string{"-scale", "huge"}, 2, `unknown scale "huge"`},
		{"bad procs", []string{"-procs", "eight"}, 2, `bad -procs entry "eight"`},
		{"unknown app", []string{"-apps", "NoSuch"}, 2, `unknown app "NoSuch"`},
		{"bad impl", []string{"-impls", "EC-magic"}, 2, `unknown implementation "EC-magic"`},
		{"bad variant axis", []string{"-variants", "warp=x9"}, 2,
			`invalid variant spec: unknown axis "warp"`},
		{"malformed variant", []string{"-variants", "net"}, 2,
			`invalid variant spec: "net" is not axis=v1,v2,...`},
		{"bad variant value", []string{"-variants", "detect=maybe"}, 2,
			"invalid variant spec"},
		{"bad preset", []string{"-preset", "quantum"}, 2, "unknown cost preset"},
		{"bad preset knob", []string{"-preset", "paper+net"}, 2, "not a knob setting"},
		{"bad platform axis", []string{"-variants", "platform=nope"}, 2,
			"invalid variant spec"},
		{"bad fault preset", []string{"-variants", "fault=lossy"}, 2, "invalid variant spec"},
		{"negative timeout", []string{"-timeout", "-1"}, 2, "negative -timeout"},
		{"good run", []string{"-scale", "test", "-procs", "2", "-apps", "IS", "-impls", "LRC-time"}, 0, ""},
		{"faulted run", []string{"-scale", "test", "-procs", "2", "-apps", "IS", "-impls", "LRC-time",
			"-variants", "fault=drop1e-2", "-timeout", "3600"}, 0, ""},
		{"platform sweep", []string{"-scale", "test", "-procs", "2", "-apps", "IS", "-impls", "LRC-time",
			"-variants", "platform=grace"}, 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := cli(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Errorf("exit code = %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.stderr)
			}
		})
	}
}

// TestCLIPartialFailure drives the sweep with a watchdog so tight every cell
// stalls: the CLI must still emit the (empty) report, list the failed cells
// on stderr and exit 1 — the satellite contract for robust sweeps.
func TestCLIPartialFailure(t *testing.T) {
	var stdout, stderr strings.Builder
	code := cli([]string{"-scale", "test", "-procs", "2", "-apps", "IS",
		"-impls", "LRC-time", "-timeout", "0.000001"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "cells failed") {
		t.Errorf("stderr does not list failed cells: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "watchdog") {
		t.Errorf("stderr does not carry the stall diagnostic: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "Sensitivity") {
		t.Errorf("partial failure suppressed report emission: %s", stdout.String())
	}
}

// TestCLIProgressAndPerfOut drives the observability flags end to end: with
// -progress the heartbeats stream to stderr (stdout stays the report), and
// -perf-out writes a parseable trajectory covering every unit of the grid.
func TestCLIProgressAndPerfOut(t *testing.T) {
	base := []string{"-scale", "test", "-procs", "2", "-apps", "SOR,IS",
		"-impls", "EC-time,LRC-diff", "-parallel", "1"}
	var plainOut, plainErr strings.Builder
	if code := cli(base, &plainOut, &plainErr); code != 0 {
		t.Fatalf("plain run exited %d: %s", code, plainErr.String())
	}

	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	args := append(append([]string{}, base...), "-progress", "-perf-out", path, "-rev", "beef02")
	var out, errw strings.Builder
	if code := cli(args, &out, &errw); code != 0 {
		t.Fatalf("observed run exited %d: %s", code, errw.String())
	}
	if out.String() != plainOut.String() {
		t.Error("-progress/-perf-out changed stdout")
	}
	// 2 seq refs + 1 baseline variant x 2 apps x 1 nprocs x 2 impls = 6 units.
	beats := 0
	for _, line := range strings.Split(errw.String(), "\n") {
		if strings.Contains(line, "cells/s") && strings.Contains(line, "ETA") {
			beats++
		}
	}
	if beats != 6 {
		t.Errorf("got %d heartbeats, want 6:\n%s", beats, errw.String())
	}
	if !strings.Contains(errw.String(), "6/6") {
		t.Errorf("no final 6/6 heartbeat:\n%s", errw.String())
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	traj, err := perf.ReadTrajectory(f)
	if err != nil {
		t.Fatal(err)
	}
	if traj.Meta.Rev != "beef02" || !traj.AllocsExact {
		t.Errorf("meta = %+v exact=%v", traj.Meta, traj.AllocsExact)
	}
	if len(traj.Cells) != 6 {
		t.Errorf("got %d cells, want 6", len(traj.Cells))
	}
	for _, c := range traj.Cells {
		if c.Impl != "seq" && c.Variant == "" {
			t.Errorf("cell %v missing variant label", c.Key())
		}
	}
}
