package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIExitCodes pins the exit-code contract: 2 for usage errors, 1 for
// run failures, 0 on success.
func TestCLIExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string
	}{
		{"help exits zero", []string{"-h"}, 0, "Usage of dsmrun"},
		{"unknown flag", []string{"-nonsense"}, 2, ""},
		{"bad scale", []string{"-scale", "huge"}, 2, `unknown scale "huge"`},
		{"bad impl", []string{"-impl", "EC-magic"}, 2, "unknown implementation"},
		{"bad preset", []string{"-preset", "quantum"}, 2, "unknown cost preset"},
		{"bad preset names valid set", []string{"-preset", "quantum"}, 2, "valid: paper"},
		{"bad preset knob", []string{"-preset", "paper+net=x0"}, 2, "positive xK factor"},
		{"malformed preset knob", []string{"-preset", "paper+net"}, 2, "not a knob setting"},
		{"negative timeout", []string{"-timeout", "-1"}, 2, "negative -timeout"},
		{"unknown app fails run", []string{"-app", "NoSuch", "-scale", "test", "-procs", "2"}, 1, "unknown app"},
		{"good run", []string{"-app", "SOR", "-impl", "EC-time", "-scale", "test", "-procs", "2"}, 0, ""},
		{"good run on a platform model", []string{"-app", "SOR", "-impl", "EC-time", "-scale", "test",
			"-procs", "2", "-preset", "rdma_100g+cpu=x2"}, 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := cli(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Errorf("exit code = %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.stderr)
			}
		})
	}
}

// TestCLIPerfBreakdown runs the same cell with and without -perf: the
// simulated statistics line must be identical (observation-only), and the
// perf line must carry the phase breakdown and cell totals.
func TestCLIPerfBreakdown(t *testing.T) {
	base := []string{"-app", "SOR", "-impl", "LRC-diff", "-scale", "test", "-procs", "2"}
	var plain, plainErr strings.Builder
	if code := cli(base, &plain, &plainErr); code != 0 {
		t.Fatalf("plain run exited %d: %s", code, plainErr.String())
	}
	var out, errw strings.Builder
	if code := cli(append(append([]string{}, base...), "-perf"), &out, &errw); code != 0 {
		t.Fatalf("perf run exited %d: %s", code, errw.String())
	}
	if !strings.HasPrefix(out.String(), plain.String()) {
		t.Errorf("-perf changed the simulated output:\nplain:\n%s\nperf:\n%s", plain.String(), out.String())
	}
	perfLines := strings.TrimPrefix(out.String(), plain.String())
	for _, want := range []string{"perf:", "init", "simulate", "verify", "wall", "mallocs", "peak heap"} {
		if !strings.Contains(perfLines, want) {
			t.Errorf("perf breakdown missing %q: %s", want, perfLines)
		}
	}
}

// TestCLIVirtualProfile runs the same cell with and without -profile: the
// statistics line must be identical (observation-only), and the profile must
// render the stall breakdown, critical path and what-if tables to stdout
// without needing a trace directory.
func TestCLIVirtualProfile(t *testing.T) {
	base := []string{"-app", "SOR", "-impl", "LRC-diff", "-scale", "test", "-procs", "2"}
	var plain, plainErr strings.Builder
	if code := cli(base, &plain, &plainErr); code != 0 {
		t.Fatalf("plain run exited %d: %s", code, plainErr.String())
	}
	var out, errw strings.Builder
	if code := cli(append(append([]string{}, base...), "-profile"), &out, &errw); code != 0 {
		t.Fatalf("profile run exited %d: %s", code, errw.String())
	}
	if !strings.HasPrefix(out.String(), plain.String()) {
		t.Errorf("-profile changed the simulated output:\nplain:\n%s\nprofile:\n%s", plain.String(), out.String())
	}
	profLines := strings.TrimPrefix(out.String(), plain.String())
	for _, want := range []string{"# Virtual-time profile", "## Per-processor stall breakdown",
		"## Critical path", "# What-if projections", "max speedup"} {
		if !strings.Contains(profLines, want) {
			t.Errorf("profile output missing %q: %s", want, profLines)
		}
	}
}

// TestCLIProfiles checks the pprof wiring writes non-empty profiles.
func TestCLIProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	var out, errw strings.Builder
	code := cli([]string{"-app", "IS", "-impl", "EC-time", "-scale", "test", "-procs", "2",
		"-cpuprofile", cpu, "-memprofile", mem}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit code = %d: %s", code, errw.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile missing: %v", err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}
