// Command dsmrun executes one (application, implementation) combination on
// the simulated DSM cluster and prints its statistics.
//
// Usage:
//
//	dsmrun -app Water -impl LRC-diff -procs 8 -scale paper
//	dsmrun -app QS -impl EC-time -procs 4 -scale test
//	dsmrun -app SOR -impl LRC-diff -procs 8 -trace trace-out
//	dsmrun -app SOR -impl LRC-diff -procs 8 -profile
//	dsmrun -app Water -impl LRC-diff -perf -cpuprofile cpu.pprof
//	dsmrun -app Water -impl LRC-diff -procs 256 -scale large -gc -fanin 16 -topo clos:radix=16
//
// -profile prints the virtual-time profile after the run: the per-processor
// stall breakdown, the critical path's decomposition and the what-if
// projections (internal/trace's profiler), without needing a -trace
// directory. -perf prints a host-side breakdown after the run (phase wall
// times, allocation delta, peak heap — internal/perf); -cpuprofile/
// -memprofile write standard pprof profiles. All are observation-only: the
// simulated statistics are identical with and without them.
//
// Exit codes: 0 on success, 1 on run failure, 2 on invalid flags.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/perf"
	"ecvslrc/internal/platform"
	_ "ecvslrc/internal/platform/models" // register the platform models as presets
	"ecvslrc/internal/run"
	"ecvslrc/internal/sim"
	"ecvslrc/internal/sweep"
	"ecvslrc/internal/trace"
)

func main() {
	os.Exit(cli(os.Args[1:], os.Stdout, os.Stderr))
}

// cli is main with injectable arguments and streams, so the exit-code
// contract is table-testable. Returns the process exit code.
func cli(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsmrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	appName := fs.String("app", "SOR", "application: "+strings.Join(apps.Names(), ", "))
	implName := fs.String("impl", "LRC-diff", "implementation: EC-ci, EC-time, EC-diff, LRC-ci, LRC-time, LRC-diff")
	procs := fs.Int("procs", 8, "number of simulated processors")
	scale := fs.String("scale", "paper", "problem scale: "+strings.Join(apps.ScaleNames(), ", "))
	seq := fs.Bool("seq", false, "also run the sequential reference")
	preset := fs.String("preset", "paper", "cost spec: a preset ("+strings.Join(fabric.PresetNames(), ", ")+"), optionally +knobs, e.g. \"rdma_100g+net=x2\"")
	contention := fs.Bool("contention", false, "model shared-link contention (concurrent bulk transfers queue)")
	traceDir := fs.String("trace", "", "record an event trace and write all attribution reports to this directory (see cmd/dsmtrace for report selection)")
	profileFlag := fs.Bool("profile", false, "print the virtual-time profile after the run (per-proc stall breakdown, critical path, what-if projections); implies tracing")
	faults := fs.String("faults", "off", "fault-plan preset injected into the fabric: "+strings.Join(fabric.FaultPresetNames(), ", "))
	faultSeed := fs.Uint64("fault-seed", 0, "override the fault plan's PRNG seed (0 keeps the preset's seed)")
	timeout := fs.Float64("timeout", 0, "virtual-time watchdog in simulated seconds: fail with a stall diagnostic instead of running past it (0 disables)")
	gc := fs.Bool("gc", false, "collect LRC notice history at barriers (provably invisible to statistics and results)")
	fanin := fs.Int("fanin", 0, "barrier fan-in: arrange barrier episodes as a radix-r tree (0 = flat, r >= 2 = tree)")
	topo := fs.String("topo", "flat", "interconnect: \"flat\" or \"clos:radix=K[:taper=T][:stages=N]\" (folded-Clos switch fabric)")
	perfFlag := fs.Bool("perf", false, "print a host-side performance breakdown (phase wall times, allocs, peak heap) after the run")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	usageFail := func(format string, fargs ...any) int {
		fmt.Fprintf(stderr, "dsmrun: "+format+"\n", fargs...)
		return 2
	}
	sc, err := apps.ParseScale(*scale)
	if err != nil {
		return usageFail("%v", err)
	}
	impl, err := core.ParseImpl(*implName)
	if err != nil {
		return usageFail("%v", err)
	}
	cost, err := platform.Resolve(*preset)
	if err != nil {
		return usageFail("%v", err)
	}
	plan, err := fabric.FaultPreset(*faults)
	if err != nil {
		return usageFail("%v", err)
	}
	if *faultSeed != 0 {
		if plan == nil {
			return usageFail("-fault-seed needs a fault plan (-faults)")
		}
		plan.Seed = *faultSeed
	}
	if *timeout < 0 {
		return usageFail("negative -timeout")
	}
	if *fanin < 0 {
		return usageFail("negative -fanin")
	}
	topology, err := sweep.ParseTopologySpec(*topo)
	if err != nil {
		return usageFail("%v", err)
	}
	if topology != nil && plan != nil {
		return usageFail("-topo cannot combine with -faults: retransmission timing is calibrated against the flat link")
	}
	// The trace options are validated up front, before the (potentially
	// long) run: a bad report selection must fail like a bad flag.
	var topts trace.Options
	var tr *trace.Tracer
	if *traceDir != "" || *profileFlag {
		if *procs < 1 || *procs > trace.MaxProcs {
			return usageFail("traced runs support 1..%d processors, got %d", trace.MaxProcs, *procs)
		}
		if *traceDir != "" {
			sel, err := trace.ParseReports("")
			if err != nil {
				return usageFail("%v", err)
			}
			topts = trace.Options{Reports: sel, OutDir: *traceDir}
			if err := topts.Validate(); err != nil {
				return usageFail("%v", err)
			}
		}
		tr = trace.New(*procs)
	}

	stopProf, err := perf.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return usageFail("%v", err)
	}
	var reg *perf.Registry
	if *perfFlag {
		reg = perf.New()
		reg.SetAllocsExact(true)
	}
	code := func() int {
		fail := func(err error) int {
			fmt.Fprintf(stderr, "dsmrun: %v\n", err)
			return 1
		}
		if *seq {
			a, err := apps.New(*appName, sc)
			if err != nil {
				return fail(err)
			}
			t, err := run.RunSeq(a)
			if err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "%s sequential: %v\n", *appName, t)
		}
		a, err := apps.New(*appName, sc)
		if err != nil {
			return fail(err)
		}
		cs := reg.StartCell("", *appName, impl.String(), *procs)
		res, err := run.RunWith(a, impl, *procs, cost, run.Options{
			Contention:   *contention,
			Trace:        tr,
			Faults:       plan,
			Timeout:      sim.Time(*timeout * float64(sim.Second)),
			Perf:         reg,
			NoticeGC:     *gc,
			BarrierFanIn: *fanin,
			Topology:     topology,
		})
		if err != nil {
			cs.End(perf.OutcomeErr)
			return fail(err)
		}
		cs.End(perf.OutcomeOK)
		variant := *preset
		if *contention {
			variant += "+contention"
		}
		if plan != nil {
			variant += "+fault=" + *faults
		}
		if topology != nil {
			variant += "+topo=" + topology.String()
		}
		if *fanin >= 2 {
			variant += fmt.Sprintf("+fanin=%d", *fanin)
		}
		if *gc {
			variant += "+gc"
		}
		fmt.Fprintf(stdout, "%s on %v, %d procs (%s scale, %s cost):\n  %v\n", *appName, impl, *procs, *scale, variant, res.Stats)
		if plan != nil {
			f := res.Faults
			fmt.Fprintf(stdout, "  faults: %d sent, %d dropped, %d duplicated, %d delayed; %d retransmits, %d dups dropped, %d reordered, %d acks (%d lost), recovery wait %v\n",
				f.Sent, f.Dropped, f.Duplicated, f.Delayed, f.Retransmits, f.DupsDropped, f.OutOfOrder, f.Acks, f.AcksLost, f.RecoveryWait)
		}
		if res.GC != nil {
			fmt.Fprintf(stdout, "  gc: %d passes, %d records + %d diffs pruned, %d notice bytes live at exit\n",
				res.GC.Collections, res.GC.RecordsPruned, res.GC.DiffsPruned, res.NoticeBytes)
		}
		if tr != nil {
			a2, err := apps.New(*appName, sc)
			if err != nil {
				return fail(err)
			}
			meta := run.TraceMeta(a2, impl, *procs, *scale)
			// The analysis (event scan, profile build, critical-path walk) is
			// timed apart from file emission, so "analyze" wall time lands in
			// the perf trajectory alongside init/simulate/verify.
			ph := reg.StartPhase("analyze")
			art := trace.Analyzed(tr, meta)
			ph.End()
			if *traceDir != "" {
				ph = reg.StartPhase("trace_emit")
				written, err := trace.EmitReports(topts.OutDir, topts.Reports, art, tr)
				ph.End()
				if err != nil {
					return fail(err)
				}
				fmt.Fprintf(stdout, "  trace: %d events -> %s\n", tr.Len(), strings.Join(written, ", "))
			}
			if *profileFlag {
				if err := trace.WriteProfileMarkdown(stdout, art.Profile, art.CritPath); err != nil {
					return fail(err)
				}
				fmt.Fprintln(stdout)
				if err := trace.WriteWhatIfMarkdown(stdout, art.CritPath); err != nil {
					return fail(err)
				}
			}
		}
		if reg != nil {
			printPerf(stdout, reg)
		}
		return 0
	}()
	if err := stopProf(); err != nil {
		fmt.Fprintf(stderr, "dsmrun: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

// printPerf renders the host-side breakdown: phase wall times in declared
// order, then the cell's totals.
func printPerf(w io.Writer, reg *perf.Registry) {
	traj := reg.Snapshot(perf.Meta{Parallel: 1})
	counters := traj.Counters
	var phases []string
	for name := range counters {
		if strings.HasPrefix(name, "phase_") {
			phases = append(phases, name)
		}
	}
	sort.Strings(phases)
	fmt.Fprintf(w, "  perf:")
	for _, name := range phases {
		label := strings.TrimSuffix(strings.TrimPrefix(name, "phase_"), "_ns")
		fmt.Fprintf(w, " %s %.1fms |", label, float64(counters[name])/1e6)
	}
	if len(traj.Cells) > 0 {
		c := traj.Cells[0]
		fmt.Fprintf(w, " wall %.1fms | %d mallocs (%.1f MiB)",
			float64(c.WallNS)/1e6, c.Mallocs, float64(c.AllocBytes)/(1<<20))
	}
	fmt.Fprintf(w, " | peak heap %.1f MiB\n", float64(traj.PeakHeapBytes)/(1<<20))
}
