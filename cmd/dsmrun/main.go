// Command dsmrun executes one (application, implementation) combination on
// the simulated DSM cluster and prints its statistics.
//
// Usage:
//
//	dsmrun -app Water -impl LRC-diff -procs 8 -scale paper
//	dsmrun -app QS -impl EC-time -procs 4 -scale test
//	dsmrun -app SOR -impl LRC-diff -procs 8 -trace trace-out
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/run"
	"ecvslrc/internal/sim"
	"ecvslrc/internal/trace"
)

func main() {
	appName := flag.String("app", "SOR", "application: "+strings.Join(apps.Names(), ", "))
	implName := flag.String("impl", "LRC-diff", "implementation: EC-ci, EC-time, EC-diff, LRC-ci, LRC-time, LRC-diff")
	procs := flag.Int("procs", 8, "number of simulated processors")
	scale := flag.String("scale", "paper", "problem scale: test, bench or paper")
	seq := flag.Bool("seq", false, "also run the sequential reference")
	preset := flag.String("preset", "paper", "cost-model preset: "+strings.Join(fabric.PresetNames(), ", "))
	contention := flag.Bool("contention", false, "model shared-link contention (concurrent bulk transfers queue)")
	traceDir := flag.String("trace", "", "record an event trace and write all attribution reports to this directory (see cmd/dsmtrace for report selection)")
	faults := flag.String("faults", "off", "fault-plan preset injected into the fabric: "+strings.Join(fabric.FaultPresetNames(), ", "))
	faultSeed := flag.Uint64("fault-seed", 0, "override the fault plan's PRNG seed (0 keeps the preset's seed)")
	timeout := flag.Float64("timeout", 0, "virtual-time watchdog in simulated seconds: fail with a stall diagnostic instead of running past it (0 disables)")
	flag.Parse()

	var sc apps.Scale
	switch *scale {
	case "test":
		sc = apps.Test
	case "bench":
		sc = apps.Bench
	case "paper":
		sc = apps.Paper
	default:
		fmt.Fprintf(os.Stderr, "dsmrun: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	impl, err := core.ParseImpl(*implName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmrun:", err)
		os.Exit(2)
	}
	cost, err := fabric.PresetByName(*preset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmrun:", err)
		os.Exit(2)
	}
	plan, err := fabric.FaultPreset(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmrun:", err)
		os.Exit(2)
	}
	if *faultSeed != 0 {
		if plan == nil {
			fmt.Fprintln(os.Stderr, "dsmrun: -fault-seed needs a fault plan (-faults)")
			os.Exit(2)
		}
		plan.Seed = *faultSeed
	}
	if *timeout < 0 {
		fmt.Fprintln(os.Stderr, "dsmrun: negative -timeout")
		os.Exit(2)
	}
	if *seq {
		a, err := apps.New(*appName, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsmrun:", err)
			os.Exit(1)
		}
		t, err := run.RunSeq(a)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsmrun:", err)
			os.Exit(1)
		}
		fmt.Printf("%s sequential: %v\n", *appName, t)
	}
	// The trace options are validated up front, before the (potentially
	// long) run: a bad report selection must fail like a bad flag.
	var topts trace.Options
	var tr *trace.Tracer
	if *traceDir != "" {
		if *procs < 1 || *procs > trace.MaxProcs {
			fmt.Fprintf(os.Stderr, "dsmrun: traced runs support 1..%d processors, got %d\n", trace.MaxProcs, *procs)
			os.Exit(2)
		}
		sel, err := trace.ParseReports("")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsmrun:", err)
			os.Exit(2)
		}
		topts = trace.Options{Reports: sel, OutDir: *traceDir}
		if err := topts.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "dsmrun:", err)
			os.Exit(2)
		}
		tr = trace.New(*procs)
	}
	a, err := apps.New(*appName, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmrun:", err)
		os.Exit(1)
	}
	res, err := run.RunWith(a, impl, *procs, cost, run.Options{
		Contention: *contention,
		Trace:      tr,
		Faults:     plan,
		Timeout:    sim.Time(*timeout * float64(sim.Second)),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmrun:", err)
		os.Exit(1)
	}
	variant := *preset
	if *contention {
		variant += "+contention"
	}
	if plan != nil {
		variant += "+fault=" + *faults
	}
	fmt.Printf("%s on %v, %d procs (%s scale, %s cost):\n  %v\n", *appName, impl, *procs, *scale, variant, res.Stats)
	if plan != nil {
		f := res.Faults
		fmt.Printf("  faults: %d sent, %d dropped, %d duplicated, %d delayed; %d retransmits, %d dups dropped, %d reordered, %d acks (%d lost), recovery wait %v\n",
			f.Sent, f.Dropped, f.Duplicated, f.Delayed, f.Retransmits, f.DupsDropped, f.OutOfOrder, f.Acks, f.AcksLost, f.RecoveryWait)
	}
	if tr != nil {
		a2, err := apps.New(*appName, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsmrun:", err)
			os.Exit(1)
		}
		meta := run.TraceMeta(a2, impl, *procs, *scale)
		written, err := trace.EmitReports(topts.OutDir, topts.Reports, trace.Analyze(tr, meta), tr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsmrun:", err)
			os.Exit(1)
		}
		fmt.Printf("  trace: %d events -> %s\n", tr.Len(), strings.Join(written, ", "))
	}
}
