// Command dsmperf reads BENCH_*.json host-performance trajectories (written
// by dsmbench/dsmsweep -perf-out) and compares them across revisions — the
// repo's machine-readable perf history and the tool CI gates on.
//
// Usage:
//
//	dsmperf show BENCH_abc123.json
//	dsmperf compare BENCH_base.json BENCH_head.json
//	dsmperf compare -wall-tol -1 -alloc-tol 0.15 BENCH_base.json BENCH_head.json
//
// compare prints a markdown report (header, top wall movers, regressions,
// coverage diff) and exits 1 when any cell regresses beyond tolerance.
// Wall-clock gating uses each cell's min-of-N run against -wall-tol; a
// negative -wall-tol disables it (the right setting on shared CI runners,
// where wall clocks are noise). Allocation gating compares per-run Mallocs
// averages against -alloc-tol and only engages when both trajectories were
// measured with exact allocation attribution (-parallel 1); allocation
// counts of this deterministic simulator are near-noise-free, so they catch
// real regressions even where wall clocks cannot.
//
// Exit codes: 0 clean, 1 regressions found or I/O failure, 2 invalid usage.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"ecvslrc/internal/perf"
)

func main() {
	os.Exit(cli(os.Args[1:], os.Stdout, os.Stderr))
}

// cli is main with injectable arguments and streams, so the exit-code
// contract is table-testable. Returns the process exit code.
func cli(args []string, stdout, stderr io.Writer) int {
	usageFail := func(format string, fargs ...any) int {
		fmt.Fprintf(stderr, "dsmperf: "+format+"\n", fargs...)
		fmt.Fprintln(stderr, "usage: dsmperf show FILE | dsmperf compare [-wall-tol F] [-alloc-tol F] [-top N] BASE HEAD")
		return 2
	}
	if len(args) < 1 {
		return usageFail("missing subcommand")
	}
	switch args[0] {
	case "show":
		return show(args[1:], stdout, stderr)
	case "compare":
		return compare(args[1:], stdout, stderr)
	default:
		return usageFail("unknown subcommand %q", args[0])
	}
}

func load(path string) (*perf.Trajectory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := perf.ReadTrajectory(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

func show(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsmperf show", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "dsmperf: show takes exactly one trajectory file")
		return 2
	}
	t, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "dsmperf: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "rev %s  go %s %s/%s  gomaxprocs %d  parallel %d  allocs-exact %v\n",
		t.Meta.Rev, t.Meta.GoVersion, t.Meta.GOOS, t.Meta.GOARCH,
		t.Meta.GOMAXPROCS, t.Meta.Parallel, t.AllocsExact)
	if t.Meta.Cmd != "" {
		fmt.Fprintf(stdout, "cmd: %s\n", t.Meta.Cmd)
	}
	fmt.Fprintf(stdout, "%d cells, %d runs in %.2fs: %.1f cells/s, p50 %.2fms, p99 %.2fms, occupancy %.0f%%\n",
		len(t.Cells), t.CellRuns, float64(t.WallNS)/1e9, t.CellsPerSec,
		float64(t.P50NS)/1e6, float64(t.P99NS)/1e6, t.Occupancy*100)
	fmt.Fprintf(stdout, "peak heap %.1f MiB, %d mallocs (%.1f MiB allocated)\n",
		float64(t.PeakHeapBytes)/(1<<20), t.TotalMallocs, float64(t.TotalAllocB)/(1<<20))
	for _, c := range t.Cells {
		fmt.Fprintf(stdout, "  %-40s %4s x%d  min %10.3fms  %12d mallocs/run\n",
			c.Key(), c.Outcome, c.Runs, float64(c.MinWallNS)/1e6, c.Mallocs/c.Runs)
	}
	return 0
}

func compare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsmperf compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wallTol := fs.Float64("wall-tol", 0.30, "fractional wall-time regression tolerance per cell (min-of-N); negative disables wall gating")
	allocTol := fs.Float64("alloc-tol", 0.05, "fractional per-run allocation-count regression tolerance; negative disables; only enforced when both trajectories are allocs-exact")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "dsmperf: compare takes exactly two trajectory files (base, head)")
		return 2
	}
	base, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "dsmperf: %v\n", err)
		return 1
	}
	head, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "dsmperf: %v\n", err)
		return 1
	}
	opt := perf.CompareOptions{WallTol: *wallTol, AllocTol: *allocTol}
	res := perf.Compare(base, head, opt)
	if err := perf.WriteCompare(stdout, base, head, res, opt); err != nil {
		fmt.Fprintf(stderr, "dsmperf: %v\n", err)
		return 1
	}
	if res.Regressions > 0 {
		fmt.Fprintf(stderr, "dsmperf: %d regression(s) beyond tolerance\n", res.Regressions)
		return 1
	}
	return 0
}
