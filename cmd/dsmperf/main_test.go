package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ecvslrc/internal/perf"
)

// writeTraj materializes a synthetic trajectory file for CLI tests.
func writeTraj(t *testing.T, dir, name string, cells ...perf.Cell) string {
	t.Helper()
	r := perf.New()
	r.SetAllocsExact(true)
	for _, c := range cells {
		r.ObserveCell(c)
	}
	traj := r.Snapshot(perf.Meta{Rev: strings.TrimSuffix(name, ".json"), Parallel: 1})
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := perf.WriteTrajectory(f, traj); err != nil {
		t.Fatal(err)
	}
	return path
}

func okCell(app string, wall, mallocs int64) perf.Cell {
	return perf.Cell{App: app, Impl: "EC-time", NProcs: 8, Outcome: "ok",
		Runs: 1, WallNS: wall, MinWallNS: wall, Mallocs: mallocs}
}

func TestCLIUsageErrors(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string
	}{
		{"no subcommand", nil, 2, "missing subcommand"},
		{"unknown subcommand", []string{"frobnicate"}, 2, "unknown subcommand"},
		{"show no file", []string{"show"}, 2, "exactly one"},
		{"compare one file", []string{"compare", "only.json"}, 2, "exactly two"},
		{"show missing file", []string{"show", "/no/such/file.json"}, 1, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := cli(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Errorf("exit code = %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.stderr)
			}
		})
	}
}

func TestCLIShow(t *testing.T) {
	dir := t.TempDir()
	path := writeTraj(t, dir, "BENCH_feed.json", okCell("SOR", 1_000_000, 500))
	var stdout, stderr strings.Builder
	if code := cli([]string{"show", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d: %s", code, stderr.String())
	}
	for _, want := range []string{"rev BENCH_feed", "allocs-exact true", "SOR/EC-time/8", "1 cells"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("show output missing %q:\n%s", want, stdout.String())
		}
	}
}

func TestCLICompareCleanAndRegressed(t *testing.T) {
	dir := t.TempDir()
	base := writeTraj(t, dir, "BENCH_base.json", okCell("SOR", 1_000_000, 500), okCell("QS", 2_000_000, 700))

	// Identical head: clean compare, exit 0.
	var stdout, stderr strings.Builder
	if code := cli([]string{"compare", base, base}, &stdout, &stderr); code != 0 {
		t.Fatalf("self-compare exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "# dsmperf compare") {
		t.Errorf("no report header:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "## Regressions\n\nnone") {
		t.Errorf("self-compare regression section not empty:\n%s", stdout.String())
	}

	// Allocation regression beyond 5%: exit 1 even with wall gating off.
	head := writeTraj(t, dir, "BENCH_head.json", okCell("SOR", 1_000_000, 800), okCell("QS", 2_000_000, 700))
	stdout.Reset()
	stderr.Reset()
	code := cli([]string{"compare", "-wall-tol", "-1", base, head}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("regressed compare exited %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "regression(s) beyond tolerance") {
		t.Errorf("stderr missing regression count: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "SOR/EC-time/8") {
		t.Errorf("report does not name the regressed cell:\n%s", stdout.String())
	}

	// Loosened tolerance lets the same pair pass.
	stdout.Reset()
	stderr.Reset()
	if code := cli([]string{"compare", "-wall-tol", "-1", "-alloc-tol", "0.9", base, head}, &stdout, &stderr); code != 0 {
		t.Errorf("loose tolerance still exited %d: %s", code, stderr.String())
	}
}

func TestCLICompareRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	good := writeTraj(t, dir, "BENCH_ok.json", okCell("SOR", 1, 1))
	var stdout, stderr strings.Builder
	if code := cli([]string{"compare", bad, good}, &stdout, &stderr); code != 1 {
		t.Errorf("malformed base accepted, exit %d", code)
	}
	if !strings.Contains(stderr.String(), "bad.json") {
		t.Errorf("error does not name the offending file: %s", stderr.String())
	}
}
