// Command dsmbench regenerates the paper's evaluation tables: Table 2
// (application parameters), Table 3 (best EC vs best LRC), Table 4 (EC
// trapping x collection), Table 5 (LRC trapping x collection), the Section
// 7.2 message/data counters, and the Section 7.1 factor kernels.
//
// Usage:
//
//	dsmbench -table 3 -scale paper -procs 8
//	dsmbench -all -scale bench
//	dsmbench -micro
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/harness"
)

func main() {
	table := flag.Int("table", 0, "table to regenerate (2, 3, 4 or 5)")
	all := flag.Bool("all", false, "regenerate every table")
	micro := flag.Bool("micro", false, "run the Section 7.1 factor kernels")
	counters := flag.Bool("counters", false, "print the Section 7.2 message/data counters")
	scale := flag.String("scale", "paper", "problem scale: test, bench or paper")
	procs := flag.Int("procs", 8, "number of simulated processors")
	appsFlag := flag.String("apps", "", "comma-separated application subset, e.g. \"SOR,QS\" (default: all)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max table cells simulated concurrently (output is identical for any value)")
	flag.Parse()

	cfg := harness.Default()
	cfg.NProcs = *procs
	cfg.Parallel = *parallel
	switch *scale {
	case "test":
		cfg.Scale = apps.Test
	case "bench":
		cfg.Scale = apps.Bench
	case "paper":
		cfg.Scale = apps.Paper
	default:
		fmt.Fprintf(os.Stderr, "dsmbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	names := apps.Names()
	if *appsFlag != "" {
		known := make(map[string]bool, len(names))
		for _, n := range names {
			known[n] = true
		}
		names = nil
		for _, n := range strings.Split(*appsFlag, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if !known[n] {
				fmt.Fprintf(os.Stderr, "dsmbench: unknown app %q (known: %s)\n", n, strings.Join(apps.Names(), ", "))
				os.Exit(2)
			}
			names = append(names, n)
		}
		if len(names) == 0 {
			fmt.Fprintf(os.Stderr, "dsmbench: -apps lists no applications\n")
			os.Exit(2)
		}
	}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "dsmbench: %v\n", err)
		os.Exit(1)
	}

	if *all {
		// The complete report (Tables 2-5, counters, micro) comes from one
		// harness entry point so the byte-identity regression test pins
		// exactly what this command prints.
		out, err := harness.BenchReport(cfg, names)
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
		return
	}
	did := false
	if *table == 2 {
		did = true
		fmt.Print(harness.Table2(cfg))
		fmt.Println()
	}
	var t3 []harness.Table3Result
	if *table == 3 || *counters {
		did = true
		rows, err := harness.Table3(cfg, names)
		if err != nil {
			fail(err)
		}
		t3 = rows
		if *table == 3 {
			fmt.Print(harness.FormatTable3(rows))
			fmt.Println()
		}
	}
	if *table == 4 {
		did = true
		rows, err := harness.TableModel(cfg, core.EC, names)
		if err != nil {
			fail(err)
		}
		fmt.Print(harness.FormatTableModel(core.EC, rows, names))
		fmt.Println()
	}
	if *table == 5 {
		did = true
		rows, err := harness.TableModel(cfg, core.LRC, names)
		if err != nil {
			fail(err)
		}
		fmt.Print(harness.FormatTableModel(core.LRC, rows, names))
		fmt.Println()
	}
	if *counters {
		did = true
		fmt.Print(harness.FormatCounters(t3))
		fmt.Println()
	}
	if *micro {
		did = true
		rows, err := harness.Micro(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Print(harness.FormatMicro(rows))
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
}
