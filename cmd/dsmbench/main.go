// Command dsmbench regenerates the paper's evaluation tables: Table 2
// (application parameters), Table 3 (best EC vs best LRC), Table 4 (EC
// trapping x collection), Table 5 (LRC trapping x collection), the Section
// 7.2 message/data counters, and the Section 7.1 factor kernels.
//
// Usage:
//
//	dsmbench -table 3 -scale paper -procs 8
//	dsmbench -all -scale bench
//	dsmbench -all -scale bench -preset rdma_100g
//	dsmbench -all -micro -scale bench -parallel 1 -perf-out BENCH_head.json
//	dsmbench -micro -cpuprofile cpu.pprof
//
// -preset regenerates the tables under a different cost spec ("name" or
// "name+knob", the same platform.Resolve grammar as dsmrun and dsmsweep);
// the default "paper" keeps the output byte-identical to the calibrated
// platform.
//
// -perf-out writes a schema-versioned BENCH_*.json host-performance
// trajectory (per-cell wall/alloc stats, aggregate cells/sec; see
// internal/perf and cmd/dsmperf). Metrics are observation-only: the table
// output stays byte-identical, and the trajectory note goes to stderr.
//
// Exit codes: 0 on success, 1 on run failure, 2 on invalid flags.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/harness"
	"ecvslrc/internal/perf"
	"ecvslrc/internal/platform"
	_ "ecvslrc/internal/platform/models" // register the platform models as presets
)

func main() {
	os.Exit(cli(os.Args[1:], os.Stdout, os.Stderr))
}

// cli is main with injectable arguments and streams, so the exit-code
// contract is table-testable. Returns the process exit code.
func cli(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsmbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.Int("table", 0, "table to regenerate (2, 3, 4 or 5)")
	all := fs.Bool("all", false, "regenerate every table")
	micro := fs.Bool("micro", false, "run the Section 7.1 factor kernels")
	counters := fs.Bool("counters", false, "print the Section 7.2 message/data counters")
	scale := fs.String("scale", "paper", "problem scale: test, bench or paper")
	procs := fs.Int("procs", 8, "number of simulated processors")
	appsFlag := fs.String("apps", "", "comma-separated application subset, e.g. \"SOR,QS\" (default: all)")
	preset := fs.String("preset", "paper", "cost spec: a preset ("+strings.Join(fabric.PresetNames(), ", ")+"), optionally +knobs, e.g. \"rdma_100g+net=x2\"")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "max table cells simulated concurrently (output is identical for any value)")
	perfOut := fs.String("perf-out", "", "write a BENCH_*.json host-performance trajectory to this file (per-cell alloc deltas are exact only with -parallel 1)")
	rev := fs.String("rev", "", "revision stamp for -perf-out (default: the build's vcs.revision, else \"unknown\")")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	cfg := harness.Default()
	cfg.NProcs = *procs
	cfg.Parallel = *parallel
	sc, err := apps.ParseScale(*scale)
	if err != nil {
		fmt.Fprintf(stderr, "dsmbench: %v\n", err)
		return 2
	}
	cfg.Scale = sc
	cost, err := platform.Resolve(*preset)
	if err != nil {
		fmt.Fprintf(stderr, "dsmbench: %v\n", err)
		return 2
	}
	cfg.Cost = cost
	names := apps.Names()
	if *appsFlag != "" {
		known := make(map[string]bool, len(names))
		for _, n := range names {
			known[n] = true
		}
		names = nil
		for _, n := range strings.Split(*appsFlag, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if !known[n] {
				fmt.Fprintf(stderr, "dsmbench: unknown app %q (known: %s)\n", n, strings.Join(apps.Names(), ", "))
				return 2
			}
			names = append(names, n)
		}
		if len(names) == 0 {
			fmt.Fprintf(stderr, "dsmbench: -apps lists no applications\n")
			return 2
		}
	}
	if *perfOut != "" {
		cfg.Perf = perf.New()
		cfg.Perf.SetAllocsExact(*parallel == 1)
	}

	stopProf, err := perf.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(stderr, "dsmbench: %v\n", err)
		return 2
	}
	code := func() int {
		fail := func(err error) int {
			fmt.Fprintf(stderr, "dsmbench: %v\n", err)
			return 1
		}
		if *all {
			// The complete report (Tables 2-5, counters, micro) comes from one
			// harness entry point so the byte-identity regression test pins
			// exactly what this command prints.
			out, err := harness.BenchReport(cfg, names)
			if err != nil {
				return fail(err)
			}
			fmt.Fprint(stdout, out)
			return 0
		}
		did := false
		if *table == 2 {
			did = true
			fmt.Fprint(stdout, harness.Table2(cfg))
			fmt.Fprintln(stdout)
		}
		var t3 []harness.Table3Result
		if *table == 3 || *counters {
			did = true
			rows, err := harness.Table3(cfg, names)
			if err != nil {
				return fail(err)
			}
			t3 = rows
			if *table == 3 {
				fmt.Fprint(stdout, harness.FormatTable3(rows))
				fmt.Fprintln(stdout)
			}
		}
		if *table == 4 {
			did = true
			rows, err := harness.TableModel(cfg, core.EC, names)
			if err != nil {
				return fail(err)
			}
			fmt.Fprint(stdout, harness.FormatTableModel(core.EC, rows, names))
			fmt.Fprintln(stdout)
		}
		if *table == 5 {
			did = true
			rows, err := harness.TableModel(cfg, core.LRC, names)
			if err != nil {
				return fail(err)
			}
			fmt.Fprint(stdout, harness.FormatTableModel(core.LRC, rows, names))
			fmt.Fprintln(stdout)
		}
		if *counters {
			did = true
			fmt.Fprint(stdout, harness.FormatCounters(t3))
			fmt.Fprintln(stdout)
		}
		if *micro {
			did = true
			rows, err := harness.Micro(cfg)
			if err != nil {
				return fail(err)
			}
			fmt.Fprint(stdout, harness.FormatMicro(rows))
		}
		if !did {
			fs.Usage()
			return 2
		}
		return 0
	}()
	if code == 0 && *perfOut != "" {
		meta := perf.HostMeta(*rev)
		meta.Scale, meta.Parallel = *scale, *parallel
		meta.Cmd = "dsmbench " + strings.Join(args, " ")
		traj := cfg.Perf.Snapshot(meta)
		if err := writeTrajectory(*perfOut, traj); err != nil {
			fmt.Fprintf(stderr, "dsmbench: %v\n", err)
			code = 1
		} else {
			// Stderr, so stdout stays byte-identical to the golden report.
			fmt.Fprintf(stderr, "dsmbench: perf trajectory (%d cells, %d runs, %.1f cells/s) -> %s\n",
				len(traj.Cells), traj.CellRuns, traj.CellsPerSec, *perfOut)
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(stderr, "dsmbench: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

func writeTrajectory(path string, t *perf.Trajectory) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := perf.WriteTrajectory(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
