package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ecvslrc/internal/perf"
)

// TestCLIExitCodes pins the exit-code contract: 0 on success and -h, 2 on
// every flag/usage error.
func TestCLIExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string
	}{
		{"help exits zero", []string{"-h"}, 0, "Usage of dsmbench"},
		{"unknown flag", []string{"-nonsense"}, 2, ""},
		{"bad scale", []string{"-all", "-scale", "huge"}, 2, `unknown scale "huge"`},
		{"unknown app", []string{"-all", "-apps", "NoSuch"}, 2, `unknown app "NoSuch"`},
		{"empty apps list", []string{"-all", "-apps", " , "}, 2, "lists no applications"},
		{"bad preset", []string{"-all", "-preset", "quantum"}, 2, "unknown cost preset"},
		{"bad preset knob", []string{"-all", "-preset", "paper+net=x0"}, 2, "positive xK factor"},
		{"no action", []string{"-scale", "test"}, 2, ""},
		{"good table", []string{"-table", "3", "-scale", "test", "-procs", "2", "-apps", "SOR"}, 0, ""},
		{"good table on a platform model", []string{"-table", "3", "-scale", "test", "-procs", "2",
			"-apps", "SOR", "-preset", "grace"}, 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := cli(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Errorf("exit code = %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.stderr)
			}
		})
	}
}

// TestCLIPerfTrajectory drives -perf-out end to end: stdout must stay
// byte-identical to an unobserved run (the trajectory note goes to stderr),
// and the written file must parse back as an exact-allocs trajectory with
// the requested revision stamp and one cell per table entry.
func TestCLIPerfTrajectory(t *testing.T) {
	base := []string{"-table", "3", "-scale", "test", "-procs", "2", "-apps", "SOR,IS", "-parallel", "1"}
	var plainOut, plainErr strings.Builder
	if code := cli(base, &plainOut, &plainErr); code != 0 {
		t.Fatalf("plain run exited %d: %s", code, plainErr.String())
	}

	path := filepath.Join(t.TempDir(), "BENCH_head.json")
	var out, errw strings.Builder
	args := append(append([]string{}, base...), "-perf-out", path, "-rev", "cafe01")
	if code := cli(args, &out, &errw); code != 0 {
		t.Fatalf("perf run exited %d: %s", code, errw.String())
	}
	if out.String() != plainOut.String() {
		t.Error("-perf-out changed stdout; the note must go to stderr")
	}
	if !strings.Contains(errw.String(), "perf trajectory") {
		t.Errorf("no trajectory note on stderr: %s", errw.String())
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	traj, err := perf.ReadTrajectory(f)
	if err != nil {
		t.Fatal(err)
	}
	if traj.Meta.Rev != "cafe01" || traj.Meta.Scale != "test" || traj.Meta.Parallel != 1 {
		t.Errorf("meta = %+v", traj.Meta)
	}
	if !traj.AllocsExact {
		t.Error("-parallel 1 run not marked allocs-exact")
	}
	// Table 3 over 2 apps: 6 impls x 2 + 2 seq references.
	if len(traj.Cells) != 14 {
		t.Errorf("got %d cells, want 14", len(traj.Cells))
	}
	if traj.CellsPerSec <= 0 || traj.WallNS <= 0 {
		t.Errorf("aggregates empty: %.1f cells/s over %dns", traj.CellsPerSec, traj.WallNS)
	}
}

// TestCLIProfiles checks the pprof wiring writes non-empty profile files on
// a successful run.
func TestCLIProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	var out, errw strings.Builder
	code := cli([]string{"-table", "2", "-scale", "test", "-cpuprofile", cpu, "-memprofile", mem}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit code = %d: %s", code, errw.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile missing: %v", err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}
