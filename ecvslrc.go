// Package ecvslrc reproduces "A Comparison of Entry Consistency and Lazy
// Release Consistency Implementations" (Adve, Cox, Dwarkadas, Rajamony,
// Zwaenepoel — HPCA 1996) as a deterministic simulation of the paper's
// software-DSM systems: entry consistency (Midway-style) and lazy release
// consistency (TreadMarks-style), with both write-trapping mechanisms
// (compiler instrumentation, twinning) and both write-collection mechanisms
// (timestamps, diffs), plus the paper's application suite.
//
// This top-level package is the convenience surface: run a named application
// under a named implementation and regenerate the paper's tables. The full
// programming interface (core.DSM, the simulator, the protocols) lives in
// the internal packages; see DESIGN.md for the map.
package ecvslrc

import (
	"fmt"
	"io"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/harness"
	"ecvslrc/internal/platform"
	"ecvslrc/internal/run"
	"ecvslrc/internal/sim"
	"ecvslrc/internal/sweep"
	"ecvslrc/internal/trace"
)

// Scale names a problem-size preset.
type Scale = apps.Scale

// Problem-size presets.
const (
	Test  = apps.Test
	Bench = apps.Bench
	Paper = apps.Paper
)

// Stats is the per-run measurement set (execution time, messages, data
// moved, faults, lock and barrier counts).
type Stats = core.Stats

// CostModel collects the platform constants of a run; see
// fabric.DefaultCostModel for the calibrated paper platform and the
// ScaleNetwork/ScaleCPU/HardwareWriteDetection/ZeroCostDiff knobs for
// sensitivity variants.
type CostModel = fabric.CostModel

// CostPreset is a named, documented cost-model variant.
type CostPreset = fabric.Preset

// SweepRecord is one cell of a sensitivity sweep: full run statistics plus
// variant metadata and speedup against the sequential reference.
type SweepRecord = sweep.Record

// DefaultCost returns the calibrated paper-platform cost model.
func DefaultCost() CostModel { return fabric.DefaultCostModel() }

// CostPresets lists the named cost models, the calibrated platform first:
// the knob-composed sensitivity variants, then the registered platform
// models (internal/platform) — validated machine models whose constants
// derive from published numbers.
func CostPresets() []CostPreset { return fabric.Presets() }

// ResolveCost turns a cost spec into a cost model: a preset name (any
// CostPresets entry, platform models included) optionally followed by
// "+"-separated knob settings, e.g. "rdma_100g" or "cluster_gbe+net=x2".
// This is the same resolver behind every CLI's -preset flag (dsmrun,
// dsmsweep, dsmbench, dsmtrace), so specs are portable between the API and
// the tools. See platform.Resolve for the grammar.
func ResolveCost(spec string) (CostModel, error) { return platform.Resolve(spec) }

// Apps lists the application suite in the paper's table order.
func Apps() []string { return apps.Names() }

// Impls lists the implementation names of Table 1: EC-ci, EC-time, EC-diff,
// LRC-ci, LRC-time, LRC-diff.
func Impls() []string {
	var out []string
	for _, i := range core.Implementations() {
		out = append(out, i.String())
	}
	return out
}

// Run executes one application under one implementation on nprocs simulated
// processors and returns the aggregated statistics. The run verifies its
// own result against the application's sequential reference.
func Run(app, impl string, nprocs int, scale Scale) (Stats, error) {
	i, err := core.ParseImpl(impl)
	if err != nil {
		return Stats{}, err
	}
	a, err := apps.New(app, scale)
	if err != nil {
		return Stats{}, err
	}
	res, err := run.Run(a, i, nprocs, fabric.DefaultCostModel())
	if err != nil {
		return Stats{}, err
	}
	return res.Stats, nil
}

// RunCost is Run under an explicit cost model, optionally with shared-link
// contention — the single-cell form of a sensitivity sweep.
func RunCost(app, impl string, nprocs int, scale Scale, cost CostModel, contention bool) (Stats, error) {
	i, err := core.ParseImpl(impl)
	if err != nil {
		return Stats{}, err
	}
	a, err := apps.New(app, scale)
	if err != nil {
		return Stats{}, err
	}
	res, err := run.RunWith(a, i, nprocs, cost, run.Options{Contention: contention})
	if err != nil {
		return Stats{}, err
	}
	return res.Stats, nil
}

// Sweep runs the full implementation matrix of the named applications (all
// of them when none are given) under the cost variants of spec — e.g.
// "net=x2,x4 detect=sw,hw"; see sweep.ParseVariantSpec for the axes — and
// returns one record per cell in deterministic grid order, baseline variant
// first.
func Sweep(spec string, scale Scale, nprocs int, appNames ...string) ([]SweepRecord, error) {
	vs, err := sweep.ParseVariantSpec(spec)
	if err != nil {
		return nil, err
	}
	return sweep.Run(sweep.Grid{
		Scale:    scale,
		Apps:     appNames,
		NProcs:   []int{nprocs},
		Variants: vs,
	})
}

// TraceAnalysis is the attribution summary of one traced run: per-page heat
// and sharing patterns, per-lock contention, barrier imbalance and the
// message-class timeline. See trace.Analyze for the derivation.
type TraceAnalysis = trace.Analysis

// TraceRun is the outcome of one traced run: the ordinary statistics (bit-
// identical to an untraced run), the raw event tracer and its analysis.
type TraceRun struct {
	Stats    Stats
	Tracer   *trace.Tracer
	Analysis *TraceAnalysis
}

// WriteSummary renders the markdown attribution summary.
func (t *TraceRun) WriteSummary(w io.Writer) error { return trace.WriteMarkdown(w, t.Analysis) }

// WriteTimeline renders the Chrome trace-event JSON timeline.
func (t *TraceRun) WriteTimeline(w io.Writer) error {
	return trace.WriteChromeTrace(w, t.Tracer, t.Analysis.Meta)
}

// Trace executes one application under one implementation with event tracing
// enabled and returns the statistics together with the attribution analysis.
// Tracing is observation-only: Stats matches what Run would report.
func Trace(app, impl string, nprocs int, scale Scale) (*TraceRun, error) {
	return TraceCost(app, impl, nprocs, scale, fabric.DefaultCostModel(), false)
}

// TraceCost is Trace under an explicit cost model, optionally with
// shared-link contention (whose queueing delays then appear in the analysis).
func TraceCost(app, impl string, nprocs int, scale Scale, cost CostModel, contention bool) (*TraceRun, error) {
	i, err := core.ParseImpl(impl)
	if err != nil {
		return nil, err
	}
	if nprocs < 1 || nprocs > trace.MaxProcs {
		return nil, fmt.Errorf("ecvslrc: traced runs support 1..%d processors, got %d", trace.MaxProcs, nprocs)
	}
	a, err := apps.New(app, scale)
	if err != nil {
		return nil, err
	}
	tr := trace.New(nprocs)
	res, err := run.RunWith(a, i, nprocs, cost, run.Options{Contention: contention, Trace: tr})
	if err != nil {
		return nil, err
	}
	a2, err := apps.New(app, scale) // fresh instance: Layout may bind state
	if err != nil {
		return nil, err
	}
	meta := run.TraceMeta(a2, i, nprocs, scale.String())
	return &TraceRun{Stats: res.Stats, Tracer: tr, Analysis: trace.Analyze(tr, meta)}, nil
}

// RunSeq executes the sequential reference of an application and returns
// its simulated time — the paper's "1 proc." column.
func RunSeq(app string, scale Scale) (sim.Time, error) {
	a, err := apps.New(app, scale)
	if err != nil {
		return 0, err
	}
	return run.RunSeq(a)
}

// Table3 regenerates the paper's headline table (best EC vs best LRC per
// application) as formatted text.
func Table3(scale Scale, nprocs int, appNames ...string) (string, error) {
	cfg := harness.Config{Scale: scale, NProcs: nprocs, Cost: fabric.DefaultCostModel()}
	if len(appNames) == 0 {
		appNames = apps.Names()
	}
	rows, err := harness.Table3(cfg, appNames)
	if err != nil {
		return "", err
	}
	return harness.FormatTable3(rows), nil
}

// Table45 regenerates Table 4 (model "EC") or Table 5 (model "LRC").
func Table45(model string, scale Scale, nprocs int, appNames ...string) (string, error) {
	cfg := harness.Config{Scale: scale, NProcs: nprocs, Cost: fabric.DefaultCostModel()}
	if len(appNames) == 0 {
		appNames = apps.Names()
	}
	m := core.EC
	if model == "LRC" {
		m = core.LRC
	}
	rows, err := harness.TableModel(cfg, m, appNames)
	if err != nil {
		return "", err
	}
	return harness.FormatTableModel(m, rows, appNames), nil
}
