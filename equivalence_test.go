package ecvslrc

import (
	"reflect"
	"testing"

	"ecvslrc/internal/apps"
	"ecvslrc/internal/core"
	"ecvslrc/internal/fabric"
	"ecvslrc/internal/run"
)

// TestStaticDispatchEquivalence pins the devirtualized access path: for
// every generic-kernel application and all six implementations, the
// statically-dispatched entry (run.StaticApp, kernels instantiated at
// *lrc.Node / *ec.Node) must produce core.Stats deeply equal to the
// interface-adapter path (Program(core.DSM), forced via
// Options.InterfaceDispatch). The two paths run the same kernel source, so
// any divergence is a dispatch-layer bug, not an application change.
func TestStaticDispatchEquivalence(t *testing.T) {
	names := append(append([]string{}, apps.Names()...), apps.MicroNames()...)
	const nprocs = 4
	cm := fabric.DefaultCostModel()
	for _, name := range names {
		for _, impl := range core.Implementations() {
			t.Run(name+"/"+impl.String(), func(t *testing.T) {
				a, err := apps.New(name, apps.Test)
				if err != nil {
					t.Fatal(err)
				}
				if _, ok := a.(run.StaticApp); !ok {
					t.Fatalf("%s does not provide statically-dispatched kernels", name)
				}
				static, err := run.RunWith(a, impl, nprocs, cm, run.Options{})
				if err != nil {
					t.Fatal(err)
				}
				b, err := apps.New(name, apps.Test)
				if err != nil {
					t.Fatal(err)
				}
				iface, err := run.RunWith(b, impl, nprocs, cm, run.Options{InterfaceDispatch: true})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(static.Stats, iface.Stats) {
					t.Errorf("stats diverge between dispatch paths:\n  static:    %+v\n  interface: %+v",
						static.Stats, iface.Stats)
				}
			})
		}
	}
}

// TestStaticDispatchSeqEquivalence does the same for the sequential
// reference: ProgramSeq (kernel at *run.Local) against the adapter path.
func TestStaticDispatchSeqEquivalence(t *testing.T) {
	names := append(append([]string{}, apps.Names()...), apps.MicroNames()...)
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			a, err := apps.New(name, apps.Test)
			if err != nil {
				t.Fatal(err)
			}
			static, err := run.RunSeqWith(a, run.Options{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := apps.New(name, apps.Test)
			if err != nil {
				t.Fatal(err)
			}
			iface, err := run.RunSeqWith(b, run.Options{InterfaceDispatch: true})
			if err != nil {
				t.Fatal(err)
			}
			if static != iface {
				t.Errorf("sequential time diverges: static %v, interface %v", static, iface)
			}
		})
	}
}
